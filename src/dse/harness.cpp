/**
 * @file
 * Sweep execution: one sequential simulation per point, points farmed
 * across host cores on the simulator worker pool, metrics joined from
 * the cost and resource models. See dse.h for the determinism contract.
 */

#include "dse/dse.h"

#include <algorithm>
#include <thread>

#include "base/env.h"
#include "base/logging.h"
#include "core/bqsr_accel.h"
#include "core/markdup_accel.h"
#include "core/metadata_accel.h"
#include "cost/cost.h"
#include "genome/read_simulator.h"
#include "pipeline/resource_model.h"
#include "sim/parallel.h"

namespace genesis::dse {

namespace {

/** The genome size $/genome is scaled to (700 M x 151 bp reads). */
constexpr double kGenomeBases = 700e6 * 151.0;

/** Deterministic synthetic workload shared by (or per) sweep points. */
struct Workload {
    genome::ReferenceGenome genome;
    std::vector<genome::AlignedRead> reads;
    int64_t totalBases = 0;
};

Workload
makeWorkload(uint64_t seed, int64_t num_pairs)
{
    Workload w;
    genome::SyntheticGenomeConfig gcfg;
    gcfg.numChromosomes = 2;
    gcfg.firstChromosomeLength = 200'000;
    gcfg.lengthDecay = 0.6;
    gcfg.minChromosomeLength = 80'000;
    gcfg.seed = seed;
    w.genome = genome::ReferenceGenome::synthesize(gcfg);

    genome::ReadSimulatorConfig rcfg;
    rcfg.numPairs = num_pairs;
    rcfg.seed = seed * 17 + 3;
    w.reads = genome::ReadSimulator(w.genome, rcfg).simulate().reads;
    for (const auto &read : w.reads)
        w.totalBases += static_cast<int64_t>(read.seq.size());
    return w;
}

/** Resolve a preset name: custom presets shadow the built-ins. */
const MemPreset *
findPreset(const SweepSpec &spec, const std::string &name)
{
    for (const auto &preset : spec.customPresets) {
        if (preset.name == name)
            return &preset;
    }
    for (const auto &preset : builtinMemPresets()) {
        if (preset.name == name)
            return &preset;
    }
    return nullptr;
}

std::string
joinErrors(const std::vector<std::string> &errors)
{
    std::string joined;
    for (const auto &e : errors)
        joined += (joined.empty() ? "" : "; ") + e;
    return joined;
}

/** Simulate one point and join the models. Never throws: any model
 *  rejection or failure becomes the point's error string. */
PointResult
runPoint(const SweepPoint &pt, const SweepSpec &spec,
         const Workload *shared)
{
    PointResult r;
    r.point = pt;
    try {
        const MemPreset *preset = findPreset(spec, pt.memPreset);
        if (!preset) {
            r.error = strfmt("memPreset: unknown preset '%s'",
                             pt.memPreset.c_str());
            return r;
        }

        runtime::RuntimeConfig rt;
        rt.clockHz = pt.clockMHz * 1e6;
        rt.dma = runtime::DmaConfig::fromName(pt.dmaPreset);
        rt.memory = preset->memory;
        // Points are farmed across cores: each simulation runs
        // sequentially on its harness worker.
        rt.simThreads = 1;

        std::vector<std::string> errors = runtime::validate(rt);
        if (pt.numPipelines < 1) {
            errors.push_back(strfmt("numPipelines: must be >= 1 "
                                    "(got %d)", pt.numPipelines));
        }
        if (pt.psize < 1) {
            errors.push_back(strfmt("psize: must be >= 1 (got %lld)",
                                    static_cast<long long>(pt.psize)));
        }
        if (!errors.empty()) {
            r.error = joinErrors(errors);
            return r;
        }

        Workload local;
        if (!shared)
            local = makeWorkload(pt.seed, spec.numPairs);
        const Workload &w = shared ? *shared : local;
        r.totalBases = w.totalBases;

        core::AccelRunInfo info;
        switch (pt.accel) {
          case Accel::MarkDup: {
            auto reads = w.reads;
            core::MarkDupAccelConfig cfg;
            cfg.numPipelines = pt.numPipelines;
            cfg.runtime = rt;
            info = std::move(
                core::MarkDupAccelerator(cfg).run(reads).info);
            break;
          }
          case Accel::Metadata: {
            auto reads = w.reads;
            core::MetadataAccelConfig cfg;
            cfg.numPipelines = pt.numPipelines;
            cfg.runtime = rt;
            cfg.psize = pt.psize;
            info = std::move(
                core::MetadataAccelerator(cfg).run(reads, w.genome)
                    .info);
            break;
          }
          case Accel::Bqsr: {
            core::BqsrAccelConfig cfg;
            cfg.numPipelines = pt.numPipelines;
            cfg.runtime = rt;
            cfg.psize = pt.psize;
            info = std::move(
                core::BqsrAccelerator(cfg).run(w.reads, w.genome).info);
            break;
          }
        }

        // Modeled hardware time only: simulated accelerator seconds
        // plus the DMA transfer model, scaled by the preset's resident
        // fraction. Host wall-clock buckets are excluded so the
        // frontier is deterministic.
        r.cycles = info.totalCycles;
        r.accelSeconds = info.timing.accelSeconds;
        r.dmaSeconds = info.timing.dmaSeconds * preset->dmaTrafficFraction;
        double hw_seconds = r.accelSeconds + r.dmaSeconds;
        if (!(hw_seconds > 0)) {
            r.error = "model: zero modeled hardware time";
            return r;
        }
        r.basesPerSecond =
            static_cast<double>(r.totalBases) / hw_seconds;

        r.dollarsPerHour = cost::boardDollarsPerHour(
            preset->memory.numChannels, rt.dma.name == "pcie4",
            preset->nearBank);
        double genome_seconds =
            hw_seconds * kGenomeBases / static_cast<double>(r.totalBases);
        r.dollarsPerGenome =
            genome_seconds / 3600.0 * r.dollarsPerHour;

        pipeline::ResourceUsage usage =
            pipeline::estimateResources(info.census);
        r.luts = usage.luts;
        r.registers = usage.registers;
        r.bramMiB = usage.bramMiB;
        r.lutPct = usage.lutUtilization();
        r.regPct = usage.registerUtilization();
        r.bramPct = usage.bramUtilization();
        r.maxUtilPct = std::max({r.lutPct, r.regPct, r.bramPct});
        r.fits = r.maxUtilPct <= 100.0;
        r.ok = true;
    } catch (const FatalError &e) {
        r.ok = false;
        r.error = e.what();
    } catch (const PanicError &e) {
        r.ok = false;
        r.error = std::string("internal: ") + e.what();
    }
    return r;
}

} // namespace

SweepResult
runSweep(const SweepSpec &spec, const HarnessOptions &options)
{
    std::vector<std::string> spec_errors = spec.validate();
    if (!spec_errors.empty())
        fatal("invalid SweepSpec: %s", joinErrors(spec_errors).c_str());

    SweepResult result;
    result.spec = spec;
    std::vector<SweepPoint> points = enumeratePoints(spec);
    result.points.resize(points.size());

    Workload shared;
    if (!spec.perPointWorkloads)
        shared = makeWorkload(spec.seed, spec.numPairs);
    const Workload *shared_ptr =
        spec.perPointWorkloads ? nullptr : &shared;

    int workers = static_cast<int>(envInt64(
        "GENESIS_DSE_WORKERS", options.workers, 0, 1024));
    if (workers <= 0) {
        unsigned hw = std::thread::hardware_concurrency();
        workers = static_cast<int>(hw ? hw : 1);
    }
    workers = std::max(
        1, std::min(workers, static_cast<int>(points.size())));

    // Farm the points over the simulator worker pool: the caller is one
    // worker, so the pool only needs workers - 1 helpers. Results land
    // at their point's index, so farming order never shows in the
    // output.
    sim::SimThreadPool pool(workers - 1);
    pool.run(points.size(), [&](size_t i) {
        result.points[i] = runPoint(points[i], spec, shared_ptr);
    });

    // Per-accelerator Pareto frontiers over the feasible points.
    for (Accel accel : spec.accels) {
        std::string name = accelName(accel);
        if (result.frontiers.count(name))
            continue; // duplicate axis entry
        std::vector<size_t> eligible;
        for (size_t i = 0; i < result.points.size(); ++i) {
            const PointResult &p = result.points[i];
            if (p.point.accel == accel && p.ok && p.fits)
                eligible.push_back(i);
        }
        result.frontiers[name] =
            paretoFrontier(result.points, eligible);
    }
    return result;
}

} // namespace genesis::dse

/**
 * @file
 * Sweep specification: memory presets, axis validation, and the
 * deterministic grid enumeration.
 */

#include "dse/dse.h"

#include <cmath>

#include "base/logging.h"

namespace genesis::dse {

const char *
accelName(Accel accel)
{
    switch (accel) {
      case Accel::MarkDup: return "markdup";
      case Accel::Metadata: return "metadata";
      case Accel::Bqsr: return "bqsr";
    }
    panic("unknown accel enum value %d", static_cast<int>(accel));
}

const std::vector<MemPreset> &
builtinMemPresets()
{
    static const std::vector<MemPreset> presets = [] {
        std::vector<MemPreset> p;

        // The paper's F1 card: 4 DDR4 channels, 16 B/cycle each.
        MemPreset ddr4;
        ddr4.name = "f1-ddr4";
        p.push_back(ddr4);

        // Same DDR4 timing, doubled channel count (a wider board).
        MemPreset ddr8 = ddr4;
        ddr8.name = "f1-ddr4-8ch";
        ddr8.memory.numChannels = 8;
        p.push_back(ddr8);

        // HBM-style stack: many channels, wider bus, slightly better
        // access latency, smaller rows.
        MemPreset hbm;
        hbm.name = "hbm";
        hbm.memory.numChannels = 8;
        hbm.memory.banksPerChannel = 16;
        hbm.memory.bytesPerCyclePerChannel = 32;
        hbm.memory.latencyCycles = 28;
        hbm.memory.rowBytes = 1024;
        p.push_back(hbm);

        // Near-bank / PIM-style organization (Ben-Hur et al.): compute
        // sits beside the banks, so per-access latency collapses and
        // channel-level parallelism is abundant; most column traffic is
        // resident in the stacks, so only a quarter of the modeled DMA
        // time crosses PCIe.
        MemPreset pim;
        pim.name = "pim";
        pim.memory.numChannels = 16;
        pim.memory.banksPerChannel = 16;
        pim.memory.bytesPerCyclePerChannel = 32;
        pim.memory.latencyCycles = 8;
        pim.memory.rowHitLatencyCycles = 4;
        pim.memory.accessGranularity = 32;
        pim.memory.rowBytes = 1024;
        pim.memory.maxBurstBytes = 128;
        pim.memory.portQueueDepth = 16;
        pim.nearBank = true;
        pim.dmaTrafficFraction = 0.25;
        p.push_back(pim);
        return p;
    }();
    return presets;
}

size_t
SweepSpec::numPoints() const
{
    return accels.size() * pipelines.size() * psizes.size() *
        memPresets.size() * dmaPresets.size() * clocksMHz.size();
}

std::vector<std::string>
SweepSpec::validate() const
{
    std::vector<std::string> errors;
    auto requireAxis = [&errors](bool empty, const char *field) {
        if (empty)
            errors.push_back(std::string(field) + ": axis is empty");
    };
    requireAxis(accels.empty(), "accels");
    requireAxis(pipelines.empty(), "pipelines");
    requireAxis(psizes.empty(), "psizes");
    requireAxis(memPresets.empty(), "memPresets");
    requireAxis(dmaPresets.empty(), "dmaPresets");
    requireAxis(clocksMHz.empty(), "clocksMHz");

    for (size_t i = 0; i < pipelines.size(); ++i) {
        if (pipelines[i] < 1) {
            errors.push_back(strfmt("pipelines[%zu]: must be >= 1 "
                                    "(got %d)", i, pipelines[i]));
        }
    }
    for (size_t i = 0; i < psizes.size(); ++i) {
        if (psizes[i] < 1) {
            errors.push_back(strfmt(
                "psizes[%zu]: SPM partition must hold at least one base "
                "pair (got %lld)", i,
                static_cast<long long>(psizes[i])));
        }
    }
    for (size_t i = 0; i < clocksMHz.size(); ++i) {
        if (!(clocksMHz[i] > 0) || !std::isfinite(clocksMHz[i])) {
            errors.push_back(strfmt("clocksMHz[%zu]: must be a positive "
                                    "finite frequency (got %g)", i,
                                    clocksMHz[i]));
        }
    }
    if (numPairs < 1) {
        errors.push_back(strfmt("numPairs: must be >= 1 (got %lld)",
                                static_cast<long long>(numPairs)));
    }
    return errors;
}

std::vector<SweepPoint>
enumeratePoints(const SweepSpec &spec)
{
    std::vector<SweepPoint> points;
    points.reserve(spec.numPoints());
    size_t index = 0;
    for (Accel accel : spec.accels) {
        for (int pipes : spec.pipelines) {
            for (int64_t psize : spec.psizes) {
                for (const std::string &mem : spec.memPresets) {
                    for (const std::string &dma : spec.dmaPresets) {
                        for (double clock : spec.clocksMHz) {
                            SweepPoint pt;
                            pt.index = index;
                            pt.accel = accel;
                            pt.numPipelines = pipes;
                            pt.psize = psize;
                            pt.memPreset = mem;
                            pt.dmaPreset = dma;
                            pt.clockMHz = clock;
                            // splitmix64-style per-point seed: stable
                            // under any farming order.
                            pt.seed = spec.seed ^
                                (0x9E3779B97F4A7C15ull *
                                 static_cast<uint64_t>(index + 1));
                            points.push_back(std::move(pt));
                            ++index;
                        }
                    }
                }
            }
        }
    }
    return points;
}

} // namespace genesis::dse

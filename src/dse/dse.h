/**
 * @file
 * Design-space exploration (DSE) harness over the Genesis hardware
 * models (ROADMAP item 5, DESIGN.md §10).
 *
 * A SweepSpec is a cross-product grid over the architectural knobs —
 * pipeline replication x SPM partition size x memory architecture
 * (DRAM channels/banks, including a near-bank/PIM-style preset) x PCIe
 * generation x accelerator clock — evaluated for each of the three
 * paper accelerators (markdup / metadata / BQSR). Every point runs one
 * full simulation of a deterministic synthetic workload; points are
 * farmed across host cores on the simulator's worker pool (one
 * sequential sim per point). Each point's simulated throughput is
 * joined with cost::boardDollarsPerHour (-> $/genome, scaled to a
 * 700 M-read genome) and pipeline::estimateResources (-> VU9P
 * LUT/FF/BRAM utilization) to produce per-accelerator Pareto frontiers
 * of throughput vs $/genome vs FPGA utilization.
 *
 * Determinism contract: the frontier JSON is a pure function of the
 * sweep spec — metrics use only *modeled* time (simulated cycles /
 * clockHz plus the DMA transfer model), never wall clock, and points
 * are collected by index — so the output is byte-identical at any
 * harness worker count.
 *
 * An invalid point (e.g. zero memory channels in a custom preset) is a
 * clean per-point error naming the offending field via
 * runtime::validate / sim::validate; the rest of the sweep proceeds.
 */

#ifndef GENESIS_DSE_DSE_H
#define GENESIS_DSE_DSE_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/memory.h"

namespace genesis::dse {

/** The three paper accelerators a sweep evaluates. */
enum class Accel { MarkDup, Metadata, Bqsr };

/** @return the stable identifier ("markdup" / "metadata" / "bqsr"). */
const char *accelName(Accel accel);

/**
 * One memory-architecture preset: a named MemoryConfig plus the
 * architectural attributes the cost model and the DMA model need. The
 * "pim" preset models a near-bank processing-in-memory organization
 * (many channels, low per-access latency) where most column traffic is
 * resident in the stacks, so only `dmaTrafficFraction` of the modeled
 * host<->card transfer time crosses PCIe.
 */
struct MemPreset {
    std::string name;
    sim::MemoryConfig memory;
    /** Near-bank / PIM-style organization (priced as a premium part). */
    bool nearBank = false;
    /** Fraction of modeled DMA time that still crosses the PCIe link. */
    double dmaTrafficFraction = 1.0;
};

/** @return the built-in presets: f1-ddr4, f1-ddr4-8ch, hbm, pim. */
const std::vector<MemPreset> &builtinMemPresets();

/** Grid specification: the cross product of every axis. */
struct SweepSpec {
    std::vector<Accel> accels{Accel::MarkDup, Accel::Metadata,
                              Accel::Bqsr};
    std::vector<int> pipelines{4, 16};
    /** SPM partition sizes (reference window base pairs; ignored by the
     *  SPM-less markdup pipeline but recorded in its points). */
    std::vector<int64_t> psizes{32'768, 131'072};
    /** Names resolved against customPresets then builtinMemPresets(). */
    std::vector<std::string> memPresets{"f1-ddr4", "pim"};
    /** DmaConfig preset names ("pcie3" / "pcie4"). */
    std::vector<std::string> dmaPresets{"pcie3", "pcie4"};
    std::vector<double> clocksMHz{250.0, 400.0};
    /** Workload seed; also the base of every per-point seed. */
    uint64_t seed = 2020;
    /** Read pairs in the synthetic workload. */
    int64_t numPairs = 400;
    /**
     * When false (default) all points simulate one shared workload
     * synthesized from `seed`, so frontier differences are purely
     * architectural. When true each point synthesizes its own workload
     * from its per-point seed (workload-robustness sweeps).
     */
    bool perPointWorkloads = false;
    /** Extra presets consulted before the built-ins (tests, PIM
     *  variants, deliberately-broken configs). */
    std::vector<MemPreset> customPresets;

    /** @return the default grid (the bench/sim_dse sweep). */
    static SweepSpec defaultGrid() { return SweepSpec(); }

    size_t numPoints() const;

    /** @return "field: problem" lines for every invalid axis (empty =
     *  valid). Unknown preset *names* are reported per point at run
     *  time, not here, so one bad name cannot kill a whole sweep. */
    std::vector<std::string> validate() const;
};

/** One grid point (a full accelerator configuration). */
struct SweepPoint {
    size_t index = 0;
    Accel accel = Accel::MarkDup;
    int numPipelines = 0;
    int64_t psize = 0;
    std::string memPreset;
    std::string dmaPreset;
    double clockMHz = 0.0;
    /** Deterministic per-point seed derived from spec.seed + index. */
    uint64_t seed = 0;
};

/** @return the spec's points in deterministic grid order. */
std::vector<SweepPoint> enumeratePoints(const SweepSpec &spec);

/** Simulated + modeled metrics of one evaluated point. */
struct PointResult {
    SweepPoint point;
    /** False when the configuration was rejected or the run failed;
     *  `error` then names the offending field or failure. */
    bool ok = false;
    std::string error;

    int64_t totalBases = 0;
    uint64_t cycles = 0;
    /** Modeled time only (deterministic): simulated cycles / clock and
     *  the DMA transfer model scaled by the preset's PCIe fraction. */
    double accelSeconds = 0.0;
    double dmaSeconds = 0.0;
    double basesPerSecond = 0.0;

    double dollarsPerHour = 0.0;
    /** Hardware dollars for a 700 M-read genome at this throughput. */
    double dollarsPerGenome = 0.0;

    uint64_t luts = 0;
    uint64_t registers = 0;
    double bramMiB = 0.0;
    double lutPct = 0.0;
    double regPct = 0.0;
    double bramPct = 0.0;
    double maxUtilPct = 0.0;
    /** True when every resource fits the VU9P (<= 100%). */
    bool fits = false;
};

/** A completed sweep: every point plus the per-accelerator frontiers. */
struct SweepResult {
    SweepSpec spec;
    std::vector<PointResult> points;
    /** accel name -> Pareto-optimal point indices (ascending). Only
     *  ok && fits points are eligible. */
    std::map<std::string, std::vector<size_t>> frontiers;
};

struct HarnessOptions {
    /** Concurrent points (0 = auto: hardware_concurrency, capped by the
     *  point count). Overridden by GENESIS_DSE_WORKERS. The frontier
     *  JSON is byte-identical at any value. */
    int workers = 0;
};

/** Run the sweep: simulate every point, join the models, build the
 *  frontiers. Fatal on an invalid spec (bad *axis*); an invalid *point*
 *  is recorded as that point's error. */
SweepResult runSweep(const SweepSpec &spec,
                     const HarnessOptions &options = HarnessOptions());

/** @return true when `a` Pareto-dominates `b` (no worse on throughput,
 *  $/genome and max utilization; strictly better on at least one). */
bool dominates(const PointResult &a, const PointResult &b);

/** @return the non-dominated subset of `candidates` (ascending). */
std::vector<size_t>
paretoFrontier(const std::vector<PointResult> &points,
               const std::vector<size_t> &candidates);

/** Serialize the whole sweep (spec, points, frontiers) as one JSON
 *  object with fixed field order and formatting (byte-stable). */
std::string toJson(const SweepResult &result);

/** Human-readable sweep summary with per-accelerator frontier tables. */
std::string summary(const SweepResult &result);

/**
 * Frontier sanity gate (CI): every accelerator with at least one
 * eligible point has a non-empty frontier; every frontier point is ok,
 * fits, and is not dominated by any eligible point (monotone front);
 * every eligible non-frontier point is dominated by a frontier point.
 * @return problem descriptions (empty = sane).
 */
std::vector<std::string> checkFrontier(const SweepResult &result);

} // namespace genesis::dse

#endif // GENESIS_DSE_DSE_H

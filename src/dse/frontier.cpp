/**
 * @file
 * Pareto-frontier computation, byte-stable JSON serialization, the
 * human-readable summary, and the CI sanity gate.
 */

#include "dse/dse.h"

#include <algorithm>
#include <cinttypes>

#include "base/logging.h"

namespace genesis::dse {

namespace {

/** Byte-stable double rendering (pure function of the value). */
std::string
jnum(double v)
{
    return strfmt("%.10g", v);
}

std::string
jstr(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default: out += c;
        }
    }
    out += "\"";
    return out;
}

std::string
pointJson(const PointResult &p)
{
    std::string out = "{";
    out += strfmt("\"index\": %zu, ", p.point.index);
    out += strfmt("\"accel\": %s, ",
                  jstr(accelName(p.point.accel)).c_str());
    out += strfmt("\"pipelines\": %d, ", p.point.numPipelines);
    out += strfmt("\"psize\": %lld, ",
                  static_cast<long long>(p.point.psize));
    out += strfmt("\"mem\": %s, ", jstr(p.point.memPreset).c_str());
    out += strfmt("\"dma\": %s, ", jstr(p.point.dmaPreset).c_str());
    out += strfmt("\"clock_mhz\": %s, ", jnum(p.point.clockMHz).c_str());
    out += strfmt("\"seed\": %" PRIu64 ", ", p.point.seed);
    out += strfmt("\"ok\": %s, ", p.ok ? "true" : "false");
    out += strfmt("\"error\": %s, ", jstr(p.error).c_str());
    out += strfmt("\"total_bases\": %lld, ",
                  static_cast<long long>(p.totalBases));
    out += strfmt("\"cycles\": %" PRIu64 ", ", p.cycles);
    out += strfmt("\"accel_seconds\": %s, ",
                  jnum(p.accelSeconds).c_str());
    out += strfmt("\"dma_seconds\": %s, ", jnum(p.dmaSeconds).c_str());
    out += strfmt("\"bases_per_second\": %s, ",
                  jnum(p.basesPerSecond).c_str());
    out += strfmt("\"dollars_per_hour\": %s, ",
                  jnum(p.dollarsPerHour).c_str());
    out += strfmt("\"dollars_per_genome\": %s, ",
                  jnum(p.dollarsPerGenome).c_str());
    out += strfmt("\"luts\": %" PRIu64 ", ", p.luts);
    out += strfmt("\"registers\": %" PRIu64 ", ", p.registers);
    out += strfmt("\"bram_mib\": %s, ", jnum(p.bramMiB).c_str());
    out += strfmt("\"lut_pct\": %s, ", jnum(p.lutPct).c_str());
    out += strfmt("\"reg_pct\": %s, ", jnum(p.regPct).c_str());
    out += strfmt("\"bram_pct\": %s, ", jnum(p.bramPct).c_str());
    out += strfmt("\"max_util_pct\": %s, ",
                  jnum(p.maxUtilPct).c_str());
    out += strfmt("\"fits\": %s}", p.fits ? "true" : "false");
    return out;
}

} // namespace

bool
dominates(const PointResult &a, const PointResult &b)
{
    bool no_worse = a.basesPerSecond >= b.basesPerSecond &&
        a.dollarsPerGenome <= b.dollarsPerGenome &&
        a.maxUtilPct <= b.maxUtilPct;
    bool better = a.basesPerSecond > b.basesPerSecond ||
        a.dollarsPerGenome < b.dollarsPerGenome ||
        a.maxUtilPct < b.maxUtilPct;
    return no_worse && better;
}

std::vector<size_t>
paretoFrontier(const std::vector<PointResult> &points,
               const std::vector<size_t> &candidates)
{
    std::vector<size_t> frontier;
    for (size_t i : candidates) {
        bool dominated = false;
        for (size_t j : candidates) {
            if (i != j && dominates(points[j], points[i])) {
                dominated = true;
                break;
            }
        }
        if (!dominated)
            frontier.push_back(i);
    }
    std::sort(frontier.begin(), frontier.end());
    return frontier;
}

std::string
toJson(const SweepResult &result)
{
    std::string out = "{\"bench\": \"sim_dse\", ";
    out += strfmt("\"seed\": %" PRIu64 ", ", result.spec.seed);
    out += strfmt("\"num_pairs\": %lld, ",
                  static_cast<long long>(result.spec.numPairs));
    out += strfmt("\"per_point_workloads\": %s, ",
                  result.spec.perPointWorkloads ? "true" : "false");
    out += strfmt("\"num_points\": %zu, ", result.points.size());
    out += "\"points\": [";
    for (size_t i = 0; i < result.points.size(); ++i) {
        if (i)
            out += ", ";
        out += "\n  " + pointJson(result.points[i]);
    }
    out += "],\n \"frontiers\": {";
    bool first_accel = true;
    for (const auto &[name, indices] : result.frontiers) {
        if (!first_accel)
            out += ", ";
        first_accel = false;
        out += jstr(name) + ": [";
        for (size_t i = 0; i < indices.size(); ++i) {
            if (i)
                out += ", ";
            out += strfmt("%zu", indices[i]);
        }
        out += "]";
    }
    out += "}}\n";
    return out;
}

std::string
summary(const SweepResult &result)
{
    size_t failed = 0;
    size_t misfit = 0;
    for (const auto &p : result.points) {
        if (!p.ok)
            ++failed;
        else if (!p.fits)
            ++misfit;
    }
    std::string out = strfmt(
        "sim_dse sweep: %zu points (%zu accels x %zu pipelines x %zu "
        "psizes x %zu mem x %zu dma x %zu clocks), %zu failed, %zu "
        "over-capacity\n",
        result.points.size(), result.spec.accels.size(),
        result.spec.pipelines.size(), result.spec.psizes.size(),
        result.spec.memPresets.size(), result.spec.dmaPresets.size(),
        result.spec.clocksMHz.size(), failed, misfit);
    for (const auto &p : result.points) {
        if (!p.ok) {
            out += strfmt("  point %zu (%s): %s\n", p.point.index,
                          accelName(p.point.accel), p.error.c_str());
        }
    }
    for (const auto &[name, indices] : result.frontiers) {
        size_t eligible = 0;
        for (const auto &p : result.points) {
            if (accelName(p.point.accel) == name && p.ok && p.fits)
                ++eligible;
        }
        out += strfmt("frontier[%s]: %zu of %zu feasible points\n",
                      name.c_str(), indices.size(), eligible);
        out += "  idx  pipes      psize  mem          dma    MHz   "
               "Mbp/s  $/genome  util%\n";
        for (size_t i : indices) {
            const PointResult &p = result.points[i];
            out += strfmt(
                "  %3zu  %5d  %9lld  %-11s  %-5s  %5.0f  %6.1f  "
                "%8.2f  %5.1f\n",
                p.point.index, p.point.numPipelines,
                static_cast<long long>(p.point.psize),
                p.point.memPreset.c_str(), p.point.dmaPreset.c_str(),
                p.point.clockMHz, p.basesPerSecond / 1e6,
                p.dollarsPerGenome, p.maxUtilPct);
        }
    }
    return out;
}

std::vector<std::string>
checkFrontier(const SweepResult &result)
{
    std::vector<std::string> problems;
    for (const auto &[name, frontier] : result.frontiers) {
        std::vector<size_t> eligible;
        for (size_t i = 0; i < result.points.size(); ++i) {
            const PointResult &p = result.points[i];
            if (accelName(p.point.accel) == name && p.ok && p.fits)
                eligible.push_back(i);
        }
        if (eligible.empty()) {
            problems.push_back(strfmt(
                "frontier[%s]: no feasible points to build a frontier "
                "from", name.c_str()));
            continue;
        }
        if (frontier.empty()) {
            problems.push_back(strfmt(
                "frontier[%s]: empty despite %zu feasible points",
                name.c_str(), eligible.size()));
            continue;
        }
        for (size_t i : frontier) {
            if (i >= result.points.size()) {
                problems.push_back(strfmt(
                    "frontier[%s]: index %zu out of range",
                    name.c_str(), i));
                continue;
            }
            const PointResult &p = result.points[i];
            if (!p.ok || !p.fits) {
                problems.push_back(strfmt(
                    "frontier[%s]: point %zu is not feasible",
                    name.c_str(), i));
            }
            // Monotone front: no eligible point may dominate a
            // frontier point (a front that "dips" has exactly such a
            // dominating point).
            for (size_t j : eligible) {
                if (j != i &&
                    dominates(result.points[j], result.points[i])) {
                    problems.push_back(strfmt(
                        "frontier[%s]: point %zu is dominated by "
                        "point %zu", name.c_str(), i, j));
                }
            }
        }
        // Coverage: every feasible non-frontier point must be dominated
        // by some frontier point (otherwise it belongs on the front).
        for (size_t j : eligible) {
            if (std::find(frontier.begin(), frontier.end(), j) !=
                frontier.end()) {
                continue;
            }
            bool covered = false;
            for (size_t i : frontier) {
                if (dominates(result.points[i], result.points[j])) {
                    covered = true;
                    break;
                }
            }
            if (!covered) {
                problems.push_back(strfmt(
                    "frontier[%s]: feasible point %zu is neither on "
                    "the front nor dominated", name.c_str(), j));
            }
        }
    }
    return problems;
}

} // namespace genesis::dse

#include "cost/cost.h"

#include <sstream>

#include "base/logging.h"

namespace genesis::cost {

InstanceSpec
InstanceSpec::f1_2xlarge()
{
    InstanceSpec spec;
    spec.name = "f1.2xlarge";
    spec.processors = "Intel Xeon E5-2686 v4 (Broadwell) 2.3 GHz";
    spec.cores = 4;
    spec.threads = 8;
    spec.memory = "122 GiB";
    spec.storage = "500 GB SSD";
    spec.accelerator = "1x Xilinx Virtex UltraScale+ VU9P, 64 GB";
    spec.dollarsPerHour = 1.65;
    return spec;
}

InstanceSpec
InstanceSpec::r5_4xlarge()
{
    InstanceSpec spec;
    spec.name = "r5.4xlarge";
    spec.processors = "Intel Xeon Platinum 8175M (Skylake-SP) 2.5 GHz";
    spec.cores = 8;
    spec.threads = 16;
    spec.memory = "128 GiB";
    spec.storage = "2 TB SSD";
    spec.dollarsPerHour = 1.01 + 0.28; // compute + storage volume
    return spec;
}

std::string
InstanceSpec::str() const
{
    std::ostringstream os;
    os << name << ": " << processors << ", " << cores << "C/" << threads
       << "T, " << memory << ", " << storage;
    if (!accelerator.empty())
        os << ", FPGA " << accelerator;
    os.precision(2);
    os << std::fixed << " ($" << dollarsPerHour << "/hr)";
    return os.str();
}

double
runCost(double seconds, const InstanceSpec &instance)
{
    if (seconds < 0)
        fatal("negative runtime");
    return seconds / 3600.0 * instance.dollarsPerHour;
}

double
boardDollarsPerHour(int dram_channels, bool pcie4, bool near_bank)
{
    if (dram_channels < 1)
        fatal("board needs at least one DRAM channel");
    // Anchor: the paper's F1 board (4 channels, PCIe 3) at the
    // f1.2xlarge price. Each channel beyond the baseline four adds
    // board cost; PCIe 4.0 and near-bank stacks are premium parts.
    double dollars = InstanceSpec::f1_2xlarge().dollarsPerHour;
    if (dram_channels > 4)
        dollars += 0.08 * static_cast<double>(dram_channels - 4);
    if (pcie4)
        dollars += 0.15;
    if (near_bank)
        dollars += 0.40;
    return dollars;
}

CostComparison
compareCost(const std::string &stage, double speedup,
            const InstanceSpec &baseline, const InstanceSpec &genesis)
{
    if (speedup <= 0)
        fatal("speedup must be positive");
    CostComparison cmp;
    cmp.stage = stage;
    cmp.speedup = speedup;
    // Same work: baseline takes `speedup` times longer on a machine
    // costing baseline.$/hr; Genesis takes 1 unit on genesis.$/hr.
    cmp.costReduction =
        speedup * baseline.dollarsPerHour / genesis.dollarsPerHour;
    cmp.normalizedPerfPerDollar = cmp.speedup * cmp.costReduction;
    return cmp;
}

} // namespace genesis::cost

/**
 * @file
 * Cloud cost model (paper Tables II and III).
 *
 * Encodes the 2019-11 AWS prices the paper uses — f1.2xlarge at $1.65/hr
 * for the Genesis system, r5.4xlarge at $1.01/hr compute + $0.28/hr for
 * the 2 TB SSD volume for the software baseline — and the Table III
 * arithmetic: cost reduction = speedup x (baseline $/hr / Genesis $/hr),
 * normalized performance per dollar = speedup x cost reduction.
 */

#ifndef GENESIS_COST_COST_H
#define GENESIS_COST_COST_H

#include <string>

namespace genesis::cost {

/** One cloud machine configuration (Table II). */
struct InstanceSpec {
    std::string name;
    std::string processors;
    int cores = 0;
    int threads = 0;
    std::string memory;
    std::string storage;
    std::string accelerator;
    /** Total price in dollars per hour (compute + storage). */
    double dollarsPerHour = 0.0;

    /** The f1.2xlarge hosting the Genesis accelerators. */
    static InstanceSpec f1_2xlarge();
    /** The memory-optimised r5.4xlarge running GATK4 software. */
    static InstanceSpec r5_4xlarge();

    /** Render a Table-II style description block. */
    std::string str() const;
};

/** @return dollars to run for the given duration on the instance. */
double runCost(double seconds, const InstanceSpec &instance);

/**
 * Hourly price model for hypothetical F1-class board variants swept by
 * the design-space exploration harness (src/dse). Anchored at the
 * f1.2xlarge price for the paper's board (4 DRAM channels, PCIe 3);
 * extra DRAM channels, a PCIe 4.0 interconnect and near-bank (PIM-style)
 * memory stacks each carry a premium, so the cost axis of a sweep is a
 * genuine trade-off instead of a fixed price divided by throughput.
 * Premiums are first-order model assumptions (DESIGN.md §10), not AWS
 * list prices.
 */
double boardDollarsPerHour(int dram_channels, bool pcie4, bool near_bank);

/** One Table III row computed from a measured speedup. */
struct CostComparison {
    std::string stage;
    double speedup = 1.0;
    double costReduction = 1.0;
    double normalizedPerfPerDollar = 1.0;
};

/**
 * Compute the Table III metrics for one stage.
 * @param speedup Genesis speedup over the software baseline
 */
CostComparison compareCost(const std::string &stage, double speedup,
                           const InstanceSpec &baseline =
                               InstanceSpec::r5_4xlarge(),
                           const InstanceSpec &genesis =
                               InstanceSpec::f1_2xlarge());

} // namespace genesis::cost

#endif // GENESIS_COST_COST_H

#include "runtime/batch.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <vector>

#include "base/logging.h"
#include "base/trace.h"

namespace genesis::runtime {

namespace {

/** One in-flight shard: its session and private trace recording. */
struct Lane {
    std::unique_ptr<AcceleratorSession> session;
    std::unique_ptr<TraceSink> trace;
    size_t shard = 0;
};

} // namespace

BatchRunner::BatchRunner(const BatchConfig &config) : config_(config)
{
    if (config_.numLanes < 1)
        fatal("batch needs at least one lane");
}

BatchStats
BatchRunner::run(size_t num_shards, const ShardBuild &build,
                 const ShardCollect &collect)
{
    const auto wall_start = std::chrono::steady_clock::now();
    BatchStats stats;
    stats.shards = num_shards;

    TraceSink *shared_trace = config_.runtime.trace;
    // Sessions must never record into the shared sink directly: it is
    // single-writer and the lanes run concurrently. Each shard gets a
    // private sink, adopted into the shared one at retirement.
    RuntimeConfig shard_config = config_.runtime;
    shard_config.trace = nullptr;

    const size_t lanes =
        std::min<size_t>(static_cast<size_t>(config_.numLanes),
                         num_shards ? num_shards : 1);
    // Up to `lanes` sessions simulate concurrently: tell every session
    // so its simulator-worker sizing shares the host's cores instead of
    // multiplying against the lane count (sim/parallel.h policy).
    shard_config.concurrentSessions =
        std::max(shard_config.concurrentSessions, static_cast<int>(lanes));
    std::vector<Lane> inflight(lanes);

    auto retire = [&](Lane &lane) {
        if (!lane.session)
            return;
        lane.session->wait();
        collect(lane.shard, *lane.session);
        stats.timing += lane.session->timing();
        stats.totalCycles += lane.session->sim().cycle();
        if (shared_trace && lane.trace)
            shared_trace->adopt(*lane.trace);
        lane.session.reset();
        lane.trace.reset();
    };

    for (size_t shard = 0; shard < num_shards; ++shard) {
        Lane &lane = inflight[shard % lanes];
        // Blocks only when this lane's previous shard is still running;
        // the other lanes keep executing while we build the next shard.
        retire(lane);
        lane.shard = shard;
        lane.session = config_.sharedDevice
            ? std::make_unique<AcceleratorSession>(shard_config,
                                                   config_.sharedDevice)
            : std::make_unique<AcceleratorSession>(shard_config);
        if (shared_trace) {
            lane.trace = std::make_unique<TraceSink>();
            lane.session->attachTrace(
                lane.trace.get(),
                config_.runtime.traceLabel + ".shard" +
                    std::to_string(shard));
        }
        build(shard, *lane.session);
        lane.session->start();
    }
    // Drain in deal order so collect() sees shards retire oldest-first.
    for (size_t i = 0; i < lanes; ++i)
        retire(inflight[(num_shards + i) % lanes]);

    const auto wall_end = std::chrono::steady_clock::now();
    stats.wallSeconds =
        std::chrono::duration<double>(wall_end - wall_start).count();
    return stats;
}

} // namespace genesis::runtime

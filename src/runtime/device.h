/**
 * @file
 * Device (FPGA-attached DRAM) memory management for the host runtime.
 *
 * Allocates ColumnBuffers at increasing device addresses (which drives
 * channel interleaving in the timing model) and decodes host columns
 * into their device images.
 */

#ifndef GENESIS_RUNTIME_DEVICE_H
#define GENESIS_RUNTIME_DEVICE_H

#include <memory>
#include <vector>

#include "modules/stream_buffer.h"
#include "table/column.h"

namespace genesis::runtime {

/** Device memory allocator / column store. */
class DeviceMemory
{
  public:
    /** Allocation alignment (rows of the DRAM interleave). */
    static constexpr uint64_t kAlignment = 4096;

    DeviceMemory() = default;

    /** Allocate an empty buffer (for accelerator outputs). */
    modules::ColumnBuffer *allocate(const std::string &name,
                                    uint32_t elem_size_bytes,
                                    uint64_t reserve_bytes = 1 << 20);

    /** Decode and store a host column (configure_mem's copy step). */
    modules::ColumnBuffer *upload(const std::string &name,
                                  const table::Column &column);

    /** Store a pre-decoded element stream. */
    modules::ColumnBuffer *upload(const std::string &name,
                                  std::vector<int64_t> elements,
                                  std::vector<uint32_t> row_lengths,
                                  uint32_t elem_size_bytes);

    /** @return buffer by name, or nullptr. */
    modules::ColumnBuffer *find(const std::string &name);

    /** Total bytes currently allocated. */
    uint64_t allocatedBytes() const { return nextAddr_; }

    const std::vector<std::unique_ptr<modules::ColumnBuffer>> &
    buffers() const
    {
        return buffers_;
    }

  private:
    uint64_t reserve(uint64_t bytes);

    std::vector<std::unique_ptr<modules::ColumnBuffer>> buffers_;
    uint64_t nextAddr_ = 0;
};

} // namespace genesis::runtime

#endif // GENESIS_RUNTIME_DEVICE_H

/**
 * @file
 * Device (FPGA-attached DRAM) memory management for the host runtime.
 *
 * DeviceMemory is a managed allocator over one board's DRAM: buffers
 * are placed at aligned device addresses (which drive channel
 * interleaving in the timing model), released space is coalesced into a
 * free list and reused, and every reservation is validated against the
 * configured card capacity (64 GB on the paper's VU9P) so a runaway
 * workload fails loudly instead of bumping past the card.
 *
 * On top of the allocator sits a keyed column cache for long-lived
 * boards serving many jobs (src/service): acquireCached() returns the
 * resident image of a column when the key is present — skipping the
 * decode + DMA-in of configure_mem entirely — and uploads it on a miss.
 * Cached columns are pinned while a job uses them and evicted in LRU
 * order when the cached bytes exceed the configured cache capacity.
 *
 * Thread-safety: all host-side operations (upload/allocate/find/
 * release/acquireCached/unpin and the stats accessors) are internally
 * serialized, so one DeviceMemory may be shared by concurrent sessions
 * on the same board. Buffer *contents* follow the session contract:
 * input elements are written before the consuming simulation starts and
 * are read-only afterwards; output elements are owned by exactly one
 * running simulation. buffers() iteration is not locked and must not
 * race with mutating calls.
 */

#ifndef GENESIS_RUNTIME_DEVICE_H
#define GENESIS_RUNTIME_DEVICE_H

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "modules/stream_buffer.h"
#include "table/column.h"

namespace genesis::runtime {

/** Device memory allocator / column store / column cache. */
class DeviceMemory
{
  public:
    /** Allocation alignment (rows of the DRAM interleave). */
    static constexpr uint64_t kAlignment = 4096;

    /** Card DRAM capacity of the paper's VU9P board (64 GB). */
    static constexpr uint64_t kDefaultCapacity = 64ull << 30;

    explicit DeviceMemory(uint64_t capacity_bytes = kDefaultCapacity);

    /**
     * Allocate an empty buffer (for accelerator outputs). Re-using an
     * existing name replaces that buffer in place: the old reservation
     * is released and the ColumnBuffer object (and pointers to it)
     * stays valid with fresh contents and a fresh reservation.
     */
    modules::ColumnBuffer *allocate(const std::string &name,
                                    uint32_t elem_size_bytes,
                                    uint64_t reserve_bytes = 1 << 20);

    /**
     * Decode and store a host column (configure_mem's copy step).
     * Sub-8-byte elements are sign-extended into the int64 device
     * element type, matching decodeHost() on the paper-literal path.
     * Duplicate names replace in place (see allocate()).
     */
    modules::ColumnBuffer *upload(const std::string &name,
                                  const table::Column &column);

    /** Store a pre-decoded element stream (duplicate names replace). */
    modules::ColumnBuffer *upload(const std::string &name,
                                  std::vector<int64_t> elements,
                                  std::vector<uint32_t> row_lengths,
                                  uint32_t elem_size_bytes);

    /** @return buffer by name, or nullptr. */
    modules::ColumnBuffer *find(const std::string &name);

    /**
     * Release a buffer: return its reservation to the free list and
     * drop the name. Cached or pinned buffers cannot be released this
     * way (use the cache API). @return false when the name is unknown.
     */
    bool release(const std::string &name);

    // --- Keyed column cache (src/service boards) -----------------------

    /** Result of a cache lookup/insert. */
    struct CachedColumn {
        modules::ColumnBuffer *buffer = nullptr;
        /** True when the column was already resident (no DMA needed). */
        bool hit = false;
    };

    /**
     * Return the resident column image for `key`, uploading `elements`
     * on a miss (the passed data is discarded on a hit — the resident
     * image is bit-identical by keying contract). The entry is pinned
     * until a matching unpin(); pinned entries are never evicted. On a
     * miss the cache evicts least-recently-used unpinned entries until
     * the new column fits under the cache capacity, and fails loudly
     * when it cannot.
     */
    CachedColumn acquireCached(const std::string &key,
                               std::vector<int64_t> elements,
                               std::vector<uint32_t> row_lengths,
                               uint32_t elem_size_bytes);

    /** Drop one pin from a cached entry (fatal if the key is unknown). */
    void unpin(const std::string &key);

    /** Cap on resident cached-column bytes (default: the capacity). */
    void setCacheCapacity(uint64_t bytes);

    /** Cache hit/miss/eviction counters. */
    struct CacheStats {
        uint64_t hits = 0;
        uint64_t misses = 0;
        uint64_t evictions = 0;
    };
    CacheStats cacheStats() const;

    /** Total bytes resident in cached columns. */
    uint64_t cachedBytes() const;

    /** Configured device capacity in bytes. */
    uint64_t capacityBytes() const { return capacity_; }

    /** Total bytes currently reserved by live buffers (padded). */
    uint64_t allocatedBytes() const;

    const std::vector<std::unique_ptr<modules::ColumnBuffer>> &
    buffers() const
    {
        return buffers_;
    }

  private:
    /** One reservation: [addr, addr + bytes), kAlignment-padded. */
    struct Block {
        uint64_t addr = 0;
        uint64_t bytes = 0;
    };

    /** One resident cached column. */
    struct CacheEntry {
        modules::ColumnBuffer *buffer = nullptr;
        uint64_t lastUse = 0;
        int pins = 0;
    };

    /** Round a byte count up to the allocation granule (never 0). */
    uint64_t paddedSize(uint64_t bytes) const;

    /** First-fit from the free list, else bump. Caller holds mutex_. */
    bool tryReserve(uint64_t bytes, Block *out);

    /** tryReserve that fails loudly on exhaustion/overflow. */
    Block reserveChecked(uint64_t bytes, const char *what);

    /** Return a block to the free list, coalescing neighbours. */
    void freeBlock(Block block);

    /** Insert-or-replace a buffer under `name`. Caller holds mutex_. */
    modules::ColumnBuffer *storeLocked(const std::string &name,
                                       std::vector<int64_t> elements,
                                       std::vector<uint32_t> row_lengths,
                                       uint32_t elem_size_bytes,
                                       bool is_output,
                                       uint64_t reserve_bytes);

    /** Evict the LRU unpinned cache entry; false when none. */
    bool evictOneLocked();

    /** Decode a serialized column image into sign-extended elements. */
    static std::vector<int64_t> decodeRaw(const std::vector<uint8_t> &raw,
                                          size_t elem_size);

    mutable std::mutex mutex_;
    std::vector<std::unique_ptr<modules::ColumnBuffer>> buffers_;
    /** name -> index into buffers_ (kept in sync on swap-and-pop). */
    std::unordered_map<std::string, size_t> index_;
    /** name -> its reservation, for release/replace. */
    std::unordered_map<std::string, Block> reservations_;
    /** Free blocks keyed by address (coalescing needs address order). */
    std::map<uint64_t, uint64_t> freeBlocks_;
    uint64_t bumpAddr_ = 0;
    uint64_t usedBytes_ = 0;
    uint64_t capacity_;

    std::unordered_map<std::string, CacheEntry> cache_;
    uint64_t cacheCapacity_;
    uint64_t cachedBytes_ = 0;
    uint64_t lruTick_ = 0;
    CacheStats cacheStats_;
};

} // namespace genesis::runtime

#endif // GENESIS_RUNTIME_DEVICE_H

#include "runtime/device.h"

#include "base/logging.h"

namespace genesis::runtime {

uint64_t
DeviceMemory::reserve(uint64_t bytes)
{
    uint64_t addr = nextAddr_;
    uint64_t padded = (bytes + kAlignment - 1) / kAlignment * kAlignment;
    nextAddr_ += padded == 0 ? kAlignment : padded;
    return addr;
}

modules::ColumnBuffer *
DeviceMemory::allocate(const std::string &name, uint32_t elem_size_bytes,
                       uint64_t reserve_bytes)
{
    auto buffer = std::make_unique<modules::ColumnBuffer>();
    buffer->name = name;
    buffer->elemSizeBytes = elem_size_bytes;
    buffer->baseAddr = reserve(reserve_bytes);
    buffer->isOutput = true;
    buffers_.push_back(std::move(buffer));
    return buffers_.back().get();
}

modules::ColumnBuffer *
DeviceMemory::upload(const std::string &name, const table::Column &column)
{
    std::vector<uint8_t> raw;
    std::vector<uint32_t> row_lengths;
    column.serialize(raw, row_lengths);

    // Decode the serialized bytes back into elements; the raw image is
    // what travels over DMA, the decoded form is what readers stream.
    size_t esize = table::elementSize(column.type());
    std::vector<int64_t> elements;
    elements.reserve(raw.size() / esize);
    for (size_t off = 0; off + esize <= raw.size(); off += esize) {
        uint64_t v = 0;
        for (size_t b = 0; b < esize; ++b)
            v |= static_cast<uint64_t>(raw[off + b]) << (8 * b);
        elements.push_back(static_cast<int64_t>(v));
    }
    return upload(name, std::move(elements), std::move(row_lengths),
                  static_cast<uint32_t>(esize));
}

modules::ColumnBuffer *
DeviceMemory::upload(const std::string &name,
                     std::vector<int64_t> elements,
                     std::vector<uint32_t> row_lengths,
                     uint32_t elem_size_bytes)
{
    auto buffer = std::make_unique<modules::ColumnBuffer>();
    buffer->name = name;
    buffer->elements = std::move(elements);
    buffer->rowLengths = std::move(row_lengths);
    buffer->elemSizeBytes = elem_size_bytes;
    buffer->baseAddr = reserve(buffer->totalBytes());
    buffers_.push_back(std::move(buffer));
    return buffers_.back().get();
}

modules::ColumnBuffer *
DeviceMemory::find(const std::string &name)
{
    for (auto &buffer : buffers_) {
        if (buffer->name == name)
            return buffer.get();
    }
    return nullptr;
}

} // namespace genesis::runtime

#include "runtime/device.h"

#include <limits>

#include "base/logging.h"

namespace genesis::runtime {

DeviceMemory::DeviceMemory(uint64_t capacity_bytes)
    : capacity_(capacity_bytes), cacheCapacity_(capacity_bytes)
{
    if (capacity_ < kAlignment)
        fatal("device capacity %llu below the %llu-byte alignment",
              static_cast<unsigned long long>(capacity_),
              static_cast<unsigned long long>(kAlignment));
}

uint64_t
DeviceMemory::paddedSize(uint64_t bytes) const
{
    // Even a zero-byte reservation occupies one granule so every buffer
    // gets a distinct device address.
    if (bytes == 0)
        return kAlignment;
    return (bytes + kAlignment - 1) / kAlignment * kAlignment;
}

bool
DeviceMemory::tryReserve(uint64_t bytes, Block *out)
{
    const uint64_t padded = paddedSize(bytes);
    // First fit from released space.
    for (auto it = freeBlocks_.begin(); it != freeBlocks_.end(); ++it) {
        if (it->second < padded)
            continue;
        out->addr = it->first;
        out->bytes = padded;
        const uint64_t rest = it->second - padded;
        freeBlocks_.erase(it);
        if (rest > 0)
            freeBlocks_.emplace(out->addr + padded, rest);
        usedBytes_ += padded;
        return true;
    }
    if (padded > capacity_ - bumpAddr_)
        return false;
    out->addr = bumpAddr_;
    out->bytes = padded;
    bumpAddr_ += padded;
    usedBytes_ += padded;
    return true;
}

DeviceMemory::Block
DeviceMemory::reserveChecked(uint64_t bytes, const char *what)
{
    // Reject sizes whose padding arithmetic would wrap before they are
    // compared against the capacity (bytes near UINT64_MAX must not
    // alias a small reservation).
    if (bytes > std::numeric_limits<uint64_t>::max() - (kAlignment - 1))
        fatal("device reservation of %llu bytes for '%s' overflows the "
              "address space",
              static_cast<unsigned long long>(bytes), what);
    if (paddedSize(bytes) > capacity_)
        fatal("device reservation of %llu bytes for '%s' exceeds the "
              "%llu-byte card capacity",
              static_cast<unsigned long long>(bytes), what,
              static_cast<unsigned long long>(capacity_));
    Block block;
    if (!tryReserve(bytes, &block))
        fatal("device memory exhausted: %llu bytes for '%s' do not fit "
              "(%llu of %llu bytes in use)",
              static_cast<unsigned long long>(bytes), what,
              static_cast<unsigned long long>(usedBytes_),
              static_cast<unsigned long long>(capacity_));
    return block;
}

void
DeviceMemory::freeBlock(Block block)
{
    GENESIS_ASSERT(usedBytes_ >= block.bytes, "free of unreserved bytes");
    usedBytes_ -= block.bytes;
    auto [it, inserted] = freeBlocks_.emplace(block.addr, block.bytes);
    GENESIS_ASSERT(inserted, "double free at device address %llu",
                   static_cast<unsigned long long>(block.addr));
    // Coalesce with the successor, then the predecessor.
    auto next = std::next(it);
    if (next != freeBlocks_.end() &&
        it->first + it->second == next->first) {
        it->second += next->second;
        freeBlocks_.erase(next);
    }
    if (it != freeBlocks_.begin()) {
        auto prev = std::prev(it);
        if (prev->first + prev->second == it->first) {
            prev->second += it->second;
            freeBlocks_.erase(it);
            it = prev;
        }
    }
    // Give trailing space back to the bump region so it can satisfy
    // reservations larger than any interior hole.
    if (it->first + it->second == bumpAddr_) {
        bumpAddr_ = it->first;
        freeBlocks_.erase(it);
    }
}

modules::ColumnBuffer *
DeviceMemory::storeLocked(const std::string &name,
                          std::vector<int64_t> elements,
                          std::vector<uint32_t> row_lengths,
                          uint32_t elem_size_bytes, bool is_output,
                          uint64_t reserve_bytes)
{
    modules::ColumnBuffer *buffer = nullptr;
    auto it = index_.find(name);
    if (it != index_.end()) {
        // Re-upload replaces in place: pointers held by modules stay
        // valid, the old reservation is reclaimed before the new one is
        // carved so the space is reusable for the new image.
        if (cache_.count(name))
            fatal("device buffer '%s' is a cached column; release it "
                  "through the cache, not by re-upload",
                  name.c_str());
        buffer = buffers_[it->second].get();
        freeBlock(reservations_.at(name));
        reservations_.erase(name);
    } else {
        buffers_.push_back(std::make_unique<modules::ColumnBuffer>());
        buffer = buffers_.back().get();
        index_.emplace(name, buffers_.size() - 1);
    }
    buffer->name = name;
    buffer->elements = std::move(elements);
    buffer->rowLengths = std::move(row_lengths);
    buffer->elemSizeBytes = elem_size_bytes;
    buffer->isOutput = is_output;
    const uint64_t bytes =
        is_output ? reserve_bytes : buffer->totalBytes();
    Block block = reserveChecked(bytes, name.c_str());
    buffer->baseAddr = block.addr;
    reservations_.emplace(name, block);
    return buffer;
}

modules::ColumnBuffer *
DeviceMemory::allocate(const std::string &name, uint32_t elem_size_bytes,
                       uint64_t reserve_bytes)
{
    std::lock_guard<std::mutex> lock(mutex_);
    return storeLocked(name, {}, {}, elem_size_bytes, true,
                       reserve_bytes);
}

std::vector<int64_t>
DeviceMemory::decodeRaw(const std::vector<uint8_t> &raw, size_t elem_size)
{
    std::vector<int64_t> elements;
    elements.reserve(raw.size() / elem_size);
    for (size_t off = 0; off + elem_size <= raw.size();
         off += elem_size) {
        uint64_t v = 0;
        for (size_t b = 0; b < elem_size; ++b)
            v |= static_cast<uint64_t>(raw[off + b]) << (8 * b);
        // The device element type is int64: sign-extend from the host
        // element width so e.g. int32 -1 decodes as -1, not 2^32 - 1
        // (the same contract as decodeHost on the paper-literal path).
        if (elem_size < 8) {
            const uint64_t sign_bit = 1ull << (8 * elem_size - 1);
            v = (v ^ sign_bit) - sign_bit;
        }
        elements.push_back(static_cast<int64_t>(v));
    }
    return elements;
}

modules::ColumnBuffer *
DeviceMemory::upload(const std::string &name, const table::Column &column)
{
    std::vector<uint8_t> raw;
    std::vector<uint32_t> row_lengths;
    column.serialize(raw, row_lengths);

    // Decode the serialized bytes back into elements; the raw image is
    // what travels over DMA, the decoded form is what readers stream.
    size_t esize = table::elementSize(column.type());
    return upload(name, decodeRaw(raw, esize), std::move(row_lengths),
                  static_cast<uint32_t>(esize));
}

modules::ColumnBuffer *
DeviceMemory::upload(const std::string &name,
                     std::vector<int64_t> elements,
                     std::vector<uint32_t> row_lengths,
                     uint32_t elem_size_bytes)
{
    std::lock_guard<std::mutex> lock(mutex_);
    return storeLocked(name, std::move(elements), std::move(row_lengths),
                       elem_size_bytes, false, 0);
}

modules::ColumnBuffer *
DeviceMemory::find(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(name);
    return it == index_.end() ? nullptr : buffers_[it->second].get();
}

bool
DeviceMemory::release(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(name);
    if (it == index_.end())
        return false;
    if (cache_.count(name))
        fatal("release of cached column '%s' (evict via the cache)",
              name.c_str());
    freeBlock(reservations_.at(name));
    reservations_.erase(name);
    // Swap-and-pop, fixing the moved buffer's index entry.
    const size_t idx = it->second;
    index_.erase(it);
    if (idx + 1 != buffers_.size()) {
        buffers_[idx] = std::move(buffers_.back());
        index_[buffers_[idx]->name] = idx;
    }
    buffers_.pop_back();
    return true;
}

bool
DeviceMemory::evictOneLocked()
{
    auto victim = cache_.end();
    for (auto it = cache_.begin(); it != cache_.end(); ++it) {
        if (it->second.pins > 0)
            continue;
        if (victim == cache_.end() ||
            it->second.lastUse < victim->second.lastUse)
            victim = it;
    }
    if (victim == cache_.end())
        return false;
    const std::string name = victim->first;
    GENESIS_ASSERT(cachedBytes_ >= reservations_.at(name).bytes,
                   "cached-bytes accounting underflow");
    cachedBytes_ -= reservations_.at(name).bytes;
    cache_.erase(victim);
    ++cacheStats_.evictions;
    // Now an ordinary buffer; reclaim it like any other release.
    freeBlock(reservations_.at(name));
    reservations_.erase(name);
    auto it = index_.find(name);
    const size_t idx = it->second;
    index_.erase(it);
    if (idx + 1 != buffers_.size()) {
        buffers_[idx] = std::move(buffers_.back());
        index_[buffers_[idx]->name] = idx;
    }
    buffers_.pop_back();
    return true;
}

DeviceMemory::CachedColumn
DeviceMemory::acquireCached(const std::string &key,
                            std::vector<int64_t> elements,
                            std::vector<uint32_t> row_lengths,
                            uint32_t elem_size_bytes)
{
    std::lock_guard<std::mutex> lock(mutex_);
    CachedColumn result;
    auto it = cache_.find(key);
    if (it != cache_.end()) {
        it->second.lastUse = ++lruTick_;
        ++it->second.pins;
        ++cacheStats_.hits;
        result.buffer = it->second.buffer;
        result.hit = true;
        return result;
    }
    if (index_.count(key))
        fatal("cache key '%s' collides with an uncached device buffer",
              key.c_str());

    ++cacheStats_.misses;
    const uint64_t bytes = paddedSize(
        static_cast<uint64_t>(elements.size()) * elem_size_bytes);
    // Make room under the cache capacity, then under the card capacity.
    while (cachedBytes_ + bytes > cacheCapacity_ && evictOneLocked()) {
    }
    if (cachedBytes_ + bytes > cacheCapacity_)
        fatal("column cache exhausted: '%s' needs %llu bytes but every "
              "resident column is pinned (cache capacity %llu)",
              key.c_str(), static_cast<unsigned long long>(bytes),
              static_cast<unsigned long long>(cacheCapacity_));
    Block block;
    bool reserved = false;
    while (!(reserved = tryReserve(
                 static_cast<uint64_t>(elements.size()) *
                     elem_size_bytes,
                 &block)) &&
           evictOneLocked()) {
    }
    if (!reserved)
        fatal("device memory exhausted caching column '%s' (%llu of "
              "%llu bytes in use)",
              key.c_str(), static_cast<unsigned long long>(usedBytes_),
              static_cast<unsigned long long>(capacity_));

    buffers_.push_back(std::make_unique<modules::ColumnBuffer>());
    modules::ColumnBuffer *buffer = buffers_.back().get();
    index_.emplace(key, buffers_.size() - 1);
    buffer->name = key;
    buffer->elements = std::move(elements);
    buffer->rowLengths = std::move(row_lengths);
    buffer->elemSizeBytes = elem_size_bytes;
    buffer->baseAddr = block.addr;
    reservations_.emplace(key, block);

    CacheEntry entry;
    entry.buffer = buffer;
    entry.lastUse = ++lruTick_;
    entry.pins = 1;
    cache_.emplace(key, entry);
    cachedBytes_ += block.bytes;
    result.buffer = buffer;
    result.hit = false;
    return result;
}

void
DeviceMemory::unpin(const std::string &key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = cache_.find(key);
    if (it == cache_.end())
        fatal("unpin of unknown cached column '%s'", key.c_str());
    GENESIS_ASSERT(it->second.pins > 0, "unpin of unpinned column '%s'",
                   key.c_str());
    --it->second.pins;
}

void
DeviceMemory::setCacheCapacity(uint64_t bytes)
{
    std::lock_guard<std::mutex> lock(mutex_);
    cacheCapacity_ = bytes;
    while (cachedBytes_ > cacheCapacity_ && evictOneLocked()) {
    }
}

DeviceMemory::CacheStats
DeviceMemory::cacheStats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return cacheStats_;
}

uint64_t
DeviceMemory::cachedBytes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return cachedBytes_;
}

uint64_t
DeviceMemory::allocatedBytes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return usedBytes_;
}

} // namespace genesis::runtime

/**
 * @file
 * Host <-> FPGA interconnect (DMA) timing model.
 *
 * On AWS F1 the host reaches the card through PCIe DMA, which the paper
 * measures at ~7 GB/s and identifies as the dominant limiter for the
 * Metadata Update and BQSR accelerators (53.4% and 29.5% of runtime).
 * The PCIe 4.0 preset reproduces the paper's 32 GB/s projection used for
 * the 33x / 16.4x speedup estimates.
 */

#ifndef GENESIS_RUNTIME_DMA_H
#define GENESIS_RUNTIME_DMA_H

#include <cstdint>
#include <string>

namespace genesis::runtime {

/** Interconnect configuration. */
struct DmaConfig {
    std::string name = "pcie3";
    /** Sustained bandwidth in bytes per second. */
    double bytesPerSecond = 7.0e9;
    /** Fixed per-transfer setup latency in seconds. */
    double perTransferLatency = 20e-6;

    /** The paper's measured F1 PCIe DMA (~7 GB/s). */
    static DmaConfig pcie3();
    /** The paper's projected PCIe 4.0 interconnect (32 GB/s). */
    static DmaConfig pcie4();
    /** Preset lookup by name ("pcie3" / "pcie4"); fatal on unknown. */
    static DmaConfig fromName(const std::string &name);
};

/** @return seconds to move `bytes` over the interconnect (one transfer). */
double transferSeconds(const DmaConfig &config, uint64_t bytes);

} // namespace genesis::runtime

#endif // GENESIS_RUNTIME_DMA_H

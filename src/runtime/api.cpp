#include "runtime/api.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <shared_mutex>
#include <sstream>
#include <vector>

#include "base/logging.h"
#include "base/trace.h"

namespace genesis::runtime {

// --- TimingBreakdown ----------------------------------------------------

TimingBreakdown &
TimingBreakdown::operator+=(const TimingBreakdown &other)
{
    hostSeconds += other.hostSeconds;
    dmaSeconds += other.dmaSeconds;
    accelSeconds += other.accelSeconds;
    return *this;
}

std::string
TimingBreakdown::str() const
{
    double t = total();
    auto pct = [t](double x) { return t > 0 ? 100.0 * x / t : 0.0; };
    std::ostringstream os;
    os.precision(2);
    os << std::fixed;
    os << "total " << t << " s"
       << " | host " << hostSeconds << " s (" << pct(hostSeconds) << "%)"
       << " | communication " << dmaSeconds << " s (" << pct(dmaSeconds)
       << "%)"
       << " | accelerator " << accelSeconds << " s ("
       << pct(accelSeconds) << "%)";
    return os.str();
}

// --- RuntimeConfig --------------------------------------------------------

std::vector<std::string>
validate(const RuntimeConfig &config)
{
    std::vector<std::string> errors;
    if (!(config.clockHz > 0) || !std::isfinite(config.clockHz)) {
        errors.push_back(strfmt("clockHz: accelerator clock must be a "
                                "positive finite frequency (got %g)",
                                config.clockHz));
    }
    if (!(config.dma.bytesPerSecond > 0) ||
        !std::isfinite(config.dma.bytesPerSecond)) {
        errors.push_back(strfmt("dma.bytesPerSecond: interconnect "
                                "bandwidth must be positive (got %g)",
                                config.dma.bytesPerSecond));
    }
    if (config.dma.perTransferLatency < 0) {
        errors.push_back(strfmt("dma.perTransferLatency: must be "
                                "non-negative (got %g)",
                                config.dma.perTransferLatency));
    }
    if (config.simThreads < 0) {
        errors.push_back(strfmt("simThreads: must be >= 0 (got %d)",
                                config.simThreads));
    }
    if (config.concurrentSessions < 1) {
        errors.push_back(strfmt("concurrentSessions: must be >= 1 "
                                "(got %d)", config.concurrentSessions));
    }
    if (config.memThreads < 0) {
        errors.push_back(strfmt("memThreads: must be >= 0 (got %d)",
                                config.memThreads));
    }
    if (config.simWindow < 0) {
        errors.push_back(strfmt("simWindow: must be >= 0 (got %d)",
                                config.simWindow));
    }
    for (const auto &e : sim::validate(config.memory))
        errors.push_back("memory." + e);
    return errors;
}

// --- AcceleratorSession ---------------------------------------------------

AcceleratorSession::AcceleratorSession(const RuntimeConfig &config)
    : AcceleratorSession(config, nullptr)
{
}

AcceleratorSession::AcceleratorSession(const RuntimeConfig &config,
                                       DeviceMemory *device)
    : config_(config)
{
    // Validate before constructing the simulator so every invalid field
    // is reported by name in one shot (the MemorySystem constructor
    // would otherwise fatal on the first memory problem alone).
    std::vector<std::string> errors = validate(config_);
    if (!errors.empty()) {
        std::string joined;
        for (const auto &e : errors)
            joined += (joined.empty() ? "" : "; ") + e;
        fatal("invalid RuntimeConfig: %s", joined.c_str());
    }
    sim_ = std::make_unique<sim::Simulator>(config.memory);
    if (device) {
        device_ = device;
    } else {
        ownedDevice_ = std::make_unique<DeviceMemory>();
        device_ = ownedDevice_.get();
    }
    sim::ThreadPolicy threads;
    threads.requested = config_.simThreads;
    threads.concurrentSessions = config_.concurrentSessions;
    sim_->setThreadPolicy(threads);
    sim_->setWindowPolicy(config_.simWindow);
    sim_->memory().setMemThreads(config_.memThreads);
    if (config_.trace)
        sim_->attachTrace(config_.trace, config_.traceLabel);
}

AcceleratorSession::~AcceleratorSession()
{
    // Route through wait() so the accelerator time is credited (exactly
    // once) even when a session is torn down without an explicit wait.
    wait();
}

modules::ColumnBuffer *
AcceleratorSession::configureMem(const std::string &colname,
                                 const table::Column &column)
{
    modules::ColumnBuffer *buffer = device_->upload(colname, column);
    timing_.dmaSeconds += transferSeconds(config_.dma,
                                          buffer->totalBytes());
    return buffer;
}

modules::ColumnBuffer *
AcceleratorSession::configureMem(const std::string &colname,
                                 std::vector<int64_t> elements,
                                 std::vector<uint32_t> row_lengths,
                                 uint32_t elem_size_bytes)
{
    modules::ColumnBuffer *buffer =
        device_->upload(colname, std::move(elements),
                        std::move(row_lengths), elem_size_bytes);
    timing_.dmaSeconds += transferSeconds(config_.dma,
                                          buffer->totalBytes());
    return buffer;
}

DeviceMemory::CachedColumn
AcceleratorSession::configureMemCached(const std::string &key,
                                       std::vector<int64_t> elements,
                                       std::vector<uint32_t> row_lengths,
                                       uint32_t elem_size_bytes)
{
    DeviceMemory::CachedColumn cached = device_->acquireCached(
        key, std::move(elements), std::move(row_lengths),
        elem_size_bytes);
    // A resident column never crosses the interconnect again: only the
    // miss (the actual upload) is charged as communication time.
    if (!cached.hit) {
        timing_.dmaSeconds += transferSeconds(
            config_.dma, cached.buffer->totalBytes());
    }
    return cached;
}

modules::ColumnBuffer *
AcceleratorSession::configureOutput(const std::string &colname,
                                    uint32_t elem_size_bytes)
{
    return device_->allocate(colname, elem_size_bytes);
}

void
AcceleratorSession::start()
{
    std::lock_guard<std::mutex> lock(joinMutex_);
    GENESIS_ASSERT(!started_.load(std::memory_order_relaxed),
                   "session already started");
    worker_ = std::thread([this] { sim_->run(); });
    started_.store(true, std::memory_order_release);
}

bool
AcceleratorSession::check()
{
    GENESIS_ASSERT(started_.load(std::memory_order_acquire),
                   "check before start");
    // Poll only the completion flag the simulator publishes atomically;
    // walking the module list here would race with the worker thread.
    return sim_->finished();
}

void
AcceleratorSession::wait()
{
    std::lock_guard<std::mutex> lock(joinMutex_);
    if (!started_.load(std::memory_order_acquire) || joined_)
        return;
    worker_.join();
    joined_ = true;
    // Credit the simulated accelerator time exactly once, whichever join
    // path got here first (wait_genesis, flush, destructor, unload).
    timing_.accelSeconds += secondsForCycles(sim_->cycle());
}

const modules::ColumnBuffer *
AcceleratorSession::flush(const std::string &colname)
{
    // A still-running worker owns device memory; join before reading it
    // (also credits the accelerator time ahead of the DMA accounting).
    wait();
    modules::ColumnBuffer *buffer = device_->find(colname);
    if (!buffer)
        fatal("flush of unknown device buffer '%s'", colname.c_str());
    timing_.dmaSeconds += transferSeconds(config_.dma,
                                          buffer->totalBytes());
    return buffer;
}

double
AcceleratorSession::secondsForCycles(uint64_t cycles) const
{
    return static_cast<double>(cycles) / config_.clockHz;
}

HostTimer::HostTimer(AcceleratorSession &session)
    : session_(session), start_(std::chrono::steady_clock::now())
{
}

HostTimer::~HostTimer()
{
    auto elapsed = std::chrono::steady_clock::now() - start_;
    session_.addHostSeconds(
        std::chrono::duration<double>(elapsed).count());
}

// --- Paper-literal API ----------------------------------------------------

namespace {

/** Host data recorded by configure_mem, pending upload or flush. */
struct ConfiguredColumn {
    void *addr = nullptr;
    int elemSize = 0;
    int len = 0;
};

/** Per-pipeline runtime state for the literal API. */
struct PipelineSlot {
    std::unique_ptr<AcceleratorSession> session;
    std::map<std::string, ConfiguredColumn> columns;
    /**
     * Private sink this slot's running session records into. A shared
     * TraceSink is single-writer, so concurrently running pipelines
     * must not share one; each slot records privately and the data is
     * merged into the registry's sink (under traceMutex) when the run
     * retires. Must outlive the session, which holds a pointer to it.
     */
    std::unique_ptr<TraceSink> trace;
};

struct ImageState {
    ImageBuilder builder;
    RuntimeConfig config;
    std::vector<PipelineSlot> slots;
    bool loaded = false;
    TraceSink *trace = nullptr;
    /**
     * Registry lock: exclusive for genesis_load_image /
     * genesis_unload_image / genesis_trace (they mutate the slot vector
     * and shared config), shared for every per-pipeline call. Distinct
     * pipeline ids touch distinct slots, so shared holders never
     * conflict; calls naming the same id must be externally serialized
     * (documented contract).
     */
    std::shared_mutex mutex;
    /** Serializes merging per-slot trace data into `trace`. */
    std::mutex traceMutex;
};

ImageState &
imageState()
{
    static ImageState state;
    return state;
}

/** Look up a pipeline slot. Caller must hold state.mutex. */
PipelineSlot &
slotFor(ImageState &state, int pipeline_id)
{
    if (!state.loaded)
        fatal("no Genesis image loaded (call genesis_load_image first)");
    if (pipeline_id < 0 ||
        static_cast<size_t>(pipeline_id) >= state.slots.size()) {
        fatal("pipeline id %d out of range (%zu pipelines)", pipeline_id,
              state.slots.size());
    }
    return state.slots[static_cast<size_t>(pipeline_id)];
}

/**
 * Merge a retired slot's private trace recording into the registry's
 * shared sink. The slot's session must be joined first. Idempotent: the
 * slot sink is reset by the merge, so a second publish adopts nothing.
 */
void
publishSlotTrace(ImageState &state, PipelineSlot &slot)
{
    if (!slot.trace || !state.trace)
        return;
    std::lock_guard<std::mutex> lock(state.traceMutex);
    state.trace->adopt(*slot.trace);
}

/** Decode little-endian raw host memory into int64 elements. */
std::vector<int64_t>
decodeHost(const ConfiguredColumn &col)
{
    std::vector<int64_t> elements;
    elements.reserve(static_cast<size_t>(col.len));
    const auto *bytes = static_cast<const uint8_t *>(col.addr);
    for (int i = 0; i < col.len; ++i) {
        uint64_t v = 0;
        for (int b = 0; b < col.elemSize; ++b) {
            v |= static_cast<uint64_t>(
                     bytes[static_cast<size_t>(i) *
                           static_cast<size_t>(col.elemSize) +
                           static_cast<size_t>(b)])
                << (8 * b);
        }
        // Columns are signed (the device element type is int64): sign-
        // extend from the host element width so e.g. int16 -1 decodes as
        // -1, not 65535.
        if (col.elemSize < 8) {
            const uint64_t sign_bit = 1ull
                << (8 * static_cast<unsigned>(col.elemSize) - 1);
            v = (v ^ sign_bit) - sign_bit;
        }
        elements.push_back(static_cast<int64_t>(v));
    }
    return elements;
}

} // namespace

void
genesis_load_image(ImageBuilder builder, int num_pipelines,
                   const RuntimeConfig &config)
{
    if (num_pipelines < 1)
        fatal("image needs at least one pipeline");
    ImageState &state = imageState();
    std::unique_lock<std::shared_mutex> lock(state.mutex);
    state.builder = std::move(builder);
    state.config = config;
    // A RuntimeConfig sink is unified with genesis_trace(): sessions
    // never see the shared sink directly (single-writer contract); each
    // running pipeline records into a private per-slot sink instead.
    state.trace = config.trace;
    state.config.trace = nullptr;
    state.slots.clear();
    state.slots.resize(static_cast<size_t>(num_pipelines));
    state.loaded = true;
}

void
genesis_unload_image()
{
    ImageState &state = imageState();
    std::unique_lock<std::shared_mutex> lock(state.mutex);
    for (auto &slot : state.slots) {
        if (slot.session) {
            // wait() (not a raw join) so the final run's accelerator
            // time is credited, then salvage its trace data.
            slot.session->wait();
            publishSlotTrace(state, slot);
        }
    }
    state.slots.clear();
    state.builder = nullptr;
    state.loaded = false;
    state.trace = nullptr;
}

void
configure_mem(void *addr, int elemsize, int len,
              const std::string &colname, int pipelineID)
{
    if (!addr || elemsize <= 0 || elemsize > 8 || len < 0)
        fatal("configure_mem: invalid arguments for '%s'",
              colname.c_str());
    ImageState &state = imageState();
    std::shared_lock<std::shared_mutex> lock(state.mutex);
    PipelineSlot &slot = slotFor(state, pipelineID);
    slot.columns[colname] = ConfiguredColumn{addr, elemsize, len};
}

void
run_genesis(int pipelineID)
{
    ImageState &state = imageState();
    std::shared_lock<std::shared_mutex> lock(state.mutex);
    PipelineSlot &slot = slotFor(state, pipelineID);
    if (slot.session) {
        // Retire the previous run on this slot before replacing it so
        // its accelerator time and trace data are not lost.
        slot.session->wait();
        publishSlotTrace(state, slot);
    }
    slot.session = std::make_unique<AcceleratorSession>(state.config);
    if (state.trace) {
        slot.trace = std::make_unique<TraceSink>();
        slot.session->attachTrace(
            slot.trace.get(), "pipeline" + std::to_string(pipelineID));
    }

    auto input = [&slot](const std::string &colname)
        -> modules::ColumnBuffer * {
        auto it = slot.columns.find(colname);
        if (it == slot.columns.end()) {
            fatal("image requests column '%s' that was never configured",
                  colname.c_str());
        }
        std::vector<int64_t> elements = decodeHost(it->second);
        std::vector<uint32_t> row_lengths(elements.size(), 1);
        return slot.session->configureMem(
            colname, std::move(elements), std::move(row_lengths),
            static_cast<uint32_t>(it->second.elemSize));
    };
    {
        HostTimer timer(*slot.session);
        state.builder(*slot.session, input);
    }
    slot.session->start();
}

bool
check_genesis(int pipelineID)
{
    ImageState &state = imageState();
    std::shared_lock<std::shared_mutex> lock(state.mutex);
    PipelineSlot &slot = slotFor(state, pipelineID);
    if (!slot.session)
        fatal("check_genesis before run_genesis");
    return slot.session->check();
}

void
wait_genesis(int pipelineID)
{
    ImageState &state = imageState();
    std::shared_lock<std::shared_mutex> lock(state.mutex);
    PipelineSlot &slot = slotFor(state, pipelineID);
    if (!slot.session)
        fatal("wait_genesis before run_genesis");
    slot.session->wait();
    publishSlotTrace(state, slot);
}

void
genesis_flush(int pipelineID)
{
    ImageState &state = imageState();
    std::shared_lock<std::shared_mutex> lock(state.mutex);
    PipelineSlot &slot = slotFor(state, pipelineID);
    if (!slot.session)
        fatal("genesis_flush before run_genesis");
    slot.session->wait();
    publishSlotTrace(state, slot);
    // Copy every output buffer with a configured host destination back to
    // host memory, accounting the device-to-host DMA.
    for (const auto &buffer : slot.session->deviceMemory().buffers()) {
        if (!buffer->isOutput)
            continue;
        auto it = slot.columns.find(buffer->name);
        if (it == slot.columns.end())
            continue;
        const modules::ColumnBuffer *flushed =
            slot.session->flush(buffer->name);
        auto *dest = static_cast<uint8_t *>(it->second.addr);
        size_t max_elems = static_cast<size_t>(it->second.len);
        size_t produced = flushed->elements.size();
        if (produced > max_elems) {
            if (state.config.strictFlush) {
                fatal("genesis_flush: output '%s' on pipeline %d "
                      "produced %zu elements but the host buffer holds "
                      "only %zu (strictFlush)",
                      buffer->name.c_str(), pipelineID, produced,
                      max_elems);
            }
            warn("genesis_flush: output '%s' on pipeline %d produced "
                 "%zu elements but the host buffer holds only %zu; "
                 "dropping %zu trailing elements",
                 buffer->name.c_str(), pipelineID, produced, max_elems,
                 produced - max_elems);
        }
        size_t n = std::min(produced, max_elems);
        for (size_t i = 0; i < n; ++i) {
            uint64_t v = static_cast<uint64_t>(flushed->elements[i]);
            for (int b = 0; b < it->second.elemSize; ++b) {
                dest[i * static_cast<size_t>(it->second.elemSize) +
                     static_cast<size_t>(b)] =
                    static_cast<uint8_t>((v >> (8 * b)) & 0xff);
            }
        }
    }
}

void
genesis_trace(TraceSink *sink)
{
    ImageState &state = imageState();
    std::unique_lock<std::shared_mutex> lock(state.mutex);
    state.trace = sink;
}

TimingBreakdown
genesis_timing(int pipelineID)
{
    ImageState &state = imageState();
    std::shared_lock<std::shared_mutex> lock(state.mutex);
    PipelineSlot &slot = slotFor(state, pipelineID);
    if (!slot.session)
        return TimingBreakdown{};
    return slot.session->timing();
}

} // namespace genesis::runtime

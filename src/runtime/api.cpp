#include "runtime/api.h"

#include <chrono>
#include <cstring>
#include <sstream>
#include <vector>

#include "base/logging.h"

namespace genesis::runtime {

// --- TimingBreakdown ----------------------------------------------------

TimingBreakdown &
TimingBreakdown::operator+=(const TimingBreakdown &other)
{
    hostSeconds += other.hostSeconds;
    dmaSeconds += other.dmaSeconds;
    accelSeconds += other.accelSeconds;
    return *this;
}

std::string
TimingBreakdown::str() const
{
    double t = total();
    auto pct = [t](double x) { return t > 0 ? 100.0 * x / t : 0.0; };
    std::ostringstream os;
    os.precision(2);
    os << std::fixed;
    os << "total " << t << " s"
       << " | host " << hostSeconds << " s (" << pct(hostSeconds) << "%)"
       << " | communication " << dmaSeconds << " s (" << pct(dmaSeconds)
       << "%)"
       << " | accelerator " << accelSeconds << " s ("
       << pct(accelSeconds) << "%)";
    return os.str();
}

// --- AcceleratorSession ---------------------------------------------------

AcceleratorSession::AcceleratorSession(const RuntimeConfig &config)
    : config_(config),
      sim_(std::make_unique<sim::Simulator>(config.memory))
{
    if (config_.clockHz <= 0)
        fatal("accelerator clock must be positive");
    if (config_.trace)
        sim_->attachTrace(config_.trace, config_.traceLabel);
}

AcceleratorSession::~AcceleratorSession()
{
    if (worker_.joinable())
        worker_.join();
}

modules::ColumnBuffer *
AcceleratorSession::configureMem(const std::string &colname,
                                 const table::Column &column)
{
    modules::ColumnBuffer *buffer = device_.upload(colname, column);
    timing_.dmaSeconds += transferSeconds(config_.dma,
                                          buffer->totalBytes());
    return buffer;
}

modules::ColumnBuffer *
AcceleratorSession::configureMem(const std::string &colname,
                                 std::vector<int64_t> elements,
                                 std::vector<uint32_t> row_lengths,
                                 uint32_t elem_size_bytes)
{
    modules::ColumnBuffer *buffer =
        device_.upload(colname, std::move(elements),
                       std::move(row_lengths), elem_size_bytes);
    timing_.dmaSeconds += transferSeconds(config_.dma,
                                          buffer->totalBytes());
    return buffer;
}

modules::ColumnBuffer *
AcceleratorSession::configureOutput(const std::string &colname,
                                    uint32_t elem_size_bytes)
{
    return device_.allocate(colname, elem_size_bytes);
}

void
AcceleratorSession::start()
{
    GENESIS_ASSERT(!started_, "session already started");
    started_ = true;
    worker_ = std::thread([this] { sim_->run(); });
}

bool
AcceleratorSession::check()
{
    GENESIS_ASSERT(started_, "check before start");
    return sim_->allDone();
}

void
AcceleratorSession::wait()
{
    if (!started_ || joined_)
        return;
    worker_.join();
    joined_ = true;
    timing_.accelSeconds += secondsForCycles(sim_->cycle());
}

const modules::ColumnBuffer *
AcceleratorSession::flush(const std::string &colname)
{
    modules::ColumnBuffer *buffer = device_.find(colname);
    if (!buffer)
        fatal("flush of unknown device buffer '%s'", colname.c_str());
    timing_.dmaSeconds += transferSeconds(config_.dma,
                                          buffer->totalBytes());
    return buffer;
}

double
AcceleratorSession::secondsForCycles(uint64_t cycles) const
{
    return static_cast<double>(cycles) / config_.clockHz;
}

HostTimer::HostTimer(AcceleratorSession &session)
    : session_(session), start_(std::chrono::steady_clock::now())
{
}

HostTimer::~HostTimer()
{
    auto elapsed = std::chrono::steady_clock::now() - start_;
    session_.addHostSeconds(
        std::chrono::duration<double>(elapsed).count());
}

// --- Paper-literal API ----------------------------------------------------

namespace {

/** Host data recorded by configure_mem, pending upload or flush. */
struct ConfiguredColumn {
    void *addr = nullptr;
    int elemSize = 0;
    int len = 0;
};

/** Per-pipeline runtime state for the literal API. */
struct PipelineSlot {
    std::unique_ptr<AcceleratorSession> session;
    std::map<std::string, ConfiguredColumn> columns;
};

struct ImageState {
    ImageBuilder builder;
    RuntimeConfig config;
    std::vector<PipelineSlot> slots;
    bool loaded = false;
    TraceSink *trace = nullptr;
};

ImageState &
imageState()
{
    static ImageState state;
    return state;
}

PipelineSlot &
slotFor(int pipeline_id)
{
    ImageState &state = imageState();
    if (!state.loaded)
        fatal("no Genesis image loaded (call genesis_load_image first)");
    if (pipeline_id < 0 ||
        static_cast<size_t>(pipeline_id) >= state.slots.size()) {
        fatal("pipeline id %d out of range (%zu pipelines)", pipeline_id,
              state.slots.size());
    }
    return state.slots[static_cast<size_t>(pipeline_id)];
}

/** Decode little-endian raw host memory into int64 elements. */
std::vector<int64_t>
decodeHost(const ConfiguredColumn &col)
{
    std::vector<int64_t> elements;
    elements.reserve(static_cast<size_t>(col.len));
    const auto *bytes = static_cast<const uint8_t *>(col.addr);
    for (int i = 0; i < col.len; ++i) {
        uint64_t v = 0;
        for (int b = 0; b < col.elemSize; ++b) {
            v |= static_cast<uint64_t>(
                     bytes[static_cast<size_t>(i) *
                           static_cast<size_t>(col.elemSize) +
                           static_cast<size_t>(b)])
                << (8 * b);
        }
        elements.push_back(static_cast<int64_t>(v));
    }
    return elements;
}

} // namespace

void
genesis_load_image(ImageBuilder builder, int num_pipelines,
                   const RuntimeConfig &config)
{
    if (num_pipelines < 1)
        fatal("image needs at least one pipeline");
    ImageState &state = imageState();
    state.builder = std::move(builder);
    state.config = config;
    state.slots.clear();
    state.slots.resize(static_cast<size_t>(num_pipelines));
    state.loaded = true;
}

void
genesis_unload_image()
{
    ImageState &state = imageState();
    for (auto &slot : state.slots) {
        if (slot.session)
            slot.session->wait();
    }
    state.slots.clear();
    state.builder = nullptr;
    state.loaded = false;
    state.trace = nullptr;
}

void
configure_mem(void *addr, int elemsize, int len,
              const std::string &colname, int pipelineID)
{
    if (!addr || elemsize <= 0 || elemsize > 8 || len < 0)
        fatal("configure_mem: invalid arguments for '%s'",
              colname.c_str());
    PipelineSlot &slot = slotFor(pipelineID);
    slot.columns[colname] = ConfiguredColumn{addr, elemsize, len};
}

void
run_genesis(int pipelineID)
{
    ImageState &state = imageState();
    PipelineSlot &slot = slotFor(pipelineID);
    slot.session = std::make_unique<AcceleratorSession>(state.config);
    if (state.trace) {
        slot.session->attachTrace(
            state.trace, "pipeline" + std::to_string(pipelineID));
    }

    auto input = [&slot](const std::string &colname)
        -> modules::ColumnBuffer * {
        auto it = slot.columns.find(colname);
        if (it == slot.columns.end()) {
            fatal("image requests column '%s' that was never configured",
                  colname.c_str());
        }
        std::vector<int64_t> elements = decodeHost(it->second);
        std::vector<uint32_t> row_lengths(elements.size(), 1);
        return slot.session->configureMem(
            colname, std::move(elements), std::move(row_lengths),
            static_cast<uint32_t>(it->second.elemSize));
    };
    {
        HostTimer timer(*slot.session);
        state.builder(*slot.session, input);
    }
    slot.session->start();
}

bool
check_genesis(int pipelineID)
{
    PipelineSlot &slot = slotFor(pipelineID);
    if (!slot.session)
        fatal("check_genesis before run_genesis");
    return slot.session->check();
}

void
wait_genesis(int pipelineID)
{
    PipelineSlot &slot = slotFor(pipelineID);
    if (!slot.session)
        fatal("wait_genesis before run_genesis");
    slot.session->wait();
}

void
genesis_flush(int pipelineID)
{
    PipelineSlot &slot = slotFor(pipelineID);
    if (!slot.session)
        fatal("genesis_flush before run_genesis");
    slot.session->wait();
    // Copy every output buffer with a configured host destination back to
    // host memory, accounting the device-to-host DMA.
    for (const auto &buffer : slot.session->deviceMemory().buffers()) {
        if (!buffer->isOutput)
            continue;
        auto it = slot.columns.find(buffer->name);
        if (it == slot.columns.end())
            continue;
        const modules::ColumnBuffer *flushed =
            slot.session->flush(buffer->name);
        auto *dest = static_cast<uint8_t *>(it->second.addr);
        size_t max_elems = static_cast<size_t>(it->second.len);
        size_t n = std::min(flushed->elements.size(), max_elems);
        for (size_t i = 0; i < n; ++i) {
            uint64_t v = static_cast<uint64_t>(flushed->elements[i]);
            for (int b = 0; b < it->second.elemSize; ++b) {
                dest[i * static_cast<size_t>(it->second.elemSize) +
                     static_cast<size_t>(b)] =
                    static_cast<uint8_t>((v >> (8 * b)) & 0xff);
            }
        }
    }
}

void
genesis_trace(TraceSink *sink)
{
    imageState().trace = sink;
}

TimingBreakdown
genesis_timing(int pipelineID)
{
    PipelineSlot &slot = slotFor(pipelineID);
    if (!slot.session)
        return TimingBreakdown{};
    return slot.session->timing();
}

} // namespace genesis::runtime

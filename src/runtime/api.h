/**
 * @file
 * Host-side runtime: accelerator sessions, timing accounting, and the
 * paper's application-programmer interface (Section III-E).
 *
 * An AcceleratorSession owns one simulated accelerator invocation: its
 * device memory, its Simulator, and the timing ledger that splits runtime
 * into host / communication (DMA) / accelerator components — the exact
 * decomposition of paper Figure 13(b). start() is non-blocking (a worker
 * thread advances the simulation) so the host can overlap its own work,
 * mirroring the non-blocking run_genesis()/check_genesis() calls.
 *
 * The bottom of this header declares the paper-literal C-style API
 * (configure_mem, run_genesis, check_genesis, wait_genesis,
 * genesis_flush) over a process-global image registry.
 *
 * Concurrency contract (see also DESIGN.md §7):
 *  - AcceleratorSession: check() and wait() are safe concurrently with
 *    the worker thread and with each other; every other member must be
 *    called from one host thread at a time, and sim()/deviceMemory()
 *    must not be touched between start() and wait()/check()==true.
 *  - Paper-literal API: calls naming *distinct* pipeline ids may be
 *    issued from multiple host threads concurrently; calls naming the
 *    *same* pipeline id must be externally serialized.
 *    genesis_load_image / genesis_unload_image / genesis_trace take the
 *    registry lock exclusively and must not race with in-flight calls
 *    on any pipeline.
 */

#ifndef GENESIS_RUNTIME_API_H
#define GENESIS_RUNTIME_API_H

#include <atomic>
#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "runtime/device.h"
#include "runtime/dma.h"
#include "sim/scheduler.h"

namespace genesis::runtime {

/** Clock and interconnect configuration of one deployment. */
struct RuntimeConfig {
    /** Accelerator clock (paper: 250 MHz on the F1 VU9P). */
    double clockHz = 250e6;
    DmaConfig dma = DmaConfig::pcie3();
    sim::MemoryConfig memory;
    /**
     * When set, every session built from this config records its
     * simulation into this sink (one trace process per session, named
     * `traceLabel`). The sink must outlive the sessions and is written
     * by at most one running session at a time — sequential batches
     * are fine, concurrent sessions need separate sinks. Tracing never
     * changes simulated cycles or statistics.
     */
    TraceSink *trace = nullptr;
    /** Trace process label for sessions built from this config. */
    std::string traceLabel = "accel";
    /**
     * When true, genesis_flush() treats a device output column larger
     * than its configured host buffer as a fatal error instead of
     * truncating with a warning (see genesis_flush).
     */
    bool strictFlush = false;
    /**
     * Worker threads for the lane-sharded parallel simulator (0 = auto:
     * the per-session core budget). Overridden at run time by
     * GENESIS_SIM_THREADS; GENESIS_SIM_NO_THREADS=1 forces one worker.
     * Simulated cycles, statistics and traces are bit-identical at any
     * value; see sim/parallel.h for the budget-resolution policy.
     */
    int simThreads = 0;
    /**
     * Sessions expected to run concurrently on this host. BatchRunner
     * sets it to its lane count so auto thread sizing divides the
     * host's cores instead of oversubscribing them (lanes × workers is
     * kept within hardware_concurrency); explicit simThreads requests
     * are likewise clamped to the per-session share when this exceeds 1.
     */
    int concurrentSessions = 1;
    /**
     * Worker threads for the channel-parallel memory tick (0 = the
     * sequential tick, the default — see sim/parallel.h for why it is
     * opt-in). Overridden at run time by GENESIS_SIM_MEM_THREADS;
     * GENESIS_SIM_NO_MEM_THREADS=1 forces the sequential tick; clamped
     * to the channel count. Simulated cycles, statistics and traces are
     * bit-identical at any value.
     */
    int memThreads = 0;
    /**
     * Lookahead-window cap for the parallel simulator (DESIGN.md §4f):
     * when the memory system is provably quiet for k cycles, lane shards
     * tick up to min(k, cap) cycles per barrier. 0 = auto (the built-in
     * default), 1 = single-cycle barriers (windows off). Overridden at
     * run time by GENESIS_SIM_WINDOW. Simulated cycles, statistics and
     * traces are bit-identical at any value; sequential runs ignore it.
     */
    int simWindow = 0;
};

/**
 * Up-front validation of one runtime configuration. Returns one
 * "<field>: <problem>" line per invalid field (empty = valid); nested
 * memory-model problems are prefixed "memory.". AcceleratorSession's
 * constructor fatals with these messages, so a bad configuration fails
 * cleanly at session creation (naming the knob) instead of deep inside
 * the models or — for clockHz <= 0, which used to produce infinite or
 * negative simulated seconds — silently mis-simulating.
 */
std::vector<std::string> validate(const RuntimeConfig &config);

/** Host / communication / accelerator runtime split (Figure 13(b)). */
struct TimingBreakdown {
    double hostSeconds = 0.0;
    double dmaSeconds = 0.0;
    double accelSeconds = 0.0;

    double total() const
    {
        return hostSeconds + dmaSeconds + accelSeconds;
    }

    TimingBreakdown &operator+=(const TimingBreakdown &other);

    /** Percentage shares, rendered like the paper's breakdown. */
    std::string str() const;
};

/** One accelerator invocation: build, configure, run, flush. */
class AcceleratorSession
{
  public:
    explicit AcceleratorSession(const RuntimeConfig &config);

    /**
     * Session over a shared (board-persistent) device memory, e.g. a
     * service board serving many jobs: uploads land in `device`, which
     * must outlive the session and is NOT torn down with it — callers
     * own buffer lifetime (release / cache eviction). `device`'s
     * internal locking makes concurrent sessions on one board safe;
     * name collisions between concurrent jobs are the caller's to
     * avoid (scope buffer names per job).
     */
    AcceleratorSession(const RuntimeConfig &config, DeviceMemory *device);

    ~AcceleratorSession();

    AcceleratorSession(const AcceleratorSession &) = delete;
    AcceleratorSession &operator=(const AcceleratorSession &) = delete;

    const RuntimeConfig &config() const { return config_; }
    sim::Simulator &sim() { return *sim_; }
    DeviceMemory &deviceMemory() { return *device_; }

    /** configure_mem for an input column: DMA-in accounted. */
    modules::ColumnBuffer *configureMem(const std::string &colname,
                                        const table::Column &column);

    /** configure_mem for a pre-decoded element stream: DMA-in accounted. */
    modules::ColumnBuffer *configureMem(const std::string &colname,
                                        std::vector<int64_t> elements,
                                        std::vector<uint32_t> row_lengths,
                                        uint32_t elem_size_bytes);

    /**
     * configure_mem through the device's keyed column cache: a
     * resident `key` skips the upload and the DMA-in entirely (only a
     * miss is charged to the DMA ledger). The entry stays pinned until
     * DeviceMemory::unpin(key); results are bit-identical on hit and
     * miss by the keying contract (a key names one column image).
     */
    DeviceMemory::CachedColumn
    configureMemCached(const std::string &key,
                       std::vector<int64_t> elements,
                       std::vector<uint32_t> row_lengths,
                       uint32_t elem_size_bytes);

    /** Allocate an output buffer (no DMA until flushed). */
    modules::ColumnBuffer *configureOutput(const std::string &colname,
                                           uint32_t elem_size_bytes);

    /** Non-blocking: launch the simulation on a worker thread. */
    void start();

    /**
     * @return true when the accelerator finished (non-blocking).
     * Safe to call from any host thread while the worker runs: it only
     * reads the completion flag the simulator publishes atomically.
     */
    bool check();

    /**
     * Block until the accelerator finishes. Joins the worker thread and
     * credits the simulated accelerator seconds to the timing ledger
     * exactly once, no matter how often it is called or from which join
     * path (explicit wait, flush, destructor). Thread-safe.
     */
    void wait();

    /**
     * genesis_flush: DMA an output buffer back; returns it. Implies
     * wait(): a running session is joined first, so the buffer is
     * stable and the accelerator time is credited before the DMA is
     * accounted.
     */
    const modules::ColumnBuffer *flush(const std::string &colname);

    /**
     * Record this session's simulation into `sink` as one trace process
     * named `label`. Call before start(); overrides any sink inherited
     * from RuntimeConfig::trace.
     */
    void attachTrace(TraceSink *sink, const std::string &label)
    {
        sim_->attachTrace(sink, label);
    }

    /** Account host-side work time explicitly. */
    void addHostSeconds(double seconds) { timing_.hostSeconds += seconds; }

    const TimingBreakdown &timing() const { return timing_; }

    /** @return simulated accelerator seconds for a cycle count. */
    double secondsForCycles(uint64_t cycles) const;

  private:
    RuntimeConfig config_;
    /** Session-owned device memory (null when running on a board's). */
    std::unique_ptr<DeviceMemory> ownedDevice_;
    /** The device memory in use: ownedDevice_ or the shared board's. */
    DeviceMemory *device_ = nullptr;
    std::unique_ptr<sim::Simulator> sim_;
    TimingBreakdown timing_;
    std::thread worker_;
    /** Set (under joinMutex_) once start() launched the worker. */
    std::atomic<bool> started_{false};
    /** True once the worker has been joined (guarded by joinMutex_). */
    bool joined_ = false;
    /** Serializes start()/wait() join bookkeeping across host threads. */
    std::mutex joinMutex_;
};

/** Stopwatch that adds elapsed wall time to a session's host bucket. */
class HostTimer
{
  public:
    explicit HostTimer(AcceleratorSession &session);
    ~HostTimer();

    HostTimer(const HostTimer &) = delete;
    HostTimer &operator=(const HostTimer &) = delete;

  private:
    AcceleratorSession &session_;
    std::chrono::steady_clock::time_point start_;
};

// --- Paper-literal API (Section III-E) ---------------------------------

/**
 * Image builder callback: wires the design for one pipeline into the
 * session's simulator. `input(colname)` uploads the host data configured
 * for that column (via configure_mem) and returns its device buffer; the
 * builder must create output buffers via session.configureOutput() for
 * every writer column, using the writer column's configured name so that
 * genesis_flush can route results back to the host.
 */
using ImageBuilder = std::function<void(
    AcceleratorSession &session,
    const std::function<modules::ColumnBuffer *(const std::string &)>
        &input)>;

/** Load a hardware image for the given pipeline ids. */
void genesis_load_image(ImageBuilder builder, int num_pipelines,
                        const RuntimeConfig &config = RuntimeConfig());

/** Release all pipeline state created by genesis_load_image. */
void genesis_unload_image();

/**
 * Configure one memory reader or writer (blocking; copies reader data to
 * the accelerator). Matches the paper's signature: `addr` points to
 * host column data of `len` elements of `elemsize` bytes. For writer
 * columns pass the destination host buffer (filled by genesis_flush).
 */
void configure_mem(void *addr, int elemsize, int len,
                   const std::string &colname, int pipelineID);

/** Start execution (non-blocking). */
void run_genesis(int pipelineID);

/** @return true when the pipeline's execution completed (non-blocking). */
bool check_genesis(int pipelineID);

/** Block until the pipeline's execution completes. */
void wait_genesis(int pipelineID);

/** Copy output data back to the host addresses from configure_mem. */
void genesis_flush(int pipelineID);

/** @return the timing ledger of a pipeline (for reporting). */
TimingBreakdown genesis_timing(int pipelineID);

/**
 * Record every subsequently run pipeline into `sink` (one trace process
 * per run_genesis call, named "pipeline<id>"). Pass nullptr to disable.
 * The sink must outlive the loaded image; export it after genesis_flush
 * / wait_genesis via TraceSink::finish() + writeJsonFile().
 */
void genesis_trace(TraceSink *sink);

} // namespace genesis::runtime

#endif // GENESIS_RUNTIME_API_H

/**
 * @file
 * BatchRunner: shard a workload across concurrent accelerator sessions.
 *
 * The paper's host runtime keeps several pipelines in flight at once
 * (Section III-E): while one pipeline executes on the accelerator, the
 * host encodes and DMAs the next shard's inputs. BatchRunner packages
 * that pattern: it owns N "lanes", each holding one single-shot
 * AcceleratorSession, deals shard k to lane k mod N, and only blocks on
 * a lane when it is that lane's turn to take a new shard. Host-side
 * build/encode of shard k+1 therefore overlaps accelerator execution of
 * shards k, k-1, ... (double-buffering with N buffers).
 *
 * Per-shard TimingBreakdowns and cycle counts are merged into one
 * BatchStats ledger. When tracing is enabled each shard records into a
 * private TraceSink (a shared sink is single-writer) and the recordings
 * are adopted into the user's sink as shards retire, so the exported
 * trace shows every shard as its own process.
 *
 * Thread-safety: a BatchRunner instance must be driven from one host
 * thread; the concurrency is internal (the lanes' worker threads).
 */

#ifndef GENESIS_RUNTIME_BATCH_H
#define GENESIS_RUNTIME_BATCH_H

#include <cstdint>
#include <functional>
#include <string>

#include "runtime/api.h"

namespace genesis::runtime {

/** Configuration for one sharded batch execution. */
struct BatchConfig {
    /** Concurrent pipeline slots (sessions in flight at once). */
    int numLanes = 4;
    /**
     * Per-shard session configuration. When runtime.trace is set the
     * batch records each shard into the sink as one process named
     * "<traceLabel>.shard<k>" (the sink itself is never handed to a
     * running session; see file comment).
     */
    RuntimeConfig runtime;
    /**
     * When set, every shard's session runs over this shared (persistent)
     * device memory instead of a private one — uploads survive the
     * batch, so cached columns (DeviceMemory::acquireCached) can be
     * reused across shards and batches. The memory must outlive the
     * run. Lanes execute concurrently, so ShardBuild must scope buffer
     * names per shard (e.g. "s<k>.") and ShardCollect should release
     * what the shard uploaded, or the batch leaks device space.
     */
    DeviceMemory *sharedDevice = nullptr;
};

/** Merged results of one BatchRunner::run(). */
struct BatchStats {
    /** Sum of every shard's host / DMA / accelerator breakdown. */
    TimingBreakdown timing;
    /** Sum of every shard's simulated cycles. */
    uint64_t totalCycles = 0;
    /** Number of shards executed. */
    size_t shards = 0;
    /** Host wall-clock seconds for the whole batch. */
    double wallSeconds = 0.0;
};

/** Runs a sharded workload over N concurrent accelerator sessions. */
class BatchRunner
{
  public:
    /**
     * Build shard `shard`'s design into a fresh session: configure its
     * input columns (configureMem), wire the pipeline into
     * session.sim(), and allocate output buffers. Runs on the host
     * thread, overlapped with other shards' accelerator execution —
     * use PrepTimer-style accounting inside if host encode time should
     * be attributed (the runner itself does not guess).
     */
    using ShardBuild =
        std::function<void(size_t shard, AcceleratorSession &session)>;

    /**
     * Collect shard `shard`'s results from a finished (joined) session:
     * flush output buffers and merge them into host-side state. Runs on
     * the host thread, serialized in retire order within a lane.
     */
    using ShardCollect =
        std::function<void(size_t shard, AcceleratorSession &session)>;

    explicit BatchRunner(const BatchConfig &config);

    /**
     * Execute `num_shards` shards across the configured lanes.
     * @return merged timing / cycle statistics for the whole batch
     */
    BatchStats run(size_t num_shards, const ShardBuild &build,
                   const ShardCollect &collect);

  private:
    BatchConfig config_;
};

} // namespace genesis::runtime

#endif // GENESIS_RUNTIME_BATCH_H

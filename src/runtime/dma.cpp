#include "runtime/dma.h"

#include "base/logging.h"

namespace genesis::runtime {

DmaConfig
DmaConfig::pcie3()
{
    return DmaConfig{"pcie3", 7.0e9, 20e-6};
}

DmaConfig
DmaConfig::pcie4()
{
    return DmaConfig{"pcie4", 32.0e9, 20e-6};
}

double
transferSeconds(const DmaConfig &config, uint64_t bytes)
{
    if (config.bytesPerSecond <= 0)
        fatal("DMA bandwidth must be positive");
    if (bytes == 0)
        return 0.0;
    return config.perTransferLatency +
        static_cast<double>(bytes) / config.bytesPerSecond;
}

} // namespace genesis::runtime

#include "runtime/dma.h"

#include "base/logging.h"

namespace genesis::runtime {

DmaConfig
DmaConfig::pcie3()
{
    return DmaConfig{"pcie3", 7.0e9, 20e-6};
}

DmaConfig
DmaConfig::pcie4()
{
    return DmaConfig{"pcie4", 32.0e9, 20e-6};
}

DmaConfig
DmaConfig::fromName(const std::string &name)
{
    if (name == "pcie3")
        return pcie3();
    if (name == "pcie4")
        return pcie4();
    fatal("unknown DMA preset '%s' (expected pcie3 or pcie4)",
          name.c_str());
}

double
transferSeconds(const DmaConfig &config, uint64_t bytes)
{
    if (config.bytesPerSecond <= 0)
        fatal("DMA bandwidth must be positive");
    if (bytes == 0)
        return 0.0;
    return config.perTransferLatency +
        static_cast<double>(bytes) / config.bytesPerSecond;
}

} // namespace genesis::runtime

/**
 * @file
 * FPGA resource model (reproduces paper Table IV).
 *
 * Estimates CLB LUT / CLB register / BRAM consumption of an assembled
 * accelerator from its hardware census. Per-module-kind LUT/FF costs are
 * calibrated against the paper's place-and-route reports for the three
 * GATK4 accelerators on the Xilinx VU9P; BRAM comes from architectural
 * SPM bits plus per-module buffering (prefetch and write-combine buffers,
 * queue storage).
 */

#ifndef GENESIS_PIPELINE_RESOURCE_MODEL_H
#define GENESIS_PIPELINE_RESOURCE_MODEL_H

#include <string>

#include "pipeline/builder.h"

namespace genesis::pipeline {

/** Resource usage estimate for one accelerator. */
struct ResourceUsage {
    uint64_t luts = 0;
    uint64_t registers = 0;
    double bramMiB = 0.0;

    /** VU9P device capacity (paper Table IV "Available"). */
    static constexpr uint64_t kAvailableLuts = 895'000;
    static constexpr uint64_t kAvailableRegisters = 1'790'000;
    static constexpr double kAvailableBramMiB = 7.56;

    double lutUtilization() const
    {
        return 100.0 * static_cast<double>(luts) / kAvailableLuts;
    }
    double registerUtilization() const
    {
        return 100.0 * static_cast<double>(registers) /
            kAvailableRegisters;
    }
    double bramUtilization() const
    {
        return 100.0 * bramMiB / kAvailableBramMiB;
    }

    /** Render a Table-IV style report block. */
    std::string str(const std::string &title) const;
};

/** Per-module-kind cost entry. */
struct ModuleCost {
    uint64_t luts = 0;
    uint64_t registers = 0;
    /** Dedicated buffer storage (prefetch / write combine), bytes. */
    uint64_t bufferBytes = 0;
};

/** @return the calibrated cost table entry for a module kind. */
const ModuleCost &moduleCost(const std::string &kind);

/** Estimate resources for a full accelerator census. */
ResourceUsage estimateResources(const HardwareCensus &census);

} // namespace genesis::pipeline

#endif // GENESIS_PIPELINE_RESOURCE_MODEL_H

/**
 * @file
 * Logical-plan -> hardware-pipeline mapper (Section III-D).
 *
 * The paper constructs accelerators manually from the hardware library
 * but envisions automating the translation: "each node in the [query
 * plan] graph can be mapped to a Genesis hardware module, and each edge
 * to a hardware queue". This mapper implements that translation for the
 * streaming query class the paper's accelerators belong to:
 *
 *   [INSERT INTO out] Aggregate( ... )
 *       <- Filter*                       (Filter module)
 *       <- Join(ReadExplode(...), ref)   (Joiner + SPM reader)
 *       <- ReadExplode(POS,CIGAR,SEQ[,QUAL])  (ReadToBases + readers)
 *
 * The FOR-row-IN-table iteration of the SQL form becomes hardware
 * streaming: the per-read loop body is fused into a single plan (temp
 * tables inlined), per-read aggregation becomes per-item reduction, and
 * the LIMIT-windowed reference subquery becomes the interval SPM read
 * driven by POS/ENDPOS.
 */

#ifndef GENESIS_PIPELINE_MAPPER_H
#define GENESIS_PIPELINE_MAPPER_H

#include <string>

#include "modules/stream_buffer.h"
#include "pipeline/builder.h"
#include "runtime/api.h"
#include "sql/ast.h"
#include "sql/cost_model.h"
#include "sql/plan.h"

namespace genesis::pipeline {

/** Device buffers and SPM hints the mapped pipeline binds to. */
struct QueryBinding {
    const modules::ColumnBuffer *pos = nullptr;
    const modules::ColumnBuffer *endpos = nullptr;
    const modules::ColumnBuffer *cigar = nullptr;
    const modules::ColumnBuffer *seq = nullptr;
    /** Optional; required only when the query reads QUAL. */
    const modules::ColumnBuffer *qual = nullptr;
    /** The reference column that the user hinted into an SPM. */
    const modules::ColumnBuffer *refSeq = nullptr;
    /** Names that identify the reference table in the plan. */
    std::vector<std::string> refTableNames = {"RelevantReference", "REF",
                                              "ReferenceRow"};
    int64_t windowStart = 0;
    size_t spmWords = 1;
    /**
     * Optional table statistics; when set, conjunctive WHERE predicates
     * are split and ordered by estimated selectivity before lowering,
     * so the most selective hardware Filter sits earliest in the
     * stream (ahead of the SPM/join stage). Without stats the cost
     * model's default selectivities drive the same ordering.
     */
    sql::StatsProvider stats;
};

/** Result of mapping: the pipeline's output buffer. */
struct MappedQuery {
    modules::ColumnBuffer *output = nullptr;
    /** Human-readable lowering trace (module per plan node). */
    std::string trace;
};

/**
 * Fuse a parsed Figure-4-style script into one logical plan: the last
 * INSERT inside the FOR loop is the root; scans of loop-local temp
 * tables are replaced by the plans that created them.
 * Throws FatalError when the script has no FOR loop with a final INSERT.
 */
sql::PlanPtr fuseScriptToPlan(const sql::Script &script);

/**
 * Lower a fused plan onto hardware modules inside the builder.
 * Throws FatalError with a precise reason for unsupported plan shapes.
 */
MappedQuery mapPlanToPipeline(PipelineBuilder &builder,
                              runtime::AcceleratorSession &session,
                              const sql::PlanNode &plan,
                              const QueryBinding &binding);

} // namespace genesis::pipeline

#endif // GENESIS_PIPELINE_MAPPER_H

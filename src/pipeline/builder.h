/**
 * @file
 * PipelineBuilder: scoped construction of one hardware pipeline.
 *
 * Wraps a Simulator with pipeline-local naming, routes every memory
 * module's port through this pipeline's local arbiter group (Figure 8),
 * and keeps a census of instantiated module kinds and SPM bits that the
 * FPGA resource model consumes.
 */

#ifndef GENESIS_PIPELINE_BUILDER_H
#define GENESIS_PIPELINE_BUILDER_H

#include <map>
#include <string>

#include "sim/scheduler.h"

namespace genesis::pipeline {

/** Census of one accelerator's instantiated hardware. */
struct HardwareCensus {
    /** Module kind -> instance count (across all pipelines). */
    std::map<std::string, int> moduleCounts;
    /** Total queue count (across all pipelines). */
    int queueCount = 0;
    /** Total architectural SPM bits (across all pipelines). */
    uint64_t spmBits = 0;
    /** Number of replicated pipelines. */
    int numPipelines = 0;

    /** Merge another census into this one. */
    void merge(const HardwareCensus &other);
};

/** Builder for one pipeline inside a Simulator. */
class PipelineBuilder
{
  public:
    /**
     * @param sim the simulator hosting the design
     * @param pipeline_id index of this pipeline (= local arbiter group)
     */
    PipelineBuilder(sim::Simulator &sim, int pipeline_id);

    int pipelineId() const { return pipelineId_; }
    sim::Simulator &simulator() { return sim_; }

    /** Create a pipeline-scoped queue. */
    sim::HardwareQueue *
    queue(const std::string &suffix,
          size_t capacity = sim::HardwareQueue::kDefaultCapacity);

    /** Create a memory port in this pipeline's local arbiter group. */
    sim::MemoryPort *port();

    /**
     * Create a pipeline-scoped scratchpad.
     * @param arch_bits_per_word architectural storage bits per word for
     *        resource accounting (e.g. 2 for packed bases); defaults to
     *        8 * word_bytes
     */
    sim::Scratchpad *scratchpad(const std::string &suffix,
                                size_t size_words, uint32_t word_bytes = 8,
                                int arch_bits_per_word = -1);

    /** Construct a module, recording its kind in the census. The module
     *  is stamped with this pipeline's lane shard, so the parallel
     *  scheduler ticks it on the lane's worker (DESIGN.md §4e). */
    template <typename T, typename... Args>
    T *
    add(const std::string &kind, const std::string &suffix,
        Args &&...args)
    {
        ++census_.moduleCounts[kind];
        sim::Simulator::LaneScope lane(sim_, pipelineId_);
        return sim_.make<T>(scopedName(suffix),
                            std::forward<Args>(args)...);
    }

    /** @return "p<id>.<suffix>". */
    std::string scopedName(const std::string &suffix) const;

    /** @return the census accumulated so far (numPipelines = 1). */
    const HardwareCensus &census() const { return census_; }

  private:
    sim::Simulator &sim_;
    int pipelineId_;
    HardwareCensus census_;
};

} // namespace genesis::pipeline

#endif // GENESIS_PIPELINE_BUILDER_H

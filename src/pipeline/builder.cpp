#include "pipeline/builder.h"

namespace genesis::pipeline {

void
HardwareCensus::merge(const HardwareCensus &other)
{
    for (const auto &[kind, count] : other.moduleCounts)
        moduleCounts[kind] += count;
    queueCount += other.queueCount;
    spmBits += other.spmBits;
    numPipelines += other.numPipelines;
}

PipelineBuilder::PipelineBuilder(sim::Simulator &sim, int pipeline_id)
    : sim_(sim), pipelineId_(pipeline_id)
{
    census_.numPipelines = 1;
}

std::string
PipelineBuilder::scopedName(const std::string &suffix) const
{
    return "p" + std::to_string(pipelineId_) + "." + suffix;
}

sim::HardwareQueue *
PipelineBuilder::queue(const std::string &suffix, size_t capacity)
{
    ++census_.queueCount;
    sim::Simulator::LaneScope lane(sim_, pipelineId_);
    return sim_.makeQueue(scopedName(suffix), capacity);
}

sim::MemoryPort *
PipelineBuilder::port()
{
    sim::Simulator::LaneScope lane(sim_, pipelineId_);
    return sim_.makePort(pipelineId_);
}

sim::Scratchpad *
PipelineBuilder::scratchpad(const std::string &suffix, size_t size_words,
                            uint32_t word_bytes, int arch_bits_per_word)
{
    if (arch_bits_per_word < 0)
        arch_bits_per_word = static_cast<int>(8 * word_bytes);
    census_.spmBits += static_cast<uint64_t>(size_words) *
        static_cast<uint64_t>(arch_bits_per_word);
    sim::Simulator::LaneScope lane(sim_, pipelineId_);
    return sim_.makeScratchpad(scopedName(suffix), size_words, word_bytes);
}

} // namespace genesis::pipeline

#include "pipeline/mapper.h"

#include <map>
#include <sstream>

#include "base/logging.h"
#include "modules/filter.h"
#include "modules/fork.h"
#include "modules/joiner.h"
#include "modules/memory_reader.h"
#include "modules/memory_writer.h"
#include "modules/read_to_bases.h"
#include "modules/reducer.h"
#include "modules/spm_reader.h"
#include "modules/spm_updater.h"
#include "sql/optimizer.h"

namespace genesis::pipeline {

using sql::Expr;
using sql::ExprKind;
using sql::PlanKind;
using sql::PlanNode;
using sql::PlanPtr;

// --- Script fusion -------------------------------------------------------

namespace {

/** Replace scans of temp tables with the plans that created them. */
void
inlineTempScans(PlanNode &node,
                const std::map<std::string, const sql::SelectStmt *>
                    &temp_defs)
{
    for (auto &child : node.children) {
        if (child->kind == PlanKind::Scan) {
            auto it = temp_defs.find(child->tableName);
            if (it != temp_defs.end()) {
                std::string alias = child->alias.empty()
                    ? child->tableName : child->alias;
                child = sql::planSelect(*it->second);
                child->alias = alias;
                inlineTempScans(*child, temp_defs);
                continue;
            }
        }
        inlineTempScans(*child, temp_defs);
    }
}

} // namespace

PlanPtr
fuseScriptToPlan(const sql::Script &script)
{
    const sql::Statement *loop = nullptr;
    for (const auto &stmt : script.statements) {
        if (stmt->kind == sql::StatementKind::ForLoop)
            loop = stmt.get();
    }
    if (!loop)
        fatal("script has no FOR loop to fuse");

    std::map<std::string, const sql::SelectStmt *> temp_defs;
    const sql::Statement *sink = nullptr;
    for (const auto &stmt : loop->body) {
        if (stmt->kind == sql::StatementKind::CreateTableAs &&
            stmt->targetIsTemp) {
            temp_defs[stmt->target] = stmt->select.get();
        } else if (stmt->kind == sql::StatementKind::InsertInto) {
            sink = stmt.get();
        }
    }
    if (!sink)
        fatal("FOR loop has no INSERT INTO sink to map");

    PlanPtr plan = sql::planSelect(*sink->select);
    inlineTempScans(*plan, temp_defs);
    return plan;
}

// --- Plan lowering ---------------------------------------------------------

namespace {

/** Where a column lives in the streaming flit layout. */
struct FieldSlot {
    bool isKey = false;
    int fieldIndex = -1;
};

/** Column name -> flit slot map carried up the lowering recursion. */
struct Layout {
    /** Lookup keys are stored both bare and qualified. */
    std::map<std::string, FieldSlot> slots;
    int numFields = 0;

    void
    add(const std::string &name, FieldSlot slot)
    {
        slots[name] = slot;
    }

    FieldSlot
    resolve(const Expr &column) const
    {
        GENESIS_ASSERT(column.kind == ExprKind::ColumnRef,
                       "expected a column reference, got %s",
                       column.str().c_str());
        if (!column.qualifier.empty()) {
            auto it = slots.find(column.qualifier + "." + column.name);
            if (it != slots.end())
                return it->second;
        }
        auto it = slots.find(column.name);
        if (it == slots.end()) {
            fatal("mapper: column '%s' is not in the stream layout",
                  column.str().c_str());
        }
        return it->second;
    }
};

/** One lowered subtree: output queue + layout. */
struct Lowered {
    sim::HardwareQueue *queue = nullptr;
    Layout layout;
};

class Lowering
{
  public:
    Lowering(PipelineBuilder &builder,
             runtime::AcceleratorSession &session,
             const QueryBinding &binding)
        : b_(builder), s_(session), binding_(binding)
    {
    }

    MappedQuery
    run(const PlanNode &plan)
    {
        MappedQuery mapped;
        Lowered top = lower(plan);
        mapped.output = s_.configureOutput(b_.scopedName("OUT"), 4);
        modules::MemoryWriterConfig wr;
        wr.fieldIndex = 0;
        wr.elemSizeBytes = 4;
        b_.add<modules::MemoryWriter>("MemoryWriter", "map_wr",
                                      mapped.output, b_.port(),
                                      top.queue, wr);
        trace_ << "MemoryWriter <- sink\n";
        mapped.trace = trace_.str();
        return mapped;
    }

  private:
    Lowered
    lower(const PlanNode &plan)
    {
        switch (plan.kind) {
          case PlanKind::ReadExplode: return lowerReadExplode(plan);
          case PlanKind::Join: return lowerJoin(plan);
          case PlanKind::Filter: return lowerFilter(plan);
          case PlanKind::Aggregate: return lowerAggregate(plan);
          case PlanKind::Project: return lowerProject(plan);
          case PlanKind::Limit:
            fatal("mapper: LIMIT is only supported windowing the "
                  "reference side of a join");
          case PlanKind::Scan:
            fatal("mapper: bare scan of '%s' has no streaming lowering "
                  "(reads must flow through ReadExplode)",
                  plan.tableName.c_str());
          case PlanKind::PosExplode:
            fatal("mapper: PosExplode is only supported on the "
                  "SPM-resident reference side of a join");
        }
        panic("unhandled plan kind in mapper");
    }

    Lowered
    lowerReadExplode(const PlanNode &plan)
    {
        bool has_qual = plan.outputs.size() >= 4;
        if (has_qual && !binding_.qual)
            fatal("mapper: query reads QUAL but no QUAL buffer bound");

        auto *pos_q = b_.queue("m_pos");
        auto *cigar_q = b_.queue("m_cigar");
        auto *seq_q = b_.queue("m_seq");
        auto *bases_q = b_.queue("m_bases");
        sim::HardwareQueue *qual_q = nullptr;

        modules::MemoryReaderConfig scalar_cfg;
        modules::MemoryReaderConfig array_cfg;
        array_cfg.emitBoundaries = true;
        // POS fans out to the SPM interval reader when a join follows.
        sim::HardwareQueue *pos_src = pos_q;
        if (binding_.endpos) {
            auto *pos_rtb_q = b_.queue("m_pos_rtb");
            posForSpm_ = b_.queue("m_pos_spm");
            b_.add<modules::Fork>(
                "Fork", "m_fork_pos", pos_q,
                std::vector<sim::HardwareQueue *>{pos_rtb_q,
                                                  posForSpm_});
            pos_src = pos_rtb_q;
        }
        b_.add<modules::MemoryReader>("MemoryReader", "m_rd_pos",
                                      binding_.pos, b_.port(), pos_q,
                                      scalar_cfg);
        b_.add<modules::MemoryReader>("MemoryReader", "m_rd_cigar",
                                      binding_.cigar, b_.port(), cigar_q,
                                      array_cfg);
        b_.add<modules::MemoryReader>("MemoryReader", "m_rd_seq",
                                      binding_.seq, b_.port(), seq_q,
                                      array_cfg);
        if (has_qual) {
            qual_q = b_.queue("m_qual");
            b_.add<modules::MemoryReader>("MemoryReader", "m_rd_qual",
                                          binding_.qual, b_.port(),
                                          qual_q, array_cfg);
        }
        b_.add<modules::ReadToBases>("ReadToBases", "m_rtb", pos_src,
                                     cigar_q, seq_q, qual_q, bases_q);
        trace_ << "ReadToBases <- ReadExplode\n";

        Lowered out;
        out.queue = bases_q;
        out.layout.add("POS", {true, -1});
        out.layout.add("BP", {false, 0});
        out.layout.add("QUAL", {false, 1});
        out.layout.add("CYCLE", {false, 2});
        out.layout.numFields = 3;
        return out;
    }

    /** @return true when the subtree bottoms out in a reference scan. */
    bool
    isReferenceSubtree(const PlanNode &plan) const
    {
        if (plan.kind == PlanKind::Scan) {
            for (const auto &name : binding_.refTableNames) {
                if (plan.tableName == name || plan.alias == name)
                    return true;
            }
            return false;
        }
        return !plan.children.empty() &&
            isReferenceSubtree(*plan.children[0]);
    }

    Lowered
    lowerJoin(const PlanNode &plan)
    {
        Lowered left = lower(*plan.children[0]);
        if (!isReferenceSubtree(*plan.children[1])) {
            fatal("mapper: join right side must be the SPM-resident "
                  "reference table");
        }
        if (!binding_.refSeq || !binding_.endpos) {
            fatal("mapper: reference join requires refSeq and endpos "
                  "buffers");
        }
        if (!posForSpm_) {
            fatal("mapper: reference join requires the read POS stream "
                  "(lower ReadExplode first)");
        }

        // The windowed reference subquery (PosExplode + LIMIT) lowers to
        // an SPM initialised from REFS.SEQ and read per [POS, ENDPOS).
        auto *refseq_q = b_.queue("m_refseq");
        auto *endpos_q = b_.queue("m_endpos");
        auto *ref_q = b_.queue("m_ref");
        auto *joined_q = b_.queue("m_joined");
        modules::MemoryReaderConfig scalar_cfg;
        b_.add<modules::MemoryReader>("MemoryReader", "m_rd_refseq",
                                      binding_.refSeq, b_.port(),
                                      refseq_q, scalar_cfg);
        b_.add<modules::MemoryReader>("MemoryReader", "m_rd_endpos",
                                      binding_.endpos, b_.port(),
                                      endpos_q, scalar_cfg);
        auto *spm = b_.scratchpad("m_ref_spm", binding_.spmWords, 1, 2);
        modules::SpmUpdaterConfig upd_cfg;
        upd_cfg.mode = modules::SpmUpdateMode::Sequential;
        auto *updater = b_.add<modules::SpmUpdater>(
            "SpmUpdater", "m_spm_init", spm, refseq_q, upd_cfg);
        modules::SpmReaderConfig rd_cfg;
        rd_cfg.mode = modules::SpmReadMode::Interval;
        rd_cfg.addrBase = binding_.windowStart;
        rd_cfg.waitFor = updater;
        b_.add<modules::SpmReader>("SpmReader", "m_spm_rd", spm,
                                   posForSpm_, endpos_q, ref_q, rd_cfg);
        trace_ << "SpmUpdater+SpmReader <- reference subquery "
               << "(PosExplode/LIMIT window)\n";

        modules::JoinerConfig join_cfg;
        switch (plan.joinType) {
          case sql::JoinType::Inner:
            join_cfg.mode = modules::JoinMode::Inner;
            break;
          case sql::JoinType::Left:
            join_cfg.mode = modules::JoinMode::Left;
            break;
          case sql::JoinType::Outer:
            join_cfg.mode = modules::JoinMode::Outer;
            break;
        }
        join_cfg.leftFields = left.layout.numFields;
        join_cfg.rightFields = 1;
        b_.add<modules::Joiner>("Joiner", "m_join", left.queue, ref_q,
                                joined_q, join_cfg);
        trace_ << "Joiner <- " <<
            (plan.joinType == sql::JoinType::Inner ? "INNER"
             : plan.joinType == sql::JoinType::Left ? "LEFT" : "OUTER")
               << " JOIN ON position\n";

        Lowered out;
        out.queue = joined_q;
        out.layout = left.layout;
        // The reference value column answers to every reference alias.
        FieldSlot ref_slot{false, left.layout.numFields};
        for (const auto &name : binding_.refTableNames)
            out.layout.add(name + ".SEQ", ref_slot);
        out.layout.add("REFBP", ref_slot);
        out.layout.numFields = left.layout.numFields + 1;
        return out;
    }

    modules::FilterOperand
    operandFor(const Expr &expr, const Layout &layout) const
    {
        if (expr.kind == ExprKind::Literal)
            return modules::FilterOperand::constant_(
                expr.literal.asInt());
        FieldSlot slot = layout.resolve(expr);
        return slot.isKey ? modules::FilterOperand::key()
                          : modules::FilterOperand::field(
                                slot.fieldIndex);
    }

    modules::CompareOp
    compareOpFor(const std::string &op) const
    {
        if (op == "==")
            return modules::CompareOp::Eq;
        if (op == "!=")
            return modules::CompareOp::Ne;
        if (op == "<")
            return modules::CompareOp::Lt;
        if (op == "<=")
            return modules::CompareOp::Le;
        if (op == ">")
            return modules::CompareOp::Gt;
        if (op == ">=")
            return modules::CompareOp::Ge;
        fatal("mapper: comparison '%s' has no hardware filter",
              op.c_str());
    }

    Lowered
    lowerFilter(const PlanNode &plan)
    {
        Lowered in = lower(*plan.children[0]);
        const Expr &pred = *plan.predicate;
        if (pred.kind != ExprKind::Binary)
            fatal("mapper: only binary comparisons lower to Filter, "
                  "got %s", pred.str().c_str());
        modules::FilterConfig cfg;
        cfg.lhs = operandFor(*pred.args[0], in.layout);
        cfg.op = compareOpFor(pred.op);
        cfg.rhs = operandFor(*pred.args[1], in.layout);
        auto *out_q = b_.queue("m_filtered");
        b_.add<modules::Filter>("Filter", "m_filter", in.queue, out_q,
                                cfg);
        trace_ << "Filter <- WHERE " << pred.str() << "\n";
        Lowered out;
        out.queue = out_q;
        out.layout = in.layout;
        return out;
    }

    Lowered
    lowerProject(const PlanNode &plan)
    {
        // Projection is pure wiring: rebind layout names to the selected
        // expressions (which must be plain columns).
        Lowered in = lower(*plan.children[0]);
        Lowered out;
        out.queue = in.queue;
        out.layout.numFields = in.layout.numFields;
        for (const auto &o : plan.outputs) {
            if (o.expr->kind != ExprKind::ColumnRef) {
                fatal("mapper: projection of computed expression %s is "
                      "not supported", o.expr->str().c_str());
            }
            out.layout.add(o.name, in.layout.resolve(*o.expr));
        }
        trace_ << "(wiring) <- Project\n";
        return out;
    }

    Lowered
    lowerAggregate(const PlanNode &plan)
    {
        Lowered in = lower(*plan.children[0]);
        if (plan.outputs.size() != 1 || !plan.groupBy.empty()) {
            fatal("mapper: only single global aggregates lower to a "
                  "Reducer (per-read grouping is implied by streaming)");
        }
        const Expr &agg = *plan.outputs[0].expr;
        if (agg.kind != ExprKind::Call)
            fatal("mapper: aggregate output must be an aggregate call");

        auto *out_q = b_.queue("m_agg");
        modules::ReducerConfig red;
        red.granularity = modules::ReduceGranularity::PerItem;

        if (agg.name == "COUNT" && agg.args.size() == 1 &&
            agg.args[0]->kind == ExprKind::Star) {
            red.op = modules::ReduceOp::Count;
            b_.add<modules::Reducer>("Reducer", "m_reduce", in.queue,
                                     out_q, red);
            trace_ << "Reducer(COUNT) <- COUNT(*)\n";
        } else if (agg.name == "SUM" && agg.args.size() == 1 &&
                   agg.args[0]->kind == ExprKind::Binary &&
                   agg.args[0]->op == "==") {
            // SUM of a boolean comparison = masked count: a mask-mode
            // Filter followed by a masked counting Reducer.
            modules::FilterConfig mask;
            mask.lhs = operandFor(*agg.args[0]->args[0], in.layout);
            mask.op = modules::CompareOp::Eq;
            mask.rhs = operandFor(*agg.args[0]->args[1], in.layout);
            mask.maskMode = true;
            auto *mask_q = b_.queue("m_mask");
            b_.add<modules::Filter>("Filter", "m_mask_filter", in.queue,
                                    mask_q, mask);
            red.op = modules::ReduceOp::Count;
            red.maskField = in.layout.numFields;
            b_.add<modules::Reducer>("Reducer", "m_reduce", mask_q,
                                     out_q, red);
            trace_ << "Filter(mask)+Reducer(COUNT) <- SUM("
                   << agg.args[0]->str() << ")\n";
        } else if (agg.name == "SUM" && agg.args.size() == 1 &&
                   agg.args[0]->kind == ExprKind::ColumnRef) {
            FieldSlot slot = in.layout.resolve(*agg.args[0]);
            red.op = modules::ReduceOp::Sum;
            red.valueField = slot.isKey ? -1 : slot.fieldIndex;
            b_.add<modules::Reducer>("Reducer", "m_reduce", in.queue,
                                     out_q, red);
            trace_ << "Reducer(SUM) <- SUM(" << agg.args[0]->str()
                   << ")\n";
        } else {
            fatal("mapper: aggregate %s has no hardware lowering",
                  agg.str().c_str());
        }

        Lowered out;
        out.queue = out_q;
        out.layout.add("RESULT", {false, 0});
        out.layout.numFields = 1;
        return out;
    }

    PipelineBuilder &b_;
    runtime::AcceleratorSession &s_;
    const QueryBinding &binding_;
    sim::HardwareQueue *posForSpm_ = nullptr;
    std::ostringstream trace_;
};

} // namespace

MappedQuery
mapPlanToPipeline(PipelineBuilder &builder,
                  runtime::AcceleratorSession &session,
                  const PlanNode &plan, const QueryBinding &binding)
{
    // Split conjunctive WHERE predicates into single-comparison Filter
    // nodes (the hardware Filter evaluates one comparison) and order
    // them by estimated selectivity, so the filter that discards the
    // most flits sits earliest in the stream, ahead of the SPM stage.
    sql::OptimizerOptions oo;
    oo.ruleMask = sql::kRuleSplit | sql::kRuleFilterOrder;
    oo.stats = binding.stats;
    sql::PlanPtr optimized = sql::optimizePlan(plan.clone(), oo);

    Lowering lowering(builder, session, binding);
    return lowering.run(*optimized);
}

} // namespace genesis::pipeline

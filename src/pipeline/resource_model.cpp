#include "pipeline/resource_model.h"

#include <sstream>

#include "base/logging.h"

namespace genesis::pipeline {

namespace {

/**
 * Calibrated per-kind costs. LUT/FF figures are fitted so the three
 * paper accelerators (Sections IV-B/C/D at 16/16/8 pipelines) land close
 * to the place-and-route numbers of Table IV; buffer bytes cover each
 * module's dedicated BRAM (prefetch / write-combine storage).
 */
const std::map<std::string, ModuleCost> kCosts = {
    // kind                LUTs   FFs    buffer bytes
    {"MemoryReader",      {1200,  1200,  8192}},
    {"MemoryWriter",      {1200,  1000,  8192}},
    {"Reducer",           { 800,   500,  0}},
    // Wide reduction tree over a full 64-value flit (Mark Duplicates'
    // quality-score summation).
    {"ReducerWide",       {9000, 10400,  0}},
    {"ReadToBases",       {2500,  3000,  0}},
    {"Joiner",            {1200,  1500,  0}},
    {"Filter",            { 400,   300,  0}},
    {"Fork",              { 200,   150,  0}},
    {"StreamAlu",         { 500,   400,  0}},
    {"MDGen",             {1200,  1500,  256}},
    // Two multiplies plus context tracking; heavily LUT/DSP-mapped.
    {"BinIDGen",          {6000,  2000,  0}},
    {"SpmUpdater",        { 600,   500,  0}},
    // Read-modify-write variant carries the 3-deep hazard CAM and the
    // update datapath.
    {"SpmUpdaterRMW",     {8000,  1500,  0}},
    {"SpmReader",         { 600,   500,  0}},
    // Per-pipeline control: command interface, sequencing, DMA glue.
    {"PipelineCtrl",      {2200,  4100,  4096}},
};

/** Per-queue cost: small control plus flit storage. */
constexpr ModuleCost kQueueCost = {50, 150, 512};

} // namespace

const ModuleCost &
moduleCost(const std::string &kind)
{
    auto it = kCosts.find(kind);
    if (it == kCosts.end())
        fatal("no resource-cost entry for module kind '%s'", kind.c_str());
    return it->second;
}

ResourceUsage
estimateResources(const HardwareCensus &census)
{
    ResourceUsage usage;
    uint64_t buffer_bytes = 0;
    for (const auto &[kind, count] : census.moduleCounts) {
        const ModuleCost &cost = moduleCost(kind);
        usage.luts += cost.luts * static_cast<uint64_t>(count);
        usage.registers += cost.registers * static_cast<uint64_t>(count);
        buffer_bytes += cost.bufferBytes * static_cast<uint64_t>(count);
    }
    // Implicit per-pipeline control logic.
    const ModuleCost &ctrl = kCosts.at("PipelineCtrl");
    usage.luts += ctrl.luts * static_cast<uint64_t>(census.numPipelines);
    usage.registers +=
        ctrl.registers * static_cast<uint64_t>(census.numPipelines);
    buffer_bytes +=
        ctrl.bufferBytes * static_cast<uint64_t>(census.numPipelines);

    usage.luts += kQueueCost.luts * static_cast<uint64_t>(
        census.queueCount);
    usage.registers += kQueueCost.registers * static_cast<uint64_t>(
        census.queueCount);
    buffer_bytes += kQueueCost.bufferBytes * static_cast<uint64_t>(
        census.queueCount);

    buffer_bytes += census.spmBits / 8;
    usage.bramMiB = static_cast<double>(buffer_bytes) / (1024.0 * 1024.0);
    return usage;
}

std::string
ResourceUsage::str(const std::string &title) const
{
    // Small configurations (DSE sweep points routinely sit well below
    // 1 K LUTs) must not integer-divide to "0K": render the counts with
    // one fractional digit from the double instead.
    std::ostringstream os;
    os.precision(1);
    os << std::fixed;
    os << title << "\n"
       << "  CLB Lookup Tables  " << luts / 1000.0 << "K / "
       << kAvailableLuts / 1000 << "K  (";
    os.precision(2);
    os << lutUtilization() << "%)\n";
    os.precision(1);
    os << "  CLB Registers      " << registers / 1000.0 << "K / "
       << kAvailableRegisters / 1000 << "K  (";
    os.precision(2);
    os << registerUtilization() << "%)\n"
       << "  BRAMs              " << bramMiB << " MB / "
       << kAvailableBramMiB << " MB  (" << bramUtilization() << "%)\n";
    return os.str();
}

} // namespace genesis::pipeline

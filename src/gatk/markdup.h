/**
 * @file
 * Software Mark Duplicates baseline (Section IV-B).
 *
 * Identifies sets of reads originating from the same DNA fragment (PCR
 * duplicates): each read's key is its unclipped 5' position (paired
 * reads concatenate both ends' keys); among reads sharing a key, all but
 * the one with the highest sum of quality scores are marked as
 * duplicates. The stage also coordinate-sorts all reads.
 *
 * This mirrors the GATK4 MarkDuplicates algorithm the paper accelerates;
 * the accelerated portion is the per-read sum-of-quality-scores
 * computation, which markDuplicatesWithQualSums() factors out so the
 * hardware path can substitute its own sums.
 */

#ifndef GENESIS_GATK_MARKDUP_H
#define GENESIS_GATK_MARKDUP_H

#include <cstdint>
#include <vector>

#include "genome/read.h"

namespace genesis::gatk {

/** Result statistics of a Mark Duplicates run. */
struct MarkDuplicatesStats {
    int64_t totalReads = 0;
    int64_t duplicateSets = 0;    ///< keys with more than one fragment
    int64_t duplicatesMarked = 0; ///< reads flagged as duplicates
};

/**
 * Mark duplicates in place (sets the duplicate flag) and coordinate-sort
 * the reads. Quality sums are computed in software.
 */
MarkDuplicatesStats markDuplicates(std::vector<genome::AlignedRead> &reads);

/**
 * Mark duplicates using externally supplied per-read quality sums
 * (indexed like `reads`) — the host-side completion of the accelerated
 * flow, where the Genesis pipeline computed the sums.
 */
MarkDuplicatesStats
markDuplicatesWithQualSums(std::vector<genome::AlignedRead> &reads,
                           const std::vector<int64_t> &qual_sums);

/** Compute each read's quality-score sum (the accelerated kernel). */
std::vector<int64_t>
computeQualSums(const std::vector<genome::AlignedRead> &reads);

} // namespace genesis::gatk

#endif // GENESIS_GATK_MARKDUP_H

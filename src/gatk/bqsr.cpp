#include "gatk/bqsr.h"

#include <cmath>

#include "base/logging.h"
#include "genome/cigar.h"

namespace genesis::gatk {

using genome::AlignedRead;

CovariateTable::CovariateTable(const BqsrConfig &cfg) : config(cfg)
{
    auto rg = static_cast<size_t>(config.numReadGroups);
    cycleTotals.assign(rg, std::vector<int64_t>(config.cycleTableSize(),
                                                0));
    cycleErrors.assign(rg, std::vector<int64_t>(config.cycleTableSize(),
                                                0));
    contextTotals.assign(
        rg, std::vector<int64_t>(config.contextTableSize(), 0));
    contextErrors.assign(
        rg, std::vector<int64_t>(config.contextTableSize(), 0));
}

void
CovariateTable::merge(const CovariateTable &other)
{
    GENESIS_ASSERT(cycleTotals.size() == other.cycleTotals.size(),
                   "covariate table shape mismatch");
    auto add = [](std::vector<std::vector<int64_t>> &dst,
                  const std::vector<std::vector<int64_t>> &src) {
        for (size_t rg = 0; rg < dst.size(); ++rg) {
            for (size_t b = 0; b < dst[rg].size(); ++b)
                dst[rg][b] += src[rg][b];
        }
    };
    add(cycleTotals, other.cycleTotals);
    add(cycleErrors, other.cycleErrors);
    add(contextTotals, other.contextTotals);
    add(contextErrors, other.contextErrors);
}

int64_t
CovariateTable::totalObservations() const
{
    int64_t n = 0;
    for (const auto &rg : cycleTotals) {
        for (int64_t v : rg)
            n += v;
    }
    return n;
}

int64_t
CovariateTable::totalErrors() const
{
    int64_t n = 0;
    for (const auto &rg : cycleErrors) {
        for (int64_t v : rg)
            n += v;
    }
    return n;
}

bool
CovariateTable::operator==(const CovariateTable &other) const
{
    return cycleTotals == other.cycleTotals &&
        cycleErrors == other.cycleErrors &&
        contextTotals == other.contextTotals &&
        contextErrors == other.contextErrors;
}

CovariateTable
buildCovariateTable(const std::vector<AlignedRead> &reads,
                    const genome::ReferenceGenome &genome,
                    const BqsrConfig &config)
{
    CovariateTable table(config);
    for (const auto &read : reads) {
        if (read.readGroup >= config.numReadGroups) {
            fatal("read group %u exceeds configured %d", read.readGroup,
                  config.numReadGroups);
        }
        auto &cyc_tot = table.cycleTotals[read.readGroup];
        auto &cyc_err = table.cycleErrors[read.readGroup];
        auto &ctx_tot = table.contextTotals[read.readGroup];
        auto &ctx_err = table.contextErrors[read.readGroup];

        const genome::Chromosome &chrom = genome.chromosome(read.chr);
        int prev_base = -1;
        for (const auto &b :
             genome::explodeRead(read.pos, read.cigar, read.seq,
                                 read.qual)) {
            if (b.isDeletion())
                continue; // no read base: nothing to bin
            int bp = b.readBase;
            int context = (prev_base >= 0 &&
                           prev_base < genome::kNumBases &&
                           bp < genome::kNumBases)
                ? prev_base * 4 + bp : -1;
            prev_base = bp;
            if (b.isInsertion())
                continue; // context provider only: no reference to check
            int64_t pos = b.refPos;
            if (pos < 0 || pos >= chrom.length())
                continue;
            if (chrom.isSnp[static_cast<size_t>(pos)])
                continue; // known variant site: expected mismatch
            if (bp >= genome::kNumBases)
                continue; // N call
            int q = b.qual;
            if (q < 0 || q >= config.numQualValues)
                continue;
            bool error = bp != chrom.seq[static_cast<size_t>(pos)];

            int64_t cycle_value = read.isReverse()
                ? config.readLength + b.readOffset : b.readOffset;
            if (cycle_value >= 0 && cycle_value < config.numCycleValues) {
                size_t bin = static_cast<size_t>(q) *
                    static_cast<size_t>(config.numCycleValues) +
                    static_cast<size_t>(cycle_value);
                ++cyc_tot[bin];
                if (error)
                    ++cyc_err[bin];
            }
            if (context >= 0) {
                size_t bin = static_cast<size_t>(q) *
                    static_cast<size_t>(config.numContextTypes) +
                    static_cast<size_t>(context);
                ++ctx_tot[bin];
                if (error)
                    ++ctx_err[bin];
            }
        }
    }
    return table;
}

double
empiricalQuality(int64_t errors, int64_t total)
{
    double p = (static_cast<double>(errors) + 1.0) /
        (static_cast<double>(total) + 2.0);
    return -10.0 * std::log10(p);
}

int64_t
applyQualityUpdate(std::vector<AlignedRead> &reads,
                   const CovariateTable &table)
{
    const BqsrConfig &config = table.config;
    int64_t changed = 0;
    for (auto &read : reads) {
        const auto &cyc_tot = table.cycleTotals[read.readGroup];
        const auto &cyc_err = table.cycleErrors[read.readGroup];
        const auto &ctx_tot = table.contextTotals[read.readGroup];
        const auto &ctx_err = table.contextErrors[read.readGroup];

        // Walk the read bases via the same explode as table construction
        // so cycle/context assignment is identical.
        int prev_base = -1;
        for (const auto &b :
             genome::explodeRead(read.pos, read.cigar, read.seq,
                                 read.qual)) {
            if (b.isDeletion())
                continue;
            int bp = b.readBase;
            int context = (prev_base >= 0 &&
                           prev_base < genome::kNumBases &&
                           bp < genome::kNumBases)
                ? prev_base * 4 + bp : -1;
            prev_base = bp;
            int q = b.qual;
            if (q < 0 || q >= config.numQualValues)
                continue;

            // Blend the empirical qualities of the base's bins; bins with
            // no observations contribute nothing.
            double sum = 0.0;
            int terms = 0;
            int64_t cycle_value = read.isReverse()
                ? config.readLength + b.readOffset : b.readOffset;
            if (cycle_value >= 0 && cycle_value < config.numCycleValues) {
                size_t bin = static_cast<size_t>(q) *
                    static_cast<size_t>(config.numCycleValues) +
                    static_cast<size_t>(cycle_value);
                if (cyc_tot[bin] > 0) {
                    sum += empiricalQuality(cyc_err[bin], cyc_tot[bin]);
                    ++terms;
                }
            }
            if (context >= 0) {
                size_t bin = static_cast<size_t>(q) *
                    static_cast<size_t>(config.numContextTypes) +
                    static_cast<size_t>(context);
                if (ctx_tot[bin] > 0) {
                    sum += empiricalQuality(ctx_err[bin], ctx_tot[bin]);
                    ++terms;
                }
            }
            if (terms == 0)
                continue;
            int new_q = static_cast<int>(std::lround(sum / terms));
            new_q = std::max(1, std::min(new_q, 93));
            // The read offset indexes unclipped bases; map back to the
            // physical position by adding the leading clip length.
            size_t phys = static_cast<size_t>(b.readOffset) +
                read.cigar.leadingSoftClip();
            if (phys < read.qual.size() &&
                read.qual[phys] != static_cast<uint8_t>(new_q)) {
                read.qual[phys] = static_cast<uint8_t>(new_q);
                ++changed;
            }
        }
    }
    return changed;
}

} // namespace genesis::gatk

#include "gatk/aligner.h"

#include <algorithm>
#include <map>

#include "base/logging.h"

namespace genesis::gatk {

namespace {

constexpr uint64_t kInvalidSeed = ~0ull;

uint64_t
packLocation(uint8_t chr, int64_t pos)
{
    return (static_cast<uint64_t>(chr) << 40) |
        (static_cast<uint64_t>(pos) & ((1ull << 40) - 1));
}

} // namespace

ReadAligner::ReadAligner(const genome::ReferenceGenome &genome,
                         const AlignerConfig &config)
    : genome_(genome), config_(config)
{
    if (config_.seedLength < 4 || config_.seedLength > 31)
        fatal("seed length %d out of range [4, 31]", config_.seedLength);
    for (const auto &chrom : genome_.chromosomes()) {
        int64_t limit =
            chrom.length() - static_cast<int64_t>(config_.seedLength);
        for (int64_t p = 0; p <= limit; p += config_.indexStride) {
            uint64_t seed = seedAt(chrom.seq, static_cast<size_t>(p));
            if (seed == kInvalidSeed)
                continue;
            index_[seed].push_back(packLocation(chrom.id, p));
        }
    }
}

uint64_t
ReadAligner::seedAt(const genome::Sequence &seq, size_t offset) const
{
    if (offset + static_cast<size_t>(config_.seedLength) > seq.size())
        return kInvalidSeed;
    uint64_t seed = 0;
    for (int i = 0; i < config_.seedLength; ++i) {
        uint8_t base = seq[offset + static_cast<size_t>(i)];
        if (base >= genome::kNumBases)
            return kInvalidSeed; // N base: seed unusable
        seed = (seed << 2) | base;
    }
    return seed;
}

int
ReadAligner::verify(const genome::Sequence &seq, uint8_t chr,
                    int64_t pos) const
{
    const genome::Chromosome &chrom = genome_.chromosome(chr);
    int mismatches = 0;
    for (size_t i = 0; i < seq.size(); ++i) {
        int64_t p = pos + static_cast<int64_t>(i);
        uint8_t ref = (p >= 0 && p < chrom.length())
            ? chrom.seq[static_cast<size_t>(p)]
            : static_cast<uint8_t>(genome::Base::N);
        if (seq[i] != ref) {
            if (++mismatches > config_.maxMismatches)
                return mismatches;
        }
    }
    return mismatches;
}

AlignmentResult
ReadAligner::align(const genome::Sequence &seq) const
{
    // Seed-and-vote: each sampled seed proposes candidate read start
    // positions; the position with the most votes is verified first.
    std::map<uint64_t, int> votes;
    for (size_t off = 0;
         off + static_cast<size_t>(config_.seedLength) <= seq.size();
         off += static_cast<size_t>(config_.seedStride)) {
        uint64_t seed = seedAt(seq, off);
        if (seed == kInvalidSeed)
            continue;
        auto it = index_.find(seed);
        if (it == index_.end())
            continue;
        // Highly repetitive seeds add noise without information.
        if (it->second.size() > 64)
            continue;
        for (uint64_t loc : it->second) {
            int64_t pos = static_cast<int64_t>(loc & ((1ull << 40) - 1)) -
                static_cast<int64_t>(off);
            if (pos < 0)
                continue;
            uint8_t chr = static_cast<uint8_t>(loc >> 40);
            votes[packLocation(chr, pos)] += 1;
        }
    }

    AlignmentResult best;
    int best_votes = 0;
    for (const auto &[loc, count] : votes) {
        if (count <= best_votes)
            continue;
        uint8_t chr = static_cast<uint8_t>(loc >> 40);
        int64_t pos = static_cast<int64_t>(loc & ((1ull << 40) - 1));
        int mismatches = verify(seq, chr, pos);
        if (mismatches <= config_.maxMismatches) {
            best.mapped = true;
            best.chr = chr;
            best.pos = pos;
            best.mismatches = mismatches;
            best_votes = count;
        }
    }
    return best;
}

double
ReadAligner::alignAll(const std::vector<genome::AlignedRead> &reads) const
{
    if (reads.empty())
        return 0.0;
    int64_t mapped = 0;
    for (const auto &read : reads) {
        if (align(read.seq).mapped)
            ++mapped;
    }
    return static_cast<double>(mapped) /
        static_cast<double>(reads.size());
}

} // namespace genesis::gatk

/**
 * @file
 * Software Metadata Update baseline — GATK4's SetNmMdAndUqTags
 * (Section IV-C).
 *
 * For each read, computes:
 *  NM — the number of bases differing from the reference (mismatches
 *       plus inserted plus deleted bases);
 *  MD — the string that lets the reference be reconstructed from the
 *       read (match-run lengths, mismatched reference bases, and '^'
 *       prefixed deletion runs);
 *  UQ — the sum of quality scores at mismatching (aligned) bases.
 */

#ifndef GENESIS_GATK_METADATA_H
#define GENESIS_GATK_METADATA_H

#include <string>
#include <vector>

#include "genome/read.h"
#include "genome/reference.h"

namespace genesis::gatk {

/** The three tags for one read. */
struct ReadMetadata {
    int32_t nm = 0;
    std::string md;
    int32_t uq = 0;

    bool operator==(const ReadMetadata &other) const = default;
};

/** Compute NM/MD/UQ for one read against the reference. */
ReadMetadata computeMetadata(const genome::AlignedRead &read,
                             const genome::ReferenceGenome &genome);

/** Compute and attach tags for every read (the full software stage). */
void setNmMdUqTags(std::vector<genome::AlignedRead> &reads,
                   const genome::ReferenceGenome &genome);

} // namespace genesis::gatk

#endif // GENESIS_GATK_METADATA_H

/**
 * @file
 * Software Base Quality Score Recalibration baseline (Section IV-D).
 *
 * Covariate table construction bins every usable read base twice:
 *  - by (read group, reported quality, cycle value), where the cycle
 *    value is the base's position within the read and reverse-strand
 *    reads occupy a second bank of cycle values (302 values for 151 bp
 *    paired-end reads);
 *  - by (read group, reported quality, context), the previous+current
 *    base two-mer (16 context types).
 * Each bin counts total observations and empirical errors (mismatches
 * against the reference). Bases at known SNP sites are excluded, as are
 * deletions, N bases, soft clips, and — for the context covariate — the
 * first base of a read. Insertions are not binned but do provide context
 * for the following base, matching the hardware BinIDGen module exactly.
 *
 * The quality score update stage (left in software by the paper) adjusts
 * each base's quality toward the empirical error rate of its bins.
 */

#ifndef GENESIS_GATK_BQSR_H
#define GENESIS_GATK_BQSR_H

#include <cstdint>
#include <vector>

#include "genome/read.h"
#include "genome/reference.h"

namespace genesis::gatk {

/** BQSR binning geometry. */
struct BqsrConfig {
    int numReadGroups = 4;
    int readLength = 151;
    int numCycleValues = 302; ///< forward + reverse banks
    int numContextTypes = 16;
    int numQualValues = 42;

    size_t cycleTableSize() const
    {
        return static_cast<size_t>(numQualValues) *
            static_cast<size_t>(numCycleValues);
    }
    size_t contextTableSize() const
    {
        return static_cast<size_t>(numQualValues) *
            static_cast<size_t>(numContextTypes);
    }
};

/** The covariate table: per-read-group total/error counts per bin. */
struct CovariateTable {
    BqsrConfig config;
    /** [read group][q * numCycleValues + cycle value] */
    std::vector<std::vector<int64_t>> cycleTotals;
    std::vector<std::vector<int64_t>> cycleErrors;
    /** [read group][q * numContextTypes + context] */
    std::vector<std::vector<int64_t>> contextTotals;
    std::vector<std::vector<int64_t>> contextErrors;

    explicit CovariateTable(const BqsrConfig &config = BqsrConfig());

    /** Accumulate another table (used to merge per-partition results). */
    void merge(const CovariateTable &other);

    /** Grand totals across all bins (sanity metrics). */
    int64_t totalObservations() const;
    int64_t totalErrors() const;

    bool operator==(const CovariateTable &other) const;
};

/** Build the covariate table over all reads (the accelerated kernel). */
CovariateTable
buildCovariateTable(const std::vector<genome::AlignedRead> &reads,
                    const genome::ReferenceGenome &genome,
                    const BqsrConfig &config = BqsrConfig());

/**
 * Quality score update: rewrite each base's quality toward the empirical
 * quality of its (cycle, context) bins. Bases without usable bins keep
 * their reported quality. @return number of quality values changed.
 */
int64_t applyQualityUpdate(std::vector<genome::AlignedRead> &reads,
                           const CovariateTable &table);

/**
 * @return the phred-scaled empirical quality of a bin with the given
 * counts, with +1/+2 Laplace smoothing (as GATK uses).
 */
double empiricalQuality(int64_t errors, int64_t total);

} // namespace genesis::gatk

#endif // GENESIS_GATK_BQSR_H

#include "gatk/markdup.h"

#include <algorithm>
#include <map>
#include <string>
#include <unordered_map>

#include "base/logging.h"

namespace genesis::gatk {

using genome::AlignedRead;

std::vector<int64_t>
computeQualSums(const std::vector<AlignedRead> &reads)
{
    std::vector<int64_t> sums;
    sums.reserve(reads.size());
    for (const auto &read : reads)
        sums.push_back(read.qualSum());
    return sums;
}

MarkDuplicatesStats
markDuplicatesWithQualSums(std::vector<AlignedRead> &reads,
                           const std::vector<int64_t> &qual_sums)
{
    GENESIS_ASSERT(qual_sums.size() == reads.size(),
                   "quality sums size %zu != reads size %zu",
                   qual_sums.size(), reads.size());

    MarkDuplicatesStats stats;
    stats.totalReads = static_cast<int64_t>(reads.size());

    // Group reads into fragments (paired ends share a read name).
    std::unordered_map<std::string, std::vector<size_t>> fragments;
    for (size_t i = 0; i < reads.size(); ++i) {
        reads[i].setDuplicate(false);
        fragments[reads[i].name].push_back(i);
    }

    // A fragment's key concatenates the unclipped-5' keys of both ends
    // (ordered, so the pair key is orientation independent); its score is
    // the total quality sum across its reads.
    struct FragmentInfo {
        const std::string *name = nullptr;
        std::vector<size_t> readIndices;
        int64_t score = 0;
    };
    std::map<std::pair<uint64_t, uint64_t>, std::vector<FragmentInfo>>
        by_key;
    for (auto &[name, indices] : fragments) {
        std::vector<uint64_t> keys;
        keys.reserve(indices.size());
        FragmentInfo info;
        info.name = &name;
        info.readIndices = indices;
        for (size_t idx : indices) {
            keys.push_back(reads[idx].duplicateKey());
            info.score += qual_sums[idx];
        }
        std::sort(keys.begin(), keys.end());
        std::pair<uint64_t, uint64_t> key{keys.front(), keys.back()};
        by_key[key].push_back(std::move(info));
    }

    for (auto &[key, frags] : by_key) {
        if (frags.size() < 2)
            continue;
        ++stats.duplicateSets;
        // Keep the fragment with the highest score; ties break on the
        // lexicographically smallest name for determinism.
        size_t best = 0;
        for (size_t f = 1; f < frags.size(); ++f) {
            if (frags[f].score > frags[best].score ||
                (frags[f].score == frags[best].score &&
                 *frags[f].name < *frags[best].name)) {
                best = f;
            }
        }
        for (size_t f = 0; f < frags.size(); ++f) {
            if (f == best)
                continue;
            for (size_t idx : frags[f].readIndices) {
                reads[idx].setDuplicate(true);
                ++stats.duplicatesMarked;
            }
        }
    }

    // The stage also sorts all reads by aligned start position.
    std::sort(reads.begin(), reads.end(),
              [](const AlignedRead &a, const AlignedRead &b) {
                  if (a.chr != b.chr)
                      return a.chr < b.chr;
                  if (a.pos != b.pos)
                      return a.pos < b.pos;
                  return a.name < b.name;
              });
    return stats;
}

MarkDuplicatesStats
markDuplicates(std::vector<AlignedRead> &reads)
{
    return markDuplicatesWithQualSums(reads, computeQualSums(reads));
}

} // namespace genesis::gatk

#include "gatk/metadata.h"

#include "base/logging.h"

namespace genesis::gatk {

using genome::AlignedRead;
using genome::CigarOp;

ReadMetadata
computeMetadata(const AlignedRead &read,
                const genome::ReferenceGenome &genome)
{
    ReadMetadata meta;
    const genome::Chromosome &chrom = genome.chromosome(read.chr);

    int64_t ref_pos = read.pos;
    size_t read_idx = 0;
    int64_t match_run = 0;
    bool in_deletion = false;

    auto flush_run = [&] {
        meta.md += std::to_string(match_run);
        match_run = 0;
    };

    for (const auto &e : read.cigar.elements()) {
        switch (e.op) {
          case CigarOp::SoftClip:
            read_idx += e.length;
            break;
          case CigarOp::Insert:
            // Insertions count toward NM but never appear in MD.
            meta.nm += static_cast<int32_t>(e.length);
            read_idx += e.length;
            break;
          case CigarOp::Delete:
            meta.nm += static_cast<int32_t>(e.length);
            flush_run();
            meta.md += '^';
            for (uint32_t i = 0; i < e.length; ++i) {
                uint8_t ref_base = ref_pos < chrom.length()
                    ? chrom.seq[static_cast<size_t>(ref_pos)]
                    : static_cast<uint8_t>(genome::Base::N);
                meta.md += genome::baseToChar(ref_base);
                ++ref_pos;
            }
            in_deletion = true;
            break;
          case CigarOp::Match:
            for (uint32_t i = 0; i < e.length; ++i) {
                uint8_t ref_base = ref_pos < chrom.length()
                    ? chrom.seq[static_cast<size_t>(ref_pos)]
                    : static_cast<uint8_t>(genome::Base::N);
                uint8_t read_base = read.seq[read_idx];
                if (read_base == ref_base) {
                    ++match_run;
                    in_deletion = false;
                } else {
                    ++meta.nm;
                    if (read_idx < read.qual.size())
                        meta.uq += read.qual[read_idx];
                    flush_run();
                    meta.md += genome::baseToChar(ref_base);
                    in_deletion = false;
                }
                ++ref_pos;
                ++read_idx;
            }
            break;
        }
    }
    (void)in_deletion;
    flush_run();
    return meta;
}

void
setNmMdUqTags(std::vector<AlignedRead> &reads,
              const genome::ReferenceGenome &genome)
{
    for (auto &read : reads) {
        ReadMetadata meta = computeMetadata(read, genome);
        read.nmTag = meta.nm;
        read.mdTag = meta.md;
        read.uqTag = meta.uq;
    }
}

} // namespace genesis::gatk

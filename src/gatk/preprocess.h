/**
 * @file
 * Full data-preprocessing pipeline driver (GATK4 Best Practices phase 1)
 * with per-stage timing, reproducing the runtime breakdown of paper
 * Figure 9 in both flavours: software alignment, and alignment assumed
 * accelerated at GenAx-class throughput (4058 K reads/s).
 */

#ifndef GENESIS_GATK_PREPROCESS_H
#define GENESIS_GATK_PREPROCESS_H

#include <string>

#include "gatk/aligner.h"
#include "gatk/bqsr.h"
#include "gatk/markdup.h"
#include "gatk/metadata.h"

namespace genesis::gatk {

/** Per-stage wall-clock seconds of one preprocessing run. */
struct StageTimes {
    double alignment = 0.0;
    double duplicateMarking = 0.0;
    double metadataUpdate = 0.0;
    double bqsrTableConstruction = 0.0;
    double bqsrQualityUpdate = 0.0;

    double total() const;

    /** Percentage share of each stage (the Figure 9 bars). */
    std::string breakdownStr() const;
};

/** Options for a preprocessing run. */
struct PreprocessOptions {
    /** Run the software seed-and-vote aligner for the alignment stage. */
    bool runAligner = true;
    /**
     * Replace the measured alignment time with reads / this throughput —
     * the paper's GenAx assumption (4.058 M reads/s). <= 0 disables.
     */
    double alignmentAcceleratorReadsPerSec = 0.0;
    BqsrConfig bqsr;
};

/** Outputs of a preprocessing run. */
struct PreprocessResult {
    StageTimes times;
    MarkDuplicatesStats dupStats;
    CovariateTable covariates;
    int64_t qualityValuesChanged = 0;
    double mappedFraction = 0.0;

    PreprocessResult() : covariates(BqsrConfig{}) {}
};

/**
 * Run the full software preprocessing pipeline over the reads, in place:
 * (alignment,) duplicate marking, metadata update, BQSR table
 * construction and quality update.
 */
PreprocessResult runPreprocess(std::vector<genome::AlignedRead> &reads,
                               const genome::ReferenceGenome &genome,
                               const PreprocessOptions &options);

} // namespace genesis::gatk

#endif // GENESIS_GATK_PREPROCESS_H

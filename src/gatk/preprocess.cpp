#include "gatk/preprocess.h"

#include <chrono>
#include <sstream>

namespace genesis::gatk {

namespace {

double
secondsSince(const std::chrono::steady_clock::time_point &start)
{
    auto elapsed = std::chrono::steady_clock::now() - start;
    return std::chrono::duration<double>(elapsed).count();
}

} // namespace

double
StageTimes::total() const
{
    return alignment + duplicateMarking + metadataUpdate +
        bqsrTableConstruction + bqsrQualityUpdate;
}

std::string
StageTimes::breakdownStr() const
{
    double t = total();
    auto pct = [t](double x) { return t > 0 ? 100.0 * x / t : 0.0; };
    std::ostringstream os;
    os.precision(1);
    os << std::fixed;
    os << "Alignment " << pct(alignment) << "%"
       << " | Duplicate Marking " << pct(duplicateMarking) << "%"
       << " | Metadata Update " << pct(metadataUpdate) << "%"
       << " | BQSR (covariate table) " << pct(bqsrTableConstruction)
       << "%"
       << " | BQSR (quality update) " << pct(bqsrQualityUpdate) << "%";
    return os.str();
}

PreprocessResult
runPreprocess(std::vector<genome::AlignedRead> &reads,
              const genome::ReferenceGenome &genome,
              const PreprocessOptions &options)
{
    PreprocessResult result;
    result.covariates = CovariateTable(options.bqsr);

    if (options.alignmentAcceleratorReadsPerSec > 0) {
        // Model a GenAx-class alignment accelerator: runtime is simply
        // reads / throughput (Section IV-A).
        result.times.alignment = static_cast<double>(reads.size()) /
            options.alignmentAcceleratorReadsPerSec;
    } else if (options.runAligner) {
        auto start = std::chrono::steady_clock::now();
        ReadAligner aligner(genome);
        result.mappedFraction = aligner.alignAll(reads);
        result.times.alignment = secondsSince(start);
    }

    {
        auto start = std::chrono::steady_clock::now();
        result.dupStats = markDuplicates(reads);
        result.times.duplicateMarking = secondsSince(start);
    }
    {
        auto start = std::chrono::steady_clock::now();
        setNmMdUqTags(reads, genome);
        result.times.metadataUpdate = secondsSince(start);
    }
    {
        auto start = std::chrono::steady_clock::now();
        result.covariates = buildCovariateTable(reads, genome,
                                                options.bqsr);
        result.times.bqsrTableConstruction = secondsSince(start);
    }
    {
        auto start = std::chrono::steady_clock::now();
        result.qualityValuesChanged =
            applyQualityUpdate(reads, result.covariates);
        result.times.bqsrQualityUpdate = secondsSince(start);
    }
    return result;
}

} // namespace genesis::gatk

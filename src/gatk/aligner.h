/**
 * @file
 * Seed-and-vote read aligner — the software stand-in for the pipeline's
 * alignment stage (BWA-MEM in GATK4 Best Practices).
 *
 * The paper does not accelerate alignment; it only needs the stage's
 * runtime share (Figure 9) and the observation that once alignment is
 * accelerated (GenAx-class throughput) the data-manipulation stages
 * dominate. This aligner is a real, if simple, implementation: a k-mer
 * hash index over the reference plus seed voting and mismatch-count
 * verification, enough to consume a realistic share of preprocessing
 * time on synthetic workloads.
 */

#ifndef GENESIS_GATK_ALIGNER_H
#define GENESIS_GATK_ALIGNER_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "genome/read.h"
#include "genome/reference.h"

namespace genesis::gatk {

/** Aligner configuration. */
struct AlignerConfig {
    /** Seed length in base pairs. */
    int seedLength = 21;
    /** Sampling stride for seeds along the read. */
    int seedStride = 11;
    /** Index stride along the reference (1 = every position). */
    int indexStride = 1;
    /**
     * Maximum mismatches tolerated during verification. The budget must
     * absorb soft-clipped ends (whose bases are arbitrary) on top of
     * sequencing errors and sample variants.
     */
    int maxMismatches = 30;
};

/** One alignment result. */
struct AlignmentResult {
    bool mapped = false;
    uint8_t chr = 0;
    int64_t pos = 0;
    int mismatches = 0;
};

/** k-mer hash index over a reference genome. */
class ReadAligner
{
  public:
    ReadAligner(const genome::ReferenceGenome &genome,
                const AlignerConfig &config = AlignerConfig());

    /** Align one base sequence (forward orientation assumed). */
    AlignmentResult align(const genome::Sequence &seq) const;

    /** Align every read's sequence; returns the mapped fraction. */
    double alignAll(const std::vector<genome::AlignedRead> &reads) const;

    size_t indexSize() const { return index_.size(); }

  private:
    uint64_t seedAt(const genome::Sequence &seq, size_t offset) const;
    int verify(const genome::Sequence &seq, uint8_t chr,
               int64_t pos) const;

    const genome::ReferenceGenome &genome_;
    AlignerConfig config_;
    /** k-mer -> packed (chr, position) candidate list. */
    std::unordered_map<uint64_t, std::vector<uint64_t>> index_;
};

} // namespace genesis::gatk

#endif // GENESIS_GATK_ALIGNER_H

/**
 * @file
 * Cycle-accurate tracing sink for the simulator.
 *
 * A TraceSink collects three kinds of timeline data from one or more
 * simulated designs:
 *
 *  - activity spans: per-module busy / stall-reason / idle intervals,
 *    coalesced from per-cycle marks (consecutive same-state cycles become
 *    one span; gaps between spans are synthesized as explicit idle
 *    spans, which is also how fast-forwarded cycle ranges appear);
 *  - counter samples: e.g. hardware-queue occupancy and cumulative
 *    scratchpad accesses, recorded only when the value changes;
 *  - async request lifetimes: memory requests from issue through
 *    arbitration (schedule) to retirement, matched by id.
 *
 * The collected data exports as Chrome trace-event JSON, loadable in
 * Perfetto (https://ui.perfetto.dev) or chrome://tracing, with one
 * "process" per traced design and one "thread" per module, channel or
 * queue. Timestamps are simulated cycles (displayed as microseconds).
 * utilizationSummary() renders the same data as a per-module table of
 * busy / stall / idle shares.
 *
 * Tracing never feeds back into simulation: instrumentation points only
 * read simulator state, so cycle counts and statistics are bit-identical
 * with tracing on or off. All hooks sit behind an inlined null-pointer
 * check, so a disabled trace costs one predictable branch.
 *
 * A TraceSink is single-writer: at most one running simulator may record
 * into it at a time (sequential sessions may share one sink).
 */

#ifndef GENESIS_BASE_TRACE_H
#define GENESIS_BASE_TRACE_H

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace genesis {

/** Collects activity spans, counter samples and async event lifetimes. */
class TraceSink
{
  public:
    /** Interned id of one span state ("busy", "stall.memory", ...). */
    using StateId = uint32_t;
    /** The synthesized between-activity state. */
    static constexpr StateId kStateIdle = 0;
    /** The state marked by productive module cycles. */
    static constexpr StateId kStateBusy = 1;

    /** One closed activity span on a track, in cycles [begin, end). */
    struct Span {
        int track = 0;
        StateId state = kStateIdle;
        uint64_t begin = 0;
        uint64_t end = 0;
    };

    TraceSink();

    TraceSink(const TraceSink &) = delete;
    TraceSink &operator=(const TraceSink &) = delete;

    // --- setup ----------------------------------------------------------

    /**
     * Register a traced design ("process" in the trace). Duplicate names
     * get a "#<n>" suffix so sequential batches stay distinguishable.
     * @return the process id for addXxxTrack calls
     */
    int beginProcess(const std::string &name);

    /** Create a span track (one module's activity timeline). */
    int addSpanTrack(int pid, const std::string &name);

    /** Create a counter track (occupancy / cumulative-count samples). */
    int addCounterTrack(int pid, const std::string &name);

    /** Create a track hosting async (id-matched) events. */
    int addAsyncTrack(int pid, const std::string &name);

    /** Intern a state / event-name string. Stable for the sink's life. */
    StateId internState(const std::string &name);

    const std::string &stateName(StateId id) const;
    const std::string &trackName(int track) const;
    /** @return the process name a track belongs to. */
    const std::string &trackProcess(int track) const;

    // --- recording (hot path) -------------------------------------------

    /**
     * Mark that `track` spent `cycle` in `state`. Consecutive same-state
     * cycles coalesce; a gap since the previous span synthesizes an idle
     * span. When several states are marked for the same cycle the most
     * significant wins (busy > stall reasons > idle).
     */
    void mark(int track, uint64_t cycle, StateId state);

    /** Record a whole span [begin, end) directly (bulk recording). */
    void span(int track, StateId state, uint64_t begin, uint64_t end);

    /**
     * Record a counter sample. Consecutive equal values are dropped,
     * and each track emits at most one sample per counterInterval()
     * cycles (the newest value in between is held back and flushed by
     * the next due sample or by finish()), which keeps high-frequency
     * counters — queue occupancy, SPM accesses — from dominating the
     * trace file.
     */
    void counter(int track, uint64_t cycle, uint64_t value);

    /** Minimum cycles between samples on one counter track. */
    uint64_t counterInterval() const { return counterInterval_; }

    /** Set the counter sampling interval (1 = record every change). */
    void setCounterInterval(uint64_t cycles)
    {
        counterInterval_ = cycles ? cycles : 1;
    }

    /** @return a fresh id for one async lifetime (issue..retire). */
    uint64_t newAsyncId() { return nextAsyncId_++; }

    /** Open an async lifetime. `args` is a rendered JSON object or "". */
    void asyncBegin(int track, uint64_t id, uint64_t cycle, StateId name,
                    std::string args = std::string());

    /** Record a point within an async lifetime. */
    void asyncInstant(int track, uint64_t id, uint64_t cycle, StateId name,
                      std::string args = std::string());

    /** Close an async lifetime (name must match asyncBegin's). */
    void asyncEnd(int track, uint64_t id, uint64_t cycle, StateId name);

    /** Record a free-standing instant event on a track. */
    void instant(int track, uint64_t cycle, StateId name,
                 std::string args = std::string());

    /**
     * Extend every span still open through cycle `open_end` (exclusive)
     * by `extra` cycles. The simulator calls this when fast-forwarding a
     * provably idle region after sampling one representative cycle: the
     * sampled cycle's states repeat verbatim, so open spans grow in bulk
     * and tracks that were idle keep accumulating (implicit) idle time.
     */
    void creditSkipped(uint64_t open_end, uint64_t extra);

    /**
     * Extend one track's open span by `extra` cycles, provided it is
     * still open through cycle `open_end` (exclusive). The per-track
     * analogue of creditSkipped(): a module waking from sleep calls it
     * to grow the stall span it opened on the cycle it went to sleep,
     * so the trace reads exactly as if the module had spun and re-marked
     * the stall every slept cycle. A span that was since closed or
     * re-marked is left untouched.
     */
    void creditSleep(int track, uint64_t open_end, uint64_t extra);

    /**
     * Merge everything `child` recorded into this sink, then reset the
     * child to a fresh state. Process, track, state and async-event ids
     * are remapped (duplicate process names get the usual "#<n>"
     * suffix), so the merged data reads exactly as if it had been
     * recorded here. Finishes the child first when needed.
     *
     * This is how concurrent simulations share one exported trace
     * without violating the single-writer contract: each running
     * simulator records into a private sink, and the owner adopts the
     * private sinks (serialized by the caller) as each run completes.
     */
    void adopt(TraceSink &child);

    // --- export ---------------------------------------------------------

    /** Close all open spans. Call once after the last simulation. */
    void finish();

    /** Write Chrome trace-event JSON (finish() first). */
    void writeJson(std::ostream &os) const;

    /** Write JSON to a file. @return false when the file can't open. */
    bool writeJsonFile(const std::string &path) const;

    /**
     * Render the per-module utilization table: busy / stall / idle
     * percentages (of the owning process's traced horizon) and the
     * dominant stall reason. Spans only; call finish() first.
     */
    std::string utilizationSummary() const;

    // --- introspection (tests, summaries) -------------------------------

    const std::vector<Span> &spans() const { return spans_; }
    size_t numEvents() const { return events_.size(); }
    size_t numProcesses() const { return processes_.size(); }

    /** @return total cycles a track spent in a state (closed spans). */
    uint64_t stateCycles(int track, StateId state) const;

  private:
    enum class EventKind : uint8_t {
        Counter,
        AsyncBegin,
        AsyncInstant,
        AsyncEnd,
        Instant,
    };

    struct Event {
        EventKind kind = EventKind::Counter;
        int track = 0;
        uint64_t cycle = 0;
        uint64_t id = 0;
        uint64_t value = 0;
        StateId name = 0;
        std::string args;
    };

    enum class TrackKind : uint8_t { Span, CounterTrack, Async };

    struct Track {
        int pid = 0;
        int tid = 0;
        std::string name;
        TrackKind kind = TrackKind::Span;
        // Open-span state (span tracks only).
        bool open = false;
        StateId state = kStateIdle;
        uint64_t spanBegin = 0;
        uint64_t spanEnd = 0; ///< exclusive; last marked cycle + 1
        /** End of the last recorded span (for idle-gap synthesis). */
        uint64_t lastEnd = 0;
        /** Last counter value (counter tracks; sentinel = none yet). */
        uint64_t lastValue = ~0ull;
        /** Cycle of the last emitted sample (sentinel = none yet). */
        uint64_t lastSampleCycle = ~0ull;
        /** Newest value held back by the sampling interval. */
        uint64_t pendingValue = 0;
        uint64_t pendingCycle = 0;
        bool pendingDirty = false;
    };

    /** Significance order for same-cycle re-marks. */
    static int statePriority(StateId s);

    /** Drop all recorded data and re-intern the base states. */
    void reset();

    int addTrack(int pid, const std::string &name, TrackKind kind);
    void openSpan(Track &track, uint64_t cycle, StateId state);
    void closeSpan(int track_index);

    std::vector<std::string> processes_;
    std::map<std::string, int> processNameCounts_;
    std::vector<Track> tracks_;
    std::vector<int> tracksPerProcess_; ///< next tid per pid
    std::vector<std::string> states_;
    std::map<std::string, StateId> stateIds_;
    std::vector<Span> spans_;
    std::vector<Event> events_;
    uint64_t nextAsyncId_ = 1;
    uint64_t counterInterval_ = 64;
    bool finished_ = false;
};

/** Render {"k0":v0} / {"k0":v0,"k1":v1} argument objects for events. */
std::string traceArgs(const char *k0, uint64_t v0);
std::string traceArgs(const char *k0, uint64_t v0, const char *k1,
                      uint64_t v1);
std::string traceArgs(const char *k0, uint64_t v0, const char *k1,
                      uint64_t v1, const char *k2, uint64_t v2);

} // namespace genesis

#endif // GENESIS_BASE_TRACE_H

#include "base/logging.h"

#include <cstdio>
#include <vector>

namespace genesis {

namespace {
bool quietFlag = false;
} // namespace

std::string
vstrfmt(const char *fmt, va_list ap)
{
    va_list ap_copy;
    va_copy(ap_copy, ap);
    int needed = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (needed <= 0)
        return std::string();
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), static_cast<size_t>(needed));
}

std::string
strfmt(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrfmt(fmt, ap);
    va_end(ap);
    return s;
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = "panic: " + vstrfmt(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "%s\n", msg.c_str());
    throw PanicError(msg);
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = "fatal: " + vstrfmt(fmt, ap);
    va_end(ap);
    throw FatalError(msg);
}

void
warn(const char *fmt, ...)
{
    if (quietFlag)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrfmt(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const char *fmt, ...)
{
    if (quietFlag)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrfmt(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
setQuiet(bool quiet)
{
    quietFlag = quiet;
}

bool
isQuiet()
{
    return quietFlag;
}

} // namespace genesis

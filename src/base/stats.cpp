#include "base/stats.h"

#include <algorithm>
#include <sstream>

#include "base/logging.h"

namespace genesis {

void
ScalarStat::sample(double v)
{
    if (count_ == 0) {
        min_ = v;
        max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    ++count_;
    sum_ += v;
}

void
ScalarStat::merge(const ScalarStat &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    count_ += other.count_;
    sum_ += other.sum_;
}

void
ScalarStat::reset()
{
    *this = ScalarStat();
}

double
ScalarStat::mean() const
{
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

StatRegistry::Counter
StatRegistry::counter(const std::string &name)
{
    // std::map nodes are address-stable, so the handle is simply a
    // pointer to the mapped value.
    return &counters_[name];
}

void
StatRegistry::add(const std::string &name, uint64_t delta)
{
    counters_[name] += delta;
}

void
StatRegistry::set(const std::string &name, uint64_t value)
{
    counters_[name] = value;
}

uint64_t
StatRegistry::get(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

void
StatRegistry::merge(const StatRegistry &other)
{
    for (const auto &[name, value] : other.counters_)
        counters_[name] += value;
}

void
StatRegistry::creditDelta(const StatRegistry &snapshot, uint64_t times)
{
    for (auto &[name, value] : counters_) {
        uint64_t before = snapshot.get(name);
        if (value > before)
            value += (value - before) * times;
    }
}

std::string
StatRegistry::report(const std::string &prefix) const
{
    std::ostringstream os;
    for (const auto &[name, value] : counters_)
        os << prefix << name << " = " << value << "\n";
    return os.str();
}

std::string
formatBytes(double bytes)
{
    static const char *units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
    int unit = 0;
    while (bytes >= 1024.0 && unit < 4) {
        bytes /= 1024.0;
        ++unit;
    }
    std::ostringstream os;
    os.precision(unit == 0 ? 0 : 2);
    os << std::fixed << bytes << " " << units[unit];
    return os.str();
}

std::string
formatSeconds(double seconds)
{
    std::ostringstream os;
    os.precision(3);
    os << std::fixed;
    if (seconds >= 1.0)
        os << seconds << " s";
    else if (seconds >= 1e-3)
        os << seconds * 1e3 << " ms";
    else
        os << seconds * 1e6 << " us";
    return os.str();
}

} // namespace genesis

/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * All synthetic-data generators in Genesis take an explicit Rng so that
 * every experiment is reproducible from a seed. The implementation is
 * xoshiro256** seeded via splitmix64, which is fast and has no global
 * state (unlike std::rand) and a stable stream across platforms (unlike
 * std::mt19937 distributions).
 */

#ifndef GENESIS_BASE_RNG_H
#define GENESIS_BASE_RNG_H

#include <cstdint>

namespace genesis {

/** Deterministic, seedable random number generator (xoshiro256**). */
class Rng
{
  public:
    /** Construct from a 64-bit seed; different seeds give distinct streams. */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

    /** Reset the generator state from the given seed. */
    void
    reseed(uint64_t seed)
    {
        // splitmix64 to fill the state from an arbitrary seed.
        uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ull;
            uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** @return next raw 64-bit value. */
    uint64_t
    next()
    {
        const uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** @return uniform integer in [0, bound); bound must be nonzero. */
    uint64_t
    below(uint64_t bound)
    {
        // Debiased modulo via rejection on the top range.
        uint64_t threshold = (0 - bound) % bound;
        for (;;) {
            uint64_t r = next();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** @return uniform integer in the closed interval [lo, hi]. */
    int64_t
    range(int64_t lo, int64_t hi)
    {
        return lo + static_cast<int64_t>(
            below(static_cast<uint64_t>(hi - lo) + 1));
    }

    /** @return uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** @return true with the given probability (clamped to [0, 1]). */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

  private:
    static uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t state_[4];
};

} // namespace genesis

#endif // GENESIS_BASE_RNG_H

#include "base/env.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>

#include "base/logging.h"

namespace genesis {

EnvInt
parseEnvInt(const char *name)
{
    EnvInt result;
    const char *env = std::getenv(name);
    if (!env || !*env)
        return result;
    result.present = true;
    // strtoll skips leading whitespace; strictness requires the string
    // to start with the number itself.
    if (std::isspace(static_cast<unsigned char>(env[0])))
        return result;
    errno = 0;
    char *end = nullptr;
    long long value = std::strtoll(env, &end, 10);
    if (end == env || *end != '\0' || errno == ERANGE)
        return result;
    result.valid = true;
    result.value = value;
    return result;
}

long long
envInt64(const char *name, long long fallback, long long min_value,
         long long max_value)
{
    EnvInt parsed = parseEnvInt(name);
    if (!parsed.present)
        return fallback;
    if (!parsed.valid) {
        warn("%s='%s' is not an integer; using %lld", name,
             std::getenv(name), fallback);
        return fallback;
    }
    if (parsed.value < min_value || parsed.value > max_value) {
        warn("%s=%lld is out of range [%lld, %lld]; using %lld", name,
             parsed.value, min_value, max_value, fallback);
        return fallback;
    }
    return parsed.value;
}

} // namespace genesis

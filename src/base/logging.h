/**
 * @file
 * Logging and error-reporting helpers for the Genesis library.
 *
 * Follows the gem5 convention: panic() for internal invariant violations
 * (library bugs), fatal() for unrecoverable user errors (bad configuration,
 * malformed input), warn()/inform() for non-fatal status messages.
 */

#ifndef GENESIS_BASE_LOGGING_H
#define GENESIS_BASE_LOGGING_H

#include <cstdarg>
#include <stdexcept>
#include <string>

namespace genesis {

/** Exception thrown by panic(): an internal library invariant was violated. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

/** Exception thrown by fatal(): the caller supplied invalid input/config. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/** Format a printf-style message into a std::string. */
std::string vstrfmt(const char *fmt, va_list ap);

/** Format a printf-style message into a std::string. */
std::string strfmt(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an internal invariant violation and throw PanicError.
 * Use for conditions that indicate a bug in Genesis itself.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user-level error and throw FatalError.
 * Use for conditions caused by the caller (bad configuration, bad data).
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Emit a warning to stderr. Never interrupts execution. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Emit an informational message to stderr. Never interrupts execution. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Globally silence warn()/inform() output (used by tests and benches). */
void setQuiet(bool quiet);

/** @return true when warn()/inform() output is suppressed. */
bool isQuiet();

/** panic() unless the given condition holds. */
#define GENESIS_ASSERT(cond, ...)                                           \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::genesis::panic("assertion '%s' failed: %s", #cond,            \
                             ::genesis::strfmt(__VA_ARGS__).c_str());       \
        }                                                                   \
    } while (0)

} // namespace genesis

#endif // GENESIS_BASE_LOGGING_H

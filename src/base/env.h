/**
 * @file
 * Strict environment-variable parsing shared by every env knob.
 *
 * The historical pattern (std::atoll on getenv output) silently accepted
 * trailing garbage ("4x" became 4) and silently mapped unparseable text
 * to 0 (so "abc" fell back with no diagnostic). Every integer knob now
 * goes through envInt64(): a full-string strict parse that warns and
 * falls back on malformed or out-of-range input, so a typo in
 * GENESIS_SERVICE_BOARDS or GENESIS_SIM_THREADS is loud instead of a
 * silent misconfiguration.
 */

#ifndef GENESIS_BASE_ENV_H
#define GENESIS_BASE_ENV_H

#include <cstdint>
#include <limits>

namespace genesis {

/** Outcome of parsing one environment variable as an integer. */
struct EnvInt {
    /** The variable was set to a non-empty string. */
    bool present = false;
    /** The full string parsed as a (possibly signed) decimal integer. */
    bool valid = false;
    long long value = 0;
};

/**
 * Parse `name` as a strict decimal integer. The entire value must be an
 * optionally-signed decimal number — no leading whitespace, no trailing
 * characters ("4x" and " 4" are both invalid). Out-of-range values are
 * reported as invalid. Never warns; callers decide the policy.
 */
EnvInt parseEnvInt(const char *name);

/**
 * Read integer env knob `name` with a warn-and-fall-back policy: unset
 * or empty returns `fallback` silently; malformed input or a value
 * outside [min_value, max_value] warns (naming the variable and the
 * offending text) and returns `fallback`.
 */
long long
envInt64(const char *name, long long fallback,
         long long min_value = std::numeric_limits<long long>::min(),
         long long max_value = std::numeric_limits<long long>::max());

} // namespace genesis

#endif // GENESIS_BASE_ENV_H

/**
 * @file
 * Lightweight statistics accumulators used by the simulator and benches.
 */

#ifndef GENESIS_BASE_STATS_H
#define GENESIS_BASE_STATS_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace genesis {

/** Scalar accumulator tracking count, sum, min, max and mean. */
class ScalarStat
{
  public:
    /** Record one sample. */
    void sample(double v);

    /** Merge another accumulator into this one. */
    void merge(const ScalarStat &other);

    /** Reset to the empty state. */
    void reset();

    uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    /** @return arithmetic mean, or 0 when empty. */
    double mean() const;

  private:
    uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * A named registry of counters. The simulator exposes per-module counters
 * (flits processed, stall cycles, memory bytes) through one of these so
 * benches can print uniform reports.
 */
class StatRegistry
{
  public:
    /**
     * Interned handle to one counter: bumping it (`++*h`) is a single
     * indirect increment, with no string hashing or map lookup. Handles
     * alias the counters visible through add()/get()/counters().
     */
    using Counter = uint64_t *;

    /**
     * Intern a counter and return a stable handle to it (creating it at
     * zero). Handles stay valid for the registry's lifetime; only
     * clear() invalidates them. Hot-path code should intern once at
     * construction and bump through the handle.
     */
    Counter counter(const std::string &name);

    /** Add the given delta to a named counter (creating it at zero). */
    void add(const std::string &name, uint64_t delta = 1);

    /** Set a named counter to an absolute value. */
    void set(const std::string &name, uint64_t value);

    /** @return counter value, or 0 when never touched. */
    uint64_t get(const std::string &name) const;

    /** @return all counters in name-sorted order. */
    const std::map<std::string, uint64_t> &counters() const
    {
        return counters_;
    }

    /** Merge all counters from another registry into this one. */
    void merge(const StatRegistry &other);

    /**
     * Credit `times` extra repetitions of the per-cycle deltas observed
     * since `snapshot` was copied from this registry: every counter grows
     * by (current - snapshot) * times. Used by the simulator's idle-cycle
     * fast-forward to account skipped cycles in bulk.
     */
    void creditDelta(const StatRegistry &snapshot, uint64_t times);

    /** Render a human-readable multi-line report. */
    std::string report(const std::string &prefix = "") const;

    /** Drop every counter. Invalidates all interned handles. */
    void clear() { counters_.clear(); }

  private:
    std::map<std::string, uint64_t> counters_;
};

/** Format a byte count with binary units (e.g. "4.95 MiB"). */
std::string formatBytes(double bytes);

/** Format a duration in seconds with an adaptive unit (s / ms / us). */
std::string formatSeconds(double seconds);

} // namespace genesis

#endif // GENESIS_BASE_STATS_H

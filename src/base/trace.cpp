#include "base/trace.h"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <sstream>

#include "base/logging.h"

namespace genesis {

namespace {

/** Escape a string for inclusion inside a JSON string literal. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strfmt("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

} // namespace

std::string
traceArgs(const char *k0, uint64_t v0)
{
    return strfmt("{\"%s\":%llu}", k0,
                  static_cast<unsigned long long>(v0));
}

std::string
traceArgs(const char *k0, uint64_t v0, const char *k1, uint64_t v1)
{
    return strfmt("{\"%s\":%llu,\"%s\":%llu}", k0,
                  static_cast<unsigned long long>(v0), k1,
                  static_cast<unsigned long long>(v1));
}

std::string
traceArgs(const char *k0, uint64_t v0, const char *k1, uint64_t v1,
          const char *k2, uint64_t v2)
{
    return strfmt("{\"%s\":%llu,\"%s\":%llu,\"%s\":%llu}", k0,
                  static_cast<unsigned long long>(v0), k1,
                  static_cast<unsigned long long>(v1), k2,
                  static_cast<unsigned long long>(v2));
}

TraceSink::TraceSink()
{
    // Pre-intern the fixed states so their ids are compile-time known.
    StateId idle = internState("idle");
    StateId busy = internState("busy");
    GENESIS_ASSERT(idle == kStateIdle && busy == kStateBusy,
                   "state table must start with idle, busy");
}

int
TraceSink::beginProcess(const std::string &name)
{
    int count = ++processNameCounts_[name];
    std::string unique =
        count == 1 ? name : name + "#" + std::to_string(count);
    processes_.push_back(unique);
    tracksPerProcess_.push_back(0);
    return static_cast<int>(processes_.size()) - 1;
}

int
TraceSink::addTrack(int pid, const std::string &name, TrackKind kind)
{
    GENESIS_ASSERT(pid >= 0 &&
                       static_cast<size_t>(pid) < processes_.size(),
                   "track added to unknown process %d", pid);
    Track track;
    track.pid = pid;
    track.tid = tracksPerProcess_[static_cast<size_t>(pid)]++;
    track.name = name;
    track.kind = kind;
    tracks_.push_back(std::move(track));
    return static_cast<int>(tracks_.size()) - 1;
}

int
TraceSink::addSpanTrack(int pid, const std::string &name)
{
    return addTrack(pid, name, TrackKind::Span);
}

int
TraceSink::addCounterTrack(int pid, const std::string &name)
{
    return addTrack(pid, name, TrackKind::CounterTrack);
}

int
TraceSink::addAsyncTrack(int pid, const std::string &name)
{
    return addTrack(pid, name, TrackKind::Async);
}

TraceSink::StateId
TraceSink::internState(const std::string &name)
{
    auto it = stateIds_.find(name);
    if (it != stateIds_.end())
        return it->second;
    StateId id = static_cast<StateId>(states_.size());
    states_.push_back(name);
    stateIds_.emplace(name, id);
    return id;
}

const std::string &
TraceSink::stateName(StateId id) const
{
    GENESIS_ASSERT(id < states_.size(), "unknown state id %u", id);
    return states_[id];
}

const std::string &
TraceSink::trackName(int track) const
{
    GENESIS_ASSERT(track >= 0 &&
                       static_cast<size_t>(track) < tracks_.size(),
                   "unknown track %d", track);
    return tracks_[static_cast<size_t>(track)].name;
}

const std::string &
TraceSink::trackProcess(int track) const
{
    GENESIS_ASSERT(track >= 0 &&
                       static_cast<size_t>(track) < tracks_.size(),
                   "unknown track %d", track);
    return processes_[static_cast<size_t>(
        tracks_[static_cast<size_t>(track)].pid)];
}

int
TraceSink::statePriority(StateId s)
{
    if (s == kStateBusy)
        return 2;
    if (s == kStateIdle)
        return 0;
    return 1; // stall reasons
}

void
TraceSink::openSpan(Track &track, uint64_t cycle, StateId state)
{
    // Materialize the idle gap since the previous span (or since cycle
    // 0 for a track that was idle from the start).
    if (cycle > track.lastEnd) {
        spans_.push_back(Span{
            static_cast<int>(&track - tracks_.data()), kStateIdle,
            track.lastEnd, cycle});
    }
    track.open = true;
    track.state = state;
    track.spanBegin = cycle;
    track.spanEnd = cycle + 1;
}

void
TraceSink::closeSpan(int track_index)
{
    Track &track = tracks_[static_cast<size_t>(track_index)];
    spans_.push_back(
        Span{track_index, track.state, track.spanBegin, track.spanEnd});
    track.lastEnd = track.spanEnd;
    track.open = false;
}

void
TraceSink::mark(int track_index, uint64_t cycle, StateId state)
{
    Track &track = tracks_[static_cast<size_t>(track_index)];
    if (!track.open) {
        openSpan(track, cycle, state);
        return;
    }
    if (cycle >= track.spanEnd) {
        if (state == track.state && cycle == track.spanEnd) {
            track.spanEnd = cycle + 1; // contiguous same-state cycle
            return;
        }
        closeSpan(track_index);
        openSpan(track, cycle, state);
        return;
    }
    // Re-mark of the cycle already covered by the open span: keep the
    // most significant state (busy > stall > idle).
    if (statePriority(state) <= statePriority(track.state))
        return;
    if (track.spanBegin == track.spanEnd - 1) {
        track.state = state; // single-cycle span: relabel in place
        return;
    }
    // Split: earlier cycles keep the old state, this cycle upgrades.
    uint64_t end = track.spanEnd;
    track.spanEnd = end - 1;
    closeSpan(track_index);
    track.open = true;
    track.state = state;
    track.spanBegin = end - 1;
    track.spanEnd = end;
}

void
TraceSink::span(int track_index, StateId state, uint64_t begin,
                uint64_t end)
{
    if (end <= begin)
        return;
    spans_.push_back(Span{track_index, state, begin, end});
    Track &track = tracks_[static_cast<size_t>(track_index)];
    track.lastEnd = std::max(track.lastEnd, end);
}

void
TraceSink::counter(int track_index, uint64_t cycle, uint64_t value)
{
    Track &track = tracks_[static_cast<size_t>(track_index)];
    if (track.lastValue == value)
        return;
    track.lastValue = value;
    if (track.lastSampleCycle != ~0ull &&
        cycle < track.lastSampleCycle + counterInterval_) {
        // Within the sampling interval: hold the newest value back; the
        // next due sample or finish() flushes it.
        track.pendingValue = value;
        track.pendingCycle = cycle;
        track.pendingDirty = true;
        return;
    }
    track.lastSampleCycle = cycle;
    track.pendingDirty = false;
    Event ev;
    ev.kind = EventKind::Counter;
    ev.track = track_index;
    ev.cycle = cycle;
    ev.value = value;
    events_.push_back(std::move(ev));
}

void
TraceSink::asyncBegin(int track, uint64_t id, uint64_t cycle, StateId name,
                      std::string args)
{
    events_.push_back(Event{EventKind::AsyncBegin, track, cycle, id, 0,
                            name, std::move(args)});
}

void
TraceSink::asyncInstant(int track, uint64_t id, uint64_t cycle,
                        StateId name, std::string args)
{
    events_.push_back(Event{EventKind::AsyncInstant, track, cycle, id, 0,
                            name, std::move(args)});
}

void
TraceSink::asyncEnd(int track, uint64_t id, uint64_t cycle, StateId name)
{
    events_.push_back(
        Event{EventKind::AsyncEnd, track, cycle, id, 0, name, {}});
}

void
TraceSink::instant(int track, uint64_t cycle, StateId name,
                   std::string args)
{
    events_.push_back(Event{EventKind::Instant, track, cycle, 0, 0, name,
                            std::move(args)});
}

void
TraceSink::creditSkipped(uint64_t open_end, uint64_t extra)
{
    for (auto &track : tracks_) {
        if (track.open && track.spanEnd == open_end)
            track.spanEnd += extra;
    }
}

void
TraceSink::creditSleep(int track, uint64_t open_end, uint64_t extra)
{
    Track &t = tracks_[static_cast<size_t>(track)];
    if (t.open && t.spanEnd == open_end)
        t.spanEnd += extra;
}

void
TraceSink::reset()
{
    processes_.clear();
    processNameCounts_.clear();
    tracks_.clear();
    tracksPerProcess_.clear();
    states_.clear();
    stateIds_.clear();
    spans_.clear();
    events_.clear();
    nextAsyncId_ = 1;
    finished_ = false;
    internState("idle");
    internState("busy");
}

void
TraceSink::adopt(TraceSink &child)
{
    GENESIS_ASSERT(&child != this, "a sink cannot adopt itself");
    if (!child.finished_)
        child.finish();

    std::vector<int> pid_map(child.processes_.size());
    for (size_t p = 0; p < child.processes_.size(); ++p)
        pid_map[p] = beginProcess(child.processes_[p]);

    std::vector<int> track_map(child.tracks_.size());
    for (size_t t = 0; t < child.tracks_.size(); ++t) {
        const Track &track = child.tracks_[t];
        track_map[t] = addTrack(pid_map[static_cast<size_t>(track.pid)],
                                track.name, track.kind);
        // Keep idle-gap synthesis consistent should the adopted track
        // ever be marked again (it normally is not).
        tracks_.back().lastEnd = track.lastEnd;
    }

    std::vector<StateId> state_map(child.states_.size());
    for (size_t s = 0; s < child.states_.size(); ++s)
        state_map[s] = internState(child.states_[s]);

    spans_.reserve(spans_.size() + child.spans_.size());
    for (const Span &span : child.spans_) {
        spans_.push_back(
            Span{track_map[static_cast<size_t>(span.track)],
                 state_map[span.state], span.begin, span.end});
    }

    // Async lifetimes are matched by id; shift the child's ids past
    // every id this sink has handed out so merged lifetimes stay
    // distinct.
    uint64_t async_base = nextAsyncId_;
    nextAsyncId_ += child.nextAsyncId_;
    events_.reserve(events_.size() + child.events_.size());
    for (const Event &ev : child.events_) {
        Event copy = ev;
        copy.track = track_map[static_cast<size_t>(ev.track)];
        copy.name = state_map[ev.name];
        if (ev.kind == EventKind::AsyncBegin ||
            ev.kind == EventKind::AsyncInstant ||
            ev.kind == EventKind::AsyncEnd) {
            copy.id += async_base;
        }
        events_.push_back(std::move(copy));
    }
    child.reset();
}

void
TraceSink::finish()
{
    for (size_t i = 0; i < tracks_.size(); ++i) {
        Track &track = tracks_[i];
        if (track.open)
            closeSpan(static_cast<int>(i));
        if (track.pendingDirty) {
            // Flush the last counter value held back by the sampling
            // interval so every track ends on its true final value.
            track.pendingDirty = false;
            Event ev;
            ev.kind = EventKind::Counter;
            ev.track = static_cast<int>(i);
            ev.cycle = track.pendingCycle;
            ev.value = track.pendingValue;
            events_.push_back(std::move(ev));
        }
    }
    finished_ = true;
}

uint64_t
TraceSink::stateCycles(int track, StateId state) const
{
    uint64_t total = 0;
    for (const auto &span : spans_) {
        if (span.track == track && span.state == state)
            total += span.end - span.begin;
    }
    return total;
}

void
TraceSink::writeJson(std::ostream &os) const
{
    os << "{\"traceEvents\":[";
    bool first = true;
    auto sep = [&] {
        if (!first)
            os << ",\n";
        first = false;
    };

    // Metadata: process and thread names.
    for (size_t pid = 0; pid < processes_.size(); ++pid) {
        sep();
        os << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << pid
           << ",\"args\":{\"name\":\"" << jsonEscape(processes_[pid])
           << "\"}}";
    }
    for (const auto &track : tracks_) {
        sep();
        os << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":"
           << track.pid << ",\"tid\":" << track.tid
           << ",\"args\":{\"name\":\"" << jsonEscape(track.name)
           << "\"}}";
    }

    for (const auto &span : spans_) {
        // Idle is the absence of a span in the viewer; emitting the
        // synthesized idle spans would only bloat the file.
        if (span.state == kStateIdle)
            continue;
        const Track &track = tracks_[static_cast<size_t>(span.track)];
        sep();
        os << "{\"ph\":\"X\",\"name\":\""
           << jsonEscape(states_[span.state]) << "\",\"pid\":"
           << track.pid << ",\"tid\":" << track.tid << ",\"ts\":"
           << span.begin << ",\"dur\":" << span.end - span.begin << "}";
    }

    for (const auto &ev : events_) {
        const Track &track = tracks_[static_cast<size_t>(ev.track)];
        sep();
        switch (ev.kind) {
          case EventKind::Counter:
            os << "{\"ph\":\"C\",\"name\":\"" << jsonEscape(track.name)
               << "\",\"pid\":" << track.pid << ",\"tid\":" << track.tid
               << ",\"ts\":" << ev.cycle << ",\"args\":{\"value\":"
               << ev.value << "}}";
            break;
          case EventKind::AsyncBegin:
          case EventKind::AsyncInstant:
          case EventKind::AsyncEnd: {
            const char *ph = ev.kind == EventKind::AsyncBegin ? "b"
                : ev.kind == EventKind::AsyncInstant            ? "n"
                                                                : "e";
            os << "{\"ph\":\"" << ph << "\",\"cat\":\""
               << jsonEscape(track.name) << "\",\"id\":" << ev.id
               << ",\"name\":\"" << jsonEscape(states_[ev.name])
               << "\",\"pid\":" << track.pid << ",\"tid\":" << track.tid
               << ",\"ts\":" << ev.cycle;
            if (!ev.args.empty())
                os << ",\"args\":" << ev.args;
            os << "}";
            break;
          }
          case EventKind::Instant:
            os << "{\"ph\":\"i\",\"s\":\"t\",\"name\":\""
               << jsonEscape(states_[ev.name]) << "\",\"pid\":"
               << track.pid << ",\"tid\":" << track.tid << ",\"ts\":"
               << ev.cycle;
            if (!ev.args.empty())
                os << ",\"args\":" << ev.args;
            os << "}";
            break;
        }
    }
    os << "\n]}\n";
}

bool
TraceSink::writeJsonFile(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    writeJson(out);
    return static_cast<bool>(out);
}

std::string
TraceSink::utilizationSummary() const
{
    // Per-track accumulation over closed spans.
    struct Util {
        uint64_t busy = 0;
        std::map<StateId, uint64_t> stalls;
        bool any = false;
    };
    std::vector<Util> utils(tracks_.size());
    std::vector<uint64_t> horizon(processes_.size(), 0);
    for (const auto &span : spans_) {
        Util &u = utils[static_cast<size_t>(span.track)];
        uint64_t cycles = span.end - span.begin;
        u.any = true;
        if (span.state == kStateBusy)
            u.busy += cycles;
        else if (span.state != kStateIdle)
            u.stalls[span.state] += cycles;
        size_t pid = static_cast<size_t>(
            tracks_[static_cast<size_t>(span.track)].pid);
        horizon[pid] = std::max(horizon[pid], span.end);
    }

    std::ostringstream os;
    os << strfmt("%-38s %8s %7s %7s %7s  %s\n", "module", "cycles",
                 "busy%", "stall%", "idle%", "top stall");
    for (size_t pid = 0; pid < processes_.size(); ++pid) {
        uint64_t h = horizon[pid];
        if (h == 0)
            continue;
        os << processes_[pid] << ": (" << h << " cycles)\n";
        for (size_t t = 0; t < tracks_.size(); ++t) {
            const Track &track = tracks_[t];
            if (track.pid != static_cast<int>(pid) ||
                track.kind != TrackKind::Span || !utils[t].any) {
                continue;
            }
            const Util &u = utils[t];
            uint64_t stall_total = 0;
            StateId top_stall = kStateIdle;
            uint64_t top_cycles = 0;
            for (const auto &[state, cycles] : u.stalls) {
                stall_total += cycles;
                if (cycles > top_cycles) {
                    top_cycles = cycles;
                    top_stall = state;
                }
            }
            // Everything not spent busy or stalled within the process
            // horizon is idle — whether recorded as an explicit idle
            // span or left as a gap (bulk-recorded channel tracks).
            uint64_t covered = u.busy + stall_total;
            uint64_t idle = h > covered ? h - covered : 0;
            auto pct = [h](uint64_t c) {
                return 100.0 * static_cast<double>(c) /
                    static_cast<double>(h);
            };
            std::string top = top_cycles
                ? strfmt("%s (%llu)", states_[top_stall].c_str(),
                         static_cast<unsigned long long>(top_cycles))
                : std::string("-");
            os << strfmt("  %-36s %8llu %6.1f%% %6.1f%% %6.1f%%  %s\n",
                         track.name.c_str(),
                         static_cast<unsigned long long>(h), pct(u.busy),
                         pct(stall_total), pct(idle), top.c_str());
        }
    }
    if (spans_.empty())
        os << "  (no activity recorded)\n";
    return os.str();
}

} // namespace genesis

/**
 * @file
 * Multi-tenant accelerator service: a queue-fronted scheduler over a
 * fleet of simulated boards.
 *
 * The paper's host runtime keeps several pipelines in flight per board
 * (Section III-E); this layer grows that into a long-lived service:
 * many concurrent client threads submit jobs through a bounded request
 * queue with admission control (a full queue rejects with a reason
 * instead of blocking the client), and a scheduler places admitted
 * jobs onto a fleet of N boards x M pipeline slots. Each board owns a
 * persistent DeviceMemory whose keyed column cache lets repeat queries
 * over the same table skip configure_mem (DMA-in) entirely.
 *
 * Scheduling: jobs are ordered by priority (higher first); among equal
 * priorities the policy decides — Priority is FIFO, WeightedFair runs
 * start-time fair queueing over per-tenant virtual time, so a tenant
 * with weight w receives a w-proportional share of the fleet under
 * contention while an idle tenant's unused share is redistributed.
 *
 * Accounting: every job's simulated accelerator seconds are credited
 * to its tenant and to the fleet ledger, and priced with
 * cost::runCost over the configured instance (f1.2xlarge by default),
 * so per-tenant dollars always sum to the fleet total.
 *
 * Thread-safety: submit()/usage()/cacheStats()/fleet totals may be
 * called from any number of client threads; worker threads (one per
 * board slot) execute jobs. stop() drains and joins.
 */

#ifndef GENESIS_SERVICE_SERVICE_H
#define GENESIS_SERVICE_SERVICE_H

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cost/cost.h"
#include "runtime/api.h"

namespace genesis::service {

/** Scheduling discipline among equal-priority jobs. */
enum class SchedPolicy {
    Priority,     ///< strict priority, FIFO within a level
    WeightedFair, ///< priority, then weighted fair queueing by tenant
};

/** Fleet + queue + policy configuration. */
struct ServiceConfig {
    /** Simulated boards in the fleet. */
    int numBoards = 2;
    /** Concurrent pipeline slots per board. */
    int slotsPerBoard = 2;
    /** Bounded request-queue depth; submissions beyond it are rejected. */
    size_t queueCapacity = 64;
    SchedPolicy policy = SchedPolicy::WeightedFair;
    /** Per-board device DRAM capacity. */
    uint64_t deviceCapacityBytes = runtime::DeviceMemory::kDefaultCapacity;
    /** Per-board column-cache high-water mark (0 = device capacity). */
    uint64_t cacheCapacityBytes = 0;
    /** When false, cached inputs degrade to per-job uploads. */
    bool enableCache = true;
    /** Session configuration for every job (clock, DMA, memory). */
    runtime::RuntimeConfig runtime;
    /** Instance whose hourly price the accounting uses. */
    cost::InstanceSpec billing = cost::InstanceSpec::f1_2xlarge();

    /**
     * Apply GENESIS_SERVICE_* environment overrides: BOARDS, SLOTS,
     * QUEUE_CAP, NO_CACHE, DEVICE_MB (device capacity), CACHE_MB
     * (cache high-water).
     */
    static ServiceConfig fromEnv(ServiceConfig base);
    static ServiceConfig fromEnv();
};

class AcceleratorService;

/**
 * Build-time view of one job: wraps the job's private session (its own
 * Simulator) plus the board's shared, cached device memory. Buffer
 * names are scoped per job, so concurrent jobs on one board never
 * collide; cached inputs are shared across jobs by key.
 */
class JobContext
{
  public:
    runtime::AcceleratorSession &session() { return *session_; }
    sim::Simulator &sim() { return session_->sim(); }

    /**
     * Configure an input column through the board's column cache:
     * `key` names the column image (e.g. "tableX.QUAL.chunk3"); a
     * resident key skips the upload and DMA-in entirely. An empty key
     * opts out of caching (per-job upload, released at retire).
     */
    modules::ColumnBuffer *input(const std::string &key,
                                 std::vector<int64_t> elements,
                                 std::vector<uint32_t> row_lengths,
                                 uint32_t elem_size_bytes);

    /**
     * Allocate a per-job output buffer; it is flushed into the
     * JobResult (under this unscoped name) when the run retires.
     */
    modules::ColumnBuffer *output(const std::string &name,
                                  uint32_t elem_size_bytes);

    /** Board index the job landed on (stable during build/run). */
    int board() const { return board_; }
    /** Slot index within the board. */
    int slot() const { return slot_; }

  private:
    friend class AcceleratorService;
    JobContext(runtime::AcceleratorSession *session,
               runtime::DeviceMemory *device, std::string scope,
               bool cache_enabled, int board, int slot)
        : session_(session), device_(device), scope_(std::move(scope)),
          cacheEnabled_(cache_enabled), board_(board), slot_(slot)
    {
    }

    runtime::AcceleratorSession *session_;
    runtime::DeviceMemory *device_;
    /** Per-job name prefix ("j<seq>."). */
    std::string scope_;
    bool cacheEnabled_;
    int board_;
    int slot_;
    /** Cached keys pinned by this job (unpinned at retire). */
    std::vector<std::string> pinnedKeys_;
    /** Per-job buffer names to release at retire (inputs + outputs). */
    std::vector<std::string> jobBuffers_;
    /** Output buffers: unscoped name -> scoped device name. */
    std::vector<std::pair<std::string, std::string>> outputs_;
    size_t cacheHits_ = 0;
    size_t cacheMisses_ = 0;
};

/** Wires one job's pipeline into its session. May throw FatalError. */
using JobBuild = std::function<void(JobContext &)>;

/** One client request. */
struct JobRequest {
    std::string tenant = "default";
    /** Higher runs first. */
    int priority = 0;
    /**
     * Relative size hint for weighted-fair virtual time (e.g. row
     * count); only ratios between jobs matter.
     */
    double costHint = 1.0;
    JobBuild build;
};

/** One flushed output column. */
struct JobOutput {
    std::string name;
    std::vector<int64_t> elements;
    std::vector<uint32_t> rowLengths;
};

/** Completion record delivered through the admission future. */
struct JobResult {
    bool ok = false;
    /** FatalError text when ok is false. */
    std::string error;
    std::vector<JobOutput> outputs;
    runtime::TimingBreakdown timing;
    uint64_t cycles = 0;
    int board = -1;
    int slot = -1;
    size_t cacheHits = 0;
    size_t cacheMisses = 0;
    /** Seconds from admission to dispatch. */
    double queueSeconds = 0.0;
    /** Seconds from dispatch to completion (host wall clock). */
    double serviceSeconds = 0.0;
    /** runCost of the job's simulated accelerator seconds. */
    double dollars = 0.0;
};

/** Outcome of submit(): admitted with a future, or rejected. */
struct Admission {
    bool accepted = false;
    /** Rejection reason ("queue full (capacity 64)", "stopped"). */
    std::string reason;
    /** Valid when accepted. */
    std::shared_future<JobResult> result;
};

/** Per-tenant ledger snapshot. */
struct TenantUsage {
    std::string tenant;
    double weight = 1.0;
    size_t submitted = 0;
    size_t completed = 0;
    size_t failed = 0;
    size_t rejected = 0;
    double accelSeconds = 0.0;
    double dmaSeconds = 0.0;
    /** runCost of accelSeconds on the configured billing instance. */
    double dollars = 0.0;
    size_t cacheHits = 0;
    size_t cacheMisses = 0;
};

/** The queue-fronted fleet scheduler. */
class AcceleratorService
{
  public:
    explicit AcceleratorService(const ServiceConfig &config);
    ~AcceleratorService();

    AcceleratorService(const AcceleratorService &) = delete;
    AcceleratorService &operator=(const AcceleratorService &) = delete;

    const ServiceConfig &config() const { return config_; }

    /** Set a tenant's fair-share weight (default 1.0). */
    void setTenantWeight(const std::string &tenant, double weight);

    /**
     * Submit a job. Never blocks on the fleet: a full queue or a
     * stopped service rejects with a reason. Thread-safe.
     */
    Admission submit(JobRequest request);

    /** Block until the queue is empty and every slot is idle. */
    void drain();

    /** Reject new work, drain in-flight jobs, join the workers. */
    void stop();

    /** Snapshot of every tenant's ledger (sorted by tenant name). */
    std::vector<TenantUsage> usage() const;

    /** Fleet-total simulated accelerator seconds. */
    double fleetAccelSeconds() const;

    /** runCost of the fleet-total accelerator seconds. */
    double fleetDollars() const;

    /** Summed cache counters across the fleet's boards. */
    runtime::DeviceMemory::CacheStats cacheStats() const;

    /** Jobs rejected by admission control since construction. */
    size_t rejectedJobs() const;

  private:
    /** One simulated board: persistent, cached device memory. */
    struct Board {
        std::unique_ptr<runtime::DeviceMemory> memory;
    };

    /** One queued job. */
    struct PendingJob {
        JobRequest request;
        uint64_t seq = 0;
        /** Start-time-fair-queueing virtual start time. */
        double vtime = 0.0;
        std::chrono::steady_clock::time_point admitted;
        std::shared_ptr<std::promise<JobResult>> promise;
    };

    /** Mutable per-tenant scheduler + ledger state. */
    struct TenantState {
        double weight = 1.0;
        /** Virtual finish time of the tenant's last admitted job. */
        double lastFinish = 0.0;
        TenantUsage ledger;
    };

    void workerLoop(int board, int slot);
    /** Pop the next job per policy. Caller holds queueMutex_. */
    PendingJob takeNextLocked();
    JobResult runJob(PendingJob &job, int board, int slot);

    ServiceConfig config_;
    std::vector<Board> boards_;
    std::vector<std::thread> workers_;

    mutable std::mutex queueMutex_;
    std::condition_variable queueCv_;
    /** Signalled when a job retires (drain watches queue + busy). */
    std::condition_variable idleCv_;
    std::deque<PendingJob> queue_;
    int busySlots_ = 0;
    bool stopping_ = false;
    uint64_t nextSeq_ = 0;
    /** Global virtual time (max vtime ever dispatched). */
    double globalVtime_ = 0.0;

    mutable std::mutex ledgerMutex_;
    std::map<std::string, TenantState> tenants_;
    double fleetAccelSeconds_ = 0.0;
    size_t rejected_ = 0;
};

} // namespace genesis::service

#endif // GENESIS_SERVICE_SERVICE_H

#include "service/service.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "base/env.h"
#include "base/logging.h"

namespace genesis::service {

namespace {

/** Read a positive integer env override, else `fallback`. Malformed or
 *  non-positive values warn and fall back (base/env.h strict parse). */
long long
envLong(const char *name, long long fallback)
{
    return envInt64(name, fallback, 1);
}

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

ServiceConfig
ServiceConfig::fromEnv(ServiceConfig base)
{
    base.numBoards = static_cast<int>(
        envLong("GENESIS_SERVICE_BOARDS", base.numBoards));
    base.slotsPerBoard = static_cast<int>(
        envLong("GENESIS_SERVICE_SLOTS", base.slotsPerBoard));
    base.queueCapacity = static_cast<size_t>(envLong(
        "GENESIS_SERVICE_QUEUE_CAP",
        static_cast<long long>(base.queueCapacity)));
    if (std::getenv("GENESIS_SERVICE_NO_CACHE"))
        base.enableCache = false;
    base.deviceCapacityBytes = static_cast<uint64_t>(envLong(
        "GENESIS_SERVICE_DEVICE_MB",
        static_cast<long long>(base.deviceCapacityBytes >> 20)))
        << 20;
    base.cacheCapacityBytes = static_cast<uint64_t>(envLong(
        "GENESIS_SERVICE_CACHE_MB",
        static_cast<long long>(base.cacheCapacityBytes >> 20)))
        << 20;
    return base;
}

ServiceConfig
ServiceConfig::fromEnv()
{
    return fromEnv(ServiceConfig());
}

// --- JobContext -----------------------------------------------------------

modules::ColumnBuffer *
JobContext::input(const std::string &key, std::vector<int64_t> elements,
                  std::vector<uint32_t> row_lengths,
                  uint32_t elem_size_bytes)
{
    if (key.empty() || !cacheEnabled_) {
        // Per-job upload: scoped so concurrent jobs never collide,
        // released when the job retires.
        std::string name = scope_;
        name += key.empty() ? "in" + std::to_string(jobBuffers_.size())
                            : key;
        modules::ColumnBuffer *buffer = session_->configureMem(
            name, std::move(elements), std::move(row_lengths),
            elem_size_bytes);
        jobBuffers_.push_back(std::move(name));
        return buffer;
    }
    runtime::DeviceMemory::CachedColumn cached =
        session_->configureMemCached(key, std::move(elements),
                                     std::move(row_lengths),
                                     elem_size_bytes);
    pinnedKeys_.push_back(key);
    if (cached.hit)
        ++cacheHits_;
    else
        ++cacheMisses_;
    return cached.buffer;
}

modules::ColumnBuffer *
JobContext::output(const std::string &name, uint32_t elem_size_bytes)
{
    std::string scoped = scope_ + name;
    modules::ColumnBuffer *buffer =
        session_->configureOutput(scoped, elem_size_bytes);
    jobBuffers_.push_back(scoped);
    outputs_.emplace_back(name, std::move(scoped));
    return buffer;
}

// --- AcceleratorService ---------------------------------------------------

AcceleratorService::AcceleratorService(const ServiceConfig &config)
    : config_(config)
{
    if (config_.numBoards < 1 || config_.slotsPerBoard < 1)
        fatal("service needs at least one board and one slot");
    if (config_.queueCapacity < 1)
        fatal("service queue capacity must be at least 1");
    boards_.resize(static_cast<size_t>(config_.numBoards));
    for (auto &board : boards_) {
        board.memory = std::make_unique<runtime::DeviceMemory>(
            config_.deviceCapacityBytes);
        if (config_.cacheCapacityBytes > 0)
            board.memory->setCacheCapacity(config_.cacheCapacityBytes);
    }
    for (int b = 0; b < config_.numBoards; ++b) {
        for (int s = 0; s < config_.slotsPerBoard; ++s)
            workers_.emplace_back(
                [this, b, s] { workerLoop(b, s); });
    }
}

AcceleratorService::~AcceleratorService()
{
    stop();
}

void
AcceleratorService::setTenantWeight(const std::string &tenant,
                                    double weight)
{
    if (weight <= 0)
        fatal("tenant weight must be positive");
    std::lock_guard<std::mutex> lock(ledgerMutex_);
    tenants_[tenant].weight = weight;
}

Admission
AcceleratorService::submit(JobRequest request)
{
    if (!request.build)
        fatal("job has no build function");
    Admission admission;
    std::lock_guard<std::mutex> queue_lock(queueMutex_);
    if (stopping_) {
        admission.reason = "service stopped";
        std::lock_guard<std::mutex> ledger_lock(ledgerMutex_);
        ++rejected_;
        ++tenants_[request.tenant].ledger.rejected;
        return admission;
    }
    if (queue_.size() >= config_.queueCapacity) {
        admission.reason = strfmt("queue full (capacity %zu)",
                                  config_.queueCapacity);
        std::lock_guard<std::mutex> ledger_lock(ledgerMutex_);
        ++rejected_;
        ++tenants_[request.tenant].ledger.rejected;
        return admission;
    }

    PendingJob job;
    job.seq = nextSeq_++;
    job.admitted = std::chrono::steady_clock::now();
    job.promise = std::make_shared<std::promise<JobResult>>();
    admission.accepted = true;
    admission.result = job.promise->get_future().share();
    {
        // Start-time fair queueing: the job starts at the later of the
        // fleet's virtual time and the tenant's last virtual finish,
        // and pushes the tenant's finish out by cost / weight.
        std::lock_guard<std::mutex> ledger_lock(ledgerMutex_);
        TenantState &tenant = tenants_[request.tenant];
        ++tenant.ledger.submitted;
        job.vtime = std::max(globalVtime_, tenant.lastFinish);
        tenant.lastFinish =
            job.vtime +
            std::max(request.costHint, 1e-9) / tenant.weight;
    }
    job.request = std::move(request);
    queue_.push_back(std::move(job));
    queueCv_.notify_one();
    return admission;
}

AcceleratorService::PendingJob
AcceleratorService::takeNextLocked()
{
    auto best = queue_.begin();
    for (auto it = std::next(queue_.begin()); it != queue_.end(); ++it) {
        if (it->request.priority != best->request.priority) {
            if (it->request.priority > best->request.priority)
                best = it;
            continue;
        }
        if (config_.policy == SchedPolicy::WeightedFair) {
            if (it->vtime < best->vtime ||
                (it->vtime == best->vtime && it->seq < best->seq))
                best = it;
        } else if (it->seq < best->seq) {
            best = it;
        }
    }
    PendingJob job = std::move(*best);
    queue_.erase(best);
    globalVtime_ = std::max(globalVtime_, job.vtime);
    return job;
}

void
AcceleratorService::workerLoop(int board, int slot)
{
    for (;;) {
        PendingJob job;
        {
            std::unique_lock<std::mutex> lock(queueMutex_);
            queueCv_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty())
                return; // stopping and drained
            job = takeNextLocked();
            ++busySlots_;
        }
        JobResult result = runJob(job, board, slot);
        // Ledger before promise so a client that observes its own
        // completion also observes its usage.
        {
            std::lock_guard<std::mutex> lock(ledgerMutex_);
            TenantState &tenant = tenants_[job.request.tenant];
            if (result.ok)
                ++tenant.ledger.completed;
            else
                ++tenant.ledger.failed;
            tenant.ledger.accelSeconds += result.timing.accelSeconds;
            tenant.ledger.dmaSeconds += result.timing.dmaSeconds;
            tenant.ledger.dollars = cost::runCost(
                tenant.ledger.accelSeconds, config_.billing);
            tenant.ledger.cacheHits += result.cacheHits;
            tenant.ledger.cacheMisses += result.cacheMisses;
            fleetAccelSeconds_ += result.timing.accelSeconds;
        }
        job.promise->set_value(std::move(result));
        {
            std::lock_guard<std::mutex> lock(queueMutex_);
            --busySlots_;
        }
        idleCv_.notify_all();
    }
}

JobResult
AcceleratorService::runJob(PendingJob &job, int board, int slot)
{
    const auto dispatch = std::chrono::steady_clock::now();
    JobResult result;
    result.board = board;
    result.slot = slot;
    result.queueSeconds = std::chrono::duration<double>(
                              dispatch - job.admitted)
                              .count();

    runtime::RuntimeConfig rt = config_.runtime;
    rt.concurrentSessions = std::max(
        rt.concurrentSessions,
        config_.numBoards * config_.slotsPerBoard);
    runtime::DeviceMemory *memory =
        boards_[static_cast<size_t>(board)].memory.get();
    runtime::AcceleratorSession session(rt, memory);
    JobContext ctx(&session, memory,
                   "j" + std::to_string(job.seq) + ".",
                   config_.enableCache, board, slot);
    try {
        job.request.build(ctx);
        session.start();
        session.wait();
        for (const auto &[unscoped, scoped] : ctx.outputs_) {
            const modules::ColumnBuffer *flushed =
                session.flush(scoped);
            JobOutput out;
            out.name = unscoped;
            out.elements = flushed->elements;
            out.rowLengths = flushed->rowLengths;
            result.outputs.push_back(std::move(out));
        }
        result.ok = true;
    } catch (const std::exception &e) {
        result.ok = false;
        result.error = e.what();
        session.wait();
        result.outputs.clear();
    }
    // Retire the job's footprint: cached inputs stay resident (just
    // unpinned, eligible for LRU eviction); per-job buffers go back to
    // the board's free list.
    for (const std::string &key : ctx.pinnedKeys_)
        memory->unpin(key);
    for (const std::string &name : ctx.jobBuffers_)
        memory->release(name);

    result.cycles = session.sim().cycle();
    result.timing = session.timing();
    result.cacheHits = ctx.cacheHits_;
    result.cacheMisses = ctx.cacheMisses_;
    result.serviceSeconds = secondsSince(dispatch);
    result.dollars =
        cost::runCost(result.timing.accelSeconds, config_.billing);
    return result;
}

void
AcceleratorService::drain()
{
    std::unique_lock<std::mutex> lock(queueMutex_);
    idleCv_.wait(lock, [this] {
        return queue_.empty() && busySlots_ == 0;
    });
}

void
AcceleratorService::stop()
{
    {
        std::lock_guard<std::mutex> lock(queueMutex_);
        if (stopping_ && workers_.empty())
            return;
        stopping_ = true;
    }
    queueCv_.notify_all();
    for (auto &worker : workers_) {
        if (worker.joinable())
            worker.join();
    }
    workers_.clear();
}

std::vector<TenantUsage>
AcceleratorService::usage() const
{
    std::lock_guard<std::mutex> lock(ledgerMutex_);
    std::vector<TenantUsage> out;
    out.reserve(tenants_.size());
    for (const auto &[name, state] : tenants_) {
        TenantUsage usage = state.ledger;
        usage.tenant = name;
        usage.weight = state.weight;
        out.push_back(std::move(usage));
    }
    return out;
}

double
AcceleratorService::fleetAccelSeconds() const
{
    std::lock_guard<std::mutex> lock(ledgerMutex_);
    return fleetAccelSeconds_;
}

double
AcceleratorService::fleetDollars() const
{
    return cost::runCost(fleetAccelSeconds(), config_.billing);
}

runtime::DeviceMemory::CacheStats
AcceleratorService::cacheStats() const
{
    runtime::DeviceMemory::CacheStats total;
    for (const auto &board : boards_) {
        runtime::DeviceMemory::CacheStats stats =
            board.memory->cacheStats();
        total.hits += stats.hits;
        total.misses += stats.misses;
        total.evictions += stats.evictions;
    }
    return total;
}

size_t
AcceleratorService::rejectedJobs() const
{
    std::lock_guard<std::mutex> lock(ledgerMutex_);
    return rejected_;
}

} // namespace genesis::service

/**
 * @file
 * Shared host-side plumbing for the Genesis accelerators: decomposing
 * read sets into the per-column element streams configure_mem uploads,
 * and aggregate result bookkeeping (timing, census, cycle counts).
 */

#ifndef GENESIS_CORE_ACCEL_COMMON_H
#define GENESIS_CORE_ACCEL_COMMON_H

#include <cstdint>
#include <vector>

#include "genome/read.h"
#include "genome/reference.h"
#include "pipeline/builder.h"
#include "runtime/api.h"

namespace genesis::core {

/** Column-decomposed image of a set of reads (Table I layout). */
struct ReadColumns {
    size_t numReads = 0;
    std::vector<int64_t> pos;
    std::vector<int64_t> endpos;
    std::vector<int64_t> flags;
    std::vector<int64_t> cigar;
    std::vector<uint32_t> cigarLens;
    std::vector<int64_t> seq;
    std::vector<uint32_t> seqLens;
    std::vector<int64_t> qual;
    std::vector<uint32_t> qualLens;

    /** Build columns for the reads selected by `indices`. */
    static ReadColumns
    fromReads(const std::vector<genome::AlignedRead> &reads,
              const std::vector<size_t> &indices);

    /** Build columns for a contiguous index range [first, last). */
    static ReadColumns
    fromRange(const std::vector<genome::AlignedRead> &reads, size_t first,
              size_t last);

    /** @return row lengths of 1 for a scalar column of n rows. */
    static std::vector<uint32_t> scalarLens(size_t n);
};

/** Reference slice for one partition window. */
struct RefColumns {
    std::vector<int64_t> seq;
    std::vector<int64_t> isSnp;
    int64_t windowStart = 0;

    /** Extract [window_start, window_end + overlap) from a chromosome. */
    static RefColumns fromGenome(const genome::ReferenceGenome &genome,
                                 uint8_t chr, int64_t window_start,
                                 int64_t window_end, int64_t overlap);
};

/** Aggregate accounting shared by all accelerator results. */
struct AccelRunInfo {
    /**
     * Host / communication / accelerator split of the stage runtime
     * (paper Figure 13(b)). "Host" covers the algorithmic software
     * portions of the stage (duplicate resolution, tag attachment,
     * table merging), not data-layout preparation.
     */
    runtime::TimingBreakdown timing;
    /**
     * Row-to-column conversion and partitioning time. The paper performs
     * this pre-partitioning in software ahead of the accelerated stage
     * (Section III-B), outside the reported stage runtime; it is kept
     * separately here for transparency.
     */
    double prepSeconds = 0.0;
    pipeline::HardwareCensus census;
    uint64_t totalCycles = 0; ///< summed across sequential batches
    uint64_t batches = 0;
    StatRegistry stats; ///< merged simulator statistics
};

/** Stopwatch accumulating into a plain double (prep accounting). */
class PrepTimer
{
  public:
    explicit PrepTimer(double &sink)
        : sink_(sink), start_(std::chrono::steady_clock::now())
    {
    }

    ~PrepTimer()
    {
        sink_ += std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start_).count();
    }

    PrepTimer(const PrepTimer &) = delete;
    PrepTimer &operator=(const PrepTimer &) = delete;

  private:
    double &sink_;
    std::chrono::steady_clock::time_point start_;
};

} // namespace genesis::core

#endif // GENESIS_CORE_ACCEL_COMMON_H

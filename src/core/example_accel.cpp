#include "core/example_accel.h"

#include <algorithm>

#include "base/logging.h"
#include "engine/executor.h"
#include "modules/filter.h"
#include "modules/fork.h"
#include "modules/gather_reader.h"
#include "modules/joiner.h"
#include "modules/memory_reader.h"
#include "modules/memory_writer.h"
#include "modules/read_to_bases.h"
#include "modules/reducer.h"
#include "modules/spm_reader.h"
#include "modules/spm_updater.h"
#include "table/genomic_schema.h"

namespace genesis::core {

using modules::ColumnBuffer;
using pipeline::PipelineBuilder;

std::string
matchCountQueryText()
{
    // The Figure-4 script in this library's dialect. @P (partition id)
    // and @WSTART (the partition's first reference position) are preset
    // by the host before execution.
    return R"(
/* I1: Extract Reads and Reference Partition P */
CREATE TABLE ReadPartition AS
SELECT POS, ENDPOS, CIGAR, SEQ
FROM READS PARTITION (@P);
CREATE TABLE ReferenceRow AS
SELECT REFPOS, SEQ
FROM REF PARTITION (@P);
/* I2: posExplode on ReferenceRow */
CREATE TABLE RelevantReference AS
PosExplode (ReferenceRow.SEQ, ReferenceRow.REFPOS)
FROM ReferenceRow;
DECLARE @rlen int;
/* Iterate over Rows */
FOR SingleRead IN ReadPartition:
  SET @rlen = SingleRead.ENDPOS - SingleRead.POS;
  /* Q1: ReadExplode converts a read into a multi-row table where each
     row represents a base pair */
  CREATE TABLE #AlignedRead AS
  ReadExplode (SingleRead.POS, SingleRead.CIGAR, SingleRead.SEQ)
  FROM SingleRead;
  /* Q2: Inner-join the two tables on the base pair's position */
  CREATE TABLE #ReadAndRef AS
  SELECT #AlignedRead.BP, RelevantReference.SEQ
  FROM #AlignedRead
  INNER JOIN (SELECT * FROM RelevantReference
              LIMIT (SingleRead.POS - @WSTART), @rlen)
  ON #AlignedRead.POS = RelevantReference.POS;
  /* Q3: Count the matching base pairs */
  INSERT INTO Output
  SELECT SUM(#ReadAndRef.BP == #ReadAndRef.SEQ)
  FROM #ReadAndRef;
END LOOP;
)";
}

std::vector<int64_t>
matchCountsSoftware(const std::vector<genome::AlignedRead> &reads,
                    const std::vector<size_t> &indices,
                    const genome::ReferenceGenome &genome)
{
    std::vector<int64_t> counts;
    counts.reserve(indices.size());
    for (size_t idx : indices) {
        const auto &read = reads[idx];
        int64_t count = 0;
        for (const auto &b :
             genome::explodeRead(read.pos, read.cigar, read.seq,
                                 read.qual)) {
            if (b.isInsertion() || b.isDeletion())
                continue;
            if (b.readBase == genome.baseAt(read.chr, b.refPos))
                ++count;
        }
        counts.push_back(count);
    }
    return counts;
}

std::vector<int64_t>
matchCountsSqlEngine(const std::vector<genome::AlignedRead> &reads,
                     const table::ReadPartition &partition,
                     const genome::ReferenceGenome &genome,
                     int64_t psize, int64_t overlap)
{
    engine::Catalog catalog;
    catalog.putPartition(
        "READS", partition.pid,
        table::buildReadsTable(reads, partition.readIndices));
    catalog.put("REF", table::buildRefTable(genome, psize, overlap));

    engine::Executor executor(catalog);
    executor.env().variables["P"] = table::Value(partition.pid);
    executor.env().variables["WSTART"] =
        table::Value(partition.windowStart);
    executor.run(matchCountQueryText());

    const table::Table *output = catalog.find("Output");
    std::vector<int64_t> counts;
    if (!output)
        return counts;
    counts.reserve(output->numRows());
    for (size_t r = 0; r < output->numRows(); ++r)
        counts.push_back(output->at(r, 0).asInt());
    return counts;
}

namespace {

struct ExampleInputs {
    const ColumnBuffer *pos = nullptr;
    const ColumnBuffer *endpos = nullptr;
    const ColumnBuffer *cigar = nullptr;
    const ColumnBuffer *seq = nullptr;
    const ColumnBuffer *refSeq = nullptr;
    int64_t windowStart = 0;
    size_t spmWords = 1;
    bool useSpm = true;
};

/** Wire one Figure-7 pipeline; returns the match-count output buffer. */
ColumnBuffer *
buildPipeline(PipelineBuilder &b, runtime::AcceleratorSession &s,
              const ExampleInputs &in)
{
    ColumnBuffer *out = s.configureOutput(b.scopedName("CNT"), 4);

    auto *pos_q = b.queue("pos");
    auto *pos_rtb_q = b.queue("pos_rtb");
    auto *pos_spm_q = b.queue("pos_spm");
    auto *endpos_q = b.queue("endpos");
    auto *cigar_q = b.queue("cigar");
    auto *seq_q = b.queue("seq");
    auto *refseq_q = b.queue("refseq");
    auto *bases_q = b.queue("bases");
    auto *ref_q = b.queue("ref");
    auto *joined_q = b.queue("joined");
    auto *match_q = b.queue("match");
    auto *count_q = b.queue("count");

    modules::MemoryReaderConfig scalar_cfg;
    modules::MemoryReaderConfig array_cfg;
    array_cfg.emitBoundaries = true;
    b.add<modules::MemoryReader>("MemoryReader", "rd_pos", in.pos,
                                 b.port(), pos_q, scalar_cfg);
    b.add<modules::MemoryReader>("MemoryReader", "rd_endpos", in.endpos,
                                 b.port(), endpos_q, scalar_cfg);
    b.add<modules::MemoryReader>("MemoryReader", "rd_cigar", in.cigar,
                                 b.port(), cigar_q, array_cfg);
    b.add<modules::MemoryReader>("MemoryReader", "rd_seq", in.seq,
                                 b.port(), seq_q, array_cfg);

    b.add<modules::Fork>("Fork", "fork_pos", pos_q,
                         std::vector<sim::HardwareQueue *>{pos_rtb_q,
                                                           pos_spm_q});

    if (in.useSpm) {
        b.add<modules::MemoryReader>("MemoryReader", "rd_refseq",
                                     in.refSeq, b.port(), refseq_q,
                                     scalar_cfg);
        auto *spm = b.scratchpad("ref_spm", in.spmWords, 1, 2);
        modules::SpmUpdaterConfig upd_cfg;
        upd_cfg.mode = modules::SpmUpdateMode::Sequential;
        auto *updater = b.add<modules::SpmUpdater>(
            "SpmUpdater", "spm_init", spm, refseq_q, upd_cfg);

        modules::SpmReaderConfig rd_cfg;
        rd_cfg.mode = modules::SpmReadMode::Interval;
        rd_cfg.addrBase = in.windowStart;
        rd_cfg.waitFor = updater;
        b.add<modules::SpmReader>("SpmReader", "spm_rd", spm, pos_spm_q,
                                  endpos_q, ref_q, rd_cfg);
    } else {
        // Ablation: no scratchpad — every read's reference span is
        // re-fetched from device memory.
        modules::GatherReaderConfig gather_cfg;
        gather_cfg.addrBase = in.windowStart;
        b.add<modules::GatherReader>("MemoryReader", "gather_ref",
                                     in.refSeq, b.port(), pos_spm_q,
                                     endpos_q, ref_q, gather_cfg);
    }

    b.add<modules::ReadToBases>("ReadToBases", "rtb", pos_rtb_q, cigar_q,
                                seq_q, nullptr, bases_q);

    modules::JoinerConfig join_cfg;
    join_cfg.mode = modules::JoinMode::Inner;
    join_cfg.leftFields = 3;
    join_cfg.rightFields = 1;
    b.add<modules::Joiner>("Joiner", "join", bases_q, ref_q, joined_q,
                           join_cfg);

    modules::FilterConfig match_filter;
    match_filter.lhs = modules::FilterOperand::field(0);
    match_filter.op = modules::CompareOp::Eq;
    match_filter.rhs = modules::FilterOperand::field(3);
    b.add<modules::Filter>("Filter", "match", joined_q, match_q,
                           match_filter);

    modules::ReducerConfig count_cfg;
    count_cfg.op = modules::ReduceOp::Count;
    count_cfg.granularity = modules::ReduceGranularity::PerItem;
    b.add<modules::Reducer>("Reducer", "count", match_q, count_q,
                            count_cfg);

    modules::MemoryWriterConfig wr;
    wr.fieldIndex = 0;
    wr.elemSizeBytes = 4;
    b.add<modules::MemoryWriter>("MemoryWriter", "wr_cnt", out, b.port(),
                                 count_q, wr);
    return out;
}

} // namespace

ExampleAccelerator::ExampleAccelerator(const ExampleAccelConfig &config)
    : config_(config)
{
    if (config_.numPipelines < 1)
        fatal("need at least one pipeline");
}

pipeline::HardwareCensus
ExampleAccelerator::census(int num_pipelines, int64_t psize,
                           int64_t overlap)
{
    runtime::AcceleratorSession session{runtime::RuntimeConfig{}};
    ColumnBuffer dummy;
    ExampleInputs in;
    in.pos = in.endpos = in.cigar = in.seq = in.refSeq = &dummy;
    in.spmWords = static_cast<size_t>(psize + overlap);
    pipeline::HardwareCensus census;
    for (int p = 0; p < num_pipelines; ++p) {
        PipelineBuilder builder(session.sim(), p);
        buildPipeline(builder, session, in);
        census.merge(builder.census());
    }
    return census;
}

ExampleAccelResult
ExampleAccelerator::run(const std::vector<genome::AlignedRead> &reads,
                        const genome::ReferenceGenome &genome)
{
    ExampleAccelResult result;
    result.counts.assign(reads.size(), 0);

    table::Partitioner partitioner(config_.psize, config_.overlap);
    auto partitions = partitioner.partitionReads(reads);

    for (size_t base = 0; base < partitions.size();
         base += static_cast<size_t>(config_.numPipelines)) {
        runtime::AcceleratorSession session(config_.runtime);
        size_t batch = std::min<size_t>(
            static_cast<size_t>(config_.numPipelines),
            partitions.size() - base);

        std::vector<ColumnBuffer *> outs(batch);
        {
            PrepTimer timer(result.info.prepSeconds);
            for (size_t p = 0; p < batch; ++p) {
                const auto &part = partitions[base + p];
                ReadColumns cols =
                    ReadColumns::fromReads(reads, part.readIndices);
                int64_t overlap = config_.overlap;
                for (size_t idx : part.readIndices) {
                    overlap = std::max(overlap, reads[idx].endPos() -
                                       part.windowEnd);
                }
                RefColumns ref = RefColumns::fromGenome(
                    genome, part.chr, part.windowStart, part.windowEnd,
                    overlap);

                PipelineBuilder builder(session.sim(),
                                        static_cast<int>(p));
                ExampleInputs in;
                in.pos = session.configureMem(
                    builder.scopedName("READS.POS"), std::move(cols.pos),
                    ReadColumns::scalarLens(cols.numReads), 4);
                in.endpos = session.configureMem(
                    builder.scopedName("READS.ENDPOS"),
                    std::move(cols.endpos),
                    ReadColumns::scalarLens(cols.numReads), 4);
                in.cigar = session.configureMem(
                    builder.scopedName("READS.CIGAR"),
                    std::move(cols.cigar), std::move(cols.cigarLens), 2);
                in.seq = session.configureMem(
                    builder.scopedName("READS.SEQ"), std::move(cols.seq),
                    std::move(cols.seqLens), 1);
                in.refSeq = session.configureMem(
                    builder.scopedName("REFS.SEQ"), std::move(ref.seq),
                    ReadColumns::scalarLens(
                        static_cast<size_t>(ref.seq.size())), 1);
                in.windowStart = part.windowStart;
                in.spmWords =
                    static_cast<size_t>(config_.psize + overlap);
                in.useSpm = config_.useSpm;
                outs[p] = buildPipeline(builder, session, in);
                if (result.info.batches == 0)
                    result.info.census.merge(builder.census());
            }
        }

        session.start();
        session.wait();
        result.info.totalCycles += session.sim().cycle();
        ++result.info.batches;
        result.info.stats.merge(session.sim().collectStats());

        {
            runtime::HostTimer host_timer(session);
            for (size_t p = 0; p < batch; ++p) {
                const auto &part = partitions[base + p];
                const ColumnBuffer *flushed =
                    session.flush(outs[p]->name);
                GENESIS_ASSERT(
                    flushed->elements.size() == part.readIndices.size(),
                    "count rows %zu != reads %zu",
                    flushed->elements.size(), part.readIndices.size());
                for (size_t i = 0; i < part.readIndices.size(); ++i) {
                    result.counts[part.readIndices[i]] =
                        flushed->elements[i];
                }
            }
        }
        result.info.timing += session.timing();
    }
    return result;
}

} // namespace genesis::core

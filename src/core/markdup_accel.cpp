#include "core/markdup_accel.h"

#include <chrono>
#include <utility>

#include "base/logging.h"
#include "modules/memory_reader.h"
#include "modules/memory_writer.h"
#include "modules/reducer.h"
#include "runtime/batch.h"

namespace genesis::core {

using modules::ColumnBuffer;
using pipeline::PipelineBuilder;

namespace {

/** Wire one Figure-10 pipeline; returns the output (sums) buffer. */
ColumnBuffer *
buildPipeline(PipelineBuilder &builder, runtime::AcceleratorSession &s,
              const ColumnBuffer *qual_buffer)
{
    auto *qual_q = builder.queue("qual");
    auto *sum_q = builder.queue("sum");
    ColumnBuffer *out = s.configureOutput(
        builder.scopedName("QSUM"), 4);

    modules::MemoryReaderConfig reader_cfg;
    reader_cfg.emitBoundaries = true;
    builder.add<modules::MemoryReader>(
        "MemoryReader", "rd_qual", qual_buffer, builder.port(), qual_q,
        reader_cfg);

    modules::ReducerConfig red_cfg;
    red_cfg.op = modules::ReduceOp::Sum;
    red_cfg.granularity = modules::ReduceGranularity::PerItem;
    red_cfg.valueField = 0;
    builder.add<modules::Reducer>("ReducerWide", "sum", qual_q, sum_q,
                                  red_cfg);

    modules::MemoryWriterConfig writer_cfg;
    writer_cfg.fieldIndex = 0;
    writer_cfg.elemSizeBytes = 4;
    builder.add<modules::MemoryWriter>("MemoryWriter", "wr_sum", out,
                                       builder.port(), sum_q, writer_cfg);
    return out;
}

} // namespace

MarkDupAccelerator::MarkDupAccelerator(const MarkDupAccelConfig &config)
    : config_(config)
{
    if (config_.numPipelines < 1)
        fatal("need at least one pipeline");
}

pipeline::HardwareCensus
MarkDupAccelerator::census(int num_pipelines)
{
    runtime::AcceleratorSession session{runtime::RuntimeConfig{}};
    ColumnBuffer dummy;
    pipeline::HardwareCensus census;
    for (int p = 0; p < num_pipelines; ++p) {
        PipelineBuilder builder(session.sim(), p);
        buildPipeline(builder, session, &dummy);
        census.merge(builder.census());
    }
    return census;
}

MarkDupAccelResult
MarkDupAccelerator::run(std::vector<genome::AlignedRead> &reads)
{
    if (config_.concurrentSessions > 1)
        return runSharded(reads);

    MarkDupAccelResult result;
    runtime::AcceleratorSession session(config_.runtime);

    // Host: split the read set across pipelines and build the column
    // streams (the configure_mem preparation work).
    size_t n = reads.size();
    size_t per = (n + static_cast<size_t>(config_.numPipelines) - 1) /
        static_cast<size_t>(config_.numPipelines);
    std::vector<ColumnBuffer *> outputs;
    std::vector<size_t> chunk_starts;
    {
        PrepTimer timer(result.info.prepSeconds);
        for (int p = 0; p < config_.numPipelines; ++p) {
            size_t first = std::min(n, static_cast<size_t>(p) * per);
            size_t last = std::min(n, first + per);
            if (first >= last)
                break;
            chunk_starts.push_back(first);
            ReadColumns cols = ReadColumns::fromRange(reads, first, last);
            PipelineBuilder builder(session.sim(), p);
            ColumnBuffer *qual = session.configureMem(
                builder.scopedName("READS.QUAL"), std::move(cols.qual),
                std::move(cols.qualLens), 1);
            outputs.push_back(buildPipeline(builder, session, qual));
            result.info.census.merge(builder.census());
        }
    }

    session.start();
    session.wait();
    result.info.totalCycles = session.sim().cycle();
    result.info.batches = 1;
    result.info.stats.merge(session.sim().collectStats());

    // DMA the sums back and reassemble the full vector.
    result.qualSums.assign(n, 0);
    for (size_t c = 0; c < outputs.size(); ++c) {
        const ColumnBuffer *flushed = session.flush(outputs[c]->name);
        for (size_t i = 0; i < flushed->elements.size(); ++i)
            result.qualSums[chunk_starts[c] + i] = flushed->elements[i];
    }

    // Host: duplicate resolution + coordinate sort with hardware sums.
    {
        runtime::HostTimer timer(session);
        result.stats =
            gatk::markDuplicatesWithQualSums(reads, result.qualSums);
    }
    result.info.timing = session.timing();
    return result;
}

MarkDupAccelResult
MarkDupAccelerator::runSharded(std::vector<genome::AlignedRead> &reads)
{
    MarkDupAccelResult result;

    // Same chunking as the single-session path, so the per-read sums
    // (and therefore the duplicate decisions) are bit-for-bit identical:
    // each former pipeline's read range becomes one shard.
    size_t n = reads.size();
    size_t per = (n + static_cast<size_t>(config_.numPipelines) - 1) /
        static_cast<size_t>(config_.numPipelines);
    std::vector<std::pair<size_t, size_t>> chunks;
    for (int p = 0; p < config_.numPipelines; ++p) {
        size_t first = std::min(n, static_cast<size_t>(p) * per);
        size_t last = std::min(n, first + per);
        if (first >= last)
            break;
        chunks.emplace_back(first, last);
    }
    result.qualSums.assign(n, 0);

    runtime::BatchConfig batch_cfg;
    batch_cfg.numLanes = config_.concurrentSessions;
    batch_cfg.runtime = config_.runtime;
    runtime::BatchRunner runner(batch_cfg);

    auto build = [&](size_t shard, runtime::AcceleratorSession &s) {
        PrepTimer timer(result.info.prepSeconds);
        auto [first, last] = chunks[shard];
        ReadColumns cols = ReadColumns::fromRange(reads, first, last);
        PipelineBuilder builder(s.sim(), static_cast<int>(shard));
        ColumnBuffer *qual = s.configureMem(
            builder.scopedName("READS.QUAL"), std::move(cols.qual),
            std::move(cols.qualLens), 1);
        buildPipeline(builder, s, qual);
        // The census describes resident hardware: only numLanes
        // single-pipeline sessions exist at any moment.
        if (shard < static_cast<size_t>(config_.concurrentSessions))
            result.info.census.merge(builder.census());
    };
    auto collect = [&](size_t shard, runtime::AcceleratorSession &s) {
        auto [first, last] = chunks[shard];
        const ColumnBuffer *flushed =
            s.flush("p" + std::to_string(shard) + ".QSUM");
        for (size_t i = 0; i < flushed->elements.size(); ++i)
            result.qualSums[first + i] = flushed->elements[i];
        result.info.stats.merge(s.sim().collectStats());
    };
    runtime::BatchStats batch =
        runner.run(chunks.size(), build, collect);
    result.info.totalCycles = batch.totalCycles;
    result.info.batches = batch.shards;
    result.info.timing = batch.timing;

    // Host: duplicate resolution + coordinate sort with hardware sums.
    auto host_start = std::chrono::steady_clock::now();
    result.stats =
        gatk::markDuplicatesWithQualSums(reads, result.qualSums);
    result.info.timing.hostSeconds += std::chrono::duration<double>(
        std::chrono::steady_clock::now() - host_start)
                                          .count();
    return result;
}

} // namespace genesis::core

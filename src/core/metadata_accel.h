/**
 * @file
 * Metadata Update accelerator (paper Figure 11, Section IV-C).
 *
 * Per reference partition, a pipeline of six Memory Readers, a
 * ReadToBases, an SPM (holding the partition's reference sequence), a
 * Left Joiner, mask Filters, per-read Reducers (COUNT for NM, masked SUM
 * for UQ) and the MDGen custom module computes the NM / MD / UQ tags of
 * every read, streaming the three outputs back through Memory Writers.
 * Partitions round-robin across the configured pipelines; one simulator
 * batch runs up to numPipelines partitions concurrently behind the
 * shared memory arbiters of Figure 8.
 */

#ifndef GENESIS_CORE_METADATA_ACCEL_H
#define GENESIS_CORE_METADATA_ACCEL_H

#include "core/accel_common.h"
#include "table/partition.h"

namespace genesis::core {

/** Configuration of the Metadata Update accelerator. */
struct MetadataAccelConfig {
    int numPipelines = 16;
    runtime::RuntimeConfig runtime;
    /** Reference partition size (paper: 1 M base pairs). */
    int64_t psize = 1'000'000;
    /** Reference overlap past the window end (paper: LEN = 151). */
    int64_t overlap = 151;
};

/** Result of an accelerated Metadata Update run. */
struct MetadataAccelResult {
    AccelRunInfo info;
    int64_t readsTagged = 0;
};

/** The accelerated SetNmMdAndUqTags stage. */
class MetadataAccelerator
{
  public:
    explicit MetadataAccelerator(
        const MetadataAccelConfig &config = MetadataAccelConfig());

    /** Compute and attach NM/MD/UQ tags to every read, in place. */
    MetadataAccelResult run(std::vector<genome::AlignedRead> &reads,
                            const genome::ReferenceGenome &genome);

    /** @return the hardware census without running (for Table IV). */
    static pipeline::HardwareCensus census(int num_pipelines,
                                           int64_t psize = 1'000'000,
                                           int64_t overlap = 151);

  private:
    MetadataAccelConfig config_;
};

} // namespace genesis::core

#endif // GENESIS_CORE_METADATA_ACCEL_H

/**
 * @file
 * Mark Duplicates accelerator (paper Figure 10, Section IV-B).
 *
 * The simplest Genesis pipeline: a Memory Reader streams READS.QUAL, a
 * per-read sum Reducer computes each read's quality-score total, and a
 * Memory Writer stores the sums. The host then resolves duplicate sets
 * using those sums (the un-accelerated portion that dominates this
 * stage's runtime, per Figure 13(b)). Replicated across 16 pipelines by
 * splitting the read set.
 */

#ifndef GENESIS_CORE_MARKDUP_ACCEL_H
#define GENESIS_CORE_MARKDUP_ACCEL_H

#include "core/accel_common.h"
#include "gatk/markdup.h"

namespace genesis::core {

/** Configuration of the Mark Duplicates accelerator. */
struct MarkDupAccelConfig {
    int numPipelines = 16;
    /**
     * When > 1, the read-set chunks run as shards over this many
     * concurrent single-pipeline sessions (BatchRunner) instead of as
     * replicated pipelines inside one session: host-side column encode
     * of shard k+1 overlaps accelerator execution of shard k. Per-read
     * sums are independent of the chunking, so results are bit-for-bit
     * identical to the single-session path.
     */
    int concurrentSessions = 1;
    runtime::RuntimeConfig runtime;
};

/** Result of an accelerated Mark Duplicates run. */
struct MarkDupAccelResult {
    AccelRunInfo info;
    gatk::MarkDuplicatesStats stats;
    /** The hardware-computed per-read quality sums (pre-sort order). */
    std::vector<int64_t> qualSums;
};

/** The accelerated Mark Duplicates stage. */
class MarkDupAccelerator
{
  public:
    explicit MarkDupAccelerator(
        const MarkDupAccelConfig &config = MarkDupAccelConfig());

    /**
     * Run the full stage: hardware quality sums + host duplicate
     * resolution and sort (in place, as the software baseline does).
     */
    MarkDupAccelResult run(std::vector<genome::AlignedRead> &reads);

    /** @return the hardware census without running (for Table IV). */
    static pipeline::HardwareCensus census(int num_pipelines);

  private:
    /** The concurrentSessions > 1 path (BatchRunner sharding). */
    MarkDupAccelResult
    runSharded(std::vector<genome::AlignedRead> &reads);

    MarkDupAccelConfig config_;
};

} // namespace genesis::core

#endif // GENESIS_CORE_MARKDUP_ACCEL_H

/**
 * @file
 * The paper's walk-through example (Figures 4, 5 and 7): count, for each
 * read of a partition, the number of bases matching the reference.
 *
 * Three implementations coexist so they can be cross-checked:
 *  - the extended-SQL script of Figure 4 run on the software engine;
 *  - a direct software computation;
 *  - the Figure-7 hardware pipeline on the simulator.
 */

#ifndef GENESIS_CORE_EXAMPLE_ACCEL_H
#define GENESIS_CORE_EXAMPLE_ACCEL_H

#include <string>

#include "core/accel_common.h"
#include "table/partition.h"

namespace genesis::core {

/** The Figure-4 query script text (parsable by sql::parseScript). */
std::string matchCountQueryText();

/** Direct software ground truth: matching-base count per read. */
std::vector<int64_t>
matchCountsSoftware(const std::vector<genome::AlignedRead> &reads,
                    const std::vector<size_t> &indices,
                    const genome::ReferenceGenome &genome);

/**
 * Run the Figure-4 script on the software SQL engine for one partition;
 * returns the per-read match counts from the Output table.
 */
std::vector<int64_t>
matchCountsSqlEngine(const std::vector<genome::AlignedRead> &reads,
                     const table::ReadPartition &partition,
                     const genome::ReferenceGenome &genome,
                     int64_t psize, int64_t overlap);

/** Configuration of the example accelerator. */
struct ExampleAccelConfig {
    int numPipelines = 4;
    runtime::RuntimeConfig runtime;
    int64_t psize = 1'000'000;
    int64_t overlap = 151;
    /**
     * Stage the reference in an on-chip SPM (the paper's design). When
     * false, a GatherReader re-fetches each read's reference span from
     * device memory — the no-data-reuse counterfactual measured by the
     * ablate_spm bench.
     */
    bool useSpm = true;
};

/** Result of the example accelerator. */
struct ExampleAccelResult {
    AccelRunInfo info;
    /** Match count per read, indexed like the input read vector. */
    std::vector<int64_t> counts;
};

/** The Figure-7 hardware pipeline, replicated per Figure 8. */
class ExampleAccelerator
{
  public:
    explicit ExampleAccelerator(
        const ExampleAccelConfig &config = ExampleAccelConfig());

    ExampleAccelResult
    run(const std::vector<genome::AlignedRead> &reads,
        const genome::ReferenceGenome &genome);

    /** @return the hardware census without running. */
    static pipeline::HardwareCensus census(int num_pipelines,
                                           int64_t psize = 1'000'000,
                                           int64_t overlap = 151);

  private:
    ExampleAccelConfig config_;
};

} // namespace genesis::core

#endif // GENESIS_CORE_EXAMPLE_ACCEL_H

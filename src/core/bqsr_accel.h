/**
 * @file
 * BQSR covariate-table-construction accelerator (paper Figure 12,
 * Section IV-D).
 *
 * Per (reference partition, read group), a pipeline explodes each read's
 * bases (ReadToBases), computes the two covariate bin ids (BinIDGen),
 * inner-joins against the SPM-resident reference + IS_SNP columns,
 * filters out known variant sites, and updates four scratchpad count
 * buffers (total/error x cycle/context covariates) through
 * read-modify-write SPM Updaters with hazard interlocks. When a
 * partition finishes, the buffers drain through SPM Readers to Memory
 * Writers. The host merges per-partition tables into the final covariate
 * table; the quality-score update stage stays in software, as in the
 * paper.
 */

#ifndef GENESIS_CORE_BQSR_ACCEL_H
#define GENESIS_CORE_BQSR_ACCEL_H

#include "core/accel_common.h"
#include "gatk/bqsr.h"
#include "table/partition.h"

namespace genesis::core {

/** Configuration of the BQSR accelerator. */
struct BqsrAccelConfig {
    int numPipelines = 8;
    runtime::RuntimeConfig runtime;
    /**
     * Reference partition size. Smaller than the metadata accelerator's
     * (the reference SPM must share BRAM with the four covariate count
     * buffers; see DESIGN.md).
     */
    int64_t psize = 131'072;
    int64_t overlap = 151;
    gatk::BqsrConfig bqsr;
};

/** Result of an accelerated covariate-table construction. */
struct BqsrAccelResult {
    AccelRunInfo info;
    gatk::CovariateTable table;

    BqsrAccelResult() : table(gatk::BqsrConfig{}) {}
};

/** The accelerated BQSR covariate-table-construction stage. */
class BqsrAccelerator
{
  public:
    explicit BqsrAccelerator(
        const BqsrAccelConfig &config = BqsrAccelConfig());

    /** Build the covariate table over all reads. */
    BqsrAccelResult run(const std::vector<genome::AlignedRead> &reads,
                        const genome::ReferenceGenome &genome);

    /** @return the hardware census without running (for Table IV). */
    static pipeline::HardwareCensus census(int num_pipelines,
                                           int64_t psize = 131'072,
                                           int64_t overlap = 151);

  private:
    BqsrAccelConfig config_;
};

} // namespace genesis::core

#endif // GENESIS_CORE_BQSR_ACCEL_H

#include "core/bqsr_accel.h"

#include <algorithm>

#include "base/logging.h"
#include "modules/binidgen.h"
#include "modules/filter.h"
#include "modules/fork.h"
#include "modules/joiner.h"
#include "modules/memory_reader.h"
#include "modules/memory_writer.h"
#include "modules/read_to_bases.h"
#include "modules/spm_reader.h"
#include "modules/spm_updater.h"
#include "modules/stream_alu.h"

namespace genesis::core {

using modules::ColumnBuffer;
using pipeline::PipelineBuilder;
using sim::Flit;

namespace {

/** The four covariate-count output buffers of one BQSR pipeline. */
struct BqsrOutputs {
    ColumnBuffer *cycleTotals = nullptr;
    ColumnBuffer *contextTotals = nullptr;
    ColumnBuffer *cycleErrors = nullptr;
    ColumnBuffer *contextErrors = nullptr;
};

struct BqsrInputs {
    const ColumnBuffer *pos = nullptr;
    const ColumnBuffer *endpos = nullptr;
    const ColumnBuffer *cigar = nullptr;
    const ColumnBuffer *seq = nullptr;
    const ColumnBuffer *qual = nullptr;
    const ColumnBuffer *flags = nullptr;
    const ColumnBuffer *refSeq = nullptr;
    const ColumnBuffer *refSnp = nullptr;
    int64_t windowStart = 0;
    size_t spmWords = 1;
    gatk::BqsrConfig bqsr;
};

/** Wire one Figure-12 pipeline. */
BqsrOutputs
buildPipeline(PipelineBuilder &b, runtime::AcceleratorSession &s,
              const BqsrInputs &in)
{
    modules::BinIdGenConfig bin_cfg;
    bin_cfg.numCycleValues = in.bqsr.numCycleValues;
    bin_cfg.readLength = in.bqsr.readLength;
    bin_cfg.numContextTypes = in.bqsr.numContextTypes;
    const size_t cycle_bins = in.bqsr.cycleTableSize();
    const size_t context_bins = in.bqsr.contextTableSize();

    BqsrOutputs outs;
    outs.cycleTotals = s.configureOutput(b.scopedName("TOT1"), 4);
    outs.contextTotals = s.configureOutput(b.scopedName("TOT2"), 4);
    outs.cycleErrors = s.configureOutput(b.scopedName("ERR1"), 4);
    outs.contextErrors = s.configureOutput(b.scopedName("ERR2"), 4);

    // Queues.
    auto *pos_q = b.queue("pos");
    auto *pos_rtb_q = b.queue("pos_rtb");
    auto *pos_spm_q = b.queue("pos_spm");
    auto *endpos_q = b.queue("endpos");
    auto *cigar_q = b.queue("cigar");
    auto *seq_q = b.queue("seq");
    auto *qual_q = b.queue("qual");
    auto *flags_q = b.queue("flags");
    auto *refseq_q = b.queue("refseq");
    auto *refsnp_q = b.queue("refsnp");
    auto *packed_q = b.queue("packed");
    auto *bases_q = b.queue("bases");
    auto *binned_q = b.queue("binned");
    auto *ref_q = b.queue("ref");
    auto *joined_q = b.queue("joined");
    auto *notsnp_q = b.queue("notsnp");
    auto *tot1_q = b.queue("tot1");
    auto *tot2_q = b.queue("tot2");
    auto *to_err_q = b.queue("to_err");
    auto *err_q = b.queue("err");
    auto *err1_q = b.queue("err1");
    auto *err2_q = b.queue("err2");
    auto *dr_tot1_q = b.queue("dr_tot1");
    auto *dr_tot2_q = b.queue("dr_tot2");
    auto *dr_err1_q = b.queue("dr_err1");
    auto *dr_err2_q = b.queue("dr_err2");

    // Memory readers.
    modules::MemoryReaderConfig scalar_cfg;
    modules::MemoryReaderConfig array_cfg;
    array_cfg.emitBoundaries = true;
    b.add<modules::MemoryReader>("MemoryReader", "rd_pos", in.pos,
                                 b.port(), pos_q, scalar_cfg);
    b.add<modules::MemoryReader>("MemoryReader", "rd_endpos", in.endpos,
                                 b.port(), endpos_q, scalar_cfg);
    b.add<modules::MemoryReader>("MemoryReader", "rd_cigar", in.cigar,
                                 b.port(), cigar_q, array_cfg);
    b.add<modules::MemoryReader>("MemoryReader", "rd_seq", in.seq,
                                 b.port(), seq_q, array_cfg);
    b.add<modules::MemoryReader>("MemoryReader", "rd_qual", in.qual,
                                 b.port(), qual_q, array_cfg);
    b.add<modules::MemoryReader>("MemoryReader", "rd_flags", in.flags,
                                 b.port(), flags_q, scalar_cfg);
    b.add<modules::MemoryReader>("MemoryReader", "rd_refseq", in.refSeq,
                                 b.port(), refseq_q, scalar_cfg);
    b.add<modules::MemoryReader>("MemoryReader", "rd_refsnp", in.refSnp,
                                 b.port(), refsnp_q, scalar_cfg);

    b.add<modules::Fork>("Fork", "fork_pos", pos_q,
                         std::vector<sim::HardwareQueue *>{pos_rtb_q,
                                                           pos_spm_q});

    // Reference SPM holds (base | IS_SNP << 8) pairs; architecturally
    // 3 bits per position (2-bit base + SNP bit).
    auto *ref_spm = b.scratchpad("ref_spm", in.spmWords, 2, 3);
    modules::StreamAluConfig pack_cfg;
    pack_cfg.op = modules::AluOp::Pack;
    pack_cfg.fieldA = 0;
    pack_cfg.fieldB = 0;
    b.add<modules::StreamAlu>("StreamAlu", "pack", refseq_q, refsnp_q,
                              packed_q, pack_cfg);
    modules::SpmUpdaterConfig init_cfg;
    init_cfg.mode = modules::SpmUpdateMode::Sequential;
    init_cfg.valueField = 0;
    auto *ref_init = b.add<modules::SpmUpdater>(
        "SpmUpdater", "spm_init", ref_spm, packed_q, init_cfg);

    modules::SpmReaderConfig ref_rd_cfg;
    ref_rd_cfg.mode = modules::SpmReadMode::Interval;
    ref_rd_cfg.addrBase = in.windowStart;
    ref_rd_cfg.unpackPair = true;
    ref_rd_cfg.waitFor = ref_init;
    b.add<modules::SpmReader>("SpmReader", "spm_rd", ref_spm, pos_spm_q,
                              endpos_q, ref_q, ref_rd_cfg);

    b.add<modules::ReadToBases>("ReadToBases", "rtb", pos_rtb_q, cigar_q,
                                seq_q, qual_q, bases_q);
    b.add<modules::BinIdGen>("BinIDGen", "binid", bases_q, flags_q,
                             binned_q, bin_cfg);

    // Inner join [bp, qual, b1, b2] with [ref base, IS_SNP] on position.
    modules::JoinerConfig join_cfg;
    join_cfg.mode = modules::JoinMode::Inner;
    join_cfg.leftFields = 4;
    join_cfg.rightFields = 2;
    b.add<modules::Joiner>("Joiner", "join", binned_q, ref_q, joined_q,
                           join_cfg);

    // Known variant sites never count (expected mismatches).
    modules::FilterConfig snp_filter;
    snp_filter.lhs = modules::FilterOperand::field(5);
    snp_filter.op = modules::CompareOp::Eq;
    snp_filter.rhs = modules::FilterOperand::constant_(0);
    b.add<modules::Filter>("Filter", "not_snp", joined_q, notsnp_q,
                           snp_filter);

    b.add<modules::Fork>("Fork", "fork_total", notsnp_q,
                         std::vector<sim::HardwareQueue *>{
                             tot1_q, tot2_q, to_err_q});

    // Total-observation counters (read-modify-write increments). BRAM
    // macros are 18/36 bits wide natively, so the architectural counter
    // width is 24 bits; drained counts accumulate in 64-bit on the host.
    const size_t b1_field = 2, b2_field = 3;
    auto *tot1_spm = b.scratchpad("tot1_spm", cycle_bins, 4, 24);
    auto *tot2_spm = b.scratchpad("tot2_spm", context_bins, 4, 24);
    auto *err1_spm = b.scratchpad("err1_spm", cycle_bins, 4, 24);
    auto *err2_spm = b.scratchpad("err2_spm", context_bins, 4, 24);

    auto rmw = [](int addr_field) {
        modules::SpmUpdaterConfig cfg;
        cfg.mode = modules::SpmUpdateMode::ReadModifyWrite;
        cfg.addrField = addr_field;
        return cfg;
    };
    auto *upd_tot1 = b.add<modules::SpmUpdater>(
        "SpmUpdaterRMW", "upd_tot1", tot1_spm, tot1_q,
        rmw(static_cast<int>(b1_field)));
    auto *upd_tot2 = b.add<modules::SpmUpdater>(
        "SpmUpdaterRMW", "upd_tot2", tot2_spm, tot2_q,
        rmw(static_cast<int>(b2_field)));

    // Errors: cascade a mismatch filter, then two more counters.
    modules::FilterConfig err_filter;
    err_filter.lhs = modules::FilterOperand::field(0);
    err_filter.op = modules::CompareOp::Ne;
    err_filter.rhs = modules::FilterOperand::field(4);
    b.add<modules::Filter>("Filter", "err_filter", to_err_q, err_q,
                           err_filter);
    b.add<modules::Fork>("Fork", "fork_err", err_q,
                         std::vector<sim::HardwareQueue *>{err1_q,
                                                           err2_q});
    auto *upd_err1 = b.add<modules::SpmUpdater>(
        "SpmUpdaterRMW", "upd_err1", err1_spm, err1_q,
        rmw(static_cast<int>(b1_field)));
    auto *upd_err2 = b.add<modules::SpmUpdater>(
        "SpmUpdaterRMW", "upd_err2", err2_spm, err2_q,
        rmw(static_cast<int>(b2_field)));

    // Drain the four count buffers to memory once updates finish.
    modules::SpmReaderConfig drain_cfg;
    drain_cfg.mode = modules::SpmReadMode::Drain;
    auto drain = [&](const char *name, sim::Scratchpad *spm,
                     const sim::Module *wait, sim::HardwareQueue *q,
                     ColumnBuffer *out) {
        b.add<modules::SpmReader>("SpmReader",
                                  std::string("drain_") + name, spm,
                                  wait, q, drain_cfg);
        modules::MemoryWriterConfig wr;
        wr.fieldIndex = 0;
        wr.elemSizeBytes = 4;
        b.add<modules::MemoryWriter>("MemoryWriter",
                                     std::string("wr_") + name, out,
                                     b.port(), q, wr);
    };
    drain("tot1", tot1_spm, upd_tot1, dr_tot1_q, outs.cycleTotals);
    drain("tot2", tot2_spm, upd_tot2, dr_tot2_q, outs.contextTotals);
    drain("err1", err1_spm, upd_err1, dr_err1_q, outs.cycleErrors);
    drain("err2", err2_spm, upd_err2, dr_err2_q, outs.contextErrors);
    return outs;
}

} // namespace

BqsrAccelerator::BqsrAccelerator(const BqsrAccelConfig &config)
    : config_(config)
{
    if (config_.numPipelines < 1)
        fatal("need at least one pipeline");
    if (config_.psize < 1)
        fatal("partition size must be positive");
}

pipeline::HardwareCensus
BqsrAccelerator::census(int num_pipelines, int64_t psize, int64_t overlap)
{
    runtime::AcceleratorSession session{runtime::RuntimeConfig{}};
    ColumnBuffer dummy;
    BqsrInputs in;
    in.pos = in.endpos = in.cigar = in.seq = in.qual = in.flags = &dummy;
    in.refSeq = in.refSnp = &dummy;
    in.spmWords = static_cast<size_t>(psize + overlap);
    pipeline::HardwareCensus census;
    for (int p = 0; p < num_pipelines; ++p) {
        PipelineBuilder builder(session.sim(), p);
        buildPipeline(builder, session, in);
        census.merge(builder.census());
    }
    return census;
}

BqsrAccelResult
BqsrAccelerator::run(const std::vector<genome::AlignedRead> &reads,
                     const genome::ReferenceGenome &genome)
{
    BqsrAccelResult result;
    result.table = gatk::CovariateTable(config_.bqsr);

    table::Partitioner partitioner(config_.psize, config_.overlap);
    std::vector<table::ReadPartition> partitions;
    {
        // Pre-partitioning (by window, then read group) is software
        // preparation ahead of the stage, per Section IV-D.
        PrepTimer timer(result.info.prepSeconds);
        partitions = partitioner.partitionReadsByGroup(reads);
    }

    for (size_t base = 0; base < partitions.size();
         base += static_cast<size_t>(config_.numPipelines)) {
        runtime::AcceleratorSession session(config_.runtime);
        size_t batch = std::min<size_t>(
            static_cast<size_t>(config_.numPipelines),
            partitions.size() - base);

        struct PipelineRun {
            BqsrOutputs outs;
            uint16_t readGroup = 0;
        };
        std::vector<PipelineRun> runs(batch);
        {
            PrepTimer timer(result.info.prepSeconds);
            for (size_t p = 0; p < batch; ++p) {
                const auto &part = partitions[base + p];
                runs[p].readGroup = part.readGroup;
                ReadColumns cols =
                    ReadColumns::fromReads(reads, part.readIndices);
                int64_t overlap = config_.overlap;
                for (size_t idx : part.readIndices) {
                    overlap = std::max(overlap, reads[idx].endPos() -
                                       part.windowEnd);
                }
                RefColumns ref = RefColumns::fromGenome(
                    genome, part.chr, part.windowStart, part.windowEnd,
                    overlap);

                PipelineBuilder builder(session.sim(),
                                        static_cast<int>(p));
                BqsrInputs in;
                in.bqsr = config_.bqsr;
                in.pos = session.configureMem(
                    builder.scopedName("READS.POS"), std::move(cols.pos),
                    ReadColumns::scalarLens(cols.numReads), 4);
                in.endpos = session.configureMem(
                    builder.scopedName("READS.ENDPOS"),
                    std::move(cols.endpos),
                    ReadColumns::scalarLens(cols.numReads), 4);
                in.cigar = session.configureMem(
                    builder.scopedName("READS.CIGAR"),
                    std::move(cols.cigar), std::move(cols.cigarLens), 2);
                in.seq = session.configureMem(
                    builder.scopedName("READS.SEQ"), std::move(cols.seq),
                    std::move(cols.seqLens), 1);
                in.qual = session.configureMem(
                    builder.scopedName("READS.QUAL"),
                    std::move(cols.qual), std::move(cols.qualLens), 1);
                in.flags = session.configureMem(
                    builder.scopedName("READS.FLAGS"),
                    std::move(cols.flags),
                    ReadColumns::scalarLens(cols.numReads), 2);
                in.refSeq = session.configureMem(
                    builder.scopedName("REFS.SEQ"), std::move(ref.seq),
                    ReadColumns::scalarLens(
                        static_cast<size_t>(ref.seq.size())), 1);
                in.refSnp = session.configureMem(
                    builder.scopedName("REFS.IS_SNP"),
                    std::move(ref.isSnp),
                    ReadColumns::scalarLens(
                        static_cast<size_t>(ref.isSnp.size())), 1);
                in.windowStart = part.windowStart;
                in.spmWords =
                    static_cast<size_t>(config_.psize + overlap);
                runs[p].outs = buildPipeline(builder, session, in);
                if (result.info.batches == 0)
                    result.info.census.merge(builder.census());
            }
        }

        session.start();
        session.wait();
        result.info.totalCycles += session.sim().cycle();
        ++result.info.batches;
        result.info.stats.merge(session.sim().collectStats());

        for (auto &run : runs) {
            const ColumnBuffer *tot1 =
                session.flush(run.outs.cycleTotals->name);
            const ColumnBuffer *tot2 =
                session.flush(run.outs.contextTotals->name);
            const ColumnBuffer *err1 =
                session.flush(run.outs.cycleErrors->name);
            const ColumnBuffer *err2 =
                session.flush(run.outs.contextErrors->name);
            runtime::HostTimer timer(session);
            size_t rg = run.readGroup;
            GENESIS_ASSERT(rg < result.table.cycleTotals.size(),
                           "read group %zu out of range", rg);
            auto accumulate = [](std::vector<int64_t> &dst,
                                 const ColumnBuffer *src) {
                for (size_t i = 0;
                     i < src->elements.size() && i < dst.size(); ++i) {
                    dst[i] += src->elements[i];
                }
            };
            accumulate(result.table.cycleTotals[rg], tot1);
            accumulate(result.table.contextTotals[rg], tot2);
            accumulate(result.table.cycleErrors[rg], err1);
            accumulate(result.table.contextErrors[rg], err2);
        }
        result.info.timing += session.timing();
    }
    return result;
}

} // namespace genesis::core

#include "core/metadata_accel.h"

#include "base/logging.h"
#include "modules/filter.h"
#include "modules/fork.h"
#include "modules/joiner.h"
#include "modules/mdgen.h"
#include "modules/memory_reader.h"
#include "modules/memory_writer.h"
#include "modules/read_to_bases.h"
#include "modules/reducer.h"
#include "modules/spm_reader.h"
#include "modules/spm_updater.h"

namespace genesis::core {

using modules::ColumnBuffer;
using pipeline::PipelineBuilder;
using sim::Flit;

namespace {

/** The three output buffers of one metadata pipeline. */
struct MetadataOutputs {
    ColumnBuffer *nm = nullptr;
    ColumnBuffer *md = nullptr;
    ColumnBuffer *uq = nullptr;
};

struct MetadataInputs {
    const ColumnBuffer *pos = nullptr;
    const ColumnBuffer *endpos = nullptr;
    const ColumnBuffer *cigar = nullptr;
    const ColumnBuffer *seq = nullptr;
    const ColumnBuffer *qual = nullptr;
    const ColumnBuffer *refSeq = nullptr;
    int64_t windowStart = 0;
    size_t spmWords = 1;
};

/** Wire one Figure-11 pipeline. */
MetadataOutputs
buildPipeline(PipelineBuilder &b, runtime::AcceleratorSession &s,
              const MetadataInputs &in)
{
    MetadataOutputs outs;
    outs.nm = s.configureOutput(b.scopedName("NM"), 4);
    outs.md = s.configureOutput(b.scopedName("MD"), 1);
    outs.uq = s.configureOutput(b.scopedName("UQ"), 4);

    // Queues.
    auto *pos_q = b.queue("pos");
    auto *pos_rtb_q = b.queue("pos_rtb");
    auto *pos_spm_q = b.queue("pos_spm");
    auto *endpos_q = b.queue("endpos");
    auto *cigar_q = b.queue("cigar");
    auto *seq_q = b.queue("seq");
    auto *qual_q = b.queue("qual");
    auto *refseq_q = b.queue("refseq");
    auto *bases_q = b.queue("bases");
    auto *ref_q = b.queue("ref");
    auto *joined_q = b.queue("joined");
    auto *join_nm_q = b.queue("join_nm");
    auto *join_uq_q = b.queue("join_uq");
    auto *join_md_q = b.queue("join_md");
    auto *nm_mask_q = b.queue("nm_mask");
    auto *uq_noins_q = b.queue("uq_noins");
    auto *uq_mask_q = b.queue("uq_mask");
    auto *nm_q = b.queue("nm");
    auto *uq_q = b.queue("uq");
    auto *md_q = b.queue("md");

    // Memory readers (Figure 11 shows six).
    modules::MemoryReaderConfig scalar_cfg; // one flit per row
    modules::MemoryReaderConfig array_cfg;
    array_cfg.emitBoundaries = true;
    b.add<modules::MemoryReader>("MemoryReader", "rd_pos", in.pos,
                                 b.port(), pos_q, scalar_cfg);
    b.add<modules::MemoryReader>("MemoryReader", "rd_endpos", in.endpos,
                                 b.port(), endpos_q, scalar_cfg);
    b.add<modules::MemoryReader>("MemoryReader", "rd_cigar", in.cigar,
                                 b.port(), cigar_q, array_cfg);
    b.add<modules::MemoryReader>("MemoryReader", "rd_seq", in.seq,
                                 b.port(), seq_q, array_cfg);
    b.add<modules::MemoryReader>("MemoryReader", "rd_qual", in.qual,
                                 b.port(), qual_q, array_cfg);
    b.add<modules::MemoryReader>("MemoryReader", "rd_refseq", in.refSeq,
                                 b.port(), refseq_q, scalar_cfg);

    // POS feeds both ReadToBases and the SPM reader.
    b.add<modules::Fork>("Fork", "fork_pos", pos_q,
                         std::vector<sim::HardwareQueue *>{pos_rtb_q,
                                                           pos_spm_q});

    // Reference SPM: initialised sequentially from REFS.SEQ; 2-bit base
    // storage architecturally.
    auto *spm = b.scratchpad("ref_spm", in.spmWords, 1, 2);
    modules::SpmUpdaterConfig upd_cfg;
    upd_cfg.mode = modules::SpmUpdateMode::Sequential;
    auto *updater = b.add<modules::SpmUpdater>(
        "SpmUpdater", "spm_init", spm, refseq_q, upd_cfg);

    modules::SpmReaderConfig rd_cfg;
    rd_cfg.mode = modules::SpmReadMode::Interval;
    rd_cfg.addrBase = in.windowStart;
    rd_cfg.waitFor = updater;
    b.add<modules::SpmReader>("SpmReader", "spm_rd", spm, pos_spm_q,
                              endpos_q, ref_q, rd_cfg);

    b.add<modules::ReadToBases>("ReadToBases", "rtb", pos_rtb_q, cigar_q,
                                seq_q, qual_q, bases_q);

    // Left join bases (bp, qual, cycle) with reference (refbase): keeps
    // insertions (null reference) so NM/MD see them.
    modules::JoinerConfig join_cfg;
    join_cfg.mode = modules::JoinMode::Left;
    join_cfg.leftFields = 3;
    join_cfg.rightFields = 1;
    b.add<modules::Joiner>("Joiner", "join", bases_q, ref_q, joined_q,
                           join_cfg);

    b.add<modules::Fork>("Fork", "fork_join", joined_q,
                         std::vector<sim::HardwareQueue *>{
                             join_nm_q, join_uq_q, join_md_q});

    // NM: per-read count of bases differing from the reference
    // (mismatches, insertions and deletions all compare unequal).
    modules::FilterConfig nm_filter;
    nm_filter.lhs = modules::FilterOperand::field(0);
    nm_filter.op = modules::CompareOp::Ne;
    nm_filter.rhs = modules::FilterOperand::field(3);
    nm_filter.maskMode = true;
    b.add<modules::Filter>("Filter", "nm_filter", join_nm_q, nm_mask_q,
                           nm_filter);
    modules::ReducerConfig nm_red;
    nm_red.op = modules::ReduceOp::Count;
    nm_red.granularity = modules::ReduceGranularity::PerItem;
    nm_red.maskField = 4;
    b.add<modules::Reducer>("Reducer", "nm_count", nm_mask_q, nm_q,
                            nm_red);
    modules::MemoryWriterConfig wr32;
    wr32.fieldIndex = 0;
    wr32.elemSizeBytes = 4;
    b.add<modules::MemoryWriter>("MemoryWriter", "wr_nm", outs.nm,
                                 b.port(), nm_q, wr32);

    // UQ: per-read sum of quality scores at mismatching aligned bases —
    // insertions are excluded first, then the mismatch mask gates a sum.
    modules::FilterConfig uq_noins;
    uq_noins.lhs = modules::FilterOperand::key();
    uq_noins.op = modules::CompareOp::Ne;
    uq_noins.rhs = modules::FilterOperand::constant_(Flit::kIns);
    b.add<modules::Filter>("Filter", "uq_noins", join_uq_q, uq_noins_q,
                           uq_noins);
    modules::FilterConfig uq_filter;
    uq_filter.lhs = modules::FilterOperand::field(0);
    uq_filter.op = modules::CompareOp::Ne;
    uq_filter.rhs = modules::FilterOperand::field(3);
    uq_filter.maskMode = true;
    b.add<modules::Filter>("Filter", "uq_filter", uq_noins_q, uq_mask_q,
                           uq_filter);
    modules::ReducerConfig uq_red;
    uq_red.op = modules::ReduceOp::Sum;
    uq_red.granularity = modules::ReduceGranularity::PerItem;
    uq_red.valueField = 1;
    uq_red.maskField = 4;
    b.add<modules::Reducer>("Reducer", "uq_sum", uq_mask_q, uq_q,
                            uq_red);
    b.add<modules::MemoryWriter>("MemoryWriter", "wr_uq", outs.uq,
                                 b.port(), uq_q, wr32);

    // MD: the custom MDGen module emits the tag characters.
    b.add<modules::MdGen>("MDGen", "mdgen", join_md_q, md_q);
    modules::MemoryWriterConfig wr_md;
    wr_md.fieldIndex = 0;
    wr_md.elemSizeBytes = 1;
    wr_md.rowMode = true;
    b.add<modules::MemoryWriter>("MemoryWriter", "wr_md", outs.md,
                                 b.port(), md_q, wr_md);
    return outs;
}

} // namespace

MetadataAccelerator::MetadataAccelerator(const MetadataAccelConfig &config)
    : config_(config)
{
    if (config_.numPipelines < 1)
        fatal("need at least one pipeline");
    if (config_.psize < 1)
        fatal("partition size must be positive");
}

pipeline::HardwareCensus
MetadataAccelerator::census(int num_pipelines, int64_t psize,
                            int64_t overlap)
{
    runtime::AcceleratorSession session{runtime::RuntimeConfig{}};
    ColumnBuffer dummy;
    MetadataInputs in;
    in.pos = in.endpos = in.cigar = in.seq = in.qual = in.refSeq = &dummy;
    in.spmWords = static_cast<size_t>(psize + overlap);
    pipeline::HardwareCensus census;
    for (int p = 0; p < num_pipelines; ++p) {
        PipelineBuilder builder(session.sim(), p);
        buildPipeline(builder, session, in);
        census.merge(builder.census());
    }
    return census;
}

MetadataAccelResult
MetadataAccelerator::run(std::vector<genome::AlignedRead> &reads,
                         const genome::ReferenceGenome &genome)
{
    MetadataAccelResult result;
    table::Partitioner partitioner(config_.psize, config_.overlap);
    std::vector<table::ReadPartition> partitions;
    {
        // Pre-partitioning happens in software ahead of the stage
        // (Section III-B); it is accounted as preparation.
        PrepTimer timer(result.info.prepSeconds);
        partitions = partitioner.partitionReads(reads);
    }

    // Process partitions in batches of numPipelines; each batch is one
    // accelerator invocation with all pipelines running concurrently.
    for (size_t base = 0; base < partitions.size();
         base += static_cast<size_t>(config_.numPipelines)) {
        runtime::AcceleratorSession session(config_.runtime);
        size_t batch = std::min<size_t>(
            static_cast<size_t>(config_.numPipelines),
            partitions.size() - base);

        struct PipelineRun {
            MetadataOutputs outs;
            const table::ReadPartition *part = nullptr;
        };
        std::vector<PipelineRun> runs(batch);
        {
            PrepTimer timer(result.info.prepSeconds);
            for (size_t p = 0; p < batch; ++p) {
                const auto &part = partitions[base + p];
                runs[p].part = &part;
                ReadColumns cols =
                    ReadColumns::fromReads(reads, part.readIndices);
                // Deletions can stretch a read's reference span past the
                // nominal LEN overlap; size the window to cover the
                // longest read in this partition.
                int64_t overlap = config_.overlap;
                for (size_t idx : part.readIndices) {
                    overlap = std::max(overlap, reads[idx].endPos() -
                                       part.windowEnd);
                }
                RefColumns ref = RefColumns::fromGenome(
                    genome, part.chr, part.windowStart, part.windowEnd,
                    overlap);

                PipelineBuilder builder(session.sim(),
                                        static_cast<int>(p));
                MetadataInputs in;
                in.pos = session.configureMem(
                    builder.scopedName("READS.POS"), std::move(cols.pos),
                    ReadColumns::scalarLens(cols.numReads), 4);
                in.endpos = session.configureMem(
                    builder.scopedName("READS.ENDPOS"),
                    std::move(cols.endpos),
                    ReadColumns::scalarLens(cols.numReads), 4);
                in.cigar = session.configureMem(
                    builder.scopedName("READS.CIGAR"),
                    std::move(cols.cigar), std::move(cols.cigarLens), 2);
                in.seq = session.configureMem(
                    builder.scopedName("READS.SEQ"), std::move(cols.seq),
                    std::move(cols.seqLens), 1);
                in.qual = session.configureMem(
                    builder.scopedName("READS.QUAL"),
                    std::move(cols.qual), std::move(cols.qualLens), 1);
                in.refSeq = session.configureMem(
                    builder.scopedName("REFS.SEQ"), std::move(ref.seq),
                    ReadColumns::scalarLens(static_cast<size_t>(
                        ref.seq.size())), 1);
                in.windowStart = part.windowStart;
                in.spmWords =
                    static_cast<size_t>(config_.psize + overlap);
                runs[p].outs = buildPipeline(builder, session, in);
                if (result.info.batches == 0)
                    result.info.census.merge(builder.census());
            }
        }

        session.start();
        session.wait();
        result.info.totalCycles += session.sim().cycle();
        ++result.info.batches;
        result.info.stats.merge(session.sim().collectStats());

        // Flush the three tag buffers per pipeline and attach the tags.
        for (auto &run : runs) {
            const ColumnBuffer *nm = session.flush(run.outs.nm->name);
            const ColumnBuffer *uq = session.flush(run.outs.uq->name);
            const ColumnBuffer *md = session.flush(run.outs.md->name);
            runtime::HostTimer timer(session);
            const auto &indices = run.part->readIndices;
            GENESIS_ASSERT(nm->elements.size() == indices.size(),
                           "NM count %zu != reads %zu in partition",
                           nm->elements.size(), indices.size());
            GENESIS_ASSERT(md->numRows() == indices.size(),
                           "MD rows %zu != reads %zu in partition",
                           md->numRows(), indices.size());
            size_t md_cursor = 0;
            for (size_t i = 0; i < indices.size(); ++i) {
                auto &read = reads[indices[i]];
                read.nmTag = static_cast<int32_t>(nm->elements[i]);
                read.uqTag = static_cast<int32_t>(uq->elements[i]);
                std::string tag;
                for (uint32_t c = 0; c < md->rowLengths[i]; ++c) {
                    tag.push_back(static_cast<char>(
                        md->elements[md_cursor++]));
                }
                read.mdTag = std::move(tag);
                ++result.readsTagged;
            }
        }
        result.info.timing += session.timing();
    }
    return result;
}

} // namespace genesis::core

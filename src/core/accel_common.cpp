#include "core/accel_common.h"

#include <numeric>

#include "base/logging.h"

namespace genesis::core {

std::vector<uint32_t>
ReadColumns::scalarLens(size_t n)
{
    return std::vector<uint32_t>(n, 1);
}

ReadColumns
ReadColumns::fromReads(const std::vector<genome::AlignedRead> &reads,
                       const std::vector<size_t> &indices)
{
    ReadColumns cols;
    cols.numReads = indices.size();
    cols.pos.reserve(indices.size());
    cols.endpos.reserve(indices.size());
    cols.flags.reserve(indices.size());
    for (size_t idx : indices) {
        GENESIS_ASSERT(idx < reads.size(), "read index %zu out of range",
                       idx);
        const auto &read = reads[idx];
        cols.pos.push_back(read.pos);
        cols.endpos.push_back(read.endPos());
        cols.flags.push_back(read.flags);
        auto packed = read.cigar.packAll();
        for (uint16_t raw : packed)
            cols.cigar.push_back(raw);
        cols.cigarLens.push_back(static_cast<uint32_t>(packed.size()));
        for (uint8_t b : read.seq)
            cols.seq.push_back(b);
        cols.seqLens.push_back(static_cast<uint32_t>(read.seq.size()));
        for (uint8_t q : read.qual)
            cols.qual.push_back(q);
        cols.qualLens.push_back(static_cast<uint32_t>(read.qual.size()));
    }
    return cols;
}

ReadColumns
ReadColumns::fromRange(const std::vector<genome::AlignedRead> &reads,
                       size_t first, size_t last)
{
    GENESIS_ASSERT(first <= last && last <= reads.size(),
                   "bad read range [%zu, %zu)", first, last);
    std::vector<size_t> indices(last - first);
    std::iota(indices.begin(), indices.end(), first);
    return fromReads(reads, indices);
}

RefColumns
RefColumns::fromGenome(const genome::ReferenceGenome &genome, uint8_t chr,
                       int64_t window_start, int64_t window_end,
                       int64_t overlap)
{
    const genome::Chromosome &chrom = genome.chromosome(chr);
    RefColumns cols;
    cols.windowStart = window_start;
    int64_t end = std::min<int64_t>(window_end + overlap, chrom.length());
    cols.seq.reserve(static_cast<size_t>(end - window_start));
    cols.isSnp.reserve(static_cast<size_t>(end - window_start));
    for (int64_t p = window_start; p < end; ++p) {
        cols.seq.push_back(chrom.seq[static_cast<size_t>(p)]);
        cols.isSnp.push_back(chrom.isSnp[static_cast<size_t>(p)] ? 1 : 0);
    }
    return cols;
}

} // namespace genesis::core

/**
 * @file
 * Table and column statistics for cost-based query optimization.
 *
 * Stats are collected when a table is registered in the catalog (load or
 * CREATE TABLE AS time) and feed the SQL cost model (src/sql/cost_model):
 * cardinality estimates decide join order, hash-build sides and the
 * predicate order ahead of the hardware SPM stage — the same
 * discard-work-before-the-expensive-stage idea the paper's pipelines
 * apply in hardware.
 */

#ifndef GENESIS_TABLE_STATS_H
#define GENESIS_TABLE_STATS_H

#include <cstdint>
#include <map>
#include <string>

#include "table/table.h"

namespace genesis::table {

/** Statistics of one column, valid for scalar-typed columns. */
struct ColumnStats {
    /** Total rows the column was collected over. */
    int64_t rowCount = 0;
    /** Rows whose cell is NULL. */
    int64_t nullCount = 0;
    /** Min/max over non-null scalar cells; valid when hasRange. */
    bool hasRange = false;
    int64_t minValue = 0;
    int64_t maxValue = 0;
    /** Distinct non-null values; valid when hasDistinct. */
    bool hasDistinct = false;
    int64_t distinct = 0;
};

/** Statistics of one table: row count plus per-column stats. */
struct TableStats {
    int64_t rowCount = 0;
    std::map<std::string, ColumnStats> columns;

    /** @return stats of a column by name, or nullptr. */
    const ColumnStats *column(const std::string &name) const;
};

/**
 * Collect stats over a table with one full scan. Scalar integer columns
 * get min/max and an exact distinct count (capped at kDistinctCap
 * tracked values, above which the count saturates); string columns get
 * distinct counts; array columns only null/row counts.
 */
TableStats collectTableStats(const Table &table);

/** Distinct-tracking cap: above this many values the count saturates. */
inline constexpr size_t kDistinctCap = 1u << 16;

} // namespace genesis::table

#endif // GENESIS_TABLE_STATS_H

#include "table/schema.h"

#include <sstream>

#include "base/logging.h"

namespace genesis::table {

Schema::Schema(std::initializer_list<FieldDef> fields)
{
    for (const auto &f : fields)
        addField(f.name, f.type);
}

Schema::Schema(std::vector<FieldDef> fields)
{
    for (const auto &f : fields)
        addField(f.name, f.type);
}

void
Schema::addField(const std::string &name, DataType type)
{
    if (has(name))
        fatal("duplicate field '%s' in schema", name.c_str());
    fields_.push_back({name, type});
}

int
Schema::indexOf(const std::string &name) const
{
    for (size_t i = 0; i < fields_.size(); ++i) {
        if (fields_[i].name == name)
            return static_cast<int>(i);
    }
    return -1;
}

size_t
Schema::require(const std::string &name) const
{
    int idx = indexOf(name);
    if (idx < 0)
        fatal("no field named '%s' in schema %s", name.c_str(),
              str().c_str());
    return static_cast<size_t>(idx);
}

std::string
Schema::str() const
{
    std::ostringstream os;
    os << "(";
    for (size_t i = 0; i < fields_.size(); ++i) {
        if (i)
            os << ", ";
        os << fields_[i].name << " " << dataTypeName(fields_[i].type);
    }
    os << ")";
    return os.str();
}

} // namespace genesis::table

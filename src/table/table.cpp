#include "table/table.h"

#include <algorithm>
#include <sstream>

#include "base/logging.h"

namespace genesis::table {

Table::Table(std::string name, Schema schema)
    : name_(std::move(name)), schema_(std::move(schema))
{
    columns_.reserve(schema_.size());
    for (const auto &f : schema_.fields())
        columns_.emplace_back(f.name, f.type);
}

void
Table::appendRow(const std::vector<Value> &cells)
{
    if (cells.size() != columns_.size()) {
        fatal("row width %zu does not match table '%s' schema width %zu",
              cells.size(), name_.c_str(), columns_.size());
    }
    for (size_t i = 0; i < cells.size(); ++i)
        columns_[i].append(cells[i]);
    ++numRows_;
}

Value
Table::at(size_t row, size_t col) const
{
    return columns_.at(col).value(row);
}

Value
Table::at(size_t row, const std::string &col_name) const
{
    return column(col_name).value(row);
}

Column &
Table::column(size_t col)
{
    return columns_.at(col);
}

const Column &
Table::column(size_t col) const
{
    return columns_.at(col);
}

const Column &
Table::column(const std::string &name) const
{
    return columns_[schema_.require(name)];
}

Column &
Table::column(const std::string &name)
{
    return columns_[schema_.require(name)];
}

Table
Table::emptyLike(const std::string &new_name) const
{
    return Table(new_name, schema_);
}

bool
Table::contentEquals(const Table &other) const
{
    if (!(schema_ == other.schema_) || numRows_ != other.numRows_)
        return false;
    for (size_t c = 0; c < columns_.size(); ++c) {
        for (size_t r = 0; r < numRows_; ++r) {
            if (!(at(r, c) == other.at(r, c)))
                return false;
        }
    }
    return true;
}

std::string
Table::str(size_t max_rows) const
{
    std::ostringstream os;
    os << name_ << " " << schema_.str() << " [" << numRows_ << " rows]\n";
    size_t shown = std::min(max_rows, numRows_);
    for (size_t r = 0; r < shown; ++r) {
        os << "  ";
        for (size_t c = 0; c < columns_.size(); ++c) {
            if (c)
                os << " | ";
            os << columns_[c].value(r).str();
        }
        os << "\n";
    }
    if (shown < numRows_)
        os << "  ... (" << (numRows_ - shown) << " more)\n";
    return os.str();
}

} // namespace genesis::table

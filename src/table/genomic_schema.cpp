#include "table/genomic_schema.h"

#include "base/logging.h"
#include "table/partition.h"

namespace genesis::table {

Schema
readsSchema()
{
    return Schema{
        {"CHR", DataType::UInt8},
        {"POS", DataType::UInt32},
        {"ENDPOS", DataType::UInt32},
        {"CIGAR", DataType::Array16},
        {"SEQ", DataType::Array8},
        {"QUAL", DataType::Array8},
        {"RG", DataType::UInt16},
        {"FLAGS", DataType::UInt16},
        {"ROWID", DataType::Int64},
    };
}

Schema
refSchema()
{
    return Schema{
        {"CHR", DataType::UInt8},
        {"REFPOS", DataType::UInt32},
        {"SEQ", DataType::Array8},
        {"IS_SNP", DataType::BitArray},
        {"PID", DataType::Int64},
    };
}

namespace {

void
appendRead(Table &t, const genome::AlignedRead &read, size_t rowid)
{
    Blob cigar, seq, qual;
    for (uint16_t raw : read.cigar.packAll())
        cigar.push_back(raw);
    seq.assign(read.seq.begin(), read.seq.end());
    qual.assign(read.qual.begin(), read.qual.end());
    t.appendRow({
        Value(static_cast<int64_t>(read.chr)),
        Value(read.pos),
        Value(read.endPos()),
        Value(std::move(cigar)),
        Value(std::move(seq)),
        Value(std::move(qual)),
        Value(static_cast<int64_t>(read.readGroup)),
        Value(static_cast<int64_t>(read.flags)),
        Value(static_cast<int64_t>(rowid)),
    });
}

} // namespace

Table
buildReadsTable(const std::vector<genome::AlignedRead> &reads,
                const std::string &name)
{
    Table t(name, readsSchema());
    for (size_t i = 0; i < reads.size(); ++i)
        appendRead(t, reads[i], i);
    return t;
}

Table
buildReadsTable(const std::vector<genome::AlignedRead> &reads,
                const std::vector<size_t> &row_indices,
                const std::string &name)
{
    Table t(name, readsSchema());
    for (size_t idx : row_indices) {
        GENESIS_ASSERT(idx < reads.size(), "read index %zu out of range",
                       idx);
        appendRead(t, reads[idx], idx);
    }
    return t;
}

Table
buildRefTable(const genome::ReferenceGenome &genome, int64_t psize,
              int64_t overlap, const std::string &name)
{
    if (psize < 1)
        fatal("reference partition size must be positive");
    Table t(name, refSchema());
    Partitioner partitioner(psize, overlap);
    for (const auto &chrom : genome.chromosomes()) {
        int64_t num_windows = (chrom.length() + psize - 1) / psize;
        for (int64_t w = 0; w < num_windows; ++w) {
            int64_t start = w * psize;
            int64_t end = std::min<int64_t>(start + psize + overlap,
                                            chrom.length());
            Blob seq, snp;
            seq.reserve(static_cast<size_t>(end - start));
            snp.reserve(static_cast<size_t>(end - start));
            for (int64_t p = start; p < end; ++p) {
                seq.push_back(chrom.seq[static_cast<size_t>(p)]);
                snp.push_back(chrom.isSnp[static_cast<size_t>(p)] ? 1 : 0);
            }
            t.appendRow({
                Value(static_cast<int64_t>(chrom.id)),
                Value(start),
                Value(std::move(seq)),
                Value(std::move(snp)),
                Value(partitioner.pid(chrom.id, start)),
            });
        }
    }
    return t;
}

} // namespace genesis::table

/**
 * @file
 * Position-based partitioning of reads and reference (Section III-B).
 *
 * The read table is partitioned first by chromosome and then by POS so
 * that the nth partition of a chromosome holds reads whose positions fall
 * in [n*PSIZE, (n+1)*PSIZE). The reference table is partitioned so the nth
 * partition covers [n*PSIZE, (n+1)*PSIZE + overlap). Both sides share a
 * partition id (PID) so a read finds its reference fragment by PID.
 */

#ifndef GENESIS_TABLE_PARTITION_H
#define GENESIS_TABLE_PARTITION_H

#include <cstdint>
#include <vector>

#include "genome/read.h"

namespace genesis::table {

/** One read partition: a (chromosome, window) bucket of read indices. */
struct ReadPartition {
    int64_t pid = 0;          ///< unique partition id
    uint8_t chr = 0;          ///< chromosome id
    int64_t windowStart = 0;  ///< inclusive start position of the window
    int64_t windowEnd = 0;    ///< exclusive end position of the window
    uint16_t readGroup = 0;   ///< only set for by-read-group partitioning
    /** Indices into the caller's read vector, position-sorted. */
    std::vector<size_t> readIndices;
};

/** Computes partition ids and groups reads into partitions. */
class Partitioner
{
  public:
    /**
     * @param psize window size in base pairs (paper: 1 M)
     * @param overlap reference overlap past the window end (paper: LEN)
     */
    explicit Partitioner(int64_t psize, int64_t overlap = 151);

    int64_t psize() const { return psize_; }
    int64_t overlap() const { return overlap_; }

    /** @return PID for (chromosome, any position inside the window). */
    int64_t pid(uint8_t chr, int64_t pos) const;

    /** @return window index (0-based) containing the given position. */
    int64_t windowIndex(int64_t pos) const;

    /**
     * Group reads into per-window partitions (by the read's POS).
     * Partitions come back ordered by (chr, window); empty windows are
     * not represented.
     */
    std::vector<ReadPartition>
    partitionReads(const std::vector<genome::AlignedRead> &reads) const;

    /**
     * Group reads into per-(window, read-group) partitions — the BQSR
     * layout (Section IV-D partitions by POS and again by read group).
     */
    std::vector<ReadPartition>
    partitionReadsByGroup(
        const std::vector<genome::AlignedRead> &reads) const;

  private:
    int64_t psize_;
    int64_t overlap_;
};

} // namespace genesis::table

#endif // GENESIS_TABLE_PARTITION_H

#include "table/value.h"

#include <sstream>

#include "base/logging.h"

namespace genesis::table {

int64_t
Value::asInt() const
{
    if (const auto *v = std::get_if<int64_t>(&data_))
        return *v;
    fatal("Value is not an integer (got %s)", str().c_str());
}

const std::string &
Value::asString() const
{
    if (const auto *v = std::get_if<std::string>(&data_))
        return *v;
    fatal("Value is not a string (got %s)", str().c_str());
}

const Blob &
Value::asBlob() const
{
    if (const auto *v = std::get_if<Blob>(&data_))
        return *v;
    fatal("Value is not a blob (got %s)", str().c_str());
}

bool
Value::truthy() const
{
    if (isNull())
        return false;
    if (isInt())
        return asInt() != 0;
    if (isString())
        return !asString().empty();
    return !asBlob().empty();
}

std::string
Value::str() const
{
    if (isNull())
        return "NULL";
    if (isInt())
        return std::to_string(asInt());
    if (isString())
        return "'" + asString() + "'";
    std::ostringstream os;
    os << "[";
    const Blob &b = asBlob();
    for (size_t i = 0; i < b.size(); ++i) {
        if (i)
            os << ",";
        if (i >= 16) {
            os << "... (" << b.size() << ")";
            break;
        }
        os << b[i];
    }
    os << "]";
    return os.str();
}

bool
Value::operator<(const Value &other) const
{
    auto rank = [](const Value &v) {
        if (v.isNull())
            return 0;
        if (v.isInt())
            return 1;
        if (v.isString())
            return 2;
        return 3;
    };
    int ra = rank(*this), rb = rank(other);
    if (ra != rb)
        return ra < rb;
    switch (ra) {
      case 0: return false;
      case 1: return asInt() < other.asInt();
      case 2: return asString() < other.asString();
      default: return asBlob() < other.asBlob();
    }
}

} // namespace genesis::table

#include "table/column.h"

#include "base/logging.h"

namespace genesis::table {

bool
isArrayType(DataType t)
{
    return t == DataType::Array8 || t == DataType::Array16 ||
        t == DataType::BitArray;
}

size_t
elementSize(DataType t)
{
    switch (t) {
      case DataType::UInt8:
      case DataType::Bool:
      case DataType::Array8:
      case DataType::BitArray:
        return 1;
      case DataType::UInt16:
      case DataType::Array16:
        return 2;
      case DataType::UInt32:
        return 4;
      case DataType::Int64:
        return 8;
      case DataType::String:
        fatal("string columns cannot be streamed to the device");
    }
    panic("invalid DataType %d", static_cast<int>(t));
}

const char *
dataTypeName(DataType t)
{
    switch (t) {
      case DataType::UInt8: return "uint8_t";
      case DataType::UInt16: return "uint16_t";
      case DataType::UInt32: return "uint32_t";
      case DataType::Int64: return "int64_t";
      case DataType::Bool: return "bool";
      case DataType::Array8: return "uint8_t[]";
      case DataType::Array16: return "uint16_t[]";
      case DataType::BitArray: return "bool[]";
      case DataType::String: return "string";
    }
    return "?";
}

Column::Column(std::string name, DataType type)
    : name_(std::move(name)), type_(type)
{
    if (isArrayType(type_))
        offsets_.push_back(0);
}

void
Column::append(const Value &v)
{
    if (v.isNull()) {
        // Record an explicit null (arrays degrade to an empty row).
        if (isArrayType(type_)) {
            appendArray({});
            return;
        }
        if (nulls_.empty())
            nulls_.assign(numRows_, false);
        if (type_ == DataType::String)
            strings_.emplace_back();
        else
            scalars_.push_back(0);
        ++numRows_;
        nulls_.push_back(true);
        return;
    }
    if (type_ == DataType::String) {
        strings_.push_back(v.asString());
        ++numRows_;
        if (!nulls_.empty())
            nulls_.push_back(false);
        return;
    }
    if (isArrayType(type_)) {
        appendArray(v.asBlob());
        return;
    }
    appendScalar(v.asInt());
}

void
Column::appendScalar(int64_t v)
{
    GENESIS_ASSERT(!isArrayType(type_) && type_ != DataType::String,
                   "appendScalar on %s column '%s'", dataTypeName(type_),
                   name_.c_str());
    scalars_.push_back(v);
    ++numRows_;
    if (!nulls_.empty())
        nulls_.push_back(false);
}

void
Column::appendArray(const Blob &elems)
{
    GENESIS_ASSERT(isArrayType(type_), "appendArray on %s column '%s'",
                   dataTypeName(type_), name_.c_str());
    scalars_.insert(scalars_.end(), elems.begin(), elems.end());
    offsets_.push_back(scalars_.size());
    ++numRows_;
    if (!nulls_.empty())
        nulls_.push_back(false);
}

void
Column::checkRow(size_t row) const
{
    if (row >= numRows_)
        panic("row %zu out of range for column '%s' with %zu rows", row,
              name_.c_str(), numRows_);
}

Value
Column::value(size_t row) const
{
    checkRow(row);
    if (!nulls_.empty() && nulls_[row])
        return Value();
    if (type_ == DataType::String)
        return Value(strings_[row]);
    if (isArrayType(type_)) {
        Blob b(scalars_.begin() + static_cast<long>(offsets_[row]),
               scalars_.begin() + static_cast<long>(offsets_[row + 1]));
        return Value(std::move(b));
    }
    return Value(scalars_[row]);
}

bool
Column::isNull(size_t row) const
{
    checkRow(row);
    return !nulls_.empty() && nulls_[row];
}

int64_t
Column::scalarAt(size_t row) const
{
    checkRow(row);
    GENESIS_ASSERT(!isArrayType(type_) && type_ != DataType::String,
                   "scalarAt on %s column '%s'", dataTypeName(type_),
                   name_.c_str());
    return scalars_[row];
}

size_t
Column::elementCount(size_t row) const
{
    checkRow(row);
    if (!isArrayType(type_))
        return 1;
    return static_cast<size_t>(offsets_[row + 1] - offsets_[row]);
}

int64_t
Column::elementAt(size_t row, size_t idx) const
{
    checkRow(row);
    if (!isArrayType(type_)) {
        GENESIS_ASSERT(idx == 0, "element %zu of scalar column '%s'", idx,
                       name_.c_str());
        return scalars_[row];
    }
    GENESIS_ASSERT(idx < elementCount(row),
                   "element %zu out of range in column '%s' row %zu", idx,
                   name_.c_str(), row);
    return scalars_[offsets_[row] + idx];
}

void
Column::serialize(std::vector<uint8_t> &out,
                  std::vector<uint32_t> &row_lengths,
                  size_t first, size_t count) const
{
    GENESIS_ASSERT(first + count <= numRows_,
                   "serialize range [%zu,+%zu) exceeds %zu rows in '%s'",
                   first, count, numRows_, name_.c_str());
    size_t esize = elementSize(type_);
    auto emit = [&](int64_t v) {
        for (size_t b = 0; b < esize; ++b)
            out.push_back(static_cast<uint8_t>(
                (static_cast<uint64_t>(v) >> (8 * b)) & 0xff));
    };
    for (size_t row = first; row < first + count; ++row) {
        size_t n = elementCount(row);
        row_lengths.push_back(static_cast<uint32_t>(n));
        if (isArrayType(type_)) {
            for (size_t i = 0; i < n; ++i)
                emit(scalars_[offsets_[row] + i]);
        } else {
            emit(scalars_[row]);
        }
    }
}

} // namespace genesis::table

/**
 * @file
 * The genomic table schemas of paper Table I, plus builders that convert
 * genome-domain objects (AlignedRead, ReferenceGenome) into relational
 * tables the SQL engine and the accelerator both consume.
 */

#ifndef GENESIS_TABLE_GENOMIC_SCHEMA_H
#define GENESIS_TABLE_GENOMIC_SCHEMA_H

#include <vector>

#include "genome/read.h"
#include "genome/reference.h"
#include "table/table.h"

namespace genesis::table {

/** Default reference partition size (paper: PSIZE = 1 M base pairs). */
inline constexpr int64_t kDefaultPsize = 1'000'000;

/**
 * Schema of the READS table (paper Table I), extended with the fields the
 * accelerated stages need on-device or for bookkeeping:
 *  CHR u8, POS u32, ENDPOS u32, CIGAR u16[], SEQ u8[], QUAL u8[],
 *  RG u16 (read group), FLAGS u16, ROWID i64 (host-side back-reference).
 */
Schema readsSchema();

/**
 * Schema of the REF table (paper Table I):
 *  CHR u8, REFPOS u32, SEQ u8[], IS_SNP bool[], PID i64.
 */
Schema refSchema();

/** Build a READS table over all given reads (ROWID = index). */
Table buildReadsTable(const std::vector<genome::AlignedRead> &reads,
                      const std::string &name = "READS");

/**
 * Build a READS table over a subset of reads selected by row index
 * (ROWID preserves the index into the original vector).
 */
Table buildReadsTable(const std::vector<genome::AlignedRead> &reads,
                      const std::vector<size_t> &row_indices,
                      const std::string &name = "READS");

/**
 * Build the REF table: one row per (chromosome, PSIZE window), each row
 * holding PSIZE+overlap base pairs so reads near a window boundary still
 * find their full reference context (Section III-B).
 *
 * @param overlap extra bases past the window end (paper: LEN)
 */
Table buildRefTable(const genome::ReferenceGenome &genome,
                    int64_t psize = kDefaultPsize, int64_t overlap = 151,
                    const std::string &name = "REF");

} // namespace genesis::table

#endif // GENESIS_TABLE_GENOMIC_SCHEMA_H

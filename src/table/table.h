/**
 * @file
 * Columnar in-memory table — the relational view of genomic data.
 *
 * The paper conceptualises reads and reference segments as rows of a very
 * large relational database (Section III-B, Table I). This class is that
 * database's storage layer: a named schema plus one Column per field.
 */

#ifndef GENESIS_TABLE_TABLE_H
#define GENESIS_TABLE_TABLE_H

#include <memory>
#include <string>
#include <vector>

#include "table/schema.h"

namespace genesis::table {

/** A named columnar table. */
class Table
{
  public:
    Table() = default;
    Table(std::string name, Schema schema);

    const std::string &name() const { return name_; }
    void setName(std::string name) { name_ = std::move(name); }
    const Schema &schema() const { return schema_; }
    size_t numRows() const { return numRows_; }
    size_t numColumns() const { return columns_.size(); }

    /** Append a full row; cell count must equal the schema width. */
    void appendRow(const std::vector<Value> &cells);

    /** @return cell (row, column index). */
    Value at(size_t row, size_t col) const;

    /** @return cell (row, column name). */
    Value at(size_t row, const std::string &col_name) const;

    /** @return mutable column by index. */
    Column &column(size_t col);
    const Column &column(size_t col) const;

    /** @return column by name; throws FatalError when absent. */
    const Column &column(const std::string &name) const;
    Column &column(const std::string &name);

    /** @return a new table with the same schema and no rows. */
    Table emptyLike(const std::string &new_name) const;

    /**
     * @return true when schema and every cell match exactly (table
     * names are ignored). Used by differential test batteries.
     */
    bool contentEquals(const Table &other) const;

    /** Render the first max_rows rows as an aligned text grid. */
    std::string str(size_t max_rows = 20) const;

  private:
    std::string name_;
    Schema schema_;
    std::vector<Column> columns_;
    size_t numRows_ = 0;
};

} // namespace genesis::table

#endif // GENESIS_TABLE_TABLE_H

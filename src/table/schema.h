/**
 * @file
 * Table schema: an ordered list of named, typed fields.
 */

#ifndef GENESIS_TABLE_SCHEMA_H
#define GENESIS_TABLE_SCHEMA_H

#include <string>
#include <vector>

#include "table/column.h"

namespace genesis::table {

/** One field declaration. */
struct FieldDef {
    std::string name;
    DataType type = DataType::Int64;

    bool operator==(const FieldDef &other) const = default;
};

/** An ordered set of field declarations. */
class Schema
{
  public:
    Schema() = default;
    Schema(std::initializer_list<FieldDef> fields);
    explicit Schema(std::vector<FieldDef> fields);

    const std::vector<FieldDef> &fields() const { return fields_; }
    size_t size() const { return fields_.size(); }

    /** Append a field; duplicate names are fatal. */
    void addField(const std::string &name, DataType type);

    /** @return field index by name, or -1 when absent. */
    int indexOf(const std::string &name) const;

    /** @return field index by name; throws FatalError when absent. */
    size_t require(const std::string &name) const;

    /** @return true when a field with this name exists. */
    bool has(const std::string &name) const { return indexOf(name) >= 0; }

    const FieldDef &field(size_t i) const { return fields_.at(i); }

    bool operator==(const Schema &other) const = default;

    /** Render as "(NAME type, ...)". */
    std::string str() const;

  private:
    std::vector<FieldDef> fields_;
};

} // namespace genesis::table

#endif // GENESIS_TABLE_SCHEMA_H

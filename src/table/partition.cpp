#include "table/partition.h"

#include <algorithm>
#include <map>

#include "base/logging.h"

namespace genesis::table {

namespace {
/** Windows per chromosome in the PID space; ample for 250 Mbp / 1 Mbp. */
constexpr int64_t kMaxWindowsPerChromosome = 1 << 20;
} // namespace

Partitioner::Partitioner(int64_t psize, int64_t overlap)
    : psize_(psize), overlap_(overlap)
{
    if (psize_ < 1)
        fatal("partition size must be positive (got %lld)",
              static_cast<long long>(psize_));
    if (overlap_ < 0)
        fatal("partition overlap must be non-negative");
}

int64_t
Partitioner::windowIndex(int64_t pos) const
{
    // Reads with a leading soft clip can have slightly negative unclipped
    // positions; clamp those into window 0.
    return pos <= 0 ? 0 : pos / psize_;
}

int64_t
Partitioner::pid(uint8_t chr, int64_t pos) const
{
    return static_cast<int64_t>(chr) * kMaxWindowsPerChromosome +
        windowIndex(pos);
}

std::vector<ReadPartition>
Partitioner::partitionReads(
    const std::vector<genome::AlignedRead> &reads) const
{
    std::map<int64_t, ReadPartition> buckets;
    for (size_t i = 0; i < reads.size(); ++i) {
        const auto &read = reads[i];
        int64_t p = pid(read.chr, read.pos);
        auto [it, inserted] = buckets.try_emplace(p);
        if (inserted) {
            it->second.pid = p;
            it->second.chr = read.chr;
            it->second.windowStart = windowIndex(read.pos) * psize_;
            it->second.windowEnd = it->second.windowStart + psize_;
        }
        it->second.readIndices.push_back(i);
    }
    std::vector<ReadPartition> out;
    out.reserve(buckets.size());
    for (auto &[p, part] : buckets) {
        std::sort(part.readIndices.begin(), part.readIndices.end(),
                  [&](size_t a, size_t b) {
                      return reads[a].pos < reads[b].pos;
                  });
        out.push_back(std::move(part));
    }
    return out;
}

std::vector<ReadPartition>
Partitioner::partitionReadsByGroup(
    const std::vector<genome::AlignedRead> &reads) const
{
    std::map<std::pair<int64_t, uint16_t>, ReadPartition> buckets;
    for (size_t i = 0; i < reads.size(); ++i) {
        const auto &read = reads[i];
        int64_t p = pid(read.chr, read.pos);
        auto key = std::make_pair(p, read.readGroup);
        auto [it, inserted] = buckets.try_emplace(key);
        if (inserted) {
            it->second.pid = p;
            it->second.chr = read.chr;
            it->second.windowStart = windowIndex(read.pos) * psize_;
            it->second.windowEnd = it->second.windowStart + psize_;
            it->second.readGroup = read.readGroup;
        }
        it->second.readIndices.push_back(i);
    }
    std::vector<ReadPartition> out;
    out.reserve(buckets.size());
    for (auto &[key, part] : buckets) {
        std::sort(part.readIndices.begin(), part.readIndices.end(),
                  [&](size_t a, size_t b) {
                      return reads[a].pos < reads[b].pos;
                  });
        out.push_back(std::move(part));
    }
    return out;
}

} // namespace genesis::table

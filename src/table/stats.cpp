#include "table/stats.h"

#include <unordered_set>

namespace genesis::table {

const ColumnStats *
TableStats::column(const std::string &name) const
{
    auto it = columns.find(name);
    return it == columns.end() ? nullptr : &it->second;
}

namespace {

ColumnStats
collectScalarColumn(const Column &col)
{
    ColumnStats s;
    s.rowCount = static_cast<int64_t>(col.size());
    std::unordered_set<int64_t> seen;
    bool saturated = false;
    for (size_t r = 0; r < col.size(); ++r) {
        if (col.isNull(r)) {
            ++s.nullCount;
            continue;
        }
        int64_t v = col.scalarAt(r);
        if (!s.hasRange) {
            s.hasRange = true;
            s.minValue = s.maxValue = v;
        } else {
            if (v < s.minValue)
                s.minValue = v;
            if (v > s.maxValue)
                s.maxValue = v;
        }
        if (!saturated) {
            seen.insert(v);
            saturated = seen.size() >= kDistinctCap;
        }
    }
    s.hasDistinct = true;
    s.distinct = static_cast<int64_t>(seen.size());
    return s;
}

ColumnStats
collectStringColumn(const Column &col)
{
    ColumnStats s;
    s.rowCount = static_cast<int64_t>(col.size());
    std::unordered_set<std::string> seen;
    bool saturated = false;
    for (size_t r = 0; r < col.size(); ++r) {
        Value v = col.value(r);
        if (v.isNull()) {
            ++s.nullCount;
            continue;
        }
        if (!saturated) {
            seen.insert(v.asString());
            saturated = seen.size() >= kDistinctCap;
        }
    }
    s.hasDistinct = true;
    s.distinct = static_cast<int64_t>(seen.size());
    return s;
}

ColumnStats
collectArrayColumn(const Column &col)
{
    // Array cells only contribute null/row counts: the engine never
    // filters or joins on whole-array equality in practice.
    ColumnStats s;
    s.rowCount = static_cast<int64_t>(col.size());
    for (size_t r = 0; r < col.size(); ++r) {
        if (col.isNull(r))
            ++s.nullCount;
    }
    return s;
}

} // namespace

TableStats
collectTableStats(const Table &table)
{
    TableStats stats;
    stats.rowCount = static_cast<int64_t>(table.numRows());
    for (size_t c = 0; c < table.numColumns(); ++c) {
        const Column &col = table.column(c);
        ColumnStats s;
        if (isArrayType(col.type()))
            s = collectArrayColumn(col);
        else if (col.type() == DataType::String)
            s = collectStringColumn(col);
        else
            s = collectScalarColumn(col);
        stats.columns.emplace(col.name(), std::move(s));
    }
    return stats;
}

} // namespace genesis::table

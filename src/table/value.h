/**
 * @file
 * Dynamically-typed cell value used by the SQL engine.
 *
 * The software query engine (src/engine) interprets logical plans over
 * tables whose cells are Values. The hardware path never sees Values —
 * it streams raw column bytes — so this type optimises for clarity.
 */

#ifndef GENESIS_TABLE_VALUE_H
#define GENESIS_TABLE_VALUE_H

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace genesis::table {

/** A variable-length array cell (e.g. SEQ, QUAL, CIGAR contents). */
using Blob = std::vector<int64_t>;

/**
 * One table cell: null, a 64-bit integer, a string, or an integer array.
 * All narrower column types widen to int64 at the Value level.
 */
class Value
{
  public:
    Value() : data_(std::monostate{}) {}
    Value(int64_t v) : data_(v) {}
    Value(int v) : data_(static_cast<int64_t>(v)) {}
    Value(bool b) : data_(static_cast<int64_t>(b ? 1 : 0)) {}
    Value(std::string s) : data_(std::move(s)) {}
    Value(const char *s) : data_(std::string(s)) {}
    Value(Blob b) : data_(std::move(b)) {}

    bool isNull() const
    {
        return std::holds_alternative<std::monostate>(data_);
    }
    bool isInt() const { return std::holds_alternative<int64_t>(data_); }
    bool isString() const
    {
        return std::holds_alternative<std::string>(data_);
    }
    bool isBlob() const { return std::holds_alternative<Blob>(data_); }

    /** @return integer content; throws FatalError on type mismatch. */
    int64_t asInt() const;

    /** @return string content; throws FatalError on type mismatch. */
    const std::string &asString() const;

    /** @return blob content; throws FatalError on type mismatch. */
    const Blob &asBlob() const;

    /** @return truthiness: non-zero int, non-empty string/blob. */
    bool truthy() const;

    /** Render for debugging / result printing. */
    std::string str() const;

    bool operator==(const Value &other) const { return data_ == other.data_; }

    /**
     * Total order across values for sorting/grouping: nulls first, then
     * ints, strings, blobs (each ordered naturally).
     */
    bool operator<(const Value &other) const;

  private:
    std::variant<std::monostate, int64_t, std::string, Blob> data_;
};

} // namespace genesis::table

#endif // GENESIS_TABLE_VALUE_H

/**
 * @file
 * Columnar storage for Genesis tables.
 *
 * A column stores either fixed-width scalars or variable-length integer
 * arrays. Each column can serialise itself to the raw byte layout the
 * simulated accelerator's memory readers stream (elements of elemSize
 * bytes, little-endian, concatenated row after row), which is how
 * configure_mem() moves host tables into device memory.
 */

#ifndef GENESIS_TABLE_COLUMN_H
#define GENESIS_TABLE_COLUMN_H

#include <cstdint>
#include <string>
#include <vector>

#include "table/value.h"

namespace genesis::table {

/** Physical column type (Table I of the paper uses all of these). */
enum class DataType : uint8_t {
    UInt8,   ///< e.g. CHR, one base pair, one quality score
    UInt16,  ///< e.g. a packed CIGAR element
    UInt32,  ///< e.g. POS, ENDPOS
    Int64,   ///< generic computed integers
    Bool,    ///< e.g. IS_SNP bits
    Array8,  ///< uint8_t[] per row: SEQ, QUAL
    Array16, ///< uint16_t[] per row: CIGAR
    BitArray, ///< bool[] per row: IS_SNP for a reference segment
    String,  ///< host-only metadata (never streamed to the device)
};

/** @return true for the per-row array types. */
bool isArrayType(DataType t);

/** @return element width in bytes when streamed to device memory. */
size_t elementSize(DataType t);

/** @return display name ("uint32_t", "uint8_t[]", ...). */
const char *dataTypeName(DataType t);

/** One named, typed column of values. */
class Column
{
  public:
    Column() = default;
    Column(std::string name, DataType type);

    const std::string &name() const { return name_; }
    DataType type() const { return type_; }
    size_t size() const { return numRows_; }

    /** Append a cell; the Value shape must match the column type. */
    void append(const Value &v);

    /** Fast-path append for scalar columns. */
    void appendScalar(int64_t v);

    /** Fast-path append for array columns. */
    void appendArray(const Blob &elems);

    /** @return cell as a Value (arrays copy into a Blob). */
    Value value(size_t row) const;

    /** @return true when the cell is an explicit NULL. */
    bool isNull(size_t row) const;

    /** @return scalar cell; throws on array columns. */
    int64_t scalarAt(size_t row) const;

    /** @return element count of an array row (1 for scalars). */
    size_t elementCount(size_t row) const;

    /** @return one element of an array row. */
    int64_t elementAt(size_t row, size_t idx) const;

    /**
     * Serialise rows [first, first+count) to the device byte layout.
     * @param out destination, appended to
     * @param row_lengths per-row element counts, appended to
     */
    void serialize(std::vector<uint8_t> &out,
                   std::vector<uint32_t> &row_lengths,
                   size_t first, size_t count) const;

    /** Serialise the whole column. */
    void serialize(std::vector<uint8_t> &out,
                   std::vector<uint32_t> &row_lengths) const
    {
        serialize(out, row_lengths, 0, numRows_);
    }

  private:
    void checkRow(size_t row) const;

    std::string name_;
    DataType type_ = DataType::Int64;
    size_t numRows_ = 0;

    /** Scalar storage (also element pool for array columns). */
    std::vector<int64_t> scalars_;
    /** Null mask for scalar/string rows (empty when no null ever set). */
    std::vector<bool> nulls_;
    /** Array columns: scalars_ holds the element pool; offsets per row. */
    std::vector<uint64_t> offsets_; ///< size numRows_+1 when array typed
    /** String column storage. */
    std::vector<std::string> strings_;
};

} // namespace genesis::table

#endif // GENESIS_TABLE_COLUMN_H

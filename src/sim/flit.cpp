#include "sim/flit.h"

#include <sstream>

#include "base/logging.h"

namespace genesis::sim {

void
Flit::pushField(int64_t v)
{
    if (numFields >= kMaxFields)
        panic("flit field overflow (max %d)", kMaxFields);
    field[numFields++] = v;
}

int64_t
Flit::fieldAt(int i) const
{
    if (i < 0 || i >= numFields)
        panic("flit field %d out of range (%d fields)", i, numFields);
    return field[static_cast<size_t>(i)];
}

void
Flit::mergeFields(const Flit &other)
{
    for (int i = 0; i < other.numFields; ++i)
        pushField(other.field[static_cast<size_t>(i)]);
}

std::string
Flit::str() const
{
    std::ostringstream os;
    os << "{key=";
    if (key == kIns)
        os << "Ins";
    else
        os << key;
    os << " [";
    for (int i = 0; i < numFields; ++i) {
        if (i)
            os << ",";
        int64_t v = field[static_cast<size_t>(i)];
        if (v == kDel)
            os << "Del";
        else if (v == kNull)
            os << "Null";
        else
            os << v;
    }
    os << "]";
    if (lastOfItem)
        os << " EOI";
    os << "}";
    return os.str();
}

Flit
makeBoundary()
{
    Flit f;
    f.key = Flit::kBoundary;
    f.lastOfItem = true;
    return f;
}

bool
isBoundary(const Flit &flit)
{
    return flit.key == Flit::kBoundary && flit.lastOfItem;
}

Flit
makeFlit(int64_t key)
{
    Flit f;
    f.key = key;
    return f;
}

Flit
makeFlit(int64_t key, int64_t f0)
{
    Flit f;
    f.key = key;
    f.pushField(f0);
    return f;
}

Flit
makeFlit(int64_t key, int64_t f0, int64_t f1)
{
    Flit f;
    f.key = key;
    f.pushField(f0);
    f.pushField(f1);
    return f;
}

Flit
makeFlit(int64_t key, int64_t f0, int64_t f1, int64_t f2)
{
    Flit f;
    f.key = key;
    f.pushField(f0);
    f.pushField(f1);
    f.pushField(f2);
    return f;
}

} // namespace genesis::sim

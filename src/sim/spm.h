/**
 * @file
 * On-chip scratchpad memory (SPM).
 *
 * The paper maps frequently reused tables — the reference sequence, the
 * IS_SNP bitmap, BQSR count buffers — to on-chip scratchpads to exploit
 * data reuse (Section III-D). A scratchpad is a word-addressed array with
 * single-cycle access; the SpmReader/SpmUpdater modules provide the
 * streaming interfaces, including the read-modify-write hazard interlock.
 */

#ifndef GENESIS_SIM_SPM_H
#define GENESIS_SIM_SPM_H

#include <cstdint>
#include <string>
#include <vector>

#include "base/stats.h"
#include "base/trace.h"
#include "sim/wait.h"

namespace genesis::sim {

/** A word-addressed on-chip scratchpad. */
class Scratchpad
{
  public:
    /**
     * @param name diagnostic name
     * @param size_words capacity in 64-bit words
     * @param word_bytes storage width per word for resource accounting
     *        (a base-pair SPM stores 1 byte/word; a counter SPM 4)
     */
    Scratchpad(std::string name, size_t size_words,
               uint32_t word_bytes = 8);

    const std::string &name() const { return name_; }
    size_t sizeWords() const { return words_.size(); }
    uint32_t wordBytes() const { return wordBytes_; }

    /** @return capacity in bytes (for BRAM resource accounting). */
    uint64_t sizeBytes() const
    {
        return static_cast<uint64_t>(words_.size()) * wordBytes_;
    }

    /** Read one word; out-of-range addresses panic. */
    int64_t read(size_t addr) const;

    /** Write one word. */
    void write(size_t addr, int64_t value);

    /** Zero-fill the whole array. */
    void clear();

    // --- read-modify-write hazard scoreboard ---
    //
    // An updater with an in-flight RMW on a word publishes the address
    // here (acquire at pipeline entry, release at write-back); other
    // modules that must not touch the word while it is in flight check
    // hazardHeld() and may sleep on hazardWaiters() — every release
    // fires the list. Nested acquires of one address are counted, so
    // the address reads as held until the last release.

    /** Publish an in-flight RMW on `addr`. */
    void hazardAcquire(size_t addr);

    /** Retire an in-flight RMW on `addr`; wakes hazard waiters. */
    void hazardRelease(size_t addr);

    /** @return true while any in-flight RMW holds `addr`. */
    bool hazardHeld(size_t addr) const;

    /** Sleepers blocked on a held address, fired on every release. */
    WaitList &hazardWaiters() { return hazardWaiters_; }

    StatRegistry &stats() { return stats_; }
    const StatRegistry &stats() const { return stats_; }

    /**
     * Record this scratchpad's cumulative access count as a counter
     * track under process `pid` in `sink`, sampled at the first access
     * of each active cycle (`cycle` is the owning simulator's clock).
     */
    void
    attachTrace(TraceSink *sink, const uint64_t *cycle, int pid)
    {
        trace_ = sink;
        traceCycle_ = cycle;
        traceTrack_ =
            sink->addCounterTrack(pid, "spm." + name_ + ".accesses");
        lastTraceCycle_ = ~0ull;
    }

  private:
    /** Sample the cumulative access counter (at most once per cycle). */
    void
    traceAccess() const
    {
        if (*traceCycle_ == lastTraceCycle_)
            return;
        lastTraceCycle_ = *traceCycle_;
        trace_->counter(traceTrack_, *traceCycle_, *reads_ + *writes_);
    }

    std::string name_;
    uint32_t wordBytes_;
    std::vector<int64_t> words_;
    /** In-flight RMW addresses (tiny: bounded by updater pipe depth). */
    std::vector<size_t> hazardAddrs_;
    /** Sleeping modules woken on every hazard release. */
    WaitList hazardWaiters_;
    mutable StatRegistry stats_;
    /** Interned hot-path stat handles. */
    StatRegistry::Counter reads_ = stats_.counter("reads");
    StatRegistry::Counter writes_ = stats_.counter("writes");
    /** Tracing attachment (null = disabled; see attachTrace). */
    TraceSink *trace_ = nullptr;
    const uint64_t *traceCycle_ = nullptr;
    int traceTrack_ = -1;
    mutable uint64_t lastTraceCycle_ = ~0ull;
};

} // namespace genesis::sim

#endif // GENESIS_SIM_SPM_H

#include "sim/spm.h"

#include "base/logging.h"

namespace genesis::sim {

Scratchpad::Scratchpad(std::string name, size_t size_words,
                       uint32_t word_bytes)
    : name_(std::move(name)), wordBytes_(word_bytes)
{
    if (size_words == 0)
        fatal("scratchpad '%s' must have non-zero size", name_.c_str());
    words_.assign(size_words, 0);
}

int64_t
Scratchpad::read(size_t addr) const
{
    if (addr >= words_.size()) {
        panic("scratchpad '%s': read of %zu beyond size %zu",
              name_.c_str(), addr, words_.size());
    }
    ++*reads_;
    if (trace_)
        traceAccess();
    return words_[addr];
}

void
Scratchpad::write(size_t addr, int64_t value)
{
    if (addr >= words_.size()) {
        panic("scratchpad '%s': write of %zu beyond size %zu",
              name_.c_str(), addr, words_.size());
    }
    ++*writes_;
    if (trace_)
        traceAccess();
    words_[addr] = value;
}

void
Scratchpad::clear()
{
    std::fill(words_.begin(), words_.end(), 0);
}

} // namespace genesis::sim

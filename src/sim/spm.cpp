#include "sim/spm.h"

#include <algorithm>

#include "base/logging.h"

namespace genesis::sim {

Scratchpad::Scratchpad(std::string name, size_t size_words,
                       uint32_t word_bytes)
    : name_(std::move(name)), wordBytes_(word_bytes)
{
    if (size_words == 0)
        fatal("scratchpad '%s' must have non-zero size", name_.c_str());
    words_.assign(size_words, 0);
    hazardWaiters_.setName("spm " + name_ + " hazard");
}

void
Scratchpad::hazardAcquire(size_t addr)
{
    hazardAddrs_.push_back(addr);
}

void
Scratchpad::hazardRelease(size_t addr)
{
    auto it = std::find(hazardAddrs_.begin(), hazardAddrs_.end(), addr);
    if (it == hazardAddrs_.end()) {
        panic("scratchpad '%s': hazard release of unheld address %zu",
              name_.c_str(), addr);
    }
    hazardAddrs_.erase(it);
    hazardWaiters_.wakeAll();
}

bool
Scratchpad::hazardHeld(size_t addr) const
{
    return std::find(hazardAddrs_.begin(), hazardAddrs_.end(), addr) !=
        hazardAddrs_.end();
}

int64_t
Scratchpad::read(size_t addr) const
{
    if (addr >= words_.size()) {
        panic("scratchpad '%s': read of %zu beyond size %zu",
              name_.c_str(), addr, words_.size());
    }
    ++*reads_;
    if (trace_)
        traceAccess();
    return words_[addr];
}

void
Scratchpad::write(size_t addr, int64_t value)
{
    if (addr >= words_.size()) {
        panic("scratchpad '%s': write of %zu beyond size %zu",
              name_.c_str(), addr, words_.size());
    }
    ++*writes_;
    if (trace_)
        traceAccess();
    words_[addr] = value;
}

void
Scratchpad::clear()
{
    std::fill(words_.begin(), words_.end(), 0);
}

} // namespace genesis::sim

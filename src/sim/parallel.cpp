#include "sim/parallel.h"

#include <algorithm>
#include <cstdlib>
#include <limits>

#include "base/env.h"
#include "base/logging.h"

namespace genesis::sim {

thread_local int tlsCurrentShard = kNoShard;

namespace {

/** Spins before a waiter falls back to yielding / parking. Short: on an
 *  oversubscribed host (the common CI case) spinning only steals the
 *  quantum from the thread being waited on. */
constexpr int kSpinIters = 256;
/** Yields before an idle helper parks on the condition variable. */
constexpr int kYieldIters = 64;

} // namespace

int
resolveWorkerCount(const ThreadPolicy &policy, int populated_shards,
                   unsigned hardware_threads)
{
    if (populated_shards < 2)
        return 1;
    if (std::getenv("GENESIS_SIM_NO_THREADS") != nullptr)
        return 1;

    int requested = std::max(policy.requested, 0);
    // Strict full-string parse: malformed or negative values warn and
    // fall back to the configured request instead of silently (or
    // fatally) misconfiguring the worker count.
    requested = static_cast<int>(envInt64(
        "GENESIS_SIM_THREADS", requested, 0,
        std::numeric_limits<int>::max()));

    unsigned hw = hardware_threads ? hardware_threads
                                   : std::thread::hardware_concurrency();
    if (hw == 0)
        hw = 1; // hardware_concurrency may be unknown
    int sessions = std::max(policy.concurrentSessions, 1);
    int budget = std::max(1, static_cast<int>(hw) / sessions);

    int workers;
    if (requested == 0) {
        // Auto: never oversubscribe the host across sessions.
        workers = budget;
    } else if (sessions > 1) {
        // Explicit request, shared host: clamp to this session's share.
        workers = std::min(requested, budget);
    } else {
        // Explicit request, sole session: honored as-is so determinism
        // tests can drive the parallel path on any host.
        workers = requested;
    }
    return std::max(1, std::min(workers, populated_shards));
}

int
resolveMemWorkerCount(int requested, int num_channels)
{
    if (num_channels < 2)
        return 1;
    if (std::getenv("GENESIS_SIM_NO_MEM_THREADS") != nullptr)
        return 1;
    requested = std::max(requested, 0);
    requested = static_cast<int>(envInt64(
        "GENESIS_SIM_MEM_THREADS", requested, 0,
        std::numeric_limits<int>::max()));
    if (requested == 0)
        return 1; // default: the sequential tick (see header)
    return std::max(1, std::min(requested, num_channels));
}

SimThreadPool::SimThreadPool(int helpers)
{
    GENESIS_ASSERT(helpers >= 0, "negative helper count");
    threads_.reserve(static_cast<size_t>(helpers));
    for (int i = 0; i < helpers; ++i)
        threads_.emplace_back([this] { workerMain(); });
}

SimThreadPool::~SimThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_.store(true, std::memory_order_release);
    }
    cv_.notify_all();
    for (auto &t : threads_)
        t.join();
}

void
SimThreadPool::drainJobs()
{
    for (;;) {
        size_t i = nextJob_.fetch_add(1, std::memory_order_relaxed);
        if (i >= jobCount_)
            return;
        try {
            (*job_)(i);
        } catch (...) {
            std::lock_guard<std::mutex> lock(errorMutex_);
            if (!firstError_)
                firstError_ = std::current_exception();
        }
    }
}

void
SimThreadPool::workerMain()
{
    uint64_t seen = 0;
    for (;;) {
        // Wait for the next batch: spin, then yield, then park.
        int spins = 0;
        while (generation_.load(std::memory_order_acquire) == seen) {
            if (stop_.load(std::memory_order_acquire))
                return;
            ++spins;
            if (spins < kSpinIters)
                continue;
            if (spins < kSpinIters + kYieldIters) {
                std::this_thread::yield();
                continue;
            }
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [&] {
                return stop_.load(std::memory_order_acquire) ||
                    generation_.load(std::memory_order_acquire) != seen;
            });
            if (stop_.load(std::memory_order_acquire))
                return;
            break;
        }
        if (stop_.load(std::memory_order_acquire))
            return;
        seen = generation_.load(std::memory_order_acquire);
        drainJobs();
        finishedHelpers_.fetch_add(1, std::memory_order_release);
    }
}

void
SimThreadPool::run(size_t jobs, const std::function<void(size_t)> &fn)
{
    if (jobs == 0)
        return;
    if (threads_.empty()) {
        // Degenerate pool: the caller is the only worker.
        job_ = &fn;
        jobCount_ = jobs;
        nextJob_.store(0, std::memory_order_relaxed);
        drainJobs();
        job_ = nullptr;
    } else {
        job_ = &fn;
        jobCount_ = jobs;
        nextJob_.store(0, std::memory_order_relaxed);
        finishedHelpers_.store(0, std::memory_order_relaxed);
        // Publish the batch (release) and wake any parked helpers. The
        // notify must happen while holding the mutex so a helper that
        // just evaluated its wait predicate cannot miss the new
        // generation and sleep through it.
        generation_.fetch_add(1, std::memory_order_release);
        {
            std::lock_guard<std::mutex> lock(mutex_);
        }
        cv_.notify_all();
        drainJobs();
        // Barrier: every helper's release-increment pairs with this
        // acquire-load, so all job side effects are visible after it.
        int spins = 0;
        while (finishedHelpers_.load(std::memory_order_acquire) !=
               threads_.size()) {
            if (++spins >= kSpinIters)
                std::this_thread::yield();
        }
        job_ = nullptr;
    }
    if (firstError_) {
        std::exception_ptr error;
        {
            std::lock_guard<std::mutex> lock(errorMutex_);
            error = firstError_;
            firstError_ = nullptr;
        }
        std::rethrow_exception(error);
    }
}

} // namespace genesis::sim

/**
 * @file
 * Round-robin arbitration primitive used by the memory system's local and
 * global arbiters (paper Figure 8).
 */

#ifndef GENESIS_SIM_ARBITER_H
#define GENESIS_SIM_ARBITER_H

#include <cstddef>
#include <functional>

namespace genesis::sim {

/**
 * Fair round-robin selector over n requesters. grant() scans the
 * requesters starting just past the last winner and returns the first
 * index the predicate accepts, updating the pointer; -1 when none.
 */
class RoundRobinArbiter
{
  public:
    explicit RoundRobinArbiter(size_t n = 0) : n_(n) {}

    void resize(size_t n);
    size_t size() const { return n_; }

    /**
     * @param requesting predicate: does requester i want (and may get) a
     * grant this cycle?
     * @return granted index, or -1 when no requester is eligible.
     */
    int grant(const std::function<bool(size_t)> &requesting);

  private:
    size_t n_ = 0;
    size_t next_ = 0;
};

} // namespace genesis::sim

#endif // GENESIS_SIM_ARBITER_H

/**
 * @file
 * Round-robin arbitration primitive used by the memory system's local and
 * global arbiters (paper Figure 8).
 */

#ifndef GENESIS_SIM_ARBITER_H
#define GENESIS_SIM_ARBITER_H

#include <cstddef>

namespace genesis::sim {

/**
 * Fair round-robin selector over n requesters. grant() scans the
 * requesters starting just past the last winner and returns the first
 * index the predicate accepts, updating the pointer; -1 when none.
 */
class RoundRobinArbiter
{
  public:
    explicit RoundRobinArbiter(size_t n = 0) : n_(n) {}

    void resize(size_t n);
    size_t size() const { return n_; }

    /**
     * @param requesting predicate: does requester i want (and may get) a
     * grant this cycle? Templated so hot callers (the memory system's
     * per-cycle arbitration) pass lambdas without a std::function
     * allocation or indirect call.
     * @return granted index, or -1 when no requester is eligible.
     */
    template <typename Pred>
    int
    grant(const Pred &requesting)
    {
        if (n_ == 0)
            return -1;
        for (size_t i = 0; i < n_; ++i) {
            size_t candidate = next_ + i;
            if (candidate >= n_)
                candidate -= n_;
            if (requesting(candidate)) {
                next_ = candidate + 1 == n_ ? 0 : candidate + 1;
                return static_cast<int>(candidate);
            }
        }
        return -1;
    }

    /**
     * Requester the next grant() scan starts from. A grant with no
     * eligible requester leaves this untouched — the property that makes
     * arbitration replayable: ticks that find nothing schedulable (the
     * lookahead window's not-yet-visible sub-requests, tickQuiet's
     * proven-quiet spans) are exact no-ops on arbiter state.
     */
    size_t nextIndex() const { return next_; }

  private:
    size_t n_ = 0;
    size_t next_ = 0;
};

} // namespace genesis::sim

#endif // GENESIS_SIM_ARBITER_H

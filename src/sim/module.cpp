#include "sim/module.h"

#include "base/logging.h"
#include "sim/parallel.h"

namespace genesis::sim {

void
Module::wake()
{
    if (!asleep_)
        return;
    // During a parallel phase a wake may only come from the module's own
    // shard (a queue commit or hazard release inside its lane); wakes
    // that cross shards — memory retirements — fire from the serialized
    // control phase, where tlsCurrentShard is kNoShard.
    if (tlsCurrentShard != kNoShard && tlsCurrentShard != shard_) {
        panic("cross-shard wake of module '%s' (shard %d) from shard %d "
              "during a parallel phase: lanes may only couple through "
              "the memory system",
              name_.c_str(), shard_, tlsCurrentShard);
    }
    asleep_ = false;
    // Credit the slept span: a spinning module would have re-counted the
    // declared stall (and re-marked its trace span) on every cycle from
    // the sleep cycle exclusive through the wake cycle inclusive.
    uint64_t slept = *schedCycle_ - sleepCycle_;
    if (slept && sleepStall_) {
        *sleepStall_ += slept;
        if (trace_)
            trace_->creditSleep(traceTrack_, sleepCycle_ + 1, slept);
    }
    sleepLists_.clear();
    wakeQueue_->push_back(this);
}

std::string
Module::sleepDescription() const
{
    std::string desc;
    for (const WaitList *list : sleepLists_) {
        if (!desc.empty())
            desc += ", ";
        desc += list->name();
    }
    return desc;
}

void
Module::attachTrace(TraceSink *sink, const uint64_t *cycle, int pid)
{
    trace_ = sink;
    traceCycle_ = cycle;
    traceTrack_ = sink->addSpanTrack(pid, name_);
    stallStates_.clear();
}

void
Module::traceStall(StatHandle stall)
{
    for (const auto &[handle, state] : stallStates_) {
        if (handle == stall) {
            trace_->mark(traceTrack_, *traceCycle_, state);
            return;
        }
    }
    // First stall through this handle since tracing attached: recover the
    // counter's name from the registry and intern it as a trace state.
    std::string name = "stall";
    for (const auto &[counter_name, value] : stats_.counters()) {
        if (&value == stall) {
            name = counter_name;
            break;
        }
    }
    TraceSink::StateId state = trace_->internState(name);
    stallStates_.emplace_back(stall, state);
    trace_->mark(traceTrack_, *traceCycle_, state);
}

} // namespace genesis::sim

#include "sim/module.h"

namespace genesis::sim {

void
Module::attachTrace(TraceSink *sink, const uint64_t *cycle, int pid)
{
    trace_ = sink;
    traceCycle_ = cycle;
    traceTrack_ = sink->addSpanTrack(pid, name_);
    stallStates_.clear();
}

void
Module::traceStall(StatHandle stall)
{
    for (const auto &[handle, state] : stallStates_) {
        if (handle == stall) {
            trace_->mark(traceTrack_, *traceCycle_, state);
            return;
        }
    }
    // First stall through this handle since tracing attached: recover the
    // counter's name from the registry and intern it as a trace state.
    std::string name = "stall";
    for (const auto &[counter_name, value] : stats_.counters()) {
        if (&value == stall) {
            name = counter_name;
            break;
        }
    }
    TraceSink::StateId state = trace_->internState(name);
    stallStates_.emplace_back(stall, state);
    trace_->mark(traceTrack_, *traceCycle_, state);
}

} // namespace genesis::sim

#include "sim/queue.h"

#include <algorithm>

#include "base/logging.h"

namespace genesis::sim {

void
HardwareQueue::panicCrossShard() const
{
    panic("queue '%s' (shard %d) staged from shard %d during a parallel "
          "phase: lanes may only couple through the memory system",
          name_.c_str(), shard_, tlsCurrentShard);
}

HardwareQueue::HardwareQueue(std::string name, size_t capacity)
    : name_(std::move(name)), capacity_(capacity)
{
    if (capacity_ == 0)
        fatal("queue '%s' must have non-zero capacity", name_.c_str());
    waiters_.setName("queue " + name_);
}

bool
HardwareQueue::canPush() const
{
    // Conservative (registered) backpressure: space is judged against the
    // occupancy at the start of the cycle; a same-cycle pop does not free
    // a slot until commit.
    return !stagedPushValid_ && buffer_.size() < capacity_;
}

void
HardwareQueue::push(const Flit &flit)
{
    if (!canPush())
        panic("push to full queue '%s'", name_.c_str());
    if (closed_ || stagedClose_)
        panic("push to closed queue '%s'", name_.c_str());
    stagedPush_ = flit;
    stagedPushValid_ = true;
    markDirty();
}

bool
HardwareQueue::canPop() const
{
    return !stagedPop_ && !buffer_.empty();
}

const Flit &
HardwareQueue::front() const
{
    if (buffer_.empty())
        panic("front of empty queue '%s'", name_.c_str());
    return buffer_.front();
}

Flit
HardwareQueue::pop()
{
    if (!canPop())
        panic("pop from empty queue '%s'", name_.c_str());
    stagedPop_ = true;
    markDirty();
    return buffer_.front();
}

void
HardwareQueue::close()
{
    if (closed_ || stagedClose_)
        panic("double close of queue '%s'", name_.c_str());
    stagedClose_ = true;
    markDirty();
}

bool
HardwareQueue::drained() const
{
    return buffer_.empty() && !stagedPushValid_ && closed_;
}

void
HardwareQueue::commit()
{
    const bool staged = stagedPop_ || stagedPushValid_ || stagedClose_;
    if (stagedPop_) {
        buffer_.pop_front();
        stagedPop_ = false;
    }
    if (stagedPushValid_) {
        buffer_.push_back(stagedPush_);
        ++totalFlits_;
        stagedPushValid_ = false;
    }
    if (stagedClose_) {
        closed_ = true;
        stagedClose_ = false;
    }
    dirty_ = false;
    if (staged) {
        ++*progress_;
        maxOccupancy_ = std::max(maxOccupancy_, buffer_.size());
        if (trace_)
            trace_->counter(traceTrack_, *traceCycle_, buffer_.size());
        waiters_.wakeAll();
    }
}

} // namespace genesis::sim

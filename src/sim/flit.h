/**
 * @file
 * Flit: the atomic unit of dataflow communication (Section III-C).
 *
 * A stream consists of data items; each item is divided into flits, the
 * atomic unit of communication and operation — e.g. when a sequence of
 * reads forms a stream, each read is an item and each base pair is a
 * flit. A flit carries a key (used by the Joiner) plus a small set of
 * data fields (merged by joins through concatenation).
 */

#ifndef GENESIS_SIM_FLIT_H
#define GENESIS_SIM_FLIT_H

#include <array>
#include <cstdint>
#include <limits>
#include <string>

namespace genesis::sim {

/** One flit. */
struct Flit {
    /** Maximum data fields a flit can carry after join concatenation. */
    static constexpr int kMaxFields = 8;

    /**
     * Special key marking an inserted base (present in the read but not
     * the reference): it bypasses the Joiner's key comparison (emitted by
     * a left join, dropped by an inner join), mirroring the "Ins" marker
     * of paper Figure 3.
     */
    static constexpr int64_t kIns =
        std::numeric_limits<int64_t>::min() + 1;

    /**
     * Special field value marking a deleted base (present in the
     * reference but not the read) — the "Del" marker of Figure 3.
     */
    static constexpr int64_t kDel =
        std::numeric_limits<int64_t>::min() + 2;

    /** Special field value for join padding (no matching counterpart). */
    static constexpr int64_t kNull =
        std::numeric_limits<int64_t>::min() + 3;

    /** Key of an item-boundary marker flit. */
    static constexpr int64_t kBoundary =
        std::numeric_limits<int64_t>::min() + 4;

    int64_t key = 0;
    std::array<int64_t, kMaxFields> field{};
    uint8_t numFields = 0;
    /** Marks the final flit of a data item (read/row boundary). */
    bool lastOfItem = false;

    /** Append a data field; panics when the flit is full. */
    void pushField(int64_t v);

    /** @return field i with bounds checking. */
    int64_t fieldAt(int i) const;

    /** Append all of other's fields to this flit (join concatenation). */
    void mergeFields(const Flit &other);

    /** Render for diagnostics. */
    std::string str() const;

    bool operator==(const Flit &other) const = default;
};

/** Make a key-only flit. */
Flit makeFlit(int64_t key);

/** Make a flit with a key and one data field. */
Flit makeFlit(int64_t key, int64_t f0);

/** Make a flit with a key and two data fields. */
Flit makeFlit(int64_t key, int64_t f0, int64_t f1);

/** Make a flit with a key and three data fields. */
Flit makeFlit(int64_t key, int64_t f0, int64_t f1, int64_t f2);

/**
 * Make an item-boundary marker flit. Boundary flits flow in-band between
 * data items: every module forwards them (possibly merging two aligned
 * boundaries into one) so per-item operations — per-read reductions,
 * item-aligned joins, row-structured memory writes — see row boundaries
 * without out-of-band signalling.
 */
Flit makeBoundary();

/** @return true when the flit is an item-boundary marker. */
bool isBoundary(const Flit &flit);

} // namespace genesis::sim

#endif // GENESIS_SIM_FLIT_H

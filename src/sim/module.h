/**
 * @file
 * Base class for Genesis hardware-library modules.
 *
 * Each module is an independent dataflow unit: every cycle it consumes at
 * most one flit from each input queue and produces at most one output
 * flit (Section III-C). Modules never call each other — all communication
 * flows through HardwareQueues, and the Simulator ticks every module once
 * per cycle.
 *
 * Statistics are counted through interned handles (StatRegistry::Counter)
 * that modules intern once at construction, so a stall cycle costs one
 * indirect increment instead of a string allocation plus map lookup.
 *
 * Progress contract (idle-cycle fast-forward): the Simulator detects
 * cycles in which nothing happened and skips runs of them wholesale. A
 * cycle counts as active when any queue commits a staged push/pop/close,
 * the memory system issues/schedules/retires a request, or a module calls
 * noteProgress(). A tick that mutates module-internal state WITHOUT
 * staging a queue/port operation must therefore call noteProgress(), or
 * the fast-forward may treat the design as idle while it is silently
 * advancing. Pure waiting (only bumping stall counters) needs no call.
 *
 * Sleep contract (active-set scheduling): a tick that did nothing at all
 * — no queue push/pop/close, no memory-port call, no noteProgress(), no
 * internal mutation, at most one countStall() — may end with sleepOn(),
 * declaring the wait lists whose events could unblock it. The Simulator
 * then stops ticking the module until one of those lists fires, at which
 * point the slept span is credited to the declared stall bucket (and the
 * module's open trace span), keeping cycles, statistics and traces
 * bit-identical to a tick-everything run. The wait set must cover every
 * resource the blocked tick (and done()) reads: an event the set misses
 * would leave the module asleep through a state change it should have
 * observed. Spurious wakes are harmless — the re-tick is exactly the
 * tick a spinning module would have executed, and it may simply sleep
 * again. Set GENESIS_SIM_NO_SLEEP=1 to disable sleeping (escape hatch;
 * simulated results are identical either way).
 */

#ifndef GENESIS_SIM_MODULE_H
#define GENESIS_SIM_MODULE_H

#include <string>
#include <utility>
#include <vector>

#include "base/stats.h"
#include "base/trace.h"
#include "sim/queue.h"
#include "sim/wait.h"

namespace genesis::sim {

/** Abstract hardware module. */
class Module
{
  public:
    /** Interned per-module counter handle (see StatRegistry::Counter). */
    using StatHandle = StatRegistry::Counter;

    explicit Module(std::string name) : name_(std::move(name)) {}
    virtual ~Module() = default;

    Module(const Module &) = delete;
    Module &operator=(const Module &) = delete;

    /** Advance one clock cycle. */
    virtual void tick() = 0;

    /**
     * @return true when the module has finished all work: inputs drained,
     * outputs flushed and (where applicable) closed.
     */
    virtual bool done() const = 0;

    const std::string &name() const { return name_; }

    StatRegistry &stats() { return stats_; }
    const StatRegistry &stats() const { return stats_; }

    /** Redirect progress reporting to a simulator-owned counter. */
    void attachProgress(uint64_t *counter) { progress_ = counter; }

    /**
     * Wire sleep/wake into the owning Simulator: `cycle` is the
     * simulator clock (read when computing a slept span), `wake_queue`
     * receives this module when a WaitList wakes it, and `sleep_enabled`
     * is false under GENESIS_SIM_NO_SLEEP=1, turning sleepOn() into a
     * no-op. Standalone modules (unit tests) work without attachment.
     */
    void
    attachScheduler(const uint64_t *cycle,
                    std::vector<Module *> *wake_queue, bool sleep_enabled)
    {
        schedCycle_ = cycle;
        wakeQueue_ = wake_queue;
        sleepEnabled_ = sleep_enabled;
    }

    /** @return true while the scheduler has this module parked. */
    bool asleep() const { return asleep_; }

    /**
     * Wake a sleeping module (no-op when awake). Credits the slept span
     * to the stall bucket declared at sleepOn() — and extends the
     * module's open trace span — so counters and traces match what a
     * spinning module would have recorded, then queues the module for
     * re-activation. Called by WaitList::wakeAll().
     */
    void wake();

    /** Scheduler bookkeeping: whether the module sits in the active
     *  list (maintained by the Simulator, not by the module). */
    bool schedActive() const { return schedActive_; }
    void setSchedActive(bool active) { schedActive_ = active; }

    /** Scheduler bookkeeping: done() latched true (module retired from
     *  the active set for good; feeds the O(1) allDone() count). */
    bool schedDone() const { return schedDone_; }
    void setSchedDone(bool done) { schedDone_ = done; }

    /** Scheduler bookkeeping: tick-order index within the simulator. */
    size_t schedIndex() const { return schedIndex_; }
    void setSchedIndex(size_t index) { schedIndex_ = index; }

    /** Shard of the owning pipeline lane (0 = lane-unaffiliated). Set by
     *  the Simulator at creation; the parallel scheduler ticks the
     *  module on this shard's worker and routes its wakes to this
     *  shard's woken list. */
    int shard() const { return shard_; }
    void setShard(int shard) { shard_ = shard; }

    /** @return "queue a, queue b" — the awaited resources (diagnostics;
     *  empty when awake). */
    std::string sleepDescription() const;

    /**
     * Start recording this module's activity spans into `sink` (one span
     * track under process `pid`; `cycle` is the owning simulator's clock).
     * Tracing hooks cost one inlined null check when never attached.
     */
    void attachTrace(TraceSink *sink, const uint64_t *cycle, int pid);

  protected:
    /** Intern the counter for one stall-reason bucket ("stall.<reason>").
     *  Call once at construction and keep the handle. */
    StatHandle
    stallCounter(const char *reason)
    {
        return stats_.counter(std::string("stall.") + reason);
    }

    /** Intern an arbitrary per-module counter. */
    StatHandle statCounter(const std::string &name)
    {
        return stats_.counter(name);
    }

    /** Record one stall cycle against an interned reason bucket. */
    void
    countStall(StatHandle stall)
    {
        ++*stall;
        if (trace_)
            traceStall(stall);
    }

    /** Record one processed flit. */
    void
    countFlit()
    {
        ++*flits_;
        if (trace_)
            trace_->mark(traceTrack_, *traceCycle_, TraceSink::kStateBusy);
    }

    /**
     * Mark this cycle as having made progress. Required whenever tick()
     * changes internal state without staging a queue push/pop/close or a
     * memory-port request (see the progress contract above).
     */
    void
    noteProgress()
    {
        ++*progress_;
        if (trace_)
            trace_->mark(traceTrack_, *traceCycle_, TraceSink::kStateBusy);
    }

    /**
     * Trace-only busy mark for productive cycles that neither process a
     * flit nor self-report progress (e.g. draining an in-band boundary).
     * A no-op when tracing is disabled; never affects simulation.
     */
    void
    traceBusy()
    {
        if (trace_)
            trace_->mark(traceTrack_, *traceCycle_, TraceSink::kStateBusy);
    }

    /** Trace-only instant marker on this module's track. */
    void
    traceInstant(TraceSink::StateId name, std::string args)
    {
        if (trace_)
            trace_->instant(traceTrack_, *traceCycle_, name,
                            std::move(args));
    }

    /** @return the attached sink (null when tracing is disabled). */
    TraceSink *traceSink() { return trace_; }

    /**
     * Park this module until one of `lists` fires (see the sleep
     * contract above). Only legal at the end of a tick that did nothing:
     * the scheduler stops ticking the module, and on wake the slept
     * cycles are credited to `stall` — pass the bucket the blocked tick
     * just counted, or nullptr when the blocked tick counts no stall.
     * A no-op when unattached or under GENESIS_SIM_NO_SLEEP=1.
     */
    void
    sleepOn(StatHandle stall, std::initializer_list<WaitList *> lists)
    {
        if (!sleepEnabled_)
            return;
        asleep_ = true;
        sleepCycle_ = *schedCycle_;
        sleepStall_ = stall;
        sleepLists_.assign(lists.begin(), lists.end());
        for (WaitList *list : sleepLists_)
            list->add(this);
    }

  private:
    /** Slow path: resolve a stall handle to a trace state and mark it. */
    void traceStall(StatHandle stall);

    std::string name_;
    StatRegistry stats_;
    StatHandle flits_ = stats_.counter("flits");
    /** Fallback target so standalone modules work without a Simulator. */
    uint64_t localProgress_ = 0;
    uint64_t *progress_ = &localProgress_;
    /** Sleep/wake attachment (see attachScheduler / sleepOn / wake). */
    const uint64_t *schedCycle_ = nullptr;
    std::vector<Module *> *wakeQueue_ = nullptr;
    bool sleepEnabled_ = false;
    bool asleep_ = false;
    bool schedActive_ = false;
    bool schedDone_ = false;
    size_t schedIndex_ = 0;
    /** Owning lane's shard (see setShard). */
    int shard_ = 0;
    uint64_t sleepCycle_ = 0;
    StatHandle sleepStall_ = nullptr;
    std::vector<WaitList *> sleepLists_;
    /** Tracing attachment (null = disabled; see attachTrace). */
    TraceSink *trace_ = nullptr;
    const uint64_t *traceCycle_ = nullptr;
    int traceTrack_ = -1;
    /** Cached stall-handle -> trace-state resolutions. */
    std::vector<std::pair<StatHandle, TraceSink::StateId>> stallStates_;
};

} // namespace genesis::sim

#endif // GENESIS_SIM_MODULE_H

/**
 * @file
 * Base class for Genesis hardware-library modules.
 *
 * Each module is an independent dataflow unit: every cycle it consumes at
 * most one flit from each input queue and produces at most one output
 * flit (Section III-C). Modules never call each other — all communication
 * flows through HardwareQueues, and the Simulator ticks every module once
 * per cycle.
 */

#ifndef GENESIS_SIM_MODULE_H
#define GENESIS_SIM_MODULE_H

#include <string>

#include "base/stats.h"
#include "sim/queue.h"

namespace genesis::sim {

/** Abstract hardware module. */
class Module
{
  public:
    explicit Module(std::string name) : name_(std::move(name)) {}
    virtual ~Module() = default;

    Module(const Module &) = delete;
    Module &operator=(const Module &) = delete;

    /** Advance one clock cycle. */
    virtual void tick() = 0;

    /**
     * @return true when the module has finished all work: inputs drained,
     * outputs flushed and (where applicable) closed.
     */
    virtual bool done() const = 0;

    const std::string &name() const { return name_; }

    StatRegistry &stats() { return stats_; }
    const StatRegistry &stats() const { return stats_; }

  protected:
    /** Record one stall cycle with a reason bucket. */
    void
    countStall(const char *reason)
    {
        stats_.add(std::string("stall.") + reason);
    }

    /** Record one processed flit. */
    void countFlit() { stats_.add("flits"); }

  private:
    std::string name_;
    StatRegistry stats_;
};

} // namespace genesis::sim

#endif // GENESIS_SIM_MODULE_H

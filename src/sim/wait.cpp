#include "sim/wait.h"

#include <algorithm>

#include "base/logging.h"
#include "sim/module.h"
#include "sim/parallel.h"

namespace genesis::sim {

void
WaitList::add(Module *m)
{
    if (tlsCurrentShard != kNoShard && tlsCurrentShard != shard_) {
        panic("cross-shard sleep on '%s' (owner shard %d) from shard %d "
              "during a parallel phase: lanes may only couple through "
              "the memory system",
              name_.c_str(), shard_, tlsCurrentShard);
    }
    if (std::find(waiters_.begin(), waiters_.end(), m) == waiters_.end())
        waiters_.push_back(m);
}

void
WaitList::wakeAll()
{
    if (waiters_.empty())
        return;
    for (Module *m : waiters_)
        m->wake();
    waiters_.clear();
}

} // namespace genesis::sim

#include "sim/wait.h"

#include <algorithm>

#include "sim/module.h"

namespace genesis::sim {

void
WaitList::add(Module *m)
{
    if (std::find(waiters_.begin(), waiters_.end(), m) == waiters_.end())
        waiters_.push_back(m);
}

void
WaitList::wakeAll()
{
    if (waiters_.empty())
        return;
    for (Module *m : waiters_)
        m->wake();
    waiters_.clear();
}

} // namespace genesis::sim

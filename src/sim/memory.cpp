#include "sim/memory.h"

#include <algorithm>

#include "base/logging.h"
#include "sim/parallel.h"

namespace genesis::sim {

namespace {

/** Channel a channel-parallel scan job is restricted to on this thread
 *  (kNoScanChannel outside a scan phase). See ChannelScanGuard. */
constexpr int kNoScanChannel = -1;
thread_local int tlsScanChannel = kNoScanChannel;

} // namespace

MemorySystem::ChannelScanGuard::ChannelScanGuard(int channel)
    : prev_(tlsScanChannel)
{
    tlsScanChannel = channel;
}

MemorySystem::ChannelScanGuard::~ChannelScanGuard()
{
    tlsScanChannel = prev_;
}

bool
MemoryPort::canIssue() const
{
    return pending_.size() < queueDepth_;
}

uint32_t
MemoryPort::accessGranularity() const
{
    return owner_->config().accessGranularity;
}

uint32_t
MemoryPort::checkedAccessGranularity(const char *who) const
{
    uint32_t gran = accessGranularity();
    if (gran == 0 || (gran & (gran - 1)))
        fatal("%s: access granularity %u is not a non-zero power of two",
              who, gran);
    return gran;
}

void
MemoryPort::enqueueSlice(uint64_t addr, uint32_t bytes, bool is_write)
{
    MemorySystem::DramLoc loc = owner_->locate(addr);

    // MSHR-style coalescing: a slice that directly extends the youngest
    // still-unscheduled sub-request (same direction, same channel, same
    // bank and row, contiguous address) joins its burst instead of
    // paying a second access. Typical case: the tail slice of one
    // unaligned streaming request and the head slice of the next fall
    // into the same interleave granule.
    //
    // The MSHR closes a burst entry once it reaches the head of the
    // schedule queue in a cycle after its issue: only deque heads are
    // ever considered by arbitration, so a same-cycle tail or a
    // non-head tail provably cannot have been granted yet, while an
    // aged head may be granted at any tick. Deciding on (position, age)
    // instead of peeking `scheduled` makes the decision a function of
    // port-local state alone — identical whether arbitration runs every
    // cycle (sequential) or is replayed at a window barrier (§4f).
    if (!pending_.empty()) {
        SubRequest &tail = pending_.back();
        bool burst_open = !tail.scheduled &&
            (pending_.size() >= 2 || tail.issueCycle == *issueClock_);
        if (burst_open && tail.isWrite == is_write &&
            tail.channel == loc.channel && tail.bank == loc.bank &&
            tail.row == loc.row && tail.addr + tail.bytes == addr &&
            tail.bytes + bytes <= owner_->config().maxBurstBytes) {
            tail.bytes += bytes;
            if (deferAccounting_)
                ++deferred_.coalesced;
            else
                ++*owner_->coalesced_;
            if (trace_) {
                trace_->asyncInstant(traceTrack_, tail.traceId,
                                     *traceCycle_, stateCoalesce_,
                                     traceArgs("bytes", tail.bytes));
            }
            return;
        }
    }

    SubRequest req;
    req.addr = addr;
    req.bytes = bytes;
    req.isWrite = is_write;
    req.channel = loc.channel;
    req.bank = loc.bank;
    req.row = loc.row;
    req.issueCycle = *issueClock_;
    if (trace_) {
        req.traceId = trace_->newAsyncId();
        trace_->asyncBegin(traceTrack_, req.traceId, *traceCycle_,
                           is_write ? stateWrite_ : stateRead_,
                           traceArgs("addr", addr, "bytes", bytes,
                                     "channel",
                                     static_cast<uint64_t>(loc.channel)));
    }
    pending_.push_back(req);
    if (deferAccounting_) {
        ++deferred_.subRequests;
        ++deferred_.pending;
        ++deferred_.unscheduled;
    } else {
        ++*owner_->subRequests_;
        ++owner_->pendingSubRequests_;
        ++owner_->unscheduledSubRequests_;
    }
}

void
MemoryPort::issue(uint64_t addr, uint32_t bytes, bool is_write)
{
    if (tlsScanChannel != kNoScanChannel) {
        panic("memory port %d: issue() during a channel-parallel scan "
              "phase (the scan is read-only; issues belong to the lane "
              "phase or the control thread)", id_);
    }
    if (tlsCurrentShard != kNoShard && shard_ >= 0 &&
        tlsCurrentShard != shard_) {
        panic("cross-shard memory issue on port %d (owner shard %d) from "
              "shard %d during a parallel phase: lanes may only couple "
              "through their own memory ports", id_, shard_,
              tlsCurrentShard);
    }
    if (!canIssue())
        panic("memory port %d: issue to full queue", id_);
    if (bytes == 0)
        panic("memory port %d: zero-byte request", id_);

    // Split at interleave-granularity boundaries so every slice lands on
    // the channel its own address maps to; the old model timed a whole
    // request on the channel of its first byte.
    const uint64_t gran = owner_->config().accessGranularity;
    uint64_t cur = addr;
    const uint64_t end = addr + bytes;
    while (cur < end) {
        uint64_t granule_end = (cur / gran + 1) * gran;
        uint32_t slice =
            static_cast<uint32_t>(std::min(end, granule_end) - cur);
        enqueueSlice(cur, slice, is_write);
        cur += slice;
    }
    if (deferAccounting_) {
        ++deferred_.requests;
        // With the port bound to a shard (window mode), issue progress
        // must land in the shard's own counter immediately: the control
        // phase reads per-subcycle progress to run its quiet/hang
        // machine, and the deferred drain only happens at the barrier.
        // Stat counters stay staged — only the owning worker touches
        // this port during a parallel phase, and the shard counter is
        // that worker's private accumulator.
        if (directProgress_ && progress_)
            ++*progress_;
        else
            ++deferred_.progress;
    } else {
        ++*owner_->requests_;
        if (progress_)
            ++*progress_;
    }
}

uint64_t
MemoryPort::takeCompletedReadBytes()
{
    uint64_t bytes = completedReadBytes_;
    completedReadBytes_ = 0;
    return bytes;
}

std::vector<std::string>
validate(const MemoryConfig &config)
{
    std::vector<std::string> errors;
    if (config.numChannels < 1) {
        errors.push_back(strfmt("numChannels: need at least one channel "
                                "(got %d)", config.numChannels));
    }
    if (config.bytesPerCyclePerChannel == 0) {
        errors.push_back("bytesPerCyclePerChannel: channel bandwidth "
                         "must be non-zero");
    }
    if (config.accessGranularity == 0 ||
        (config.accessGranularity & (config.accessGranularity - 1))) {
        errors.push_back(strfmt("accessGranularity: %u is not a non-zero "
                                "power of two", config.accessGranularity));
    }
    if (config.banksPerChannel < 1) {
        errors.push_back(strfmt("banksPerChannel: need at least one bank "
                                "per channel (got %d)",
                                config.banksPerChannel));
    }
    // Row/burst constraints are relative to the granularity; only check
    // them when the granularity itself is sane to avoid noise.
    if (config.accessGranularity != 0 &&
        !(config.accessGranularity & (config.accessGranularity - 1))) {
        if (config.rowBytes < config.accessGranularity ||
            config.rowBytes % config.accessGranularity) {
            errors.push_back(strfmt(
                "rowBytes: row size %u must be a non-zero multiple of "
                "the %u B granularity", config.rowBytes,
                config.accessGranularity));
        }
        if (config.maxBurstBytes < config.accessGranularity) {
            errors.push_back(strfmt(
                "maxBurstBytes: max burst %u below the %u B access "
                "granularity", config.maxBurstBytes,
                config.accessGranularity));
        }
    }
    if (config.portQueueDepth == 0) {
        errors.push_back("portQueueDepth: a zero-depth port queue can "
                         "never issue (provable deadlock)");
    }
    return errors;
}

MemorySystem::MemorySystem(const MemoryConfig &config) : config_(config)
{
    std::vector<std::string> errors = validate(config_);
    if (!errors.empty()) {
        std::string joined;
        for (const auto &e : errors)
            joined += (joined.empty() ? "" : "; ") + e;
        fatal("invalid MemoryConfig: %s", joined.c_str());
    }
    if (config_.rowHitLatencyCycles == 0)
        config_.rowHitLatencyCycles = config_.latencyCycles / 2;

    memThreads_ = resolveMemWorkerCount(0, config_.numChannels);
    channelBusyUntil_.assign(static_cast<size_t>(config_.numChannels), 0);
    banks_.assign(static_cast<size_t>(config_.numChannels) *
                      static_cast<size_t>(config_.banksPerChannel),
                  Bank());
    globalArbiters_.assign(static_cast<size_t>(config_.numChannels),
                           RoundRobinArbiter());
    channelBytes_.reserve(static_cast<size_t>(config_.numChannels));
    for (int ch = 0; ch < config_.numChannels; ++ch) {
        channelBytes_.push_back(
            stats_.counter("ch" + std::to_string(ch) + "_bytes"));
    }
}

// Out of line: ~MemorySystem must see the complete SimThreadPool type
// for the unique_ptr member (the header only forward-declares it).
MemorySystem::~MemorySystem() = default;

void
MemorySystem::setMemThreads(int requested)
{
    memThreads_ = resolveMemWorkerCount(requested, config_.numChannels);
}

MemorySystem::DramLoc
MemorySystem::locate(uint64_t addr) const
{
    // Granules interleave round-robin over channels; the channel-local
    // address (granule index within the channel, plus the offset inside
    // the granule) then maps to a row, and consecutive rows interleave
    // over the channel's banks.
    const uint64_t gran = config_.accessGranularity;
    const uint64_t channels = static_cast<uint64_t>(config_.numChannels);
    uint64_t granule = addr / gran;
    uint64_t local = (granule / channels) * gran + (addr % gran);
    uint64_t row = local / config_.rowBytes;
    DramLoc loc;
    loc.channel = static_cast<int>(granule % channels);
    loc.bank = static_cast<int>(
        row % static_cast<uint64_t>(config_.banksPerChannel));
    loc.row = row;
    return loc;
}

MemorySystem::Bank &
MemorySystem::bankAt(int channel, int bank)
{
    if (tlsScanChannel != kNoScanChannel && channel != tlsScanChannel) {
        panic("cross-channel touch: bank state of channel %d accessed "
              "from the channel-parallel scan of channel %d",
              channel, tlsScanChannel);
    }
    return banks_[static_cast<size_t>(channel) *
                      static_cast<size_t>(config_.banksPerChannel) +
                  static_cast<size_t>(bank)];
}

const MemorySystem::Bank &
MemorySystem::bankAt(int channel, int bank) const
{
    if (tlsScanChannel != kNoScanChannel && channel != tlsScanChannel) {
        panic("cross-channel touch: bank state of channel %d accessed "
              "from the channel-parallel scan of channel %d",
              channel, tlsScanChannel);
    }
    return banks_[static_cast<size_t>(channel) *
                      static_cast<size_t>(config_.banksPerChannel) +
                  static_cast<size_t>(bank)];
}

void
MemorySystem::attachProgress(uint64_t *counter)
{
    progress_ = counter;
    for (auto &port : ports_)
        port->progress_ = counter;
}

void
MemorySystem::bindPortScheduling(size_t port, const uint64_t *clock,
                                 uint64_t *progress)
{
    GENESIS_ASSERT(port < ports_.size(), "bind of unknown port");
    MemoryPort &p = *ports_[port];
    p.issueClock_ = clock;
    p.progress_ = progress;
    p.directProgress_ = true;
}

void
MemorySystem::unbindPortScheduling()
{
    for (auto &port : ports_) {
        port->issueClock_ = &cycle_;
        port->progress_ = progress_;
        port->directProgress_ = false;
    }
}

void
MemorySystem::setDeferredAccounting(bool defer)
{
    deferAccounting_ = defer;
    for (auto &port : ports_)
        port->deferAccounting_ = defer;
    if (!defer) {
        // Defensive: a drain normally happened at the last tick(), but
        // never leave staged accounting behind when switching back.
        drainDeferredAccounting();
        retiredPortsLastTick_.clear();
    }
}

void
MemorySystem::drainDeferredAccounting()
{
    for (auto &port : ports_) {
        MemoryPort::DeferredAccounting &d = port->deferred_;
        *requests_ += d.requests;
        *subRequests_ += d.subRequests;
        *coalesced_ += d.coalesced;
        pendingSubRequests_ += static_cast<size_t>(d.pending);
        unscheduledSubRequests_ += static_cast<size_t>(d.unscheduled);
        if (progress_)
            *progress_ += d.progress;
        d = MemoryPort::DeferredAccounting();
    }
}

void
MemorySystem::attachPortTrace(MemoryPort &port)
{
    port.trace_ = trace_;
    port.traceCycle_ = &cycle_;
    port.traceTrack_ = trace_->addAsyncTrack(
        tracePid_, "mem.port" + std::to_string(port.id_));
    port.stateRead_ = trace_->internState("read");
    port.stateWrite_ = trace_->internState("write");
    port.stateCoalesce_ = trace_->internState("coalesce");
}

void
MemorySystem::attachTrace(TraceSink *sink, int pid)
{
    trace_ = sink;
    tracePid_ = pid;
    stateSchedule_ = sink->internState("schedule");
    channelTracks_.clear();
    for (int ch = 0; ch < config_.numChannels; ++ch) {
        channelTracks_.push_back(
            sink->addSpanTrack(pid, "mem.ch" + std::to_string(ch)));
    }
    for (auto &port : ports_)
        attachPortTrace(*port);
}

MemoryPort *
MemorySystem::makePort(int local_group)
{
    if (local_group < 0)
        fatal("negative local arbiter group");
    int id = static_cast<int>(ports_.size());
    auto port =
        std::unique_ptr<MemoryPort>(new MemoryPort(id, local_group, this));
    port->queueDepth_ = config_.portQueueDepth;
    port->progress_ = progress_;
    port->issueClock_ = &cycle_;
    port->deferAccounting_ = deferAccounting_;
    port->retireWaiters_.setName("mem.port" + std::to_string(id) +
                                 " retire");
    if (trace_)
        attachPortTrace(*port);
    ports_.push_back(std::move(port));

    size_t num_groups = static_cast<size_t>(local_group) + 1;
    if (groupPorts_.size() < num_groups) {
        groupPorts_.resize(num_groups);
        localArbiters_.resize(num_groups);
    }
    groupPorts_[static_cast<size_t>(local_group)].push_back(
        static_cast<size_t>(id));
    localArbiters_[static_cast<size_t>(local_group)].resize(
        groupPorts_[static_cast<size_t>(local_group)].size());
    for (auto &arb : globalArbiters_)
        arb.resize(groupPorts_.size());
    return ports_.back().get();
}

uint64_t
MemorySystem::channelBytes(int channel) const
{
    return *channelBytes_[static_cast<size_t>(channel)];
}

void
MemorySystem::tick()
{
    ++cycle_;

    if (deferAccounting_) {
        // Fold the parallel phase's staged issue accounting in before
        // any early-out reads the pending totals; port order keeps the
        // drain deterministic (the sums are order-independent anyway).
        drainDeferredAccounting();
        retiredPortsLastTick_.clear();
    }

    if (pendingSubRequests_ == 0) {
        // Nothing in flight on any port: arbitration, the bank-conflict
        // scan and retirement are all no-ops, and every channel bus is
        // provably free (a request retires no earlier than its channel's
        // transfer window closes, so an empty pending set implies every
        // channelBusyUntil_ has already expired). Accrue the idle stat
        // and return; stats stay bit-identical to the full scan.
        *channelIdleCycles_ += static_cast<uint64_t>(config_.numChannels);
        return;
    }

    if (unscheduledSubRequests_ > 0) {
    // Each local arbiter forwards at most one sub-request per cycle;
    // each channel's global arbiter accepts at most one per cycle.
    groupUsedScratch_.assign(localArbiters_.size(), 0);
    auto &group_used = groupUsedScratch_;
    const size_t num_ports = ports_.size();

    // Phase A (optionally channel-parallel): per-channel eligibility
    // scan. The scan is read-only and each job writes only its own
    // channel's scratch row, so jobs are race-free; using pre-grant
    // state is exact because a grant on channel C mutates only C's bank
    // and bus state plus the granted head (which targets C alone), none
    // of which another channel's flags depend on, and channel C's own
    // flags are consumed before C's grant. Tracing keeps the sequential
    // tick (single-writer sink); so does a single busy channel.
    bool par_scan = memThreads_ > 1 && trace_ == nullptr &&
        config_.numChannels > 1;
    if (par_scan) {
        if (!memPool_ ||
            memPool_->helpers() != memThreads_ - 1) {
            memPool_ =
                std::make_unique<SimThreadPool>(memThreads_ - 1);
        }
        eligScratch_.assign(
            static_cast<size_t>(config_.numChannels) * num_ports, 0);
        conflictScratch_.assign(
            static_cast<size_t>(config_.numChannels), 0);
        memPool_->run(
            static_cast<size_t>(config_.numChannels), [&](size_t ch) {
                ChannelScanGuard guard(static_cast<int>(ch));
                scanChannel(static_cast<int>(ch),
                            eligScratch_.data() + ch * num_ports,
                            &conflictScratch_[ch]);
            });
    }

    // Phase B (serial, fixed channel order): arbitration grants and
    // their state/stat updates.
    for (int ch = 0; ch < config_.numChannels; ++ch) {
        if (channelBusyUntil_[static_cast<size_t>(ch)] > cycle_)
            continue; // data bus still transferring a prior request

        // A group is eligible when one of its ports has a visible (see
        // SubRequest::issueCycle) unscheduled head sub-request destined
        // for this channel whose bank has finished its previous access
        // phase.
        auto port_eligible = [&](size_t group, size_t slot) {
            if (group >= groupPorts_.size() ||
                slot >= groupPorts_[group].size()) {
                return false;
            }
            size_t port_idx = groupPorts_[group][slot];
            if (par_scan) {
                return eligScratch_[static_cast<size_t>(ch) * num_ports +
                                    port_idx] != 0;
            }
            const MemoryPort &p = *ports_[port_idx];
            if (p.pending_.empty())
                return false;
            const auto &head = p.pending_.front();
            return !head.scheduled && head.issueCycle < cycle_ &&
                head.channel == ch &&
                bankAt(ch, head.bank).busyUntil <= cycle_;
        };

        int group = globalArbiters_[static_cast<size_t>(ch)].grant(
            [&](size_t g) {
                if (group_used[g])
                    return false;
                for (size_t s = 0; s < groupPorts_[g].size(); ++s) {
                    if (port_eligible(g, s))
                        return true;
                }
                return false;
            });
        if (group < 0) {
            // Free bus with nothing schedulable: if a head was turned
            // away solely because its bank is mid-access, record the
            // bank conflict (at most once per channel per cycle).
            bool conflict = par_scan
                ? conflictScratch_[static_cast<size_t>(ch)] != 0
                : channelHasBankConflict(ch);
            if (conflict)
                ++*bankConflictCycles_;
            continue;
        }
        group_used[static_cast<size_t>(group)] = 1;

        int slot = localArbiters_[static_cast<size_t>(group)].grant(
            [&](size_t s) {
                return port_eligible(static_cast<size_t>(group), s);
            });
        GENESIS_ASSERT(slot >= 0, "global arbiter granted empty group");

        size_t port_idx =
            groupPorts_[static_cast<size_t>(group)]
                       [static_cast<size_t>(slot)];
        auto &req = ports_[port_idx]->pending_.front();
        Bank &bank = bankAt(ch, req.bank);
        bool row_hit = bank.openRow == req.row;
        uint64_t access_latency = row_hit
            ? config_.rowHitLatencyCycles : config_.latencyCycles;
        uint64_t transfer_cycles =
            (req.bytes + config_.bytesPerCyclePerChannel - 1) /
            config_.bytesPerCyclePerChannel;
        req.scheduled = true;
        --unscheduledSubRequests_;
        req.completeCycle = cycle_ + access_latency + transfer_cycles;
        channelBusyUntil_[static_cast<size_t>(ch)] =
            cycle_ + transfer_cycles;
        bank.openRow = req.row;
        bank.busyUntil = cycle_ + access_latency;

        ++*(row_hit ? rowHits_ : rowMisses_);
        *(req.isWrite ? writeBytes_ : readBytes_) += req.bytes;
        *channelBytes_[static_cast<size_t>(ch)] += req.bytes;
        ++*progress_; // scheduling is architectural progress
        if (trace_) {
            trace_->asyncInstant(
                ports_[port_idx]->traceTrack_, req.traceId, cycle_,
                stateSchedule_,
                traceArgs("channel", static_cast<uint64_t>(ch),
                          "transfer_cycles", transfer_cycles,
                          "row_hit", row_hit ? 1 : 0));
            trace_->span(channelTracks_[static_cast<size_t>(ch)],
                         TraceSink::kStateBusy, cycle_,
                         cycle_ + transfer_cycles);
        }
    }
    } // unscheduledSubRequests_ > 0; with none, every channel grant and
      // the bank-conflict scan (both gated on an unscheduled head) are
      // no-ops, so skipping is bit-identical.

    // Exactly one of busy/idle accrues per channel per cycle, so
    // channel_busy_cycles + channel_idle_cycles == numChannels x cycles
    // holds at every tick boundary (assertStatInvariant). A channel that
    // scheduled this cycle counts as busy from this cycle on.
    for (int ch = 0; ch < config_.numChannels; ++ch) {
        if (channelBusyUntil_[static_cast<size_t>(ch)] > cycle_)
            ++*channelBusyCycles_;
        else
            ++*channelIdleCycles_;
    }

    // Retire completions in issue order per port.
    for (size_t port_i = 0; port_i < ports_.size(); ++port_i) {
        auto &port = ports_[port_i];
        bool retired = false;
        while (!port->pending_.empty()) {
            const auto &head = port->pending_.front();
            if (!head.scheduled || head.completeCycle > cycle_)
                break;
            if (head.isWrite)
                port->retiredWriteBytes_ += head.bytes;
            else
                port->completedReadBytes_ += head.bytes;
            if (trace_) {
                trace_->asyncEnd(port->traceTrack_, head.traceId, cycle_,
                                 head.isWrite ? port->stateWrite_
                                              : port->stateRead_);
            }
            port->pending_.pop_front();
            --pendingSubRequests_;
            ++*progress_; // retiring is architectural progress
            retired = true;
        }
        if (retired) {
            if (deferAccounting_)
                retiredPortsLastTick_.push_back(port_i);
            port->retireWaiters_.wakeAll();
        }
    }
}

uint64_t
MemorySystem::nextEventCycle() const
{
    uint64_t next = kNoEvent;
    auto consider = [&next](uint64_t c) {
        if (c < next)
            next = c;
    };
    // Head completions: the retire loop stops at each port's head, so a
    // port's next retirement happens at its head's completeCycle. An
    // unscheduled head is an event at the first tick that could grant
    // it — it must be visible (issued before the tick's clock) and its
    // channel bus and bank must have expired. A retirement can expose a
    // new unscheduled head after the same tick's scheduling phase ran,
    // so free-resource heads are events at cycle_ + 1, not covered by
    // the expiry scans below. The bound is conservative (the head may
    // still lose arbitration at that tick), which only shortens jumps.
    for (const auto &port : ports_) {
        if (port->pending_.empty())
            continue;
        const auto &head = port->pending_.front();
        if (head.scheduled) {
            consider(std::max(head.completeCycle, cycle_ + 1));
        } else {
            uint64_t grantable = std::max(
                {cycle_ + 1, head.issueCycle + 1,
                 channelBusyUntil_[static_cast<size_t>(head.channel)],
                 bankAt(head.channel, head.bank).busyUntil});
            consider(grantable);
        }
    }
    // Busy channel buses freeing up: enables scheduling of waiting
    // sub-requests and flips the per-cycle busy/idle stat accrual.
    // Bank expiries need no scan of their own: a busy bank is only
    // observable through a blocked front head (grant eligibility and
    // the conflict-stat accrual both test port fronts exclusively), and
    // the grantable bound above already takes the head's bank expiry
    // into account.
    for (uint64_t busy_until : channelBusyUntil_) {
        if (busy_until > cycle_)
            consider(busy_until);
    }
    return next;
}

uint64_t
MemorySystem::nextEventCycle(int channel) const
{
    uint64_t next = kNoEvent;
    auto consider = [&next](uint64_t c) {
        if (c < next)
            next = c;
    };
    for (const auto &port : ports_) {
        if (port->pending_.empty())
            continue;
        const auto &head = port->pending_.front();
        if (head.channel != channel)
            continue;
        if (head.scheduled) {
            consider(std::max(head.completeCycle, cycle_ + 1));
        } else {
            uint64_t grantable = std::max(
                {cycle_ + 1, head.issueCycle + 1,
                 channelBusyUntil_[static_cast<size_t>(channel)],
                 bankAt(channel, head.bank).busyUntil});
            consider(grantable);
        }
    }
    if (channelBusyUntil_[static_cast<size_t>(channel)] > cycle_)
        consider(channelBusyUntil_[static_cast<size_t>(channel)]);
    return next;
}

uint64_t
MemorySystem::earliestRetireCycle() const
{
    uint64_t next = kNoEvent;
    for (const auto &port : ports_) {
        if (port->pending_.empty())
            continue;
        const auto &head = port->pending_.front();
        if (head.scheduled &&
            std::max(head.completeCycle, cycle_ + 1) < next)
            next = std::max(head.completeCycle, cycle_ + 1);
    }
    return next;
}

void
MemorySystem::tickQuiet(uint64_t cycles)
{
    if (cycles == 0)
        return;
    if (trace_ != nullptr || deferAccounting_) {
        // Tracing wants real per-cycle records and deferred mode wants
        // the drain/retired-port bookkeeping; the plain loop provides
        // both exactly.
        for (uint64_t i = 0; i < cycles; ++i)
            tick();
        return;
    }
    if (pendingSubRequests_ == 0) {
        // Matches tick()'s empty-system early-out, n times.
        cycle_ += cycles;
        *channelIdleCycles_ +=
            static_cast<uint64_t>(config_.numChannels) * cycles;
        return;
    }
    // The caller proved (via nextEventCycle()) that no event lands in
    // (cycle_, cycle_ + cycles]: no head completes, no bus frees, no
    // bank finishes. Every per-tick accrual condition is therefore
    // constant across the span — a bus is busy for all of it or none of
    // it, likewise each bank — so evaluating each condition once at the
    // first skipped tick and crediting it `cycles` times is bit-exact.
    // Arbitration is also a no-op on arbiter state: the post-tick
    // invariant says any unscheduled head is blocked on a bus or bank
    // whose expiry would be an event, and a grant() that finds no
    // eligible requester leaves the round-robin pointer untouched.
    GENESIS_ASSERT(nextEventCycle() > cycle_ + cycles,
                   "tickQuiet span is not event-free");
    const uint64_t t = cycle_ + 1;
    uint64_t busy_channels = 0;
    uint64_t conflict_channels = 0;
    for (int ch = 0; ch < config_.numChannels; ++ch) {
        if (channelBusyUntil_[static_cast<size_t>(ch)] > t) {
            ++busy_channels;
            continue;
        }
        if (unscheduledSubRequests_ > 0 && channelHasBankConflictAt(ch, t))
            ++conflict_channels;
    }
    // nextEventCycle() reports unscheduled heads at their earliest
    // grantable cycle, so a span it proved quiet can hold no head that
    // could be scheduled inside it; re-check that directly as a cheap
    // second line of defence.
    for (const auto &port : ports_) {
        if (port->pending_.empty())
            continue;
        const auto &head = port->pending_.front();
        GENESIS_ASSERT(
            head.scheduled ||
                channelBusyUntil_[static_cast<size_t>(head.channel)] > t ||
                bankAt(head.channel, head.bank).busyUntil > t,
            "tickQuiet span covers a schedulable head (issue without an "
            "intervening tick?)");
    }
    cycle_ += cycles;
    *channelBusyCycles_ += busy_channels * cycles;
    *channelIdleCycles_ +=
        (static_cast<uint64_t>(config_.numChannels) - busy_channels) *
        cycles;
    *bankConflictCycles_ += conflict_channels * cycles;
}

bool
MemorySystem::channelHasBankConflict(int ch) const
{
    return channelHasBankConflictAt(ch, cycle_);
}

bool
MemorySystem::channelHasBankConflictAt(int ch, uint64_t at) const
{
    for (const auto &p : ports_) {
        if (p->pending_.empty())
            continue;
        const auto &head = p->pending_.front();
        if (!head.scheduled && head.issueCycle < at &&
            head.channel == ch && bankAt(ch, head.bank).busyUntil > at) {
            return true;
        }
    }
    return false;
}

void
MemorySystem::scanChannel(int ch, char *elig, char *conflict) const
{
    // Busy data bus: the serial grant loop skips this channel before
    // reading any flag, so leave the zeroed row as-is.
    if (channelBusyUntil_[static_cast<size_t>(ch)] > cycle_)
        return;
    for (size_t i = 0; i < ports_.size(); ++i) {
        const MemoryPort &p = *ports_[i];
        if (p.pending_.empty())
            continue;
        const auto &head = p.pending_.front();
        if (head.scheduled || head.issueCycle >= cycle_ ||
            head.channel != ch) {
            continue;
        }
        if (bankAt(ch, head.bank).busyUntil <= cycle_)
            elig[i] = 1;
        else
            *conflict = 1;
    }
}

void
MemorySystem::assertStatInvariant() const
{
    uint64_t busy = stats_.get("channel_busy_cycles");
    uint64_t idle = stats_.get("channel_idle_cycles");
    uint64_t expect =
        static_cast<uint64_t>(config_.numChannels) * cycle_;
    GENESIS_ASSERT(busy + idle == expect,
                   "channel stat drift: busy %llu + idle %llu != "
                   "%d channels x %llu cycles",
                   static_cast<unsigned long long>(busy),
                   static_cast<unsigned long long>(idle),
                   config_.numChannels,
                   static_cast<unsigned long long>(cycle_));
}

bool
MemorySystem::idle() const
{
    for (const auto &port : ports_) {
        if (!port->idle())
            return false;
    }
    return true;
}

} // namespace genesis::sim

#include "sim/memory.h"

#include "base/logging.h"

namespace genesis::sim {

bool
MemoryPort::canIssue() const
{
    return pending_.size() < queueDepth_;
}

void
MemoryPort::issue(uint64_t addr, uint32_t bytes, bool is_write)
{
    if (!canIssue())
        panic("memory port %d: issue to full queue", id_);
    if (bytes == 0)
        panic("memory port %d: zero-byte request", id_);
    Request req;
    req.addr = addr;
    req.bytes = bytes;
    req.isWrite = is_write;
    if (trace_) {
        req.traceId = trace_->newAsyncId();
        trace_->asyncBegin(traceTrack_, req.traceId, *traceCycle_,
                           is_write ? stateWrite_ : stateRead_,
                           traceArgs("addr", addr, "bytes", bytes));
    }
    pending_.push_back(req);
    if (progress_)
        ++*progress_;
}

uint64_t
MemoryPort::takeCompletedReadBytes()
{
    uint64_t bytes = completedReadBytes_;
    completedReadBytes_ = 0;
    return bytes;
}

MemorySystem::MemorySystem(const MemoryConfig &config) : config_(config)
{
    if (config_.numChannels < 1)
        fatal("memory system needs at least one channel");
    if (config_.bytesPerCyclePerChannel == 0)
        fatal("channel bandwidth must be non-zero");
    channelBusyUntil_.assign(static_cast<size_t>(config_.numChannels), 0);
    globalArbiters_.assign(static_cast<size_t>(config_.numChannels),
                           RoundRobinArbiter());
}

void
MemorySystem::attachProgress(uint64_t *counter)
{
    progress_ = counter;
    for (auto &port : ports_)
        port->progress_ = counter;
}

void
MemorySystem::attachPortTrace(MemoryPort &port)
{
    port.trace_ = trace_;
    port.traceCycle_ = &cycle_;
    port.traceTrack_ = trace_->addAsyncTrack(
        tracePid_, "mem.port" + std::to_string(port.id_));
    port.stateRead_ = trace_->internState("read");
    port.stateWrite_ = trace_->internState("write");
}

void
MemorySystem::attachTrace(TraceSink *sink, int pid)
{
    trace_ = sink;
    tracePid_ = pid;
    stateSchedule_ = sink->internState("schedule");
    channelTracks_.clear();
    for (int ch = 0; ch < config_.numChannels; ++ch) {
        channelTracks_.push_back(
            sink->addSpanTrack(pid, "mem.ch" + std::to_string(ch)));
    }
    for (auto &port : ports_)
        attachPortTrace(*port);
}

MemoryPort *
MemorySystem::makePort(int local_group)
{
    if (local_group < 0)
        fatal("negative local arbiter group");
    int id = static_cast<int>(ports_.size());
    auto port =
        std::unique_ptr<MemoryPort>(new MemoryPort(id, local_group));
    port->queueDepth_ = config_.portQueueDepth;
    port->progress_ = progress_;
    if (trace_)
        attachPortTrace(*port);
    ports_.push_back(std::move(port));

    size_t num_groups = static_cast<size_t>(local_group) + 1;
    if (groupPorts_.size() < num_groups) {
        groupPorts_.resize(num_groups);
        localArbiters_.resize(num_groups);
    }
    groupPorts_[static_cast<size_t>(local_group)].push_back(
        static_cast<size_t>(id));
    localArbiters_[static_cast<size_t>(local_group)].resize(
        groupPorts_[static_cast<size_t>(local_group)].size());
    for (auto &arb : globalArbiters_)
        arb.resize(groupPorts_.size());
    return ports_.back().get();
}

int
MemorySystem::channelOf(uint64_t addr) const
{
    return static_cast<int>((addr / config_.accessGranularity) %
                            static_cast<uint64_t>(config_.numChannels));
}

void
MemorySystem::tick()
{
    ++cycle_;

    // Each local arbiter forwards at most one request per cycle; each
    // channel's global arbiter accepts at most one request per cycle.
    groupUsedScratch_.assign(localArbiters_.size(), 0);
    auto &group_used = groupUsedScratch_;

    for (int ch = 0; ch < config_.numChannels; ++ch) {
        if (channelBusyUntil_[static_cast<size_t>(ch)] > cycle_)
            continue; // data bus still transferring a prior request

        // A group is eligible when one of its ports has an unscheduled
        // head request destined for this channel.
        auto port_eligible = [&](size_t group, size_t slot) {
            if (group >= groupPorts_.size() ||
                slot >= groupPorts_[group].size()) {
                return false;
            }
            const MemoryPort &p = *ports_[groupPorts_[group][slot]];
            if (p.pending_.empty())
                return false;
            const auto &head = p.pending_.front();
            return !head.scheduled && channelOf(head.addr) == ch;
        };

        int group = globalArbiters_[static_cast<size_t>(ch)].grant(
            [&](size_t g) {
                if (group_used[g])
                    return false;
                for (size_t s = 0; s < groupPorts_[g].size(); ++s) {
                    if (port_eligible(g, s))
                        return true;
                }
                return false;
            });
        if (group < 0) {
            ++*channelIdleCycles_;
            continue;
        }
        group_used[static_cast<size_t>(group)] = 1;

        int slot = localArbiters_[static_cast<size_t>(group)].grant(
            [&](size_t s) {
                return port_eligible(static_cast<size_t>(group), s);
            });
        GENESIS_ASSERT(slot >= 0, "global arbiter granted empty group");

        size_t port_idx =
            groupPorts_[static_cast<size_t>(group)]
                       [static_cast<size_t>(slot)];
        auto &req = ports_[port_idx]->pending_.front();
        uint64_t transfer_cycles =
            (req.bytes + config_.bytesPerCyclePerChannel - 1) /
            config_.bytesPerCyclePerChannel;
        req.scheduled = true;
        req.completeCycle = cycle_ + config_.latencyCycles +
            transfer_cycles;
        channelBusyUntil_[static_cast<size_t>(ch)] =
            cycle_ + transfer_cycles;

        ++*requests_;
        *(req.isWrite ? writeBytes_ : readBytes_) += req.bytes;
        *channelBusyCycles_ += transfer_cycles;
        ++*progress_; // scheduling is architectural progress
        if (trace_) {
            trace_->asyncInstant(
                ports_[port_idx]->traceTrack_, req.traceId, cycle_,
                stateSchedule_,
                traceArgs("channel", static_cast<uint64_t>(ch),
                          "transfer_cycles", transfer_cycles));
            trace_->span(channelTracks_[static_cast<size_t>(ch)],
                         TraceSink::kStateBusy, cycle_,
                         cycle_ + transfer_cycles);
        }
    }

    // Retire completions in issue order per port.
    for (auto &port : ports_) {
        while (!port->pending_.empty()) {
            const auto &head = port->pending_.front();
            if (!head.scheduled || head.completeCycle > cycle_)
                break;
            if (head.isWrite)
                port->retiredWriteBytes_ += head.bytes;
            else
                port->completedReadBytes_ += head.bytes;
            if (trace_) {
                trace_->asyncEnd(port->traceTrack_, head.traceId, cycle_,
                                 head.isWrite ? port->stateWrite_
                                              : port->stateRead_);
            }
            port->pending_.pop_front();
            ++*progress_; // retiring is architectural progress
        }
    }
}

uint64_t
MemorySystem::nextEventCycle() const
{
    uint64_t next = kNoEvent;
    auto consider = [&next](uint64_t c) {
        if (c < next)
            next = c;
    };
    // Head completions: the retire loop stops at each port's head, so a
    // port's next retirement happens at its head's completeCycle. An
    // unscheduled head waits for its channel to free, which the
    // channel-expiry scan below covers (a free channel with an eligible
    // head never survives a tick unscheduled).
    for (const auto &port : ports_) {
        if (port->pending_.empty())
            continue;
        const auto &head = port->pending_.front();
        if (head.scheduled)
            consider(std::max(head.completeCycle, cycle_ + 1));
    }
    // Busy channels freeing up: enables scheduling of waiting requests
    // and changes the per-cycle idle-stat accrual.
    for (uint64_t busy_until : channelBusyUntil_) {
        if (busy_until > cycle_)
            consider(busy_until);
    }
    return next;
}

bool
MemorySystem::idle() const
{
    for (const auto &port : ports_) {
        if (!port->idle())
            return false;
    }
    return true;
}

} // namespace genesis::sim

/**
 * @file
 * The cycle-driven simulator that owns and advances a dataflow design.
 *
 * A Simulator owns the hardware queues, scratchpads, modules and the
 * memory system of one accelerator configuration (one or many parallel
 * pipelines). run() ticks every module each cycle, commits every queue,
 * and advances the memory system until all modules report done.
 */

#ifndef GENESIS_SIM_SCHEDULER_H
#define GENESIS_SIM_SCHEDULER_H

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "sim/memory.h"
#include "sim/module.h"
#include "sim/parallel.h"
#include "sim/queue.h"
#include "sim/spm.h"

namespace genesis::sim {

/**
 * Owns and runs one simulated accelerator design.
 *
 * The hot loop keeps per-cycle cost proportional to activity, not design
 * size:
 *  - a monotonic progress counter (bumped by queue commits, memory
 *    issue/schedule/retire, and Module::noteProgress) replaces the old
 *    per-cycle state fingerprint for deadlock detection;
 *  - step() commits only queues that staged an operation this cycle;
 *  - step() ticks only the active set: a module whose tick made no
 *    progress declares what it is blocked on (sleepOn) and is parked
 *    until the blocking resource — a queue commit, a memory-port
 *    retirement, an SPM hazard release — wakes it, with the slept span
 *    credited to its stall bucket and trace span on wake. Modules whose
 *    done() latched are retired from the set outright, and allDone() is
 *    a counter compare instead of an O(modules) scan. Set
 *    GENESIS_SIM_NO_SLEEP=1 to disable sleeping (escape hatch;
 *    simulated results are identical either way);
 *  - runs of provably idle cycles (every module stalled or asleep, the
 *    memory system waiting on a completion) are fast-forwarded to the
 *    next memory event, with the skipped cycles' stall/idle statistics
 *    credited in bulk so all counters stay bit-identical to a
 *    cycle-by-cycle run. Set GENESIS_SIM_NO_FASTFORWARD=1 to disable
 *    the fast-forward (escape hatch; simulated results are identical
 *    either way).
 *
 * Sleeping also sharpens deadlock detection: an empty active set with
 * no pending memory event is a provable deadlock — nothing can ever
 * fire a wake — and is reported immediately instead of after the
 * multi-thousand-cycle quiet horizon.
 *
 * Parallel execution (DESIGN.md §4e): when a design has two or more
 * populated pipeline-lane shards and the resolved thread policy grants
 * more than one worker (RuntimeConfig::simThreads / GENESIS_SIM_THREADS;
 * GENESIS_SIM_NO_THREADS=1 forces one), run() shards the cycle loop by
 * lane: each worker ticks one shard's active set and commits that
 * shard's dirty queues, then a barrier hands control to a single thread
 * for the memory tick, cross-shard wake delivery and every scheduling
 * decision (deadlock, fast-forward, completion). Cycles, statistics and
 * traces are bit-identical to the sequential scheduler for any thread
 * count. Attaching a trace forces the sequential scheduler (the
 * TraceSink is single-writer, DESIGN.md §7).
 */
class Simulator
{
  public:
    explicit Simulator(const MemoryConfig &mem_config = MemoryConfig());

    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** Create a queue owned by the simulator. */
    HardwareQueue *makeQueue(const std::string &name,
                             size_t capacity = HardwareQueue::
                                 kDefaultCapacity);

    /** Create a scratchpad owned by the simulator. */
    Scratchpad *makeScratchpad(const std::string &name, size_t size_words,
                               uint32_t word_bytes = 8);

    /**
     * Create a memory port in `local_group`'s arbiter group, stamped
     * with the current build lane's shard (PipelineBuilder routes port
     * creation through here so the parallel scheduler knows which lane a
     * retirement can affect). memory().makePort() remains valid for
     * lane-unaffiliated ports.
     */
    MemoryPort *makePort(int local_group = 0);

    /**
     * Scoped build lane: components created while a scope is open belong
     * to that pipeline lane's shard (shard = lane + 1; components built
     * outside any scope fall into shard 0). PipelineBuilder opens one
     * around every component it creates.
     */
    class LaneScope
    {
      public:
        LaneScope(Simulator &sim, int lane)
            : sim_(sim), prev_(sim.buildLane_)
        {
            sim_.buildLane_ = lane;
        }
        ~LaneScope() { sim_.buildLane_ = prev_; }

        LaneScope(const LaneScope &) = delete;
        LaneScope &operator=(const LaneScope &) = delete;

      private:
        Simulator &sim_;
        int prev_;
    };

    /** Shard components created right now would land in. */
    int currentShard() const
    {
        return buildLane_ < 0 ? 0 : buildLane_ + 1;
    }

    /**
     * Configure how many worker threads run() may use (0 = auto). The
     * GENESIS_SIM_THREADS / GENESIS_SIM_NO_THREADS environment variables
     * override it at run() time; see sim/parallel.h for the full
     * budget-resolution policy.
     */
    void setThreadPolicy(const ThreadPolicy &policy)
    {
        threadPolicy_ = policy;
    }
    const ThreadPolicy &threadPolicy() const { return threadPolicy_; }

    /** Worker threads the last run() actually used (1 = sequential). */
    int lastRunWorkers() const { return lastRunWorkers_; }

    /**
     * Configure the lookahead-window cap for parallel runs (DESIGN.md
     * §4f): when the control phase can prove the memory system stays
     * quiet for k cycles, lane shards tick up to min(k, cap) cycles
     * between barriers. 0 = auto (the built-in default), 1 = windows off
     * (every barrier covers one cycle, the pre-window behavior). The
     * GENESIS_SIM_WINDOW environment variable overrides it at run()
     * time. Simulated cycles, statistics and traces are bit-identical at
     * any value; sequential runs ignore it.
     */
    void setWindowPolicy(int window) { windowRequest_ = window; }

    /** Resolved window cap of the last run() (1 = windows off). */
    uint64_t lastRunWindowLimit() const { return windowLimit_; }

    /** Take ownership of a module; returns a borrowed pointer. */
    template <typename T>
    T *
    addModule(std::unique_ptr<T> module)
    {
        T *raw = module.get();
        raw->attachProgress(&progress_);
        raw->attachScheduler(&cycle_, &woken_, sleepEnabled_);
        raw->setSchedIndex(modules_.size());
        raw->setShard(currentShard());
        noteComponentShard(raw->shard(), /*is_module=*/true);
        if (trace_)
            raw->attachTrace(trace_, &cycle_, tracePid_);
        modules_.push_back(std::move(module));
        if (raw->done()) {
            // Done at construction (e.g. a source built with no work):
            // latch immediately so it never enters the active set.
            raw->setSchedDone(true);
            ++doneCount_;
        } else {
            raw->setSchedActive(true);
            active_.push_back(raw);
        }
        return raw;
    }

    /** Construct a module in place. */
    template <typename T, typename... Args>
    T *
    make(Args &&...args)
    {
        return addModule(std::make_unique<T>(std::forward<Args>(args)...));
    }

    MemorySystem &memory() { return memory_; }
    const MemorySystem &memory() const { return memory_; }

    uint64_t cycle() const { return cycle_; }

    /** @return true when every module reports done. */
    bool allDone() const;

    /**
     * True once run() has returned, published with release/acquire
     * ordering so a host thread may poll it while a worker thread
     * advances the simulation (the check_genesis path). Every other
     * accessor of this class is single-writer: only the thread running
     * run()/step() may touch the simulator until it is joined.
     */
    bool finished() const
    {
        return finished_.load(std::memory_order_acquire);
    }

    /**
     * Cycle count published together with finished(): the total cycles
     * simulated when run() last returned. Safe to read cross-thread
     * once finished() is true.
     */
    uint64_t finishedCycle() const
    {
        return finishedCycle_.load(std::memory_order_acquire);
    }

    /**
     * Run until all modules are done.
     * @param max_cycles hard cap; exceeding it panics (runaway design)
     * @return total cycles simulated across all run() calls
     */
    uint64_t run(uint64_t max_cycles = 1'000'000'000);

    /** Tick exactly one cycle (for fine-grained tests). */
    void step();

    /** Aggregate all module/queue/memory statistics into one registry. */
    StatRegistry collectStats() const;

    const std::vector<std::unique_ptr<Module>> &modules() const
    {
        return modules_;
    }

    /**
     * Monotonic count of architectural events (queue commits, memory
     * issue/schedule/retire, module noteProgress). Constant across a
     * cycle means the design made no progress that cycle.
     */
    uint64_t progress() const { return progress_; }

    /**
     * Start recording this design's activity into `sink` as one trace
     * process named `label`: a span track per module, a counter track
     * per queue and scratchpad, async request lifetimes per memory port
     * and busy spans per channel. Covers existing and subsequently
     * created components, and composes with the idle-cycle fast-forward
     * (skipped spans are credited in bulk). The sink must outlive the
     * simulator; tracing never changes simulated cycles or statistics.
     */
    void attachTrace(TraceSink *sink, const std::string &label);

    /** @return the attached sink (null when tracing is disabled). */
    TraceSink *trace() { return trace_; }

  private:
    /**
     * One pipeline lane's slice of the scheduler state while run() is
     * parallel (see splitShards): the lane's active list, its staged
     * wakes and dirty queues, and the progress/done deltas its worker
     * accumulates for the barrier reduction. Cache-line aligned so two
     * workers never false-share their hot counters.
     */
    struct alignas(64) Shard {
        /** Modules ticked by this shard's worker, in schedIndex order. */
        std::vector<Module *> active;
        /** Wakes staged for this shard: by its own worker during the
         *  parallel phase, by the control thread (memory retirements)
         *  during the serialized phase. */
        std::vector<Module *> woken;
        /** Scratch for the active/woken order-preserving merge. */
        std::vector<Module *> mergeScratch;
        /** Queues of this shard with operations staged this cycle. */
        std::vector<HardwareQueue *> dirtyQueues;
        /** Progress events this cycle (reduced at the barrier). */
        uint64_t progress = 0;
        /** Modules newly latched done (reduced at the barrier). */
        size_t doneDelta = 0;
        /** This shard's view of the simulator clock. Modules and memory
         *  ports of the shard read it (stall spans, issue stamps), so
         *  during a lookahead window the worker advances it one subcycle
         *  at a time while the global cycle_ waits at the barrier. */
        uint64_t cycle = 0;
        /** Cumulative shard progress after each window subcycle (the
         *  control phase differences them into per-cycle deltas). */
        std::vector<uint64_t> progressBySub;
        /** 1 when the shard's active list was empty after the subcycle
         *  (the control phase truncates the window at the first subcycle
         *  where every shard reports empty, keeping the provable-deadlock
         *  probe on the exact sequential cycle). */
        std::vector<char> emptyBySub;
    };

    /** Latch a freshly-done module (advances the allDone() count). */
    void
    maybeLatchDone(Module *m)
    {
        if (!m->schedDone() && m->done()) {
            m->setSchedDone(true);
            ++doneCount_;
        }
    }

    /** Drop asleep/done modules from active_, merge woken_ back in
     *  (tick order preserved), and latch newly-done modules. */
    void updateActiveSet();

    /** Record a component's shard for worker sizing / shard layout. */
    void noteComponentShard(int shard, bool is_module);

    /** Shards that own at least one module. */
    int populatedShards() const;

    /** Partition the scheduler state into per-lane shards and re-point
     *  every module/queue at its shard's counters. */
    void splitShards();

    /** Undo splitShards: fold shard state back into the sequential
     *  single-list view (active list re-sorted by schedIndex). */
    void restoreShards();

    /** The body of run(): the sequential loop, with step()/active-set
     *  probes dispatched to the parallel variants when `parallel`. */
    uint64_t runLoop(uint64_t max_cycles, bool parallel);

    /** Parallel-phase tick + barrier + serialized control phase. */
    void stepParallel();

    /** Per-shard half of updateActiveSet(): latch done() on the ticked
     *  modules and compact asleep/done entries out of the active list.
     *  Newly latched modules are counted into *done_accum (the shard
     *  delta on workers, doneCount_ on the control thread). */
    static void latchAndCompact(Shard &sh, size_t *done_accum);

    /** Re-run latchAndCompact for the shards whose ports retired a
     *  sub-request in the memory tick just executed: a retirement is the
     *  only post-barrier event that can flip a lane module's done(). */
    void rescanRetiredShards();

    /** Per-shard second half of updateActiveSet(): merge the shard's
     *  woken modules back into its active list (schedIndex order).
     *  Static like latchAndCompact so window subcycles may run it on the
     *  shard's worker; newly latched modules count into *done_accum (the
     *  shard delta on workers, doneCount_ on the control thread). */
    static void mergeShardWoken(Shard &sh, size_t *done_accum);

    /**
     * One barrier-amortized parallel step covering up to `window`
     * consecutive cycles (DESIGN.md §4f). Workers tick their shard's
     * modules for every subcycle back-to-back — legal because the window
     * was sized so the memory system cannot retire anything before its
     * last cycle, so nothing a lane module can observe changes mid-window
     * — then the control phase replays the deferred memory ticks
     * cycle-by-cycle and truncates at the first subcycle after which
     * every shard went empty. @return cycles actually covered (>= 1);
     * per-cycle progress deltas land in windowDeltas_[0..effective).
     */
    uint64_t stepParallelWindow(uint64_t window);

    /**
     * Largest window the next parallel step may cover while staying
     * bit-identical and panic-exact: capped by the configured limit, the
     * earliest possible retirement (pre-scheduled heads via
     * earliestRetireCycle(), hypothetical new grants via the row-hit
     * latency), the runaway-cycle cap, and the deadlock horizon.
     */
    uint64_t chooseWindow(uint64_t max_cycles, uint64_t deadlock_horizon,
                          uint64_t quiet_cycles) const;

    /** @return true when no shard (or the sequential list) has an
     *  active module (the provable-deadlock probe). */
    bool noModuleActive(bool parallel) const;

    /** Snapshot all stat registries (modules, memory, scratchpads). */
    void snapshotStats();

    /** Credit `times` repeats of the deltas since snapshotStats(). */
    void creditSkippedCycles(uint64_t times);

    /** Render queue/module/memory state for deadlock diagnostics. */
    std::string dumpState() const;

    MemorySystem memory_;
    std::vector<std::unique_ptr<HardwareQueue>> queues_;
    std::vector<std::unique_ptr<Scratchpad>> scratchpads_;
    std::vector<std::unique_ptr<Module>> modules_;
    uint64_t cycle_ = 0;
    /** See progress(). */
    uint64_t progress_ = 0;
    /** Completion flag published by run() (see finished()). */
    std::atomic<bool> finished_{false};
    /** Cycle count published by run() (see finishedCycle()). */
    std::atomic<uint64_t> finishedCycle_{0};
    /** Queues with operations staged this cycle (commit work list). */
    std::vector<HardwareQueue *> dirtyQueues_;
    /** Modules ticked each cycle: neither asleep nor done, in tick
     *  (= insertion) order. The rest of modules_ is parked. */
    std::vector<Module *> active_;
    /** Modules woken this cycle by a WaitList; merged back into
     *  active_ at end of step(). */
    std::vector<Module *> woken_;
    /** Scratch buffer for the active/woken order-preserving merge. */
    std::vector<Module *> mergeScratch_;
    /** Modules with done() latched; allDone() compares against
     *  modules_.size() instead of scanning. */
    size_t doneCount_ = 0;
    /** GENESIS_SIM_NO_SLEEP escape hatch (read at construction). */
    bool sleepEnabled_ = true;
    /** GENESIS_SIM_NO_FASTFORWARD escape hatch (read at construction). */
    bool fastForwardEnabled_ = true;
    /** Scratch buffers for idle-cycle stat sampling. */
    std::vector<StatRegistry> statSnapshots_;
    /** Tracing attachment (null = disabled; see attachTrace). */
    TraceSink *trace_ = nullptr;
    int tracePid_ = -1;
    /** Lane being built (set by LaneScope; -1 = unaffiliated). */
    int buildLane_ = -1;
    /** Per-shard module counts (index = shard id; sizes the split). */
    std::vector<uint32_t> shardModuleCounts_;
    /** Shards any component (module/queue/port) has been stamped with. */
    size_t shardCount_ = 1;
    /** Shard of each memory port by port id (-1 = created outside
     *  Simulator::makePort; forces a conservative full rescan). */
    std::vector<int> portShards_;
    /** Worker-thread request (see setThreadPolicy). */
    ThreadPolicy threadPolicy_;
    /** Workers the last run() used (see lastRunWorkers). */
    int lastRunWorkers_ = 1;
    /** Lookahead-window request (see setWindowPolicy; 0 = auto). */
    int windowRequest_ = 0;
    /** Resolved per-run window cap (1 = windows off). */
    uint64_t windowLimit_ = 1;
    /** True while shards are split AND every memory port has a known
     *  lane shard, so port issue clocks/progress could be bound to their
     *  shards (splitShards). A port created behind the Simulator's back
     *  has unknown affinity and forces single-cycle barriers. */
    bool windowCapable_ = false;
    /** Per-cycle progress deltas of the last stepParallelWindow. */
    std::vector<uint64_t> windowDeltas_;
    /** Per-lane scheduler state while run() is parallel (empty when
     *  sequential; unique_ptr keeps shard addresses stable). */
    std::vector<std::unique_ptr<Shard>> shards_;
    /** Scratch flags for rescanRetiredShards. */
    std::vector<char> rescanMarks_;
    /** Persistent worker pool (created on first parallel run). */
    std::unique_ptr<SimThreadPool> pool_;
};

} // namespace genesis::sim

#endif // GENESIS_SIM_SCHEDULER_H

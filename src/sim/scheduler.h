/**
 * @file
 * The cycle-driven simulator that owns and advances a dataflow design.
 *
 * A Simulator owns the hardware queues, scratchpads, modules and the
 * memory system of one accelerator configuration (one or many parallel
 * pipelines). run() ticks every module each cycle, commits every queue,
 * and advances the memory system until all modules report done.
 */

#ifndef GENESIS_SIM_SCHEDULER_H
#define GENESIS_SIM_SCHEDULER_H

#include <memory>
#include <string>
#include <vector>

#include "sim/memory.h"
#include "sim/module.h"
#include "sim/queue.h"
#include "sim/spm.h"

namespace genesis::sim {

/** Owns and runs one simulated accelerator design. */
class Simulator
{
  public:
    explicit Simulator(const MemoryConfig &mem_config = MemoryConfig());

    /** Create a queue owned by the simulator. */
    HardwareQueue *makeQueue(const std::string &name,
                             size_t capacity = HardwareQueue::
                                 kDefaultCapacity);

    /** Create a scratchpad owned by the simulator. */
    Scratchpad *makeScratchpad(const std::string &name, size_t size_words,
                               uint32_t word_bytes = 8);

    /** Take ownership of a module; returns a borrowed pointer. */
    template <typename T>
    T *
    addModule(std::unique_ptr<T> module)
    {
        T *raw = module.get();
        modules_.push_back(std::move(module));
        return raw;
    }

    /** Construct a module in place. */
    template <typename T, typename... Args>
    T *
    make(Args &&...args)
    {
        return addModule(std::make_unique<T>(std::forward<Args>(args)...));
    }

    MemorySystem &memory() { return memory_; }
    const MemorySystem &memory() const { return memory_; }

    uint64_t cycle() const { return cycle_; }

    /** @return true when every module reports done. */
    bool allDone() const;

    /**
     * Run until all modules are done.
     * @param max_cycles hard cap; exceeding it panics (runaway design)
     * @return total cycles simulated across all run() calls
     */
    uint64_t run(uint64_t max_cycles = 1'000'000'000);

    /** Tick exactly one cycle (for fine-grained tests). */
    void step();

    /** Aggregate all module/queue/memory statistics into one registry. */
    StatRegistry collectStats() const;

    const std::vector<std::unique_ptr<Module>> &modules() const
    {
        return modules_;
    }

  private:
    /** @return a fingerprint of architectural state for deadlock checks. */
    uint64_t stateFingerprint() const;

    /** Render queue/module state for deadlock diagnostics. */
    std::string dumpState() const;

    MemorySystem memory_;
    std::vector<std::unique_ptr<HardwareQueue>> queues_;
    std::vector<std::unique_ptr<Scratchpad>> scratchpads_;
    std::vector<std::unique_ptr<Module>> modules_;
    uint64_t cycle_ = 0;
};

} // namespace genesis::sim

#endif // GENESIS_SIM_SCHEDULER_H

/**
 * @file
 * Bounded hardware queue connecting two dataflow modules.
 *
 * Two-phase semantics make the simulation deterministic regardless of
 * module tick order: pushes, pops and closes performed during a cycle are
 * staged and only become visible after commit() — exactly like a queue
 * with registered occupancy in RTL. Throughput is one push and one pop
 * per cycle.
 */

#ifndef GENESIS_SIM_QUEUE_H
#define GENESIS_SIM_QUEUE_H

#include <deque>
#include <string>
#include <vector>

#include "base/trace.h"
#include "sim/flit.h"
#include "sim/parallel.h"
#include "sim/wait.h"

namespace genesis::sim {

/** A single-producer single-consumer bounded flit queue. */
class HardwareQueue
{
  public:
    /** Default queue depth used throughout the hardware library. */
    static constexpr size_t kDefaultCapacity = 8;

    explicit HardwareQueue(std::string name,
                           size_t capacity = kDefaultCapacity);

    const std::string &name() const { return name_; }
    size_t capacity() const { return capacity_; }
    size_t size() const { return buffer_.size(); }
    bool empty() const { return buffer_.empty(); }

    /** @return true when the producer may push this cycle. */
    bool canPush() const;

    /** Stage a push; at most one per cycle. */
    void push(const Flit &flit);

    /** @return true when a committed flit is available this cycle. */
    bool canPop() const;

    /** @return the flit visible at the head this cycle. */
    const Flit &front() const;

    /** Stage a pop of the head flit; at most one per cycle. */
    Flit pop();

    /** Producer marks the stream complete (staged like a push). */
    void close();

    /** @return true when the producer has committed a close. */
    bool closed() const { return closed_; }

    /**
     * @return true when the stream is finished: no committed flits left,
     * no staged flit in flight, and the producer closed the queue.
     */
    bool drained() const;

    /** Make this cycle's staged operations visible. */
    void commit();

    /**
     * Wire this queue into its owning Simulator: commits with staged work
     * bump *progress (the simulator's monotonic progress counter used for
     * deadlock detection and idle fast-forward), and the first staged
     * operation each cycle registers the queue on *dirty_list so the
     * simulator commits only active queues. Standalone queues (unit
     * tests) work without attachment.
     */
    void
    attachSimulator(uint64_t *progress,
                    std::vector<HardwareQueue *> *dirty_list)
    {
        progress_ = progress;
        dirtyList_ = dirty_list;
    }

    /** Shard of the owning pipeline lane (0 = lane-unaffiliated). Set by
     *  the Simulator at creation; under the parallel scheduler only this
     *  shard's worker may stage operations during a parallel phase. */
    void setShard(int shard) { shard_ = shard; }
    int shard() const { return shard_; }

    /**
     * Record this queue's occupancy as a counter track under process
     * `pid` in `sink`, sampled on every committed operation (`cycle` is
     * the owning simulator's clock). One inlined null check when unused.
     */
    void
    attachTrace(TraceSink *sink, const uint64_t *cycle, int pid)
    {
        trace_ = sink;
        traceCycle_ = cycle;
        traceTrack_ = sink->addCounterTrack(pid, "queue." + name_);
    }

    // --- statistics ---
    uint64_t totalFlits() const { return totalFlits_; }
    size_t maxOccupancy() const { return maxOccupancy_; }

    /**
     * Sleepers blocked on this queue. Any committed operation fires the
     * list: a push can unblock the consumer, a pop the producer, a close
     * the consumer's drain path. Modules whose blocked tick waits for
     * this queue to become non-empty-or-closed (consumer) or non-full
     * (producer) pass this to sleepOn().
     */
    WaitList &waiters() { return waiters_; }

  private:
    /** Register on the owning simulator's dirty list (once per cycle).
     *  Every staged operation funnels through here, making it the
     *  chokepoint for the cross-shard access guard: staging from
     *  another shard's worker during a parallel phase would be a data
     *  race, so it panics deterministically instead. */
    void
    markDirty()
    {
        if (tlsCurrentShard != kNoShard && tlsCurrentShard != shard_)
            panicCrossShard();
        if (!dirty_ && dirtyList_) {
            dirtyList_->push_back(this);
            dirty_ = true;
        }
    }

    /** Cold path of the markDirty() guard (defined out of line). */
    [[noreturn]] void panicCrossShard() const;

    std::string name_;
    size_t capacity_;
    std::deque<Flit> buffer_;

    bool stagedPushValid_ = false;
    Flit stagedPush_;
    bool stagedPop_ = false;
    bool stagedClose_ = false;
    bool closed_ = false;
    bool dirty_ = false;
    /** Owning lane's shard (see setShard). */
    int shard_ = 0;

    /** Fallback target so standalone queues work without a Simulator. */
    uint64_t localProgress_ = 0;
    uint64_t *progress_ = &localProgress_;
    std::vector<HardwareQueue *> *dirtyList_ = nullptr;

    uint64_t totalFlits_ = 0;
    size_t maxOccupancy_ = 0;

    /** Sleeping modules woken by any committed operation. */
    WaitList waiters_;

    /** Tracing attachment (null = disabled; see attachTrace). */
    TraceSink *trace_ = nullptr;
    const uint64_t *traceCycle_ = nullptr;
    int traceTrack_ = -1;
};

} // namespace genesis::sim

#endif // GENESIS_SIM_QUEUE_H

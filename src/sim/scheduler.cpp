#include "sim/scheduler.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <vector>

#include "base/logging.h"

namespace genesis::sim {

Simulator::Simulator(const MemoryConfig &mem_config) : memory_(mem_config)
{
    memory_.attachProgress(&progress_);
    fastForwardEnabled_ = std::getenv("GENESIS_SIM_NO_FASTFORWARD") ==
        nullptr;
}

HardwareQueue *
Simulator::makeQueue(const std::string &name, size_t capacity)
{
    queues_.push_back(std::make_unique<HardwareQueue>(name, capacity));
    queues_.back()->attachSimulator(&progress_, &dirtyQueues_);
    if (trace_)
        queues_.back()->attachTrace(trace_, &cycle_, tracePid_);
    return queues_.back().get();
}

Scratchpad *
Simulator::makeScratchpad(const std::string &name, size_t size_words,
                          uint32_t word_bytes)
{
    scratchpads_.push_back(
        std::make_unique<Scratchpad>(name, size_words, word_bytes));
    if (trace_)
        scratchpads_.back()->attachTrace(trace_, &cycle_, tracePid_);
    return scratchpads_.back().get();
}

void
Simulator::attachTrace(TraceSink *sink, const std::string &label)
{
    trace_ = sink;
    tracePid_ = sink->beginProcess(label);
    for (auto &m : modules_)
        m->attachTrace(sink, &cycle_, tracePid_);
    for (auto &q : queues_)
        q->attachTrace(sink, &cycle_, tracePid_);
    for (auto &s : scratchpads_)
        s->attachTrace(sink, &cycle_, tracePid_);
    memory_.attachTrace(sink, tracePid_);
}

bool
Simulator::allDone() const
{
    for (const auto &m : modules_) {
        if (!m->done())
            return false;
    }
    return true;
}

void
Simulator::step()
{
    for (auto &m : modules_)
        m->tick();
    // Commit only queues that staged work this cycle; the rest are
    // untouched by construction.
    for (auto *q : dirtyQueues_)
        q->commit();
    dirtyQueues_.clear();
    memory_.tick();
    ++cycle_;
}

void
Simulator::snapshotStats()
{
    statSnapshots_.clear();
    statSnapshots_.reserve(modules_.size() + scratchpads_.size() + 1);
    for (const auto &m : modules_)
        statSnapshots_.push_back(m->stats());
    for (const auto &s : scratchpads_)
        statSnapshots_.push_back(s->stats());
    statSnapshots_.push_back(memory_.stats());
}

void
Simulator::creditSkippedCycles(uint64_t times)
{
    size_t i = 0;
    for (auto &m : modules_)
        m->stats().creditDelta(statSnapshots_[i++], times);
    for (auto &s : scratchpads_)
        s->stats().creditDelta(statSnapshots_[i++], times);
    memory_.stats().creditDelta(statSnapshots_[i++], times);
}

uint64_t
Simulator::run(uint64_t max_cycles)
{
    finished_.store(false, std::memory_order_relaxed);
    // Deadlock horizon: generously above the worst legitimate quiet
    // period (memory latency plus arbitration backlog).
    const uint64_t deadlock_horizon =
        10'000 + 100ull * memory_.config().latencyCycles;

    uint64_t last_progress = progress_;
    uint64_t quiet_cycles = 0;
    while (!allDone()) {
        if (cycle_ >= max_cycles) {
            panic("simulation exceeded %llu cycles\n%s",
                  static_cast<unsigned long long>(max_cycles),
                  dumpState().c_str());
        }
        step();
        if (progress_ != last_progress) {
            last_progress = progress_;
            quiet_cycles = 0;
            continue;
        }
        if (++quiet_cycles > deadlock_horizon) {
            panic("deadlock: no progress for %llu cycles\n%s",
                  static_cast<unsigned long long>(quiet_cycles),
                  dumpState().c_str());
        }
        if (!fastForwardEnabled_)
            continue;

        // The cycle was idle: nothing committed, issued, scheduled,
        // retired, or self-reported progress, so every module is purely
        // stalled and each following cycle is an identical no-op until
        // the memory system's next event. Skip the span in one jump.
        uint64_t next_event = memory_.nextEventCycle();
        if (next_event == MemorySystem::kNoEvent)
            continue; // frozen design: let the deadlock horizon fire
        if (next_event < cycle_ + 3 || cycle_ + 1 >= max_cycles)
            continue; // nothing worth batching before the event
        // Execute one more (provably idle) cycle normally to sample the
        // exact per-cycle stat deltas — each module's stall buckets and
        // the memory system's idle-channel accrual.
        snapshotStats();
        step();
        if (progress_ != last_progress) {
            // Defensive: a module made silent progress without honoring
            // the noteProgress() contract. Fall back to cycle-by-cycle.
            last_progress = progress_;
            quiet_cycles = 0;
            continue;
        }
        if (++quiet_cycles > deadlock_horizon) {
            panic("deadlock: no progress for %llu cycles\n%s",
                  static_cast<unsigned long long>(quiet_cycles),
                  dumpState().c_str());
        }
        // Skip to the cycle just before the event, clamped so the
        // runaway and deadlock panics still fire at the exact same
        // cycle as a cycle-by-cycle run.
        uint64_t skip = next_event - cycle_ - 1;
        skip = std::min(skip, max_cycles - cycle_);
        skip = std::min(skip, deadlock_horizon + 1 - quiet_cycles);
        if (skip == 0)
            continue;
        creditSkippedCycles(skip);
        // The sampled cycle's trace spans repeat verbatim across the
        // skipped range: grow them in bulk (cycle_ here is one past the
        // sampled cycle, i.e. the open spans' exclusive end).
        if (trace_)
            trace_->creditSkipped(cycle_, skip);
        cycle_ += skip;
        memory_.fastForward(skip);
        quiet_cycles += skip;
        if (quiet_cycles > deadlock_horizon) {
            panic("deadlock: no progress for %llu cycles\n%s",
                  static_cast<unsigned long long>(quiet_cycles),
                  dumpState().c_str());
        }
    }
    // Publish completion for cross-thread pollers: the cycle count
    // first, then the flag that licenses reading it (release pairs with
    // the acquire in finished()/finishedCycle()).
    finishedCycle_.store(cycle_, std::memory_order_release);
    finished_.store(true, std::memory_order_release);
    return cycle_;
}

StatRegistry
Simulator::collectStats() const
{
    StatRegistry all;
    all.set("cycles", cycle_);
    // Interned handles pre-create counters at zero; skip those so the
    // aggregate matches what lazily created counters would produce.
    for (const auto &m : modules_) {
        for (const auto &[name, value] : m->stats().counters()) {
            if (value)
                all.add(m->name() + "." + name, value);
        }
    }
    for (const auto &q : queues_) {
        all.set("queue." + q->name() + ".flits", q->totalFlits());
        all.set("queue." + q->name() + ".max_occupancy",
                q->maxOccupancy());
    }
    for (const auto &[name, value] : memory_.stats().counters()) {
        if (value)
            all.add("mem." + name, value);
    }
    for (const auto &s : scratchpads_) {
        for (const auto &[name, value] : s->stats().counters()) {
            if (value)
                all.add("spm." + s->name() + "." + name, value);
        }
    }
    return all;
}

std::string
Simulator::dumpState() const
{
    // A wedged design must still have coherent accounting: every channel
    // accrues exactly one of busy/idle per cycle, ticked or skipped.
    memory_.assertStatInvariant();
    std::ostringstream os;
    os << "cycle " << cycle_ << "\n";
    for (const auto &m : modules_) {
        os << "  module " << m->name()
           << (m->done() ? " done" : " BUSY");
        // Name the blocked resource: top stall-reason buckets.
        std::vector<std::pair<std::string, uint64_t>> stalls;
        for (const auto &[name, value] : m->stats().counters()) {
            if (value && name.rfind("stall.", 0) == 0)
                stalls.emplace_back(name.substr(6), value);
        }
        std::sort(stalls.begin(), stalls.end(),
                  [](const auto &a, const auto &b) {
                      return a.second > b.second;
                  });
        if (!stalls.empty()) {
            os << "  stalls:";
            size_t shown = 0;
            for (const auto &[reason, count] : stalls) {
                if (shown++ == 3)
                    break;
                os << " " << reason << "=" << count;
            }
        }
        os << "\n";
    }
    for (const auto &q : queues_) {
        os << "  queue " << q->name() << " size=" << q->size()
           << (q->closed() ? " closed" : " open") << "\n";
    }
    for (size_t i = 0; i < memory_.numPorts(); ++i) {
        const MemoryPort &p = memory_.port(i);
        if (p.outstanding() == 0)
            continue;
        os << "  mem port " << p.id() << " (group " << p.group()
           << "): " << p.outstanding() << " outstanding\n";
    }
    return os.str();
}

} // namespace genesis::sim

#include "sim/scheduler.h"

#include <sstream>

#include "base/logging.h"

namespace genesis::sim {

Simulator::Simulator(const MemoryConfig &mem_config) : memory_(mem_config)
{
}

HardwareQueue *
Simulator::makeQueue(const std::string &name, size_t capacity)
{
    queues_.push_back(std::make_unique<HardwareQueue>(name, capacity));
    return queues_.back().get();
}

Scratchpad *
Simulator::makeScratchpad(const std::string &name, size_t size_words,
                          uint32_t word_bytes)
{
    scratchpads_.push_back(
        std::make_unique<Scratchpad>(name, size_words, word_bytes));
    return scratchpads_.back().get();
}

bool
Simulator::allDone() const
{
    for (const auto &m : modules_) {
        if (!m->done())
            return false;
    }
    return true;
}

void
Simulator::step()
{
    for (auto &m : modules_)
        m->tick();
    for (auto &q : queues_)
        q->commit();
    memory_.tick();
    ++cycle_;
}

uint64_t
Simulator::stateFingerprint() const
{
    // Any push, pop, close, or memory event perturbs this fingerprint;
    // a constant fingerprint over many cycles means the design is stuck.
    uint64_t fp = 0xcbf29ce484222325ull;
    auto mix = [&fp](uint64_t v) {
        fp ^= v;
        fp *= 0x100000001b3ull;
    };
    for (const auto &q : queues_) {
        mix(q->totalFlits());
        mix(q->size());
        mix(q->closed() ? 1 : 0);
    }
    mix(memory_.stats().get("requests"));
    return fp;
}

uint64_t
Simulator::run(uint64_t max_cycles)
{
    // Deadlock horizon: generously above the worst legitimate quiet
    // period (memory latency plus arbitration backlog).
    const uint64_t deadlock_horizon =
        10'000 + 100ull * memory_.config().latencyCycles;

    uint64_t last_fp = stateFingerprint();
    uint64_t quiet_cycles = 0;
    while (!allDone()) {
        if (cycle_ >= max_cycles) {
            panic("simulation exceeded %llu cycles\n%s",
                  static_cast<unsigned long long>(max_cycles),
                  dumpState().c_str());
        }
        step();
        uint64_t fp = stateFingerprint();
        if (fp == last_fp) {
            if (++quiet_cycles > deadlock_horizon) {
                panic("deadlock: no progress for %llu cycles\n%s",
                      static_cast<unsigned long long>(quiet_cycles),
                      dumpState().c_str());
            }
        } else {
            quiet_cycles = 0;
            last_fp = fp;
        }
    }
    return cycle_;
}

StatRegistry
Simulator::collectStats() const
{
    StatRegistry all;
    all.set("cycles", cycle_);
    for (const auto &m : modules_) {
        for (const auto &[name, value] : m->stats().counters())
            all.add(m->name() + "." + name, value);
    }
    for (const auto &q : queues_) {
        all.set("queue." + q->name() + ".flits", q->totalFlits());
        all.set("queue." + q->name() + ".max_occupancy",
                q->maxOccupancy());
    }
    for (const auto &[name, value] : memory_.stats().counters())
        all.add("mem." + name, value);
    for (const auto &s : scratchpads_) {
        for (const auto &[name, value] : s->stats().counters())
            all.add("spm." + s->name() + "." + name, value);
    }
    return all;
}

std::string
Simulator::dumpState() const
{
    std::ostringstream os;
    os << "cycle " << cycle_ << "\n";
    for (const auto &m : modules_) {
        os << "  module " << m->name()
           << (m->done() ? " done" : " BUSY") << "\n";
    }
    for (const auto &q : queues_) {
        os << "  queue " << q->name() << " size=" << q->size()
           << (q->closed() ? " closed" : " open") << "\n";
    }
    return os.str();
}

} // namespace genesis::sim

#include "sim/scheduler.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <vector>

#include "base/logging.h"

namespace genesis::sim {

Simulator::Simulator(const MemoryConfig &mem_config) : memory_(mem_config)
{
    memory_.attachProgress(&progress_);
    sleepEnabled_ = std::getenv("GENESIS_SIM_NO_SLEEP") == nullptr;
    fastForwardEnabled_ = std::getenv("GENESIS_SIM_NO_FASTFORWARD") ==
        nullptr;
}

HardwareQueue *
Simulator::makeQueue(const std::string &name, size_t capacity)
{
    queues_.push_back(std::make_unique<HardwareQueue>(name, capacity));
    queues_.back()->attachSimulator(&progress_, &dirtyQueues_);
    if (trace_)
        queues_.back()->attachTrace(trace_, &cycle_, tracePid_);
    return queues_.back().get();
}

Scratchpad *
Simulator::makeScratchpad(const std::string &name, size_t size_words,
                          uint32_t word_bytes)
{
    scratchpads_.push_back(
        std::make_unique<Scratchpad>(name, size_words, word_bytes));
    if (trace_)
        scratchpads_.back()->attachTrace(trace_, &cycle_, tracePid_);
    return scratchpads_.back().get();
}

void
Simulator::attachTrace(TraceSink *sink, const std::string &label)
{
    trace_ = sink;
    tracePid_ = sink->beginProcess(label);
    for (auto &m : modules_)
        m->attachTrace(sink, &cycle_, tracePid_);
    for (auto &q : queues_)
        q->attachTrace(sink, &cycle_, tracePid_);
    for (auto &s : scratchpads_)
        s->attachTrace(sink, &cycle_, tracePid_);
    memory_.attachTrace(sink, tracePid_);
}

bool
Simulator::allDone() const
{
    return doneCount_ == modules_.size();
}

void
Simulator::step()
{
    for (Module *m : active_)
        m->tick();
    // Commit only queues that staged work this cycle; the rest are
    // untouched by construction. Commits (like memory retirements and
    // hazard releases) fire WaitLists, appending sleepers to woken_.
    for (auto *q : dirtyQueues_)
        q->commit();
    dirtyQueues_.clear();
    memory_.tick();
    updateActiveSet();
    ++cycle_;
}

void
Simulator::updateActiveSet()
{
    // Latch done() on the modules that could have changed state this
    // cycle: the ticked ones and the woken ones. A sleeping module's
    // done() cannot flip without a wake — the wait set covers every
    // resource done() reads — so scanning these two lists is exhaustive.
    bool compact = false;
    for (Module *m : active_) {
        maybeLatchDone(m);
        if (m->asleep() || m->schedDone())
            compact = true;
    }
    if (compact) {
        size_t out = 0;
        for (Module *m : active_) {
            if (m->asleep() || m->schedDone()) {
                m->setSchedActive(false);
                continue;
            }
            active_[out++] = m;
        }
        active_.resize(out);
    }
    if (woken_.empty())
        return;
    // Re-admit woken sleepers, skipping any that latched done while
    // asleep and any still in the active list (same-cycle sleep/wake).
    size_t keep = 0;
    for (Module *m : woken_) {
        maybeLatchDone(m);
        if (m->schedDone() || m->schedActive())
            continue;
        woken_[keep++] = m;
    }
    woken_.resize(keep);
    if (!woken_.empty()) {
        // Merge in tick (= insertion) order: modules may legally read
        // shared state written by earlier-ticked modules (SPM words,
        // done() of upstream stages), so relative order must match a
        // tick-everything run exactly.
        auto by_index = [](const Module *a, const Module *b) {
            return a->schedIndex() < b->schedIndex();
        };
        std::sort(woken_.begin(), woken_.end(), by_index);
        mergeScratch_.clear();
        mergeScratch_.reserve(active_.size() + woken_.size());
        std::merge(active_.begin(), active_.end(), woken_.begin(),
                   woken_.end(), std::back_inserter(mergeScratch_),
                   by_index);
        active_.swap(mergeScratch_);
        for (Module *m : woken_)
            m->setSchedActive(true);
    }
    woken_.clear();
}

void
Simulator::snapshotStats()
{
    statSnapshots_.clear();
    statSnapshots_.reserve(modules_.size() + scratchpads_.size() + 1);
    for (const auto &m : modules_)
        statSnapshots_.push_back(m->stats());
    for (const auto &s : scratchpads_)
        statSnapshots_.push_back(s->stats());
    statSnapshots_.push_back(memory_.stats());
}

void
Simulator::creditSkippedCycles(uint64_t times)
{
    size_t i = 0;
    for (auto &m : modules_)
        m->stats().creditDelta(statSnapshots_[i++], times);
    for (auto &s : scratchpads_)
        s->stats().creditDelta(statSnapshots_[i++], times);
    memory_.stats().creditDelta(statSnapshots_[i++], times);
}

uint64_t
Simulator::run(uint64_t max_cycles)
{
    finished_.store(false, std::memory_order_relaxed);
    // Deadlock horizon: generously above the worst legitimate quiet
    // period (memory latency plus arbitration backlog).
    const uint64_t deadlock_horizon =
        10'000 + 100ull * memory_.config().latencyCycles;

    uint64_t last_progress = progress_;
    uint64_t quiet_cycles = 0;
    while (!allDone()) {
        if (cycle_ >= max_cycles) {
            panic("simulation exceeded %llu cycles\n%s",
                  static_cast<unsigned long long>(max_cycles),
                  dumpState().c_str());
        }
        step();
        // Provable deadlock: every live module is asleep and the memory
        // system has no pending event, so no wake can ever fire. Report
        // immediately instead of waiting out the quiet horizon. (Under
        // GENESIS_SIM_NO_SLEEP modules never sleep, so a wedged design
        // falls through to the horizon path below, as before.)
        if (active_.empty() && !allDone() &&
            memory_.nextEventCycle() == MemorySystem::kNoEvent) {
            panic("deadlock: no module can ever wake (all asleep, no "
                  "pending memory event)\n%s",
                  dumpState().c_str());
        }
        if (progress_ != last_progress) {
            last_progress = progress_;
            quiet_cycles = 0;
            continue;
        }
        if (++quiet_cycles > deadlock_horizon) {
            panic("deadlock: no progress for %llu cycles\n%s",
                  static_cast<unsigned long long>(quiet_cycles),
                  dumpState().c_str());
        }
        if (!fastForwardEnabled_)
            continue;

        // The cycle was idle: nothing committed, issued, scheduled,
        // retired, or self-reported progress, so every module is purely
        // stalled and each following cycle is an identical no-op until
        // the memory system's next event. Skip the span in one jump.
        uint64_t next_event = memory_.nextEventCycle();
        if (next_event == MemorySystem::kNoEvent)
            continue; // frozen design: let the deadlock horizon fire
        if (next_event < cycle_ + 3 || cycle_ + 1 >= max_cycles)
            continue; // nothing worth batching before the event
        // Execute one more (provably idle) cycle normally to sample the
        // exact per-cycle stat deltas — each module's stall buckets and
        // the memory system's idle-channel accrual.
        snapshotStats();
        step();
        if (progress_ != last_progress) {
            // Defensive: a module made silent progress without honoring
            // the noteProgress() contract. Fall back to cycle-by-cycle.
            last_progress = progress_;
            quiet_cycles = 0;
            continue;
        }
        if (++quiet_cycles > deadlock_horizon) {
            panic("deadlock: no progress for %llu cycles\n%s",
                  static_cast<unsigned long long>(quiet_cycles),
                  dumpState().c_str());
        }
        // Skip to the cycle just before the event, clamped so the
        // runaway and deadlock panics still fire at the exact same
        // cycle as a cycle-by-cycle run.
        uint64_t skip = next_event - cycle_ - 1;
        skip = std::min(skip, max_cycles - cycle_);
        skip = std::min(skip, deadlock_horizon + 1 - quiet_cycles);
        if (skip == 0)
            continue;
        creditSkippedCycles(skip);
        // The sampled cycle's trace spans repeat verbatim across the
        // skipped range: grow them in bulk (cycle_ here is one past the
        // sampled cycle, i.e. the open spans' exclusive end).
        if (trace_)
            trace_->creditSkipped(cycle_, skip);
        cycle_ += skip;
        memory_.fastForward(skip);
        quiet_cycles += skip;
        if (quiet_cycles > deadlock_horizon) {
            panic("deadlock: no progress for %llu cycles\n%s",
                  static_cast<unsigned long long>(quiet_cycles),
                  dumpState().c_str());
        }
    }
    // Publish completion for cross-thread pollers: the cycle count
    // first, then the flag that licenses reading it (release pairs with
    // the acquire in finished()/finishedCycle()).
    finishedCycle_.store(cycle_, std::memory_order_release);
    finished_.store(true, std::memory_order_release);
    return cycle_;
}

StatRegistry
Simulator::collectStats() const
{
    StatRegistry all;
    all.set("cycles", cycle_);
    // Interned handles pre-create counters at zero; skip those so the
    // aggregate matches what lazily created counters would produce.
    for (const auto &m : modules_) {
        for (const auto &[name, value] : m->stats().counters()) {
            if (value)
                all.add(m->name() + "." + name, value);
        }
    }
    for (const auto &q : queues_) {
        all.set("queue." + q->name() + ".flits", q->totalFlits());
        all.set("queue." + q->name() + ".max_occupancy",
                q->maxOccupancy());
    }
    for (const auto &[name, value] : memory_.stats().counters()) {
        if (value)
            all.add("mem." + name, value);
    }
    for (const auto &s : scratchpads_) {
        for (const auto &[name, value] : s->stats().counters()) {
            if (value)
                all.add("spm." + s->name() + "." + name, value);
        }
    }
    return all;
}

std::string
Simulator::dumpState() const
{
    // A wedged design must still have coherent accounting: every channel
    // accrues exactly one of busy/idle per cycle, ticked or skipped.
    memory_.assertStatInvariant();
    std::ostringstream os;
    os << "cycle " << cycle_ << "\n";
    for (const auto &m : modules_) {
        os << "  module " << m->name()
           << (m->done() ? " done" : m->asleep() ? " ASLEEP" : " BUSY");
        if (m->asleep())
            os << "  awaiting [" << m->sleepDescription() << "]";
        // Name the blocked resource: top stall-reason buckets.
        std::vector<std::pair<std::string, uint64_t>> stalls;
        for (const auto &[name, value] : m->stats().counters()) {
            if (value && name.rfind("stall.", 0) == 0)
                stalls.emplace_back(name.substr(6), value);
        }
        std::sort(stalls.begin(), stalls.end(),
                  [](const auto &a, const auto &b) {
                      return a.second > b.second;
                  });
        if (!stalls.empty()) {
            os << "  stalls:";
            size_t shown = 0;
            for (const auto &[reason, count] : stalls) {
                if (shown++ == 3)
                    break;
                os << " " << reason << "=" << count;
            }
        }
        os << "\n";
    }
    for (const auto &q : queues_) {
        os << "  queue " << q->name() << " size=" << q->size()
           << (q->closed() ? " closed" : " open") << "\n";
    }
    for (size_t i = 0; i < memory_.numPorts(); ++i) {
        const MemoryPort &p = memory_.port(i);
        if (p.outstanding() == 0)
            continue;
        os << "  mem port " << p.id() << " (group " << p.group()
           << "): " << p.outstanding() << " outstanding\n";
    }
    return os.str();
}

} // namespace genesis::sim

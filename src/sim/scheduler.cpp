#include "sim/scheduler.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <vector>

#include "base/env.h"
#include "base/logging.h"

namespace genesis::sim {

namespace {

/** Default lookahead-window cap when parallel (see setWindowPolicy):
 *  comfortably above the typical row-hit latency clamp so the memory
 *  bound, not this constant, sizes most windows. */
constexpr uint64_t kDefaultWindowLimit = 16;

} // namespace

Simulator::Simulator(const MemoryConfig &mem_config) : memory_(mem_config)
{
    memory_.attachProgress(&progress_);
    sleepEnabled_ = std::getenv("GENESIS_SIM_NO_SLEEP") == nullptr;
    fastForwardEnabled_ = std::getenv("GENESIS_SIM_NO_FASTFORWARD") ==
        nullptr;
}

HardwareQueue *
Simulator::makeQueue(const std::string &name, size_t capacity)
{
    queues_.push_back(std::make_unique<HardwareQueue>(name, capacity));
    queues_.back()->attachSimulator(&progress_, &dirtyQueues_);
    queues_.back()->setShard(currentShard());
    queues_.back()->waiters().setShard(currentShard());
    noteComponentShard(currentShard(), /*is_module=*/false);
    if (trace_)
        queues_.back()->attachTrace(trace_, &cycle_, tracePid_);
    return queues_.back().get();
}

MemoryPort *
Simulator::makePort(int local_group)
{
    MemoryPort *port = memory_.makePort(local_group);
    const int shard = currentShard();
    port->setShard(shard);
    port->retireWaiters().setShard(shard);
    if (portShards_.size() <= static_cast<size_t>(port->id()))
        portShards_.resize(static_cast<size_t>(port->id()) + 1, -1);
    portShards_[static_cast<size_t>(port->id())] = shard;
    noteComponentShard(shard, /*is_module=*/false);
    return port;
}

void
Simulator::noteComponentShard(int shard, bool is_module)
{
    const size_t s = static_cast<size_t>(shard);
    shardCount_ = std::max(shardCount_, s + 1);
    if (is_module) {
        if (shardModuleCounts_.size() <= s)
            shardModuleCounts_.resize(s + 1, 0);
        ++shardModuleCounts_[s];
    }
}

int
Simulator::populatedShards() const
{
    int populated = 0;
    for (uint32_t count : shardModuleCounts_)
        populated += count != 0;
    return populated;
}

Scratchpad *
Simulator::makeScratchpad(const std::string &name, size_t size_words,
                          uint32_t word_bytes)
{
    scratchpads_.push_back(
        std::make_unique<Scratchpad>(name, size_words, word_bytes));
    scratchpads_.back()->hazardWaiters().setShard(currentShard());
    noteComponentShard(currentShard(), /*is_module=*/false);
    if (trace_)
        scratchpads_.back()->attachTrace(trace_, &cycle_, tracePid_);
    return scratchpads_.back().get();
}

void
Simulator::attachTrace(TraceSink *sink, const std::string &label)
{
    trace_ = sink;
    tracePid_ = sink->beginProcess(label);
    for (auto &m : modules_)
        m->attachTrace(sink, &cycle_, tracePid_);
    for (auto &q : queues_)
        q->attachTrace(sink, &cycle_, tracePid_);
    for (auto &s : scratchpads_)
        s->attachTrace(sink, &cycle_, tracePid_);
    memory_.attachTrace(sink, tracePid_);
}

bool
Simulator::allDone() const
{
    return doneCount_ == modules_.size();
}

void
Simulator::step()
{
    for (Module *m : active_)
        m->tick();
    // Commit only queues that staged work this cycle; the rest are
    // untouched by construction. Commits (like memory retirements and
    // hazard releases) fire WaitLists, appending sleepers to woken_.
    for (auto *q : dirtyQueues_)
        q->commit();
    dirtyQueues_.clear();
    memory_.tick();
    updateActiveSet();
    ++cycle_;
}

void
Simulator::updateActiveSet()
{
    // Latch done() on the modules that could have changed state this
    // cycle: the ticked ones and the woken ones. A sleeping module's
    // done() cannot flip without a wake — the wait set covers every
    // resource done() reads — so scanning these two lists is exhaustive.
    bool compact = false;
    for (Module *m : active_) {
        maybeLatchDone(m);
        if (m->asleep() || m->schedDone())
            compact = true;
    }
    if (compact) {
        size_t out = 0;
        for (Module *m : active_) {
            if (m->asleep() || m->schedDone()) {
                m->setSchedActive(false);
                continue;
            }
            active_[out++] = m;
        }
        active_.resize(out);
    }
    if (woken_.empty())
        return;
    // Re-admit woken sleepers, skipping any that latched done while
    // asleep and any still in the active list (same-cycle sleep/wake).
    size_t keep = 0;
    for (Module *m : woken_) {
        maybeLatchDone(m);
        if (m->schedDone() || m->schedActive())
            continue;
        woken_[keep++] = m;
    }
    woken_.resize(keep);
    if (!woken_.empty()) {
        // Merge in tick (= insertion) order: modules may legally read
        // shared state written by earlier-ticked modules (SPM words,
        // done() of upstream stages), so relative order must match a
        // tick-everything run exactly.
        auto by_index = [](const Module *a, const Module *b) {
            return a->schedIndex() < b->schedIndex();
        };
        std::sort(woken_.begin(), woken_.end(), by_index);
        mergeScratch_.clear();
        mergeScratch_.reserve(active_.size() + woken_.size());
        std::merge(active_.begin(), active_.end(), woken_.begin(),
                   woken_.end(), std::back_inserter(mergeScratch_),
                   by_index);
        active_.swap(mergeScratch_);
        for (Module *m : woken_)
            m->setSchedActive(true);
    }
    woken_.clear();
}

void
Simulator::snapshotStats()
{
    statSnapshots_.clear();
    statSnapshots_.reserve(modules_.size() + scratchpads_.size() + 1);
    for (const auto &m : modules_)
        statSnapshots_.push_back(m->stats());
    for (const auto &s : scratchpads_)
        statSnapshots_.push_back(s->stats());
    statSnapshots_.push_back(memory_.stats());
}

void
Simulator::creditSkippedCycles(uint64_t times)
{
    size_t i = 0;
    for (auto &m : modules_)
        m->stats().creditDelta(statSnapshots_[i++], times);
    for (auto &s : scratchpads_)
        s->stats().creditDelta(statSnapshots_[i++], times);
    memory_.stats().creditDelta(statSnapshots_[i++], times);
}

void
Simulator::splitShards()
{
    GENESIS_ASSERT(woken_.empty() && dirtyQueues_.empty(),
                   "shard split mid-cycle");
    shards_.clear();
    shards_.reserve(shardCount_);
    for (size_t s = 0; s < shardCount_; ++s) {
        shards_.push_back(std::make_unique<Shard>());
        shards_.back()->cycle = cycle_;
    }
    for (auto &m : modules_) {
        Shard &sh = *shards_[static_cast<size_t>(m->shard())];
        m->attachProgress(&sh.progress);
        // The shard's clock, not the global one: during a lookahead
        // window the worker advances it per subcycle so sleep spans and
        // issue stamps land on the exact sequential cycle.
        m->attachScheduler(&sh.cycle, &sh.woken, sleepEnabled_);
    }
    // active_ is sorted by schedIndex, so each shard's projection of it
    // is too: per-shard tick order matches the sequential tick order
    // restricted to that shard's modules.
    for (Module *m : active_)
        shards_[static_cast<size_t>(m->shard())]->active.push_back(m);
    active_.clear();
    for (auto &q : queues_) {
        Shard &sh = *shards_[static_cast<size_t>(q->shard())];
        q->attachSimulator(&sh.progress, &sh.dirtyQueues);
    }
    memory_.setDeferredAccounting(true);
    // Lookahead windows need every memory port's issues stamped with its
    // lane's subcycle clock; a port created behind the Simulator's back
    // (memory().makePort()) has unknown lane affinity, so its presence
    // forces single-cycle barriers.
    windowCapable_ = portShards_.size() == memory_.numPorts();
    for (int shard : portShards_) {
        if (shard < 0)
            windowCapable_ = false;
    }
    if (windowCapable_) {
        for (size_t i = 0; i < portShards_.size(); ++i) {
            Shard &sh = *shards_[static_cast<size_t>(portShards_[i])];
            memory_.bindPortScheduling(i, &sh.cycle, &sh.progress);
        }
    }
}

void
Simulator::restoreShards()
{
    for (auto &m : modules_) {
        m->attachProgress(&progress_);
        m->attachScheduler(&cycle_, &woken_, sleepEnabled_);
    }
    for (auto &q : queues_)
        q->attachSimulator(&progress_, &dirtyQueues_);
    for (auto &sh : shards_) {
        // Residual deltas are zero after a completed cycle; fold them
        // anyway so a panic unwind (deadlock mid-cycle) still leaves the
        // counters coherent.
        progress_ += sh->progress;
        doneCount_ += sh->doneDelta;
        active_.insert(active_.end(), sh->active.begin(),
                       sh->active.end());
        woken_.insert(woken_.end(), sh->woken.begin(), sh->woken.end());
    }
    std::sort(active_.begin(), active_.end(),
              [](const Module *a, const Module *b) {
                  return a->schedIndex() < b->schedIndex();
              });
    memory_.unbindPortScheduling();
    windowCapable_ = false;
    memory_.setDeferredAccounting(false);
    shards_.clear();
}

void
Simulator::latchAndCompact(Shard &sh, size_t *done_accum)
{
    bool compact = false;
    for (Module *m : sh.active) {
        if (!m->schedDone() && m->done()) {
            m->setSchedDone(true);
            ++*done_accum;
        }
        if (m->asleep() || m->schedDone())
            compact = true;
    }
    if (!compact)
        return;
    size_t out = 0;
    for (Module *m : sh.active) {
        if (m->asleep() || m->schedDone()) {
            m->setSchedActive(false);
            continue;
        }
        sh.active[out++] = m;
    }
    sh.active.resize(out);
}

void
Simulator::rescanRetiredShards()
{
    const std::vector<size_t> &retired = memory_.retiredPortsLastTick();
    if (retired.empty())
        return;
    rescanMarks_.assign(shards_.size(), 0);
    bool scan_all = false;
    for (size_t port_id : retired) {
        int shard =
            port_id < portShards_.size() ? portShards_[port_id] : -1;
        if (shard < 0) {
            // Port created outside Simulator::makePort — unknown lane
            // affinity, so conservatively rescan everything.
            scan_all = true;
            break;
        }
        rescanMarks_[static_cast<size_t>(shard)] = 1;
    }
    for (size_t s = 0; s < shards_.size(); ++s) {
        if (scan_all || rescanMarks_[s])
            latchAndCompact(*shards_[s], &doneCount_);
    }
}

void
Simulator::mergeShardWoken(Shard &sh, size_t *done_accum)
{
    if (sh.woken.empty())
        return;
    size_t keep = 0;
    for (Module *m : sh.woken) {
        if (!m->schedDone() && m->done()) {
            m->setSchedDone(true);
            ++*done_accum;
        }
        if (m->schedDone() || m->schedActive())
            continue;
        sh.woken[keep++] = m;
    }
    sh.woken.resize(keep);
    if (!sh.woken.empty()) {
        auto by_index = [](const Module *a, const Module *b) {
            return a->schedIndex() < b->schedIndex();
        };
        std::sort(sh.woken.begin(), sh.woken.end(), by_index);
        sh.mergeScratch.clear();
        sh.mergeScratch.reserve(sh.active.size() + sh.woken.size());
        std::merge(sh.active.begin(), sh.active.end(), sh.woken.begin(),
                   sh.woken.end(), std::back_inserter(sh.mergeScratch),
                   by_index);
        sh.active.swap(sh.mergeScratch);
        for (Module *m : sh.woken)
            m->setSchedActive(true);
    }
    sh.woken.clear();
}

void
Simulator::stepParallel()
{
    // Parallel phase: every shard ticks its active modules (schedIndex
    // order), commits its own staged queues, and pre-compacts its active
    // list. Shards share no mutable state — cross-shard touches panic
    // via the tlsCurrentShard guards — so any interleaving produces the
    // same result as the sequential tick order.
    pool_->run(shards_.size(), [this](size_t s) {
        tlsCurrentShard = static_cast<int>(s);
        Shard &sh = *shards_[s];
        try {
            // Sync the shard clock: modules and bound ports read it, and
            // a preceding fast-forward or window may have left it behind.
            sh.cycle = cycle_;
            for (Module *m : sh.active)
                m->tick();
            for (auto *q : sh.dirtyQueues)
                q->commit();
            sh.dirtyQueues.clear();
            latchAndCompact(sh, &sh.doneDelta);
        } catch (...) {
            tlsCurrentShard = kNoShard;
            throw;
        }
        tlsCurrentShard = kNoShard;
    });

    // Control phase (single thread): reduce the shard deltas — additive,
    // so the reduction order cannot affect the result — then advance the
    // memory system exactly as the sequential scheduler would.
    for (auto &sh : shards_) {
        progress_ += sh->progress;
        sh->progress = 0;
        doneCount_ += sh->doneDelta;
        sh->doneDelta = 0;
    }
    memory_.tick();
    // Retirements during the memory tick are the only post-barrier
    // events that can flip a lane module's done(); re-latch exactly the
    // affected shards so completion lands on the same cycle as a
    // sequential run. Retire wakes were routed to each sleeper's own
    // shard's woken list; merge them back in schedIndex order.
    rescanRetiredShards();
    for (auto &sh : shards_)
        mergeShardWoken(*sh, &doneCount_);
    ++cycle_;
}

uint64_t
Simulator::chooseWindow(uint64_t max_cycles, uint64_t deadlock_horizon,
                        uint64_t quiet_cycles) const
{
    uint64_t w = windowLimit_;
    // Nothing a lane module can observe may change mid-window, and the
    // only mid-cycle-observable memory event is a retirement (read
    // bytes, write high-water mark, issue credit — all frozen between
    // retirements). Already-scheduled heads retire no earlier than
    // earliestRetireCycle(); a head granted during the window's replay
    // (memory cycle >= cycle_+1) completes no earlier than
    // cycle_ + 1 + rowHitLatency + 1. Cap the window so both land on or
    // after its last cycle's memory tick.
    uint64_t retire = memory_.earliestRetireCycle();
    if (retire != MemorySystem::kNoEvent)
        w = std::min(w, retire - cycle_);
    w = std::min(w,
                 2 + static_cast<uint64_t>(
                         memory_.config().rowHitLatencyCycles));
    // Panic exactness: the runaway check fires at cycle_ == max_cycles
    // and the deadlock horizon on the cycle quiet_cycles first exceeds
    // it, both of which a window may reach only on its last subcycle.
    w = std::min(w, max_cycles - cycle_);
    w = std::min(w, deadlock_horizon + 1 - quiet_cycles);
    return std::max<uint64_t>(w, 1);
}

uint64_t
Simulator::stepParallelWindow(uint64_t window)
{
    const uint64_t base = cycle_;
    windowDeltas_.assign(window, 0);

    // Parallel phase: every shard runs all `window` subcycles
    // back-to-back — ticks, commits, compaction and its own wake merges
    // — against frozen memory state, recording cumulative progress and
    // active-list emptiness after each subcycle.
    pool_->run(shards_.size(), [this, window, base](size_t s) {
        tlsCurrentShard = static_cast<int>(s);
        Shard &sh = *shards_[s];
        try {
            sh.cycle = base;
            sh.progressBySub.assign(window, 0);
            sh.emptyBySub.assign(window, 0);
            for (uint64_t j = 0; j < window; ++j) {
                if (j)
                    ++sh.cycle;
                for (Module *m : sh.active)
                    m->tick();
                for (auto *q : sh.dirtyQueues)
                    q->commit();
                sh.dirtyQueues.clear();
                latchAndCompact(sh, &sh.doneDelta);
                mergeShardWoken(sh, &sh.doneDelta);
                sh.progressBySub[j] = sh.progress;
                sh.emptyBySub[j] = sh.active.empty() ? 1 : 0;
            }
        } catch (...) {
            tlsCurrentShard = kNoShard;
            throw;
        }
        tlsCurrentShard = kNoShard;
    });

    // Truncate at the first subcycle after which every shard's active
    // list was empty: the overshoot subcycles were provable no-ops (an
    // empty shard cannot commit, issue or wake anything), and ending the
    // window there keeps the provable-deadlock probe and the completion
    // check on the exact cycle a sequential run would report.
    uint64_t effective = window;
    for (uint64_t j = 0; j < window; ++j) {
        bool all_empty = true;
        for (const auto &sh : shards_) {
            if (!sh->emptyBySub[j]) {
                all_empty = false;
                break;
            }
        }
        if (all_empty) {
            effective = j + 1;
            break;
        }
    }

    // Reduce the shard deltas (additive, order-free) and difference the
    // cumulative progress curves into per-cycle deltas for the quiet
    // machine. Past the truncation point the curves are flat, so the
    // shard total equals the cumulative value at the last kept subcycle.
    for (auto &sh : shards_) {
        uint64_t prev = 0;
        for (uint64_t j = 0; j < effective; ++j) {
            windowDeltas_[j] += sh->progressBySub[j] - prev;
            prev = sh->progressBySub[j];
        }
        progress_ += sh->progress;
        sh->progress = 0;
        doneCount_ += sh->doneDelta;
        sh->doneDelta = 0;
        // Pin the shard clock to the window's last cycle so retire-wake
        // stall credits (read on the control thread below) match the
        // cycle a sequential run would wake the sleeper on.
        sh->cycle = base + effective - 1;
    }

    // Control phase: replay the memory ticks the window deferred. Each
    // tick advances the memory clock one cycle and arbitrates exactly
    // the sub-requests whose issue stamps have become visible, so
    // arbitration order, bank/bus state and every stat match a
    // cycle-by-cycle run; the window size guarantees retirements can
    // land only on the final tick.
    for (uint64_t j = 0; j < effective; ++j) {
        uint64_t before = progress_;
        memory_.tick();
        windowDeltas_[j] += progress_ - before;
    }
    rescanRetiredShards();
    for (auto &sh : shards_)
        mergeShardWoken(*sh, &doneCount_);
    cycle_ = base + effective;
    windowDeltas_.resize(effective);
    return effective;
}

bool
Simulator::noModuleActive(bool parallel) const
{
    if (!parallel)
        return active_.empty();
    for (const auto &sh : shards_) {
        if (!sh->active.empty())
            return false;
    }
    return true;
}

uint64_t
Simulator::run(uint64_t max_cycles)
{
    finished_.store(false, std::memory_order_relaxed);
    int workers = 1;
    if (!trace_) {
        // Tracing forces the sequential scheduler: the TraceSink is
        // single-writer (DESIGN.md §7). Simulated results are identical
        // either way.
        workers = resolveWorkerCount(threadPolicy_, populatedShards());
    }
    lastRunWorkers_ = workers;
    windowLimit_ = 1;
    if (workers > 1) {
        // Lookahead-window cap (DESIGN.md §4f): configured request, env
        // override, 0 = auto. Meaningless when sequential — there is no
        // barrier to amortize — so it is resolved only here.
        int64_t w = envInt64("GENESIS_SIM_WINDOW",
                             windowRequest_ > 0 ? windowRequest_ : 0, 0,
                             4096);
        windowLimit_ =
            w == 0 ? kDefaultWindowLimit : static_cast<uint64_t>(w);
    }
    if (workers <= 1)
        return runLoop(max_cycles, /*parallel=*/false);

    if (!pool_ || pool_->helpers() != workers - 1)
        pool_ = std::make_unique<SimThreadPool>(workers - 1);
    splitShards();
    // Restore the sequential view however the loop exits — completion
    // or a deadlock/runaway panic unwinding to the caller.
    struct Restore {
        Simulator &sim;
        ~Restore() { sim.restoreShards(); }
    } restore{*this};
    return runLoop(max_cycles, /*parallel=*/true);
}

uint64_t
Simulator::runLoop(uint64_t max_cycles, bool parallel)
{
    // Deadlock horizon: generously above the worst legitimate quiet
    // period (memory latency plus arbitration backlog).
    const uint64_t deadlock_horizon =
        10'000 + 100ull * memory_.config().latencyCycles;

    uint64_t last_progress = progress_;
    uint64_t quiet_cycles = 0;
    while (!allDone()) {
        if (cycle_ >= max_cycles) {
            panic("simulation exceeded %llu cycles\n%s",
                  static_cast<unsigned long long>(max_cycles),
                  dumpState().c_str());
        }
        uint64_t stepped = 1;
        if (!parallel) {
            step();
        } else if (windowCapable_ && windowLimit_ > 1) {
            // Memory-quiet lookahead window (DESIGN.md §4f): cover as
            // many cycles per barrier as the memory system provably
            // cannot interrupt, then replay its ticks serially.
            uint64_t w = chooseWindow(max_cycles, deadlock_horizon,
                                      quiet_cycles);
            if (w > 1)
                stepped = stepParallelWindow(w);
            else
                stepParallel();
        } else {
            stepParallel();
        }
        // Provable deadlock: every live module is asleep and the memory
        // system has no pending event, so no wake can ever fire. Report
        // immediately instead of waiting out the quiet horizon. (Under
        // GENESIS_SIM_NO_SLEEP modules never sleep, so a wedged design
        // falls through to the horizon path below, as before. A window
        // truncates at its first all-asleep subcycle, so this still
        // fires on the exact sequential cycle.)
        if (noModuleActive(parallel) && !allDone() &&
            memory_.nextEventCycle() == MemorySystem::kNoEvent) {
            panic("deadlock: no module can ever wake (all asleep, no "
                  "pending memory event)\n%s",
                  dumpState().c_str());
        }
        bool progressed_last;
        if (stepped == 1) {
            progressed_last = progress_ != last_progress;
            if (progressed_last)
                quiet_cycles = 0;
            else
                ++quiet_cycles;
        } else {
            // Replay the quiet machine per window subcycle so the
            // horizon counts the exact cycles a one-cycle-at-a-time run
            // would have counted (chooseWindow caps the window so the
            // horizon can first be exceeded only on the last subcycle).
            for (uint64_t j = 0; j < stepped; ++j) {
                if (windowDeltas_[j])
                    quiet_cycles = 0;
                else
                    ++quiet_cycles;
            }
            progressed_last = windowDeltas_[stepped - 1] != 0;
        }
        last_progress = progress_;
        if (quiet_cycles > deadlock_horizon) {
            panic("deadlock: no progress for %llu cycles\n%s",
                  static_cast<unsigned long long>(quiet_cycles),
                  dumpState().c_str());
        }
        if (progressed_last)
            continue;
        if (!fastForwardEnabled_)
            continue;

        // The cycle was idle: nothing committed, issued, scheduled,
        // retired, or self-reported progress, so every module is purely
        // stalled and each following cycle is an identical no-op until
        // the memory system's next event. Skip the span in one jump.
        uint64_t next_event = memory_.nextEventCycle();
        if (next_event == MemorySystem::kNoEvent)
            continue; // frozen design: let the deadlock horizon fire
        if (next_event < cycle_ + 3 || cycle_ + 1 >= max_cycles)
            continue; // nothing worth batching before the event
        // Execute one more (provably idle) cycle normally to sample the
        // exact per-cycle stat deltas — each module's stall buckets and
        // the memory system's idle-channel accrual.
        snapshotStats();
        if (parallel)
            stepParallel();
        else
            step();
        if (progress_ != last_progress) {
            // Defensive: a module made silent progress without honoring
            // the noteProgress() contract. Fall back to cycle-by-cycle.
            last_progress = progress_;
            quiet_cycles = 0;
            continue;
        }
        if (++quiet_cycles > deadlock_horizon) {
            panic("deadlock: no progress for %llu cycles\n%s",
                  static_cast<unsigned long long>(quiet_cycles),
                  dumpState().c_str());
        }
        // Skip to the cycle just before the event, clamped so the
        // runaway and deadlock panics still fire at the exact same
        // cycle as a cycle-by-cycle run.
        uint64_t skip = next_event - cycle_ - 1;
        skip = std::min(skip, max_cycles - cycle_);
        skip = std::min(skip, deadlock_horizon + 1 - quiet_cycles);
        if (skip == 0)
            continue;
        creditSkippedCycles(skip);
        // The sampled cycle's trace spans repeat verbatim across the
        // skipped range: grow them in bulk (cycle_ here is one past the
        // sampled cycle, i.e. the open spans' exclusive end).
        if (trace_)
            trace_->creditSkipped(cycle_, skip);
        cycle_ += skip;
        memory_.fastForward(skip);
        quiet_cycles += skip;
        if (quiet_cycles > deadlock_horizon) {
            panic("deadlock: no progress for %llu cycles\n%s",
                  static_cast<unsigned long long>(quiet_cycles),
                  dumpState().c_str());
        }
    }
    // Publish completion for cross-thread pollers: the cycle count
    // first, then the flag that licenses reading it (release pairs with
    // the acquire in finished()/finishedCycle()).
    finishedCycle_.store(cycle_, std::memory_order_release);
    finished_.store(true, std::memory_order_release);
    return cycle_;
}

StatRegistry
Simulator::collectStats() const
{
    StatRegistry all;
    all.set("cycles", cycle_);
    // Interned handles pre-create counters at zero; skip those so the
    // aggregate matches what lazily created counters would produce.
    for (const auto &m : modules_) {
        for (const auto &[name, value] : m->stats().counters()) {
            if (value)
                all.add(m->name() + "." + name, value);
        }
    }
    for (const auto &q : queues_) {
        all.set("queue." + q->name() + ".flits", q->totalFlits());
        all.set("queue." + q->name() + ".max_occupancy",
                q->maxOccupancy());
    }
    for (const auto &[name, value] : memory_.stats().counters()) {
        if (value)
            all.add("mem." + name, value);
    }
    for (const auto &s : scratchpads_) {
        for (const auto &[name, value] : s->stats().counters()) {
            if (value)
                all.add("spm." + s->name() + "." + name, value);
        }
    }
    return all;
}

std::string
Simulator::dumpState() const
{
    // A wedged design must still have coherent accounting: every channel
    // accrues exactly one of busy/idle per cycle, ticked or skipped.
    memory_.assertStatInvariant();
    // Deterministic under sharding: modules_ and queues_ iterate in
    // insertion order — lane-major, since pipelines are built one at a
    // time — and every stat read here is bit-identical to a sequential
    // run, so the report matches at any worker count.
    std::ostringstream os;
    os << "cycle " << cycle_ << "\n";
    for (const auto &m : modules_) {
        os << "  module " << m->name()
           << (m->done() ? " done" : m->asleep() ? " ASLEEP" : " BUSY");
        if (m->asleep())
            os << "  awaiting [" << m->sleepDescription() << "]";
        // Name the blocked resource: top stall-reason buckets.
        std::vector<std::pair<std::string, uint64_t>> stalls;
        for (const auto &[name, value] : m->stats().counters()) {
            if (value && name.rfind("stall.", 0) == 0)
                stalls.emplace_back(name.substr(6), value);
        }
        std::sort(stalls.begin(), stalls.end(),
                  [](const auto &a, const auto &b) {
                      return a.second > b.second;
                  });
        if (!stalls.empty()) {
            os << "  stalls:";
            size_t shown = 0;
            for (const auto &[reason, count] : stalls) {
                if (shown++ == 3)
                    break;
                os << " " << reason << "=" << count;
            }
        }
        os << "\n";
    }
    for (const auto &q : queues_) {
        os << "  queue " << q->name() << " size=" << q->size()
           << (q->closed() ? " closed" : " open") << "\n";
    }
    for (size_t i = 0; i < memory_.numPorts(); ++i) {
        const MemoryPort &p = memory_.port(i);
        if (p.outstanding() == 0)
            continue;
        os << "  mem port " << p.id() << " (group " << p.group()
           << "): " << p.outstanding() << " outstanding\n";
    }
    return os.str();
}

} // namespace genesis::sim

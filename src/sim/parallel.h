/**
 * @file
 * Worker pool and thread policy for the lane-sharded parallel scheduler.
 *
 * The Simulator shards its cycle loop by pipeline lane (see DESIGN.md
 * §4e): each worker ticks one shard's active set and commits that
 * shard's dirty queues, then a barrier hands control back to a single
 * thread for the memory tick and the scheduling decisions. SimThreadPool
 * provides the persistent workers and the barrier; the thread policy
 * functions decide how many workers a run gets, composing the explicit
 * request (RuntimeConfig::simThreads or GENESIS_SIM_THREADS), the host
 * core budget, and the number of concurrent sessions sharing the host
 * (BatchRunner lanes).
 *
 * Thread-budget policy (host-core oversubscription):
 *  - GENESIS_SIM_NO_THREADS=1 forces one worker (sequential scheduler).
 *  - GENESIS_SIM_THREADS=N overrides any configured request.
 *  - A request of 0 means auto: use the per-session core budget,
 *    hardware_concurrency / concurrentSessions, so BatchRunner lanes and
 *    simulator workers never oversubscribe the host combined.
 *  - An explicit request from a single session is honored as-is (it may
 *    exceed the core count — essential for determinism testing on small
 *    hosts); with concurrentSessions > 1 even explicit requests are
 *    clamped to the per-session budget.
 *  - The result is always clamped to the design's populated shard count:
 *    extra workers could never have work.
 */

#ifndef GENESIS_SIM_PARALLEL_H
#define GENESIS_SIM_PARALLEL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace genesis::sim {

/**
 * Shard id of the parallel phase the current thread is executing, or
 * kNoShard outside a parallel phase (sequential runs, the control phase,
 * host threads). Components stamped with a shard id use this to reject
 * cross-shard touches during a parallel phase — a module of one lane
 * pushing to another lane's queue would be a data race, so it panics
 * deterministically instead (see DESIGN.md §4e).
 */
inline constexpr int kNoShard = -1;
extern thread_local int tlsCurrentShard;

/** How many worker threads a simulator run may use. */
struct ThreadPolicy {
    /** Requested worker count; 0 = auto (per-session core budget). */
    int requested = 0;
    /** Sessions expected to run concurrently on this host (BatchRunner
     *  sets this to its lane count so auto sizing divides the cores). */
    int concurrentSessions = 1;
};

/**
 * Resolve the worker count for one run (the policy above).
 * @param policy configured request + concurrent-session count
 * @param populated_shards shards that own at least one module
 * @param hardware_threads core count override for tests; 0 = query
 *        std::thread::hardware_concurrency()
 */
int resolveWorkerCount(const ThreadPolicy &policy, int populated_shards,
                       unsigned hardware_threads = 0);

/**
 * Resolve the worker count for the channel-parallel memory tick
 * (DESIGN.md §4f). Separate policy from the lane workers above because
 * the memory scan is much finer-grained: it only pays off when asked
 * for, so the default is sequential.
 *  - GENESIS_SIM_NO_MEM_THREADS=1 forces the sequential tick.
 *  - GENESIS_SIM_MEM_THREADS=N overrides any configured request.
 *  - A request of 0 (the default) means sequential: per-tick channel
 *    scans are ~100 ns at the paper's 4-channel scale, so farming them
 *    out is opt-in rather than automatic.
 *  - The result is clamped to the channel count: extra workers could
 *    never have a disjoint channel subset to scan.
 * Simulated cycles, statistics and traces are bit-identical at any
 * value; tracing forces the sequential tick (single-writer sink).
 */
int resolveMemWorkerCount(int requested, int num_channels);

/**
 * A persistent pool of helper threads executing one job batch at a time.
 *
 * run(jobs, fn) executes fn(0) .. fn(jobs-1) across the helpers and the
 * calling thread, returning only when every job finished (the barrier).
 * Job indices are claimed dynamically, so callers must not assume any
 * job-to-thread affinity. Helpers spin briefly for the next batch, then
 * park on a condition variable — a pool whose simulator is between runs
 * (or a host oversubscribed with sessions) costs nothing but memory.
 *
 * An exception thrown by a job is captured and rethrown from run() on
 * the calling thread after the barrier (first one wins); the remaining
 * jobs still execute, so the pool and the caller's data structures stay
 * consistent.
 *
 * Thread-safety: run() must be called from one thread at a time (the
 * simulator's control thread). The synchronization below is
 * acquire/release throughout, keeping the pool TSan-clean.
 */
class SimThreadPool
{
  public:
    /** @param helpers helper threads to spawn (callers typically pass
     *  workers - 1: the calling thread is the extra worker). */
    explicit SimThreadPool(int helpers);
    ~SimThreadPool();

    SimThreadPool(const SimThreadPool &) = delete;
    SimThreadPool &operator=(const SimThreadPool &) = delete;

    int helpers() const { return static_cast<int>(threads_.size()); }

    /** Execute fn(0..jobs-1) across helpers + caller; barrier on return. */
    void run(size_t jobs, const std::function<void(size_t)> &fn);

  private:
    void workerMain();
    /** Claim and execute jobs until the batch is exhausted. */
    void drainJobs();

    std::vector<std::thread> threads_;

    /** Batch description, written by run() before publishing the new
     *  generation (release) and read by helpers after observing it
     *  (acquire). */
    const std::function<void(size_t)> *job_ = nullptr;
    size_t jobCount_ = 0;
    /** Next unclaimed job index in the current batch. */
    std::atomic<size_t> nextJob_{0};
    /** Batch sequence number; helpers wait for it to advance. */
    std::atomic<uint64_t> generation_{0};
    /** Helpers finished with the current batch (release per helper,
     *  acquired by run()'s barrier wait). */
    std::atomic<size_t> finishedHelpers_{0};
    std::atomic<bool> stop_{false};

    /** Park/wake bookkeeping for idle helpers. */
    std::mutex mutex_;
    std::condition_variable cv_;

    /** First job exception of the batch (guarded by errorMutex_). */
    std::mutex errorMutex_;
    std::exception_ptr firstError_;
};

} // namespace genesis::sim

#endif // GENESIS_SIM_PARALLEL_H

/**
 * @file
 * Wake lists for the sleep/wake active-set scheduler.
 *
 * A WaitList is owned by a blocking resource (a HardwareQueue, a
 * MemoryPort, a Scratchpad hazard scoreboard) and holds the modules that
 * went to sleep waiting on it. When the resource makes progress — a
 * queue commits a staged operation, a port retires a sub-request, a
 * hazard address is released — it calls wakeAll(), which re-activates
 * every registered sleeper (see Module::wake for the stall/trace
 * crediting that keeps sleeping bit-identical to spinning).
 *
 * Threading: a wait list is touched by exactly one thread at a time.
 * Under the sequential scheduler that is the thread running
 * Simulator::run()/step(). Under the lane-sharded parallel scheduler
 * (DESIGN.md §4e) a list belongs to its owning resource's shard: during
 * a parallel phase only that shard's worker may register sleepers
 * (add() panics on a cross-shard registration — it would be a data
 * race), and lists fired from the serialized control phase (memory-port
 * retirements) may wake sleepers of any shard because no worker runs
 * concurrently.
 */

#ifndef GENESIS_SIM_WAIT_H
#define GENESIS_SIM_WAIT_H

#include <string>
#include <vector>

namespace genesis::sim {

class Module;

/** Sleeping modules to wake when the owning resource makes progress. */
class WaitList
{
  public:
    /**
     * Register a sleeper (deduplicated; a module left on the list by an
     * earlier wake through a sibling list is not added twice). Lists
     * stay tiny — a queue has one producer and one consumer, a port a
     * handful of memory modules — so the scan is a few pointer compares.
     */
    void add(Module *m);

    /** Wake every registered sleeper and clear the list. Waking an
     *  already-awake module (a stale entry) is a no-op. */
    void wakeAll();

    bool empty() const { return waiters_.empty(); }

    /** Diagnostic name shown by dumpState() for sleeping modules. */
    void setName(std::string name) { name_ = std::move(name); }
    const std::string &name() const { return name_; }

    /** Shard of the owning resource (see the threading contract above).
     *  Set by the Simulator when the resource is created. */
    void setShard(int shard) { shard_ = shard; }
    int shard() const { return shard_; }

  private:
    std::vector<Module *> waiters_;
    std::string name_;
    /** Owning resource's shard (0 = lane-unaffiliated). */
    int shard_ = 0;
};

} // namespace genesis::sim

#endif // GENESIS_SIM_WAIT_H

#include "sim/arbiter.h"

namespace genesis::sim {

void
RoundRobinArbiter::resize(size_t n)
{
    n_ = n;
    if (next_ >= n_)
        next_ = 0;
}

int
RoundRobinArbiter::grant(const std::function<bool(size_t)> &requesting)
{
    if (n_ == 0)
        return -1;
    for (size_t i = 0; i < n_; ++i) {
        size_t candidate = (next_ + i) % n_;
        if (requesting(candidate)) {
            next_ = (candidate + 1) % n_;
            return static_cast<int>(candidate);
        }
    }
    return -1;
}

} // namespace genesis::sim

#include "sim/arbiter.h"

namespace genesis::sim {

void
RoundRobinArbiter::resize(size_t n)
{
    n_ = n;
    if (next_ >= n_)
        next_ = 0;
}

} // namespace genesis::sim

/**
 * @file
 * Timing model of the accelerator-attached DRAM (the F1 card's 64 GB).
 *
 * Requests flow through the two-level arbitration of paper Figure 8:
 * each pipeline's memory modules share a port, ports are grouped under
 * local arbiters (one per group of pipelines), and one global arbiter per
 * memory channel picks among local arbiters. Each channel serves one
 * request at a time at a fixed bytes/cycle transfer rate plus a fixed
 * access latency. Addresses interleave across channels at access
 * granularity.
 *
 * The memory system models *timing only* — data contents live in the
 * runtime's device buffers, which the memory reader/writer modules hold
 * directly. This separation keeps the timing model exact while avoiding a
 * byte-accurate DRAM image.
 */

#ifndef GENESIS_SIM_MEMORY_H
#define GENESIS_SIM_MEMORY_H

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "base/stats.h"
#include "base/trace.h"
#include "sim/arbiter.h"

namespace genesis::sim {

/** Memory system configuration. */
struct MemoryConfig {
    /** Independent DRAM channels (F1 card: 4). */
    int numChannels = 4;
    /** Data-bus bandwidth per channel in bytes per accelerator cycle
     *  (16 B/cycle at 250 MHz = 4 GB/s per channel, 16 GB/s total). */
    uint32_t bytesPerCyclePerChannel = 16;
    /** Fixed access latency in cycles before data starts returning. */
    uint32_t latencyCycles = 40;
    /** Request size granularity in bytes (Section III-C: e.g. 64 B). */
    uint32_t accessGranularity = 64;
    /** Outstanding requests a port may queue. */
    size_t portQueueDepth = 8;
};

class MemorySystem;

/**
 * One requester's interface to the memory system. Each hardware pipeline
 * owns a port; all of its memory readers/writers issue through it.
 * Completions retire in issue order (the DMA engine reorders internally).
 */
class MemoryPort
{
  public:
    /** @return true when the port queue can accept a request. */
    bool canIssue() const;

    /** Queue a request for [addr, addr+bytes). */
    void issue(uint64_t addr, uint32_t bytes, bool is_write);

    /** @return read bytes completed since the last call (and reset). */
    uint64_t takeCompletedReadBytes();

    /** @return true when no requests are outstanding. */
    bool idle() const { return pending_.empty(); }

    /** @return requests queued or in flight (deadlock diagnostics). */
    size_t outstanding() const { return pending_.size(); }

    int id() const { return id_; }
    int group() const { return group_; }

    /** @return total write bytes fully retired so far. */
    uint64_t retiredWriteBytes() const { return retiredWriteBytes_; }

  private:
    friend class MemorySystem;

    struct Request {
        uint64_t addr = 0;
        uint32_t bytes = 0;
        bool isWrite = false;
        bool scheduled = false;
        uint64_t completeCycle = 0;
        /** Async-lifetime id when tracing (0 = untraced). */
        uint64_t traceId = 0;
    };

    MemoryPort(int id, int group) : id_(id), group_(group) {}

    int id_;
    int group_;
    size_t queueDepth_ = 8;
    std::deque<Request> pending_;
    uint64_t completedReadBytes_ = 0;
    uint64_t retiredWriteBytes_ = 0;
    /** Owning MemorySystem's progress counter (issue() bumps it). */
    uint64_t *progress_ = nullptr;
    /** Tracing attachment (set by MemorySystem::attachTrace). */
    TraceSink *trace_ = nullptr;
    const uint64_t *traceCycle_ = nullptr;
    int traceTrack_ = -1;
    TraceSink::StateId stateRead_ = 0;
    TraceSink::StateId stateWrite_ = 0;
};

/** The timing model proper. */
class MemorySystem
{
  public:
    explicit MemorySystem(const MemoryConfig &config = MemoryConfig());

    const MemoryConfig &config() const { return config_; }

    /**
     * Create a port for one memory module.
     * @param local_group index of the local arbiter (one per hardware
     *        pipeline in Figure 8) this port hangs off
     */
    MemoryPort *makePort(int local_group = 0);

    /** Advance one cycle: arbitrate, schedule, retire. */
    void tick();

    /** @return true when every port is idle. */
    bool idle() const;

    uint64_t cycle() const { return cycle_; }

    /** Sentinel for nextEventCycle(): no future event is pending. */
    static constexpr uint64_t kNoEvent = ~0ull;

    /**
     * @return the earliest future cycle at which this memory system can
     * change state or change its per-cycle stat accrual: the head
     * completion of any port, or a busy channel freeing up (which both
     * enables scheduling of waiting requests and starts idle-cycle
     * accounting). Between now and that cycle every tick() is a no-op
     * apart from uniform idle-stat counting, so the simulator may skip
     * the span. kNoEvent when nothing is pending.
     */
    uint64_t nextEventCycle() const;

    /**
     * Jump the clock forward over a span that nextEventCycle() proved
     * event-free. Stat accrual for the skipped ticks is credited by the
     * caller (Simulator::run's bulk-crediting), not here.
     */
    void fastForward(uint64_t cycles) { cycle_ += cycles; }

    /** Redirect progress reporting to a simulator-owned counter. */
    void attachProgress(uint64_t *counter);

    /**
     * Record memory activity into `sink` under process `pid`: one async
     * track per port carrying each request's issue -> schedule -> retire
     * lifetime, and one span track per channel showing data-bus busy
     * intervals. Covers existing and subsequently created ports.
     */
    void attachTrace(TraceSink *sink, int pid);

    size_t numPorts() const { return ports_.size(); }
    const MemoryPort &port(size_t i) const { return *ports_[i]; }

    StatRegistry &stats() { return stats_; }
    const StatRegistry &stats() const { return stats_; }

  private:
    int channelOf(uint64_t addr) const;
    void attachPortTrace(MemoryPort &port);

    MemoryConfig config_;
    std::vector<std::unique_ptr<MemoryPort>> ports_;
    /** Port indices per local-arbiter group. */
    std::vector<std::vector<size_t>> groupPorts_;
    /** Cycle at which each channel's data bus frees up. */
    std::vector<uint64_t> channelBusyUntil_;
    /** One global arbiter per channel, selecting among local groups. */
    std::vector<RoundRobinArbiter> globalArbiters_;
    /** One local arbiter per port group, selecting among its ports. */
    std::vector<RoundRobinArbiter> localArbiters_;
    /** Per-tick scratch: groups already granted a channel this cycle. */
    std::vector<char> groupUsedScratch_;
    uint64_t cycle_ = 0;
    StatRegistry stats_;
    /** Interned hot-path stat handles. */
    StatRegistry::Counter requests_ = stats_.counter("requests");
    StatRegistry::Counter readBytes_ = stats_.counter("read_bytes");
    StatRegistry::Counter writeBytes_ = stats_.counter("write_bytes");
    StatRegistry::Counter channelBusyCycles_ =
        stats_.counter("channel_busy_cycles");
    StatRegistry::Counter channelIdleCycles_ =
        stats_.counter("channel_idle_cycles");
    /** Fallback target so standalone systems work without a Simulator. */
    uint64_t localProgress_ = 0;
    uint64_t *progress_ = &localProgress_;
    /** Tracing attachment (null = disabled; see attachTrace). */
    TraceSink *trace_ = nullptr;
    int tracePid_ = -1;
    std::vector<int> channelTracks_;
    TraceSink::StateId stateSchedule_ = 0;
};

} // namespace genesis::sim

#endif // GENESIS_SIM_MEMORY_H

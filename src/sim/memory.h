/**
 * @file
 * Timing model of the accelerator-attached DRAM (the F1 card's 64 GB).
 *
 * Requests flow through the two-level arbitration of paper Figure 8:
 * each pipeline's memory modules share a port, ports are grouped under
 * local arbiters (one per group of pipelines), and one global arbiter per
 * memory channel picks among local arbiters. Addresses interleave across
 * channels at access granularity, so a request that crosses an
 * interleave boundary is split at issue time into sub-requests that each
 * land on their true channel; adjacent same-direction sub-requests from
 * one port coalesce MSHR-style into a single burst. Each channel owns a
 * set of DRAM banks with open-row state: an access to the bank's open
 * row pays the (short) row-hit latency, any other access pays the full
 * row-miss latency, and independent banks overlap their access phases
 * while the channel's data bus serializes transfers at a fixed
 * bytes/cycle rate.
 *
 * The memory system models *timing only* — data contents live in the
 * runtime's device buffers, which the memory reader/writer modules hold
 * directly. This separation keeps the timing model exact while avoiding a
 * byte-accurate DRAM image.
 */

#ifndef GENESIS_SIM_MEMORY_H
#define GENESIS_SIM_MEMORY_H

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "base/stats.h"
#include "base/trace.h"
#include "sim/arbiter.h"
#include "sim/wait.h"

namespace genesis::sim {

/** Memory system configuration. */
struct MemoryConfig {
    /** Independent DRAM channels (F1 card: 4). */
    int numChannels = 4;
    /** Data-bus bandwidth per channel in bytes per accelerator cycle
     *  (16 B/cycle at 250 MHz = 4 GB/s per channel, 16 GB/s total). */
    uint32_t bytesPerCyclePerChannel = 16;
    /** Row-miss access latency in cycles before data starts returning
     *  (precharge + activate + CAS; also the cold-bank latency). */
    uint32_t latencyCycles = 40;
    /** Row-hit access latency (CAS only). 0 = derive latencyCycles/2. */
    uint32_t rowHitLatencyCycles = 0;
    /** Channel-interleave / request-size granularity in bytes
     *  (Section III-C: e.g. 64 B). Must be a non-zero power of two. */
    uint32_t accessGranularity = 64;
    /** DRAM banks per channel (open-row state and access overlap). */
    int banksPerChannel = 8;
    /** Row-buffer size per bank in channel-local bytes. Must be a
     *  multiple of accessGranularity. */
    uint32_t rowBytes = 2048;
    /** Cap on one coalesced burst (>= accessGranularity). */
    uint32_t maxBurstBytes = 256;
    /** Outstanding sub-requests a port may queue. canIssue() is a
     *  credit check against this depth; a single issue() may split into
     *  several sub-requests and briefly overshoot it. */
    size_t portQueueDepth = 8;
};

/**
 * Up-front validation of one memory configuration. Returns one
 * "<field>: <problem>" line per invalid field (empty = valid), so a
 * caller sweeping arbitrary configurations (the DSE harness) can report
 * a clean per-point error naming the offending knob instead of dying
 * deep inside the model. MemorySystem's constructor fatals with these
 * same messages.
 */
std::vector<std::string> validate(const MemoryConfig &config);

class MemorySystem;

/**
 * One requester's interface to the memory system. Each hardware pipeline
 * owns a port; all of its memory readers/writers issue through it.
 * Completions retire in issue order (the DMA engine reorders internally).
 */
class MemoryPort
{
  public:
    /** @return true when the port queue can accept a request. */
    bool canIssue() const;

    /**
     * Queue a request for [addr, addr+bytes). The request is split at
     * interleave-granularity boundaries into per-channel sub-requests;
     * a sub-request that extends the port's youngest still-unscheduled
     * sub-request (same direction, channel, bank and row, contiguous
     * address) coalesces into it up to MemoryConfig::maxBurstBytes.
     */
    void issue(uint64_t addr, uint32_t bytes, bool is_write);

    /** @return read bytes completed since the last call (and reset). */
    uint64_t takeCompletedReadBytes();

    /** @return true when no requests are outstanding. */
    bool idle() const { return pending_.empty(); }

    /** @return sub-requests queued or in flight (deadlock diagnostics). */
    size_t outstanding() const { return pending_.size(); }

    int id() const { return id_; }
    int group() const { return group_; }

    /** @return the owning system's channel-interleave granularity. */
    uint32_t accessGranularity() const;

    /**
     * accessGranularity() with a caller-named fatal() on a zero or
     * non-power-of-two value. Memory modules call this at construction
     * instead of hardcoding their own chunk-size constants.
     */
    uint32_t checkedAccessGranularity(const char *who) const;

    /** @return total write bytes fully retired so far. */
    uint64_t retiredWriteBytes() const { return retiredWriteBytes_; }

    /**
     * Stamp the pipeline-lane shard owning this port (kept from
     * Simulator::makePort). issue() panics on a cross-shard issue during
     * a parallel phase — a module of one lane issuing on another lane's
     * port would race that lane's worker on the port queue. -1 =
     * unaffiliated (no guard).
     */
    void setShard(int shard) { shard_ = shard; }
    int shard() const { return shard_; }

    /**
     * Sleepers blocked on this port, fired whenever a sub-request
     * retires. Retirement is the port's only externally visible event:
     * it delivers read data (takeCompletedReadBytes), advances the write
     * high-water mark (retiredWriteBytes) and frees issue credit
     * (canIssue), so one list covers all three wait reasons.
     */
    WaitList &retireWaiters() { return retireWaiters_; }

  private:
    friend class MemorySystem;

    /** One granularity-bounded slice of an issued request, pinned to the
     *  channel/bank/row its own start address maps to. */
    struct SubRequest {
        uint64_t addr = 0;
        uint32_t bytes = 0;
        bool isWrite = false;
        bool scheduled = false;
        int channel = 0;
        int bank = 0;
        /** Channel-local row index (unique per bank+row pair). */
        uint64_t row = 0;
        uint64_t completeCycle = 0;
        /** Cycle this slice was issued (the port's issue clock). The
         *  arbiter only considers a head once issueCycle < the memory
         *  clock, so sub-requests issued by lane shards mid-window become
         *  schedulable exactly when a cycle-by-cycle run would have
         *  issued them (DESIGN.md §4f). */
        uint64_t issueCycle = 0;
        /** Async-lifetime id when tracing (0 = untraced). */
        uint64_t traceId = 0;
    };

    MemoryPort(int id, int group, MemorySystem *owner)
        : id_(id), group_(group), owner_(owner)
    {
    }

    /** Append one sub-request slice, coalescing into the tail if legal. */
    void enqueueSlice(uint64_t addr, uint32_t bytes, bool is_write);

    /**
     * Issue-side accounting deltas accumulated while the owning system
     * defers them (see MemorySystem::setDeferredAccounting): issue()
     * runs on the port's shard worker during a parallel phase, so the
     * system-global counters it would bump are staged here and drained
     * at the next tick() on the control thread, in port order.
     */
    struct DeferredAccounting {
        uint64_t requests = 0;
        uint64_t subRequests = 0;
        uint64_t coalesced = 0;
        uint64_t pending = 0;
        uint64_t unscheduled = 0;
        uint64_t progress = 0;
    };

    int id_;
    int group_;
    MemorySystem *owner_;
    size_t queueDepth_ = 8;
    std::deque<SubRequest> pending_;
    uint64_t completedReadBytes_ = 0;
    uint64_t retiredWriteBytes_ = 0;
    /** Sleeping modules woken when a sub-request retires. */
    WaitList retireWaiters_;
    /** Owning MemorySystem's progress counter (issue() bumps it). */
    uint64_t *progress_ = nullptr;
    /** Clock stamping SubRequest::issueCycle: the owner's cycle counter,
     *  re-pointed at the owning shard's subcycle counter while the
     *  parallel scheduler runs lookahead windows (bindPortScheduling). */
    const uint64_t *issueClock_ = nullptr;
    /** Owning lane shard (-1 = unaffiliated); see setShard. */
    int shard_ = -1;
    /** When true, issue() bumps *progress_ directly even while the owner
     *  defers accounting: the port is exclusively owned by one lane
     *  shard and progress_ points at that shard's counter, so the bump
     *  is race-free and lands in the correct window subcycle. */
    bool directProgress_ = false;
    /** When true, issue-side global-counter bumps land in deferred_
     *  instead (see DeferredAccounting). */
    bool deferAccounting_ = false;
    DeferredAccounting deferred_;
    /** Tracing attachment (set by MemorySystem::attachTrace). */
    TraceSink *trace_ = nullptr;
    const uint64_t *traceCycle_ = nullptr;
    int traceTrack_ = -1;
    TraceSink::StateId stateRead_ = 0;
    TraceSink::StateId stateWrite_ = 0;
    TraceSink::StateId stateCoalesce_ = 0;
};

/** The timing model proper. */
class SimThreadPool;

class MemorySystem
{
  public:
    explicit MemorySystem(const MemoryConfig &config = MemoryConfig());
    ~MemorySystem();

    const MemoryConfig &config() const { return config_; }

    /**
     * Create a port for one memory module.
     * @param local_group index of the local arbiter (one per hardware
     *        pipeline in Figure 8) this port hangs off
     */
    MemoryPort *makePort(int local_group = 0);

    /** Advance one cycle: arbitrate, schedule, retire. */
    void tick();

    /** @return true when every port is idle. */
    bool idle() const;

    uint64_t cycle() const { return cycle_; }

    /** Sentinel for nextEventCycle(): no future event is pending. */
    static constexpr uint64_t kNoEvent = ~0ull;

    /**
     * @return the earliest future cycle at which this memory system can
     * change state or change its per-cycle stat accrual: a scheduled
     * head completing, an unscheduled head reaching its earliest
     * grantable cycle (visible, bus and bank expired — conservative:
     * it may still lose arbitration there), or a busy channel's data
     * bus freeing up (which flips busy/idle accrual). Bank expiries are
     * folded into the grantable bound — a busy bank is only observable
     * through a blocked front head. Between now and the returned cycle
     * every tick() is a no-op apart from uniform per-cycle stat
     * counting, so the simulator may skip the span. kNoEvent when
     * nothing is pending.
     */
    uint64_t nextEventCycle() const;

    /**
     * Per-channel restriction of nextEventCycle(): the earliest future
     * cycle at which `channel` can change state or change its stat
     * accrual (a head destined for it completing or becoming grantable,
     * its data bus freeing up). The global nextEventCycle() equals the
     * minimum over all channels.
     */
    uint64_t nextEventCycle(int channel) const;

    /**
     * @return the earliest cycle at which any port can retire its head
     * sub-request (minimum scheduled-head completion, at least cycle+1),
     * or kNoEvent when no head is scheduled. Retirement is the only
     * memory event lane modules can observe mid-cycle (read bytes, write
     * high-water mark, issue credit), so the parallel scheduler caps its
     * lookahead window strictly below this cycle (DESIGN.md §4f).
     */
    uint64_t earliestRetireCycle() const;

    /**
     * Jump the clock forward over a span that nextEventCycle() proved
     * event-free. Stat accrual for the skipped ticks is credited by the
     * caller (Simulator::run's bulk-crediting), not here.
     */
    void fastForward(uint64_t cycles) { cycle_ += cycles; }

    /**
     * Advance `cycles` ticks of a span the caller proved event-free via
     * nextEventCycle() (every tick in it is a state no-op), crediting
     * the uniform per-cycle stat accrual in bulk instead of ticking.
     * Unlike fastForward() this accounts the skipped ticks itself, so
     * standalone drivers (bench/sim_membw's event-jump loop) stay
     * bit-identical to a tick-by-tick run without simulator help.
     * Falls back to real ticks under tracing or deferred accounting.
     */
    void tickQuiet(uint64_t cycles);

    /** Redirect progress reporting to a simulator-owned counter. */
    void attachProgress(uint64_t *counter);

    /**
     * Set the worker budget for the channel-parallel tick: with more
     * than one resolved worker (see sim::resolveMemWorkerCount — the
     * GENESIS_SIM_MEM_THREADS / GENESIS_SIM_NO_MEM_THREADS knobs
     * override `requested`), tick() farms the per-channel eligibility
     * scan across a worker pool, one disjoint channel subset per worker,
     * and serializes the arbitration grants, stat updates and
     * retirements after the barrier in fixed channel/port order.
     * Bit-identical to the sequential tick by construction; tracing
     * forces the sequential tick. The environment is consulted here and
     * at construction, not per tick.
     */
    void setMemThreads(int requested);
    /** Resolved channel-scan worker count (1 = sequential tick). */
    int memThreads() const { return memThreads_; }

    /**
     * Re-point one port's issue clock and progress counter at a lane
     * shard's counters for the parallel scheduler's lookahead windows:
     * issues stamp the shard's subcycle and bump the shard's progress
     * directly (race-free — the port is exclusively that shard's).
     * unbindPortScheduling() restores the defaults (restoreShards).
     */
    void bindPortScheduling(size_t port, const uint64_t *clock,
                            uint64_t *progress);
    void unbindPortScheduling();

    /**
     * RAII marker for the channel-parallel scan phase: while alive on a
     * thread, that thread may only read state of `channel` — touching
     * another channel's banks or issuing on any port panics
     * deterministically (the cross-channel-touch guard of DESIGN.md
     * §4f). Public so tests can drive the guard directly.
     */
    struct ChannelScanGuard {
        explicit ChannelScanGuard(int channel);
        ~ChannelScanGuard();
        ChannelScanGuard(const ChannelScanGuard &) = delete;
        ChannelScanGuard &operator=(const ChannelScanGuard &) = delete;

      private:
        int prev_;
    };

    /**
     * Defer issue-side accounting for the lane-sharded parallel
     * scheduler (DESIGN.md §4e). While deferred, MemoryPort::issue()
     * stages its bumps of the system-global counters (requests,
     * sub-requests, coalesces, pending/unscheduled totals, progress) in
     * per-port accumulators, drained by the next tick() in port order on
     * the control thread — issue() then touches only port-local state
     * and may run concurrently across ports of different shards.
     * Sequential runs keep the immediate accounting, so standalone
     * behavior (tests reading stats between issue() and tick()) is
     * untouched. Disabling drains any residue immediately.
     */
    void setDeferredAccounting(bool defer);

    /**
     * Ports that retired at least one sub-request during the last
     * tick(), in port order. Tracked only while deferred accounting is
     * on; the parallel scheduler uses it to re-scan exactly the shards
     * whose modules may have observed a retirement.
     */
    const std::vector<size_t> &retiredPortsLastTick() const
    {
        return retiredPortsLastTick_;
    }

    /**
     * Record memory activity into `sink` under process `pid`: one async
     * track per port carrying each sub-request's issue -> schedule ->
     * retire lifetime (coalesced slices appear as instants on the burst
     * they merged into), and one span track per channel showing data-bus
     * busy intervals. Covers existing and subsequently created ports.
     */
    void attachTrace(TraceSink *sink, int pid);

    size_t numPorts() const { return ports_.size(); }
    const MemoryPort &port(size_t i) const { return *ports_[i]; }

    /** @return bytes scheduled onto one channel so far. */
    uint64_t channelBytes(int channel) const;

    /**
     * Verify channel_busy_cycles + channel_idle_cycles ==
     * numChannels x elapsed cycles (every channel accrues exactly one of
     * the two each cycle, normal ticking and idle fast-forward alike).
     * Panics on drift; called from the deadlock dumpState path.
     */
    void assertStatInvariant() const;

    StatRegistry &stats() { return stats_; }
    const StatRegistry &stats() const { return stats_; }

  private:
    friend class MemoryPort;

    /** Open-row and access-phase state of one DRAM bank. */
    struct Bank {
        /** Channel-local row index currently open (kNoRow = closed). */
        uint64_t openRow = kNoRow;
        /** Cycle at which the access phase completes (bank reusable). */
        uint64_t busyUntil = 0;
    };
    static constexpr uint64_t kNoRow = ~0ull;

    /** DRAM coordinates of one address under channel interleaving. */
    struct DramLoc {
        int channel = 0;
        int bank = 0;
        /** Channel-local row index (unique per bank+row pair). */
        uint64_t row = 0;
    };
    DramLoc locate(uint64_t addr) const;

    Bank &bankAt(int channel, int bank);
    const Bank &bankAt(int channel, int bank) const;

    void attachPortTrace(MemoryPort &port);

    /** Fold every port's deferred issue accounting into the global
     *  counters (port order; called from tick()'s prologue). */
    void drainDeferredAccounting();

    /**
     * Phase A of the channel-parallel tick: read-only eligibility scan
     * for one channel. Fills `elig[p]` (1 = port p's head is visible,
     * unscheduled, on this channel, and its bank is free) and `conflict`
     * (1 = some such head is blocked only by a busy bank). Writes
     * nothing but this channel's scratch row, so scans of distinct
     * channels are race-free; correctness of using pre-grant state is
     * argued at the call site in tick().
     */
    void scanChannel(int ch, char *elig, char *conflict) const;

    /** Sequential form of the bank-conflict accrual test for one
     *  channel (must match scanChannel's `conflict` bit exactly). */
    bool channelHasBankConflict(int ch) const;
    /** channelHasBankConflict evaluated as-of memory cycle `at`
     *  (tickQuiet evaluates the span's first skipped tick). */
    bool channelHasBankConflictAt(int ch, uint64_t at) const;

    MemoryConfig config_;
    std::vector<std::unique_ptr<MemoryPort>> ports_;
    /** Port indices per local-arbiter group. */
    std::vector<std::vector<size_t>> groupPorts_;
    /** Cycle at which each channel's data bus frees up. */
    std::vector<uint64_t> channelBusyUntil_;
    /** Bank state, numChannels x banksPerChannel, channel-major. */
    std::vector<Bank> banks_;
    /** One global arbiter per channel, selecting among local groups. */
    std::vector<RoundRobinArbiter> globalArbiters_;
    /** One local arbiter per port group, selecting among its ports. */
    std::vector<RoundRobinArbiter> localArbiters_;
    /** Per-tick scratch: groups already granted a channel this cycle. */
    std::vector<char> groupUsedScratch_;
    /** Channel-parallel scan budget (1 = sequential; see setMemThreads). */
    int memThreads_ = 1;
    /** Workers for the channel scan (created on first parallel tick). */
    std::unique_ptr<SimThreadPool> memPool_;
    /** Phase-A scratch: per-channel port-eligibility rows
     *  (numChannels x numPorts) and per-channel conflict bits. */
    std::vector<char> eligScratch_;
    std::vector<char> conflictScratch_;
    /** Sub-requests in flight across all ports. Zero lets tick() skip
     *  arbitration, the bank-conflict scan and retirement entirely, so
     *  per-cycle memory cost tracks traffic rather than port count. */
    size_t pendingSubRequests_ = 0;
    /** In-flight sub-requests not yet granted a channel slot; zero lets
     *  tick() skip the arbitration scan while transfers drain. */
    size_t unscheduledSubRequests_ = 0;
    /** See setDeferredAccounting. */
    bool deferAccounting_ = false;
    /** Ports with retirements in the last tick (deferred mode only). */
    std::vector<size_t> retiredPortsLastTick_;
    uint64_t cycle_ = 0;
    StatRegistry stats_;
    /** Interned hot-path stat handles. */
    StatRegistry::Counter requests_ = stats_.counter("requests");
    StatRegistry::Counter subRequests_ = stats_.counter("sub_requests");
    StatRegistry::Counter coalesced_ =
        stats_.counter("coalesced_sub_requests");
    StatRegistry::Counter readBytes_ = stats_.counter("read_bytes");
    StatRegistry::Counter writeBytes_ = stats_.counter("write_bytes");
    StatRegistry::Counter rowHits_ = stats_.counter("row_hits");
    StatRegistry::Counter rowMisses_ = stats_.counter("row_misses");
    StatRegistry::Counter bankConflictCycles_ =
        stats_.counter("bank_conflict_cycles");
    StatRegistry::Counter channelBusyCycles_ =
        stats_.counter("channel_busy_cycles");
    StatRegistry::Counter channelIdleCycles_ =
        stats_.counter("channel_idle_cycles");
    /** Per-channel scheduled-byte counters ("chN_bytes"). */
    std::vector<StatRegistry::Counter> channelBytes_;
    /** Fallback target so standalone systems work without a Simulator. */
    uint64_t localProgress_ = 0;
    uint64_t *progress_ = &localProgress_;
    /** Tracing attachment (null = disabled; see attachTrace). */
    TraceSink *trace_ = nullptr;
    int tracePid_ = -1;
    std::vector<int> channelTracks_;
    TraceSink::StateId stateSchedule_ = 0;
};

} // namespace genesis::sim

#endif // GENESIS_SIM_MEMORY_H

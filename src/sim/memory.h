/**
 * @file
 * Timing model of the accelerator-attached DRAM (the F1 card's 64 GB).
 *
 * Requests flow through the two-level arbitration of paper Figure 8:
 * each pipeline's memory modules share a port, ports are grouped under
 * local arbiters (one per group of pipelines), and one global arbiter per
 * memory channel picks among local arbiters. Each channel serves one
 * request at a time at a fixed bytes/cycle transfer rate plus a fixed
 * access latency. Addresses interleave across channels at access
 * granularity.
 *
 * The memory system models *timing only* — data contents live in the
 * runtime's device buffers, which the memory reader/writer modules hold
 * directly. This separation keeps the timing model exact while avoiding a
 * byte-accurate DRAM image.
 */

#ifndef GENESIS_SIM_MEMORY_H
#define GENESIS_SIM_MEMORY_H

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "base/stats.h"
#include "sim/arbiter.h"

namespace genesis::sim {

/** Memory system configuration. */
struct MemoryConfig {
    /** Independent DRAM channels (F1 card: 4). */
    int numChannels = 4;
    /** Data-bus bandwidth per channel in bytes per accelerator cycle
     *  (16 B/cycle at 250 MHz = 4 GB/s per channel, 16 GB/s total). */
    uint32_t bytesPerCyclePerChannel = 16;
    /** Fixed access latency in cycles before data starts returning. */
    uint32_t latencyCycles = 40;
    /** Request size granularity in bytes (Section III-C: e.g. 64 B). */
    uint32_t accessGranularity = 64;
    /** Outstanding requests a port may queue. */
    size_t portQueueDepth = 8;
};

class MemorySystem;

/**
 * One requester's interface to the memory system. Each hardware pipeline
 * owns a port; all of its memory readers/writers issue through it.
 * Completions retire in issue order (the DMA engine reorders internally).
 */
class MemoryPort
{
  public:
    /** @return true when the port queue can accept a request. */
    bool canIssue() const;

    /** Queue a request for [addr, addr+bytes). */
    void issue(uint64_t addr, uint32_t bytes, bool is_write);

    /** @return read bytes completed since the last call (and reset). */
    uint64_t takeCompletedReadBytes();

    /** @return true when no requests are outstanding. */
    bool idle() const { return pending_.empty(); }

    /** @return total write bytes fully retired so far. */
    uint64_t retiredWriteBytes() const { return retiredWriteBytes_; }

  private:
    friend class MemorySystem;

    struct Request {
        uint64_t addr = 0;
        uint32_t bytes = 0;
        bool isWrite = false;
        bool scheduled = false;
        uint64_t completeCycle = 0;
    };

    MemoryPort(int id, int group) : id_(id), group_(group) {}

    int id_;
    int group_;
    size_t queueDepth_ = 8;
    std::deque<Request> pending_;
    uint64_t completedReadBytes_ = 0;
    uint64_t retiredWriteBytes_ = 0;
};

/** The timing model proper. */
class MemorySystem
{
  public:
    explicit MemorySystem(const MemoryConfig &config = MemoryConfig());

    const MemoryConfig &config() const { return config_; }

    /**
     * Create a port for one memory module.
     * @param local_group index of the local arbiter (one per hardware
     *        pipeline in Figure 8) this port hangs off
     */
    MemoryPort *makePort(int local_group = 0);

    /** Advance one cycle: arbitrate, schedule, retire. */
    void tick();

    /** @return true when every port is idle. */
    bool idle() const;

    uint64_t cycle() const { return cycle_; }

    StatRegistry &stats() { return stats_; }
    const StatRegistry &stats() const { return stats_; }

  private:
    int channelOf(uint64_t addr) const;

    MemoryConfig config_;
    std::vector<std::unique_ptr<MemoryPort>> ports_;
    /** Port indices per local-arbiter group. */
    std::vector<std::vector<size_t>> groupPorts_;
    /** Cycle at which each channel's data bus frees up. */
    std::vector<uint64_t> channelBusyUntil_;
    /** One global arbiter per channel, selecting among local groups. */
    std::vector<RoundRobinArbiter> globalArbiters_;
    /** One local arbiter per port group, selecting among its ports. */
    std::vector<RoundRobinArbiter> localArbiters_;
    uint64_t cycle_ = 0;
    StatRegistry stats_;
};

} // namespace genesis::sim

#endif // GENESIS_SIM_MEMORY_H

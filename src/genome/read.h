/**
 * @file
 * Aligned read record — the row type of the READS table (paper Table I).
 *
 * Positions are 0-based internally (SAM text serialisation converts to the
 * customary 1-based form). ENDPOS is the exclusive rightmost reference
 * position covered by the alignment.
 */

#ifndef GENESIS_GENOME_READ_H
#define GENESIS_GENOME_READ_H

#include <cstdint>
#include <string>

#include "genome/basepair.h"
#include "genome/cigar.h"

namespace genesis::genome {

/** SAM-style flag bits used by this library. */
enum ReadFlag : uint16_t {
    kFlagPaired = 0x1,        ///< read is one end of a pair
    kFlagProperPair = 0x2,    ///< both ends aligned as expected
    kFlagReverse = 0x10,      ///< read aligned to the reverse strand
    kFlagMateReverse = 0x20,  ///< mate aligned to the reverse strand
    kFlagFirstOfPair = 0x40,  ///< first end of the pair
    kFlagSecondOfPair = 0x80, ///< second end of the pair
    kFlagDuplicate = 0x400,   ///< marked as a PCR/optical duplicate
};

/** An aligned genomic read with its alignment metadata. */
struct AlignedRead {
    /** Read name (fragment identifier; both ends of a pair share it). */
    std::string name;
    /** Chromosome identifier this read aligned to (1..24). */
    uint8_t chr = 0;
    /** 0-based leftmost aligned reference position. */
    int64_t pos = 0;
    /** SAM flag bits (ReadFlag). */
    uint16_t flags = 0;
    /** Mapping quality reported by the aligner. */
    uint8_t mapq = 60;
    /** Alignment CIGAR. */
    Cigar cigar;
    /** Base codes (A=0.. per genome::Base), length = cigar.readLength(). */
    Sequence seq;
    /** Phred quality scores, same length as seq. */
    QualSequence qual;
    /** Read group index (sequencing lane) for BQSR binning. */
    uint16_t readGroup = 0;
    /** Mate chromosome (0 when unpaired). */
    uint8_t mateChr = 0;
    /** Mate 0-based leftmost position (-1 when unpaired). */
    int64_t matePos = -1;

    // --- Metadata tags computed by the Metadata Update stage ---
    /** NM: number of mismatching/inserted/deleted bases; -1 = unset. */
    int32_t nmTag = -1;
    /** MD: reference-recovery string; empty = unset. */
    std::string mdTag;
    /** UQ: sum of quality scores at mismatching bases; -1 = unset. */
    int32_t uqTag = -1;

    bool isPaired() const { return flags & kFlagPaired; }
    bool isReverse() const { return flags & kFlagReverse; }
    bool isFirstOfPair() const { return flags & kFlagFirstOfPair; }
    bool isDuplicate() const { return flags & kFlagDuplicate; }

    void
    setDuplicate(bool dup)
    {
        if (dup)
            flags |= kFlagDuplicate;
        else
            flags &= static_cast<uint16_t>(~kFlagDuplicate);
    }

    /** @return exclusive end position: pos + cigar.referenceLength(). */
    int64_t endPos() const { return pos + cigar.referenceLength(); }

    /**
     * @return the unclipped 5' position used as the duplicate-marking key
     * (Section IV-B): for a forward read, POS minus leading soft clip; for
     * a reverse read, ENDPOS plus trailing soft clip.
     */
    int64_t unclippedFivePrime() const;

    /** @return sum of all quality scores (the Mark Duplicates tiebreak). */
    int64_t qualSum() const;

    /**
     * @return 64-bit duplicate key combining chromosome, unclipped 5'
     * position and orientation, as used to bucket candidate duplicates.
     */
    uint64_t duplicateKey() const;
};

} // namespace genesis::genome

#endif // GENESIS_GENOME_READ_H

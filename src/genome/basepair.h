/**
 * @file
 * Nucleotide base-pair representation.
 *
 * Bases are stored as compact unsigned codes (A=0, C=1, G=2, T=3, N=4)
 * throughout the library so that sequences can be streamed as plain byte
 * columns into the simulated accelerator (Table I in the paper stores
 * SEQ as uint8_t[LEN]).
 */

#ifndef GENESIS_GENOME_BASEPAIR_H
#define GENESIS_GENOME_BASEPAIR_H

#include <cstdint>
#include <string>
#include <vector>

namespace genesis::genome {

/** Compact nucleotide code. */
enum class Base : uint8_t {
    A = 0,
    C = 1,
    G = 2,
    T = 3,
    N = 4, ///< unknown / ambiguous call
};

/** Number of distinct unambiguous bases. */
inline constexpr int kNumBases = 4;

/** A sequence of base codes (one byte per base). */
using Sequence = std::vector<uint8_t>;

/** A sequence of phred-scaled quality scores (one byte per base). */
using QualSequence = std::vector<uint8_t>;

/** @return the character for a base code ('A','C','G','T','N'). */
char baseToChar(uint8_t code);

/** @return the base code for a character; accepts lower case; N otherwise. */
uint8_t charToBase(char c);

/** @return the Watson-Crick complement code (A<->T, C<->G, N->N). */
uint8_t complementBase(uint8_t code);

/** Convert a sequence of base codes to a character string. */
std::string sequenceToString(const Sequence &seq);

/** Convert a character string to a sequence of base codes. */
Sequence stringToSequence(const std::string &s);

/** @return the reverse complement of the given sequence. */
Sequence reverseComplement(const Sequence &seq);

/**
 * Phred-scale helpers. A quality score q encodes an error probability of
 * 10^(-q/10); sequencers report q in roughly [2, 40].
 */
double phredToErrorProb(uint8_t q);

/** Inverse of phredToErrorProb, clamped to [1, 93]. */
uint8_t errorProbToPhred(double p);

} // namespace genesis::genome

#endif // GENESIS_GENOME_BASEPAIR_H

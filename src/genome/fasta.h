/**
 * @file
 * FASTA-lite reference genome IO.
 *
 * Writes/reads the reference sequence in standard FASTA, plus a sidecar
 * ">...;snp" record stream carrying the IS_SNP bitmap as run-length text
 * (FASTA has no standard channel for per-base annotations).
 */

#ifndef GENESIS_GENOME_FASTA_H
#define GENESIS_GENOME_FASTA_H

#include <iosfwd>

#include "genome/reference.h"

namespace genesis::genome {

/** Write the genome in FASTA form (60 columns per line). */
void writeFasta(std::ostream &os, const ReferenceGenome &genome);

/**
 * Read a FASTA stream into a genome. Chromosome ids are parsed from
 * "chrN"/"chrX"/"chrY" names; IS_SNP defaults to all-false unless a
 * matching ";snp" sidecar record follows the sequence record.
 */
ReferenceGenome readFasta(std::istream &is);

/** Write the IS_SNP bitmaps as sidecar records appended to a FASTA body. */
void writeSnpSidecar(std::ostream &os, const ReferenceGenome &genome);

} // namespace genesis::genome

#endif // GENESIS_GENOME_FASTA_H

#include "genome/reference.h"

#include <algorithm>

#include "base/logging.h"

namespace genesis::genome {

std::string
chromosomeName(uint8_t id)
{
    if (id >= 1 && id <= 22)
        return "chr" + std::to_string(static_cast<int>(id));
    if (id == 23)
        return "chrX";
    if (id == 24)
        return "chrY";
    return "chrUn" + std::to_string(static_cast<int>(id));
}

ReferenceGenome
ReferenceGenome::synthesize(const SyntheticGenomeConfig &config)
{
    if (config.numChromosomes < 1)
        fatal("synthetic genome needs at least one chromosome");
    if (config.firstChromosomeLength < 1)
        fatal("synthetic chromosome length must be positive");

    Rng rng(config.seed);
    ReferenceGenome genome;
    double length = static_cast<double>(config.firstChromosomeLength);
    for (int i = 0; i < config.numChromosomes; ++i) {
        Chromosome chrom;
        chrom.id = static_cast<uint8_t>(i + 1);
        chrom.name = chromosomeName(chrom.id);
        auto n = std::max<int64_t>(static_cast<int64_t>(length),
                                   config.minChromosomeLength);
        chrom.seq.reserve(static_cast<size_t>(n));
        chrom.isSnp.reserve(static_cast<size_t>(n));
        for (int64_t p = 0; p < n; ++p) {
            chrom.seq.push_back(static_cast<uint8_t>(rng.below(kNumBases)));
            chrom.isSnp.push_back(rng.chance(config.snpDensity));
        }
        genome.addChromosome(std::move(chrom));
        length *= config.lengthDecay;
    }
    return genome;
}

void
ReferenceGenome::addChromosome(Chromosome chromosome)
{
    if (chromosome.seq.size() != chromosome.isSnp.size())
        fatal("chromosome %s: SNP bitmap size %zu != sequence size %zu",
              chromosome.name.c_str(), chromosome.isSnp.size(),
              chromosome.seq.size());
    if (!chromosomes_.empty() &&
        chromosome.id <= chromosomes_.back().id) {
        fatal("chromosome ids must be added in increasing order "
              "(%d after %d)", chromosome.id, chromosomes_.back().id);
    }
    chromosomes_.push_back(std::move(chromosome));
}

const Chromosome &
ReferenceGenome::chromosome(uint8_t id) const
{
    for (const auto &c : chromosomes_) {
        if (c.id == id)
            return c;
    }
    fatal("unknown chromosome id %d", id);
}

bool
ReferenceGenome::hasChromosome(uint8_t id) const
{
    return std::any_of(chromosomes_.begin(), chromosomes_.end(),
                       [id](const Chromosome &c) { return c.id == id; });
}

int64_t
ReferenceGenome::totalLength() const
{
    int64_t total = 0;
    for (const auto &c : chromosomes_)
        total += c.length();
    return total;
}

uint8_t
ReferenceGenome::baseAt(uint8_t chr_id, int64_t pos) const
{
    const Chromosome &c = chromosome(chr_id);
    if (pos < 0 || pos >= c.length())
        return static_cast<uint8_t>(Base::N);
    return c.seq[static_cast<size_t>(pos)];
}

bool
ReferenceGenome::isSnpAt(uint8_t chr_id, int64_t pos) const
{
    const Chromosome &c = chromosome(chr_id);
    if (pos < 0 || pos >= c.length())
        return false;
    return c.isSnp[static_cast<size_t>(pos)];
}

} // namespace genesis::genome

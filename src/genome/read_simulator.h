/**
 * @file
 * Illumina-like synthetic read generation.
 *
 * The paper's evaluation input is a real NA12878 Illumina run (~700 M reads
 * of up to 151 bp). We cannot ship that data, so this module synthesises a
 * workload with the same structural properties the accelerated stages
 * depend on:
 *
 *  - paired-end reads of fixed length (default 151 bp) with quality scores;
 *  - alignments with soft clips, insertions and deletions (full CIGARs);
 *  - PCR duplicates sharing an unclipped 5' position but differing in
 *    quality scores and clipping (what Mark Duplicates must resolve);
 *  - sample variants placed preferentially at known SNP sites (what BQSR
 *    must mask) plus sequencing errors whose rate carries a systematic
 *    per-read-group / per-cycle bias (what BQSR must measure);
 *  - multiple read groups (sequencing lanes).
 */

#ifndef GENESIS_GENOME_READ_SIMULATOR_H
#define GENESIS_GENOME_READ_SIMULATOR_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "base/rng.h"
#include "genome/read.h"
#include "genome/reference.h"

namespace genesis::genome {

/** Configuration for synthetic read generation. */
struct ReadSimulatorConfig {
    /** Number of read pairs to generate (total reads = 2x this). */
    int64_t numPairs = 10'000;
    /** Fixed read length in base pairs (paper: 151). */
    int readLength = 151;
    /** Mean outer distance between the two ends of a pair. */
    int meanFragmentLength = 400;
    /** Spread of the fragment length (uniform +/- this value). */
    int fragmentLengthJitter = 60;
    /** Number of read groups (sequencing lanes). */
    int numReadGroups = 4;
    /** Mean phred quality score reported by the instrument. */
    int meanQuality = 32;
    /** Quality score jitter (uniform +/- this value, clamped to [2,40]). */
    int qualityJitter = 6;
    /** Probability a read starts an indel event at any aligned base. */
    double indelRate = 0.002;
    /** Maximum indel event length. */
    int maxIndelLength = 3;
    /** Probability that a read end carries a soft clip. */
    double softClipRate = 0.08;
    /** Maximum soft-clip length. */
    int maxSoftClipLength = 12;
    /** Fraction of known SNP sites at which this sample carries a variant. */
    double variantAtSnpRate = 0.3;
    /** Rate of novel (non-dbSNP) variants per base. */
    double novelVariantRate = 1e-5;
    /** Probability that a fragment is PCR-duplicated at least once. */
    double duplicateRate = 0.05;
    /** Mean number of extra copies for a duplicated fragment. */
    double meanExtraCopies = 1.3;
    /**
     * Systematic error-rate multiplier spread across read groups: read
     * group g has multiplier 1 + g * readGroupBias. This is the signal
     * the BQSR covariate table exists to measure.
     */
    double readGroupBias = 0.5;
    /** Extra error-rate multiplier ramped across the read (late cycles). */
    double lateCycleBias = 1.0;
    /** Seed for deterministic generation. */
    uint64_t seed = 1234;
};

/** Output of read simulation. */
struct SimulatedReads {
    /** All reads, coordinate-sorted by (chr, pos). */
    std::vector<AlignedRead> reads;
    /** Ground truth: names of fragments that are PCR duplicates. */
    int64_t trueDuplicatePairs = 0;
    /** Total sequencing errors injected into aligned (M) bases. */
    int64_t injectedErrors = 0;
    /** Total sample-variant bases (mismatching but not errors). */
    int64_t variantBases = 0;
};

/**
 * Generates synthetic aligned reads from a reference genome.
 *
 * The simulator owns a per-sample variant map (reference positions where
 * this individual's genome differs from the reference) that is consistent
 * across all reads, so overlapping reads agree on variants.
 */
class ReadSimulator
{
  public:
    ReadSimulator(const ReferenceGenome &genome,
                  const ReadSimulatorConfig &config);

    /** Generate the configured number of pairs, coordinate-sorted. */
    SimulatedReads simulate();

    /** @return the sample's alternate base at (chr, pos), or -1. */
    int variantAt(uint8_t chr, int64_t pos) const;

  private:
    struct Fragment {
        uint8_t chr = 0;
        int64_t start = 0; ///< 0-based inclusive
        int64_t end = 0;   ///< 0-based exclusive
    };

    Fragment sampleFragment();
    AlignedRead makeRead(const Fragment &frag, bool reverse_end,
                         int64_t pair_index, int read_group);
    void injectQualityAndErrors(AlignedRead &read, SimulatedReads &out);
    AlignedRead makeDuplicate(const AlignedRead &original);

    const ReferenceGenome &genome_;
    ReadSimulatorConfig config_;
    Rng rng_;
    /** chr -> (pos -> alternate base code). */
    std::unordered_map<uint8_t,
                       std::unordered_map<int64_t, uint8_t>> variants_;
    int64_t injectedErrors_ = 0;
    int64_t variantBases_ = 0;
};

} // namespace genesis::genome

#endif // GENESIS_GENOME_READ_SIMULATOR_H

#include "genome/read_simulator.h"

#include <algorithm>

#include "base/logging.h"

namespace genesis::genome {

ReadSimulator::ReadSimulator(const ReferenceGenome &genome,
                             const ReadSimulatorConfig &config)
    : genome_(genome), config_(config), rng_(config.seed)
{
    if (genome_.numChromosomes() == 0)
        fatal("read simulator needs a non-empty reference genome");
    if (config_.readLength < 8)
        fatal("read length %d too short", config_.readLength);
    if (config_.meanFragmentLength < 2 * config_.readLength) {
        fatal("mean fragment length %d must cover two reads of length %d",
              config_.meanFragmentLength, config_.readLength);
    }

    // Build the per-sample variant map. A fixed fraction of known SNP
    // sites carry an alternate allele; novel variants appear at a much
    // lower per-base rate (these are what BQSR will mis-count as errors,
    // mirroring reality).
    for (const auto &chrom : genome_.chromosomes()) {
        auto &chr_variants = variants_[chrom.id];
        for (int64_t p = 0; p < chrom.length(); ++p) {
            bool variant = chrom.isSnp[static_cast<size_t>(p)]
                ? rng_.chance(config_.variantAtSnpRate)
                : rng_.chance(config_.novelVariantRate);
            if (variant) {
                uint8_t ref = chrom.seq[static_cast<size_t>(p)];
                uint8_t alt = static_cast<uint8_t>(
                    (ref + 1 + rng_.below(kNumBases - 1)) % kNumBases);
                chr_variants.emplace(p, alt);
            }
        }
    }
}

int
ReadSimulator::variantAt(uint8_t chr, int64_t pos) const
{
    auto cit = variants_.find(chr);
    if (cit == variants_.end())
        return -1;
    auto pit = cit->second.find(pos);
    return pit == cit->second.end() ? -1 : static_cast<int>(pit->second);
}

ReadSimulator::Fragment
ReadSimulator::sampleFragment()
{
    // Pick a chromosome weighted by length, then a fragment inside it.
    int64_t total = genome_.totalLength();
    int64_t target = static_cast<int64_t>(rng_.below(
        static_cast<uint64_t>(total)));
    const Chromosome *chrom = &genome_.chromosomes().back();
    for (const auto &c : genome_.chromosomes()) {
        if (target < c.length()) {
            chrom = &c;
            break;
        }
        target -= c.length();
    }

    int64_t frag_len = config_.meanFragmentLength +
        rng_.range(-config_.fragmentLengthJitter,
                   config_.fragmentLengthJitter);
    frag_len = std::min<int64_t>(frag_len, chrom->length());
    frag_len = std::max<int64_t>(frag_len, 2 * config_.readLength);

    Fragment frag;
    frag.chr = chrom->id;
    frag.start = static_cast<int64_t>(rng_.below(
        static_cast<uint64_t>(chrom->length() - frag_len + 1)));
    frag.end = frag.start + frag_len;
    return frag;
}

AlignedRead
ReadSimulator::makeRead(const Fragment &frag, bool reverse_end,
                        int64_t pair_index, int read_group)
{
    const Chromosome &chrom = genome_.chromosome(frag.chr);
    const int L = config_.readLength;

    AlignedRead read;
    read.name = "frag" + std::to_string(pair_index);
    read.chr = frag.chr;
    read.readGroup = static_cast<uint16_t>(read_group);
    read.flags = kFlagPaired | kFlagProperPair;
    read.flags |= reverse_end ? (kFlagSecondOfPair | kFlagReverse)
                              : (kFlagFirstOfPair | kFlagMateReverse);
    read.mateChr = frag.chr;

    // Soft clips at the outer edges of the read.
    auto clip_len = [&]() -> int {
        if (!rng_.chance(config_.softClipRate))
            return 0;
        return static_cast<int>(rng_.range(1, config_.maxSoftClipLength));
    };
    int lead_clip = clip_len();
    int tail_clip = clip_len();
    while (lead_clip + tail_clip >= L - 4) {
        // Degenerate; retry with smaller clips to keep an aligned core.
        lead_clip = 0;
        tail_clip = clip_len();
    }
    int core_bases = L - lead_clip - tail_clip;

    // Build the aligned core: walk the reference, occasionally starting
    // indel events. The core must start and end with an M run for a
    // well-formed alignment, so indels may only follow at least one match.
    Cigar core;
    Sequence core_seq;
    int64_t ref_cursor;
    // The 5' end of a forward read sits at the fragment start; a reverse
    // read covers the fragment tail. We lay out the aligned core from its
    // leftmost reference position either way (SAM convention: SEQ stored
    // in reference orientation).
    int read_remaining = core_bases;
    int64_t approx_ref_len = core_bases; // refined as indels occur
    if (reverse_end)
        ref_cursor = std::max<int64_t>(frag.end - approx_ref_len, 0);
    else
        ref_cursor = frag.start;
    int64_t read_start_pos = ref_cursor;

    bool last_was_match = false;
    while (read_remaining > 0) {
        if (last_was_match && read_remaining > 1 &&
            rng_.chance(config_.indelRate)) {
            int ev_len = static_cast<int>(
                rng_.range(1, config_.maxIndelLength));
            if (rng_.chance(0.5)) {
                // Insertion: read bases not present in the reference.
                ev_len = std::min(ev_len, read_remaining - 1);
                for (int i = 0; i < ev_len; ++i) {
                    core_seq.push_back(
                        static_cast<uint8_t>(rng_.below(kNumBases)));
                }
                core.append(static_cast<uint32_t>(ev_len), CigarOp::Insert);
                read_remaining -= ev_len;
            } else {
                // Deletion: reference bases skipped by the read.
                if (ref_cursor + ev_len < chrom.length()) {
                    core.append(static_cast<uint32_t>(ev_len),
                                CigarOp::Delete);
                    ref_cursor += ev_len;
                }
            }
            last_was_match = false;
            continue;
        }
        // One aligned base (sample variants applied; sequencing errors are
        // injected later together with quality scores).
        if (ref_cursor >= chrom.length()) {
            // Ran off the chromosome end: stop the core early and shrink
            // the read by converting the remainder into a trailing clip.
            tail_clip += read_remaining;
            core_bases -= read_remaining;
            read_remaining = 0;
            break;
        }
        uint8_t base = chrom.seq[static_cast<size_t>(ref_cursor)];
        int alt = variantAt(frag.chr, ref_cursor);
        if (alt >= 0) {
            base = static_cast<uint8_t>(alt);
            ++variantBases_;
        }
        core_seq.push_back(base);
        core.append(1, CigarOp::Match);
        ++ref_cursor;
        --read_remaining;
        last_was_match = true;
    }

    // Assemble the full read: [soft clip][core][soft clip].
    read.pos = read_start_pos;
    Cigar full;
    full.append(static_cast<uint32_t>(lead_clip), CigarOp::SoftClip);
    for (const auto &e : core.elements())
        full.append(e.length, e.op);
    full.append(static_cast<uint32_t>(tail_clip), CigarOp::SoftClip);
    read.cigar = std::move(full);

    read.seq.reserve(static_cast<size_t>(L));
    for (int i = 0; i < lead_clip; ++i)
        read.seq.push_back(static_cast<uint8_t>(rng_.below(kNumBases)));
    read.seq.insert(read.seq.end(), core_seq.begin(), core_seq.end());
    for (int i = 0; i < tail_clip; ++i)
        read.seq.push_back(static_cast<uint8_t>(rng_.below(kNumBases)));

    GENESIS_ASSERT(read.seq.size() == read.cigar.readLength(),
                   "read assembly mismatch: seq %zu vs cigar %u",
                   read.seq.size(), read.cigar.readLength());
    return read;
}

void
ReadSimulator::injectQualityAndErrors(AlignedRead &read, SimulatedReads &out)
{
    const size_t n = read.seq.size();
    read.qual.resize(n);
    double rg_mult = 1.0 + read.readGroup * config_.readGroupBias;
    for (size_t i = 0; i < n; ++i) {
        int q = config_.meanQuality +
            static_cast<int>(rng_.range(-config_.qualityJitter,
                                        config_.qualityJitter));
        q = std::clamp(q, 2, 40);
        read.qual[i] = static_cast<uint8_t>(q);

        // Systematic bias: later sequencing cycles are noisier, and some
        // read groups (lanes) are worse than others. This is exactly the
        // structure the BQSR covariate table is designed to expose.
        double cycle_frac = static_cast<double>(i) /
            static_cast<double>(n);
        double mult = rg_mult * (1.0 + cycle_frac * config_.lateCycleBias);
        double p_err = phredToErrorProb(read.qual[i]) * mult;
        if (rng_.chance(p_err)) {
            read.seq[i] = static_cast<uint8_t>(
                (read.seq[i] + 1 + rng_.below(kNumBases - 1)) % kNumBases);
            ++injectedErrors_;
            out.injectedErrors = injectedErrors_;
        }
    }
}

AlignedRead
ReadSimulator::makeDuplicate(const AlignedRead &original)
{
    // A PCR duplicate is the same physical fragment sequenced again: it
    // shares the unclipped 5' position but may be clipped differently and
    // carries fresh quality scores/errors. We re-clip the leading edge and
    // shift POS so unclippedFivePrime() is preserved, which is the exact
    // invariant Mark Duplicates keys on.
    AlignedRead dup = original;
    dup.name = original.name + "_dup";

    if (!dup.isReverse() && dup.cigar.leadingSoftClip() > 0 &&
        rng_.chance(0.5)) {
        // Convert part of the leading soft clip into aligned bases (a
        // different aligner decision for the same fragment).
        auto elems = dup.cigar.elements();
        uint32_t reclaim = 1 + static_cast<uint32_t>(
            rng_.below(elems.front().length));
        Cigar adjusted;
        adjusted.append(elems.front().length - reclaim, CigarOp::SoftClip);
        adjusted.append(reclaim, CigarOp::Match);
        for (size_t i = 1; i < elems.size(); ++i)
            adjusted.append(elems[i].length, elems[i].op);
        dup.cigar = adjusted;
        dup.pos = original.pos - reclaim;
    }
    return dup;
}

SimulatedReads
ReadSimulator::simulate()
{
    SimulatedReads out;
    out.reads.reserve(static_cast<size_t>(config_.numPairs) * 2);

    for (int64_t i = 0; i < config_.numPairs; ++i) {
        Fragment frag = sampleFragment();
        int rg = static_cast<int>(rng_.below(
            static_cast<uint64_t>(config_.numReadGroups)));
        AlignedRead r1 = makeRead(frag, false, i, rg);
        AlignedRead r2 = makeRead(frag, true, i, rg);
        r1.matePos = r2.pos;
        r2.matePos = r1.pos;

        // Duplicates are cloned from the error-free fragment reads:
        // every copy then receives its own independent quality scores
        // and sequencing errors (a PCR duplicate is the same molecule
        // sequenced again, not a copy of another copy's errors).
        int extra_copies = 0;
        if (rng_.chance(config_.duplicateRate)) {
            extra_copies = 1;
            while (rng_.chance(config_.meanExtraCopies - 1.0) &&
                   extra_copies < 6) {
                ++extra_copies;
            }
            out.trueDuplicatePairs += extra_copies;
        }
        std::vector<AlignedRead> copies;
        for (int c = 0; c < extra_copies; ++c) {
            AlignedRead d1 = makeDuplicate(r1);
            AlignedRead d2 = makeDuplicate(r2);
            d1.name += std::to_string(c);
            d2.name += std::to_string(c);
            copies.push_back(std::move(d1));
            copies.push_back(std::move(d2));
        }

        injectQualityAndErrors(r1, out);
        injectQualityAndErrors(r2, out);
        for (auto &copy : copies) {
            injectQualityAndErrors(copy, out);
            out.reads.push_back(std::move(copy));
        }
        out.reads.push_back(std::move(r1));
        out.reads.push_back(std::move(r2));
    }

    std::sort(out.reads.begin(), out.reads.end(),
              [](const AlignedRead &a, const AlignedRead &b) {
                  if (a.chr != b.chr)
                      return a.chr < b.chr;
                  if (a.pos != b.pos)
                      return a.pos < b.pos;
                  return a.name < b.name;
              });
    out.injectedErrors = injectedErrors_;
    out.variantBases = variantBases_;
    return out;
}

} // namespace genesis::genome

#include "genome/read.h"

namespace genesis::genome {

int64_t
AlignedRead::unclippedFivePrime()
const
{
    if (isReverse())
        return endPos() + cigar.trailingSoftClip();
    return pos - cigar.leadingSoftClip();
}

int64_t
AlignedRead::qualSum() const
{
    int64_t sum = 0;
    for (uint8_t q : qual)
        sum += q;
    return sum;
}

uint64_t
AlignedRead::duplicateKey() const
{
    // Layout: [chr:8][orientation:1][unclipped 5' position:40].
    // Positions are always far below 2^40 for human-scale genomes; the
    // +1 bias keeps the occasional negative unclipped position (leading
    // soft clip at the chromosome start) representable.
    uint64_t biased_pos =
        static_cast<uint64_t>(unclippedFivePrime() + 1) & ((1ull << 40) - 1);
    uint64_t orientation = isReverse() ? 1 : 0;
    return (static_cast<uint64_t>(chr) << 41) | (orientation << 40) |
        biased_pos;
}

} // namespace genesis::genome

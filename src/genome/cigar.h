/**
 * @file
 * CIGAR (Concise Idiosyncratic Gapped Alignment Report) handling.
 *
 * A CIGAR summarises how a read aligns to the reference as a list of
 * (length, operation) pairs — aligned (M), inserted (I), deleted (D) and
 * soft-clipped (S), exactly the four operations the paper's Figure 2 uses.
 * The walker in this module is the software ground truth for the hardware
 * ReadToBases module (the ReadExplode operation of Section III-B).
 */

#ifndef GENESIS_GENOME_CIGAR_H
#define GENESIS_GENOME_CIGAR_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "genome/basepair.h"

namespace genesis::genome {

/** Alignment operation kind. */
enum class CigarOp : uint8_t {
    Match = 0,    ///< M: aligned to the reference (match or mismatch)
    Insert = 1,   ///< I: present in the read but not the reference
    Delete = 2,   ///< D: present in the reference but not the read
    SoftClip = 3, ///< S: read bases ignored by the aligner
};

/** @return SAM character for an operation ('M','I','D','S'). */
char cigarOpToChar(CigarOp op);

/** @return operation for a SAM character; throws FatalError otherwise. */
CigarOp charToCigarOp(char c);

/** One (length, operation) element of a CIGAR. */
struct CigarElement {
    uint32_t length = 0;
    CigarOp op = CigarOp::Match;

    bool operator==(const CigarElement &other) const = default;

    /** @return true when this operation consumes read bases (M, I, S). */
    bool consumesRead() const { return op != CigarOp::Delete; }

    /** @return true when this operation consumes reference bases (M, D). */
    bool
    consumesReference() const
    {
        return op == CigarOp::Match || op == CigarOp::Delete;
    }

    /**
     * Pack into the 16-bit encoding of the READS.CIGAR column (Table I):
     * low 2 bits operation, high 14 bits length.
     */
    uint16_t pack() const;

    /** Inverse of pack(). */
    static CigarElement unpack(uint16_t raw);
};

/** A full CIGAR: an ordered list of elements. */
class Cigar
{
  public:
    Cigar() = default;
    explicit Cigar(std::vector<CigarElement> elems);

    /** Parse the SAM text form, e.g. "3S6M1D2M". */
    static Cigar parse(const std::string &text);

    /** @return SAM text form; "*" when empty. */
    std::string str() const;

    const std::vector<CigarElement> &elements() const { return elems_; }
    bool empty() const { return elems_.empty(); }
    size_t size() const { return elems_.size(); }

    /** Append an element, coalescing with the last one when ops match. */
    void append(uint32_t length, CigarOp op);

    /** @return number of read bases consumed (M + I + S lengths). */
    uint32_t readLength() const;

    /** @return number of reference bases consumed (M + D lengths). */
    uint32_t referenceLength() const;

    /** @return number of soft-clipped bases at the front of the read. */
    uint32_t leadingSoftClip() const;

    /** @return number of soft-clipped bases at the end of the read. */
    uint32_t trailingSoftClip() const;

    /** Pack all elements per CigarElement::pack(). */
    std::vector<uint16_t> packAll() const;

    /** Inverse of packAll(). */
    static Cigar unpackAll(const std::vector<uint16_t> &raw);

    bool operator==(const Cigar &other) const = default;

  private:
    std::vector<CigarElement> elems_;
};

/**
 * One exploded base produced by walking a read's CIGAR — the software
 * definition of a ReadExplode output row (paper Figure 3).
 */
struct ExplodedBase {
    /** Reference position, or -1 when the base is an insertion. */
    int64_t refPos = -1;
    /** Read base code, or -1 when the reference base is deleted. */
    int16_t readBase = -1;
    /** Quality score, or -1 when the reference base is deleted. */
    int16_t qual = -1;
    /**
     * Zero-based index of the base within the (clipped) read, i.e. the
     * sequencing cycle; -1 for deleted positions which have no read base.
     */
    int32_t readOffset = -1;

    bool operator==(const ExplodedBase &other) const = default;

    bool isInsertion() const { return refPos < 0; }
    bool isDeletion() const { return readBase < 0; }
};

/**
 * Walk a read's CIGAR and emit one ExplodedBase per aligned/inserted/deleted
 * base. Soft-clipped bases are skipped (they never reach the output, as in
 * Figure 3 of the paper).
 *
 * @param pos leftmost aligned reference position of the read
 * @param cigar the read's CIGAR
 * @param seq read base codes (length must equal cigar.readLength())
 * @param qual quality scores; may be empty, in which case qual = -1
 */
std::vector<ExplodedBase> explodeRead(int64_t pos, const Cigar &cigar,
                                      const Sequence &seq,
                                      const QualSequence &qual);

} // namespace genesis::genome

#endif // GENESIS_GENOME_CIGAR_H

/**
 * @file
 * Reference genome model and synthetic genome generation.
 *
 * The paper evaluates against GRCh38 plus the dbSNP138 known-variant sites.
 * We do not ship those data sets; instead ReferenceGenome can synthesise a
 * deterministic genome of configurable shape (number of chromosomes,
 * lengths, known-SNP density) that exercises the same code paths: the
 * reference sequence column (REF.SEQ) and the known-site bitmap (REF.IS_SNP)
 * of Table I.
 */

#ifndef GENESIS_GENOME_REFERENCE_H
#define GENESIS_GENOME_REFERENCE_H

#include <cstdint>
#include <string>
#include <vector>

#include "base/rng.h"
#include "genome/basepair.h"

namespace genesis::genome {

/** One chromosome: a named contiguous base sequence with a SNP bitmap. */
struct Chromosome {
    /** 1-based chromosome identifier (1..22, 23 = X, 24 = Y). */
    uint8_t id = 0;
    /** Display name ("chr1", "chrX", ...). */
    std::string name;
    /** Base codes for the full chromosome. */
    Sequence seq;
    /** Per-position flag: true when the locus is a known variant site. */
    std::vector<bool> isSnp;

    int64_t length() const { return static_cast<int64_t>(seq.size()); }
};

/** Configuration for synthetic genome generation. */
struct SyntheticGenomeConfig {
    /** Number of chromosomes to generate. */
    int numChromosomes = 2;
    /** Length of the first chromosome in base pairs. */
    int64_t firstChromosomeLength = 1'000'000;
    /**
     * Each subsequent chromosome is this fraction of the previous one's
     * length (human chromosome lengths decay roughly geometrically).
     */
    double lengthDecay = 0.85;
    /** Minimum chromosome length regardless of decay. */
    int64_t minChromosomeLength = 10'000;
    /** Probability that a locus is a known SNP site (dbSNP density). */
    double snpDensity = 0.01;
    /** Seed for deterministic generation. */
    uint64_t seed = 42;
};

/** A complete reference genome: an ordered set of chromosomes. */
class ReferenceGenome
{
  public:
    ReferenceGenome() = default;

    /** Generate a deterministic synthetic genome. */
    static ReferenceGenome synthesize(const SyntheticGenomeConfig &config);

    /** Append a chromosome; ids must be added in increasing order. */
    void addChromosome(Chromosome chromosome);

    const std::vector<Chromosome> &chromosomes() const
    {
        return chromosomes_;
    }

    size_t numChromosomes() const { return chromosomes_.size(); }

    /** @return chromosome by 1-based id; throws FatalError when absent. */
    const Chromosome &chromosome(uint8_t id) const;

    /** @return true when a chromosome with the given id exists. */
    bool hasChromosome(uint8_t id) const;

    /** @return total base pairs across all chromosomes. */
    int64_t totalLength() const;

    /**
     * @return the base code at (chromosome id, 0-based position).
     * Positions outside the chromosome return N.
     */
    uint8_t baseAt(uint8_t chr_id, int64_t pos) const;

    /** @return true when (chr, pos) is a known SNP site. */
    bool isSnpAt(uint8_t chr_id, int64_t pos) const;

  private:
    std::vector<Chromosome> chromosomes_;
};

/** @return canonical display name for a chromosome id ("chr1".."chrY"). */
std::string chromosomeName(uint8_t id);

} // namespace genesis::genome

#endif // GENESIS_GENOME_REFERENCE_H

#include "genome/cigar.h"

#include <cctype>

#include "base/logging.h"

namespace genesis::genome {

char
cigarOpToChar(CigarOp op)
{
    switch (op) {
      case CigarOp::Match: return 'M';
      case CigarOp::Insert: return 'I';
      case CigarOp::Delete: return 'D';
      case CigarOp::SoftClip: return 'S';
    }
    panic("invalid CigarOp %d", static_cast<int>(op));
}

CigarOp
charToCigarOp(char c)
{
    switch (c) {
      case 'M': return CigarOp::Match;
      case 'I': return CigarOp::Insert;
      case 'D': return CigarOp::Delete;
      case 'S': return CigarOp::SoftClip;
      default: fatal("unsupported CIGAR operation '%c'", c);
    }
}

uint16_t
CigarElement::pack() const
{
    GENESIS_ASSERT(length < (1u << 14), "CIGAR length %u too large to pack",
                   length);
    return static_cast<uint16_t>((length << 2) |
                                 static_cast<uint16_t>(op));
}

CigarElement
CigarElement::unpack(uint16_t raw)
{
    CigarElement e;
    e.length = raw >> 2;
    e.op = static_cast<CigarOp>(raw & 0x3);
    return e;
}

Cigar::Cigar(std::vector<CigarElement> elems) : elems_(std::move(elems))
{
    for (const auto &e : elems_) {
        if (e.length == 0)
            fatal("CIGAR element with zero length");
    }
}

Cigar
Cigar::parse(const std::string &text)
{
    Cigar cigar;
    if (text.empty() || text == "*")
        return cigar;
    uint64_t len = 0;
    bool have_len = false;
    for (char c : text) {
        if (std::isdigit(static_cast<unsigned char>(c))) {
            len = len * 10 + static_cast<uint64_t>(c - '0');
            have_len = true;
            if (len >= (1u << 14))
                fatal("CIGAR length overflow in '%s'", text.c_str());
        } else {
            if (!have_len || len == 0)
                fatal("malformed CIGAR '%s'", text.c_str());
            cigar.elems_.push_back(
                {static_cast<uint32_t>(len), charToCigarOp(c)});
            len = 0;
            have_len = false;
        }
    }
    if (have_len)
        fatal("trailing length in CIGAR '%s'", text.c_str());
    return cigar;
}

std::string
Cigar::str() const
{
    if (elems_.empty())
        return "*";
    std::string s;
    for (const auto &e : elems_) {
        s += std::to_string(e.length);
        s += cigarOpToChar(e.op);
    }
    return s;
}

void
Cigar::append(uint32_t length, CigarOp op)
{
    if (length == 0)
        return;
    if (!elems_.empty() && elems_.back().op == op)
        elems_.back().length += length;
    else
        elems_.push_back({length, op});
}

uint32_t
Cigar::readLength() const
{
    uint32_t n = 0;
    for (const auto &e : elems_) {
        if (e.consumesRead())
            n += e.length;
    }
    return n;
}

uint32_t
Cigar::referenceLength() const
{
    uint32_t n = 0;
    for (const auto &e : elems_) {
        if (e.consumesReference())
            n += e.length;
    }
    return n;
}

uint32_t
Cigar::leadingSoftClip() const
{
    return (!elems_.empty() && elems_.front().op == CigarOp::SoftClip)
        ? elems_.front().length : 0;
}

uint32_t
Cigar::trailingSoftClip() const
{
    return (elems_.size() > 1 && elems_.back().op == CigarOp::SoftClip)
        ? elems_.back().length : 0;
}

std::vector<uint16_t>
Cigar::packAll() const
{
    std::vector<uint16_t> raw;
    raw.reserve(elems_.size());
    for (const auto &e : elems_)
        raw.push_back(e.pack());
    return raw;
}

Cigar
Cigar::unpackAll(const std::vector<uint16_t> &raw)
{
    std::vector<CigarElement> elems;
    elems.reserve(raw.size());
    for (uint16_t r : raw)
        elems.push_back(CigarElement::unpack(r));
    return Cigar(std::move(elems));
}

std::vector<ExplodedBase>
explodeRead(int64_t pos, const Cigar &cigar, const Sequence &seq,
            const QualSequence &qual)
{
    GENESIS_ASSERT(seq.size() == cigar.readLength(),
                   "SEQ length %zu does not match CIGAR read length %u",
                   seq.size(), cigar.readLength());
    GENESIS_ASSERT(qual.empty() || qual.size() == seq.size(),
                   "QUAL length %zu does not match SEQ length %zu",
                   qual.size(), seq.size());

    std::vector<ExplodedBase> out;
    out.reserve(seq.size());
    int64_t ref_pos = pos;
    size_t read_idx = 0;
    // Read offset counts only bases that survive clipping, matching the
    // "cycle" notion BQSR uses for unclipped bases.
    int32_t cycle = 0;
    for (const auto &e : cigar.elements()) {
        switch (e.op) {
          case CigarOp::SoftClip:
            read_idx += e.length;
            break;
          case CigarOp::Match:
            for (uint32_t i = 0; i < e.length; ++i) {
                ExplodedBase b;
                b.refPos = ref_pos++;
                b.readBase = seq[read_idx];
                b.qual = qual.empty() ? -1
                    : static_cast<int16_t>(qual[read_idx]);
                b.readOffset = cycle++;
                ++read_idx;
                out.push_back(b);
            }
            break;
          case CigarOp::Insert:
            for (uint32_t i = 0; i < e.length; ++i) {
                ExplodedBase b;
                b.refPos = -1;
                b.readBase = seq[read_idx];
                b.qual = qual.empty() ? -1
                    : static_cast<int16_t>(qual[read_idx]);
                b.readOffset = cycle++;
                ++read_idx;
                out.push_back(b);
            }
            break;
          case CigarOp::Delete:
            for (uint32_t i = 0; i < e.length; ++i) {
                ExplodedBase b;
                b.refPos = ref_pos++;
                out.push_back(b);
            }
            break;
        }
    }
    return out;
}

} // namespace genesis::genome

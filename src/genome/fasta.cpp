#include "genome/fasta.h"

#include <algorithm>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <vector>

#include "base/logging.h"

namespace genesis::genome {

namespace {

constexpr int kFastaColumns = 60;

uint8_t
parseChromosomeId(const std::string &name)
{
    if (name.rfind("chr", 0) != 0)
        fatal("unsupported FASTA record name '%s'", name.c_str());
    std::string suffix = name.substr(3);
    if (suffix == "X")
        return 23;
    if (suffix == "Y")
        return 24;
    try {
        return static_cast<uint8_t>(std::stoi(suffix));
    } catch (const std::exception &) {
        fatal("cannot parse chromosome id from '%s'", name.c_str());
    }
}

} // namespace

void
writeFasta(std::ostream &os, const ReferenceGenome &genome)
{
    for (const auto &chrom : genome.chromosomes()) {
        os << ">" << chrom.name << "\n";
        for (int64_t p = 0; p < chrom.length(); p += kFastaColumns) {
            int64_t n = std::min<int64_t>(kFastaColumns,
                                          chrom.length() - p);
            for (int64_t i = 0; i < n; ++i)
                os << baseToChar(chrom.seq[static_cast<size_t>(p + i)]);
            os << "\n";
        }
    }
}

void
writeSnpSidecar(std::ostream &os, const ReferenceGenome &genome)
{
    // Run-length encoding: alternating run lengths starting with a
    // non-SNP run, e.g. "120 1 44 2" = 120 clear, 1 set, 44 clear, 2 set.
    for (const auto &chrom : genome.chromosomes()) {
        os << ">" << chrom.name << ";snp\n";
        bool current = false;
        int64_t run = 0;
        bool first = true;
        for (int64_t p = 0; p <= chrom.length(); ++p) {
            bool bit = p < chrom.length() &&
                chrom.isSnp[static_cast<size_t>(p)];
            if (p < chrom.length() && bit == current) {
                ++run;
                continue;
            }
            if (!first)
                os << " ";
            os << run;
            first = false;
            current = bit;
            run = 1;
        }
        os << "\n";
    }
}

ReferenceGenome
readFasta(std::istream &is)
{
    // First pass: gather records in order; sidecars fold into their
    // matching sequence records at the end.
    struct Record {
        std::string name;
        bool isSidecar = false;
        std::string body;
    };
    std::vector<Record> records;
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        if (line[0] == '>') {
            Record rec;
            std::string header = line.substr(1);
            auto semi = header.find(";snp");
            if (semi != std::string::npos) {
                rec.name = header.substr(0, semi);
                rec.isSidecar = true;
            } else {
                rec.name = header;
            }
            records.push_back(std::move(rec));
        } else {
            if (records.empty())
                fatal("FASTA body before any record header");
            records.back().body += line;
            records.back().body += ' ';
        }
    }

    std::map<std::string, Chromosome> by_name;
    std::vector<std::string> order;
    for (const auto &rec : records) {
        if (!rec.isSidecar) {
            Chromosome chrom;
            chrom.id = parseChromosomeId(rec.name);
            chrom.name = rec.name;
            for (char c : rec.body) {
                if (c == ' ')
                    continue;
                chrom.seq.push_back(charToBase(c));
            }
            chrom.isSnp.assign(chrom.seq.size(), false);
            order.push_back(rec.name);
            by_name.emplace(rec.name, std::move(chrom));
        }
    }
    for (const auto &rec : records) {
        if (!rec.isSidecar)
            continue;
        auto it = by_name.find(rec.name);
        if (it == by_name.end())
            fatal("SNP sidecar for unknown chromosome '%s'",
                  rec.name.c_str());
        Chromosome &chrom = it->second;
        std::istringstream rls(rec.body);
        int64_t run;
        bool current = false;
        size_t pos = 0;
        while (rls >> run) {
            for (int64_t i = 0; i < run && pos < chrom.isSnp.size(); ++i)
                chrom.isSnp[pos++] = current;
            current = !current;
        }
    }

    ReferenceGenome genome;
    std::sort(order.begin(), order.end(),
              [&](const std::string &a, const std::string &b) {
                  return by_name.at(a).id < by_name.at(b).id;
              });
    for (const auto &name : order)
        genome.addChromosome(std::move(by_name.at(name)));
    return genome;
}

} // namespace genesis::genome

/**
 * @file
 * SAM-lite text serialisation for aligned reads.
 *
 * A simplified, self-consistent subset of the SAM format: the eleven
 * mandatory columns plus the RG/NM/MD/UQ optional tags this library
 * computes. Round-tripping through this format is exercised by tests so
 * synthetic workloads can be inspected and persisted.
 */

#ifndef GENESIS_GENOME_SAMLITE_H
#define GENESIS_GENOME_SAMLITE_H

#include <iosfwd>
#include <string>
#include <vector>

#include "genome/read.h"
#include "genome/reference.h"

namespace genesis::genome {

/** Serialise one read as a SAM-lite text line (no trailing newline). */
std::string readToSamLine(const AlignedRead &read);

/** Parse one SAM-lite text line; throws FatalError on malformed input. */
AlignedRead samLineToRead(const std::string &line);

/** Write a header plus all reads to the given stream. */
void writeSam(std::ostream &os, const ReferenceGenome &genome,
              const std::vector<AlignedRead> &reads);

/** Read all alignment lines from the given stream (header lines skipped). */
std::vector<AlignedRead> readSam(std::istream &is);

} // namespace genesis::genome

#endif // GENESIS_GENOME_SAMLITE_H

#include "genome/samlite.h"

#include <istream>
#include <ostream>
#include <sstream>

#include "base/logging.h"

namespace genesis::genome {

namespace {

/** Split a line into tab-separated fields. */
std::vector<std::string>
splitTabs(const std::string &line)
{
    std::vector<std::string> fields;
    size_t start = 0;
    while (start <= line.size()) {
        size_t tab = line.find('\t', start);
        if (tab == std::string::npos) {
            fields.push_back(line.substr(start));
            break;
        }
        fields.push_back(line.substr(start, tab - start));
        start = tab + 1;
    }
    return fields;
}

int64_t
parseInt(const std::string &s, const char *what)
{
    try {
        size_t idx = 0;
        int64_t v = std::stoll(s, &idx);
        if (idx != s.size())
            fatal("trailing characters in %s field '%s'", what, s.c_str());
        return v;
    } catch (const std::invalid_argument &) {
        fatal("malformed %s field '%s'", what, s.c_str());
    } catch (const std::out_of_range &) {
        fatal("out-of-range %s field '%s'", what, s.c_str());
    }
}

} // namespace

std::string
readToSamLine(const AlignedRead &read)
{
    std::ostringstream os;
    os << read.name << '\t'
       << read.flags << '\t'
       << chromosomeName(read.chr) << '\t'
       << (read.pos + 1) << '\t' // SAM is 1-based
       << static_cast<int>(read.mapq) << '\t'
       << read.cigar.str() << '\t'
       << (read.mateChr == read.chr && read.mateChr != 0
           ? "=" : (read.mateChr ? chromosomeName(read.mateChr) : "*"))
       << '\t'
       << (read.matePos >= 0 ? read.matePos + 1 : 0) << '\t'
       << 0 << '\t' // TLEN unused by this library
       << sequenceToString(read.seq) << '\t';
    for (uint8_t q : read.qual)
        os << static_cast<char>(q + 33);
    if (read.qual.empty())
        os << '*';
    os << "\tRG:Z:rg" << read.readGroup;
    if (read.nmTag >= 0)
        os << "\tNM:i:" << read.nmTag;
    if (!read.mdTag.empty())
        os << "\tMD:Z:" << read.mdTag;
    if (read.uqTag >= 0)
        os << "\tUQ:i:" << read.uqTag;
    return os.str();
}

AlignedRead
samLineToRead(const std::string &line)
{
    auto fields = splitTabs(line);
    if (fields.size() < 11)
        fatal("SAM line has %zu fields, need at least 11", fields.size());

    AlignedRead read;
    read.name = fields[0];
    read.flags = static_cast<uint16_t>(parseInt(fields[1], "FLAG"));

    const std::string &rname = fields[2];
    if (rname.rfind("chr", 0) != 0)
        fatal("unsupported RNAME '%s'", rname.c_str());
    std::string suffix = rname.substr(3);
    if (suffix == "X")
        read.chr = 23;
    else if (suffix == "Y")
        read.chr = 24;
    else
        read.chr = static_cast<uint8_t>(parseInt(suffix, "RNAME"));

    read.pos = parseInt(fields[3], "POS") - 1;
    read.mapq = static_cast<uint8_t>(parseInt(fields[4], "MAPQ"));
    read.cigar = Cigar::parse(fields[5]);
    if (fields[6] == "=")
        read.mateChr = read.chr;
    else if (fields[6] == "*")
        read.mateChr = 0;
    read.matePos = parseInt(fields[7], "PNEXT") - 1;
    read.seq = stringToSequence(fields[9]);
    if (fields[10] != "*") {
        read.qual.reserve(fields[10].size());
        for (char c : fields[10])
            read.qual.push_back(static_cast<uint8_t>(c - 33));
    }

    for (size_t i = 11; i < fields.size(); ++i) {
        const std::string &tag = fields[i];
        if (tag.rfind("RG:Z:rg", 0) == 0) {
            read.readGroup = static_cast<uint16_t>(
                parseInt(tag.substr(7), "RG"));
        } else if (tag.rfind("NM:i:", 0) == 0) {
            read.nmTag = static_cast<int32_t>(parseInt(tag.substr(5), "NM"));
        } else if (tag.rfind("MD:Z:", 0) == 0) {
            read.mdTag = tag.substr(5);
        } else if (tag.rfind("UQ:i:", 0) == 0) {
            read.uqTag = static_cast<int32_t>(parseInt(tag.substr(5), "UQ"));
        }
    }
    return read;
}

void
writeSam(std::ostream &os, const ReferenceGenome &genome,
         const std::vector<AlignedRead> &reads)
{
    os << "@HD\tVN:1.6\tSO:coordinate\n";
    for (const auto &chrom : genome.chromosomes()) {
        os << "@SQ\tSN:" << chrom.name << "\tLN:" << chrom.length()
           << "\n";
    }
    for (const auto &read : reads)
        os << readToSamLine(read) << "\n";
}

std::vector<AlignedRead>
readSam(std::istream &is)
{
    std::vector<AlignedRead> reads;
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty() || line[0] == '@')
            continue;
        reads.push_back(samLineToRead(line));
    }
    return reads;
}

} // namespace genesis::genome

#include "genome/basepair.h"

#include <algorithm>
#include <cmath>

namespace genesis::genome {

char
baseToChar(uint8_t code)
{
    static const char table[] = {'A', 'C', 'G', 'T', 'N'};
    return code < 5 ? table[code] : 'N';
}

uint8_t
charToBase(char c)
{
    switch (c) {
      case 'A': case 'a': return static_cast<uint8_t>(Base::A);
      case 'C': case 'c': return static_cast<uint8_t>(Base::C);
      case 'G': case 'g': return static_cast<uint8_t>(Base::G);
      case 'T': case 't': return static_cast<uint8_t>(Base::T);
      default: return static_cast<uint8_t>(Base::N);
    }
}

uint8_t
complementBase(uint8_t code)
{
    switch (static_cast<Base>(code)) {
      case Base::A: return static_cast<uint8_t>(Base::T);
      case Base::T: return static_cast<uint8_t>(Base::A);
      case Base::C: return static_cast<uint8_t>(Base::G);
      case Base::G: return static_cast<uint8_t>(Base::C);
      default: return static_cast<uint8_t>(Base::N);
    }
}

std::string
sequenceToString(const Sequence &seq)
{
    std::string s;
    s.reserve(seq.size());
    for (uint8_t code : seq)
        s.push_back(baseToChar(code));
    return s;
}

Sequence
stringToSequence(const std::string &s)
{
    Sequence seq;
    seq.reserve(s.size());
    for (char c : s)
        seq.push_back(charToBase(c));
    return seq;
}

Sequence
reverseComplement(const Sequence &seq)
{
    Sequence out;
    out.reserve(seq.size());
    for (auto it = seq.rbegin(); it != seq.rend(); ++it)
        out.push_back(complementBase(*it));
    return out;
}

double
phredToErrorProb(uint8_t q)
{
    return std::pow(10.0, -static_cast<double>(q) / 10.0);
}

uint8_t
errorProbToPhred(double p)
{
    if (p <= 0.0)
        return 93;
    double q = -10.0 * std::log10(p);
    return static_cast<uint8_t>(std::clamp(q, 1.0, 93.0));
}

} // namespace genesis::genome

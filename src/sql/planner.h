/**
 * @file
 * Script-level planning utilities: EXPLAIN output and static validation.
 */

#ifndef GENESIS_SQL_PLANNER_H
#define GENESIS_SQL_PLANNER_H

#include <string>
#include <vector>

#include "sql/ast.h"
#include "sql/optimizer.h"
#include "sql/plan.h"

namespace genesis::sql {

/**
 * EXPLAIN configuration. By default plans render in their optimized
 * form — the one the executor actually runs; `optimize = false` (the
 * shell's --no-opt escape hatch) renders the naive planSelect() tree,
 * and `showBoth` renders the naive and optimized forms side by side.
 */
struct ExplainOptions {
    bool optimize = true;
    bool showBoth = false;
    uint32_t ruleMask = kAllRules;
    /** Table statistics source; may be null (defaults kick in). */
    StatsProvider stats;
};

/**
 * Render every statement's logical plan (EXPLAIN for a whole script).
 * FOR-loop bodies render with the same options as top-level statements,
 * so loop-body plans also show the optimized form.
 */
std::string explainScript(const Script &script,
                          const ExplainOptions &opts = {});

/** Render one select's logical plan. */
std::string explainSelect(const SelectStmt &select,
                          const ExplainOptions &opts = {});

/**
 * Static validation of a script: flags undeclared variable reads, SET
 * before DECLARE, empty FOR bodies, and aggregate misuse. @return list of
 * human-readable problems (empty = valid).
 */
std::vector<std::string> validateScript(const Script &script);

} // namespace genesis::sql

#endif // GENESIS_SQL_PLANNER_H

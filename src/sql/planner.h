/**
 * @file
 * Script-level planning utilities: EXPLAIN output and static validation.
 */

#ifndef GENESIS_SQL_PLANNER_H
#define GENESIS_SQL_PLANNER_H

#include <string>
#include <vector>

#include "sql/ast.h"
#include "sql/plan.h"

namespace genesis::sql {

/** Render every statement's logical plan (EXPLAIN for a whole script). */
std::string explainScript(const Script &script);

/** Render one select's logical plan. */
std::string explainSelect(const SelectStmt &select);

/**
 * Static validation of a script: flags undeclared variable reads, SET
 * before DECLARE, empty FOR bodies, and aggregate misuse. @return list of
 * human-readable problems (empty = valid).
 */
std::vector<std::string> validateScript(const Script &script);

} // namespace genesis::sql

#endif // GENESIS_SQL_PLANNER_H

#include "sql/lexer.h"

#include <cctype>

#include "base/logging.h"

namespace genesis::sql {

namespace {

/** Character-stream cursor with line/column tracking. */
class Cursor
{
  public:
    explicit Cursor(const std::string &text) : text_(text) {}

    bool done() const { return pos_ >= text_.size(); }
    char peek(size_t ahead = 0) const
    {
        size_t i = pos_ + ahead;
        return i < text_.size() ? text_[i] : '\0';
    }

    char
    advance()
    {
        char c = text_[pos_++];
        if (c == '\n') {
            ++line_;
            column_ = 1;
        } else {
            ++column_;
        }
        return c;
    }

    int line() const { return line_; }
    int column() const { return column_; }

  private:
    const std::string &text_;
    size_t pos_ = 0;
    int line_ = 1;
    int column_ = 1;
};

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

} // namespace

std::vector<Token>
tokenize(const std::string &text)
{
    std::vector<Token> tokens;
    Cursor cur(text);

    auto make = [&](TokenKind kind, std::string tok_text = "") {
        Token t;
        t.kind = kind;
        t.text = std::move(tok_text);
        t.line = cur.line();
        t.column = cur.column();
        return t;
    };

    while (!cur.done()) {
        char c = cur.peek();
        if (std::isspace(static_cast<unsigned char>(c))) {
            cur.advance();
            continue;
        }
        // Comments.
        if (c == '-' && cur.peek(1) == '-') {
            while (!cur.done() && cur.peek() != '\n')
                cur.advance();
            continue;
        }
        if (c == '/' && cur.peek(1) == '*') {
            cur.advance();
            cur.advance();
            while (!cur.done() &&
                   !(cur.peek() == '*' && cur.peek(1) == '/')) {
                cur.advance();
            }
            if (cur.done())
                fatal("unterminated block comment at line %d", cur.line());
            cur.advance();
            cur.advance();
            continue;
        }
        // Identifiers / variables / temp names.
        if (isIdentStart(c) || c == '@' || c == '#') {
            TokenKind kind = TokenKind::Identifier;
            if (c == '@') {
                kind = TokenKind::Variable;
                cur.advance();
            } else if (c == '#') {
                kind = TokenKind::TempName;
                cur.advance();
            }
            if (!isIdentStart(cur.peek()))
                fatal("expected name after '%c' at line %d", c, cur.line());
            Token t = make(kind);
            while (isIdentChar(cur.peek()))
                t.text.push_back(cur.advance());
            tokens.push_back(std::move(t));
            continue;
        }
        // Numbers.
        if (std::isdigit(static_cast<unsigned char>(c))) {
            Token t = make(TokenKind::Integer);
            while (std::isdigit(static_cast<unsigned char>(cur.peek())) ||
                   cur.peek() == '_') {
                char d = cur.advance();
                if (d != '_')
                    t.text.push_back(d);
            }
            t.intValue = std::stoll(t.text);
            tokens.push_back(std::move(t));
            continue;
        }
        // Strings.
        if (c == '\'') {
            Token t = make(TokenKind::String);
            cur.advance();
            while (!cur.done() && cur.peek() != '\'')
                t.text.push_back(cur.advance());
            if (cur.done())
                fatal("unterminated string at line %d", t.line);
            cur.advance();
            tokens.push_back(std::move(t));
            continue;
        }
        // Operators and punctuation.
        Token t = make(TokenKind::End);
        cur.advance();
        switch (c) {
          case '(': t.kind = TokenKind::LParen; break;
          case ')': t.kind = TokenKind::RParen; break;
          case ',': t.kind = TokenKind::Comma; break;
          case ';': t.kind = TokenKind::Semicolon; break;
          case '.': t.kind = TokenKind::Dot; break;
          case '*': t.kind = TokenKind::Star; break;
          case ':': t.kind = TokenKind::Colon; break;
          case '+': t.kind = TokenKind::Plus; break;
          case '-': t.kind = TokenKind::Minus; break;
          case '/': t.kind = TokenKind::Slash; break;
          case '%': t.kind = TokenKind::Percent; break;
          case '=':
            if (cur.peek() == '=') {
                cur.advance();
                t.kind = TokenKind::EqEq;
            } else {
                t.kind = TokenKind::Eq;
            }
            break;
          case '!':
            if (cur.peek() == '=') {
                cur.advance();
                t.kind = TokenKind::NotEq;
            } else {
                fatal("unexpected '!' at line %d", cur.line());
            }
            break;
          case '<':
            if (cur.peek() == '=') {
                cur.advance();
                t.kind = TokenKind::LessEq;
            } else if (cur.peek() == '>') {
                cur.advance();
                t.kind = TokenKind::NotEq;
            } else {
                t.kind = TokenKind::Less;
            }
            break;
          case '>':
            if (cur.peek() == '=') {
                cur.advance();
                t.kind = TokenKind::GreaterEq;
            } else {
                t.kind = TokenKind::Greater;
            }
            break;
          default:
            fatal("unexpected character '%c' (0x%02x) at line %d", c,
                  static_cast<unsigned char>(c), cur.line());
        }
        tokens.push_back(std::move(t));
    }
    tokens.push_back(make(TokenKind::End));
    return tokens;
}

} // namespace genesis::sql

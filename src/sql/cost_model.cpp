#include "sql/cost_model.h"

#include <algorithm>
#include <cmath>

#include "base/logging.h"

namespace genesis::sql {

using table::ColumnStats;
using table::TableStats;

CostModel::CostModel(StatsProvider stats) : stats_(std::move(stats))
{
}

const ColumnStats *
CostModel::columnStats(const std::string &qualifier,
                       const std::string &name, const PlanNode &plan) const
{
    // A subquery alias satisfies the qualifier for everything below it.
    std::string qual = qualifier;
    if (!qual.empty() && qual == plan.alias && plan.kind != PlanKind::Scan)
        qual.clear();

    switch (plan.kind) {
      case PlanKind::Scan: {
        if (!qual.empty() && qual != plan.alias && qual != plan.tableName)
            return nullptr;
        if (!stats_)
            return nullptr;
        const TableStats *ts = stats_(plan.tableName);
        return ts ? ts->column(name) : nullptr;
      }
      case PlanKind::Join: {
        const ColumnStats *l = columnStats(qual, name, *plan.children[0]);
        if (l)
            return l;
        return columnStats(qual, name, *plan.children[1]);
      }
      case PlanKind::Project:
      case PlanKind::Aggregate: {
        for (const auto &o : plan.outputs) {
            if (o.name != name)
                continue;
            if (o.expr->kind != ExprKind::ColumnRef)
                return nullptr;
            return columnStats(o.expr->qualifier, o.expr->name,
                               *plan.children[0]);
        }
        return nullptr;
      }
      case PlanKind::Filter:
      case PlanKind::Limit:
        // Filtering only shrinks a column's value set; the child's
        // range/distinct stay valid as upper bounds.
        return columnStats(qual, name, *plan.children[0]);
      case PlanKind::PosExplode:
      case PlanKind::ReadExplode:
        return nullptr;
    }
    return nullptr;
}

namespace {

/** Split "col OP literal-int" (either orientation) out of a binary. */
struct ColLiteralCmp {
    const Expr *col = nullptr;
    int64_t lit = 0;
    std::string op; ///< normalised so the column is on the left
};

std::string
flipOp(const std::string &op)
{
    if (op == "<")
        return ">";
    if (op == ">")
        return "<";
    if (op == "<=")
        return ">=";
    if (op == ">=")
        return "<=";
    return op; // == and != are symmetric
}

bool
matchColLiteral(const Expr &pred, ColLiteralCmp &out)
{
    if (pred.kind != ExprKind::Binary || pred.args.size() != 2)
        return false;
    const Expr &l = *pred.args[0];
    const Expr &r = *pred.args[1];
    if (l.kind == ExprKind::ColumnRef && r.kind == ExprKind::Literal &&
        r.literal.isInt()) {
        out = {&l, r.literal.asInt(), pred.op};
        return true;
    }
    if (r.kind == ExprKind::ColumnRef && l.kind == ExprKind::Literal &&
        l.literal.isInt()) {
        out = {&r, l.literal.asInt(), flipOp(pred.op)};
        return true;
    }
    return false;
}

double
clamp01(double v)
{
    return std::min(1.0, std::max(0.0, v));
}

} // namespace

double
CostModel::selectivity(const Expr &pred, const PlanNode &input) const
{
    switch (pred.kind) {
      case ExprKind::Literal:
        return pred.literal.truthy() ? 1.0 : 0.0;
      case ExprKind::Unary:
        if (pred.op == "NOT")
            return clamp01(1.0 - selectivity(*pred.args[0], input));
        return kDefaultSelectivity;
      case ExprKind::Binary:
        break;
      default:
        return kDefaultSelectivity;
    }

    if (pred.op == "AND") {
        return selectivity(*pred.args[0], input) *
            selectivity(*pred.args[1], input);
    }
    if (pred.op == "OR") {
        double a = selectivity(*pred.args[0], input);
        double b = selectivity(*pred.args[1], input);
        return clamp01(a + b - a * b);
    }

    bool is_cmp = pred.op == "==" || pred.op == "!=" || pred.op == "<" ||
        pred.op == ">" || pred.op == "<=" || pred.op == ">=";
    if (!is_cmp)
        return kDefaultSelectivity;

    // column == column (e.g. residual join predicates).
    if (pred.op == "==" &&
        pred.args[0]->kind == ExprKind::ColumnRef &&
        pred.args[1]->kind == ExprKind::ColumnRef) {
        const ColumnStats *a = columnStats(pred.args[0]->qualifier,
                                           pred.args[0]->name, input);
        const ColumnStats *b = columnStats(pred.args[1]->qualifier,
                                           pred.args[1]->name, input);
        int64_t d = 0;
        if (a && a->hasDistinct)
            d = std::max(d, a->distinct);
        if (b && b->hasDistinct)
            d = std::max(d, b->distinct);
        return d > 0 ? 1.0 / static_cast<double>(d)
                     : kDefaultEqSelectivity;
    }

    ColLiteralCmp cmp;
    if (!matchColLiteral(pred, cmp))
        return kDefaultSelectivity;
    const ColumnStats *cs =
        columnStats(cmp.col->qualifier, cmp.col->name, input);

    if (cmp.op == "==" || cmp.op == "!=") {
        double eq = kDefaultEqSelectivity;
        if (cs && cs->hasDistinct && cs->distinct > 0)
            eq = 1.0 / static_cast<double>(cs->distinct);
        if (cs && cs->hasRange &&
            (cmp.lit < cs->minValue || cmp.lit > cs->maxValue)) {
            eq = 0.0;
        }
        return cmp.op == "==" ? eq : clamp01(1.0 - eq);
    }

    // Range comparison: interpolate within [min, max].
    if (!cs || !cs->hasRange)
        return kDefaultRangeSelectivity;
    double span = static_cast<double>(cs->maxValue - cs->minValue) + 1.0;
    double below; // fraction with value < lit
    if (cmp.lit <= cs->minValue)
        below = 0.0;
    else if (cmp.lit > cs->maxValue)
        below = 1.0;
    else
        below = static_cast<double>(cmp.lit - cs->minValue) / span;
    double at = 0.0; // fraction with value == lit
    if (cmp.lit >= cs->minValue && cmp.lit <= cs->maxValue)
        at = 1.0 / span;
    if (cmp.op == "<")
        return clamp01(below);
    if (cmp.op == "<=")
        return clamp01(below + at);
    if (cmp.op == ">")
        return clamp01(1.0 - below - at);
    return clamp01(1.0 - below); // >=
}

double
CostModel::scanRows(const PlanNode &plan) const
{
    const TableStats *ts = stats_ ? stats_(plan.tableName) : nullptr;
    double rows = ts ? static_cast<double>(ts->rowCount)
                     : kDefaultTableRows;
    if (plan.partition) {
        // A partition scan reads roughly rows / distinct(PID).
        const ColumnStats *pid = ts ? ts->column("PID") : nullptr;
        double parts = pid && pid->hasDistinct && pid->distinct > 0
            ? static_cast<double>(pid->distinct) : 8.0;
        rows /= std::max(1.0, parts);
    }
    return std::max(rows, 0.0);
}

double
CostModel::joinRows(const PlanNode &plan) const
{
    double l = estimateRows(*plan.children[0]);
    double r = estimateRows(*plan.children[1]);
    int64_t d = 0;
    if (plan.leftKey && plan.leftKey->kind == ExprKind::ColumnRef) {
        const ColumnStats *cs =
            columnStats(plan.leftKey->qualifier, plan.leftKey->name,
                        *plan.children[0]);
        if (cs && cs->hasDistinct)
            d = std::max(d, cs->distinct);
    }
    if (plan.rightKey && plan.rightKey->kind == ExprKind::ColumnRef) {
        const ColumnStats *cs =
            columnStats(plan.rightKey->qualifier, plan.rightKey->name,
                        *plan.children[1]);
        if (cs && cs->hasDistinct)
            d = std::max(d, cs->distinct);
    }
    double rows = d > 0 ? l * r / static_cast<double>(d) : std::max(l, r);
    if (plan.joinType == JoinType::Left)
        rows = std::max(rows, l);
    else if (plan.joinType == JoinType::Outer)
        rows = std::max({rows, l, r});
    return rows;
}

double
CostModel::estimateRows(const PlanNode &plan) const
{
    switch (plan.kind) {
      case PlanKind::Scan:
        return scanRows(plan);
      case PlanKind::Project:
        return estimateRows(*plan.children[0]);
      case PlanKind::Filter:
        return estimateRows(*plan.children[0]) *
            selectivity(*plan.predicate, *plan.children[0]);
      case PlanKind::Join:
        return joinRows(plan);
      case PlanKind::Aggregate: {
        double child = estimateRows(*plan.children[0]);
        if (plan.groupBy.empty())
            return 1.0;
        double groups = 1.0;
        bool any = false;
        for (const auto &g : plan.groupBy) {
            if (g->kind != ExprKind::ColumnRef)
                continue;
            const ColumnStats *cs =
                columnStats(g->qualifier, g->name, *plan.children[0]);
            if (cs && cs->hasDistinct && cs->distinct > 0) {
                groups *= static_cast<double>(cs->distinct);
                any = true;
            }
        }
        if (!any)
            groups = child * 0.1;
        return std::max(1.0, std::min(groups, child));
      }
      case PlanKind::Limit: {
        double child = estimateRows(*plan.children[0]);
        if (plan.limitCount &&
            plan.limitCount->kind == ExprKind::Literal &&
            plan.limitCount->literal.isInt()) {
            return std::min(
                child,
                static_cast<double>(plan.limitCount->literal.asInt()));
        }
        return child;
      }
      case PlanKind::PosExplode:
        return estimateRows(*plan.children[0]) * kPosExplodeFanout;
      case PlanKind::ReadExplode:
        return estimateRows(*plan.children[0]) * kReadExplodeFanout;
    }
    return kDefaultTableRows;
}

double
CostModel::estimateCost(const PlanNode &plan) const
{
    double out = estimateRows(plan);
    switch (plan.kind) {
      case PlanKind::Scan:
        return out;
      case PlanKind::Join: {
        double lc = estimateCost(*plan.children[0]);
        double rc = estimateCost(*plan.children[1]);
        double l = estimateRows(*plan.children[0]);
        double r = estimateRows(*plan.children[1]);
        if (plan.joinStrategy == JoinStrategy::Hash) {
            double build = plan.buildLeft ? l : r;
            double probe = plan.buildLeft ? r : l;
            // Building the index costs ~2x a plain pass per row.
            return lc + rc + 2.0 * build + probe + out;
        }
        return lc + rc + l * r + out;
      }
      case PlanKind::Filter:
      case PlanKind::Project:
      case PlanKind::Aggregate:
        return estimateCost(*plan.children[0]) +
            estimateRows(*plan.children[0]) + out;
      case PlanKind::Limit:
      case PlanKind::PosExplode:
      case PlanKind::ReadExplode:
        return estimateCost(*plan.children[0]) + out;
    }
    return out;
}

} // namespace genesis::sql

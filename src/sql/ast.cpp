#include "sql/ast.h"

#include <sstream>

namespace genesis::sql {

ExprPtr
Expr::clone() const
{
    auto copy = std::make_unique<Expr>();
    copy->kind = kind;
    copy->literal = literal;
    copy->qualifier = qualifier;
    copy->name = name;
    copy->op = op;
    copy->args.reserve(args.size());
    for (const auto &a : args)
        copy->args.push_back(a->clone());
    return copy;
}

std::string
Expr::str() const
{
    std::ostringstream os;
    switch (kind) {
      case ExprKind::Literal:
        os << literal.str();
        break;
      case ExprKind::ColumnRef:
        if (!qualifier.empty())
            os << qualifier << ".";
        os << name;
        break;
      case ExprKind::VarRef:
        os << "@" << name;
        break;
      case ExprKind::Binary:
        os << "(" << args[0]->str() << " " << op << " " << args[1]->str()
           << ")";
        break;
      case ExprKind::Unary:
        os << "(" << op << " " << args[0]->str() << ")";
        break;
      case ExprKind::Call:
        os << name << "(";
        for (size_t i = 0; i < args.size(); ++i) {
            if (i)
                os << ", ";
            os << args[i]->str();
        }
        os << ")";
        break;
      case ExprKind::Star:
        os << "*";
        break;
    }
    return os.str();
}

ExprPtr
Expr::makeLiteral(table::Value v)
{
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::Literal;
    e->literal = std::move(v);
    return e;
}

ExprPtr
Expr::makeColumn(std::string qualifier, std::string name)
{
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::ColumnRef;
    e->qualifier = std::move(qualifier);
    e->name = std::move(name);
    return e;
}

ExprPtr
Expr::makeVar(std::string name)
{
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::VarRef;
    e->name = std::move(name);
    return e;
}

ExprPtr
Expr::makeBinary(std::string op, ExprPtr l, ExprPtr r)
{
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::Binary;
    e->op = std::move(op);
    e->args.push_back(std::move(l));
    e->args.push_back(std::move(r));
    return e;
}

ExprPtr
Expr::makeUnary(std::string op, ExprPtr operand)
{
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::Unary;
    e->op = std::move(op);
    e->args.push_back(std::move(operand));
    return e;
}

ExprPtr
Expr::makeCall(std::string name, std::vector<ExprPtr> args)
{
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::Call;
    e->name = std::move(name);
    e->args = std::move(args);
    return e;
}

ExprPtr
Expr::makeStar()
{
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::Star;
    return e;
}

} // namespace genesis::sql

/**
 * @file
 * Logical query plan: the relational-operator tree a parsed select
 * statement lowers to (Section III-D: "SQL queries can be easily parsed
 * into a tree graph where each node represents a table or a relational/
 * computational operator").
 *
 * Both back-ends consume this tree: the software executor (src/engine)
 * interprets it, and the hardware mapper (src/pipeline) translates each
 * node into a Genesis hardware-library module.
 */

#ifndef GENESIS_SQL_PLAN_H
#define GENESIS_SQL_PLAN_H

#include <memory>
#include <string>
#include <vector>

#include "sql/ast.h"

namespace genesis::sql {

struct PlanNode;
using PlanPtr = std::unique_ptr<PlanNode>;

/** Plan operator kinds. */
enum class PlanKind {
    Scan,        ///< read a named (possibly partitioned) table
    Project,     ///< compute output columns from input rows
    Filter,      ///< keep rows satisfying a predicate
    Join,        ///< single-equality-key join of two children
    Aggregate,   ///< grouped or global aggregation
    Limit,       ///< offset/count row window
    PosExplode,  ///< one row per array element, with a position column
    ReadExplode, ///< one row per read base pair (genomics-specific)
};

/** One named output column computed by Project/Aggregate. */
struct OutputColumn {
    ExprPtr expr;
    std::string name;
};

/** Physical join algorithm picked by the optimizer. */
enum class JoinStrategy {
    NestedLoop, ///< naive O(L*R) scan (the seed planner's default)
    Hash,       ///< build a hash index on one side, probe the other
};

/** A logical plan node. */
struct PlanNode {
    PlanKind kind = PlanKind::Scan;
    /** Children: 0 for Scan, 1 for most, 2 for Join (left, right). */
    std::vector<PlanPtr> children;

    // Scan
    std::string tableName;
    ExprPtr partition; ///< PARTITION (expr); may be null
    std::string alias; ///< qualifier this subtree's columns answer to

    // Project / Aggregate
    std::vector<OutputColumn> outputs;
    std::vector<ExprPtr> groupBy;

    // Filter
    ExprPtr predicate;

    // Join
    JoinType joinType = JoinType::Inner;
    ExprPtr leftKey;
    ExprPtr rightKey;
    /** Algorithm; planSelect emits NestedLoop, the optimizer upgrades. */
    JoinStrategy joinStrategy = JoinStrategy::NestedLoop;
    /** Hash joins: build the index on the left child instead of right. */
    bool buildLeft = false;

    // Limit
    ExprPtr limitOffset;
    ExprPtr limitCount;

    // PosExplode: outputs[0] = array column, outputs[1] = initial position
    // ReadExplode: outputs = POS, CIGAR, SEQ [, QUAL] argument expressions

    /** Render the plan tree with indentation (for docs and debugging). */
    std::string str(int indent = 0) const;

    /** Deep copy of the subtree (expressions cloned). */
    PlanPtr clone() const;
};

/**
 * Lower a parsed select statement into a logical plan tree.
 * Aggregation is detected from aggregate calls (COUNT/SUM/MIN/MAX) in the
 * select list; joins lower to binary Join nodes left-deep.
 */
PlanPtr planSelect(const SelectStmt &select);

/** @return true when the expression contains an aggregate call. */
bool containsAggregate(const Expr &expr);

} // namespace genesis::sql

#endif // GENESIS_SQL_PLAN_H

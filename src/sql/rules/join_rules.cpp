/**
 * @file
 * Join rules: upgrade equality joins to hash strategy with the smaller
 * side as the build input, and reorder inner-join chains greedily by
 * estimated cardinality.
 *
 * Reordering changes the joined table's column layout and row order, so
 * it only fires under an Aggregate (grouped output is emitted in sorted
 * group order and the aggregate functions are commutative) and only
 * when every column reference between the Aggregate and the scans is
 * qualified — unqualified references could resolve differently once the
 * layout changes.
 */

#include <algorithm>
#include <functional>
#include <limits>

#include "sql/rules/rules.h"

namespace genesis::sql::rules {

PlanPtr
chooseHashJoins(PlanPtr plan, const RuleContext &ctx)
{
    for (auto &child : plan->children)
        child = chooseHashJoins(std::move(child), ctx);
    if (plan->kind != PlanKind::Join || !plan->leftKey || !plan->rightKey)
        return plan;
    plan->joinStrategy = JoinStrategy::Hash;
    plan->buildLeft = ctx.model.estimateRows(*plan->children[0]) <
        ctx.model.estimateRows(*plan->children[1]);
    return plan;
}

namespace {

/** One base relation of a join chain (kept with its pushed filters). */
struct Relation {
    PlanPtr plan;
    std::vector<std::string> quals;
};

/** One equality condition between two relations. */
struct Condition {
    ExprPtr a;
    ExprPtr b;
    size_t relA = 0;
    size_t relB = 0;
    bool used = false;
};

/** @return index of the relation a qualified key resolves to, or -1. */
int
relationOf(const Expr &key, const std::vector<Relation> &rels)
{
    if (key.kind != ExprKind::ColumnRef || key.qualifier.empty())
        return -1;
    int found = -1;
    for (size_t i = 0; i < rels.size(); ++i) {
        const auto &q = rels[i].quals;
        if (std::find(q.begin(), q.end(), key.qualifier) == q.end())
            continue;
        if (found >= 0)
            return -1; // qualifier ambiguous across relations
        found = static_cast<int>(i);
    }
    return found;
}

/**
 * Flatten a left-deep inner-join chain into relations + conditions.
 * @return false when the chain cannot be reordered safely.
 */
bool
flattenChain(PlanPtr plan, std::vector<Relation> &rels,
             std::vector<Condition> &conds)
{
    if (plan->kind == PlanKind::Join &&
        plan->joinType == JoinType::Inner && plan->leftKey &&
        plan->rightKey) {
        ExprPtr a = std::move(plan->leftKey);
        ExprPtr b = std::move(plan->rightKey);
        PlanPtr left = std::move(plan->children[0]);
        PlanPtr right = std::move(plan->children[1]);
        if (!flattenChain(std::move(left), rels, conds))
            return false;
        rels.push_back({std::move(right), {}});
        rels.back().quals = subtreeQualifiers(*rels.back().plan);
        Condition c;
        c.a = std::move(a);
        c.b = std::move(b);
        conds.push_back(std::move(c));
        return true;
    }
    rels.push_back({std::move(plan), {}});
    rels.back().quals = subtreeQualifiers(*rels.back().plan);
    return true;
}

PlanPtr
buildJoin(PlanPtr left, PlanPtr right, ExprPtr lkey, ExprPtr rkey)
{
    auto j = std::make_unique<PlanNode>();
    j->kind = PlanKind::Join;
    j->joinType = JoinType::Inner;
    j->leftKey = std::move(lkey);
    j->rightKey = std::move(rkey);
    j->children.push_back(std::move(left));
    j->children.push_back(std::move(right));
    return j;
}

/**
 * Greedily rebuild the chain: start from the smallest relation, then
 * repeatedly take the connecting condition whose join produces the
 * fewest estimated rows. @return null when the graph is disconnected
 * or a key does not resolve to exactly one relation.
 */
PlanPtr
greedyOrder(std::vector<Relation> rels, std::vector<Condition> conds,
            const CostModel &model)
{
    for (auto &c : conds) {
        int ra = relationOf(*c.a, rels);
        int rb = relationOf(*c.b, rels);
        if (ra < 0 || rb < 0 || ra == rb)
            return nullptr;
        c.relA = static_cast<size_t>(ra);
        c.relB = static_cast<size_t>(rb);
    }

    size_t start = 0;
    double best_rows = std::numeric_limits<double>::max();
    for (size_t i = 0; i < rels.size(); ++i) {
        double rows = model.estimateRows(*rels[i].plan);
        if (rows < best_rows) {
            best_rows = rows;
            start = i;
        }
    }

    std::vector<bool> joined(rels.size(), false);
    joined[start] = true;
    PlanPtr tree = std::move(rels[start].plan);

    for (size_t step = 0; step + 1 < rels.size(); ++step) {
        int best = -1;
        double best_est = std::numeric_limits<double>::max();
        PlanPtr best_tree;
        for (size_t ci = 0; ci < conds.size(); ++ci) {
            auto &c = conds[ci];
            if (c.used || joined[c.relA] == joined[c.relB])
                continue;
            size_t next = joined[c.relA] ? c.relB : c.relA;
            ExprPtr lkey = joined[c.relA] ? c.a->clone() : c.b->clone();
            ExprPtr rkey = joined[c.relA] ? c.b->clone() : c.a->clone();
            PlanPtr trial =
                buildJoin(tree->clone(), rels[next].plan->clone(),
                          std::move(lkey), std::move(rkey));
            double est = model.estimateRows(*trial);
            if (est < best_est) {
                best_est = est;
                best = static_cast<int>(ci);
                best_tree = std::move(trial);
            }
        }
        if (best < 0)
            return nullptr; // disconnected chain
        auto &c = conds[static_cast<size_t>(best)];
        c.used = true;
        size_t next = joined[c.relA] ? c.relB : c.relA;
        joined[next] = true;
        tree = std::move(best_tree);
        rels[next].plan.reset();
    }

    // A condition left over means a redundant edge we cannot express
    // as a left-deep chain; bail out.
    for (const auto &c : conds) {
        if (!c.used)
            return nullptr;
    }
    return tree;
}

/**
 * Reorder the inner-join chain under an order-insensitive parent.
 * `aboveExprs` are the expressions evaluated above the chain (aggregate
 * outputs, group keys, interleaved filter predicates) — all of their
 * column references must be qualified for the rewrite to be safe.
 */
PlanPtr
maybeReorderChain(PlanPtr chain, std::vector<const Expr *> aboveExprs,
                  const RuleContext &ctx)
{
    // Collect filters sitting between the parent and the first join;
    // they ride on top of the reordered chain.
    std::vector<ExprPtr> filters; // outermost first
    while (chain->kind == PlanKind::Filter) {
        aboveExprs.push_back(chain->predicate.get());
        filters.push_back(std::move(chain->predicate));
        chain = std::move(chain->children[0]);
    }
    auto rebuild = [&](PlanPtr core) {
        for (auto it = filters.rbegin(); it != filters.rend(); ++it) {
            auto f = std::make_unique<PlanNode>();
            f->kind = PlanKind::Filter;
            f->predicate = std::move(*it);
            f->children.push_back(std::move(core));
            core = std::move(f);
        }
        return core;
    };
    if (chain->kind != PlanKind::Join ||
        chain->joinType != JoinType::Inner) {
        return rebuild(std::move(chain));
    }

    auto all_quals = subtreeQualifiers(*chain);
    // Like refsWithin, but COUNT(*) is layout-independent and allowed.
    std::function<bool(const Expr &)> refs_ok =
        [&](const Expr &e) -> bool {
        if (e.kind == ExprKind::Call && e.name == "COUNT" &&
            e.args.size() == 1 && e.args[0]->kind == ExprKind::Star) {
            return true;
        }
        if (e.kind == ExprKind::Star)
            return false;
        if (e.kind == ExprKind::ColumnRef)
            return refsWithin(e, all_quals);
        for (const auto &arg : e.args) {
            if (!refs_ok(*arg))
                return false;
        }
        return true;
    };
    for (const Expr *e : aboveExprs) {
        if (!refs_ok(*e))
            return rebuild(std::move(chain));
    }

    PlanPtr original = chain->clone();
    std::vector<Relation> rels;
    std::vector<Condition> conds;
    if (!flattenChain(std::move(chain), rels, conds))
        return rebuild(std::move(original));
    if (rels.size() < 2 || conds.size() + 1 != rels.size())
        return rebuild(std::move(original));

    PlanPtr reordered =
        greedyOrder(std::move(rels), std::move(conds), ctx.model);
    if (!reordered)
        return rebuild(std::move(original));
    if (ctx.model.estimateCost(*reordered) <
        ctx.model.estimateCost(*original)) {
        return rebuild(std::move(reordered));
    }
    return rebuild(std::move(original));
}

} // namespace

PlanPtr
reorderJoins(PlanPtr plan, const RuleContext &ctx)
{
    for (auto &child : plan->children)
        child = reorderJoins(std::move(child), ctx);
    if (plan->kind != PlanKind::Aggregate)
        return plan;
    std::vector<const Expr *> above;
    for (const auto &o : plan->outputs)
        above.push_back(o.expr.get());
    for (const auto &g : plan->groupBy)
        above.push_back(g.get());
    plan->children[0] = maybeReorderChain(std::move(plan->children[0]),
                                          std::move(above), ctx);
    return plan;
}

} // namespace genesis::sql::rules

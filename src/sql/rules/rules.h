/**
 * @file
 * Internal interface between the optimizer driver and its rewrite
 * rules. Each rule consumes and returns plan ownership and must be a
 * no-op when its bit is absent from the mask.
 */

#ifndef GENESIS_SQL_RULES_RULES_H
#define GENESIS_SQL_RULES_RULES_H

#include <string>
#include <vector>

#include "sql/cost_model.h"
#include "sql/optimizer.h"
#include "sql/plan.h"

namespace genesis::sql::rules {

/** Shared state threaded through every rule. */
struct RuleContext {
    uint32_t mask = kAllRules;
    const CostModel &model;
};

// predicate_rules.cpp
PlanPtr splitFilters(PlanPtr plan, const RuleContext &ctx);
PlanPtr orderFilters(PlanPtr plan, const RuleContext &ctx);
PlanPtr mergeFilters(PlanPtr plan, const RuleContext &ctx);

// filter_pushdown.cpp
PlanPtr pushdownFilters(PlanPtr plan, const RuleContext &ctx);

// join_rules.cpp
PlanPtr reorderJoins(PlanPtr plan, const RuleContext &ctx);
PlanPtr chooseHashJoins(PlanPtr plan, const RuleContext &ctx);

// --- shared helpers (defined in predicate_rules.cpp) -------------------

/** Qualifiers a subtree's columns answer to (aliases + scan names). */
std::vector<std::string> subtreeQualifiers(const PlanNode &plan);

/**
 * @return true when every ColumnRef in the expression carries a
 * qualifier contained in `quals`. An unqualified reference fails: it
 * could resolve against either join side, so callers must not move
 * the predicate across the join.
 */
bool refsWithin(const Expr &expr, const std::vector<std::string> &quals);

/** @return true when the expression contains any ColumnRef at all. */
bool hasColumnRef(const Expr &expr);

} // namespace genesis::sql::rules

#endif // GENESIS_SQL_RULES_RULES_H

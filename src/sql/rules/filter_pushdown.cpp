/**
 * @file
 * Filter pushdown: sink each Filter as close to its source scan as the
 * join/projection semantics allow, shrinking every operator above it.
 *
 * Safety rules (each preserves the exact output rows and row order):
 *  - below a join, a predicate moves to the left side only for
 *    INNER/LEFT joins and to the right side only for INNER joins —
 *    pushing past the null-extending side of an outer join would
 *    resurrect rows the post-join filter drops;
 *  - predicates with any unqualified column reference never cross a
 *    join (the reference could resolve against either side);
 *  - through a projection, output names substitute back to their
 *    defining expressions, and only when output names are unique;
 *  - key transfer (INNER only): `a.k == 42` on one side of
 *    `a.k == b.k` implies `b.k == 42` on the other, letting both scans
 *    prune before the join.
 */

#include "sql/rules/rules.h"

namespace genesis::sql::rules {

namespace {

PlanPtr
makeFilter(ExprPtr pred, PlanPtr child)
{
    auto f = std::make_unique<PlanNode>();
    f->kind = PlanKind::Filter;
    f->predicate = std::move(pred);
    f->children.push_back(std::move(child));
    return f;
}

bool
sameColumn(const Expr &a, const Expr &b)
{
    return a.kind == ExprKind::ColumnRef && b.kind == ExprKind::ColumnRef &&
        a.qualifier == b.qualifier && a.name == b.name;
}

/** Match `col == int-literal` in either orientation. */
bool
matchKeyEquality(const Expr &pred, const Expr *&col, const Expr *&lit)
{
    if (pred.kind != ExprKind::Binary || pred.op != "==")
        return false;
    const Expr &l = *pred.args[0];
    const Expr &r = *pred.args[1];
    if (l.kind == ExprKind::ColumnRef && r.kind == ExprKind::Literal &&
        r.literal.isInt()) {
        col = &l;
        lit = &r;
        return true;
    }
    if (r.kind == ExprKind::ColumnRef && l.kind == ExprKind::Literal &&
        l.literal.isInt()) {
        col = &r;
        lit = &l;
        return true;
    }
    return false;
}

/**
 * Rewrite `pred` so it reads the projection's input instead of its
 * output: every ColumnRef naming an output column is replaced by that
 * column's defining expression. @return false when any reference does
 * not map cleanly (then the filter must stay above the projection).
 */
bool
substituteThroughProject(Expr &pred, const PlanNode &proj)
{
    if (pred.kind == ExprKind::Star)
        return false;
    if (pred.kind == ExprKind::ColumnRef) {
        if (!pred.qualifier.empty() && pred.qualifier != proj.alias)
            return false;
        const OutputColumn *match = nullptr;
        for (const auto &o : proj.outputs) {
            if (o.name != pred.name)
                continue;
            if (match)
                return false; // duplicate output name: ambiguous
            match = &o;
        }
        if (!match)
            return false;
        ExprPtr repl = match->expr->clone();
        pred = std::move(*repl);
        return true;
    }
    for (auto &arg : pred.args) {
        if (!substituteThroughProject(*arg, proj))
            return false;
    }
    return true;
}

/**
 * Place Filter(pred) over `input`, sinking it as deep as the mask and
 * semantics allow. Consumes both; returns the combined subtree.
 */
PlanPtr
sink(ExprPtr pred, PlanPtr input, const RuleContext &ctx)
{
    bool push = (ctx.mask & kRulePushdown) != 0;
    switch (input->kind) {
      case PlanKind::Filter:
        if (push) {
            input->children[0] =
                sink(std::move(pred), std::move(input->children[0]), ctx);
            return input;
        }
        break;
      case PlanKind::Project: {
        if (!push)
            break;
        ExprPtr trial = pred->clone();
        if (substituteThroughProject(*trial, *input)) {
            input->children[0] =
                sink(std::move(trial), std::move(input->children[0]),
                     ctx);
            return input;
        }
        break;
      }
      case PlanKind::Join: {
        auto left_quals = subtreeQualifiers(*input->children[0]);
        auto right_quals = subtreeQualifiers(*input->children[1]);

        // Key transfer: a literal equality on one join key implies the
        // same equality on the other key (INNER joins only — the
        // filtered-away rows could never have matched).
        if ((ctx.mask & kRuleTransfer) &&
            input->joinType == JoinType::Inner && input->leftKey &&
            input->rightKey) {
            const Expr *col = nullptr;
            const Expr *lit = nullptr;
            if (matchKeyEquality(*pred, col, lit)) {
                const Expr *mirror = nullptr;
                if (sameColumn(*col, *input->leftKey))
                    mirror = input->rightKey.get();
                else if (sameColumn(*col, *input->rightKey))
                    mirror = input->leftKey.get();
                // Place the mirrored predicate on whichever side the
                // other key resolves against; skip when ambiguous.
                if (mirror) {
                    bool m_left = refsWithin(*mirror, left_quals);
                    bool m_right = refsWithin(*mirror, right_quals);
                    if (m_left != m_right) {
                        ExprPtr mirrored = Expr::makeBinary(
                            "==", mirror->clone(), lit->clone());
                        size_t side = m_right ? 1 : 0;
                        input->children[side] =
                            sink(std::move(mirrored),
                                 std::move(input->children[side]), ctx);
                    }
                }
            }
        }

        if (push) {
            if (refsWithin(*pred, left_quals) &&
                input->joinType != JoinType::Outer) {
                input->children[0] =
                    sink(std::move(pred),
                         std::move(input->children[0]), ctx);
                return input;
            }
            if (refsWithin(*pred, right_quals) &&
                input->joinType == JoinType::Inner) {
                input->children[1] =
                    sink(std::move(pred),
                         std::move(input->children[1]), ctx);
                return input;
            }
        }
        break;
      }
      default:
        break;
    }
    return makeFilter(std::move(pred), std::move(input));
}

} // namespace

PlanPtr
pushdownFilters(PlanPtr plan, const RuleContext &ctx)
{
    for (auto &child : plan->children)
        child = pushdownFilters(std::move(child), ctx);
    if (plan->kind != PlanKind::Filter)
        return plan;
    ExprPtr pred = std::move(plan->predicate);
    PlanPtr child = std::move(plan->children[0]);
    return sink(std::move(pred), std::move(child), ctx);
}

} // namespace genesis::sql::rules

/**
 * @file
 * Predicate-shape rules: split conjunctions into filter stacks, order
 * stacked filters most-selective-first, and merge adjacent filters back
 * into one pass. All three preserve the kept row set and row order:
 * AND evaluates to a non-null boolean, so `Filter(a AND b)` keeps
 * exactly the rows `Filter(b)(Filter(a))` keeps.
 */

#include <algorithm>

#include "sql/rules/rules.h"

namespace genesis::sql::rules {

std::vector<std::string>
subtreeQualifiers(const PlanNode &plan)
{
    std::vector<std::string> quals;
    if (!plan.alias.empty())
        quals.push_back(plan.alias);
    if (plan.kind == PlanKind::Scan) {
        if (plan.tableName != plan.alias)
            quals.push_back(plan.tableName);
        return quals;
    }
    for (const auto &child : plan.children) {
        for (auto &q : subtreeQualifiers(*child)) {
            if (std::find(quals.begin(), quals.end(), q) == quals.end())
                quals.push_back(q);
        }
    }
    return quals;
}

bool
refsWithin(const Expr &expr, const std::vector<std::string> &quals)
{
    if (expr.kind == ExprKind::Star)
        return false;
    if (expr.kind == ExprKind::ColumnRef) {
        if (expr.qualifier.empty())
            return false;
        return std::find(quals.begin(), quals.end(), expr.qualifier) !=
            quals.end();
    }
    for (const auto &arg : expr.args) {
        if (!refsWithin(*arg, quals))
            return false;
    }
    return true;
}

bool
hasColumnRef(const Expr &expr)
{
    if (expr.kind == ExprKind::ColumnRef)
        return true;
    for (const auto &arg : expr.args) {
        if (hasColumnRef(*arg))
            return true;
    }
    return false;
}

namespace {

void
flattenConjuncts(ExprPtr pred, std::vector<ExprPtr> &out)
{
    if (pred->kind == ExprKind::Binary && pred->op == "AND") {
        ExprPtr l = std::move(pred->args[0]);
        ExprPtr r = std::move(pred->args[1]);
        flattenConjuncts(std::move(l), out);
        flattenConjuncts(std::move(r), out);
        return;
    }
    out.push_back(std::move(pred));
}

PlanPtr
makeFilter(ExprPtr pred, PlanPtr child)
{
    auto f = std::make_unique<PlanNode>();
    f->kind = PlanKind::Filter;
    f->predicate = std::move(pred);
    f->children.push_back(std::move(child));
    return f;
}

} // namespace

PlanPtr
splitFilters(PlanPtr plan, const RuleContext &ctx)
{
    for (auto &child : plan->children)
        child = splitFilters(std::move(child), ctx);
    if (plan->kind != PlanKind::Filter)
        return plan;
    std::vector<ExprPtr> conjuncts;
    flattenConjuncts(std::move(plan->predicate), conjuncts);
    PlanPtr result = std::move(plan->children[0]);
    // Source order is preserved: the leftmost conjunct runs first
    // (innermost filter).
    for (auto &c : conjuncts)
        result = makeFilter(std::move(c), std::move(result));
    return result;
}

PlanPtr
orderFilters(PlanPtr plan, const RuleContext &ctx)
{
    if (plan->kind == PlanKind::Filter) {
        // Collect the maximal filter chain (outermost first).
        std::vector<ExprPtr> preds;
        PlanPtr base = std::move(plan);
        while (base->kind == PlanKind::Filter) {
            preds.push_back(std::move(base->predicate));
            base = std::move(base->children[0]);
        }
        base = orderFilters(std::move(base), ctx);

        // Stable-sort so the most selective predicate runs first.
        std::vector<size_t> order(preds.size());
        for (size_t i = 0; i < preds.size(); ++i)
            order[i] = i;
        std::vector<double> sel(preds.size());
        for (size_t i = 0; i < preds.size(); ++i)
            sel[i] = ctx.model.selectivity(*preds[i], *base);
        // preds[] is outermost-first; the original innermost (source
        // first) predicate is the last entry, so ties keep source order
        // by preferring higher indices first when rebuilding.
        std::stable_sort(order.begin(), order.end(),
                         [&](size_t a, size_t b) {
                             if (sel[a] != sel[b])
                                 return sel[a] > sel[b];
                             return a < b;
                         });
        // Rebuild: order[] now lists outermost..innermost.
        for (auto it = order.rbegin(); it != order.rend(); ++it)
            base = makeFilter(std::move(preds[*it]), std::move(base));
        return base;
    }
    for (auto &child : plan->children)
        child = orderFilters(std::move(child), ctx);
    return plan;
}

PlanPtr
mergeFilters(PlanPtr plan, const RuleContext &ctx)
{
    for (auto &child : plan->children)
        child = mergeFilters(std::move(child), ctx);
    if (plan->kind != PlanKind::Filter ||
        plan->children[0]->kind != PlanKind::Filter) {
        return plan;
    }
    // Children were merged already, so the child chain is 1 deep.
    PlanPtr inner = std::move(plan->children[0]);
    // Keep evaluation order: the inner (first-run) predicate becomes
    // the left AND operand.
    plan->predicate = Expr::makeBinary("AND", std::move(inner->predicate),
                                       std::move(plan->predicate));
    plan->children[0] = std::move(inner->children[0]);
    return plan;
}

} // namespace genesis::sql::rules

/**
 * @file
 * Rule-based logical plan optimizer.
 *
 * optimizePlan() rewrites a naive planSelect() tree into an equivalent,
 * cheaper one. Every rewrite is result-preserving down to row order and
 * byte-identical cells — the plan-equivalence differential battery
 * (tests/optimizer_diff_test.cpp) enforces this over a query grid —
 * so join reordering only fires in order-insensitive (aggregated)
 * contexts.
 *
 * Rules can be toggled individually through a bit mask, either in code
 * or via the GENESIS_OPT_RULES environment variable:
 *   GENESIS_OPT_RULES=all | none | [-]name[,[-]name...]
 * e.g. "-reorder" enables everything except join reordering, and
 * "split,order" enables exactly those two rules.
 */

#ifndef GENESIS_SQL_OPTIMIZER_H
#define GENESIS_SQL_OPTIMIZER_H

#include <cstdint>
#include <string>

#include "sql/cost_model.h"
#include "sql/plan.h"

namespace genesis::sql {

/** Rewrite-rule bits. */
inline constexpr uint32_t kRuleSplit = 1u << 0;       ///< split AND filters
inline constexpr uint32_t kRulePushdown = 1u << 1;    ///< push filters down
inline constexpr uint32_t kRuleTransfer = 1u << 2;    ///< mirror key preds
inline constexpr uint32_t kRuleJoinReorder = 1u << 3; ///< reorder join chains
inline constexpr uint32_t kRuleHashJoin = 1u << 4;    ///< pick hash strategy
inline constexpr uint32_t kRuleMerge = 1u << 5;       ///< merge filter stacks
inline constexpr uint32_t kRuleFilterOrder = 1u << 6; ///< selective-first
inline constexpr uint32_t kAllRules = 0x7f;

/** @return short name of a single rule bit ("split", "reorder", ...). */
const char *ruleName(uint32_t bit);

/** Parse a GENESIS_OPT_RULES-style spec into a mask (fatal on typos). */
uint32_t ruleMaskFromSpec(const std::string &spec);

/** Mask from the GENESIS_OPT_RULES environment variable (or kAllRules). */
uint32_t ruleMaskFromEnv();

/** Optimizer configuration. */
struct OptimizerOptions {
    uint32_t ruleMask = kAllRules;
    /** Table statistics source; may be null (defaults kick in). */
    StatsProvider stats;
};

/** Rewrite a plan; consumes and returns ownership. */
PlanPtr optimizePlan(PlanPtr plan, const OptimizerOptions &opts = {});

} // namespace genesis::sql

#endif // GENESIS_SQL_OPTIMIZER_H

#include "sql/optimizer.h"

#include <cstdlib>

#include "base/logging.h"
#include "sql/rules/rules.h"

namespace genesis::sql {

namespace {

struct RuleNameEntry {
    uint32_t bit;
    const char *name;
};

constexpr RuleNameEntry kRuleNames[] = {
    {kRuleSplit, "split"},
    {kRulePushdown, "pushdown"},
    {kRuleTransfer, "transfer"},
    {kRuleJoinReorder, "reorder"},
    {kRuleHashJoin, "hashjoin"},
    {kRuleMerge, "merge"},
    {kRuleFilterOrder, "order"},
};

uint32_t
ruleBitFromName(const std::string &name)
{
    for (const auto &e : kRuleNames) {
        if (name == e.name)
            return e.bit;
    }
    fatal("unknown optimizer rule '%s' (valid: split, pushdown, "
          "transfer, reorder, hashjoin, merge, order, all, none)",
          name.c_str());
}

} // namespace

const char *
ruleName(uint32_t bit)
{
    for (const auto &e : kRuleNames) {
        if (bit == e.bit)
            return e.name;
    }
    return "?";
}

uint32_t
ruleMaskFromSpec(const std::string &spec)
{
    // Leading '-' means "everything except ..."; a bare name list means
    // "exactly these".
    std::vector<std::string> tokens;
    std::string cur;
    for (char c : spec) {
        if (c == ',') {
            tokens.push_back(cur);
            cur.clear();
        } else if (!isspace(static_cast<unsigned char>(c))) {
            cur += c;
        }
    }
    tokens.push_back(cur);

    uint32_t mask = !tokens.empty() && !tokens[0].empty() &&
        tokens[0][0] == '-' ? kAllRules : 0;
    for (const auto &tok : tokens) {
        if (tok.empty())
            continue;
        if (tok == "all")
            mask = kAllRules;
        else if (tok == "none")
            mask = 0;
        else if (tok[0] == '-')
            mask &= ~ruleBitFromName(tok.substr(1));
        else
            mask |= ruleBitFromName(tok);
    }
    return mask;
}

uint32_t
ruleMaskFromEnv()
{
    const char *spec = std::getenv("GENESIS_OPT_RULES");
    if (!spec || !*spec)
        return kAllRules;
    return ruleMaskFromSpec(spec);
}

PlanPtr
optimizePlan(PlanPtr plan, const OptimizerOptions &opts)
{
    if (!plan)
        return plan;
    CostModel model(opts.stats);
    rules::RuleContext ctx{opts.ruleMask, model};

    if (ctx.mask & kRuleSplit)
        plan = rules::splitFilters(std::move(plan), ctx);
    if (ctx.mask & (kRulePushdown | kRuleTransfer))
        plan = rules::pushdownFilters(std::move(plan), ctx);
    if (ctx.mask & kRuleJoinReorder)
        plan = rules::reorderJoins(std::move(plan), ctx);
    if (ctx.mask & kRuleHashJoin)
        plan = rules::chooseHashJoins(std::move(plan), ctx);
    if (ctx.mask & kRuleFilterOrder)
        plan = rules::orderFilters(std::move(plan), ctx);
    if (ctx.mask & kRuleMerge)
        plan = rules::mergeFilters(std::move(plan), ctx);
    return plan;
}

} // namespace genesis::sql

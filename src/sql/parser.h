/**
 * @file
 * Recursive-descent parser for the Genesis extended-SQL dialect.
 */

#ifndef GENESIS_SQL_PARSER_H
#define GENESIS_SQL_PARSER_H

#include <string>

#include "sql/ast.h"

namespace genesis::sql {

/** Parse a full script; throws FatalError with line info on bad input. */
Script parseScript(const std::string &text);

/** Parse a single expression (used by tests and the planner). */
ExprPtr parseExpression(const std::string &text);

} // namespace genesis::sql

#endif // GENESIS_SQL_PARSER_H

/**
 * @file
 * Lexer for the Genesis extended-SQL dialect.
 *
 * Supports line comments (-- ...), block comments, single-quoted
 * strings, @variables, #temp-table names, and the operator set the
 * paper's queries use (Figure 4).
 */

#ifndef GENESIS_SQL_LEXER_H
#define GENESIS_SQL_LEXER_H

#include <string>
#include <vector>

#include "sql/token.h"

namespace genesis::sql {

/** Tokenise a full query text; throws FatalError on bad input. */
std::vector<Token> tokenize(const std::string &text);

} // namespace genesis::sql

#endif // GENESIS_SQL_LEXER_H

#include "sql/token.h"

#include <cctype>

namespace genesis::sql {

const char *
tokenKindName(TokenKind kind)
{
    switch (kind) {
      case TokenKind::End: return "end of input";
      case TokenKind::Identifier: return "identifier";
      case TokenKind::Variable: return "variable";
      case TokenKind::TempName: return "temp table name";
      case TokenKind::Integer: return "integer";
      case TokenKind::String: return "string";
      case TokenKind::LParen: return "'('";
      case TokenKind::RParen: return "')'";
      case TokenKind::Comma: return "','";
      case TokenKind::Semicolon: return "';'";
      case TokenKind::Dot: return "'.'";
      case TokenKind::Star: return "'*'";
      case TokenKind::Colon: return "':'";
      case TokenKind::Plus: return "'+'";
      case TokenKind::Minus: return "'-'";
      case TokenKind::Slash: return "'/'";
      case TokenKind::Percent: return "'%'";
      case TokenKind::Eq: return "'='";
      case TokenKind::EqEq: return "'=='";
      case TokenKind::NotEq: return "'!='";
      case TokenKind::Less: return "'<'";
      case TokenKind::LessEq: return "'<='";
      case TokenKind::Greater: return "'>'";
      case TokenKind::GreaterEq: return "'>='";
    }
    return "?";
}

std::string
toUpper(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s)
        out.push_back(static_cast<char>(
            std::toupper(static_cast<unsigned char>(c))));
    return out;
}

bool
Token::isKeyword(const char *kw) const
{
    return kind == TokenKind::Identifier && toUpper(text) == kw;
}

} // namespace genesis::sql

/**
 * @file
 * Cardinality and cost estimation over logical plans.
 *
 * The model consumes per-table statistics (src/table/stats.h) through a
 * StatsProvider callback so it works against any table store (the
 * engine Catalog, temp scopes, or a test fixture). Estimates drive the
 * optimizer's join reordering and hash-build-side choice and the
 * pipeline mapper's predicate ordering ahead of the SPM stage.
 */

#ifndef GENESIS_SQL_COST_MODEL_H
#define GENESIS_SQL_COST_MODEL_H

#include <functional>
#include <string>

#include "sql/plan.h"
#include "table/stats.h"

namespace genesis::sql {

/** Resolve table name -> stats; may return nullptr (unknown table). */
using StatsProvider =
    std::function<const table::TableStats *(const std::string &)>;

/** Estimates output cardinalities and operator costs for plan trees. */
class CostModel
{
  public:
    /** Assumed rows of a table the provider knows nothing about. */
    static constexpr double kDefaultTableRows = 1000.0;
    /** Equality selectivity without distinct-count stats. */
    static constexpr double kDefaultEqSelectivity = 0.1;
    /** Range-comparison selectivity without min/max stats. */
    static constexpr double kDefaultRangeSelectivity = 1.0 / 3.0;
    /** Selectivity of predicates the model cannot analyse. */
    static constexpr double kDefaultSelectivity = 0.25;
    /** Fan-out of PosExplode / ReadExplode without array stats. */
    static constexpr double kPosExplodeFanout = 64.0;
    static constexpr double kReadExplodeFanout = 150.0;

    explicit CostModel(StatsProvider stats = nullptr);

    /** Estimated output rows of the subtree. */
    double estimateRows(const PlanNode &plan) const;

    /**
     * Estimated total cost of executing the subtree: rows touched by
     * every operator, with hash joins charged build + probe instead of
     * the nested-loop row product.
     */
    double estimateCost(const PlanNode &plan) const;

    /** Fraction of `input` rows a predicate keeps, in [0, 1]. */
    double selectivity(const Expr &pred, const PlanNode &input) const;

    /**
     * Resolve column stats through a plan subtree: follows joins into
     * both children, projections through simple column renames, and
     * filters/limits transparently. @return nullptr when unresolvable.
     */
    const table::ColumnStats *columnStats(const std::string &qualifier,
                                          const std::string &name,
                                          const PlanNode &plan) const;

  private:
    double scanRows(const PlanNode &plan) const;
    double joinRows(const PlanNode &plan) const;

    StatsProvider stats_;
};

} // namespace genesis::sql

#endif // GENESIS_SQL_COST_MODEL_H

/**
 * @file
 * Abstract syntax tree for the Genesis extended-SQL dialect.
 *
 * The dialect covers everything in the paper's Figure 4 walk-through:
 * CREATE TABLE ... AS SELECT / PosExplode / ReadExplode, INSERT INTO ...
 * SELECT, WHERE, INNER/LEFT/OUTER JOIN ... ON, GROUP BY, LIMIT offset,count,
 * aggregate calls (COUNT/SUM/MIN/MAX), DECLARE/SET variables, FOR row IN
 * table loops, and EXEC for user-supplied custom modules (Section III-F).
 */

#ifndef GENESIS_SQL_AST_H
#define GENESIS_SQL_AST_H

#include <memory>
#include <string>
#include <vector>

#include "table/value.h"

namespace genesis::sql {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/** Expression node kinds. */
enum class ExprKind {
    Literal,   ///< integer or string literal
    ColumnRef, ///< [table.]column
    VarRef,    ///< @variable
    Binary,    ///< left OP right
    Unary,     ///< OP operand (NOT, -)
    Call,      ///< NAME(args...) — aggregates and scalar functions
    Star,      ///< * inside COUNT(*) / SELECT *
};

/** One expression node. */
struct Expr {
    ExprKind kind = ExprKind::Literal;
    /** Literal payload. */
    table::Value literal;
    /** ColumnRef: qualifier (may be empty); Call: function name. */
    std::string qualifier;
    /** ColumnRef column / VarRef variable / Call function name. */
    std::string name;
    /** Binary/Unary operator spelling ("==", "+", "AND", "NOT", ...). */
    std::string op;
    /** Binary: {lhs, rhs}; Unary: {operand}; Call: arguments. */
    std::vector<ExprPtr> args;

    /** Deep copy. */
    ExprPtr clone() const;

    /** Render back to SQL-ish text (for diagnostics). */
    std::string str() const;

    static ExprPtr makeLiteral(table::Value v);
    static ExprPtr makeColumn(std::string qualifier, std::string name);
    static ExprPtr makeVar(std::string name);
    static ExprPtr makeBinary(std::string op, ExprPtr l, ExprPtr r);
    static ExprPtr makeUnary(std::string op, ExprPtr operand);
    static ExprPtr makeCall(std::string name, std::vector<ExprPtr> args);
    static ExprPtr makeStar();
};

/** Join types supported by the hardware Joiner (Section III-C). */
enum class JoinType { Inner, Left, Outer };

/** A LIMIT clause: offset (optional) and row count. */
struct LimitClause {
    ExprPtr offset; ///< may be null (no offset)
    ExprPtr count;  ///< required when present
};

struct SelectStmt;

/** A table reference: base table, subquery, with optional PARTITION. */
struct TableRef {
    /** Base table name (empty when subquery is set). */
    std::string name;
    /** Set when the reference is a parenthesised subquery. */
    std::unique_ptr<SelectStmt> subquery;
    /** PARTITION (expr) selector; may be null. */
    ExprPtr partition;
    /** Optional alias. */
    std::string alias;

    /** @return alias when set, else the base name. */
    const std::string &effectiveName() const
    {
        return alias.empty() ? name : alias;
    }
};

/** One item of a select list: expression with optional alias. */
struct SelectItem {
    ExprPtr expr;
    std::string alias;
};

/** How the select projects rows. */
enum class SelectKind {
    Plain,       ///< SELECT items
    PosExplode,  ///< PosExplode(col, initpos)
    ReadExplode, ///< ReadExplode(pos, cigar, seq [, qual])
};

/** A JOIN clause attached to a select. */
struct JoinClause {
    JoinType type = JoinType::Inner;
    TableRef table;
    /** ON left = right (single equality key, as the hardware supports). */
    ExprPtr onLeft;
    ExprPtr onRight;
};

/** A full select statement. */
struct SelectStmt {
    SelectKind kind = SelectKind::Plain;
    /** Plain: the projection list. Explodes: the function arguments. */
    std::vector<SelectItem> items;
    TableRef from;
    std::vector<JoinClause> joins;
    ExprPtr where;
    std::vector<ExprPtr> groupBy;
    LimitClause limit;
};

struct Statement;
using StatementPtr = std::unique_ptr<Statement>;

/** Statement kinds. */
enum class StatementKind {
    CreateTableAs, ///< CREATE TABLE name AS select
    InsertInto,    ///< INSERT INTO name select
    Declare,       ///< DECLARE @name type
    SetVar,        ///< SET @name = expr
    ForLoop,       ///< FOR var IN table : body... END LOOP
    Exec,          ///< EXEC Module In1 = t1 In2 = t2 ... [INTO name]
    BareSelect,    ///< SELECT ... (result returned to the caller)
};

/** One statement. */
struct Statement {
    StatementKind kind = StatementKind::BareSelect;
    /** Target table (CreateTableAs/InsertInto/Exec INTO) or variable. */
    std::string target;
    /** True when the target is a #temp table. */
    bool targetIsTemp = false;
    /** Select payload for CreateTableAs/InsertInto/BareSelect. */
    std::unique_ptr<SelectStmt> select;
    /** SetVar value / Declare type name is stored in `typeName`. */
    ExprPtr value;
    std::string typeName;
    /** ForLoop: loop variable (row name) and source table. */
    std::string loopVar;
    std::string loopTable;
    std::vector<StatementPtr> body;
    /** Exec: module name + named input streams. */
    std::string moduleName;
    std::vector<std::pair<std::string, std::string>> execInputs;
};

/** A parsed script: an ordered list of statements. */
struct Script {
    std::vector<StatementPtr> statements;
};

} // namespace genesis::sql

#endif // GENESIS_SQL_AST_H

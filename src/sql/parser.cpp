#include "sql/parser.h"

#include "base/logging.h"
#include "sql/lexer.h"

namespace genesis::sql {

namespace {

/**
 * The parser proper: a hand-written recursive-descent parser over the
 * token stream. Keywords are contextual (matched case-insensitively on
 * Identifier tokens) so column names like "POS" never collide with them.
 */
class Parser
{
  public:
    explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens))
    {}

    Script
    parseScript()
    {
        Script script;
        skipSemicolons();
        while (!at(TokenKind::End)) {
            script.statements.push_back(parseStatement());
            skipSemicolons();
        }
        return script;
    }

    ExprPtr
    parseSingleExpression()
    {
        ExprPtr e = parseExpr();
        expect(TokenKind::End, "end of expression");
        return e;
    }

  private:
    // --- token plumbing -------------------------------------------------
    const Token &peek(size_t ahead = 0) const
    {
        size_t i = pos_ + ahead;
        return i < tokens_.size() ? tokens_[i] : tokens_.back();
    }

    const Token &advance() { return tokens_[pos_++]; }

    bool at(TokenKind kind) const { return peek().kind == kind; }

    bool atKeyword(const char *kw) const { return peek().isKeyword(kw); }

    bool
    eat(TokenKind kind)
    {
        if (!at(kind))
            return false;
        advance();
        return true;
    }

    bool
    eatKeyword(const char *kw)
    {
        if (!atKeyword(kw))
            return false;
        advance();
        return true;
    }

    const Token &
    expect(TokenKind kind, const char *what)
    {
        if (!at(kind)) {
            fatal("line %d: expected %s but found %s '%s'", peek().line,
                  what, tokenKindName(peek().kind), peek().text.c_str());
        }
        return advance();
    }

    void
    expectKeyword(const char *kw)
    {
        if (!eatKeyword(kw)) {
            fatal("line %d: expected keyword %s but found '%s'",
                  peek().line, kw, peek().text.c_str());
        }
    }

    void
    skipSemicolons()
    {
        while (eat(TokenKind::Semicolon)) {}
    }

    // --- statements -----------------------------------------------------
    StatementPtr
    parseStatement()
    {
        if (atKeyword("CREATE"))
            return parseCreateTableAs();
        if (atKeyword("INSERT"))
            return parseInsertInto();
        if (atKeyword("DECLARE"))
            return parseDeclare();
        if (atKeyword("SET"))
            return parseSetVar();
        if (atKeyword("FOR"))
            return parseForLoop();
        if (atKeyword("EXEC"))
            return parseExec();
        if (atKeyword("SELECT") || atKeyword("POSEXPLODE") ||
            atKeyword("READEXPLODE")) {
            auto stmt = std::make_unique<Statement>();
            stmt->kind = StatementKind::BareSelect;
            stmt->select = parseSelect();
            return stmt;
        }
        fatal("line %d: unexpected token '%s' at statement start",
              peek().line, peek().text.c_str());
    }

    /** Parse a table name token, flagging #temp names. */
    std::pair<std::string, bool>
    parseTableName()
    {
        if (at(TokenKind::TempName))
            return {advance().text, true};
        return {expect(TokenKind::Identifier, "table name").text, false};
    }

    StatementPtr
    parseCreateTableAs()
    {
        expectKeyword("CREATE");
        expectKeyword("TABLE");
        auto stmt = std::make_unique<Statement>();
        stmt->kind = StatementKind::CreateTableAs;
        auto [name, is_temp] = parseTableName();
        stmt->target = name;
        stmt->targetIsTemp = is_temp;
        expectKeyword("AS");
        stmt->select = parseSelect();
        return stmt;
    }

    StatementPtr
    parseInsertInto()
    {
        expectKeyword("INSERT");
        expectKeyword("INTO");
        auto stmt = std::make_unique<Statement>();
        stmt->kind = StatementKind::InsertInto;
        auto [name, is_temp] = parseTableName();
        stmt->target = name;
        stmt->targetIsTemp = is_temp;
        stmt->select = parseSelect();
        return stmt;
    }

    StatementPtr
    parseDeclare()
    {
        expectKeyword("DECLARE");
        auto stmt = std::make_unique<Statement>();
        stmt->kind = StatementKind::Declare;
        stmt->target = expect(TokenKind::Variable, "@variable").text;
        stmt->typeName =
            expect(TokenKind::Identifier, "type name").text;
        return stmt;
    }

    StatementPtr
    parseSetVar()
    {
        expectKeyword("SET");
        auto stmt = std::make_unique<Statement>();
        stmt->kind = StatementKind::SetVar;
        stmt->target = expect(TokenKind::Variable, "@variable").text;
        expect(TokenKind::Eq, "'='");
        stmt->value = parseExpr();
        return stmt;
    }

    StatementPtr
    parseForLoop()
    {
        expectKeyword("FOR");
        auto stmt = std::make_unique<Statement>();
        stmt->kind = StatementKind::ForLoop;
        stmt->loopVar = expect(TokenKind::Identifier, "loop variable").text;
        expectKeyword("IN");
        stmt->loopTable =
            expect(TokenKind::Identifier, "loop table").text;
        expect(TokenKind::Colon, "':'");
        skipSemicolons();
        while (!atKeyword("END")) {
            if (at(TokenKind::End))
                fatal("unterminated FOR loop (missing END LOOP)");
            stmt->body.push_back(parseStatement());
            skipSemicolons();
        }
        expectKeyword("END");
        expectKeyword("LOOP");
        return stmt;
    }

    StatementPtr
    parseExec()
    {
        expectKeyword("EXEC");
        auto stmt = std::make_unique<Statement>();
        stmt->kind = StatementKind::Exec;
        stmt->moduleName =
            expect(TokenKind::Identifier, "module name").text;
        while (at(TokenKind::Identifier) && !atKeyword("INTO")) {
            std::string input_name = advance().text;
            expect(TokenKind::Eq, "'=' in EXEC input binding");
            std::string table_name =
                expect(TokenKind::Identifier, "table name").text;
            stmt->execInputs.emplace_back(input_name, table_name);
        }
        if (eatKeyword("INTO")) {
            auto [name, is_temp] = parseTableName();
            stmt->target = name;
            stmt->targetIsTemp = is_temp;
        }
        return stmt;
    }

    // --- selects ----------------------------------------------------
    std::unique_ptr<SelectStmt>
    parseSelect()
    {
        auto sel = std::make_unique<SelectStmt>();
        if (eatKeyword("SELECT")) {
            sel->kind = SelectKind::Plain;
            do {
                SelectItem item;
                item.expr = parseExpr();
                if (eatKeyword("AS")) {
                    item.alias = expect(TokenKind::Identifier,
                                        "alias").text;
                }
                sel->items.push_back(std::move(item));
            } while (eat(TokenKind::Comma));
        } else if (eatKeyword("POSEXPLODE")) {
            sel->kind = SelectKind::PosExplode;
            parseExplodeArgs(*sel, 2, 2, "PosExplode");
        } else if (eatKeyword("READEXPLODE")) {
            sel->kind = SelectKind::ReadExplode;
            parseExplodeArgs(*sel, 3, 4, "ReadExplode");
        } else {
            fatal("line %d: expected SELECT, PosExplode or ReadExplode",
                  peek().line);
        }

        if (eatKeyword("FROM"))
            sel->from = parseTableRef();

        while (atKeyword("INNER") || atKeyword("LEFT") ||
               atKeyword("OUTER") || atKeyword("JOIN")) {
            sel->joins.push_back(parseJoin());
        }
        if (eatKeyword("WHERE"))
            sel->where = parseExpr();
        if (eatKeyword("GROUP")) {
            expectKeyword("BY");
            do {
                sel->groupBy.push_back(parseExpr());
            } while (eat(TokenKind::Comma));
        }
        if (eatKeyword("LIMIT")) {
            ExprPtr first = parseExpr();
            if (eat(TokenKind::Comma)) {
                sel->limit.offset = std::move(first);
                sel->limit.count = parseExpr();
            } else {
                sel->limit.count = std::move(first);
            }
        }
        return sel;
    }

    void
    parseExplodeArgs(SelectStmt &sel, size_t min_args, size_t max_args,
                     const char *what)
    {
        expect(TokenKind::LParen, "'('");
        do {
            SelectItem item;
            item.expr = parseExpr();
            sel.items.push_back(std::move(item));
        } while (eat(TokenKind::Comma));
        expect(TokenKind::RParen, "')'");
        if (sel.items.size() < min_args || sel.items.size() > max_args) {
            fatal("%s takes %zu..%zu arguments, got %zu", what, min_args,
                  max_args, sel.items.size());
        }
    }

    TableRef
    parseTableRef()
    {
        TableRef ref;
        if (eat(TokenKind::LParen)) {
            ref.subquery = parseSelect();
            expect(TokenKind::RParen, "')'");
        } else if (at(TokenKind::TempName)) {
            ref.name = advance().text;
        } else {
            ref.name = expect(TokenKind::Identifier, "table name").text;
        }
        if (eatKeyword("PARTITION")) {
            expect(TokenKind::LParen, "'('");
            ref.partition = parseExpr();
            expect(TokenKind::RParen, "')'");
        }
        // Optional alias: a bare identifier that is not a clause keyword.
        if (at(TokenKind::Identifier) && !isClauseKeyword(peek())) {
            ref.alias = advance().text;
        }
        return ref;
    }

    static bool
    isClauseKeyword(const Token &t)
    {
        static const char *kws[] = {
            "INNER", "LEFT", "OUTER", "JOIN", "WHERE", "GROUP", "LIMIT",
            "ON", "FROM", "END", "FOR", "CREATE", "INSERT", "SELECT",
            "DECLARE", "SET", "EXEC", "AS", "PARTITION", "BY", "LOOP",
            "INTO",
        };
        for (const char *kw : kws) {
            if (t.isKeyword(kw))
                return true;
        }
        return false;
    }

    JoinClause
    parseJoin()
    {
        JoinClause join;
        if (eatKeyword("INNER")) {
            join.type = JoinType::Inner;
        } else if (eatKeyword("LEFT")) {
            join.type = JoinType::Left;
        } else if (eatKeyword("OUTER")) {
            join.type = JoinType::Outer;
        }
        expectKeyword("JOIN");
        join.table = parseTableRef();
        expectKeyword("ON");
        ExprPtr cond = parseExpr();
        // The hardware Joiner supports a single equality key; split the
        // parsed ON condition into its two sides.
        if (cond->kind != ExprKind::Binary ||
            (cond->op != "==" && cond->op != "=")) {
            fatal("JOIN ... ON requires a single equality condition, "
                  "got %s", cond->str().c_str());
        }
        join.onLeft = std::move(cond->args[0]);
        join.onRight = std::move(cond->args[1]);
        return join;
    }

    // --- expressions ------------------------------------------------
    ExprPtr
    parseExpr()
    {
        return parseOr();
    }

    ExprPtr
    parseOr()
    {
        ExprPtr lhs = parseAnd();
        while (eatKeyword("OR"))
            lhs = Expr::makeBinary("OR", std::move(lhs), parseAnd());
        return lhs;
    }

    ExprPtr
    parseAnd()
    {
        ExprPtr lhs = parseNot();
        while (eatKeyword("AND"))
            lhs = Expr::makeBinary("AND", std::move(lhs), parseNot());
        return lhs;
    }

    ExprPtr
    parseNot()
    {
        if (eatKeyword("NOT"))
            return Expr::makeUnary("NOT", parseNot());
        return parseComparison();
    }

    ExprPtr
    parseComparison()
    {
        ExprPtr lhs = parseAdditive();
        for (;;) {
            std::string op;
            switch (peek().kind) {
              case TokenKind::EqEq: op = "=="; break;
              case TokenKind::Eq: op = "=="; break; // SQL-style equality
              case TokenKind::NotEq: op = "!="; break;
              case TokenKind::Less: op = "<"; break;
              case TokenKind::LessEq: op = "<="; break;
              case TokenKind::Greater: op = ">"; break;
              case TokenKind::GreaterEq: op = ">="; break;
              default: return lhs;
            }
            advance();
            lhs = Expr::makeBinary(op, std::move(lhs), parseAdditive());
        }
    }

    ExprPtr
    parseAdditive()
    {
        ExprPtr lhs = parseMultiplicative();
        for (;;) {
            if (eat(TokenKind::Plus)) {
                lhs = Expr::makeBinary("+", std::move(lhs),
                                       parseMultiplicative());
            } else if (eat(TokenKind::Minus)) {
                lhs = Expr::makeBinary("-", std::move(lhs),
                                       parseMultiplicative());
            } else {
                return lhs;
            }
        }
    }

    ExprPtr
    parseMultiplicative()
    {
        ExprPtr lhs = parseUnary();
        for (;;) {
            if (eat(TokenKind::Star)) {
                lhs = Expr::makeBinary("*", std::move(lhs), parseUnary());
            } else if (eat(TokenKind::Slash)) {
                lhs = Expr::makeBinary("/", std::move(lhs), parseUnary());
            } else if (eat(TokenKind::Percent)) {
                lhs = Expr::makeBinary("%", std::move(lhs), parseUnary());
            } else {
                return lhs;
            }
        }
    }

    ExprPtr
    parseUnary()
    {
        if (eat(TokenKind::Minus))
            return Expr::makeUnary("-", parseUnary());
        return parsePrimary();
    }

    ExprPtr
    parsePrimary()
    {
        const Token &t = peek();
        switch (t.kind) {
          case TokenKind::Integer: {
            advance();
            return Expr::makeLiteral(table::Value(t.intValue));
          }
          case TokenKind::String: {
            advance();
            return Expr::makeLiteral(table::Value(t.text));
          }
          case TokenKind::Variable: {
            advance();
            return Expr::makeVar(t.text);
          }
          case TokenKind::Star: {
            advance();
            return Expr::makeStar();
          }
          case TokenKind::LParen: {
            advance();
            ExprPtr inner = parseExpr();
            expect(TokenKind::RParen, "')'");
            return inner;
          }
          case TokenKind::TempName:
          case TokenKind::Identifier: {
            std::string first = advance().text;
            if (eat(TokenKind::Dot)) {
                std::string col =
                    expect(TokenKind::Identifier, "column name").text;
                return Expr::makeColumn(first, col);
            }
            if (eat(TokenKind::LParen)) {
                std::vector<ExprPtr> args;
                if (!at(TokenKind::RParen)) {
                    do {
                        args.push_back(parseExpr());
                    } while (eat(TokenKind::Comma));
                }
                expect(TokenKind::RParen, "')'");
                return Expr::makeCall(toUpper(first), std::move(args));
            }
            return Expr::makeColumn("", first);
          }
          default:
            fatal("line %d: unexpected %s in expression", t.line,
                  tokenKindName(t.kind));
        }
    }

    std::vector<Token> tokens_;
    size_t pos_ = 0;
};

} // namespace

Script
parseScript(const std::string &text)
{
    Parser parser(tokenize(text));
    return parser.parseScript();
}

ExprPtr
parseExpression(const std::string &text)
{
    Parser parser(tokenize(text));
    return parser.parseSingleExpression();
}

} // namespace genesis::sql

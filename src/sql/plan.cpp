#include "sql/plan.h"

#include <sstream>

#include "base/logging.h"

namespace genesis::sql {

bool
containsAggregate(const Expr &expr)
{
    if (expr.kind == ExprKind::Call) {
        const std::string &n = expr.name;
        if (n == "COUNT" || n == "SUM" || n == "MIN" || n == "MAX")
            return true;
    }
    for (const auto &arg : expr.args) {
        if (containsAggregate(*arg))
            return true;
    }
    return false;
}

std::string
PlanNode::str(int indent) const
{
    std::ostringstream os;
    std::string pad(static_cast<size_t>(indent) * 2, ' ');
    os << pad;
    switch (kind) {
      case PlanKind::Scan:
        os << "Scan(" << tableName;
        if (partition)
            os << " PARTITION " << partition->str();
        os << ")";
        break;
      case PlanKind::Project: {
        os << "Project(";
        for (size_t i = 0; i < outputs.size(); ++i) {
            if (i)
                os << ", ";
            os << outputs[i].name << "=" << outputs[i].expr->str();
        }
        os << ")";
        break;
      }
      case PlanKind::Filter:
        os << "Filter(" << predicate->str() << ")";
        break;
      case PlanKind::Join: {
        const char *t = joinType == JoinType::Inner ? "Inner"
            : joinType == JoinType::Left ? "Left" : "Outer";
        os << t << "Join(" << leftKey->str() << " == " << rightKey->str()
           << ")";
        if (joinStrategy == JoinStrategy::Hash)
            os << " [hash build=" << (buildLeft ? "left" : "right") << "]";
        break;
      }
      case PlanKind::Aggregate: {
        os << "Aggregate(";
        for (size_t i = 0; i < outputs.size(); ++i) {
            if (i)
                os << ", ";
            os << outputs[i].name << "=" << outputs[i].expr->str();
        }
        if (!groupBy.empty()) {
            os << " GROUP BY ";
            for (size_t i = 0; i < groupBy.size(); ++i) {
                if (i)
                    os << ", ";
                os << groupBy[i]->str();
            }
        }
        os << ")";
        break;
      }
      case PlanKind::Limit:
        os << "Limit(";
        if (limitOffset)
            os << limitOffset->str() << ", ";
        os << (limitCount ? limitCount->str() : "ALL") << ")";
        break;
      case PlanKind::PosExplode:
        os << "PosExplode(" << outputs[0].expr->str() << ", "
           << outputs[1].expr->str() << ")";
        break;
      case PlanKind::ReadExplode: {
        os << "ReadExplode(";
        for (size_t i = 0; i < outputs.size(); ++i) {
            if (i)
                os << ", ";
            os << outputs[i].expr->str();
        }
        os << ")";
        break;
      }
    }
    os << "\n";
    for (const auto &child : children)
        os << child->str(indent + 1);
    return os.str();
}

PlanPtr
PlanNode::clone() const
{
    auto copy = std::make_unique<PlanNode>();
    copy->kind = kind;
    copy->tableName = tableName;
    copy->alias = alias;
    if (partition)
        copy->partition = partition->clone();
    for (const auto &o : outputs)
        copy->outputs.push_back({o.expr->clone(), o.name});
    for (const auto &g : groupBy)
        copy->groupBy.push_back(g->clone());
    if (predicate)
        copy->predicate = predicate->clone();
    copy->joinType = joinType;
    if (leftKey)
        copy->leftKey = leftKey->clone();
    if (rightKey)
        copy->rightKey = rightKey->clone();
    copy->joinStrategy = joinStrategy;
    copy->buildLeft = buildLeft;
    if (limitOffset)
        copy->limitOffset = limitOffset->clone();
    if (limitCount)
        copy->limitCount = limitCount->clone();
    for (const auto &child : children)
        copy->children.push_back(child->clone());
    return copy;
}

namespace {

PlanPtr
planTableRef(const TableRef &ref)
{
    if (ref.subquery) {
        PlanPtr sub = planSelect(*ref.subquery);
        sub->alias = ref.alias;
        return sub;
    }
    auto node = std::make_unique<PlanNode>();
    node->kind = PlanKind::Scan;
    node->tableName = ref.name;
    node->alias = ref.effectiveName();
    if (ref.partition)
        node->partition = ref.partition->clone();
    return node;
}

std::string
defaultColumnName(const Expr &expr, size_t index)
{
    if (expr.kind == ExprKind::ColumnRef)
        return expr.name;
    if (expr.kind == ExprKind::Call)
        return expr.name;
    return "COL" + std::to_string(index);
}

} // namespace

PlanPtr
planSelect(const SelectStmt &select)
{
    if (!select.from.name.empty() || select.from.subquery) {
        // normal FROM chain below
    } else {
        fatal("select without FROM clause is not supported");
    }

    PlanPtr plan = planTableRef(select.from);

    for (const auto &join : select.joins) {
        auto node = std::make_unique<PlanNode>();
        node->kind = PlanKind::Join;
        node->joinType = join.type;
        node->leftKey = join.onLeft->clone();
        node->rightKey = join.onRight->clone();
        node->children.push_back(std::move(plan));
        node->children.push_back(planTableRef(join.table));
        plan = std::move(node);
    }

    if (select.where) {
        auto node = std::make_unique<PlanNode>();
        node->kind = PlanKind::Filter;
        node->predicate = select.where->clone();
        node->children.push_back(std::move(plan));
        plan = std::move(node);
    }

    switch (select.kind) {
      case SelectKind::PosExplode: {
        auto node = std::make_unique<PlanNode>();
        node->kind = PlanKind::PosExplode;
        for (size_t i = 0; i < select.items.size(); ++i) {
            node->outputs.push_back(
                {select.items[i].expr->clone(),
                 defaultColumnName(*select.items[i].expr, i)});
        }
        node->children.push_back(std::move(plan));
        plan = std::move(node);
        break;
      }
      case SelectKind::ReadExplode: {
        auto node = std::make_unique<PlanNode>();
        node->kind = PlanKind::ReadExplode;
        for (size_t i = 0; i < select.items.size(); ++i) {
            node->outputs.push_back(
                {select.items[i].expr->clone(),
                 defaultColumnName(*select.items[i].expr, i)});
        }
        node->children.push_back(std::move(plan));
        plan = std::move(node);
        break;
      }
      case SelectKind::Plain: {
        bool has_aggregate = !select.groupBy.empty();
        for (const auto &item : select.items)
            has_aggregate |= containsAggregate(*item.expr);

        bool select_star = select.items.size() == 1 &&
            select.items[0].expr->kind == ExprKind::Star;

        if (has_aggregate) {
            auto node = std::make_unique<PlanNode>();
            node->kind = PlanKind::Aggregate;
            for (size_t i = 0; i < select.items.size(); ++i) {
                std::string name = select.items[i].alias.empty()
                    ? defaultColumnName(*select.items[i].expr, i)
                    : select.items[i].alias;
                node->outputs.push_back(
                    {select.items[i].expr->clone(), std::move(name)});
            }
            for (const auto &g : select.groupBy)
                node->groupBy.push_back(g->clone());
            node->children.push_back(std::move(plan));
            plan = std::move(node);
        } else if (!select_star) {
            auto node = std::make_unique<PlanNode>();
            node->kind = PlanKind::Project;
            for (size_t i = 0; i < select.items.size(); ++i) {
                std::string name = select.items[i].alias.empty()
                    ? defaultColumnName(*select.items[i].expr, i)
                    : select.items[i].alias;
                node->outputs.push_back(
                    {select.items[i].expr->clone(), std::move(name)});
            }
            node->children.push_back(std::move(plan));
            plan = std::move(node);
        }
        break;
      }
    }

    if (select.limit.count) {
        auto node = std::make_unique<PlanNode>();
        node->kind = PlanKind::Limit;
        if (select.limit.offset)
            node->limitOffset = select.limit.offset->clone();
        node->limitCount = select.limit.count->clone();
        node->children.push_back(std::move(plan));
        plan = std::move(node);
    }

    return plan;
}

} // namespace genesis::sql

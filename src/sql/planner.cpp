#include "sql/planner.h"

#include <functional>
#include <set>
#include <sstream>

#include "base/logging.h"

namespace genesis::sql {

namespace {

/** Render one select per the EXPLAIN options (naive/optimized/both). */
std::string
renderSelect(const SelectStmt &select, int indent,
             const ExplainOptions &opts)
{
    PlanPtr naive = planSelect(select);
    if (!opts.optimize)
        return naive->str(indent);
    OptimizerOptions oo;
    oo.ruleMask = opts.ruleMask;
    oo.stats = opts.stats;
    if (!opts.showBoth)
        return optimizePlan(std::move(naive), oo)->str(indent);
    std::string pad(static_cast<size_t>(indent) * 2, ' ');
    std::ostringstream os;
    os << pad << "naive:\n" << naive->str(indent + 1);
    os << pad << "optimized:\n"
       << optimizePlan(std::move(naive), oo)->str(indent + 1);
    return os.str();
}

} // namespace

std::string
explainSelect(const SelectStmt &select, const ExplainOptions &opts)
{
    return renderSelect(select, 0, opts);
}

std::string
explainScript(const Script &script, const ExplainOptions &opts)
{
    std::ostringstream os;
    std::function<void(const Statement &, int)> render =
        [&](const Statement &stmt, int indent) {
            std::string pad(static_cast<size_t>(indent) * 2, ' ');
            switch (stmt.kind) {
              case StatementKind::CreateTableAs:
                os << pad << "CREATE TABLE " << stmt.target << " AS\n"
                   << renderSelect(*stmt.select, indent + 1, opts);
                break;
              case StatementKind::InsertInto:
                os << pad << "INSERT INTO " << stmt.target << "\n"
                   << renderSelect(*stmt.select, indent + 1, opts);
                break;
              case StatementKind::Declare:
                os << pad << "DECLARE @" << stmt.target << " "
                   << stmt.typeName << "\n";
                break;
              case StatementKind::SetVar:
                os << pad << "SET @" << stmt.target << " = "
                   << stmt.value->str() << "\n";
                break;
              case StatementKind::ForLoop:
                os << pad << "FOR " << stmt.loopVar << " IN "
                   << stmt.loopTable << ":\n";
                for (const auto &b : stmt.body)
                    render(*b, indent + 1);
                break;
              case StatementKind::Exec:
                os << pad << "EXEC " << stmt.moduleName;
                for (const auto &[in, t] : stmt.execInputs)
                    os << " " << in << "=" << t;
                if (!stmt.target.empty())
                    os << " INTO " << stmt.target;
                os << "\n";
                break;
              case StatementKind::BareSelect:
                os << pad << "SELECT\n"
                   << renderSelect(*stmt.select, indent + 1, opts);
                break;
            }
        };
    for (const auto &stmt : script.statements)
        render(*stmt, 0);
    return os.str();
}

namespace {

void
collectVarReads(const Expr &expr, std::set<std::string> &vars)
{
    if (expr.kind == ExprKind::VarRef)
        vars.insert(expr.name);
    for (const auto &a : expr.args)
        collectVarReads(*a, vars);
}

void
collectSelectVarReads(const SelectStmt &sel, std::set<std::string> &vars)
{
    for (const auto &item : sel.items)
        collectVarReads(*item.expr, vars);
    if (sel.where)
        collectVarReads(*sel.where, vars);
    for (const auto &g : sel.groupBy)
        collectVarReads(*g, vars);
    if (sel.limit.offset)
        collectVarReads(*sel.limit.offset, vars);
    if (sel.limit.count)
        collectVarReads(*sel.limit.count, vars);
    if (sel.from.partition)
        collectVarReads(*sel.from.partition, vars);
    if (sel.from.subquery)
        collectSelectVarReads(*sel.from.subquery, vars);
    for (const auto &j : sel.joins) {
        if (j.table.subquery)
            collectSelectVarReads(*j.table.subquery, vars);
        if (j.table.partition)
            collectVarReads(*j.table.partition, vars);
        collectVarReads(*j.onLeft, vars);
        collectVarReads(*j.onRight, vars);
    }
}

void
validateStatement(const Statement &stmt, std::set<std::string> &declared,
                  std::vector<std::string> &problems)
{
    auto check_vars = [&](const std::set<std::string> &used,
                          const char *where) {
        for (const auto &v : used) {
            if (!declared.count(v)) {
                problems.push_back("variable @" + v + " used in " + where +
                                   " before DECLARE");
            }
        }
    };
    switch (stmt.kind) {
      case StatementKind::Declare:
        declared.insert(stmt.target);
        break;
      case StatementKind::SetVar: {
        if (!declared.count(stmt.target))
            problems.push_back("SET @" + stmt.target + " before DECLARE");
        std::set<std::string> used;
        collectVarReads(*stmt.value, used);
        check_vars(used, "SET");
        break;
      }
      case StatementKind::CreateTableAs:
      case StatementKind::InsertInto:
      case StatementKind::BareSelect: {
        std::set<std::string> used;
        collectSelectVarReads(*stmt.select, used);
        check_vars(used, "SELECT");
        break;
      }
      case StatementKind::ForLoop: {
        if (stmt.body.empty())
            problems.push_back("FOR " + stmt.loopVar + " has empty body");
        for (const auto &b : stmt.body)
            validateStatement(*b, declared, problems);
        break;
      }
      case StatementKind::Exec:
        if (stmt.execInputs.empty()) {
            problems.push_back("EXEC " + stmt.moduleName +
                               " has no input streams");
        }
        break;
    }
}

} // namespace

std::vector<std::string>
validateScript(const Script &script)
{
    std::vector<std::string> problems;
    std::set<std::string> declared;
    for (const auto &stmt : script.statements)
        validateStatement(*stmt, declared, problems);
    return problems;
}

} // namespace genesis::sql

/**
 * @file
 * Token definitions for the Genesis extended-SQL dialect.
 */

#ifndef GENESIS_SQL_TOKEN_H
#define GENESIS_SQL_TOKEN_H

#include <cstdint>
#include <string>

namespace genesis::sql {

/** Lexical token kinds. Keywords are matched case-insensitively. */
enum class TokenKind {
    End,        ///< end of input
    Identifier, ///< bare identifier (may be a non-reserved keyword)
    Variable,   ///< @name
    TempName,   ///< #name (temporary table)
    Integer,    ///< integer literal
    String,     ///< 'quoted' string literal
    // Punctuation / operators
    LParen, RParen, Comma, Semicolon, Dot, Star, Colon,
    Plus, Minus, Slash, Percent,
    Eq,       ///< = (assignment / ON comparisons)
    EqEq,     ///< ==
    NotEq,    ///< != or <>
    Less, LessEq, Greater, GreaterEq,
};

/** @return printable name for a token kind. */
const char *tokenKindName(TokenKind kind);

/** One lexical token. */
struct Token {
    TokenKind kind = TokenKind::End;
    /** Raw text (identifier spelled as written; keywords uppercased). */
    std::string text;
    /** Integer literal value. */
    int64_t intValue = 0;
    /** 1-based source line for diagnostics. */
    int line = 1;
    /** 1-based source column for diagnostics. */
    int column = 1;

    /** @return true when this is an identifier matching the keyword
     * (case-insensitive). */
    bool isKeyword(const char *kw) const;
};

/** Uppercase a string (ASCII). */
std::string toUpper(const std::string &s);

} // namespace genesis::sql

#endif // GENESIS_SQL_TOKEN_H

#include "engine/eval.h"

#include <algorithm>

#include "base/logging.h"
#include "sql/plan.h"

namespace genesis::engine {

using table::Value;

TableRowResolver::TableRowResolver(const table::Table &table,
                                   std::vector<std::string> aliases,
                                   const ColumnResolver *next)
    : table_(table), aliases_(std::move(aliases)), next_(next)
{
}

int
resolveColumnIndex(const table::Schema &schema,
                   const std::vector<std::string> &aliases,
                   const std::string &qualifier, const std::string &name)
{
    if (qualifier.empty())
        return schema.indexOf(name);
    // The qualified spelling wins: a join renames duplicate columns to
    // "alias.name", and a qualified reference must keep reading its own
    // side's column no matter how the optimizer laid the join out.
    int idx = schema.indexOf(qualifier + "." + name);
    if (idx >= 0)
        return idx;
    if (std::find(aliases.begin(), aliases.end(), qualifier) !=
        aliases.end()) {
        return schema.indexOf(name);
    }
    return -1;
}

std::optional<Value>
TableRowResolver::resolve(const std::string &qualifier,
                          const std::string &name) const
{
    int idx = resolveColumnIndex(table_.schema(), aliases_, qualifier,
                                 name);
    if (idx >= 0)
        return table_.at(row_, static_cast<size_t>(idx));
    if (next_)
        return next_->resolve(qualifier, name);
    return std::nullopt;
}

const Value &
VariableEnv::variable(const std::string &name) const
{
    auto it = variables.find(name);
    if (it == variables.end())
        fatal("undeclared variable @%s", name.c_str());
    return it->second;
}

namespace {

Value
evalBinary(const std::string &op, const Value &l, const Value &r)
{
    if (op == "AND")
        return Value(l.truthy() && r.truthy());
    if (op == "OR")
        return Value(l.truthy() || r.truthy());

    // Equality works across all value shapes; NULL compares as NULL.
    if (op == "==" || op == "!=") {
        if (l.isNull() || r.isNull())
            return Value();
        bool eq = l == r;
        return Value(op == "==" ? eq : !eq);
    }
    if (l.isNull() || r.isNull())
        return Value();
    if (op == "<")
        return Value(l < r);
    if (op == ">")
        return Value(r < l);
    if (op == "<=")
        return Value(!(r < l));
    if (op == ">=")
        return Value(!(l < r));

    int64_t a = l.asInt();
    int64_t b = r.asInt();
    if (op == "+")
        return Value(a + b);
    if (op == "-")
        return Value(a - b);
    if (op == "*")
        return Value(a * b);
    if (op == "/") {
        if (b == 0)
            fatal("division by zero");
        return Value(a / b);
    }
    if (op == "%") {
        if (b == 0)
            fatal("modulo by zero");
        return Value(a % b);
    }
    fatal("unsupported binary operator '%s'", op.c_str());
}

/** Non-aggregate scalar builtins usable anywhere in an expression. */
std::optional<Value>
evalScalarCall(const std::string &name, const std::vector<Value> &args)
{
    if (name == "ABS" && args.size() == 1) {
        if (args[0].isNull())
            return Value();
        int64_t v = args[0].asInt();
        return Value(v < 0 ? -v : v);
    }
    if (name == "LEN" && args.size() == 1) {
        if (args[0].isNull())
            return Value();
        if (args[0].isBlob())
            return Value(static_cast<int64_t>(args[0].asBlob().size()));
        return Value(static_cast<int64_t>(args[0].asString().size()));
    }
    if (name == "COALESCE") {
        for (const auto &a : args) {
            if (!a.isNull())
                return a;
        }
        return Value();
    }
    if (name == "ISNULL" && args.size() == 1)
        return Value(args[0].isNull());
    if (name == "ELEM" && args.size() == 2) {
        // ELEM(array, index): one element of an array cell.
        if (args[0].isNull() || args[1].isNull())
            return Value();
        const auto &blob = args[0].asBlob();
        int64_t idx = args[1].asInt();
        if (idx < 0 || static_cast<size_t>(idx) >= blob.size())
            return Value();
        return Value(blob[static_cast<size_t>(idx)]);
    }
    return std::nullopt;
}

} // namespace

Value
evalExpr(const sql::Expr &expr, const ColumnResolver *resolver,
         const VariableEnv &env)
{
    using sql::ExprKind;
    switch (expr.kind) {
      case ExprKind::Literal:
        return expr.literal;
      case ExprKind::VarRef:
        return env.variable(expr.name);
      case ExprKind::Star:
        fatal("'*' is only valid inside COUNT(*) or SELECT *");
      case ExprKind::ColumnRef: {
        // A qualifier naming a loop-row binding wins over table columns.
        auto rb = env.rowBindings.find(expr.qualifier);
        if (rb != env.rowBindings.end()) {
            const auto &binding = rb->second;
            int idx = binding.table->schema().indexOf(expr.name);
            if (idx < 0) {
                fatal("loop row '%s' has no column '%s'",
                      expr.qualifier.c_str(), expr.name.c_str());
            }
            return binding.table->at(binding.row,
                                     static_cast<size_t>(idx));
        }
        if (resolver) {
            auto v = resolver->resolve(expr.qualifier, expr.name);
            if (v)
                return *v;
        }
        fatal("cannot resolve column reference '%s'", expr.str().c_str());
      }
      case ExprKind::Unary: {
        Value v = evalExpr(*expr.args[0], resolver, env);
        if (expr.op == "NOT")
            return v.isNull() ? Value() : Value(!v.truthy());
        if (expr.op == "-")
            return v.isNull() ? Value() : Value(-v.asInt());
        fatal("unsupported unary operator '%s'", expr.op.c_str());
      }
      case ExprKind::Binary: {
        Value l = evalExpr(*expr.args[0], resolver, env);
        Value r = evalExpr(*expr.args[1], resolver, env);
        return evalBinary(expr.op, l, r);
      }
      case ExprKind::Call: {
        if (sql::containsAggregate(expr)) {
            fatal("aggregate %s used outside an aggregation context",
                  expr.name.c_str());
        }
        std::vector<Value> args;
        args.reserve(expr.args.size());
        for (const auto &a : expr.args)
            args.push_back(evalExpr(*a, resolver, env));
        auto result = evalScalarCall(expr.name, args);
        if (!result)
            fatal("unknown function '%s'", expr.name.c_str());
        return *result;
      }
    }
    panic("unhandled expression kind");
}

Value
evalConstExpr(const sql::Expr &expr, const VariableEnv &env)
{
    return evalExpr(expr, nullptr, env);
}

} // namespace genesis::engine

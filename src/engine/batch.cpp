#include "engine/batch.h"

#include "base/logging.h"

namespace genesis::engine {

using table::DataType;
using table::Table;
using table::Value;

Value
ColumnChunk::valueAt(size_t i) const
{
    if (!intMode)
        return boxed[i];
    if (nullAt(i))
        return Value();
    return Value(ints[i]);
}

void
ColumnChunk::reserve(size_t n)
{
    if (intMode)
        ints.reserve(n);
    else
        boxed.reserve(n);
}

void
ColumnChunk::pushInt(int64_t v)
{
    ints.push_back(v);
    if (!nulls.empty())
        nulls.push_back(false);
}

void
ColumnChunk::pushNull()
{
    if (!intMode) {
        boxed.emplace_back();
        return;
    }
    if (nulls.empty())
        nulls.assign(ints.size(), false);
    ints.push_back(0);
    nulls.push_back(true);
}

void
ColumnChunk::pushValue(const Value &v)
{
    if (!intMode) {
        boxed.push_back(v);
        return;
    }
    if (v.isNull())
        pushNull();
    else
        pushInt(v.asInt());
}

void
ColumnChunk::appendFrom(const ColumnChunk &src, size_t i)
{
    if (intMode) {
        if (src.nullAt(i))
            pushNull();
        else
            pushInt(src.intMode ? src.ints[i] : src.boxed[i].asInt());
        return;
    }
    boxed.push_back(src.valueAt(i));
}

void
ColumnChunk::gather(const ColumnChunk &src, const std::vector<size_t> &idx)
{
    reserve(size() + idx.size());
    for (size_t i : idx)
        appendFrom(src, i);
}

void
ColumnChunk::gatherPadded(const ColumnChunk &src,
                          const std::vector<ssize_t> &idx)
{
    reserve(size() + idx.size());
    for (ssize_t i : idx) {
        if (i < 0)
            pushNull();
        else
            appendFrom(src, static_cast<size_t>(i));
    }
}

void
ColumnChunk::appendChunk(const ColumnChunk &src)
{
    GENESIS_ASSERT(intMode == src.intMode,
                   "appendChunk across chunk modes");
    if (!intMode) {
        boxed.insert(boxed.end(), src.boxed.begin(), src.boxed.end());
        return;
    }
    if (!src.nulls.empty() && nulls.empty())
        nulls.assign(ints.size(), false);
    if (!nulls.empty()) {
        if (src.nulls.empty())
            nulls.insert(nulls.end(), src.ints.size(), false);
        else
            nulls.insert(nulls.end(), src.nulls.begin(),
                         src.nulls.end());
    }
    ints.insert(ints.end(), src.ints.begin(), src.ints.end());
}

namespace {

bool
isIntColumn(DataType t)
{
    switch (t) {
      case DataType::UInt8:
      case DataType::UInt16:
      case DataType::UInt32:
      case DataType::Int64:
      case DataType::Bool:
        return true;
      default:
        return false;
    }
}

} // namespace

Batch
Batch::fromTable(const Table &t)
{
    Batch b;
    b.schema = t.schema();
    b.rows = t.numRows();
    b.columns.reserve(t.numColumns());
    for (size_t c = 0; c < t.numColumns(); ++c) {
        const table::Column &col = t.column(c);
        if (isIntColumn(col.type())) {
            ColumnChunk chunk = ColumnChunk::makeInt();
            chunk.reserve(t.numRows());
            for (size_t r = 0; r < t.numRows(); ++r) {
                if (col.isNull(r))
                    chunk.pushNull();
                else
                    chunk.pushInt(col.scalarAt(r));
            }
            b.columns.push_back(std::move(chunk));
        } else {
            ColumnChunk chunk = ColumnChunk::makeBoxed();
            chunk.reserve(t.numRows());
            for (size_t r = 0; r < t.numRows(); ++r)
                chunk.boxed.push_back(col.value(r));
            b.columns.push_back(std::move(chunk));
        }
    }
    return b;
}

Batch
Batch::emptyLike(const Batch &proto)
{
    Batch b;
    b.schema = proto.schema;
    b.columns.reserve(proto.columns.size());
    for (const auto &c : proto.columns) {
        b.columns.push_back(c.intMode ? ColumnChunk::makeInt()
                                      : ColumnChunk::makeBoxed());
    }
    return b;
}

Table
Batch::toTable(const std::string &name) const
{
    Table out(name, schema);
    std::vector<Value> row(columns.size());
    for (size_t r = 0; r < rows; ++r) {
        for (size_t c = 0; c < columns.size(); ++c)
            row[c] = columns[c].valueAt(r);
        out.appendRow(row);
    }
    return out;
}

} // namespace genesis::engine

/**
 * @file
 * Software query engine: interprets logical plans over columnar tables.
 *
 * This is the functional ground truth for every query Genesis offloads to
 * hardware — integration tests assert that the simulated accelerator
 * pipelines produce exactly the rows this engine produces.
 */

#ifndef GENESIS_ENGINE_EXECUTOR_H
#define GENESIS_ENGINE_EXECUTOR_H

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "engine/eval.h"
#include "sql/ast.h"
#include "sql/optimizer.h"
#include "sql/plan.h"
#include "table/stats.h"
#include "table/table.h"

namespace genesis::engine {

/** Named-table store, with support for pre-partitioned tables. */
class Catalog
{
  public:
    /** Register (or replace) a table under its name. */
    void put(const std::string &name, table::Table t);

    /** @return table by name, or nullptr. */
    const table::Table *find(const std::string &name) const;

    /** Register one partition of a partitioned table (Section III-B). */
    void putPartition(const std::string &name, int64_t pid, table::Table t);

    /** @return the partition, or nullptr. */
    const table::Table *findPartition(const std::string &name,
                                      int64_t pid) const;

    /** Remove a table (no-op when absent). */
    void erase(const std::string &name);

    /** @return names of all registered (non-partition) tables. */
    std::vector<std::string> tableNames() const;

    /**
     * @return statistics for a registered table, or nullptr when absent.
     * Computed lazily on first request and cached until the table is
     * replaced or erased, so FOR-loop INSERT patterns stay linear.
     */
    const table::TableStats *stats(const std::string &name) const;

  private:
    std::map<std::string, table::Table> tables_;
    std::map<std::pair<std::string, int64_t>, table::Table> partitions_;
    mutable std::map<std::string, table::TableStats> statsCache_;
};

/**
 * A user-supplied custom operation (the software twin of a custom
 * hardware module registered via EXEC, Section III-F).
 */
using CustomOp =
    std::function<table::Table(const std::vector<const table::Table *> &)>;

/**
 * Execution configuration: logical optimization and vectorized
 * execution are on by default and can be disabled per executor or via
 * the environment (GENESIS_SQL_NO_OPT, GENESIS_SQL_NO_VEC,
 * GENESIS_OPT_RULES).
 */
struct ExecConfig {
    /** Run optimizePlan() over every select before execution. */
    bool optimize = true;
    /** Execute plans through the batched columnar operators. */
    bool vectorize = true;
    /** Rewrite rules enabled when optimizing. */
    uint32_t ruleMask = sql::kAllRules;

    /** Config with the environment overrides applied. */
    static ExecConfig fromEnv();
};

class VecExecutor;

/** Interprets parsed scripts / logical plans against a catalog. */
class Executor
{
  public:
    explicit Executor(Catalog &catalog);
    Executor(Catalog &catalog, ExecConfig config);

    /** Register a custom operation invocable via EXEC. */
    void registerCustomOp(const std::string &name, CustomOp op);

    /**
     * Run a full script. @return the result of the last bare SELECT (or
     * EXEC without INTO) when the script ends with one.
     */
    std::optional<table::Table> runScript(const sql::Script &script);

    /** Parse and run SQL text. */
    std::optional<table::Table> run(const std::string &sql_text);

    /** Plan and run one select statement. */
    table::Table runSelect(const sql::SelectStmt &select);

    /** Run a logical plan directly. */
    table::Table runPlan(const sql::PlanNode &plan);

    /** Mutable variable environment (for host code to preset @vars). */
    VariableEnv &env() { return env_; }

    /** The active configuration. */
    const ExecConfig &config() const { return config_; }

    /**
     * Stats provider over temp scopes then the catalog, suitable for
     * sql::OptimizerOptions / the pipeline mapper.
     */
    sql::StatsProvider statsProvider();

    /** Qualifier aliases a plan subtree's output answers to. */
    static std::vector<std::string> aliasesOf(const sql::PlanNode &plan);

  private:
    friend class VecExecutor;

    std::optional<table::Table>
    execStatement(const sql::Statement &stmt);

    /** Interpret a plan row-at-a-time (no vectorized dispatch). */
    table::Table runRowPlan(const sql::PlanNode &plan);

    table::Table execScan(const sql::PlanNode &plan);
    table::Table execProjectOn(const sql::PlanNode &plan,
                               const table::Table &input);
    table::Table execFilterOn(const sql::PlanNode &plan,
                              const table::Table &input);
    table::Table execJoinOn(const sql::PlanNode &plan,
                            const table::Table &left,
                            const table::Table &right);
    table::Table execAggregateOn(const sql::PlanNode &plan,
                                 const table::Table &input);
    table::Table execLimitOn(const sql::PlanNode &plan,
                             const table::Table &input);
    table::Table execPosExplodeOn(const sql::PlanNode &plan,
                                  const table::Table &input);
    table::Table execReadExplodeOn(const sql::PlanNode &plan,
                                   const table::Table &input);

    /** Resolve a table name through temp scopes then the catalog. */
    const table::Table *lookupTable(const std::string &name) const;

    /** Store a statement result under a (possibly temp) name. */
    void storeTable(const std::string &name, bool is_temp, table::Table t,
                    bool append);

    /** Infer the output column type of an expression. */
    table::DataType inferType(const sql::Expr &expr,
                              const table::Schema &input) const;

    /**
     * Output schema of a join: left fields then right fields, duplicate
     * names respelled "prefix.name" using the per-column prefixes from
     * sidePrefixes() (shared with the vectorized join).
     */
    static table::Schema
    joinSchema(const table::Schema &left, const table::Schema &right,
               const std::vector<std::string> &lprefixes,
               const std::vector<std::string> &rprefixes);

    /**
     * Alias of the base relation inside `plan` that produced column
     * `col`, or "" when it cannot be attributed to exactly one scan
     * (projection outputs, ambiguous names).
     */
    std::string ownerQualifier(const sql::PlanNode &plan,
                               const std::string &col) const;

    /**
     * Join-respelling prefix for every column of one join side: the
     * owning relation's alias where attributable, else the side's
     * primary alias, else `fallback`. Keyed per column so a duplicate
     * name stays addressable by its own qualifier no matter how many
     * joins or reorders sit between its scan and the collision.
     */
    std::vector<std::string>
    sidePrefixes(const sql::PlanNode &side, const table::Schema &schema,
                 const std::string &fallback) const;

    /**
     * Orient ON keys so `lkey` resolves against the left child (keys
     * may be written either way round in the query).
     */
    static void orientJoinKeys(const sql::PlanNode &plan,
                               const std::vector<std::string> &left_aliases,
                               const sql::Expr *&lkey,
                               const sql::Expr *&rkey);

    Catalog &catalog_;
    ExecConfig config_;
    VariableEnv env_;
    /** Temp-table scopes; one pushed per FOR-loop iteration. */
    std::vector<std::map<std::string, table::Table>> tempScopes_;
    /** Lazily computed stats for temp tables (see statsProvider()). */
    std::map<std::string, table::TableStats> tempStatsCache_;
    std::map<std::string, CustomOp> customOps_;
};

} // namespace genesis::engine

#endif // GENESIS_ENGINE_EXECUTOR_H

/**
 * @file
 * Software query engine: interprets logical plans over columnar tables.
 *
 * This is the functional ground truth for every query Genesis offloads to
 * hardware — integration tests assert that the simulated accelerator
 * pipelines produce exactly the rows this engine produces.
 */

#ifndef GENESIS_ENGINE_EXECUTOR_H
#define GENESIS_ENGINE_EXECUTOR_H

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "engine/eval.h"
#include "sql/ast.h"
#include "sql/plan.h"
#include "table/table.h"

namespace genesis::engine {

/** Named-table store, with support for pre-partitioned tables. */
class Catalog
{
  public:
    /** Register (or replace) a table under its name. */
    void put(const std::string &name, table::Table t);

    /** @return table by name, or nullptr. */
    const table::Table *find(const std::string &name) const;

    /** Register one partition of a partitioned table (Section III-B). */
    void putPartition(const std::string &name, int64_t pid, table::Table t);

    /** @return the partition, or nullptr. */
    const table::Table *findPartition(const std::string &name,
                                      int64_t pid) const;

    /** Remove a table (no-op when absent). */
    void erase(const std::string &name);

    /** @return names of all registered (non-partition) tables. */
    std::vector<std::string> tableNames() const;

  private:
    std::map<std::string, table::Table> tables_;
    std::map<std::pair<std::string, int64_t>, table::Table> partitions_;
};

/**
 * A user-supplied custom operation (the software twin of a custom
 * hardware module registered via EXEC, Section III-F).
 */
using CustomOp =
    std::function<table::Table(const std::vector<const table::Table *> &)>;

/** Interprets parsed scripts / logical plans against a catalog. */
class Executor
{
  public:
    explicit Executor(Catalog &catalog);

    /** Register a custom operation invocable via EXEC. */
    void registerCustomOp(const std::string &name, CustomOp op);

    /**
     * Run a full script. @return the result of the last bare SELECT (or
     * EXEC without INTO) when the script ends with one.
     */
    std::optional<table::Table> runScript(const sql::Script &script);

    /** Parse and run SQL text. */
    std::optional<table::Table> run(const std::string &sql_text);

    /** Plan and run one select statement. */
    table::Table runSelect(const sql::SelectStmt &select);

    /** Run a logical plan directly. */
    table::Table runPlan(const sql::PlanNode &plan);

    /** Mutable variable environment (for host code to preset @vars). */
    VariableEnv &env() { return env_; }

  private:
    std::optional<table::Table>
    execStatement(const sql::Statement &stmt);

    table::Table execScan(const sql::PlanNode &plan);
    table::Table execProject(const sql::PlanNode &plan);
    table::Table execFilter(const sql::PlanNode &plan);
    table::Table execJoin(const sql::PlanNode &plan);
    table::Table execAggregate(const sql::PlanNode &plan);
    table::Table execLimit(const sql::PlanNode &plan);
    table::Table execPosExplode(const sql::PlanNode &plan);
    table::Table execReadExplode(const sql::PlanNode &plan);

    /** Resolve a table name through temp scopes then the catalog. */
    const table::Table *lookupTable(const std::string &name) const;

    /** Store a statement result under a (possibly temp) name. */
    void storeTable(const std::string &name, bool is_temp, table::Table t,
                    bool append);

    /** Qualifier aliases a plan subtree's output answers to. */
    static std::vector<std::string> aliasesOf(const sql::PlanNode &plan);

    /** Infer the output column type of an expression. */
    table::DataType inferType(const sql::Expr &expr,
                              const table::Table &input) const;

    Catalog &catalog_;
    VariableEnv env_;
    /** Temp-table scopes; one pushed per FOR-loop iteration. */
    std::vector<std::map<std::string, table::Table>> tempScopes_;
    std::map<std::string, CustomOp> customOps_;
};

} // namespace genesis::engine

#endif // GENESIS_ENGINE_EXECUTOR_H

#include "engine/executor.h"

#include <algorithm>
#include <cstdlib>

#include "base/logging.h"
#include "engine/vec_executor.h"
#include "genome/cigar.h"
#include "sql/parser.h"

namespace genesis::engine {

using sql::PlanKind;
using sql::PlanNode;
using table::DataType;
using table::Schema;
using table::Table;
using table::Value;

// --- Catalog -----------------------------------------------------------

void
Catalog::put(const std::string &name, Table t)
{
    t.setName(name);
    tables_.insert_or_assign(name, std::move(t));
    statsCache_.erase(name);
}

const Table *
Catalog::find(const std::string &name) const
{
    auto it = tables_.find(name);
    return it == tables_.end() ? nullptr : &it->second;
}

void
Catalog::putPartition(const std::string &name, int64_t pid, Table t)
{
    partitions_.insert_or_assign({name, pid}, std::move(t));
}

const Table *
Catalog::findPartition(const std::string &name, int64_t pid) const
{
    auto it = partitions_.find({name, pid});
    return it == partitions_.end() ? nullptr : &it->second;
}

void
Catalog::erase(const std::string &name)
{
    tables_.erase(name);
    statsCache_.erase(name);
}

const table::TableStats *
Catalog::stats(const std::string &name) const
{
    auto cached = statsCache_.find(name);
    if (cached != statsCache_.end())
        return &cached->second;
    auto it = tables_.find(name);
    if (it == tables_.end())
        return nullptr;
    auto [ins, inserted] =
        statsCache_.emplace(name, table::collectTableStats(it->second));
    return &ins->second;
}

std::vector<std::string>
Catalog::tableNames() const
{
    std::vector<std::string> names;
    names.reserve(tables_.size());
    for (const auto &[name, t] : tables_)
        names.push_back(name);
    return names;
}

// --- ExecConfig --------------------------------------------------------

ExecConfig
ExecConfig::fromEnv()
{
    ExecConfig config;
    const char *no_opt = std::getenv("GENESIS_SQL_NO_OPT");
    if (no_opt && *no_opt && std::string(no_opt) != "0")
        config.optimize = false;
    const char *no_vec = std::getenv("GENESIS_SQL_NO_VEC");
    if (no_vec && *no_vec && std::string(no_vec) != "0")
        config.vectorize = false;
    config.ruleMask = sql::ruleMaskFromEnv();
    return config;
}

// --- Executor ----------------------------------------------------------

Executor::Executor(Catalog &catalog)
    : Executor(catalog, ExecConfig::fromEnv())
{
}

Executor::Executor(Catalog &catalog, ExecConfig config)
    : catalog_(catalog), config_(config)
{
}

sql::StatsProvider
Executor::statsProvider()
{
    return [this](const std::string &name) -> const table::TableStats * {
        for (auto it = tempScopes_.rbegin(); it != tempScopes_.rend();
             ++it) {
            auto found = it->find(name);
            if (found == it->end())
                continue;
            auto cached = tempStatsCache_.find(name);
            if (cached == tempStatsCache_.end()) {
                cached = tempStatsCache_
                    .emplace(name,
                             table::collectTableStats(found->second))
                    .first;
            }
            return &cached->second;
        }
        return catalog_.stats(name);
    };
}

void
Executor::registerCustomOp(const std::string &name, CustomOp op)
{
    customOps_[name] = std::move(op);
}

const Table *
Executor::lookupTable(const std::string &name) const
{
    for (auto it = tempScopes_.rbegin(); it != tempScopes_.rend(); ++it) {
        auto found = it->find(name);
        if (found != it->end())
            return &found->second;
    }
    return catalog_.find(name);
}

void
Executor::storeTable(const std::string &name, bool is_temp, Table t,
                     bool append)
{
    tempStatsCache_.erase(name);
    t.setName(name);
    if (append) {
        // INSERT INTO an existing table appends rows; creates otherwise.
        Table *existing = nullptr;
        for (auto it = tempScopes_.rbegin(); it != tempScopes_.rend();
             ++it) {
            auto found = it->find(name);
            if (found != it->end()) {
                existing = &found->second;
                break;
            }
        }
        if (!existing && !is_temp) {
            const Table *global = catalog_.find(name);
            if (global) {
                // Copy out, append, write back (catalog owns by value).
                Table merged = *global;
                for (size_t r = 0; r < t.numRows(); ++r) {
                    std::vector<Value> row;
                    for (size_t c = 0; c < t.numColumns(); ++c)
                        row.push_back(t.at(r, c));
                    merged.appendRow(row);
                }
                catalog_.put(name, std::move(merged));
                return;
            }
        }
        if (existing) {
            if (existing->numColumns() != t.numColumns()) {
                fatal("INSERT INTO %s: width %zu != existing width %zu",
                      name.c_str(), t.numColumns(),
                      existing->numColumns());
            }
            for (size_t r = 0; r < t.numRows(); ++r) {
                std::vector<Value> row;
                for (size_t c = 0; c < t.numColumns(); ++c)
                    row.push_back(t.at(r, c));
                existing->appendRow(row);
            }
            return;
        }
        // Fall through: create new.
    }
    if (is_temp) {
        if (tempScopes_.empty())
            tempScopes_.emplace_back();
        tempScopes_.back().insert_or_assign(name, std::move(t));
    } else {
        catalog_.put(name, std::move(t));
    }
}

std::optional<Table>
Executor::run(const std::string &sql_text)
{
    sql::Script script = sql::parseScript(sql_text);
    return runScript(script);
}

std::optional<Table>
Executor::runScript(const sql::Script &script)
{
    std::optional<Table> last;
    for (const auto &stmt : script.statements) {
        auto result = execStatement(*stmt);
        if (result)
            last = std::move(result);
    }
    return last;
}

std::optional<Table>
Executor::execStatement(const sql::Statement &stmt)
{
    using sql::StatementKind;
    switch (stmt.kind) {
      case StatementKind::CreateTableAs: {
        Table t = runSelect(*stmt.select);
        storeTable(stmt.target, stmt.targetIsTemp, std::move(t), false);
        return std::nullopt;
      }
      case StatementKind::InsertInto: {
        Table t = runSelect(*stmt.select);
        storeTable(stmt.target, stmt.targetIsTemp, std::move(t), true);
        return std::nullopt;
      }
      case StatementKind::Declare:
        env_.variables[stmt.target] = Value();
        return std::nullopt;
      case StatementKind::SetVar: {
        if (env_.variables.find(stmt.target) == env_.variables.end())
            fatal("SET of undeclared variable @%s", stmt.target.c_str());
        env_.variables[stmt.target] = evalConstExpr(*stmt.value, env_);
        return std::nullopt;
      }
      case StatementKind::ForLoop: {
        const Table *source = lookupTable(stmt.loopTable);
        if (!source)
            fatal("FOR loop over unknown table '%s'",
                  stmt.loopTable.c_str());
        // The loop table may be replaced inside the body; iterate a copy.
        Table snapshot = *source;
        std::optional<Table> last;
        for (size_t row = 0; row < snapshot.numRows(); ++row) {
            tempScopes_.emplace_back();
            env_.rowBindings[stmt.loopVar] = {&snapshot, row};
            for (const auto &body_stmt : stmt.body) {
                auto r = execStatement(*body_stmt);
                if (r)
                    last = std::move(r);
            }
            env_.rowBindings.erase(stmt.loopVar);
            tempScopes_.pop_back();
            // Names of the popped scope may shadow others; drop the
            // whole temp-stats cache rather than track shadowing.
            tempStatsCache_.clear();
        }
        return last;
      }
      case StatementKind::Exec: {
        auto it = customOps_.find(stmt.moduleName);
        if (it == customOps_.end())
            fatal("EXEC of unregistered module '%s'",
                  stmt.moduleName.c_str());
        std::vector<const Table *> inputs;
        for (const auto &[input_name, table_name] : stmt.execInputs) {
            const Table *t = lookupTable(table_name);
            if (!t) {
                fatal("EXEC %s: unknown input table '%s' for stream %s",
                      stmt.moduleName.c_str(), table_name.c_str(),
                      input_name.c_str());
            }
            inputs.push_back(t);
        }
        Table result = it->second(inputs);
        if (!stmt.target.empty()) {
            storeTable(stmt.target, stmt.targetIsTemp, std::move(result),
                       false);
            return std::nullopt;
        }
        return result;
      }
      case StatementKind::BareSelect:
        return runSelect(*stmt.select);
    }
    panic("unhandled statement kind");
}

Table
Executor::runSelect(const sql::SelectStmt &select)
{
    sql::PlanPtr plan = sql::planSelect(select);
    if (config_.optimize) {
        sql::OptimizerOptions opts;
        opts.ruleMask = config_.ruleMask;
        opts.stats = statsProvider();
        plan = sql::optimizePlan(std::move(plan), opts);
    }
    return runPlan(*plan);
}

Table
Executor::runPlan(const PlanNode &plan)
{
    if (config_.vectorize) {
        VecExecutor vec(*this);
        return vec.run(plan);
    }
    return runRowPlan(plan);
}

Table
Executor::runRowPlan(const PlanNode &plan)
{
    switch (plan.kind) {
      case PlanKind::Scan:
        return execScan(plan);
      case PlanKind::Project:
        return execProjectOn(plan, runRowPlan(*plan.children[0]));
      case PlanKind::Filter:
        return execFilterOn(plan, runRowPlan(*plan.children[0]));
      case PlanKind::Join:
        return execJoinOn(plan, runRowPlan(*plan.children[0]),
                          runRowPlan(*plan.children[1]));
      case PlanKind::Aggregate:
        return execAggregateOn(plan, runRowPlan(*plan.children[0]));
      case PlanKind::Limit:
        return execLimitOn(plan, runRowPlan(*plan.children[0]));
      case PlanKind::PosExplode:
        return execPosExplodeOn(plan, runRowPlan(*plan.children[0]));
      case PlanKind::ReadExplode:
        return execReadExplodeOn(plan, runRowPlan(*plan.children[0]));
    }
    panic("unhandled plan kind");
}

std::vector<std::string>
Executor::aliasesOf(const PlanNode &plan)
{
    std::vector<std::string> aliases;
    if (!plan.alias.empty())
        aliases.push_back(plan.alias);
    if (plan.kind == PlanKind::Scan) {
        if (plan.tableName != plan.alias)
            aliases.push_back(plan.tableName);
        return aliases;
    }
    for (const auto &child : plan.children) {
        for (auto &a : aliasesOf(*child)) {
            if (std::find(aliases.begin(), aliases.end(), a) ==
                aliases.end()) {
                aliases.push_back(a);
            }
        }
    }
    return aliases;
}

table::DataType
Executor::inferType(const sql::Expr &expr, const Schema &input) const
{
    if (expr.kind == sql::ExprKind::ColumnRef) {
        // Qualified spelling first, matching resolveColumnIndex().
        int idx = -1;
        if (!expr.qualifier.empty())
            idx = input.indexOf(expr.qualifier + "." + expr.name);
        if (idx < 0)
            idx = input.indexOf(expr.name);
        if (idx >= 0)
            return input.field(static_cast<size_t>(idx)).type;
    }
    if (expr.kind == sql::ExprKind::Literal && expr.literal.isString())
        return DataType::String;
    return DataType::Int64;
}

Table
Executor::execScan(const PlanNode &plan)
{
    // A loop variable used as a table reference (the paper's
    // "ReadExplode(...) FROM SingleRead") scans as a one-row table.
    auto rb = env_.rowBindings.find(plan.tableName);
    if (rb != env_.rowBindings.end()) {
        const auto &binding = rb->second;
        Table out = binding.table->emptyLike(plan.tableName);
        std::vector<Value> row;
        for (size_t c = 0; c < binding.table->numColumns(); ++c)
            row.push_back(binding.table->at(binding.row, c));
        out.appendRow(row);
        return out;
    }

    const Table *t = lookupTable(plan.tableName);
    if (plan.partition) {
        int64_t pid = evalConstExpr(*plan.partition, env_).asInt();
        const Table *part = catalog_.findPartition(plan.tableName, pid);
        if (part)
            return *part;
        if (!t) {
            fatal("unknown partitioned table '%s'",
                  plan.tableName.c_str());
        }
        // No registered partition: filter rows by a PID column if the
        // table carries one (the REF table does), else report misuse.
        int pid_col = t->schema().indexOf("PID");
        if (pid_col < 0) {
            fatal("table '%s' has no registered partition %lld and no "
                  "PID column", plan.tableName.c_str(),
                  static_cast<long long>(pid));
        }
        Table out = t->emptyLike(plan.tableName);
        for (size_t r = 0; r < t->numRows(); ++r) {
            if (t->at(r, static_cast<size_t>(pid_col)).asInt() != pid)
                continue;
            std::vector<Value> row;
            for (size_t c = 0; c < t->numColumns(); ++c)
                row.push_back(t->at(r, c));
            out.appendRow(row);
        }
        return out;
    }
    if (!t)
        fatal("unknown table '%s'", plan.tableName.c_str());
    return *t;
}

Table
Executor::execProjectOn(const PlanNode &plan, const Table &input)
{
    auto aliases = aliasesOf(*plan.children[0]);

    Schema schema;
    for (size_t i = 0; i < plan.outputs.size(); ++i) {
        std::string name = plan.outputs[i].name;
        if (schema.has(name))
            name = plan.outputs[i].expr->str();
        schema.addField(name,
                        inferType(*plan.outputs[i].expr, input.schema()));
    }
    Table out("project", schema);

    TableRowResolver resolver(input, aliases);
    for (size_t r = 0; r < input.numRows(); ++r) {
        resolver.setRow(r);
        std::vector<Value> row;
        row.reserve(plan.outputs.size());
        for (const auto &o : plan.outputs)
            row.push_back(evalExpr(*o.expr, &resolver, env_));
        out.appendRow(row);
    }
    return out;
}

Table
Executor::execFilterOn(const PlanNode &plan, const Table &input)
{
    auto aliases = aliasesOf(*plan.children[0]);
    Table out = input.emptyLike("filter");

    TableRowResolver resolver(input, aliases);
    for (size_t r = 0; r < input.numRows(); ++r) {
        resolver.setRow(r);
        Value keep = evalExpr(*plan.predicate, &resolver, env_);
        if (keep.isNull() || !keep.truthy())
            continue;
        std::vector<Value> row;
        for (size_t c = 0; c < input.numColumns(); ++c)
            row.push_back(input.at(r, c));
        out.appendRow(row);
    }
    return out;
}

Schema
Executor::joinSchema(const Schema &left, const Schema &right,
                     const std::vector<std::string> &lprefixes,
                     const std::vector<std::string> &rprefixes)
{
    // All left columns then all right columns; duplicate names get
    // "alias.name" spellings so they stay addressable.
    Schema schema;
    auto add_side = [&](const Schema &side,
                        const std::vector<std::string> &prefixes,
                        const Schema &other) {
        for (size_t i = 0; i < side.fields().size(); ++i) {
            const auto &f = side.fields()[i];
            std::string name = f.name;
            if (other.has(f.name) || schema.has(name))
                name = prefixes[i] + "." + f.name;
            schema.addField(name, f.type);
        }
    };
    add_side(left, lprefixes, right);
    add_side(right, rprefixes, left);
    return schema;
}

std::string
Executor::ownerQualifier(const PlanNode &plan,
                         const std::string &col) const
{
    switch (plan.kind) {
      case PlanKind::Scan: {
        const Table *t = nullptr;
        auto rb = env_.rowBindings.find(plan.tableName);
        if (rb != env_.rowBindings.end())
            t = rb->second.table;
        else
            t = lookupTable(plan.tableName);
        if (t && t->schema().has(col))
            return plan.alias.empty() ? plan.tableName : plan.alias;
        return "";
      }
      case PlanKind::Join: {
        // An inner collision was already respelled to "alias.name", so
        // a bare name lives on at most one side; both sides claiming it
        // means we cannot attribute it.
        std::string l = ownerQualifier(*plan.children[0], col);
        std::string r = ownerQualifier(*plan.children[1], col);
        if (!l.empty() && !r.empty())
            return "";
        return l.empty() ? r : l;
      }
      case PlanKind::Filter:
      case PlanKind::Limit:
        return ownerQualifier(*plan.children[0], col);
      default:
        // Projection-like nodes (Project/Aggregate/explodes) mint their
        // own output names; the subtree's primary alias covers them.
        return "";
    }
}

std::vector<std::string>
Executor::sidePrefixes(const PlanNode &side, const Schema &schema,
                       const std::string &fallback) const
{
    auto aliases = aliasesOf(side);
    const std::string &primary = aliases.empty() ? fallback : aliases[0];
    std::vector<std::string> prefixes;
    prefixes.reserve(schema.size());
    for (const auto &f : schema.fields()) {
        std::string q = ownerQualifier(side, f.name);
        prefixes.push_back(q.empty() ? primary : q);
    }
    return prefixes;
}

void
Executor::orientJoinKeys(const PlanNode &plan,
                         const std::vector<std::string> &left_aliases,
                         const sql::Expr *&lkey, const sql::Expr *&rkey)
{
    // Keys may be written either way round in ON; orient them so that
    // lkey resolves against the left child.
    lkey = plan.leftKey.get();
    rkey = plan.rightKey.get();
    auto resolves_against = [](const sql::Expr &e,
                               const std::vector<std::string> &aliases) {
        if (e.kind != sql::ExprKind::ColumnRef || e.qualifier.empty())
            return true; // unqualified: assume positional convention
        return std::find(aliases.begin(), aliases.end(), e.qualifier) !=
            aliases.end();
    };
    if (!resolves_against(*lkey, left_aliases) &&
        resolves_against(*rkey, left_aliases)) {
        std::swap(lkey, rkey);
    }
}

Table
Executor::execJoinOn(const PlanNode &plan, const Table &left,
                     const Table &right)
{
    auto left_aliases = aliasesOf(*plan.children[0]);
    auto right_aliases = aliasesOf(*plan.children[1]);

    const sql::Expr *lkey = nullptr;
    const sql::Expr *rkey = nullptr;
    orientJoinKeys(plan, left_aliases, lkey, rkey);

    Table out("join",
              joinSchema(left.schema(), right.schema(),
                         sidePrefixes(*plan.children[0], left.schema(),
                                      "L"),
                         sidePrefixes(*plan.children[1], right.schema(),
                                      "R")));

    auto emit = [&](ssize_t lrow, ssize_t rrow) {
        std::vector<Value> row;
        row.reserve(out.numColumns());
        for (size_t c = 0; c < left.numColumns(); ++c)
            row.push_back(lrow >= 0
                          ? left.at(static_cast<size_t>(lrow), c)
                          : Value());
        for (size_t c = 0; c < right.numColumns(); ++c)
            row.push_back(rrow >= 0
                          ? right.at(static_cast<size_t>(rrow), c)
                          : Value());
        out.appendRow(row);
    };

    // All strategies emit left-major: left rows ascending, each row's
    // matches in right-row-ascending order, unmatched-left rows (LEFT/
    // OUTER) in place and unmatched-right rows (OUTER) trailing. NULL
    // keys never participate — this matches the hardware Joiner, where
    // an Ins-keyed flit bypasses the comparison.
    TableRowResolver lresolver(left, left_aliases);
    TableRowResolver rresolver(right, right_aliases);
    std::vector<bool> right_matched(right.numRows(), false);

    auto evalKeys = [&](const Table &t, TableRowResolver &resolver,
                        const sql::Expr &key) {
        std::vector<Value> keys;
        keys.reserve(t.numRows());
        for (size_t r = 0; r < t.numRows(); ++r) {
            resolver.setRow(r);
            keys.push_back(evalExpr(key, &resolver, env_));
        }
        return keys;
    };

    if (plan.joinStrategy == sql::JoinStrategy::NestedLoop) {
        // The naive quadratic scan the seed planner implies.
        std::vector<Value> lkeys = evalKeys(left, lresolver, *lkey);
        std::vector<Value> rkeys = evalKeys(right, rresolver, *rkey);
        for (size_t l = 0; l < left.numRows(); ++l) {
            bool matched = false;
            if (!lkeys[l].isNull()) {
                for (size_t r = 0; r < right.numRows(); ++r) {
                    if (rkeys[r].isNull() || !(lkeys[l] == rkeys[r]))
                        continue;
                    emit(static_cast<ssize_t>(l),
                         static_cast<ssize_t>(r));
                    right_matched[r] = true;
                    matched = true;
                }
            }
            if (!matched && plan.joinType != sql::JoinType::Inner)
                emit(static_cast<ssize_t>(l), -1);
        }
    } else if (plan.buildLeft) {
        // Hash the left side, stream the right, then emit left-major.
        std::map<Value, std::vector<size_t>> left_index;
        std::vector<Value> lkeys = evalKeys(left, lresolver, *lkey);
        for (size_t l = 0; l < left.numRows(); ++l) {
            if (!lkeys[l].isNull())
                left_index[lkeys[l]].push_back(l);
        }
        std::vector<std::vector<size_t>> matches(left.numRows());
        for (size_t r = 0; r < right.numRows(); ++r) {
            rresolver.setRow(r);
            Value key = evalExpr(*rkey, &rresolver, env_);
            if (key.isNull())
                continue;
            auto it = left_index.find(key);
            if (it == left_index.end())
                continue;
            right_matched[r] = true;
            for (size_t l : it->second)
                matches[l].push_back(r);
        }
        for (size_t l = 0; l < left.numRows(); ++l) {
            if (matches[l].empty()) {
                if (plan.joinType != sql::JoinType::Inner)
                    emit(static_cast<ssize_t>(l), -1);
                continue;
            }
            for (size_t r : matches[l])
                emit(static_cast<ssize_t>(l), static_cast<ssize_t>(r));
        }
    } else {
        // Hash the right side, probe with the left.
        std::map<Value, std::vector<size_t>> right_index;
        for (size_t r = 0; r < right.numRows(); ++r) {
            rresolver.setRow(r);
            Value key = evalExpr(*rkey, &rresolver, env_);
            if (key.isNull())
                continue;
            right_index[key].push_back(r);
        }
        for (size_t l = 0; l < left.numRows(); ++l) {
            lresolver.setRow(l);
            Value key = evalExpr(*lkey, &lresolver, env_);
            bool matched = false;
            if (!key.isNull()) {
                auto it = right_index.find(key);
                if (it != right_index.end()) {
                    for (size_t r : it->second) {
                        emit(static_cast<ssize_t>(l),
                             static_cast<ssize_t>(r));
                        right_matched[r] = true;
                    }
                    matched = true;
                }
            }
            if (!matched && plan.joinType != sql::JoinType::Inner)
                emit(static_cast<ssize_t>(l), -1);
        }
    }
    if (plan.joinType == sql::JoinType::Outer) {
        for (size_t r = 0; r < right.numRows(); ++r) {
            if (!right_matched[r])
                emit(-1, static_cast<ssize_t>(r));
        }
    }
    return out;
}

Table
Executor::execAggregateOn(const PlanNode &plan, const Table &input)
{
    auto aliases = aliasesOf(*plan.children[0]);
    TableRowResolver resolver(input, aliases);

    // Group rows.
    std::map<std::vector<Value>, std::vector<size_t>> groups;
    for (size_t r = 0; r < input.numRows(); ++r) {
        resolver.setRow(r);
        std::vector<Value> key;
        key.reserve(plan.groupBy.size());
        for (const auto &g : plan.groupBy)
            key.push_back(evalExpr(*g, &resolver, env_));
        groups[std::move(key)].push_back(r);
    }
    if (plan.groupBy.empty() && groups.empty())
        groups[{}] = {}; // global aggregate over zero rows

    Schema schema;
    for (size_t i = 0; i < plan.outputs.size(); ++i) {
        std::string name = plan.outputs[i].name;
        if (schema.has(name))
            name = name + "_" + std::to_string(i);
        // Aggregates produce integers; grouping expressions keep their
        // input column type.
        DataType type = sql::containsAggregate(*plan.outputs[i].expr)
            ? DataType::Int64
            : inferType(*plan.outputs[i].expr, input.schema());
        schema.addField(name, type);
    }
    Table out("aggregate", schema);

    // Recursive aggregate-aware evaluation over one group.
    std::function<Value(const sql::Expr &, const std::vector<size_t> &)>
    eval_agg = [&](const sql::Expr &expr,
                   const std::vector<size_t> &rows) -> Value {
        if (expr.kind == sql::ExprKind::Call) {
            const std::string &fn = expr.name;
            bool is_agg = fn == "COUNT" || fn == "SUM" || fn == "MIN" ||
                fn == "MAX";
            if (is_agg) {
                if (fn == "COUNT" && expr.args.size() == 1 &&
                    expr.args[0]->kind == sql::ExprKind::Star) {
                    return Value(static_cast<int64_t>(rows.size()));
                }
                if (expr.args.size() != 1)
                    fatal("%s takes one argument", fn.c_str());
                int64_t count = 0;
                int64_t sum = 0;
                bool any = false;
                int64_t mn = 0, mx = 0;
                for (size_t r : rows) {
                    resolver.setRow(r);
                    Value v = evalExpr(*expr.args[0], &resolver, env_);
                    if (v.isNull())
                        continue;
                    int64_t x = v.asInt();
                    ++count;
                    sum += x;
                    if (!any || x < mn)
                        mn = x;
                    if (!any || x > mx)
                        mx = x;
                    any = true;
                }
                if (fn == "COUNT")
                    return Value(count);
                if (fn == "SUM")
                    return Value(sum);
                if (!any)
                    return Value();
                return Value(fn == "MIN" ? mn : mx);
            }
        }
        if (!sql::containsAggregate(expr)) {
            // A grouping expression: constant within the group.
            if (rows.empty())
                return Value();
            resolver.setRow(rows.front());
            return evalExpr(expr, &resolver, env_);
        }
        // Mixed expression (e.g. SUM(x) / COUNT(*)): recurse.
        if (expr.kind == sql::ExprKind::Binary) {
            Value l = eval_agg(*expr.args[0], rows);
            Value r = eval_agg(*expr.args[1], rows);
            sql::ExprPtr tmp = sql::Expr::makeBinary(
                expr.op, sql::Expr::makeLiteral(l),
                sql::Expr::makeLiteral(r));
            return evalExpr(*tmp, nullptr, env_);
        }
        if (expr.kind == sql::ExprKind::Unary) {
            Value v = eval_agg(*expr.args[0], rows);
            sql::ExprPtr tmp = sql::Expr::makeUnary(
                expr.op, sql::Expr::makeLiteral(v));
            return evalExpr(*tmp, nullptr, env_);
        }
        fatal("unsupported aggregate expression %s", expr.str().c_str());
    };

    for (const auto &[key, rows] : groups) {
        std::vector<Value> row;
        row.reserve(plan.outputs.size());
        for (const auto &o : plan.outputs)
            row.push_back(eval_agg(*o.expr, rows));
        out.appendRow(row);
    }
    return out;
}

Table
Executor::execLimitOn(const PlanNode &plan, const Table &input)
{
    int64_t offset = plan.limitOffset
        ? evalConstExpr(*plan.limitOffset, env_).asInt() : 0;
    int64_t count = evalConstExpr(*plan.limitCount, env_).asInt();
    if (offset < 0 || count < 0)
        fatal("negative LIMIT offset/count");

    Table out = input.emptyLike("limit");
    for (size_t r = static_cast<size_t>(offset);
         r < input.numRows() &&
         r < static_cast<size_t>(offset + count); ++r) {
        std::vector<Value> row;
        for (size_t c = 0; c < input.numColumns(); ++c)
            row.push_back(input.at(r, c));
        out.appendRow(row);
    }
    return out;
}

Table
Executor::execPosExplodeOn(const PlanNode &plan, const Table &input)
{
    auto aliases = aliasesOf(*plan.children[0]);
    TableRowResolver resolver(input, aliases);

    Schema schema;
    schema.addField("POS", DataType::Int64);
    std::string value_name = plan.outputs[0].name;
    if (value_name == "POS")
        value_name = "VALUE";
    schema.addField(value_name, DataType::Int64);
    Table out("posexplode", schema);

    for (size_t r = 0; r < input.numRows(); ++r) {
        resolver.setRow(r);
        Value array = evalExpr(*plan.outputs[0].expr, &resolver, env_);
        Value init = evalExpr(*plan.outputs[1].expr, &resolver, env_);
        if (array.isNull())
            continue;
        int64_t pos = init.isNull() ? 0 : init.asInt();
        for (int64_t elem : array.asBlob())
            out.appendRow({Value(pos++), Value(elem)});
    }
    return out;
}

Table
Executor::execReadExplodeOn(const PlanNode &plan, const Table &input)
{
    auto aliases = aliasesOf(*plan.children[0]);
    TableRowResolver resolver(input, aliases);
    bool has_qual = plan.outputs.size() >= 4;

    Schema schema;
    schema.addField("POS", DataType::Int64);
    schema.addField("BP", DataType::Int64);
    if (has_qual)
        schema.addField("QUAL", DataType::Int64);
    schema.addField("CYCLE", DataType::Int64);
    Table out("readexplode", schema);

    for (size_t r = 0; r < input.numRows(); ++r) {
        resolver.setRow(r);
        int64_t pos =
            evalExpr(*plan.outputs[0].expr, &resolver, env_).asInt();
        const auto cigar_blob =
            evalExpr(*plan.outputs[1].expr, &resolver, env_).asBlob();
        const auto seq_blob =
            evalExpr(*plan.outputs[2].expr, &resolver, env_).asBlob();
        table::Blob qual_blob;
        if (has_qual) {
            qual_blob =
                evalExpr(*plan.outputs[3].expr, &resolver, env_).asBlob();
        }

        std::vector<uint16_t> packed(cigar_blob.begin(), cigar_blob.end());
        genome::Cigar cigar = genome::Cigar::unpackAll(packed);
        genome::Sequence seq(seq_blob.begin(), seq_blob.end());
        genome::QualSequence qual(qual_blob.begin(), qual_blob.end());

        for (const auto &b : genome::explodeRead(pos, cigar, seq, qual)) {
            std::vector<Value> row;
            row.push_back(b.isInsertion() ? Value() : Value(b.refPos));
            row.push_back(b.isDeletion() ? Value()
                          : Value(static_cast<int64_t>(b.readBase)));
            if (has_qual) {
                row.push_back(b.isDeletion() || b.qual < 0 ? Value()
                              : Value(static_cast<int64_t>(b.qual)));
            }
            row.push_back(b.isDeletion() ? Value()
                          : Value(static_cast<int64_t>(b.readOffset)));
            out.appendRow(row);
        }
    }
    return out;
}

} // namespace genesis::engine

/**
 * @file
 * Batched columnar plan execution.
 *
 * VecExecutor interprets the same logical plans as the row engine but
 * moves kBatchRows-row column chunks between operators instead of one
 * boxed row at a time. Integer expressions run over flat int64 vectors;
 * anything the fast path cannot express (strings, blobs, scalar calls)
 * falls back to per-row evalExpr over the batch, and whole operators
 * without a vectorized form (explodes) fall back to the row operators —
 * so every plan produces bit-identical rows to Executor::runRowPlan().
 */

#ifndef GENESIS_ENGINE_VEC_EXECUTOR_H
#define GENESIS_ENGINE_VEC_EXECUTOR_H

#include <optional>
#include <string>
#include <vector>

#include "engine/batch.h"
#include "sql/plan.h"

namespace genesis::engine {

class Executor;

/** Vectorized plan interpreter sharing an Executor's catalog + env. */
class VecExecutor
{
  public:
    explicit VecExecutor(Executor &exec) : exec_(exec) {}

    /** Run a plan to a materialized table (same naming as row path). */
    table::Table run(const sql::PlanNode &plan);

  private:
    Batch evalPlan(const sql::PlanNode &plan);
    Batch evalScan(const sql::PlanNode &plan);
    Batch evalFilter(const sql::PlanNode &plan);
    Batch evalProject(const sql::PlanNode &plan);
    Batch evalJoin(const sql::PlanNode &plan);
    Batch evalAggregate(const sql::PlanNode &plan);
    Batch evalLimit(const sql::PlanNode &plan);

    /**
     * Evaluate an expression over rows [first, first+count) of a batch.
     * Uses the integer fast path when the whole expression tree is
     * integer-typed, else evaluates row-wise with evalExpr (identical
     * semantics either way).
     */
    ColumnChunk evalExprBatch(const sql::Expr &expr, const Batch &in,
                              size_t first, size_t count,
                              const std::vector<std::string> &aliases);

    /** Fast path: all-integer chunk, or nullopt when ineligible. */
    std::optional<ColumnChunk>
    tryFastExpr(const sql::Expr &expr, const Batch &in, size_t first,
                size_t count, const std::vector<std::string> &aliases);

    /** Evaluate an expression over every row, slice by slice. */
    ColumnChunk evalExprFull(const sql::Expr &expr, const Batch &in,
                             const std::vector<std::string> &aliases);

    Executor &exec_;
};

} // namespace genesis::engine

#endif // GENESIS_ENGINE_VEC_EXECUTOR_H

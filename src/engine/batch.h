/**
 * @file
 * Columnar batches for the vectorized executor.
 *
 * A Batch is a schema plus one ColumnChunk per column. Chunks store
 * integer columns as flat int64 vectors with a null mask (the fast
 * path the vectorized operators loop over) and everything else as
 * boxed Values. Operators process a Batch in kBatchRows-row slices.
 */

#ifndef GENESIS_ENGINE_BATCH_H
#define GENESIS_ENGINE_BATCH_H

#include <cstdint>
#include <sys/types.h>
#include <vector>

#include "table/table.h"

namespace genesis::engine {

/** Rows processed per operator step. */
inline constexpr size_t kBatchRows = 1024;

/** One column's cells: int fast path or boxed Values. */
struct ColumnChunk {
    bool intMode = false;
    /** intMode storage; nulls empty means no null cell. */
    std::vector<int64_t> ints;
    std::vector<bool> nulls;
    /** boxed storage. */
    std::vector<table::Value> boxed;

    static ColumnChunk makeInt()
    {
        ColumnChunk c;
        c.intMode = true;
        return c;
    }
    static ColumnChunk makeBoxed() { return ColumnChunk{}; }

    size_t size() const { return intMode ? ints.size() : boxed.size(); }

    bool nullAt(size_t i) const
    {
        return intMode ? (!nulls.empty() && nulls[i])
                       : boxed[i].isNull();
    }

    /** Truthiness of cell i with SQL semantics (null is false). */
    bool truthyAt(size_t i) const
    {
        if (intMode)
            return !nullAt(i) && ints[i] != 0;
        return boxed[i].truthy();
    }

    table::Value valueAt(size_t i) const;

    void reserve(size_t n);
    void pushInt(int64_t v);
    void pushNull();
    /** Append a Value, switching nothing: mode must accommodate it. */
    void pushValue(const table::Value &v);

    /** Append src[i] (same mode). */
    void appendFrom(const ColumnChunk &src, size_t i);
    /** Append src rows selected by idx (same mode). */
    void gather(const ColumnChunk &src, const std::vector<size_t> &idx);
    /** Append src rows by signed index; -1 appends NULL. */
    void gatherPadded(const ColumnChunk &src,
                      const std::vector<ssize_t> &idx);
    /** Append a whole chunk (same mode). */
    void appendChunk(const ColumnChunk &src);
};

/** A columnar row set flowing between vectorized operators. */
struct Batch {
    table::Schema schema;
    std::vector<ColumnChunk> columns;
    size_t rows = 0;

    /** Copy a table into chunks (int fast path for scalar columns). */
    static Batch fromTable(const table::Table &t);

    /** Same schema and chunk modes as proto, zero rows. */
    static Batch emptyLike(const Batch &proto);

    /** Materialize as a Table (the row engine's output format). */
    table::Table toTable(const std::string &name) const;
};

} // namespace genesis::engine

#endif // GENESIS_ENGINE_BATCH_H

#include "engine/vec_executor.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "base/logging.h"
#include "engine/executor.h"

namespace genesis::engine {

using sql::PlanKind;
using sql::PlanNode;
using table::DataType;
using table::Schema;
using table::Table;
using table::Value;

namespace {

/** Resolver over one row of a Batch (same rules as TableRowResolver). */
class BatchRowResolver : public ColumnResolver
{
  public:
    BatchRowResolver(const Batch &batch,
                     std::vector<std::string> aliases)
        : batch_(batch), aliases_(std::move(aliases))
    {
    }

    void setRow(size_t row) { row_ = row; }

    std::optional<Value>
    resolve(const std::string &qualifier,
            const std::string &name) const override
    {
        int idx = resolveColumnIndex(batch_.schema, aliases_, qualifier,
                                     name);
        if (idx >= 0)
            return batch_.columns[static_cast<size_t>(idx)].valueAt(row_);
        return std::nullopt;
    }

  private:
    const Batch &batch_;
    std::vector<std::string> aliases_;
    size_t row_ = 0;
};

/** Broadcast one integer (or NULL) value to a count-row chunk. */
ColumnChunk
broadcastInt(const Value &v, size_t count)
{
    ColumnChunk out = ColumnChunk::makeInt();
    if (v.isNull()) {
        out.ints.assign(count, 0);
        out.nulls.assign(count, true);
    } else {
        out.ints.assign(count, v.asInt());
    }
    return out;
}

bool
fastBinaryOp(const std::string &op)
{
    return op == "AND" || op == "OR" || op == "==" || op == "!=" ||
        op == "<" || op == ">" || op == "<=" || op == ">=" ||
        op == "+" || op == "-" || op == "*" || op == "/" || op == "%";
}

const char *
resultName(PlanKind kind)
{
    switch (kind) {
      case PlanKind::Scan:
        return "scan";
      case PlanKind::Project:
        return "project";
      case PlanKind::Filter:
        return "filter";
      case PlanKind::Join:
        return "join";
      case PlanKind::Aggregate:
        return "aggregate";
      case PlanKind::Limit:
        return "limit";
      case PlanKind::PosExplode:
        return "posexplode";
      case PlanKind::ReadExplode:
        return "readexplode";
    }
    panic("unhandled plan kind");
}

} // namespace

Table
VecExecutor::run(const PlanNode &plan)
{
    // A bare scan keeps the source table's name, like the row path.
    if (plan.kind == PlanKind::Scan)
        return exec_.execScan(plan);
    Batch b = evalPlan(plan);
    return b.toTable(resultName(plan.kind));
}

Batch
VecExecutor::evalPlan(const PlanNode &plan)
{
    switch (plan.kind) {
      case PlanKind::Scan:
        return evalScan(plan);
      case PlanKind::Project:
        return evalProject(plan);
      case PlanKind::Filter:
        return evalFilter(plan);
      case PlanKind::Join:
        return evalJoin(plan);
      case PlanKind::Aggregate:
        return evalAggregate(plan);
      case PlanKind::Limit:
        return evalLimit(plan);
      case PlanKind::PosExplode: {
        // No vectorized form: run the row operator over the batch.
        Table in = evalPlan(*plan.children[0]).toTable("input");
        return Batch::fromTable(exec_.execPosExplodeOn(plan, in));
      }
      case PlanKind::ReadExplode: {
        Table in = evalPlan(*plan.children[0]).toTable("input");
        return Batch::fromTable(exec_.execReadExplodeOn(plan, in));
      }
    }
    panic("unhandled plan kind");
}

Batch
VecExecutor::evalScan(const PlanNode &plan)
{
    // Loop-row bindings and partition scans go through the row scan;
    // plain scans chunk the stored table directly (no copy first).
    if (exec_.env_.rowBindings.count(plan.tableName) || plan.partition)
        return Batch::fromTable(exec_.execScan(plan));
    const Table *t = exec_.lookupTable(plan.tableName);
    if (!t)
        fatal("unknown table '%s'", plan.tableName.c_str());
    return Batch::fromTable(*t);
}

ColumnChunk
VecExecutor::evalExprBatch(const sql::Expr &expr, const Batch &in,
                           size_t first, size_t count,
                           const std::vector<std::string> &aliases)
{
    if (auto fast = tryFastExpr(expr, in, first, count, aliases))
        return std::move(*fast);

    // Boxed fallback: per-row evaluation with the exact row semantics.
    ColumnChunk out = ColumnChunk::makeBoxed();
    out.boxed.reserve(count);
    BatchRowResolver resolver(in, aliases);
    for (size_t i = 0; i < count; ++i) {
        resolver.setRow(first + i);
        out.boxed.push_back(evalExpr(expr, &resolver, exec_.env_));
    }
    return out;
}

std::optional<ColumnChunk>
VecExecutor::tryFastExpr(const sql::Expr &expr, const Batch &in,
                         size_t first, size_t count,
                         const std::vector<std::string> &aliases)
{
    using sql::ExprKind;
    switch (expr.kind) {
      case ExprKind::Literal:
        if (!expr.literal.isNull() && !expr.literal.isInt())
            return std::nullopt;
        return broadcastInt(expr.literal, count);
      case ExprKind::VarRef: {
        const Value &v = exec_.env_.variable(expr.name);
        if (!v.isNull() && !v.isInt())
            return std::nullopt;
        return broadcastInt(v, count);
      }
      case ExprKind::ColumnRef: {
        // A qualifier naming a loop-row binding wins over columns,
        // exactly as in evalExpr().
        auto rb = exec_.env_.rowBindings.find(expr.qualifier);
        if (rb != exec_.env_.rowBindings.end()) {
            const auto &binding = rb->second;
            int idx = binding.table->schema().indexOf(expr.name);
            if (idx < 0) {
                fatal("loop row '%s' has no column '%s'",
                      expr.qualifier.c_str(), expr.name.c_str());
            }
            Value v = binding.table->at(binding.row,
                                        static_cast<size_t>(idx));
            if (!v.isNull() && !v.isInt())
                return std::nullopt;
            return broadcastInt(v, count);
        }
        int idx = resolveColumnIndex(in.schema, aliases, expr.qualifier,
                                     expr.name);
        if (idx < 0 || !in.columns[static_cast<size_t>(idx)].intMode)
            return std::nullopt;
        const ColumnChunk &src = in.columns[static_cast<size_t>(idx)];
        ColumnChunk out = ColumnChunk::makeInt();
        out.ints.assign(src.ints.begin() + first,
                        src.ints.begin() + first + count);
        if (!src.nulls.empty()) {
            out.nulls.assign(src.nulls.begin() + first,
                             src.nulls.begin() + first + count);
        }
        return out;
      }
      case ExprKind::Unary: {
        if (expr.op != "NOT" && expr.op != "-")
            return std::nullopt;
        auto child = tryFastExpr(*expr.args[0], in, first, count,
                                 aliases);
        if (!child)
            return std::nullopt;
        ColumnChunk out = ColumnChunk::makeInt();
        for (size_t i = 0; i < count; ++i) {
            if (child->nullAt(i))
                out.pushNull();
            else if (expr.op == "NOT")
                out.pushInt(child->ints[i] != 0 ? 0 : 1);
            else
                out.pushInt(-child->ints[i]);
        }
        return out;
      }
      case ExprKind::Binary: {
        if (!fastBinaryOp(expr.op))
            return std::nullopt;
        auto l = tryFastExpr(*expr.args[0], in, first, count, aliases);
        if (!l)
            return std::nullopt;
        auto r = tryFastExpr(*expr.args[1], in, first, count, aliases);
        if (!r)
            return std::nullopt;
        ColumnChunk out = ColumnChunk::makeInt();
        out.ints.reserve(count);
        const std::string &op = expr.op;
        for (size_t i = 0; i < count; ++i) {
            bool ln = l->nullAt(i);
            bool rn = r->nullAt(i);
            int64_t a = l->ints[i];
            int64_t b = r->ints[i];
            // Same semantics as evalBinary(): AND/OR treat NULL as
            // false and never yield NULL; everything else propagates
            // NULL operands.
            if (op == "AND") {
                out.pushInt((!ln && a != 0) && (!rn && b != 0));
                continue;
            }
            if (op == "OR") {
                out.pushInt((!ln && a != 0) || (!rn && b != 0));
                continue;
            }
            if (ln || rn) {
                out.pushNull();
                continue;
            }
            if (op == "==")
                out.pushInt(a == b);
            else if (op == "!=")
                out.pushInt(a != b);
            else if (op == "<")
                out.pushInt(a < b);
            else if (op == ">")
                out.pushInt(a > b);
            else if (op == "<=")
                out.pushInt(a <= b);
            else if (op == ">=")
                out.pushInt(a >= b);
            else if (op == "+")
                out.pushInt(a + b);
            else if (op == "-")
                out.pushInt(a - b);
            else if (op == "*")
                out.pushInt(a * b);
            else if (op == "/") {
                if (b == 0)
                    fatal("division by zero");
                out.pushInt(a / b);
            } else {
                if (b == 0)
                    fatal("modulo by zero");
                out.pushInt(a % b);
            }
        }
        return out;
      }
      default:
        return std::nullopt;
    }
}

ColumnChunk
VecExecutor::evalExprFull(const sql::Expr &expr, const Batch &in,
                          const std::vector<std::string> &aliases)
{
    ColumnChunk out;
    bool started = false;
    for (size_t first = 0; first < in.rows; first += kBatchRows) {
        size_t count = std::min(kBatchRows, in.rows - first);
        ColumnChunk slice = evalExprBatch(expr, in, first, count,
                                          aliases);
        if (!started) {
            out = std::move(slice);
            started = true;
        } else {
            out.appendChunk(slice);
        }
    }
    return out;
}

Batch
VecExecutor::evalFilter(const PlanNode &plan)
{
    Batch in = evalPlan(*plan.children[0]);
    auto aliases = Executor::aliasesOf(*plan.children[0]);

    Batch out = Batch::emptyLike(in);
    std::vector<size_t> sel;
    for (size_t first = 0; first < in.rows; first += kBatchRows) {
        size_t count = std::min(kBatchRows, in.rows - first);
        ColumnChunk keep = evalExprBatch(*plan.predicate, in, first,
                                         count, aliases);
        sel.clear();
        for (size_t i = 0; i < count; ++i) {
            if (keep.truthyAt(i))
                sel.push_back(first + i);
        }
        for (size_t c = 0; c < in.columns.size(); ++c)
            out.columns[c].gather(in.columns[c], sel);
        out.rows += sel.size();
    }
    return out;
}

Batch
VecExecutor::evalProject(const PlanNode &plan)
{
    Batch in = evalPlan(*plan.children[0]);
    auto aliases = Executor::aliasesOf(*plan.children[0]);

    Batch out;
    for (size_t i = 0; i < plan.outputs.size(); ++i) {
        std::string name = plan.outputs[i].name;
        if (out.schema.has(name))
            name = plan.outputs[i].expr->str();
        out.schema.addField(
            name, exec_.inferType(*plan.outputs[i].expr, in.schema));
    }
    for (size_t first = 0; first < in.rows; first += kBatchRows) {
        size_t count = std::min(kBatchRows, in.rows - first);
        for (size_t i = 0; i < plan.outputs.size(); ++i) {
            ColumnChunk chunk = evalExprBatch(*plan.outputs[i].expr, in,
                                              first, count, aliases);
            if (out.columns.size() <= i)
                out.columns.push_back(std::move(chunk));
            else
                out.columns[i].appendChunk(chunk);
        }
        out.rows += count;
    }
    // Zero input rows: still materialize one (empty) chunk per output.
    while (out.columns.size() < plan.outputs.size())
        out.columns.push_back(ColumnChunk::makeBoxed());
    return out;
}

Batch
VecExecutor::evalJoin(const PlanNode &plan)
{
    Batch left = evalPlan(*plan.children[0]);
    Batch right = evalPlan(*plan.children[1]);
    auto left_aliases = Executor::aliasesOf(*plan.children[0]);
    auto right_aliases = Executor::aliasesOf(*plan.children[1]);

    const sql::Expr *lkey = nullptr;
    const sql::Expr *rkey = nullptr;
    Executor::orientJoinKeys(plan, left_aliases, lkey, rkey);

    ColumnChunk lkeys = evalExprFull(*lkey, left, left_aliases);
    ColumnChunk rkeys = evalExprFull(*rkey, right, right_aliases);

    // Emission replicates the row engine exactly for every strategy:
    // left-major, matches in right-ascending order, unmatched-left in
    // place, unmatched-right trailing. A hash index whose per-key lists
    // are built in right-row order produces that same sequence, so the
    // NestedLoop strategy also takes this path.
    std::vector<ssize_t> lidx;
    std::vector<ssize_t> ridx;
    std::vector<bool> right_matched(right.rows, false);

    auto emit = [&](ssize_t l, ssize_t r) {
        lidx.push_back(l);
        ridx.push_back(r);
        if (r >= 0)
            right_matched[static_cast<size_t>(r)] = true;
    };

    auto probe_all = [&](auto &&matches_of) {
        for (size_t l = 0; l < left.rows; ++l) {
            const std::vector<size_t> *matches =
                lkeys.nullAt(l) ? nullptr : matches_of(l);
            if (matches) {
                for (size_t r : *matches) {
                    emit(static_cast<ssize_t>(l),
                         static_cast<ssize_t>(r));
                }
            }
            if (!matches && plan.joinType != sql::JoinType::Inner)
                emit(static_cast<ssize_t>(l), -1);
        }
    };

    if (lkeys.intMode && rkeys.intMode) {
        std::unordered_map<int64_t, std::vector<size_t>> index;
        index.reserve(right.rows);
        for (size_t r = 0; r < right.rows; ++r) {
            if (!rkeys.nullAt(r))
                index[rkeys.ints[r]].push_back(r);
        }
        probe_all([&](size_t l) -> const std::vector<size_t> * {
            auto it = index.find(lkeys.ints[l]);
            return it == index.end() ? nullptr : &it->second;
        });
    } else {
        std::map<Value, std::vector<size_t>> index;
        for (size_t r = 0; r < right.rows; ++r) {
            if (!rkeys.nullAt(r))
                index[rkeys.valueAt(r)].push_back(r);
        }
        probe_all([&](size_t l) -> const std::vector<size_t> * {
            auto it = index.find(lkeys.valueAt(l));
            return it == index.end() ? nullptr : &it->second;
        });
    }
    if (plan.joinType == sql::JoinType::Outer) {
        for (size_t r = 0; r < right.rows; ++r) {
            if (!right_matched[r])
                emit(-1, static_cast<ssize_t>(r));
        }
    }

    Batch out;
    out.schema = Executor::joinSchema(
        left.schema, right.schema,
        exec_.sidePrefixes(*plan.children[0], left.schema, "L"),
        exec_.sidePrefixes(*plan.children[1], right.schema, "R"));
    out.rows = lidx.size();
    out.columns.reserve(left.columns.size() + right.columns.size());
    for (const auto &src : left.columns) {
        ColumnChunk c = src.intMode ? ColumnChunk::makeInt()
                                    : ColumnChunk::makeBoxed();
        c.gatherPadded(src, lidx);
        out.columns.push_back(std::move(c));
    }
    for (const auto &src : right.columns) {
        ColumnChunk c = src.intMode ? ColumnChunk::makeInt()
                                    : ColumnChunk::makeBoxed();
        c.gatherPadded(src, ridx);
        out.columns.push_back(std::move(c));
    }
    return out;
}

Batch
VecExecutor::evalAggregate(const PlanNode &plan)
{
    Batch in = evalPlan(*plan.children[0]);
    auto aliases = Executor::aliasesOf(*plan.children[0]);

    // The fast path streams integer group keys and integer aggregates;
    // anything else (string keys, expression keys, mixed aggregate
    // arithmetic) falls back to the row aggregate over the batch.
    struct OutSpec {
        enum Kind { First, CountStar, Count, Sum, Min, Max } kind;
        int col = -1; // input column (First / Count / Sum / Min / Max)
    };

    auto resolveIntCol = [&](const sql::Expr &e, bool require_int) {
        if (e.kind != sql::ExprKind::ColumnRef)
            return -1;
        if (exec_.env_.rowBindings.count(e.qualifier))
            return -1; // binding-backed: defer to the row engine
        int idx = resolveColumnIndex(in.schema, aliases, e.qualifier,
                                     e.name);
        if (idx < 0)
            return -1;
        if (require_int && !in.columns[static_cast<size_t>(idx)].intMode)
            return -1;
        return idx;
    };

    bool fast = true;
    std::vector<size_t> key_cols;
    for (const auto &g : plan.groupBy) {
        int idx = resolveIntCol(*g, /*require_int=*/true);
        if (idx < 0) {
            fast = false;
            break;
        }
        key_cols.push_back(static_cast<size_t>(idx));
    }
    std::vector<OutSpec> specs;
    if (fast) {
        for (const auto &o : plan.outputs) {
            const sql::Expr &e = *o.expr;
            if (e.kind == sql::ExprKind::ColumnRef) {
                // Grouping expression: the row engine reads it off the
                // group's first row, which any resolvable column can do.
                int idx = resolveIntCol(e, /*require_int=*/false);
                if (idx < 0) {
                    fast = false;
                    break;
                }
                specs.push_back({OutSpec::First, idx});
                continue;
            }
            if (e.kind == sql::ExprKind::Call) {
                if (e.name == "COUNT" && e.args.size() == 1 &&
                    e.args[0]->kind == sql::ExprKind::Star) {
                    specs.push_back({OutSpec::CountStar, -1});
                    continue;
                }
                OutSpec::Kind kind;
                if (e.name == "COUNT")
                    kind = OutSpec::Count;
                else if (e.name == "SUM")
                    kind = OutSpec::Sum;
                else if (e.name == "MIN")
                    kind = OutSpec::Min;
                else if (e.name == "MAX")
                    kind = OutSpec::Max;
                else {
                    fast = false;
                    break;
                }
                if (e.args.size() != 1) {
                    fast = false;
                    break;
                }
                int idx = resolveIntCol(*e.args[0], /*require_int=*/true);
                if (idx < 0) {
                    fast = false;
                    break;
                }
                specs.push_back({kind, idx});
                continue;
            }
            fast = false;
            break;
        }
    }
    if (!fast) {
        Table t = in.toTable("input");
        return Batch::fromTable(exec_.execAggregateOn(plan, t));
    }

    struct Acc {
        int64_t count = 0;
        int64_t sum = 0;
        int64_t mn = 0;
        int64_t mx = 0;
        bool any = false;
    };
    struct Group {
        size_t firstRow = 0;
        int64_t rowCount = 0;
        std::vector<Acc> accs;
    };
    // Key cells encode as (present, value) pairs, which order exactly
    // like the row engine's std::map<std::vector<Value>> (NULL first,
    // then integers ascending).
    using GroupKey = std::vector<std::pair<int, int64_t>>;
    std::map<GroupKey, Group> groups;

    GroupKey key(key_cols.size());
    for (size_t r = 0; r < in.rows; ++r) {
        for (size_t k = 0; k < key_cols.size(); ++k) {
            const ColumnChunk &c = in.columns[key_cols[k]];
            key[k] = c.nullAt(r) ? std::make_pair(0, int64_t{0})
                                 : std::make_pair(1, c.ints[r]);
        }
        auto [it, inserted] = groups.try_emplace(key);
        Group &g = it->second;
        if (inserted) {
            g.firstRow = r;
            g.accs.resize(specs.size());
        }
        ++g.rowCount;
        for (size_t s = 0; s < specs.size(); ++s) {
            const OutSpec &spec = specs[s];
            if (spec.kind == OutSpec::First ||
                spec.kind == OutSpec::CountStar) {
                continue;
            }
            const ColumnChunk &c =
                in.columns[static_cast<size_t>(spec.col)];
            if (c.nullAt(r))
                continue;
            int64_t x = c.ints[r];
            Acc &a = g.accs[s];
            ++a.count;
            a.sum += x;
            if (!a.any || x < a.mn)
                a.mn = x;
            if (!a.any || x > a.mx)
                a.mx = x;
            a.any = true;
        }
    }
    if (plan.groupBy.empty() && groups.empty()) {
        Group &g = groups[{}]; // global aggregate over zero rows
        g.accs.resize(specs.size());
        g.rowCount = 0;
    }

    Batch out;
    for (size_t i = 0; i < plan.outputs.size(); ++i) {
        std::string name = plan.outputs[i].name;
        if (out.schema.has(name))
            name = name + "_" + std::to_string(i);
        DataType type = sql::containsAggregate(*plan.outputs[i].expr)
            ? DataType::Int64
            : exec_.inferType(*plan.outputs[i].expr, in.schema);
        out.schema.addField(name, type);
    }
    for (const auto &spec : specs) {
        bool boxed_first = spec.kind == OutSpec::First &&
            !in.columns[static_cast<size_t>(spec.col)].intMode;
        out.columns.push_back(boxed_first ? ColumnChunk::makeBoxed()
                                          : ColumnChunk::makeInt());
    }
    for (const auto &[k, g] : groups) {
        for (size_t s = 0; s < specs.size(); ++s) {
            const OutSpec &spec = specs[s];
            ColumnChunk &col = out.columns[s];
            const Acc &a = g.accs[s];
            switch (spec.kind) {
              case OutSpec::First:
                if (g.rowCount == 0) {
                    col.pushNull();
                } else {
                    col.pushValue(
                        in.columns[static_cast<size_t>(spec.col)]
                            .valueAt(g.firstRow));
                }
                break;
              case OutSpec::CountStar:
                col.pushInt(g.rowCount);
                break;
              case OutSpec::Count:
                col.pushInt(a.count);
                break;
              case OutSpec::Sum:
                col.pushInt(a.sum);
                break;
              case OutSpec::Min:
              case OutSpec::Max:
                if (!a.any)
                    col.pushNull();
                else
                    col.pushInt(spec.kind == OutSpec::Min ? a.mn
                                                          : a.mx);
                break;
            }
        }
        ++out.rows;
    }
    return out;
}

Batch
VecExecutor::evalLimit(const PlanNode &plan)
{
    Batch in = evalPlan(*plan.children[0]);
    int64_t offset = plan.limitOffset
        ? evalConstExpr(*plan.limitOffset, exec_.env_).asInt() : 0;
    int64_t count = evalConstExpr(*plan.limitCount, exec_.env_).asInt();
    if (offset < 0 || count < 0)
        fatal("negative LIMIT offset/count");

    std::vector<size_t> sel;
    for (size_t r = static_cast<size_t>(offset);
         r < in.rows && r < static_cast<size_t>(offset + count); ++r)
        sel.push_back(r);

    Batch out = Batch::emptyLike(in);
    for (size_t c = 0; c < in.columns.size(); ++c)
        out.columns[c].gather(in.columns[c], sel);
    out.rows = sel.size();
    return out;
}

} // namespace genesis::engine

/**
 * @file
 * Row-level expression evaluation for the software query engine.
 */

#ifndef GENESIS_ENGINE_EVAL_H
#define GENESIS_ENGINE_EVAL_H

#include <map>
#include <optional>
#include <string>

#include "sql/ast.h"
#include "table/table.h"

namespace genesis::engine {

/**
 * Resolves qualified column references to cell values for the row(s)
 * currently being evaluated. Implementations exist for single-table rows
 * and loop-row bindings; they chain via the `next` pointer.
 */
class ColumnResolver
{
  public:
    virtual ~ColumnResolver() = default;

    /**
     * @return the value of [qualifier.]name for the current row, or
     * nullopt when this resolver does not know the column.
     */
    virtual std::optional<table::Value>
    resolve(const std::string &qualifier, const std::string &name) const = 0;
};

/** Resolver over one row of one table, answering to a set of aliases. */
class TableRowResolver : public ColumnResolver
{
  public:
    /**
     * @param table the table holding the row
     * @param aliases qualifiers this table answers to (e.g. its name and
     *        its alias); an empty qualifier always matches
     * @param next fallback resolver (may be null)
     */
    TableRowResolver(const table::Table &table,
                     std::vector<std::string> aliases,
                     const ColumnResolver *next = nullptr);

    void setRow(size_t row) { row_ = row; }

    std::optional<table::Value>
    resolve(const std::string &qualifier,
            const std::string &name) const override;

  private:
    const table::Table &table_;
    std::vector<std::string> aliases_;
    const ColumnResolver *next_;
    size_t row_ = 0;
};

/** Variable bindings (@name values) plus loop-row bindings. */
struct VariableEnv {
    std::map<std::string, table::Value> variables;

    /** Loop-row binding: qualifier -> (table, row index). */
    struct RowBinding {
        const table::Table *table = nullptr;
        size_t row = 0;
    };
    std::map<std::string, RowBinding> rowBindings;

    /** @return variable value; throws FatalError when undeclared. */
    const table::Value &variable(const std::string &name) const;
};

/**
 * Evaluate an expression for one row.
 *
 * NULL semantics are SQL-like: arithmetic and comparisons on NULL yield
 * NULL; AND/OR treat NULL as false; NOT NULL is NULL.
 * Aggregate calls are rejected here — the Aggregate plan node evaluates
 * them over row groups.
 */
table::Value evalExpr(const sql::Expr &expr, const ColumnResolver *resolver,
                      const VariableEnv &env);

/** Evaluate an expression that uses no columns (constants + variables). */
table::Value evalConstExpr(const sql::Expr &expr, const VariableEnv &env);

/**
 * Resolve [qualifier.]name to a column index of `schema`, or -1.
 *
 * The qualified spelling ("qualifier.name", produced by joins for
 * duplicate column names) wins over the bare name, so a reference like
 * `b.k` still reads b's column when both join sides carry a `k`. A
 * qualifier that is neither an alias of the schema's source nor a
 * qualified-column prefix resolves nothing.
 */
int resolveColumnIndex(const table::Schema &schema,
                       const std::vector<std::string> &aliases,
                       const std::string &qualifier,
                       const std::string &name);

} // namespace genesis::engine

#endif // GENESIS_ENGINE_EVAL_H

/**
 * @file
 * Custom-module registry (Section III-F).
 *
 * Users extend Genesis by registering a factory for a module that takes
 * one or more input streams and produces one output stream. Registered
 * modules are invocable from the SQL dialect via
 *   EXEC ModuleName InputStream1 = <table> ...
 * and from the pipeline builder by name. MDGen and BinIDGen — the two
 * custom modules the paper's accelerators use — are pre-registered.
 */

#ifndef GENESIS_MODULES_CUSTOM_H
#define GENESIS_MODULES_CUSTOM_H

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/module.h"

namespace genesis::modules {

/** Factory for one custom module instance. */
using CustomModuleFactory = std::function<std::unique_ptr<sim::Module>(
    const std::string &instance_name,
    const std::vector<sim::HardwareQueue *> &inputs,
    sim::HardwareQueue *out)>;

/** Name-indexed registry of custom module factories. */
class CustomModuleRegistry
{
  public:
    /** @return the process-wide registry (built-ins pre-registered). */
    static CustomModuleRegistry &global();

    /** Register a factory; re-registering a name replaces it. */
    void add(const std::string &name, CustomModuleFactory factory,
             size_t num_inputs);

    /** @return true when a factory with this name exists. */
    bool has(const std::string &name) const;

    /** @return the number of input streams the module expects. */
    size_t numInputs(const std::string &name) const;

    /** Instantiate a module; throws FatalError on unknown names. */
    std::unique_ptr<sim::Module>
    instantiate(const std::string &name,
                const std::string &instance_name,
                const std::vector<sim::HardwareQueue *> &inputs,
                sim::HardwareQueue *out) const;

    /** @return registered names in sorted order. */
    std::vector<std::string> names() const;

  private:
    struct Entry {
        CustomModuleFactory factory;
        size_t numInputs = 1;
    };
    std::map<std::string, Entry> entries_;
};

} // namespace genesis::modules

#endif // GENESIS_MODULES_CUSTOM_H

#include "modules/read_to_bases.h"

#include "base/logging.h"

namespace genesis::modules {

using genome::CigarOp;
using sim::Flit;

ReadToBases::ReadToBases(std::string name, sim::HardwareQueue *pos_in,
                         sim::HardwareQueue *cigar_in,
                         sim::HardwareQueue *seq_in,
                         sim::HardwareQueue *qual_in,
                         sim::HardwareQueue *out)
    : Module(std::move(name)), posIn_(pos_in), cigarIn_(cigar_in),
      seqIn_(seq_in), qualIn_(qual_in), out_(out)
{
    GENESIS_ASSERT(posIn_ && cigarIn_ && seqIn_ && out_,
                   "ReadToBases wiring");
}

void
ReadToBases::sleepOnBases()
{
    // Blocked on the SEQ (and optional QUAL) stream delivering the next
    // base or boundary.
    if (qualIn_)
        sleepOn(stallStarved_, {&seqIn_->waiters(), &qualIn_->waiters()});
    else
        sleepOn(stallStarved_, {&seqIn_->waiters()});
}

bool
ReadToBases::consumeBase(int64_t &bp, int64_t &qual)
{
    if (!seqIn_->canPop() || sim::isBoundary(seqIn_->front()))
        return false;
    if (qualIn_ &&
        (!qualIn_->canPop() || sim::isBoundary(qualIn_->front()))) {
        return false;
    }
    bp = seqIn_->pop().key;
    qual = qualIn_ ? qualIn_->pop().key : Flit::kNull;
    return true;
}

void
ReadToBases::tick()
{
    if (closed_)
        return;
    if (!out_->canPush()) {
        countStall(stallBackpressure_);
        sleepOn(stallBackpressure_, {&out_->waiters()});
        return;
    }

    if (!active_) {
        if (posIn_->canPop()) {
            refPos_ = posIn_->pop().key;
            active_ = true;
            cycle_ = 0;
            haveElem_ = false;
            traceBusy();
            return;
        }
        if (posIn_->drained() && cigarIn_->drained() &&
            seqIn_->drained() &&
            (!qualIn_ || qualIn_->drained())) {
            out_->close();
            closed_ = true;
            return;
        }
        countStall(stallStarved_);
        // Waiting on a POS flit or on every stream's close.
        if (qualIn_) {
            sleepOn(stallStarved_,
                    {&posIn_->waiters(), &cigarIn_->waiters(),
                     &seqIn_->waiters(), &qualIn_->waiters()});
        } else {
            sleepOn(stallStarved_,
                    {&posIn_->waiters(), &cigarIn_->waiters(),
                     &seqIn_->waiters()});
        }
        return;
    }

    if (!haveElem_) {
        if (!cigarIn_->canPop()) {
            countStall(stallStarved_);
            sleepOn(stallStarved_, {&cigarIn_->waiters()});
            return;
        }
        if (sim::isBoundary(cigarIn_->front())) {
            // Read complete: align the companion streams' boundaries and
            // emit the output boundary in one step.
            bool seq_at_boundary = seqIn_->canPop() &&
                sim::isBoundary(seqIn_->front());
            bool qual_at_boundary = !qualIn_ ||
                (qualIn_->canPop() && sim::isBoundary(qualIn_->front()));
            if (!seq_at_boundary || !qual_at_boundary) {
                countStall(stallStarved_);
                sleepOnBases();
                return;
            }
            cigarIn_->pop();
            seqIn_->pop();
            if (qualIn_)
                qualIn_->pop();
            out_->push(sim::makeBoundary());
            active_ = false;
            traceBusy();
            return;
        }
        elem_ = genome::CigarElement::unpack(
            static_cast<uint16_t>(cigarIn_->pop().key));
        elemRemaining_ = elem_.length;
        haveElem_ = elemRemaining_ > 0;
        traceBusy();
        return;
    }

    int64_t bp = 0, qual = 0;
    switch (elem_.op) {
      case CigarOp::SoftClip:
        // Clipped bases are consumed without producing output.
        if (!consumeBase(bp, qual)) {
            countStall(stallStarved_);
            sleepOnBases();
            return;
        }
        traceBusy();
        break;
      case CigarOp::Match:
        if (!consumeBase(bp, qual)) {
            countStall(stallStarved_);
            sleepOnBases();
            return;
        }
        out_->push(sim::makeFlit(refPos_, bp, qual, cycle_));
        countFlit();
        ++refPos_;
        ++cycle_;
        break;
      case CigarOp::Insert:
        if (!consumeBase(bp, qual)) {
            countStall(stallStarved_);
            sleepOnBases();
            return;
        }
        out_->push(sim::makeFlit(Flit::kIns, bp, qual, cycle_));
        countFlit();
        ++cycle_;
        break;
      case CigarOp::Delete:
        out_->push(sim::makeFlit(refPos_, Flit::kDel, Flit::kDel,
                                 Flit::kDel));
        countFlit();
        ++refPos_;
        break;
    }
    if (--elemRemaining_ == 0)
        haveElem_ = false;
}

bool
ReadToBases::done() const
{
    return closed_;
}

} // namespace genesis::modules

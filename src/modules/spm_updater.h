/**
 * @file
 * SPM Updater module (Section III-C).
 *
 * Three operating modes, matching the paper:
 *  - Sequential: write incoming values to consecutive addresses from a
 *    configured start (used to initialise the reference SPM from memory);
 *  - Random: each flit carries (address, value);
 *  - ReadModifyWrite: each flit carries an address; the stored word is
 *    read, passed through the configured modify function, and written
 *    back. A three-stage (read/modify/write) pipeline hazard interlock
 *    stalls an incoming flit whose address matches any in-flight stage,
 *    exactly as described in the paper.
 */

#ifndef GENESIS_MODULES_SPM_UPDATER_H
#define GENESIS_MODULES_SPM_UPDATER_H

#include <functional>
#include <optional>

#include "sim/module.h"
#include "sim/spm.h"

namespace genesis::modules {

/** Operating mode of an SpmUpdater. */
enum class SpmUpdateMode {
    Sequential,
    Random,
    ReadModifyWrite,
};

/** Configuration for an SpmUpdater. */
struct SpmUpdaterConfig {
    SpmUpdateMode mode = SpmUpdateMode::Sequential;
    /** Sequential mode: first address written. */
    size_t startAddr = 0;
    /** Random/RMW: flit field carrying the address (-1 = the key). */
    int addrField = -1;
    /** Sequential/Random: flit field carrying the value (-1 = the key). */
    int valueField = -1;
    /**
     * RMW: modify function applied to the stored word. The flit is
     * available for value-dependent updates. Default: increment.
     */
    std::function<int64_t(int64_t, const sim::Flit &)> modify;
    /**
     * Subtract this base from incoming addresses (reference SPMs hold a
     * partition starting at the window position, not zero).
     */
    int64_t addrBase = 0;
};

/** Writes / updates a scratchpad from a flit stream. */
class SpmUpdater : public sim::Module
{
  public:
    SpmUpdater(std::string name, sim::Scratchpad *spm,
               sim::HardwareQueue *in, const SpmUpdaterConfig &config);

    void tick() override;
    bool done() const override;

  private:
    /** Interned stall-reason counters (see Module). */
    StatHandle stallRmwHazard_ = stallCounter("rmw_hazard");
    /** Interned trace state for hazard instants (0 = not yet). */
    TraceSink::StateId hazardState_ = 0;
    /** One trace instant per held flit, not per stalled cycle. */
    bool hazardTraced_ = false;

    struct Stage {
        size_t addr = 0;
        int64_t value = 0; ///< read result flowing to modify/write
        sim::Flit flit;
    };

    sim::Scratchpad *spm_;
    sim::HardwareQueue *in_;
    SpmUpdaterConfig config_;

    size_t seqCursor_ = 0;
    /** RMW pipeline stages: [0]=read, [1]=modify, [2]=write. */
    std::optional<Stage> stages_[3];
};

} // namespace genesis::modules

#endif // GENESIS_MODULES_SPM_UPDATER_H

/**
 * @file
 * ReadToBases module — the hardware ReadExplode (Sections III-B/III-C).
 *
 * Consumes a read's POS, CIGAR, SEQ (and optionally QUAL) streams and
 * emits one flit per exploded base per cycle:
 *   key   = reference position, or the Ins marker for inserted bases
 *   field0 = read base code, or Del for deleted positions
 *   field1 = quality score, or Del for deleted positions
 *   field2 = sequencing cycle (read offset among unclipped bases), or Del
 * Soft-clipped bases are consumed but never emitted, exactly as in paper
 * Figure 3. A boundary flit delimits each read's output.
 */

#ifndef GENESIS_MODULES_READ_TO_BASES_H
#define GENESIS_MODULES_READ_TO_BASES_H

#include "genome/cigar.h"
#include "sim/module.h"

namespace genesis::modules {

/** The ReadToBases module. */
class ReadToBases : public sim::Module
{
  public:
    /**
     * @param pos_in one flit per read: leftmost aligned position (key)
     * @param cigar_in packed CIGAR elements + per-read boundary
     * @param seq_in base codes + per-read boundary
     * @param qual_in quality scores + per-read boundary; may be null
     * @param out exploded base stream
     */
    ReadToBases(std::string name, sim::HardwareQueue *pos_in,
                sim::HardwareQueue *cigar_in, sim::HardwareQueue *seq_in,
                sim::HardwareQueue *qual_in, sim::HardwareQueue *out);

    void tick() override;
    bool done() const override;

  private:
    /** Interned stall-reason counters (see Module). */
    StatHandle stallBackpressure_ = stallCounter("backpressure");
    StatHandle stallStarved_ = stallCounter("starved");

    /** @return true when a base (and qual) flit could be consumed. */
    bool consumeBase(int64_t &bp, int64_t &qual);

    /** Park until the SEQ/QUAL streams deliver (starved-on-bases). */
    void sleepOnBases();

    sim::HardwareQueue *posIn_;
    sim::HardwareQueue *cigarIn_;
    sim::HardwareQueue *seqIn_;
    sim::HardwareQueue *qualIn_; ///< may be null
    sim::HardwareQueue *out_;

    bool active_ = false;    ///< processing a read
    int64_t refPos_ = 0;     ///< next reference position
    int64_t cycle_ = 0;      ///< next read-offset value
    bool haveElem_ = false;  ///< a CIGAR element is loaded
    genome::CigarElement elem_;
    uint32_t elemRemaining_ = 0;
    bool closed_ = false;
};

} // namespace genesis::modules

#endif // GENESIS_MODULES_READ_TO_BASES_H

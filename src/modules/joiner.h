/**
 * @file
 * Joiner module (Section III-C, Figure 6).
 *
 * Merges two key-sorted flit streams. Every cycle it compares the keys at
 * the heads of its input queues and either outputs or discards the flit
 * with the smaller key; equal keys merge their data fields through
 * concatenation. Configurable as inner join (discard flits without a
 * matching key), left join (keep unmatched flits from the first queue,
 * discard unmatched flits from the second), or outer join (never
 * discard).
 *
 * Genomics extension: a left flit whose key is the Ins marker (an
 * inserted base, Figure 3) bypasses the comparison — a left/outer join
 * emits it padded with nulls, an inner join drops it.
 *
 * Streams are item-aligned: keys must ascend within an item (one read's
 * bases; one read's reference interval), and items are delimited by
 * boundary flits on both inputs. The joiner re-synchronises at every
 * boundary, which is what lets a single pipeline stream many
 * position-sorted reads whose reference intervals overlap.
 */

#ifndef GENESIS_MODULES_JOINER_H
#define GENESIS_MODULES_JOINER_H

#include "sim/module.h"

namespace genesis::modules {

/** Join mode. */
enum class JoinMode { Inner, Left, Outer };

/** Configuration for a Joiner. */
struct JoinerConfig {
    JoinMode mode = JoinMode::Inner;
    /** Data fields contributed by each side (for null padding). */
    int leftFields = 1;
    int rightFields = 1;
};

/** The Joiner module. */
class Joiner : public sim::Module
{
  public:
    Joiner(std::string name, sim::HardwareQueue *left,
           sim::HardwareQueue *right, sim::HardwareQueue *out,
           const JoinerConfig &config);

    void tick() override;
    bool done() const override;

  private:
    /** Interned stall-reason counters (see Module). */
    StatHandle stallBackpressure_ = stallCounter("backpressure");
    StatHandle stallStarved_ = stallCounter("starved");

    /** Emit a left-side flit padded with right-side nulls. */
    void emitLeftOnly(const sim::Flit &flit);
    /** Emit a right-side flit padded with left-side nulls. */
    void emitRightOnly(const sim::Flit &flit);

    sim::HardwareQueue *left_;
    sim::HardwareQueue *right_;
    sim::HardwareQueue *out_;
    JoinerConfig config_;

    /** Boundary consumed for the current item on each side. */
    bool leftItemDone_ = false;
    bool rightItemDone_ = false;
    bool closed_ = false;
};

} // namespace genesis::modules

#endif // GENESIS_MODULES_JOINER_H

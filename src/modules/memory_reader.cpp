#include "modules/memory_reader.h"

#include <algorithm>

#include "base/logging.h"

namespace genesis::modules {

using sim::Flit;

MemoryReader::MemoryReader(std::string name, const ColumnBuffer *buffer,
                           sim::MemoryPort *port, sim::HardwareQueue *out,
                           const MemoryReaderConfig &config)
    : Module(std::move(name)), buffer_(buffer), port_(port), out_(out),
      config_(config)
{
    GENESIS_ASSERT(buffer_ && port_ && out_,
                   "memory reader needs buffer, port and output queue");
    granularity_ = port_->checkedAccessGranularity("memory reader");
    if (!buffer_->rowLengths.empty()) {
        rowRemaining_ = buffer_->rowLengths[0];
        rowLoaded_ = true;
    }
}

void
MemoryReader::tick()
{
    if (closed_)
        return;

    // 1. Keep the prefetch pipeline full: request more bytes while the
    //    in-flight + buffered volume stays under the prefetch capacity.
    //    Requests go out at the configured memory access granularity.
    const uint64_t total = buffer_->totalBytes();
    bool issued = false;
    while (bytesRequested_ < total && port_->canIssue()) {
        uint64_t in_flight_or_buffered = bytesRequested_ - bytesConsumed_;
        if (in_flight_or_buffered >= config_.prefetchBytes)
            break;
        uint32_t chunk = static_cast<uint32_t>(std::min<uint64_t>(
            granularity_, total - bytesRequested_));
        port_->issue(buffer_->baseAddr + bytesRequested_, chunk, false);
        bytesRequested_ += chunk;
        issued = true;
    }

    // 2. Collect arrived bytes. Collection mutates internal state
    //    without touching a queue, so report it as progress.
    uint64_t got = port_->takeCompletedReadBytes();
    if (got) {
        bytesArrived_ += got;
        noteProgress();
    }

    // 3. Emit at most one flit per cycle.
    if (!out_->canPush()) {
        countStall(stallBackpressure_);
        // The port list keeps byte collection (and prefetch refill)
        // happening on the same cycles as a spinning module's would.
        if (!issued && !got) {
            sleepOn(stallBackpressure_,
                    {&out_->waiters(), &port_->retireWaiters()});
        }
        return;
    }
    if (pendingBoundary_) {
        out_->push(sim::makeBoundary());
        pendingBoundary_ = false;
        traceBusy();
        return;
    }
    // Rows with zero elements contribute only a boundary flit. Without
    // boundaries the row advance is invisible to the queues, so note it.
    if (rowLoaded_ && rowRemaining_ == 0) {
        advanceRow();
        if (config_.emitBoundaries) {
            out_->push(sim::makeBoundary());
            traceBusy();
        } else {
            noteProgress();
        }
        return;
    }
    if (elemCursor_ >= buffer_->elements.size()) {
        if (!rowLoaded_ || !config_.emitBoundaries) {
            out_->close();
            closed_ = true;
        }
        return;
    }
    uint64_t next_consumed = bytesConsumed_ + buffer_->elemSizeBytes;
    if (next_consumed > bytesArrived_) {
        countStall(stallMemory_);
        if (!issued && !got)
            sleepOn(stallMemory_, {&port_->retireWaiters()});
        return;
    }
    int64_t value = buffer_->elements[elemCursor_];
    out_->push(sim::makeFlit(value, value));
    countFlit();
    ++elemCursor_;
    bytesConsumed_ = next_consumed;
    if (rowLoaded_) {
        --rowRemaining_;
        if (rowRemaining_ == 0) {
            advanceRow();
            if (config_.emitBoundaries)
                pendingBoundary_ = true;
        }
    }
}

void
MemoryReader::advanceRow()
{
    ++rowCursor_;
    if (rowCursor_ < buffer_->rowLengths.size()) {
        rowRemaining_ = buffer_->rowLengths[rowCursor_];
        rowLoaded_ = true;
    } else {
        rowRemaining_ = 0;
        rowLoaded_ = false;
    }
}

bool
MemoryReader::done() const
{
    return closed_;
}

} // namespace genesis::modules

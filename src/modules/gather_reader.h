/**
 * @file
 * GatherReader: per-interval reference fetch straight from device memory.
 *
 * This module is the counterfactual to the SPM path of Figures 7/11/12:
 * instead of staging the partition's reference in an on-chip scratchpad
 * and reading it per interval, it issues memory requests for every
 * read's [POS, ENDPOS) span. Functionally identical to the interval
 * SpmReader; architecturally it re-reads overlapping reference bytes
 * from DRAM for every read. The ablate_spm bench uses it to quantify the
 * data reuse the paper's scratchpads capture.
 */

#ifndef GENESIS_MODULES_GATHER_READER_H
#define GENESIS_MODULES_GATHER_READER_H

#include "modules/stream_buffer.h"
#include "sim/memory.h"
#include "sim/module.h"

namespace genesis::modules {

/** Configuration for a GatherReader. */
struct GatherReaderConfig {
    /** Reference position of the buffer's first element. */
    int64_t addrBase = 0;
    /** Emit a boundary flit after each interval. */
    bool emitBoundaries = true;
};

/** Streams [start, end) reference intervals from device memory. */
class GatherReader : public sim::Module
{
  public:
    GatherReader(std::string name, const ColumnBuffer *buffer,
                 sim::MemoryPort *port, sim::HardwareQueue *start_in,
                 sim::HardwareQueue *end_in, sim::HardwareQueue *out,
                 const GatherReaderConfig &config);

    void tick() override;
    bool done() const override;

  private:
    /** Interned stall-reason counters (see Module). */
    StatHandle stallBackpressure_ = stallCounter("backpressure");
    StatHandle stallMemory_ = stallCounter("memory");

    const ColumnBuffer *buffer_;
    sim::MemoryPort *port_;
    sim::HardwareQueue *startIn_;
    sim::HardwareQueue *endIn_;
    sim::HardwareQueue *out_;
    GatherReaderConfig config_;
    /** Request chunk size, from the memory system's MemoryConfig. */
    uint32_t granularity_ = 0;

    bool intervalActive_ = false;
    int64_t cursor_ = 0;      ///< next position to emit
    int64_t intervalEnd_ = 0;
    uint64_t bytesRequested_ = 0; ///< within the current interval
    uint64_t bytesArrived_ = 0;
    uint64_t bytesConsumed_ = 0;
    bool pendingBoundary_ = false;
    bool closed_ = false;
};

} // namespace genesis::modules

#endif // GENESIS_MODULES_GATHER_READER_H

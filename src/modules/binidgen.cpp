#include "modules/binidgen.h"

#include "base/logging.h"
#include "genome/basepair.h"
#include "genome/read.h"

namespace genesis::modules {

using sim::Flit;

BinIdGen::BinIdGen(std::string name, sim::HardwareQueue *in,
                   sim::HardwareQueue *flags_in, sim::HardwareQueue *out,
                   const BinIdGenConfig &config)
    : Module(std::move(name)), in_(in), flagsIn_(flags_in), out_(out),
      config_(config)
{
    GENESIS_ASSERT(in_ && flagsIn_ && out_, "BinIDGen wiring");
}

size_t
BinIdGen::tableSize(const BinIdGenConfig &config, bool cycle_table)
{
    size_t per_qual = cycle_table
        ? static_cast<size_t>(config.numCycleValues)
        : static_cast<size_t>(config.numContextTypes);
    return static_cast<size_t>(kBqsrQualValues) * per_qual;
}

void
BinIdGen::tick()
{
    if (closed_)
        return;
    if (!out_->canPush()) {
        countStall(stallBackpressure_);
        sleepOn(stallBackpressure_, {&out_->waiters()});
        return;
    }
    if (!in_->canPop()) {
        if (in_->drained() && flagsIn_->drained()) {
            out_->close();
            closed_ = true;
        } else if (in_->drained()) {
            // Input exhausted but the flags stream still carries flits
            // (possible when trailing reads exploded to nothing); drain.
            if (flagsIn_->canPop()) {
                flagsIn_->pop();
                traceBusy();
            } else {
                sleepOn(nullptr, {&flagsIn_->waiters()});
            }
        } else {
            sleepOn(nullptr, {&in_->waiters()});
        }
        return;
    }
    const Flit &head = in_->front();
    if (sim::isBoundary(head)) {
        if (needFlags_) {
            // The read exploded to zero bases (fully clipped): its FLAGS
            // entry is still queued and must be discarded to stay in
            // lockstep with subsequent reads.
            if (!flagsIn_->canPop()) {
                countStall(stallStarved_);
                sleepOn(stallStarved_, {&flagsIn_->waiters()});
                return;
            }
            flagsIn_->pop();
        }
        in_->pop();
        out_->push(sim::makeBoundary());
        needFlags_ = true;
        prevBase_ = -1;
        traceBusy();
        return;
    }
    // First base of a read: latch the strand from the FLAGS stream.
    if (needFlags_) {
        if (!flagsIn_->canPop()) {
            countStall(stallStarved_);
            sleepOn(stallStarved_, {&flagsIn_->waiters()});
            return;
        }
        int64_t flags = flagsIn_->pop().key;
        reverse_ = (flags & genome::kFlagReverse) != 0;
        needFlags_ = false;
        prevBase_ = -1;
        // Fall through: process the base in the same cycle (the flag
        // lookup is a register read in hardware).
    }

    Flit flit = in_->pop();
    countFlit();
    int64_t bp = flit.fieldAt(config_.bpField);
    int64_t qual = flit.fieldAt(config_.qualField);
    int64_t cycle = flit.fieldAt(config_.cycleField);

    int64_t b1 = Flit::kNull;
    int64_t b2 = Flit::kNull;
    bool deleted = bp == Flit::kDel;
    bool n_base = !deleted && bp >= genome::kNumBases;
    if (!deleted && !n_base && qual >= 0 && qual < kBqsrQualValues) {
        int64_t cycle_value = reverse_
            ? config_.readLength + cycle : cycle;
        if (cycle_value >= 0 && cycle_value < config_.numCycleValues)
            b1 = qual * config_.numCycleValues + cycle_value;
        if (prevBase_ >= 0 && prevBase_ < genome::kNumBases) {
            int64_t context = prevBase_ * 4 + bp;
            b2 = qual * config_.numContextTypes + context;
        }
    }
    if (!deleted)
        prevBase_ = bp;

    Flit result;
    result.key = flit.key;
    result.pushField(bp);
    result.pushField(qual);
    result.pushField(b1);
    result.pushField(b2);
    out_->push(result);
}

bool
BinIdGen::done() const
{
    return closed_;
}

} // namespace genesis::modules

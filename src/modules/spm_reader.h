/**
 * @file
 * SPM Reader module (Section III-C).
 *
 * Three operating modes, matching the paper:
 *  - AddressStream: each input flit carries an address; outputs the word;
 *  - Interval: two input queues supply (start, end) pairs — the Figure 7
 *    arrangement where READS.POS and READS.ENDPOS feed the reader — and
 *    all words in [start, end) stream out followed by a boundary flit;
 *  - Drain: once a designated producer module finishes, every word of the
 *    scratchpad streams out (used to dump BQSR count buffers to memory).
 */

#ifndef GENESIS_MODULES_SPM_READER_H
#define GENESIS_MODULES_SPM_READER_H

#include "sim/module.h"
#include "sim/spm.h"

namespace genesis::modules {

/** Operating mode of an SpmReader. */
enum class SpmReadMode {
    AddressStream,
    Interval,
    Drain,
};

/** Configuration for an SpmReader. */
struct SpmReaderConfig {
    SpmReadMode mode = SpmReadMode::Interval;
    /** Subtract this base from incoming addresses. */
    int64_t addrBase = 0;
    /**
     * When true, stored words are (low byte | high byte << 8) pairs —
     * e.g. reference base + IS_SNP bit — and the output flit carries the
     * two parts as separate fields.
     */
    bool unpackPair = false;
    /** Interval mode: emit a boundary flit after each interval. */
    bool emitBoundaries = true;
    /**
     * Do not start reading until this module reports done — models the
     * phased execution where the SPM Updater initialises the scratchpad
     * from memory before any read is processed.
     */
    const sim::Module *waitFor = nullptr;
};

/** Streams scratchpad contents into a queue. */
class SpmReader : public sim::Module
{
  public:
    /** AddressStream constructor. */
    SpmReader(std::string name, const sim::Scratchpad *spm,
              sim::HardwareQueue *addr_in, sim::HardwareQueue *out,
              const SpmReaderConfig &config);

    /** Interval constructor: start and end address queues. */
    SpmReader(std::string name, const sim::Scratchpad *spm,
              sim::HardwareQueue *start_in, sim::HardwareQueue *end_in,
              sim::HardwareQueue *out, const SpmReaderConfig &config);

    /** Drain constructor: streams [0, spm size) after wait_for is done. */
    SpmReader(std::string name, const sim::Scratchpad *spm,
              const sim::Module *wait_for, sim::HardwareQueue *out,
              const SpmReaderConfig &config);

    void tick() override;
    bool done() const override;

  private:
    /** Interned stall-reason counters (see Module). */
    StatHandle stallSpmInit_ = stallCounter("spm_init");
    StatHandle stallBackpressure_ = stallCounter("backpressure");

    void pushWord(int64_t key, int64_t word);

    const sim::Scratchpad *spm_;
    sim::HardwareQueue *startIn_ = nullptr;
    sim::HardwareQueue *endIn_ = nullptr;
    sim::HardwareQueue *out_ = nullptr;
    const sim::Module *waitFor_ = nullptr;
    SpmReaderConfig config_;

    bool intervalActive_ = false;
    int64_t cursor_ = 0;
    int64_t intervalEnd_ = 0;
    bool pendingBoundary_ = false;
    bool closed_ = false;
};

} // namespace genesis::modules

#endif // GENESIS_MODULES_SPM_READER_H

#include "modules/custom.h"

#include "base/logging.h"
#include "modules/binidgen.h"
#include "modules/mdgen.h"

namespace genesis::modules {

CustomModuleRegistry &
CustomModuleRegistry::global()
{
    static CustomModuleRegistry registry = [] {
        CustomModuleRegistry r;
        r.add("MDGen",
              [](const std::string &instance_name,
                 const std::vector<sim::HardwareQueue *> &inputs,
                 sim::HardwareQueue *out) -> std::unique_ptr<sim::Module> {
                  return std::make_unique<MdGen>(instance_name, inputs[0],
                                                 out);
              },
              1);
        r.add("BinIDGen",
              [](const std::string &instance_name,
                 const std::vector<sim::HardwareQueue *> &inputs,
                 sim::HardwareQueue *out) -> std::unique_ptr<sim::Module> {
                  return std::make_unique<BinIdGen>(
                      instance_name, inputs[0], inputs[1], out);
              },
              2);
        return r;
    }();
    return registry;
}

void
CustomModuleRegistry::add(const std::string &name,
                          CustomModuleFactory factory, size_t num_inputs)
{
    entries_[name] = Entry{std::move(factory), num_inputs};
}

bool
CustomModuleRegistry::has(const std::string &name) const
{
    return entries_.count(name) > 0;
}

size_t
CustomModuleRegistry::numInputs(const std::string &name) const
{
    auto it = entries_.find(name);
    if (it == entries_.end())
        fatal("unknown custom module '%s'", name.c_str());
    return it->second.numInputs;
}

std::unique_ptr<sim::Module>
CustomModuleRegistry::instantiate(
    const std::string &name, const std::string &instance_name,
    const std::vector<sim::HardwareQueue *> &inputs,
    sim::HardwareQueue *out) const
{
    auto it = entries_.find(name);
    if (it == entries_.end())
        fatal("unknown custom module '%s'", name.c_str());
    if (inputs.size() != it->second.numInputs) {
        fatal("custom module '%s' expects %zu inputs, got %zu",
              name.c_str(), it->second.numInputs, inputs.size());
    }
    return it->second.factory(instance_name, inputs, out);
}

std::vector<std::string>
CustomModuleRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto &[name, entry] : entries_)
        out.push_back(name);
    return out;
}

} // namespace genesis::modules

/**
 * @file
 * BinIDGen custom module (Section IV-D).
 *
 * For each read base with quality score q it computes the two BQSR
 * covariate bin ids:
 *   b1 = q * (number of cycle values) + cycle value
 *   b2 = q * (number of context types) + context id
 * where the cycle value is the base's position within the read (reverse
 * reads occupy a second bank of cycle values), and the context id encodes
 * the previous and current base (AA=0, AC=1, ..., TT=15).
 *
 * Bases with no defined covariate — deletions, N bases, the first base of
 * a read (no context) — carry Null bin ids, which downstream SPM updaters
 * skip.
 */

#ifndef GENESIS_MODULES_BINIDGEN_H
#define GENESIS_MODULES_BINIDGEN_H

#include "sim/module.h"

namespace genesis::modules {

/** Configuration for BinIDGen. */
struct BinIdGenConfig {
    /** Total distinct cycle values (paper: 302 for 151 bp paired reads). */
    int numCycleValues = 302;
    /** Read length; reverse reads map cycle c to readLength + c. */
    int readLength = 151;
    /** Context types: 4 x 4 two-base combinations. */
    int numContextTypes = 16;
    /** Input field layout (ReadToBases output). */
    int bpField = 0;
    int qualField = 1;
    int cycleField = 2;
};

/** Number of distinct quality-score values binned (phred 0..41). */
inline constexpr int kBqsrQualValues = 42;

/** The BinIDGen module. */
class BinIdGen : public sim::Module
{
  public:
    /**
     * @param in ReadToBases output stream
     * @param flags_in one flit per read: SAM FLAGS (for strand)
     * @param out same stream with fields rewritten to [bp, qual, b1, b2]
     */
    BinIdGen(std::string name, sim::HardwareQueue *in,
             sim::HardwareQueue *flags_in, sim::HardwareQueue *out,
             const BinIdGenConfig &config = BinIdGenConfig());

    void tick() override;
    bool done() const override;

    /** @return total bins per covariate table (for SPM sizing). */
    static size_t tableSize(const BinIdGenConfig &config, bool cycle_table);

  private:
    /** Interned stall-reason counters (see Module). */
    StatHandle stallBackpressure_ = stallCounter("backpressure");
    StatHandle stallStarved_ = stallCounter("starved");

    sim::HardwareQueue *in_;
    sim::HardwareQueue *flagsIn_;
    sim::HardwareQueue *out_;
    BinIdGenConfig config_;

    bool needFlags_ = true;
    bool reverse_ = false;
    int64_t prevBase_ = -1;
    bool closed_ = false;
};

} // namespace genesis::modules

#endif // GENESIS_MODULES_BINIDGEN_H

#include "modules/spm_reader.h"

#include "base/logging.h"

namespace genesis::modules {

using sim::Flit;

SpmReader::SpmReader(std::string name, const sim::Scratchpad *spm,
                     sim::HardwareQueue *addr_in, sim::HardwareQueue *out,
                     const SpmReaderConfig &config)
    : Module(std::move(name)), spm_(spm), startIn_(addr_in), out_(out),
      config_(config)
{
    GENESIS_ASSERT(config_.mode == SpmReadMode::AddressStream,
                   "address-stream constructor requires AddressStream "
                   "mode");
    GENESIS_ASSERT(spm_ && startIn_ && out_, "SPM reader wiring");
}

SpmReader::SpmReader(std::string name, const sim::Scratchpad *spm,
                     sim::HardwareQueue *start_in,
                     sim::HardwareQueue *end_in, sim::HardwareQueue *out,
                     const SpmReaderConfig &config)
    : Module(std::move(name)), spm_(spm), startIn_(start_in),
      endIn_(end_in), out_(out), config_(config)
{
    GENESIS_ASSERT(config_.mode == SpmReadMode::Interval,
                   "interval constructor requires Interval mode");
    GENESIS_ASSERT(spm_ && startIn_ && endIn_ && out_,
                   "SPM reader wiring");
}

SpmReader::SpmReader(std::string name, const sim::Scratchpad *spm,
                     const sim::Module *wait_for, sim::HardwareQueue *out,
                     const SpmReaderConfig &config)
    : Module(std::move(name)), spm_(spm), out_(out), waitFor_(wait_for),
      config_(config)
{
    GENESIS_ASSERT(config_.mode == SpmReadMode::Drain,
                   "drain constructor requires Drain mode");
    GENESIS_ASSERT(spm_ && waitFor_ && out_, "SPM reader wiring");
}

void
SpmReader::pushWord(int64_t key, int64_t word)
{
    Flit flit;
    flit.key = key;
    if (config_.unpackPair) {
        flit.pushField(word & 0xff);
        flit.pushField((word >> 8) & 0xff);
    } else {
        flit.pushField(word);
    }
    out_->push(flit);
    countFlit();
}

void
SpmReader::tick()
{
    if (closed_)
        return;
    if (config_.waitFor && !config_.waitFor->done()) {
        // Done-waits must spin, not sleep: done() is evaluated live in
        // tick order, and no queue/port event marks its flip.
        countStall(stallSpmInit_);
        return;
    }
    if (!out_->canPush()) {
        countStall(stallBackpressure_);
        sleepOn(stallBackpressure_, {&out_->waiters()});
        return;
    }

    switch (config_.mode) {
      case SpmReadMode::AddressStream: {
        if (!startIn_->canPop()) {
            if (startIn_->drained()) {
                out_->close();
                closed_ = true;
            } else {
                sleepOn(nullptr, {&startIn_->waiters()});
            }
            return;
        }
        const Flit &head = startIn_->front();
        if (sim::isBoundary(head)) {
            startIn_->pop();
            out_->push(sim::makeBoundary());
            traceBusy();
            return;
        }
        Flit flit = startIn_->pop();
        int64_t addr = flit.key - config_.addrBase;
        pushWord(flit.key, spm_->read(static_cast<size_t>(addr)));
        return;
      }
      case SpmReadMode::Interval: {
        if (pendingBoundary_) {
            out_->push(sim::makeBoundary());
            pendingBoundary_ = false;
            traceBusy();
            return;
        }
        if (intervalActive_) {
            if (cursor_ >= intervalEnd_) {
                intervalActive_ = false;
                if (config_.emitBoundaries) {
                    out_->push(sim::makeBoundary());
                    traceBusy();
                    return;
                }
            } else {
                int64_t addr = cursor_ - config_.addrBase;
                pushWord(cursor_, spm_->read(static_cast<size_t>(addr)));
                ++cursor_;
                if (cursor_ >= intervalEnd_) {
                    intervalActive_ = false;
                    pendingBoundary_ = config_.emitBoundaries;
                }
                return;
            }
        }
        if (startIn_->canPop() && endIn_->canPop()) {
            Flit start = startIn_->pop();
            Flit end = endIn_->pop();
            GENESIS_ASSERT(!sim::isBoundary(start) &&
                           !sim::isBoundary(end),
                           "interval SPM reader expects scalar streams");
            cursor_ = start.key;
            intervalEnd_ = end.key;
            intervalActive_ = true;
            traceBusy();
            return;
        }
        if (startIn_->drained() && endIn_->drained()) {
            out_->close();
            closed_ = true;
            return;
        }
        sleepOn(nullptr,
                {&startIn_->waiters(), &endIn_->waiters()});
        return;
      }
      case SpmReadMode::Drain: {
        if (!waitFor_->done())
            return;
        if (cursor_ >= static_cast<int64_t>(spm_->sizeWords())) {
            out_->close();
            closed_ = true;
            return;
        }
        pushWord(cursor_, spm_->read(static_cast<size_t>(cursor_)));
        ++cursor_;
        return;
      }
    }
}

bool
SpmReader::done() const
{
    return closed_;
}

} // namespace genesis::modules

/**
 * @file
 * Memory Reader module (Section III-C).
 *
 * Streams a column out of device memory: issues requests at the memory
 * access granularity while its prefetch buffer has space, and supplies
 * one flit per cycle to the output queue once the corresponding bytes
 * have arrived. Emits a boundary flit after each row when the column is
 * row-structured (array columns), so downstream modules see item
 * boundaries in-band.
 */

#ifndef GENESIS_MODULES_MEMORY_READER_H
#define GENESIS_MODULES_MEMORY_READER_H

#include "modules/stream_buffer.h"
#include "sim/memory.h"
#include "sim/module.h"

namespace genesis::modules {

/** Configuration for a MemoryReader. */
struct MemoryReaderConfig {
    /** Emit a boundary flit after every row (array columns: true). */
    bool emitBoundaries = false;
    /** Prefetch buffer capacity in bytes. */
    uint32_t prefetchBytes = 512;
};

/** Streams one ColumnBuffer from device memory into a queue. */
class MemoryReader : public sim::Module
{
  public:
    MemoryReader(std::string name, const ColumnBuffer *buffer,
                 sim::MemoryPort *port, sim::HardwareQueue *out,
                 const MemoryReaderConfig &config = MemoryReaderConfig());

    void tick() override;
    bool done() const override;

  private:
    /** Interned stall-reason counters (see Module). */
    StatHandle stallBackpressure_ = stallCounter("backpressure");
    StatHandle stallMemory_ = stallCounter("memory");

    /** Move the row cursor to the next row (if any). */
    void advanceRow();

    const ColumnBuffer *buffer_;
    sim::MemoryPort *port_;
    sim::HardwareQueue *out_;
    MemoryReaderConfig config_;
    /** Request chunk size, from the memory system's MemoryConfig. */
    uint32_t granularity_ = 0;

    uint64_t bytesRequested_ = 0;
    uint64_t bytesArrived_ = 0;
    uint64_t bytesConsumed_ = 0;
    size_t elemCursor_ = 0;
    size_t rowCursor_ = 0;
    uint32_t rowRemaining_ = 0;
    bool rowLoaded_ = false;
    bool pendingBoundary_ = false;
    bool closed_ = false;
};

} // namespace genesis::modules

#endif // GENESIS_MODULES_MEMORY_READER_H

/**
 * @file
 * MDGen custom module (Section IV-C).
 *
 * Generates the MD tag from the left-joined (read base, reference base)
 * stream: runs of matching bases are emitted as a decimal count,
 * mismatches emit the reference base, and deletion runs emit '^' followed
 * by the deleted reference bases (footnote 2 of the paper). Insertions do
 * not appear in MD. Output is a stream of ASCII character flits, one
 * character per cycle, with a boundary flit per read.
 */

#ifndef GENESIS_MODULES_MDGEN_H
#define GENESIS_MODULES_MDGEN_H

#include <deque>

#include "sim/module.h"

namespace genesis::modules {

/** Field layout of MDGen's input (the metadata pipeline's join output). */
struct MdGenConfig {
    int bpField = 0;   ///< read base code (or Del)
    int refField = 3;  ///< reference base code (or Null for insertions)
};

/** The MDGen module. */
class MdGen : public sim::Module
{
  public:
    MdGen(std::string name, sim::HardwareQueue *in,
          sim::HardwareQueue *out,
          const MdGenConfig &config = MdGenConfig());

    void tick() override;
    bool done() const override;

  private:
    /** Interned stall-reason counters (see Module). */
    StatHandle stallBackpressure_ = stallCounter("backpressure");

    /** Append the current match count's decimal digits to pending. */
    void flushCount();

    sim::HardwareQueue *in_;
    sim::HardwareQueue *out_;
    MdGenConfig config_;

    int64_t matchCount_ = 0;
    bool inDeletion_ = false;
    /** Pending output characters; kBoundaryMark delimits reads. */
    std::deque<int64_t> pending_;
    static constexpr int64_t kBoundaryMark = -1;
    bool closed_ = false;
};

} // namespace genesis::modules

#endif // GENESIS_MODULES_MDGEN_H

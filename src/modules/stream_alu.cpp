#include "modules/stream_alu.h"

#include <algorithm>

#include "base/logging.h"

namespace genesis::modules {

using sim::Flit;

StreamAlu::StreamAlu(std::string name, sim::HardwareQueue *in_a,
                     sim::HardwareQueue *in_b, sim::HardwareQueue *out,
                     const StreamAluConfig &config)
    : Module(std::move(name)), inA_(in_a), inB_(in_b), out_(out),
      config_(config)
{
    GENESIS_ASSERT(inA_ && inB_ && out_, "stream ALU wiring");
}

StreamAlu::StreamAlu(std::string name, sim::HardwareQueue *in,
                     sim::HardwareQueue *out, const StreamAluConfig &config)
    : Module(std::move(name)), inA_(in), inB_(nullptr), out_(out),
      config_(config)
{
    GENESIS_ASSERT(inA_ && out_, "stream ALU wiring");
}

int64_t
StreamAlu::apply(AluOp op, int64_t a, int64_t b)
{
    switch (op) {
      case AluOp::Add: return a + b;
      case AluOp::Sub: return a - b;
      case AluOp::Mul: return a * b;
      case AluOp::And: return a & b;
      case AluOp::Or: return a | b;
      case AluOp::Xor: return a ^ b;
      case AluOp::Not: return ~a;
      case AluOp::Min: return std::min(a, b);
      case AluOp::Max: return std::max(a, b);
      case AluOp::Cmp: return a == b ? 1 : 0;
      case AluOp::Shl: return a << b;
      case AluOp::Pack: return a | (b << 8);
    }
    panic("invalid ALU op");
}

void
StreamAlu::tick()
{
    if (closed_)
        return;
    if (!out_->canPush()) {
        countStall(stallBackpressure_);
        sleepOn(stallBackpressure_, {&out_->waiters()});
        return;
    }

    bool a_has = inA_->canPop();
    bool a_boundary = a_has && sim::isBoundary(inA_->front());
    if (inB_) {
        bool b_has = inB_->canPop();
        bool b_boundary = b_has && sim::isBoundary(inB_->front());
        if (a_boundary && b_boundary) {
            inA_->pop();
            inB_->pop();
            out_->push(sim::makeBoundary());
            traceBusy();
            return;
        }
        if (a_has && b_has && !a_boundary && !b_boundary) {
            Flit a = inA_->pop();
            Flit b = inB_->pop();
            int64_t va = config_.fieldA < 0
                ? a.key : a.fieldAt(config_.fieldA);
            int64_t vb = config_.fieldB < 0
                ? b.key : b.fieldAt(config_.fieldB);
            bool masked = config_.maskField >= 0 &&
                a.fieldAt(config_.maskField) == 0;
            Flit result;
            result.key = a.key;
            result.pushField(masked ? va : apply(config_.op, va, vb));
            out_->push(result);
            countFlit();
            return;
        }
        if ((a_boundary && b_has) || (b_boundary && a_has)) {
            panic("%s: misaligned item boundaries across inputs",
                  name().c_str());
        }
        if (inA_->drained() && inB_->drained()) {
            out_->close();
            closed_ = true;
            return;
        }
        countStall(stallStarved_);
        sleepOn(stallStarved_, {&inA_->waiters(), &inB_->waiters()});
        return;
    }

    // Unary / constant-operand form.
    if (a_boundary) {
        inA_->pop();
        out_->push(sim::makeBoundary());
        traceBusy();
        return;
    }
    if (a_has) {
        Flit a = inA_->pop();
        int64_t va = config_.fieldA < 0
            ? a.key : a.fieldAt(config_.fieldA);
        bool masked = config_.maskField >= 0 &&
            a.fieldAt(config_.maskField) == 0;
        Flit result;
        result.key = a.key;
        result.pushField(masked ? va
                         : apply(config_.op, va, config_.constantB));
        out_->push(result);
        countFlit();
        return;
    }
    if (inA_->drained()) {
        out_->close();
        closed_ = true;
        return;
    }
    sleepOn(nullptr, {&inA_->waiters()});
}

bool
StreamAlu::done() const
{
    return closed_;
}

} // namespace genesis::modules

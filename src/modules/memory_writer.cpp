#include "modules/memory_writer.h"

#include <algorithm>

#include "base/logging.h"

namespace genesis::modules {

using sim::Flit;

MemoryWriter::MemoryWriter(std::string name, ColumnBuffer *buffer,
                           sim::MemoryPort *port, sim::HardwareQueue *in,
                           const MemoryWriterConfig &config)
    : Module(std::move(name)), buffer_(buffer), port_(port), in_(in),
      config_(config)
{
    GENESIS_ASSERT(buffer_ && port_ && in_,
                   "memory writer needs buffer, port and input queue");
    granularity_ = port_->checkedAccessGranularity("memory writer");
    buffer_->elemSizeBytes = config_.elemSizeBytes;
}

void
MemoryWriter::tick()
{
    // Accept at most one flit per cycle.
    bool popped = false;
    if (in_->canPop()) {
        const Flit &head = in_->front();
        if (sim::isBoundary(head)) {
            in_->pop();
            popped = true;
            if (config_.rowMode) {
                buffer_->appendRow(currentRow_);
                currentRow_.clear();
            }
            traceBusy();
        } else {
            // Issue backpressure by not popping when the port is saturated
            // far beyond a full chunk.
            if (bytesAccumulated_ < 4ull * granularity_) {
                Flit flit = in_->pop();
                popped = true;
                int64_t v = config_.fieldIndex < 0
                    ? flit.key : flit.fieldAt(config_.fieldIndex);
                if (config_.rowMode) {
                    currentRow_.push_back(v);
                } else {
                    buffer_->appendRow({v});
                }
                bytesAccumulated_ += config_.elemSizeBytes;
                countFlit();
            } else {
                countStall(stallWriteBacklog_);
            }
        }
    } else if (in_->drained() && !inputDrained_) {
        // One-shot latch that feeds done(): report it as progress since
        // it mutates state without touching a queue or port.
        inputDrained_ = true;
        popped = true;
        noteProgress();
        if (config_.rowMode && !currentRow_.empty()) {
            // Stream ended without a trailing boundary: flush the row.
            buffer_->appendRow(currentRow_);
            currentRow_.clear();
        }
    }

    // Issue write requests for full chunks (or the final partial chunk).
    bool issued = false;
    while (bytesAccumulated_ >= granularity_ && port_->canIssue()) {
        port_->issue(buffer_->baseAddr + bytesIssued_, granularity_,
                     true);
        bytesIssued_ += granularity_;
        bytesAccumulated_ -= granularity_;
        issued = true;
    }
    if (inputDrained_ && bytesAccumulated_ > 0 && port_->canIssue()) {
        port_->issue(buffer_->baseAddr + bytesIssued_,
                     static_cast<uint32_t>(bytesAccumulated_), true);
        bytesIssued_ += bytesAccumulated_;
        bytesAccumulated_ = 0;
        issued = true;
    }
    if (popped || issued)
        return;
    if (in_->canPop()) {
        // Write backlog: the pop is gated until a retirement frees port
        // credit and the issue loop drains the accumulator.
        sleepOn(stallWriteBacklog_, {&port_->retireWaiters()});
    } else if (!inputDrained_) {
        // Idle on input; a saturated port may also be holding back the
        // issue loop, so listen for retirements too.
        sleepOn(nullptr, {&in_->waiters(), &port_->retireWaiters()});
    } else if (bytesAccumulated_ > 0 ||
               port_->retiredWriteBytes() < bytesIssued_) {
        // Flushing: waiting for issue credit or final retirements.
        sleepOn(nullptr, {&port_->retireWaiters()});
    }
}

bool
MemoryWriter::done() const
{
    return inputDrained_ && bytesAccumulated_ == 0 &&
        port_->retiredWriteBytes() >= bytesIssued_;
}

} // namespace genesis::modules

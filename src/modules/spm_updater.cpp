#include "modules/spm_updater.h"

#include "base/logging.h"

namespace genesis::modules {

using sim::Flit;

SpmUpdater::SpmUpdater(std::string name, sim::Scratchpad *spm,
                       sim::HardwareQueue *in,
                       const SpmUpdaterConfig &config)
    : Module(std::move(name)), spm_(spm), in_(in), config_(config)
{
    GENESIS_ASSERT(spm_ && in_, "SPM updater needs an SPM and a queue");
    if (config_.mode == SpmUpdateMode::ReadModifyWrite &&
        !config_.modify) {
        config_.modify = [](int64_t old, const Flit &) {
            return old + 1;
        };
    }
    seqCursor_ = config_.startAddr;
}

void
SpmUpdater::tick()
{
    if (config_.mode == SpmUpdateMode::ReadModifyWrite) {
        // Advance the RMW pipeline back to front. The write stage
        // commits; modify computes; read samples the SPM. Any occupied
        // stage means this tick mutates state without a queue op.
        if (stages_[0] || stages_[1] || stages_[2])
            noteProgress();
        if (stages_[2]) {
            spm_->write(stages_[2]->addr, stages_[2]->value);
            // Publish the write-back on the SPM's hazard scoreboard so
            // modules sleeping on the address can be woken.
            spm_->hazardRelease(stages_[2]->addr);
            stages_[2].reset();
        }
        if (stages_[1]) {
            stages_[1]->value =
                config_.modify(stages_[1]->value, stages_[1]->flit);
            stages_[2] = std::move(stages_[1]);
            stages_[1].reset();
        }
        if (stages_[0]) {
            stages_[0]->value = spm_->read(stages_[0]->addr);
            stages_[1] = std::move(stages_[0]);
            stages_[0].reset();
        }

        if (!in_->canPop()) {
            // Only fully idle (stages drained too) ticks may sleep:
            // future ticks stay no-ops until the input queue commits.
            if (!stages_[0] && !stages_[1] && !stages_[2])
                sleepOn(nullptr, {&in_->waiters()});
            return;
        }
        const Flit &head = in_->front();
        if (sim::isBoundary(head)) {
            in_->pop();
            traceBusy();
            return;
        }
        int64_t raw_addr = config_.addrField < 0
            ? head.key : head.fieldAt(config_.addrField);
        if (raw_addr == Flit::kNull || raw_addr == Flit::kIns ||
            raw_addr == Flit::kDel) {
            // Address-less flits (unbinnable bases) are skipped.
            in_->pop();
            stats().add("skipped");
            traceBusy();
            return;
        }
        size_t addr = static_cast<size_t>(raw_addr - config_.addrBase);
        // Hazard interlock: hold the flit while any in-flight stage
        // operates on the same address (RAW avoidance, Section III-C).
        for (const auto &stage : stages_) {
            if (stage && stage->addr == addr) {
                countStall(stallRmwHazard_);
                // One instant per held flit, tagged with the conflicting
                // address, so traces show each interlock engagement.
                if (!hazardTraced_ && traceSink()) {
                    if (hazardState_ == 0) {
                        hazardState_ =
                            traceSink()->internState("rmw_hazard");
                    }
                    traceInstant(hazardState_, traceArgs("addr", addr));
                    hazardTraced_ = true;
                }
                return;
            }
        }
        Flit flit = in_->pop();
        stages_[0] = Stage{addr, 0, flit};
        spm_->hazardAcquire(addr);
        hazardTraced_ = false;
        countFlit();
        return;
    }

    // Sequential / Random: single-cycle write per flit.
    if (!in_->canPop()) {
        sleepOn(nullptr, {&in_->waiters()});
        return;
    }
    const Flit &head = in_->front();
    if (sim::isBoundary(head)) {
        in_->pop();
        traceBusy();
        return;
    }
    Flit flit = in_->pop();
    int64_t value = config_.valueField < 0
        ? flit.key : flit.fieldAt(config_.valueField);
    size_t addr;
    if (config_.mode == SpmUpdateMode::Sequential) {
        addr = seqCursor_++;
    } else {
        int64_t raw_addr = config_.addrField < 0
            ? flit.key : flit.fieldAt(config_.addrField);
        addr = static_cast<size_t>(raw_addr - config_.addrBase);
    }
    spm_->write(addr, value);
    countFlit();
}

bool
SpmUpdater::done() const
{
    return in_->drained() && !stages_[0] && !stages_[1] && !stages_[2];
}

} // namespace genesis::modules

/**
 * @file
 * Reducer module (Section III-C, Figure 6).
 *
 * Performs Sum / Min / Max / Count reductions over a flit stream using a
 * reduction tree (modelled as one flit per cycle regardless of values per
 * flit). Supports per-item granularity — emit one result at each boundary
 * flit — and masked reduction, where a designated 0/1 field gates which
 * flits contribute (the paper's masked-reduction feature, used to count
 * mismatching bases per read in the Metadata Update pipeline).
 */

#ifndef GENESIS_MODULES_REDUCER_H
#define GENESIS_MODULES_REDUCER_H

#include "sim/module.h"

namespace genesis::modules {

/** Reduction operation. */
enum class ReduceOp { Sum, Min, Max, Count };

/** Reduction granularity. */
enum class ReduceGranularity {
    PerItem,     ///< one result per item (at each boundary flit)
    WholeStream, ///< single result when the input drains
};

/** Configuration for a Reducer. */
struct ReducerConfig {
    ReduceOp op = ReduceOp::Sum;
    ReduceGranularity granularity = ReduceGranularity::WholeStream;
    /** Field to reduce (-1 = the key). Ignored for Count. */
    int valueField = 0;
    /** Mask field index; -1 = unmasked. Flits with a 0 mask are skipped. */
    int maskField = -1;
    /**
     * Treat Null/Del sentinel values as absent (skipped) rather than
     * arithmetic values. Sum of qualities over a left join relies on it.
     */
    bool skipSentinels = true;
    /** Emit a boundary flit after each per-item result. */
    bool emitBoundaries = false;
};

/** The Reducer module. */
class Reducer : public sim::Module
{
  public:
    Reducer(std::string name, sim::HardwareQueue *in,
            sim::HardwareQueue *out, const ReducerConfig &config);

    void tick() override;
    bool done() const override;

  private:
    /** Interned stall-reason counters (see Module). */
    StatHandle stallBackpressure_ = stallCounter("backpressure");

    void accumulate(const sim::Flit &flit);
    sim::Flit resultFlit();
    void resetAccumulator();

    sim::HardwareQueue *in_;
    sim::HardwareQueue *out_;
    ReducerConfig config_;

    int64_t accumulator_ = 0;
    bool any_ = false;
    int64_t itemIndex_ = 0;
    bool pendingBoundary_ = false;
    bool finalEmitted_ = false;
    bool closed_ = false;
};

} // namespace genesis::modules

#endif // GENESIS_MODULES_REDUCER_H

/**
 * @file
 * ColumnBuffer: the device-memory image of one table column.
 *
 * configure_mem() (Section III-E) copies a host column into one of these;
 * a MemoryReader streams it out as flits and a MemoryWriter fills one in.
 * The buffer carries both the decoded elements (the data plane) and the
 * device base address / element size (the timing plane used by the
 * memory-system model).
 *
 * Item boundaries: streams are row-structured. Array columns (SEQ, QUAL,
 * CIGAR) emit one flit per element plus a boundary flit per row; scalar
 * columns emit one flit per row with no boundaries.
 */

#ifndef GENESIS_MODULES_STREAM_BUFFER_H
#define GENESIS_MODULES_STREAM_BUFFER_H

#include <cstdint>
#include <string>
#include <vector>

namespace genesis::modules {

/** Device-side image of one column. */
struct ColumnBuffer {
    /** Diagnostic name ("READS.SEQ", ...). */
    std::string name;
    /** Decoded element values, row after row. */
    std::vector<int64_t> elements;
    /** Per-row element counts (size = row count). */
    std::vector<uint32_t> rowLengths;
    /** Element size in bytes when resident in device memory. */
    uint32_t elemSizeBytes = 1;
    /** Device base address (drives channel interleaving). */
    uint64_t baseAddr = 0;
    /** True for writer-target buffers (allocated, filled by the run). */
    bool isOutput = false;

    /** @return total device bytes this column occupies. */
    uint64_t
    totalBytes() const
    {
        return static_cast<uint64_t>(elements.size()) * elemSizeBytes;
    }

    size_t numRows() const { return rowLengths.size(); }

    /** Append one row of elements. */
    void
    appendRow(const std::vector<int64_t> &row_elements)
    {
        elements.insert(elements.end(), row_elements.begin(),
                        row_elements.end());
        rowLengths.push_back(static_cast<uint32_t>(row_elements.size()));
    }
};

} // namespace genesis::modules

#endif // GENESIS_MODULES_STREAM_BUFFER_H

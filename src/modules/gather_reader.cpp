#include "modules/gather_reader.h"

#include <algorithm>

#include "base/logging.h"

namespace genesis::modules {

using sim::Flit;

GatherReader::GatherReader(std::string name, const ColumnBuffer *buffer,
                           sim::MemoryPort *port,
                           sim::HardwareQueue *start_in,
                           sim::HardwareQueue *end_in,
                           sim::HardwareQueue *out,
                           const GatherReaderConfig &config)
    : Module(std::move(name)), buffer_(buffer), port_(port),
      startIn_(start_in), endIn_(end_in), out_(out), config_(config)
{
    GENESIS_ASSERT(buffer_ && port_ && startIn_ && endIn_ && out_,
                   "gather reader wiring");
    granularity_ = port_->checkedAccessGranularity("gather reader");
}

void
GatherReader::tick()
{
    if (closed_)
        return;

    // Issue requests for the active interval.
    bool issued = false;
    if (intervalActive_) {
        uint64_t interval_bytes = static_cast<uint64_t>(
            intervalEnd_ - cursor_) * buffer_->elemSizeBytes +
            bytesConsumed_;
        while (bytesRequested_ < interval_bytes && port_->canIssue()) {
            uint64_t offset = static_cast<uint64_t>(
                cursor_ - config_.addrBase) * buffer_->elemSizeBytes +
                bytesRequested_ - bytesConsumed_;
            uint32_t chunk = static_cast<uint32_t>(std::min<uint64_t>(
                granularity_, interval_bytes - bytesRequested_));
            port_->issue(buffer_->baseAddr + offset, chunk, false);
            bytesRequested_ += chunk;
            issued = true;
        }
    }
    // Byte collection mutates internal state without touching a queue,
    // so report it as progress.
    uint64_t got = port_->takeCompletedReadBytes();
    if (got) {
        bytesArrived_ += got;
        noteProgress();
    }

    if (!out_->canPush()) {
        countStall(stallBackpressure_);
        if (!issued && !got) {
            sleepOn(stallBackpressure_,
                    {&out_->waiters(), &port_->retireWaiters()});
        }
        return;
    }
    if (pendingBoundary_) {
        out_->push(sim::makeBoundary());
        pendingBoundary_ = false;
        traceBusy();
        return;
    }

    if (intervalActive_) {
        if (cursor_ >= intervalEnd_) {
            intervalActive_ = false;
            if (config_.emitBoundaries) {
                out_->push(sim::makeBoundary());
                traceBusy();
                return;
            }
            noteProgress(); // silent deactivation: no boundary flit
        } else {
            uint64_t next = bytesConsumed_ + buffer_->elemSizeBytes;
            if (next > bytesArrived_) {
                countStall(stallMemory_);
                if (!issued && !got)
                    sleepOn(stallMemory_, {&port_->retireWaiters()});
                return;
            }
            size_t idx = static_cast<size_t>(cursor_ - config_.addrBase);
            GENESIS_ASSERT(idx < buffer_->elements.size(),
                           "gather read of %zu beyond buffer %zu", idx,
                           buffer_->elements.size());
            Flit flit;
            flit.key = cursor_;
            flit.pushField(buffer_->elements[idx]);
            out_->push(flit);
            countFlit();
            ++cursor_;
            bytesConsumed_ = next;
            if (cursor_ >= intervalEnd_) {
                intervalActive_ = false;
                pendingBoundary_ = config_.emitBoundaries;
            }
            return;
        }
    }

    if (startIn_->canPop() && endIn_->canPop()) {
        Flit start = startIn_->pop();
        Flit end = endIn_->pop();
        GENESIS_ASSERT(!sim::isBoundary(start) && !sim::isBoundary(end),
                       "gather reader expects scalar interval streams");
        cursor_ = start.key;
        intervalEnd_ = end.key;
        intervalActive_ = true;
        bytesRequested_ = 0;
        bytesArrived_ = 0;
        bytesConsumed_ = 0;
        traceBusy();
        return;
    }
    if (startIn_->drained() && endIn_->drained() && port_->idle()) {
        out_->close();
        closed_ = true;
        return;
    }
    // Awaiting the next interval (or the port draining before close).
    if (!issued && !got) {
        sleepOn(nullptr, {&startIn_->waiters(), &endIn_->waiters(),
                          &port_->retireWaiters()});
    }
}

bool
GatherReader::done() const
{
    return closed_;
}

} // namespace genesis::modules

#include "modules/reducer.h"

#include <algorithm>

#include "base/logging.h"

namespace genesis::modules {

using sim::Flit;

Reducer::Reducer(std::string name, sim::HardwareQueue *in,
                 sim::HardwareQueue *out, const ReducerConfig &config)
    : Module(std::move(name)), in_(in), out_(out), config_(config)
{
    GENESIS_ASSERT(in_ && out_, "reducer wiring");
    resetAccumulator();
}

void
Reducer::resetAccumulator()
{
    any_ = false;
    switch (config_.op) {
      case ReduceOp::Sum:
      case ReduceOp::Count:
        accumulator_ = 0;
        break;
      case ReduceOp::Min:
        accumulator_ = std::numeric_limits<int64_t>::max();
        break;
      case ReduceOp::Max:
        accumulator_ = std::numeric_limits<int64_t>::min();
        break;
    }
}

void
Reducer::accumulate(const Flit &flit)
{
    if (config_.maskField >= 0 &&
        flit.fieldAt(config_.maskField) == 0) {
        return;
    }
    if (config_.op == ReduceOp::Count) {
        ++accumulator_;
        any_ = true;
        return;
    }
    int64_t v = config_.valueField < 0
        ? flit.key : flit.fieldAt(config_.valueField);
    if (config_.skipSentinels &&
        (v == Flit::kNull || v == Flit::kDel || v == Flit::kIns)) {
        return;
    }
    switch (config_.op) {
      case ReduceOp::Sum:
        accumulator_ += v;
        break;
      case ReduceOp::Min:
        accumulator_ = std::min(accumulator_, v);
        break;
      case ReduceOp::Max:
        accumulator_ = std::max(accumulator_, v);
        break;
      case ReduceOp::Count:
        break;
    }
    any_ = true;
}

Flit
Reducer::resultFlit()
{
    Flit flit;
    flit.key = itemIndex_++;
    if ((config_.op == ReduceOp::Min || config_.op == ReduceOp::Max) &&
        !any_) {
        flit.pushField(Flit::kNull);
    } else {
        flit.pushField(accumulator_);
    }
    return flit;
}

void
Reducer::tick()
{
    if (closed_)
        return;
    if (!out_->canPush()) {
        countStall(stallBackpressure_);
        sleepOn(stallBackpressure_, {&out_->waiters()});
        return;
    }
    if (pendingBoundary_) {
        out_->push(sim::makeBoundary());
        pendingBoundary_ = false;
        traceBusy();
        return;
    }
    if (in_->canPop()) {
        const Flit &head = in_->front();
        if (sim::isBoundary(head)) {
            in_->pop();
            if (config_.granularity == ReduceGranularity::PerItem) {
                out_->push(resultFlit());
                resetAccumulator();
                pendingBoundary_ = config_.emitBoundaries;
            }
            traceBusy();
            return;
        }
        accumulate(in_->pop());
        countFlit();
        return;
    }
    if (in_->drained()) {
        if (config_.granularity == ReduceGranularity::WholeStream &&
            !finalEmitted_) {
            out_->push(resultFlit());
            finalEmitted_ = true;
            traceBusy();
            return;
        }
        out_->close();
        closed_ = true;
        return;
    }
    sleepOn(nullptr, {&in_->waiters()});
}

bool
Reducer::done() const
{
    return closed_;
}

} // namespace genesis::modules

/**
 * @file
 * Fork module: replicates one flit stream to several consumers.
 *
 * The BQSR pipeline of paper Figure 12 fans a Filter's output out to two
 * SPM updaters and a cascaded second Filter; in hardware this is plain
 * wire fan-out with ready/valid coupling, which this module models: a
 * flit advances only when every output queue can accept it in the same
 * cycle.
 */

#ifndef GENESIS_MODULES_FORK_H
#define GENESIS_MODULES_FORK_H

#include <vector>

#include "sim/module.h"

namespace genesis::modules {

/** Replicates an input stream into N output queues. */
class Fork : public sim::Module
{
  public:
    Fork(std::string name, sim::HardwareQueue *in,
         std::vector<sim::HardwareQueue *> outs);

    void tick() override;
    bool done() const override;

  private:
    /** Interned stall-reason counters (see Module). */
    StatHandle stallBackpressure_ = stallCounter("backpressure");

    sim::HardwareQueue *in_;
    std::vector<sim::HardwareQueue *> outs_;
    bool closed_ = false;
};

} // namespace genesis::modules

#endif // GENESIS_MODULES_FORK_H

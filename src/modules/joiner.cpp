#include "modules/joiner.h"

#include "base/logging.h"

namespace genesis::modules {

using sim::Flit;

Joiner::Joiner(std::string name, sim::HardwareQueue *left,
               sim::HardwareQueue *right, sim::HardwareQueue *out,
               const JoinerConfig &config)
    : Module(std::move(name)), left_(left), right_(right), out_(out),
      config_(config)
{
    GENESIS_ASSERT(left_ && right_ && out_, "joiner wiring");
}

void
Joiner::emitLeftOnly(const Flit &flit)
{
    Flit merged = flit;
    for (int i = 0; i < config_.rightFields; ++i)
        merged.pushField(Flit::kNull);
    out_->push(merged);
    countFlit();
}

void
Joiner::emitRightOnly(const Flit &flit)
{
    Flit merged;
    merged.key = flit.key;
    for (int i = 0; i < config_.leftFields; ++i)
        merged.pushField(Flit::kNull);
    merged.mergeFields(flit);
    out_->push(merged);
    countFlit();
}

void
Joiner::tick()
{
    if (closed_)
        return;
    if (!out_->canPush()) {
        countStall(stallBackpressure_);
        sleepOn(stallBackpressure_, {&out_->waiters()});
        return;
    }

    const bool left_drained = left_->drained();
    const bool right_drained = right_->drained();
    const bool left_has = left_->canPop();
    const bool right_has = right_->canPop();
    const bool left_stopped = leftItemDone_ || left_drained;
    const bool right_stopped = rightItemDone_ || right_drained;

    // Item boundary: both sides finished the current item.
    if (left_stopped && right_stopped) {
        if (leftItemDone_ || rightItemDone_) {
            out_->push(sim::makeBoundary());
            leftItemDone_ = false;
            rightItemDone_ = false;
            traceBusy();
            return;
        }
        // Both drained with no boundary pending: stream complete.
        out_->close();
        closed_ = true;
        return;
    }

    // Consume boundaries, latching per-side item completion.
    if (!leftItemDone_ && left_has && sim::isBoundary(left_->front())) {
        left_->pop();
        leftItemDone_ = true;
        traceBusy();
        return;
    }
    if (!rightItemDone_ && right_has &&
        sim::isBoundary(right_->front())) {
        right_->pop();
        rightItemDone_ = true;
        traceBusy();
        return;
    }

    const bool left_data = left_has && !leftItemDone_ &&
        !sim::isBoundary(left_->front());
    const bool right_data = right_has && !rightItemDone_ &&
        !sim::isBoundary(right_->front());

    // One side finished its item: the other side's remaining flits are
    // unmatched by construction.
    if (left_stopped && right_data) {
        Flit flit = right_->pop();
        if (config_.mode == JoinMode::Outer) {
            emitRightOnly(flit);
        } else {
            stats().add("dropped_right");
            traceBusy();
        }
        return;
    }
    if (right_stopped && left_data) {
        Flit flit = left_->pop();
        if (config_.mode == JoinMode::Inner) {
            stats().add("dropped_left");
            traceBusy();
        } else {
            emitLeftOnly(flit);
        }
        return;
    }

    if (!left_data || !right_data) {
        // Waiting for an upstream module to produce.
        countStall(stallStarved_);
        sleepOn(stallStarved_, {&left_->waiters(), &right_->waiters()});
        return;
    }

    const Flit &lhead = left_->front();
    const Flit &rhead = right_->front();

    // Inserted bases bypass the key comparison.
    if (lhead.key == Flit::kIns) {
        Flit flit = left_->pop();
        if (config_.mode == JoinMode::Inner) {
            stats().add("dropped_left");
            traceBusy();
        } else {
            emitLeftOnly(flit);
        }
        return;
    }

    if (lhead.key == rhead.key) {
        Flit merged = left_->pop();
        Flit right_flit = right_->pop();
        merged.mergeFields(right_flit);
        out_->push(merged);
        countFlit();
        return;
    }
    if (lhead.key < rhead.key) {
        Flit flit = left_->pop();
        if (config_.mode == JoinMode::Inner) {
            stats().add("dropped_left");
            traceBusy();
        } else {
            emitLeftOnly(flit);
        }
        return;
    }
    // rhead.key < lhead.key
    Flit flit = right_->pop();
    if (config_.mode == JoinMode::Outer) {
        emitRightOnly(flit);
    } else {
        stats().add("dropped_right");
        traceBusy();
    }
}

bool
Joiner::done() const
{
    return closed_;
}

} // namespace genesis::modules

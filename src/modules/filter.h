/**
 * @file
 * Filter module (Section III-C, Figure 6).
 *
 * Checks each flit against a comparison condition between two operands
 * (fields, the key, or a constant). In drop mode only matching flits pass
 * (boundary flits always pass). In mask mode every flit passes with an
 * extra 0/1 mask field appended — the form consumed by masked Reducers
 * and chained SPM updaters when item boundaries must be preserved.
 *
 * Null/Ins/Del sentinels participate in equality exactly like distinct
 * values: a deleted or padded operand never equals a real base, so the
 * "read bp != ref bp" mismatch filter naturally counts insertions and
 * deletions, as the Metadata Update stage requires (Section IV-C).
 */

#ifndef GENESIS_MODULES_FILTER_H
#define GENESIS_MODULES_FILTER_H

#include "sim/module.h"

namespace genesis::modules {

/** Comparison operator. */
enum class CompareOp { Eq, Ne, Lt, Le, Gt, Ge };

/** One operand of a filter condition. */
struct FilterOperand {
    enum class Kind { Key, Field, Const };
    Kind kind = Kind::Field;
    int fieldIndex = 0;
    int64_t constant = 0;

    static FilterOperand key();
    static FilterOperand field(int index);
    static FilterOperand constant_(int64_t value);
};

/** Configuration for a Filter. */
struct FilterConfig {
    FilterOperand lhs;
    CompareOp op = CompareOp::Eq;
    FilterOperand rhs;
    /** Mask mode: pass everything, append a 0/1 match field. */
    bool maskMode = false;
};

/** The Filter module. */
class Filter : public sim::Module
{
  public:
    Filter(std::string name, sim::HardwareQueue *in,
           sim::HardwareQueue *out, const FilterConfig &config);

    void tick() override;
    bool done() const override;

    /** Evaluate the condition against a flit (exposed for tests). */
    bool matches(const sim::Flit &flit) const;

  private:
    /** Interned stall-reason counters (see Module). */
    StatHandle stallBackpressure_ = stallCounter("backpressure");

    int64_t operandValue(const FilterOperand &operand,
                         const sim::Flit &flit) const;

    sim::HardwareQueue *in_;
    sim::HardwareQueue *out_;
    FilterConfig config_;
    bool closed_ = false;
};

} // namespace genesis::modules

#endif // GENESIS_MODULES_FILTER_H

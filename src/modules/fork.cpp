#include "modules/fork.h"

#include "base/logging.h"

namespace genesis::modules {

Fork::Fork(std::string name, sim::HardwareQueue *in,
           std::vector<sim::HardwareQueue *> outs)
    : Module(std::move(name)), in_(in), outs_(std::move(outs))
{
    GENESIS_ASSERT(in_ && !outs_.empty(), "fork wiring");
    for (auto *out : outs_)
        GENESIS_ASSERT(out != nullptr, "fork output queue is null");
}

void
Fork::tick()
{
    if (closed_)
        return;
    for (auto *out : outs_) {
        if (!out->canPush()) {
            countStall(stallBackpressure_);
            sleepOn(stallBackpressure_, {&out->waiters()});
            return;
        }
    }
    if (in_->canPop()) {
        sim::Flit flit = in_->pop();
        for (auto *out : outs_)
            out->push(flit);
        countFlit();
        return;
    }
    if (in_->drained()) {
        for (auto *out : outs_)
            out->close();
        closed_ = true;
        return;
    }
    sleepOn(nullptr, {&in_->waiters()});
}

bool
Fork::done() const
{
    return closed_;
}

} // namespace genesis::modules

/**
 * @file
 * Stream ALU module (Section III-C, Figure 6).
 *
 * Performs a simple unary or binary ALU operation on flits from one or
 * two input queues (or one queue and a constant). With two queues the
 * operation pairs flits positionally. Boundary flits pass through (and
 * must be aligned across two-queue inputs). An optional mask field can
 * gate the operation, leaving unmasked flits' first operand unchanged.
 */

#ifndef GENESIS_MODULES_STREAM_ALU_H
#define GENESIS_MODULES_STREAM_ALU_H

#include "sim/module.h"

namespace genesis::modules {

/** ALU operation. */
enum class AluOp {
    Add, Sub, Mul, And, Or, Xor, Not, Min, Max,
    Cmp,   ///< (a == b) ? 1 : 0
    Shl,   ///< a << b
    Pack,  ///< a | (b << 8) — used to pack (SEQ, IS_SNP) SPM words
};

/** Configuration for a StreamAlu. */
struct StreamAluConfig {
    AluOp op = AluOp::Add;
    /** Field of the first input used as operand A (-1 = key). */
    int fieldA = 0;
    /** Field of the second input used as operand B (-1 = key). */
    int fieldB = 0;
    /** Constant operand B when no second queue is connected. */
    int64_t constantB = 0;
    /** Mask field on the first input; -1 = unmasked. */
    int maskField = -1;
};

/** The Stream ALU module. */
class StreamAlu : public sim::Module
{
  public:
    /** Binary form with two input queues. */
    StreamAlu(std::string name, sim::HardwareQueue *in_a,
              sim::HardwareQueue *in_b, sim::HardwareQueue *out,
              const StreamAluConfig &config);

    /** Unary / queue-with-constant form. */
    StreamAlu(std::string name, sim::HardwareQueue *in,
              sim::HardwareQueue *out, const StreamAluConfig &config);

    void tick() override;
    bool done() const override;

    /** Apply the configured operation (exposed for tests). */
    static int64_t apply(AluOp op, int64_t a, int64_t b);

  private:
    /** Interned stall-reason counters (see Module). */
    StatHandle stallBackpressure_ = stallCounter("backpressure");
    StatHandle stallStarved_ = stallCounter("starved");

    sim::HardwareQueue *inA_;
    sim::HardwareQueue *inB_; ///< may be null (constant operand)
    sim::HardwareQueue *out_;
    StreamAluConfig config_;
    bool closed_ = false;
};

} // namespace genesis::modules

#endif // GENESIS_MODULES_STREAM_ALU_H

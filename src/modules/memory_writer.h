/**
 * @file
 * Memory Writer module (Section III-C).
 *
 * Accepts one flit per cycle, accumulates values in an internal buffer,
 * and issues a write request whenever a full memory-access-granularity
 * chunk is ready (or the stream ends). Data lands in a ColumnBuffer;
 * boundary flits close the current output row.
 */

#ifndef GENESIS_MODULES_MEMORY_WRITER_H
#define GENESIS_MODULES_MEMORY_WRITER_H

#include <vector>

#include "modules/stream_buffer.h"
#include "sim/memory.h"
#include "sim/module.h"

namespace genesis::modules {

/** Configuration for a MemoryWriter. */
struct MemoryWriterConfig {
    /** Which flit field to store (-1 stores the key instead). */
    int fieldIndex = 0;
    /** Element size in device memory. */
    uint32_t elemSizeBytes = 4;
    /**
     * When true (row mode) a boundary flit ends the current output row;
     * when false every flit is its own row (scalar columns).
     */
    bool rowMode = false;
};

/** Streams flits from a queue into a ColumnBuffer in device memory. */
class MemoryWriter : public sim::Module
{
  public:
    MemoryWriter(std::string name, ColumnBuffer *buffer,
                 sim::MemoryPort *port, sim::HardwareQueue *in,
                 const MemoryWriterConfig &config = MemoryWriterConfig());

    void tick() override;
    bool done() const override;

  private:
    /** Interned stall-reason counters (see Module). */
    StatHandle stallWriteBacklog_ = stallCounter("write_backlog");

    ColumnBuffer *buffer_;
    sim::MemoryPort *port_;
    sim::HardwareQueue *in_;
    MemoryWriterConfig config_;
    /** Request chunk size, from the memory system's MemoryConfig. */
    uint32_t granularity_ = 0;

    std::vector<int64_t> currentRow_;
    uint64_t bytesAccumulated_ = 0; ///< accepted but not yet requested
    uint64_t bytesIssued_ = 0;      ///< total write bytes issued
    bool inputDrained_ = false;
};

} // namespace genesis::modules

#endif // GENESIS_MODULES_MEMORY_WRITER_H

#include "modules/mdgen.h"

#include <string>

#include "base/logging.h"
#include "genome/basepair.h"

namespace genesis::modules {

using sim::Flit;

MdGen::MdGen(std::string name, sim::HardwareQueue *in,
             sim::HardwareQueue *out, const MdGenConfig &config)
    : Module(std::move(name)), in_(in), out_(out), config_(config)
{
    GENESIS_ASSERT(in_ && out_, "MDGen wiring");
}

void
MdGen::flushCount()
{
    std::string digits = std::to_string(matchCount_);
    for (char c : digits)
        pending_.push_back(static_cast<int64_t>(c));
    matchCount_ = 0;
}

void
MdGen::tick()
{
    if (closed_)
        return;
    if (!out_->canPush()) {
        countStall(stallBackpressure_);
        sleepOn(stallBackpressure_, {&out_->waiters()});
        return;
    }

    // Drain pending characters first (one per cycle).
    if (!pending_.empty()) {
        int64_t c = pending_.front();
        pending_.pop_front();
        if (c == kBoundaryMark)
            out_->push(sim::makeBoundary());
        else
            out_->push(sim::makeFlit(c, c));
        traceBusy();
        return;
    }

    if (in_->canPop()) {
        const Flit &head = in_->front();
        if (sim::isBoundary(head)) {
            in_->pop();
            flushCount();
            inDeletion_ = false;
            pending_.push_back(kBoundaryMark);
            traceBusy();
            return;
        }
        Flit flit = in_->pop();
        countFlit();
        int64_t bp = flit.fieldAt(config_.bpField);
        int64_t ref = flit.fieldAt(config_.refField);
        if (flit.key == Flit::kIns || ref == Flit::kNull) {
            // Inserted bases carry no reference information: MD skips
            // them entirely. They do split a deletion run, so a deletion
            // resuming after an insertion starts a fresh "0^" group
            // (matching samtools/GATK calcMd).
            inDeletion_ = false;
            return;
        }
        char ref_char = genome::baseToChar(static_cast<uint8_t>(ref));
        if (bp == Flit::kDel) {
            if (!inDeletion_) {
                flushCount();
                pending_.push_back(static_cast<int64_t>('^'));
                inDeletion_ = true;
            }
            pending_.push_back(static_cast<int64_t>(ref_char));
            return;
        }
        if (bp == ref) {
            // After a deletion run, matches resume the counting state.
            inDeletion_ = false;
            ++matchCount_;
            return;
        }
        // Mismatch: emit the pending count (possibly 0) then the
        // reference base.
        inDeletion_ = false;
        flushCount();
        pending_.push_back(static_cast<int64_t>(ref_char));
        return;
    }

    if (in_->drained()) {
        out_->close();
        closed_ = true;
        return;
    }
    sleepOn(nullptr, {&in_->waiters()});
}

bool
MdGen::done() const
{
    return closed_ && pending_.empty();
}

} // namespace genesis::modules

#include "modules/filter.h"

#include "base/logging.h"

namespace genesis::modules {

using sim::Flit;

FilterOperand
FilterOperand::key()
{
    FilterOperand op;
    op.kind = Kind::Key;
    return op;
}

FilterOperand
FilterOperand::field(int index)
{
    FilterOperand op;
    op.kind = Kind::Field;
    op.fieldIndex = index;
    return op;
}

FilterOperand
FilterOperand::constant_(int64_t value)
{
    FilterOperand op;
    op.kind = Kind::Const;
    op.constant = value;
    return op;
}

Filter::Filter(std::string name, sim::HardwareQueue *in,
               sim::HardwareQueue *out, const FilterConfig &config)
    : Module(std::move(name)), in_(in), out_(out), config_(config)
{
    GENESIS_ASSERT(in_ && out_, "filter wiring");
}

int64_t
Filter::operandValue(const FilterOperand &operand, const Flit &flit) const
{
    switch (operand.kind) {
      case FilterOperand::Kind::Key: return flit.key;
      case FilterOperand::Kind::Field:
        return flit.fieldAt(operand.fieldIndex);
      case FilterOperand::Kind::Const: return operand.constant;
    }
    panic("invalid filter operand kind");
}

bool
Filter::matches(const Flit &flit) const
{
    int64_t a = operandValue(config_.lhs, flit);
    int64_t b = operandValue(config_.rhs, flit);
    switch (config_.op) {
      case CompareOp::Eq: return a == b;
      case CompareOp::Ne: return a != b;
      case CompareOp::Lt: return a < b;
      case CompareOp::Le: return a <= b;
      case CompareOp::Gt: return a > b;
      case CompareOp::Ge: return a >= b;
    }
    panic("invalid compare op");
}

void
Filter::tick()
{
    if (closed_)
        return;
    if (!out_->canPush()) {
        countStall(stallBackpressure_);
        sleepOn(stallBackpressure_, {&out_->waiters()});
        return;
    }
    if (!in_->canPop()) {
        if (in_->drained()) {
            out_->close();
            closed_ = true;
        } else {
            sleepOn(nullptr, {&in_->waiters()});
        }
        return;
    }
    const Flit &head = in_->front();
    if (sim::isBoundary(head)) {
        in_->pop();
        out_->push(sim::makeBoundary());
        traceBusy();
        return;
    }
    Flit flit = in_->pop();
    bool match = matches(flit);
    countFlit();
    if (config_.maskMode) {
        flit.pushField(match ? 1 : 0);
        out_->push(flit);
    } else if (match) {
        out_->push(flit);
    } else {
        stats().add("dropped");
    }
}

bool
Filter::done() const
{
    return closed_;
}

} // namespace genesis::modules

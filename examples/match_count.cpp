/**
 * @file
 * The paper's walk-through (Figures 4, 5, 7): express "count the bases
 * of each read that match the reference" as an extended-SQL script, show
 * its logical query plan, run it on the software engine, automatically
 * lower the fused plan onto Genesis hardware modules, run the simulated
 * pipeline, and cross-check all three answers.
 *
 * Build and run:  ./build/examples/match_count
 */

#include <cstdio>

#include "core/accel_common.h"
#include "core/example_accel.h"
#include "genome/read_simulator.h"
#include "pipeline/mapper.h"
#include "sql/parser.h"
#include "sql/planner.h"
#include "table/partition.h"

using namespace genesis;

int
main()
{
    // Workload: one reference window's worth of reads.
    genome::SyntheticGenomeConfig gcfg;
    gcfg.numChromosomes = 1;
    gcfg.firstChromosomeLength = 20'000;
    gcfg.minChromosomeLength = 20'000;
    auto genome = genome::ReferenceGenome::synthesize(gcfg);
    genome::ReadSimulatorConfig rcfg;
    rcfg.numPairs = 40;
    auto reads = genome::ReadSimulator(genome, rcfg).simulate().reads;

    constexpr int64_t kPsize = 20'000;
    table::Partitioner partitioner(kPsize);
    auto partitions = partitioner.partitionReads(reads);
    const auto &part = partitions.front();

    // 1. The query (Figure 4).
    std::printf("=== extended-SQL query (Figure 4) ===\n%s\n",
                core::matchCountQueryText().c_str());

    // 2. Its logical plan (the tree the hardware mapping consumes).
    sql::Script script = sql::parseScript(core::matchCountQueryText());
    std::printf("=== logical plans (EXPLAIN) ===\n%s\n",
                sql::explainScript(script).c_str());

    // 3. Software engine execution.
    auto sql_counts = core::matchCountsSqlEngine(reads, part, genome,
                                                 kPsize, 512);

    // 4. Automatic lowering of the fused plan to hardware (Section
    //    III-D) and simulation.
    sql::PlanPtr fused = pipeline::fuseScriptToPlan(script);
    std::printf("=== fused streaming plan ===\n%s\n",
                fused->str().c_str());

    runtime::AcceleratorSession session{runtime::RuntimeConfig{}};
    pipeline::PipelineBuilder builder(session.sim(), 0);
    core::ReadColumns cols =
        core::ReadColumns::fromReads(reads, part.readIndices);
    core::RefColumns ref = core::RefColumns::fromGenome(
        genome, part.chr, part.windowStart, part.windowEnd, 512);

    pipeline::QueryBinding binding;
    binding.pos = session.configureMem(
        "READS.POS", std::move(cols.pos),
        core::ReadColumns::scalarLens(cols.numReads), 4);
    binding.endpos = session.configureMem(
        "READS.ENDPOS", std::move(cols.endpos),
        core::ReadColumns::scalarLens(cols.numReads), 4);
    binding.cigar = session.configureMem(
        "READS.CIGAR", std::move(cols.cigar), std::move(cols.cigarLens),
        2);
    binding.seq = session.configureMem(
        "READS.SEQ", std::move(cols.seq), std::move(cols.seqLens), 1);
    binding.refSeq = session.configureMem(
        "REFS.SEQ", std::move(ref.seq),
        core::ReadColumns::scalarLens(ref.seq.size()), 1);
    binding.windowStart = part.windowStart;
    binding.spmWords = static_cast<size_t>(kPsize + 512);

    auto mapped = pipeline::mapPlanToPipeline(builder, session, *fused,
                                              binding);
    std::printf("=== plan -> module lowering (Figure 7) ===\n%s\n",
                mapped.trace.c_str());

    session.start();
    session.wait();
    const auto *hw = session.flush(mapped.output->name);

    // 5. Direct software ground truth + three-way check.
    auto direct = core::matchCountsSoftware(reads, part.readIndices,
                                            genome);
    bool ok = hw->elements.size() == direct.size() &&
        sql_counts.size() == direct.size();
    std::printf("read                matches(sql) matches(hw) "
                "matches(direct)\n");
    for (size_t i = 0; i < direct.size() && ok; ++i) {
        const auto &read = reads[part.readIndices[i]];
        if (i < 8) {
            std::printf("%-20s %12lld %11lld %15lld\n",
                        read.name.c_str(),
                        static_cast<long long>(sql_counts[i]),
                        static_cast<long long>(hw->elements[i]),
                        static_cast<long long>(direct[i]));
        }
        ok &= sql_counts[i] == direct[i] && hw->elements[i] == direct[i];
    }
    std::printf("... (%zu reads total)\n", direct.size());
    std::printf("simulated accelerator: %llu cycles (%.1f us at "
                "250 MHz)\n",
                static_cast<unsigned long long>(session.sim().cycle()),
                session.secondsForCycles(session.sim().cycle()) * 1e6);
    std::printf(ok ? "all three implementations agree\n"
                   : "MISMATCH between implementations\n");
    return ok ? 0 : 1;
}

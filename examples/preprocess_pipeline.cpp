/**
 * @file
 * End-to-end GATK4-style preprocessing with Genesis accelerators.
 *
 * Runs the full data-preprocessing phase on a synthetic genome twice —
 * pure software, then with the three Genesis accelerators (Mark
 * Duplicates, Metadata Update, BQSR covariate construction) standing in
 * for their stages — verifies the outputs agree, and prints each
 * accelerator's host/communication/accelerator timing split.
 *
 * Build and run:  ./build/examples/preprocess_pipeline
 *
 * Pass `--trace out.json` to capture a cycle-accurate activity trace of
 * the three accelerators (Chrome trace-event JSON, loadable in Perfetto
 * or chrome://tracing) and print a per-module utilization summary.
 *
 * Pass `--sessions N` to run the Mark Duplicates stage as shards over N
 * concurrent accelerator sessions (BatchRunner double-buffering: host
 * encode of shard k+1 overlaps execution of shard k). Results are
 * bit-for-bit identical to the single-session default.
 *
 * Multi-pipeline accelerators additionally shard their cycle loop
 * across simulator worker threads (GENESIS_SIM_THREADS; DESIGN.md
 * §4e) — also bit-identical, and automatically budgeted against
 * `--sessions` so the two parallelism levels never oversubscribe the
 * host's cores.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "base/trace.h"
#include "core/bqsr_accel.h"
#include "core/markdup_accel.h"
#include "core/metadata_accel.h"
#include "gatk/preprocess.h"
#include "genome/read_simulator.h"
#include "genome/samlite.h"

using namespace genesis;

int
main(int argc, char **argv)
{
    const char *trace_path = nullptr;
    int sessions = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
            trace_path = argv[++i];
        } else if (std::strcmp(argv[i], "--sessions") == 0 &&
                   i + 1 < argc) {
            sessions = std::atoi(argv[++i]);
            if (sessions < 1) {
                std::fprintf(stderr, "--sessions needs a count >= 1\n");
                return 2;
            }
        } else {
            std::fprintf(stderr,
                         "usage: %s [--trace out.json] [--sessions N]\n",
                         argv[0]);
            return 2;
        }
    }
    TraceSink trace;

    // A small whole "genome" with two chromosomes.
    genome::SyntheticGenomeConfig gcfg;
    gcfg.numChromosomes = 2;
    gcfg.firstChromosomeLength = 400'000;
    auto genome = genome::ReferenceGenome::synthesize(gcfg);

    genome::ReadSimulatorConfig rcfg;
    rcfg.numPairs = 3'000;
    auto workload = genome::ReadSimulator(genome, rcfg).simulate();
    std::printf("workload: %zu reads, %lld bp reference\n",
                workload.reads.size(),
                static_cast<long long>(genome.totalLength()));

    // --- Software pipeline -------------------------------------------
    auto sw_reads = workload.reads;
    gatk::PreprocessOptions options;
    options.runAligner = false; // reads arrive aligned in this demo
    auto sw = gatk::runPreprocess(sw_reads, genome, options);
    std::printf("\nsoftware pipeline: %.3f s\n  %s\n",
                sw.times.total(), sw.times.breakdownStr().c_str());

    // --- Accelerated pipeline ----------------------------------------
    auto hw_reads = workload.reads;

    core::MarkDupAccelConfig md_cfg;
    md_cfg.numPipelines = 8;
    md_cfg.concurrentSessions = sessions;
    if (trace_path) {
        md_cfg.runtime.trace = &trace;
        md_cfg.runtime.traceLabel = "markdup";
    }
    auto md = core::MarkDupAccelerator(md_cfg).run(hw_reads);
    if (sessions > 1)
        std::printf("\nMark Duplicates accelerator "
                    "(%d concurrent sessions)", sessions);
    else
        std::printf("\nMark Duplicates accelerator");
    std::printf("\n  %s\n  %lld duplicates "
                "marked across %lld sets\n",
                md.info.timing.str().c_str(),
                static_cast<long long>(md.stats.duplicatesMarked),
                static_cast<long long>(md.stats.duplicateSets));

    core::MetadataAccelConfig mu_cfg;
    mu_cfg.numPipelines = 8;
    mu_cfg.psize = 65'536;
    if (trace_path) {
        mu_cfg.runtime.trace = &trace;
        mu_cfg.runtime.traceLabel = "metadata";
    }
    auto mu = core::MetadataAccelerator(mu_cfg).run(hw_reads, genome);
    std::printf("\nMetadata Update accelerator\n  %s\n  %lld reads "
                "tagged over %llu batches (%llu cycles)\n",
                mu.info.timing.str().c_str(),
                static_cast<long long>(mu.readsTagged),
                static_cast<unsigned long long>(mu.info.batches),
                static_cast<unsigned long long>(mu.info.totalCycles));

    core::BqsrAccelConfig bq_cfg;
    bq_cfg.numPipelines = 8;
    bq_cfg.psize = 65'536;
    if (trace_path) {
        bq_cfg.runtime.trace = &trace;
        bq_cfg.runtime.traceLabel = "bqsr";
    }
    auto bq = core::BqsrAccelerator(bq_cfg).run(hw_reads, genome);
    std::printf("\nBQSR (covariate construction) accelerator\n  %s\n"
                "  %lld observations, %lld empirical errors\n",
                bq.info.timing.str().c_str(),
                static_cast<long long>(bq.table.totalObservations()),
                static_cast<long long>(bq.table.totalErrors()));

    // Quality update stays in software (as in the paper).
    int64_t changed = gatk::applyQualityUpdate(hw_reads, bq.table);
    std::printf("  quality update (software): %lld scores adjusted\n",
                static_cast<long long>(changed));

    // --- Verification --------------------------------------------------
    bool ok = hw_reads.size() == sw_reads.size();
    for (size_t i = 0; ok && i < hw_reads.size(); ++i) {
        ok &= hw_reads[i].name == sw_reads[i].name;
        ok &= hw_reads[i].isDuplicate() == sw_reads[i].isDuplicate();
        ok &= hw_reads[i].nmTag == sw_reads[i].nmTag;
        ok &= hw_reads[i].mdTag == sw_reads[i].mdTag;
        ok &= hw_reads[i].uqTag == sw_reads[i].uqTag;
        ok &= hw_reads[i].qual == sw_reads[i].qual;
    }
    std::printf("\naccelerated vs software outputs: %s\n",
                ok ? "identical" : "MISMATCH");

    if (trace_path) {
        trace.finish();
        if (!trace.writeJsonFile(trace_path)) {
            std::fprintf(stderr, "cannot write trace to %s\n",
                         trace_path);
            return 1;
        }
        std::printf("\ntrace written to %s "
                    "(load in https://ui.perfetto.dev)\n%s",
                    trace_path, trace.utilizationSummary().c_str());
    }

    // A taste of the final SAM output.
    std::ostringstream sam;
    genome::writeSam(sam, genome, {hw_reads.begin(),
                                   hw_reads.begin() + 3});
    std::printf("\nfirst reads of the processed SAM:\n%s",
                sam.str().c_str());
    return ok ? 0 : 1;
}

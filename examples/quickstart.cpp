/**
 * @file
 * Quickstart: the Genesis host API from Section III-E, end to end.
 *
 * Synthesises a tiny genome and read set, loads a one-module "image"
 * (quality-score summation — the Mark Duplicates kernel of Figure 10),
 * and drives it exactly the way the paper describes:
 *
 *   configure_mem(...)   once per memory reader/writer column
 *   run_genesis(...)     non-blocking start
 *   check_genesis(...)   poll while the host does other work
 *   wait_genesis(...)    block until done
 *   genesis_flush(...)   copy results back to host memory
 *
 * Build and run:  ./build/examples/quickstart
 */

#include <cstdio>
#include <thread>
#include <vector>

#include "genome/read_simulator.h"
#include "modules/memory_reader.h"
#include "modules/memory_writer.h"
#include "modules/reducer.h"
#include "runtime/api.h"

using namespace genesis;

namespace {

/**
 * The hardware image: READS.QUAL streams through a per-read sum Reducer
 * into the QSUM output column (paper Figure 10).
 */
void
qualSumImage(runtime::AcceleratorSession &session,
             const std::function<modules::ColumnBuffer *(
                 const std::string &)> &input)
{
    auto *qual = input("READS.QUAL");
    auto *out = session.configureOutput("QSUM", 4);
    auto &sim = session.sim();

    auto *qual_q = sim.makeQueue("qual");
    auto *sum_q = sim.makeQueue("sum");

    modules::MemoryReaderConfig rd;
    rd.emitBoundaries = false; // flat stream: one read per pipeline call
    sim.make<modules::MemoryReader>("rd_qual", qual, sim.memory()
                                    .makePort(0), qual_q, rd);
    modules::ReducerConfig red;
    red.op = modules::ReduceOp::Sum;
    sim.make<modules::Reducer>("sum", qual_q, sum_q, red);
    sim.make<modules::MemoryWriter>("wr", out, sim.memory().makePort(0),
                                    sum_q, modules::MemoryWriterConfig{});
}

} // namespace

int
main()
{
    // 1. Synthesise a small workload.
    genome::SyntheticGenomeConfig gcfg;
    gcfg.numChromosomes = 1;
    gcfg.firstChromosomeLength = 100'000;
    auto genome = genome::ReferenceGenome::synthesize(gcfg);

    genome::ReadSimulatorConfig rcfg;
    rcfg.numPairs = 2;
    genome::ReadSimulator simulator(genome, rcfg);
    auto workload = simulator.simulate();
    std::printf("synthesised %zu reads over %lld bp\n",
                workload.reads.size(),
                static_cast<long long>(genome.totalLength()));

    // 2. Load the image with one pipeline per read (tiny demo).
    int pipelines = static_cast<int>(workload.reads.size());
    runtime::genesis_load_image(qualSumImage, pipelines);

    // 3. Configure, run (non-blocking), poll, flush.
    std::vector<uint32_t> sums(workload.reads.size(), 0);
    for (int p = 0; p < pipelines; ++p) {
        auto &read = workload.reads[static_cast<size_t>(p)];
        runtime::configure_mem(read.qual.data(), 1,
                               static_cast<int>(read.qual.size()),
                               "READS.QUAL", p);
        runtime::configure_mem(&sums[static_cast<size_t>(p)], 4, 1,
                               "QSUM", p);
        runtime::run_genesis(p);
    }
    // The host is free to do useful work here (the non-blocking API's
    // whole point); we just poll.
    for (int p = 0; p < pipelines; ++p) {
        while (!runtime::check_genesis(p)) {
            // Poll politely: the simulated accelerator runs on a
            // worker thread that needs the core too.
            std::this_thread::yield();
        }
        runtime::wait_genesis(p);
        runtime::genesis_flush(p);
    }

    // 4. Report and cross-check against the host computation.
    bool all_ok = true;
    for (size_t i = 0; i < workload.reads.size(); ++i) {
        int64_t expected = workload.reads[i].qualSum();
        std::printf("read %-12s qual sum (hw) = %6u  (sw) = %6lld  %s\n",
                    workload.reads[i].name.c_str(), sums[i],
                    static_cast<long long>(expected),
                    sums[i] == expected ? "ok" : "MISMATCH");
        all_ok &= sums[i] == expected;
        auto timing = runtime::genesis_timing(static_cast<int>(i));
        std::printf("  pipeline %zu timing: %s\n", i,
                    timing.str().c_str());
    }
    runtime::genesis_unload_image();
    std::printf(all_ok ? "quickstart passed\n" : "quickstart FAILED\n");
    return all_ok ? 0 : 1;
}

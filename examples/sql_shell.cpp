/**
 * @file
 * A miniature SQL shell over the genomic tables (the bioinformatician's
 * view the paper advocates): a synthetic READS/REF database is loaded
 * into the catalog, and extended-SQL statements typed on stdin run on
 * the software engine. Ends on EOF or "quit".
 *
 * Examples to try:
 *   SELECT COUNT(*) FROM READS;
 *   SELECT CHR, COUNT(*) AS N FROM READS GROUP BY CHR;
 *   SELECT POS, ENDPOS FROM READS WHERE CHR == 1 LIMIT 5;
 *   EXPLAIN SELECT COUNT(*) FROM READS WHERE POS > 1000;
 *
 * Build and run:  ./build/examples/sql_shell  (pipe a script to stdin
 * for non-interactive use)
 */

#include <cstdio>
#include <iostream>
#include <string>

#include "base/logging.h"
#include "engine/executor.h"
#include "genome/read_simulator.h"
#include "sql/parser.h"
#include "sql/planner.h"
#include "table/genomic_schema.h"

using namespace genesis;

int
main()
{
    // Build the database.
    genome::SyntheticGenomeConfig gcfg;
    gcfg.numChromosomes = 2;
    gcfg.firstChromosomeLength = 100'000;
    auto genome = genome::ReferenceGenome::synthesize(gcfg);
    genome::ReadSimulatorConfig rcfg;
    rcfg.numPairs = 500;
    auto reads = genome::ReadSimulator(genome, rcfg).simulate().reads;

    engine::Catalog catalog;
    catalog.put("READS", table::buildReadsTable(reads));
    catalog.put("REF", table::buildRefTable(genome, 50'000));
    engine::Executor executor(catalog);

    std::printf("Genesis SQL shell. Tables: READS (%zu rows), REF. "
                "\"quit\" to exit.\n",
                reads.size());

    std::string line, statement;
    while (true) {
        std::printf(statement.empty() ? "genesis> " : "      -> ");
        std::fflush(stdout);
        if (!std::getline(std::cin, line))
            break;
        if (line == "quit" || line == "exit")
            break;
        statement += line;
        statement += '\n';
        // Statements end with a semicolon (or EXPLAIN one-liners).
        if (line.find(';') == std::string::npos)
            continue;

        try {
            if (statement.rfind("EXPLAIN", 0) == 0 ||
                statement.rfind("explain", 0) == 0) {
                auto body = statement.substr(7);
                std::printf("%s",
                            sql::explainScript(sql::parseScript(body))
                                .c_str());
            } else {
                auto result = executor.run(statement);
                if (result)
                    std::printf("%s", result->str(20).c_str());
                else
                    std::printf("ok\n");
            }
        } catch (const FatalError &e) {
            std::printf("error: %s\n", e.what());
        } catch (const PanicError &e) {
            std::printf("internal error: %s\n", e.what());
        }
        statement.clear();
    }
    std::printf("\nbye\n");
    return 0;
}

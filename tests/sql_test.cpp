/**
 * @file
 * Unit tests for src/sql: lexer, parser (including the full Figure-4
 * script), logical planning, and script validation.
 */

#include <gtest/gtest.h>

#include "base/logging.h"
#include "core/example_accel.h"
#include "sql/lexer.h"
#include "sql/parser.h"
#include "sql/plan.h"
#include "sql/planner.h"

namespace genesis::sql {
namespace {

TEST(Lexer, BasicTokens)
{
    auto tokens = tokenize("SELECT a.b, 42 FROM t WHERE x == 'hi'");
    ASSERT_GE(tokens.size(), 12u);
    EXPECT_TRUE(tokens[0].isKeyword("SELECT"));
    EXPECT_EQ(tokens[1].kind, TokenKind::Identifier);
    EXPECT_EQ(tokens[2].kind, TokenKind::Dot);
    EXPECT_EQ(tokens[5].kind, TokenKind::Integer);
    EXPECT_EQ(tokens[5].intValue, 42);
    EXPECT_EQ(tokens.back().kind, TokenKind::End);
}

TEST(Lexer, VariablesAndTempNames)
{
    auto tokens = tokenize("@rlen #AlignedRead");
    EXPECT_EQ(tokens[0].kind, TokenKind::Variable);
    EXPECT_EQ(tokens[0].text, "rlen");
    EXPECT_EQ(tokens[1].kind, TokenKind::TempName);
    EXPECT_EQ(tokens[1].text, "AlignedRead");
}

TEST(Lexer, Comments)
{
    auto tokens = tokenize("a -- line comment\n/* block\ncomment */ b");
    ASSERT_EQ(tokens.size(), 3u); // a, b, End
    EXPECT_EQ(tokens[0].text, "a");
    EXPECT_EQ(tokens[1].text, "b");
}

TEST(Lexer, ComparisonOperators)
{
    auto tokens = tokenize("== != <> <= >= < > =");
    EXPECT_EQ(tokens[0].kind, TokenKind::EqEq);
    EXPECT_EQ(tokens[1].kind, TokenKind::NotEq);
    EXPECT_EQ(tokens[2].kind, TokenKind::NotEq);
    EXPECT_EQ(tokens[3].kind, TokenKind::LessEq);
    EXPECT_EQ(tokens[4].kind, TokenKind::GreaterEq);
    EXPECT_EQ(tokens[5].kind, TokenKind::Less);
    EXPECT_EQ(tokens[6].kind, TokenKind::Greater);
    EXPECT_EQ(tokens[7].kind, TokenKind::Eq);
}

TEST(Lexer, RejectsBadInput)
{
    EXPECT_THROW(tokenize("'unterminated"), FatalError);
    EXPECT_THROW(tokenize("a ? b"), FatalError);
    EXPECT_THROW(tokenize("/* open"), FatalError);
}

TEST(Parser, ExpressionPrecedence)
{
    auto e = parseExpression("1 + 2 * 3 == 7 AND NOT x");
    // ((1 + (2 * 3)) == 7) AND (NOT x)
    EXPECT_EQ(e->str(), "(((1 + (2 * 3)) == 7) AND (NOT x))");
}

TEST(Parser, UnaryMinusAndParens)
{
    auto e = parseExpression("-(a + 2)");
    EXPECT_EQ(e->str(), "(- (a + 2))");
}

TEST(Parser, FunctionCallsUppercased)
{
    auto e = parseExpression("sum(a == b)");
    EXPECT_EQ(e->kind, ExprKind::Call);
    EXPECT_EQ(e->name, "SUM");
}

TEST(Parser, SelectWithWhereGroupLimit)
{
    Script s = parseScript(
        "SELECT a, COUNT(*) AS n FROM t WHERE a > 3 GROUP BY a "
        "LIMIT 2, 5");
    ASSERT_EQ(s.statements.size(), 1u);
    const auto &sel = *s.statements[0]->select;
    EXPECT_EQ(sel.items.size(), 2u);
    EXPECT_EQ(sel.items[1].alias, "n");
    ASSERT_TRUE(sel.where != nullptr);
    EXPECT_EQ(sel.groupBy.size(), 1u);
    ASSERT_TRUE(sel.limit.offset != nullptr);
    ASSERT_TRUE(sel.limit.count != nullptr);
}

TEST(Parser, JoinVariants)
{
    Script s = parseScript(
        "SELECT * FROM a INNER JOIN b ON a.k = b.k "
        "LEFT JOIN c ON a.k = c.k");
    const auto &sel = *s.statements[0]->select;
    ASSERT_EQ(sel.joins.size(), 2u);
    EXPECT_EQ(sel.joins[0].type, JoinType::Inner);
    EXPECT_EQ(sel.joins[1].type, JoinType::Left);
    EXPECT_EQ(sel.joins[0].onLeft->str(), "a.k");
}

TEST(Parser, JoinRequiresEquality)
{
    EXPECT_THROW(
        parseScript("SELECT * FROM a INNER JOIN b ON a.k < b.k"),
        FatalError);
}

TEST(Parser, PartitionClause)
{
    Script s = parseScript("SELECT * FROM READS PARTITION (@P)");
    const auto &sel = *s.statements[0]->select;
    ASSERT_TRUE(sel.from.partition != nullptr);
    EXPECT_EQ(sel.from.partition->str(), "@P");
}

TEST(Parser, CreateInsertDeclareSetFor)
{
    Script s = parseScript(R"(
        DECLARE @x int;
        SET @x = 3;
        CREATE TABLE t2 AS SELECT a FROM t1;
        FOR Row IN t2:
            INSERT INTO out SELECT Row.a FROM t2;
        END LOOP;
    )");
    ASSERT_EQ(s.statements.size(), 4u);
    EXPECT_EQ(s.statements[0]->kind, StatementKind::Declare);
    EXPECT_EQ(s.statements[1]->kind, StatementKind::SetVar);
    EXPECT_EQ(s.statements[2]->kind, StatementKind::CreateTableAs);
    EXPECT_EQ(s.statements[3]->kind, StatementKind::ForLoop);
    EXPECT_EQ(s.statements[3]->loopVar, "Row");
    EXPECT_EQ(s.statements[3]->body.size(), 1u);
}

TEST(Parser, ExplodeForms)
{
    Script s = parseScript(
        "CREATE TABLE e AS PosExplode (t.SEQ, t.POS) FROM t;"
        "CREATE TABLE r AS ReadExplode (x.POS, x.CIGAR, x.SEQ, x.QUAL) "
        "FROM x");
    EXPECT_EQ(s.statements[0]->select->kind, SelectKind::PosExplode);
    EXPECT_EQ(s.statements[1]->select->kind, SelectKind::ReadExplode);
    EXPECT_EQ(s.statements[1]->select->items.size(), 4u);
}

TEST(Parser, ExplodeArityChecked)
{
    EXPECT_THROW(parseScript("SELECT 1 FROM t; "
                             "CREATE TABLE e AS PosExplode (a) FROM t"),
                 FatalError);
}

TEST(Parser, ExecStatement)
{
    Script s = parseScript("EXEC MDGen Input1 = joined INTO mdout");
    const auto &stmt = *s.statements[0];
    EXPECT_EQ(stmt.kind, StatementKind::Exec);
    EXPECT_EQ(stmt.moduleName, "MDGen");
    ASSERT_EQ(stmt.execInputs.size(), 1u);
    EXPECT_EQ(stmt.execInputs[0].second, "joined");
    EXPECT_EQ(stmt.target, "mdout");
}

TEST(Parser, Figure4ScriptParses)
{
    Script s = parseScript(core::matchCountQueryText());
    // I1 x2, I2, DECLARE, FOR.
    ASSERT_EQ(s.statements.size(), 5u);
    EXPECT_EQ(s.statements.back()->kind, StatementKind::ForLoop);
    // SET, CREATE #AlignedRead, CREATE #ReadAndRef, INSERT INTO Output.
    EXPECT_EQ(s.statements.back()->body.size(), 4u);
}

TEST(Plan, SelectLowersToProjectOverScan)
{
    Script s = parseScript("SELECT a, b FROM t WHERE a > 1");
    auto plan = planSelect(*s.statements[0]->select);
    EXPECT_EQ(plan->kind, PlanKind::Project);
    EXPECT_EQ(plan->children[0]->kind, PlanKind::Filter);
    EXPECT_EQ(plan->children[0]->children[0]->kind, PlanKind::Scan);
}

TEST(Plan, AggregateDetected)
{
    Script s = parseScript("SELECT SUM(a) FROM t");
    auto plan = planSelect(*s.statements[0]->select);
    EXPECT_EQ(plan->kind, PlanKind::Aggregate);
}

TEST(Plan, SelectStarIsBareScan)
{
    Script s = parseScript("SELECT * FROM t");
    auto plan = planSelect(*s.statements[0]->select);
    EXPECT_EQ(plan->kind, PlanKind::Scan);
}

TEST(Plan, JoinLeftDeep)
{
    Script s = parseScript(
        "SELECT * FROM a INNER JOIN b ON a.k = b.k "
        "INNER JOIN c ON a.k = c.k");
    auto plan = planSelect(*s.statements[0]->select);
    EXPECT_EQ(plan->kind, PlanKind::Join);
    EXPECT_EQ(plan->children[0]->kind, PlanKind::Join);
    EXPECT_EQ(plan->children[1]->kind, PlanKind::Scan);
}

TEST(Plan, LimitOnTop)
{
    Script s = parseScript("SELECT a FROM t LIMIT 5, 10");
    auto plan = planSelect(*s.statements[0]->select);
    EXPECT_EQ(plan->kind, PlanKind::Limit);
    EXPECT_EQ(plan->children[0]->kind, PlanKind::Project);
}

TEST(Plan, SubqueryInheritsAlias)
{
    Script s = parseScript(
        "SELECT * FROM x INNER JOIN (SELECT * FROM ref LIMIT 3) "
        "ON x.POS = ref.POS");
    auto plan = planSelect(*s.statements[0]->select);
    ASSERT_EQ(plan->kind, PlanKind::Join);
    EXPECT_EQ(plan->children[1]->kind, PlanKind::Limit);
}

TEST(Plan, StrRendersTree)
{
    Script s = parseScript("SELECT SUM(a) FROM t WHERE b == 1");
    auto plan = planSelect(*s.statements[0]->select);
    std::string text = plan->str();
    EXPECT_NE(text.find("Aggregate"), std::string::npos);
    EXPECT_NE(text.find("Filter"), std::string::npos);
    EXPECT_NE(text.find("Scan(t)"), std::string::npos);
}

TEST(Planner, ExplainScriptMentionsAllStatements)
{
    std::string text = explainScript(parseScript(
        core::matchCountQueryText()));
    EXPECT_NE(text.find("CREATE TABLE ReadPartition"),
              std::string::npos);
    EXPECT_NE(text.find("FOR SingleRead IN ReadPartition"),
              std::string::npos);
    EXPECT_NE(text.find("ReadExplode"), std::string::npos);
    EXPECT_NE(text.find("InnerJoin"), std::string::npos);
}

TEST(Planner, ExplainRendersOptimizedPlanByDefault)
{
    Script s = parseScript(
        "SELECT * FROM t INNER JOIN u ON t.k = u.k WHERE t.a == 1");
    std::string text = explainScript(s);
    // The equi-join is upgraded to hash strategy and the filter is
    // pushed below the join (join line precedes the filter line).
    EXPECT_NE(text.find("[hash"), std::string::npos) << text;
    size_t join_at = text.find("InnerJoin");
    size_t filter_at = text.find("Filter");
    ASSERT_NE(join_at, std::string::npos) << text;
    ASSERT_NE(filter_at, std::string::npos) << text;
    EXPECT_LT(join_at, filter_at) << text;
}

TEST(Planner, ExplainNoOptRendersNaivePlan)
{
    Script s = parseScript(
        "SELECT * FROM t INNER JOIN u ON t.k = u.k WHERE t.a == 1");
    ExplainOptions opts;
    opts.optimize = false;
    std::string text = explainScript(s, opts);
    // Escape hatch: the plan is rendered exactly as planned — filter on
    // top of a nested-loop join.
    EXPECT_EQ(text.find("[hash"), std::string::npos) << text;
    size_t join_at = text.find("InnerJoin");
    size_t filter_at = text.find("Filter");
    ASSERT_NE(join_at, std::string::npos) << text;
    ASSERT_NE(filter_at, std::string::npos) << text;
    EXPECT_LT(filter_at, join_at) << text;
}

TEST(Planner, ExplainRuleMaskDisablesSingleRewrite)
{
    Script s = parseScript(
        "SELECT * FROM t INNER JOIN u ON t.k = u.k WHERE t.a == 1");
    ExplainOptions opts;
    opts.ruleMask = kAllRules & ~kRuleHashJoin;
    std::string text = explainScript(s, opts);
    EXPECT_EQ(text.find("[hash"), std::string::npos) << text;
    // Pushdown still fires: the join line precedes the filter line.
    EXPECT_LT(text.find("InnerJoin"), text.find("Filter")) << text;
}

TEST(Planner, ExplainShowBothRendersBeforeAndAfter)
{
    Script s = parseScript(
        "SELECT * FROM t INNER JOIN u ON t.k = u.k WHERE t.a == 1");
    ExplainOptions opts;
    opts.showBoth = true;
    std::string text = explainScript(s, opts);
    size_t naive_at = text.find("naive:");
    size_t opt_at = text.find("optimized:");
    ASSERT_NE(naive_at, std::string::npos) << text;
    ASSERT_NE(opt_at, std::string::npos) << text;
    EXPECT_LT(naive_at, opt_at) << text;
    // The hash annotation only appears in the optimized rendering.
    size_t hash_at = text.find("[hash");
    ASSERT_NE(hash_at, std::string::npos) << text;
    EXPECT_GT(hash_at, opt_at) << text;
}

TEST(Planner, ExplainForLoopBodyIsOptimized)
{
    Script s = parseScript(
        "FOR Row IN t:\n"
        "    INSERT INTO out SELECT * FROM t INNER JOIN u "
        "ON t.k = u.k;\n"
        "END LOOP");
    std::string text = explainScript(s);
    EXPECT_NE(text.find("[hash"), std::string::npos) << text;
}

TEST(Planner, ValidateFlagsUndeclaredVariables)
{
    auto problems = validateScript(parseScript("SET @x = 1"));
    ASSERT_EQ(problems.size(), 1u);
    EXPECT_NE(problems[0].find("@x"), std::string::npos);
}

TEST(Planner, ValidateFlagsEmptyForBody)
{
    auto problems =
        validateScript(parseScript("FOR r IN t: END LOOP"));
    ASSERT_EQ(problems.size(), 1u);
}

TEST(Planner, ValidateCleanScript)
{
    auto problems = validateScript(parseScript(
        "DECLARE @x int; SET @x = 2; SELECT a FROM t WHERE a == @x"));
    EXPECT_TRUE(problems.empty());
}

} // namespace
} // namespace genesis::sql

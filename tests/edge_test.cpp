/**
 * @file
 * Edge-case coverage: scalar SQL builtins, arithmetic corner cases,
 * heterogeneous pipelines sharing one FPGA image (the Figure 8 claim
 * that "different hardware pipelines targeting different operations
 * work together"), and runtime configuration variants.
 */

#include <gtest/gtest.h>

#include "base/logging.h"
#include "engine/executor.h"
#include "modules/filter.h"
#include "modules/memory_reader.h"
#include "modules/memory_writer.h"
#include "modules/reducer.h"
#include "runtime/api.h"
#include "sim_test_utils.h"
#include "sql/parser.h"

namespace genesis {
namespace {

using table::DataType;
using table::Schema;
using table::Table;
using table::Value;

class EngineEdge : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        Table t("t", Schema{{"A", DataType::Int64},
                            {"S", DataType::String},
                            {"ARR", DataType::Array8}});
        t.appendRow({Value(-4), Value("abc"), Value(table::Blob{7, 8})});
        t.appendRow({Value(0), Value(""), Value(table::Blob{})});
        catalog_.put("t", std::move(t));
    }

    Value
    scalar(const std::string &select)
    {
        engine::Executor executor(catalog_);
        auto result = executor.run(select);
        return result->at(0, 0);
    }

    engine::Catalog catalog_;
};

TEST_F(EngineEdge, AbsLenCoalesceIsNullElem)
{
    EXPECT_EQ(scalar("SELECT ABS(A) FROM t LIMIT 1").asInt(), 4);
    EXPECT_EQ(scalar("SELECT LEN(S) FROM t LIMIT 1").asInt(), 3);
    EXPECT_EQ(scalar("SELECT LEN(ARR) FROM t LIMIT 1").asInt(), 2);
    EXPECT_EQ(scalar("SELECT COALESCE(A, 9) FROM t LIMIT 1").asInt(),
              -4);
    EXPECT_EQ(scalar("SELECT ISNULL(A) FROM t LIMIT 1").asInt(), 0);
    EXPECT_EQ(scalar("SELECT ELEM(ARR, 1) FROM t LIMIT 1").asInt(), 8);
    // Out-of-range element reads are NULL, not errors.
    EXPECT_TRUE(scalar("SELECT ELEM(ARR, 5) FROM t LIMIT 1").isNull());
}

TEST_F(EngineEdge, DivisionAndModuloByZeroFatal)
{
    engine::Executor executor(catalog_);
    EXPECT_THROW(executor.run("SELECT 1 / A FROM t LIMIT 1, 1"),
                 FatalError);
    EXPECT_THROW(executor.run("SELECT 1 % A FROM t LIMIT 1, 1"),
                 FatalError);
}

TEST_F(EngineEdge, NullPropagationThroughArithmetic)
{
    // NULL + 1 is NULL; comparisons with NULL filter nothing in.
    engine::Executor executor(catalog_);
    auto r = executor.run(
        "SELECT COUNT(*) FROM t WHERE COALESCE(ELEM(ARR, 9), 0) + 1 "
        "== 1");
    EXPECT_EQ(r->at(0, 0).asInt(), 2);
    auto n = executor.run("SELECT COUNT(ELEM(ARR, 9)) FROM t");
    EXPECT_EQ(n->at(0, 0).asInt(), 0); // COUNT skips NULLs
}

TEST_F(EngineEdge, UnknownFunctionFatal)
{
    engine::Executor executor(catalog_);
    EXPECT_THROW(executor.run("SELECT FROB(A) FROM t"), FatalError);
}

TEST_F(EngineEdge, InsertWidthMismatchFatal)
{
    engine::Executor executor(catalog_);
    executor.run("CREATE TABLE out AS SELECT A FROM t");
    EXPECT_THROW(executor.run("INSERT INTO out SELECT A, S FROM t"),
                 FatalError);
}

TEST_F(EngineEdge, NegativeLimitFatal)
{
    engine::Executor executor(catalog_);
    EXPECT_THROW(executor.run("SELECT A FROM t LIMIT 0 - 1"),
                 FatalError);
}

// --- Heterogeneous pipelines in one image ---------------------------------

TEST(Heterogeneous, DifferentPipelinesShareOneImage)
{
    // Pipeline 0: per-row sum of an array column.
    // Pipeline 1: drop-filter keeping values above a threshold.
    // Both run concurrently in one simulator, sharing the memory system
    // through their local arbiters (Figure 8's mixed configuration).
    runtime::AcceleratorSession session{runtime::RuntimeConfig{}};
    auto &simulator = session.sim();

    modules::ColumnBuffer *qual = session.configureMem(
        "QUAL", {10, 20, 30, 40, 50, 60}, {3, 3}, 1);
    modules::ColumnBuffer *vals = session.configureMem(
        "VALS", {5, 25, 15, 35}, {1, 1, 1, 1}, 4);
    modules::ColumnBuffer *sums = session.configureOutput("SUMS", 4);
    modules::ColumnBuffer *big = session.configureOutput("BIG", 4);

    {
        auto *q = simulator.makeQueue("p0.in");
        auto *s = simulator.makeQueue("p0.sum");
        modules::MemoryReaderConfig rd;
        rd.emitBoundaries = true;
        simulator.make<modules::MemoryReader>(
            "p0.rd", qual, simulator.memory().makePort(0), q, rd);
        modules::ReducerConfig red;
        red.op = modules::ReduceOp::Sum;
        red.granularity = modules::ReduceGranularity::PerItem;
        simulator.make<modules::Reducer>("p0.red", q, s, red);
        simulator.make<modules::MemoryWriter>(
            "p0.wr", sums, simulator.memory().makePort(0), s,
            modules::MemoryWriterConfig{});
    }
    {
        auto *q = simulator.makeQueue("p1.in");
        auto *f = simulator.makeQueue("p1.filtered");
        simulator.make<modules::MemoryReader>(
            "p1.rd", vals, simulator.memory().makePort(1), q,
            modules::MemoryReaderConfig{});
        modules::FilterConfig flt;
        flt.lhs = modules::FilterOperand::field(0);
        flt.op = modules::CompareOp::Gt;
        flt.rhs = modules::FilterOperand::constant_(20);
        simulator.make<modules::Filter>("p1.flt", q, f, flt);
        simulator.make<modules::MemoryWriter>(
            "p1.wr", big, simulator.memory().makePort(1), f,
            modules::MemoryWriterConfig{});
    }

    session.start();
    session.wait();
    const auto *sums_out = session.flush("SUMS");
    const auto *big_out = session.flush("BIG");
    EXPECT_EQ(sums_out->elements, (std::vector<int64_t>{60, 150}));
    EXPECT_EQ(big_out->elements, (std::vector<int64_t>{25, 35}));
}

// --- Runtime configuration variants -----------------------------------------

TEST(RuntimeConfig, FasterDmaShrinksCommunicationTime)
{
    auto run_with = [](const runtime::DmaConfig &dma) {
        runtime::RuntimeConfig cfg;
        cfg.dma = dma;
        runtime::AcceleratorSession session(cfg);
        session.configureMem("X", std::vector<int64_t>(100'000, 1),
                             std::vector<uint32_t>(100'000, 1), 4);
        return session.timing().dmaSeconds;
    };
    EXPECT_LT(run_with(runtime::DmaConfig::pcie4()),
              run_with(runtime::DmaConfig::pcie3()));
}

TEST(RuntimeConfig, SlowerClockStretchesAcceleratorTime)
{
    runtime::RuntimeConfig fast;
    fast.clockHz = 250e6;
    runtime::RuntimeConfig slow;
    slow.clockHz = 125e6;
    runtime::AcceleratorSession a(fast), b(slow);
    EXPECT_DOUBLE_EQ(b.secondsForCycles(1000),
                     2.0 * a.secondsForCycles(1000));
}

TEST(RuntimeConfig, InvalidClockFatal)
{
    runtime::RuntimeConfig cfg;
    cfg.clockHz = 0;
    EXPECT_THROW(runtime::AcceleratorSession{cfg}, FatalError);
}

} // namespace
} // namespace genesis

/**
 * @file
 * Differential golden-model battery: every accelerator pipeline must
 * agree exactly with its software (src/gatk) implementation on seeded
 * read_simulator inputs across several workload sizes and seeds, with
 * the pipeline/batch geometry varied by size. This widens the seed
 * coverage of accel_test.cpp into a size x seed grid, so partition
 * boundaries, batch counts and SPM window positions all shift between
 * cases while the outputs must stay bit-identical.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <tuple>

#include "core/bqsr_accel.h"
#include "core/markdup_accel.h"
#include "core/metadata_accel.h"
#include "gatk/bqsr.h"
#include "gatk/markdup.h"
#include "gatk/metadata.h"
#include "sim_test_utils.h"

namespace genesis::core {
namespace {

/** (read pairs, seed) — the grid axes. */
using DiffParam = std::tuple<int64_t, uint64_t>;

class DifferentialGoldenModel
    : public ::testing::TestWithParam<DiffParam>
{
  protected:
    void
    SetUp() override
    {
        pairs_ = std::get<0>(GetParam());
        seed_ = std::get<1>(GetParam());
        // Chromosome length scales with the workload so coverage stays
        // comparable; two chromosomes exercise reference partitioning.
        workload_ = test::makeSmallWorkload(seed_, pairs_,
                                            40'000 + 80 * pairs_, 2);
    }

    /** Vary the hardware geometry with the workload so batch splits
     *  differ between grid points. */
    int
    pipelinesForSize() const
    {
        return pairs_ < 200 ? 1 : pairs_ < 500 ? 3 : 5;
    }

    int64_t pairs_ = 0;
    uint64_t seed_ = 0;
    test::SmallWorkload workload_;
};

TEST_P(DifferentialGoldenModel, MarkDupMatchesSoftwareExactly)
{
    auto hw_reads = workload_.reads.reads;
    auto sw_reads = workload_.reads.reads;

    MarkDupAccelConfig cfg;
    cfg.numPipelines = pipelinesForSize();
    auto hw = MarkDupAccelerator(cfg).run(hw_reads);

    auto sw_sums = gatk::computeQualSums(sw_reads);
    auto sw_stats = gatk::markDuplicatesWithQualSums(sw_reads, sw_sums);

    EXPECT_EQ(hw.qualSums, sw_sums);
    EXPECT_EQ(hw.stats.duplicatesMarked, sw_stats.duplicatesMarked);
    EXPECT_EQ(hw.stats.duplicateSets, sw_stats.duplicateSets);
    ASSERT_EQ(hw_reads.size(), sw_reads.size());
    for (size_t i = 0; i < hw_reads.size(); ++i) {
        ASSERT_EQ(hw_reads[i].isDuplicate(), sw_reads[i].isDuplicate())
            << "duplicate flag of read " << i << " ("
            << hw_reads[i].name << "), pairs=" << pairs_
            << " seed=" << seed_;
    }
}

TEST_P(DifferentialGoldenModel, MetadataTagsMatchSoftwareExactly)
{
    auto hw_reads = workload_.reads.reads;
    auto sw_reads = workload_.reads.reads;

    MetadataAccelConfig cfg;
    cfg.numPipelines = pipelinesForSize();
    cfg.psize = 8'192;
    auto result = MetadataAccelerator(cfg).run(hw_reads,
                                               workload_.genome);
    EXPECT_EQ(result.readsTagged, static_cast<int64_t>(hw_reads.size()));

    gatk::setNmMdUqTags(sw_reads, workload_.genome);
    ASSERT_EQ(hw_reads.size(), sw_reads.size());
    for (size_t i = 0; i < hw_reads.size(); ++i) {
        ASSERT_EQ(hw_reads[i].nmTag, sw_reads[i].nmTag)
            << "NM of read " << i << ", pairs=" << pairs_
            << " seed=" << seed_;
        ASSERT_EQ(hw_reads[i].mdTag, sw_reads[i].mdTag)
            << "MD of read " << i;
        ASSERT_EQ(hw_reads[i].uqTag, sw_reads[i].uqTag)
            << "UQ of read " << i;
    }
}

TEST_P(DifferentialGoldenModel, BqsrTableMatchesSoftwareExactly)
{
    BqsrAccelConfig cfg;
    cfg.numPipelines = pipelinesForSize();
    cfg.psize = 8'192;
    auto hw = BqsrAccelerator(cfg).run(workload_.reads.reads,
                                       workload_.genome);

    auto sw = gatk::buildCovariateTable(workload_.reads.reads,
                                        workload_.genome, cfg.bqsr);
    EXPECT_EQ(hw.table.totalObservations(), sw.totalObservations());
    EXPECT_EQ(hw.table.totalErrors(), sw.totalErrors());
    EXPECT_TRUE(hw.table == sw)
        << "covariate tables differ, pairs=" << pairs_
        << " seed=" << seed_;
}

TEST_P(DifferentialGoldenModel, SleepSchedulingIsCycleExact)
{
    // The active-set (sleep/wake) scheduler is a pure host-side
    // optimisation: simulated cycle counts and every merged simulator
    // statistic must be bit-identical with it disabled
    // (GENESIS_SIM_NO_SLEEP=1), and with the idle-cycle fast-forward
    // disabled on top, across the whole size x seed grid.
    auto run_once = [&] {
        auto reads = workload_.reads.reads;
        MarkDupAccelConfig cfg;
        cfg.numPipelines = pipelinesForSize();
        auto r = MarkDupAccelerator(cfg).run(reads);
        return std::make_pair(r.info.totalCycles,
                              r.info.stats.counters());
    };
    auto base = run_once();
    EXPECT_GT(base.first, 0u);
    {
        ::setenv("GENESIS_SIM_NO_SLEEP", "1", 1);
        auto no_sleep = run_once();
        ::unsetenv("GENESIS_SIM_NO_SLEEP");
        EXPECT_EQ(base.first, no_sleep.first)
            << "cycle drift with sleep disabled, pairs=" << pairs_
            << " seed=" << seed_;
        EXPECT_EQ(base.second, no_sleep.second);
    }
    {
        ::setenv("GENESIS_SIM_NO_SLEEP", "1", 1);
        ::setenv("GENESIS_SIM_NO_FASTFORWARD", "1", 1);
        auto plain = run_once();
        ::unsetenv("GENESIS_SIM_NO_FASTFORWARD");
        ::unsetenv("GENESIS_SIM_NO_SLEEP");
        EXPECT_EQ(base.first, plain.first)
            << "cycle drift vs tick-everything, pairs=" << pairs_
            << " seed=" << seed_;
        EXPECT_EQ(base.second, plain.second);
    }
}

INSTANTIATE_TEST_SUITE_P(
    SizeSeedGrid, DifferentialGoldenModel,
    ::testing::Combine(::testing::Values<int64_t>(60, 300, 700),
                       ::testing::Values<uint64_t>(5u, 17u)),
    [](const ::testing::TestParamInfo<DiffParam> &info) {
        return "pairs" + std::to_string(std::get<0>(info.param)) +
            "_seed" + std::to_string(std::get<1>(info.param));
    });

} // namespace
} // namespace genesis::core

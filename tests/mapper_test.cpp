/**
 * @file
 * Tests for the automated logical-plan -> hardware-pipeline mapper: the
 * Figure-4 script fuses into one plan, lowers onto hardware modules, and
 * the resulting simulated pipeline reproduces the SQL engine's answer.
 */

#include <gtest/gtest.h>

#include "base/logging.h"
#include "core/accel_common.h"
#include "core/example_accel.h"
#include "pipeline/mapper.h"
#include "sim_test_utils.h"
#include "sql/parser.h"
#include "table/partition.h"

namespace genesis::pipeline {
namespace {

TEST(Fusion, Figure4ScriptFusesToSinglePlan)
{
    sql::Script script = sql::parseScript(core::matchCountQueryText());
    sql::PlanPtr plan = fuseScriptToPlan(script);
    std::string text = plan->str();
    // The fused tree: Aggregate over Project over Join of ReadExplode
    // with the LIMIT-windowed reference.
    EXPECT_NE(text.find("Aggregate"), std::string::npos);
    EXPECT_NE(text.find("ReadExplode"), std::string::npos);
    EXPECT_NE(text.find("InnerJoin"), std::string::npos);
    EXPECT_NE(text.find("Scan(RelevantReference"), std::string::npos);
    // Temp-table scans were inlined away.
    EXPECT_EQ(text.find("Scan(AlignedRead"), std::string::npos);
    EXPECT_EQ(text.find("Scan(ReadAndRef"), std::string::npos);
}

TEST(Fusion, ScriptWithoutLoopFatal)
{
    EXPECT_THROW(fuseScriptToPlan(sql::parseScript("SELECT a FROM t")),
                 FatalError);
}

TEST(Fusion, LoopWithoutInsertFatal)
{
    EXPECT_THROW(
        fuseScriptToPlan(sql::parseScript(
            "FOR r IN t: SET @x = 1; END LOOP")),
        FatalError);
}

class MappedPipeline : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(MappedPipeline, ReproducesSqlEngineAnswer)
{
    auto w = test::makeSmallWorkload(GetParam(), 120, 20'000, 1);
    constexpr int64_t kPsize = 20'000;
    table::Partitioner partitioner(kPsize);
    auto partitions = partitioner.partitionReads(w.reads.reads);
    ASSERT_EQ(partitions.size(), 1u);
    const auto &part = partitions[0];

    // Software answer via the SQL engine.
    auto expected = core::matchCountsSqlEngine(
        w.reads.reads, part, w.genome, kPsize, 512);

    // Hardware answer via the automatically mapped pipeline.
    sql::Script script = sql::parseScript(core::matchCountQueryText());
    sql::PlanPtr plan = fuseScriptToPlan(script);

    runtime::AcceleratorSession session{runtime::RuntimeConfig{}};
    PipelineBuilder builder(session.sim(), 0);

    core::ReadColumns cols =
        core::ReadColumns::fromReads(w.reads.reads, part.readIndices);
    int64_t overlap = 512;
    core::RefColumns ref = core::RefColumns::fromGenome(
        w.genome, part.chr, part.windowStart, part.windowEnd, overlap);

    QueryBinding binding;
    binding.pos = session.configureMem(
        "READS.POS", std::move(cols.pos),
        core::ReadColumns::scalarLens(cols.numReads), 4);
    binding.endpos = session.configureMem(
        "READS.ENDPOS", std::move(cols.endpos),
        core::ReadColumns::scalarLens(cols.numReads), 4);
    binding.cigar = session.configureMem(
        "READS.CIGAR", std::move(cols.cigar), std::move(cols.cigarLens),
        2);
    binding.seq = session.configureMem(
        "READS.SEQ", std::move(cols.seq), std::move(cols.seqLens), 1);
    binding.refSeq = session.configureMem(
        "REFS.SEQ", std::move(ref.seq),
        core::ReadColumns::scalarLens(ref.seq.size()), 1);
    binding.windowStart = part.windowStart;
    binding.spmWords = static_cast<size_t>(kPsize + overlap);

    MappedQuery mapped =
        mapPlanToPipeline(builder, session, *plan, binding);
    EXPECT_NE(mapped.trace.find("ReadToBases"), std::string::npos);
    EXPECT_NE(mapped.trace.find("Joiner"), std::string::npos);
    EXPECT_NE(mapped.trace.find("Reducer"), std::string::npos);

    session.start();
    session.wait();
    const auto *out = session.flush(mapped.output->name);
    ASSERT_EQ(out->elements.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i)
        EXPECT_EQ(out->elements[i], expected[i]) << "read " << i;
}

INSTANTIATE_TEST_SUITE_P(Seeds, MappedPipeline,
                         ::testing::Values(2u, 13u));

TEST(Mapper, RejectsUnsupportedShapes)
{
    runtime::AcceleratorSession session{runtime::RuntimeConfig{}};
    PipelineBuilder builder(session.sim(), 0);
    QueryBinding binding;

    // A bare scan has no streaming lowering.
    sql::Script scan_script =
        sql::parseScript("FOR r IN t: INSERT INTO o SELECT COUNT(*) "
                         "FROM plain; END LOOP");
    auto plan = fuseScriptToPlan(scan_script);
    EXPECT_THROW(mapPlanToPipeline(builder, session, *plan, binding),
                 FatalError);
}

} // namespace
} // namespace genesis::pipeline

/**
 * @file
 * Tests for the pipeline construction layer (builder, census) plus
 * parameterized sweeps over the configurable hardware modules
 * (comparison operators, reduction operations, join modes) and
 * randomized round-trip properties (SAM, MD-tag generation via the
 * hardware module vs the software baseline).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "base/logging.h"
#include "gatk/metadata.h"
#include "genome/samlite.h"
#include "modules/filter.h"
#include "modules/joiner.h"
#include "modules/mdgen.h"
#include "modules/reducer.h"
#include "pipeline/builder.h"
#include "sim_test_utils.h"

namespace genesis {
namespace {

using sim::Flit;
using sim::makeBoundary;
using sim::makeFlit;

// --- PipelineBuilder / census ------------------------------------------

TEST(PipelineBuilder, ScopedNamesAndCensus)
{
    sim::Simulator simulator;
    pipeline::PipelineBuilder builder(simulator, 3);
    EXPECT_EQ(builder.scopedName("foo"), "p3.foo");

    auto *q1 = builder.queue("a");
    auto *q2 = builder.queue("b");
    EXPECT_EQ(q1->name(), "p3.a");
    builder.add<test::VectorSource>("MemoryReader", "src", q1,
                                    std::vector<Flit>{});
    builder.add<test::VectorSink>("MemoryWriter", "snk", q2);
    builder.scratchpad("spm", 128, 1, 2);

    const auto &census = builder.census();
    EXPECT_EQ(census.numPipelines, 1);
    EXPECT_EQ(census.queueCount, 2);
    EXPECT_EQ(census.moduleCounts.at("MemoryReader"), 1);
    EXPECT_EQ(census.spmBits, 128u * 2u);
}

TEST(PipelineBuilder, PortsLandInPipelineGroup)
{
    sim::Simulator simulator;
    pipeline::PipelineBuilder b0(simulator, 0);
    pipeline::PipelineBuilder b5(simulator, 5);
    EXPECT_NE(b0.port(), nullptr);
    EXPECT_NE(b5.port(), nullptr);
}

TEST(HardwareCensus, MergeAccumulates)
{
    pipeline::HardwareCensus a, b;
    a.moduleCounts["Filter"] = 2;
    a.queueCount = 3;
    a.spmBits = 100;
    a.numPipelines = 1;
    b = a;
    a.merge(b);
    EXPECT_EQ(a.moduleCounts["Filter"], 4);
    EXPECT_EQ(a.queueCount, 6);
    EXPECT_EQ(a.spmBits, 200u);
    EXPECT_EQ(a.numPipelines, 2);
}

// --- Parameterized module sweeps -----------------------------------------

/** All six comparison operators against the same operand pairs. */
class FilterOpSweep
    : public ::testing::TestWithParam<modules::CompareOp>
{
};

TEST_P(FilterOpSweep, MatchesReferenceSemantics)
{
    modules::FilterConfig cfg;
    cfg.lhs = modules::FilterOperand::field(0);
    cfg.op = GetParam();
    cfg.rhs = modules::FilterOperand::field(1);

    sim::Simulator simulator;
    auto *in = simulator.makeQueue("in");
    auto *out = simulator.makeQueue("out");
    modules::Filter filter("f", in, out, cfg);

    auto reference = [&](int64_t a, int64_t b) {
        switch (GetParam()) {
          case modules::CompareOp::Eq: return a == b;
          case modules::CompareOp::Ne: return a != b;
          case modules::CompareOp::Lt: return a < b;
          case modules::CompareOp::Le: return a <= b;
          case modules::CompareOp::Gt: return a > b;
          case modules::CompareOp::Ge: return a >= b;
        }
        return false;
    };
    for (int64_t a : {-5, 0, 3, 7}) {
        for (int64_t b : {-5, 0, 3, 7}) {
            EXPECT_EQ(filter.matches(makeFlit(0, a, b)),
                      reference(a, b))
                << "a=" << a << " b=" << b;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, FilterOpSweep,
    ::testing::Values(modules::CompareOp::Eq, modules::CompareOp::Ne,
                      modules::CompareOp::Lt, modules::CompareOp::Le,
                      modules::CompareOp::Gt, modules::CompareOp::Ge));

/** Reduction ops over a randomized stream vs a scalar fold. */
class ReducerOpSweep : public ::testing::TestWithParam<modules::ReduceOp>
{
};

TEST_P(ReducerOpSweep, MatchesScalarFold)
{
    Rng rng(99);
    std::vector<Flit> flits;
    int64_t expected_sum = 0, expected_min = 0, expected_max = 0;
    int64_t count = 0;
    for (int i = 0; i < 200; ++i) {
        int64_t v = rng.range(-1000, 1000);
        flits.push_back(makeFlit(0, v));
        if (count == 0) {
            expected_min = expected_max = v;
        } else {
            expected_min = std::min(expected_min, v);
            expected_max = std::max(expected_max, v);
        }
        expected_sum += v;
        ++count;
    }

    sim::Simulator simulator;
    auto *in = simulator.makeQueue("in");
    auto *out = simulator.makeQueue("out");
    simulator.make<test::VectorSource>("src", in, flits);
    modules::ReducerConfig cfg;
    cfg.op = GetParam();
    simulator.make<modules::Reducer>("red", in, out, cfg);
    auto *sink = simulator.make<test::VectorSink>("sink", out);
    simulator.run();

    ASSERT_EQ(sink->collected().size(), 1u);
    int64_t got = sink->collected()[0].fieldAt(0);
    switch (GetParam()) {
      case modules::ReduceOp::Sum: EXPECT_EQ(got, expected_sum); break;
      case modules::ReduceOp::Min: EXPECT_EQ(got, expected_min); break;
      case modules::ReduceOp::Max: EXPECT_EQ(got, expected_max); break;
      case modules::ReduceOp::Count: EXPECT_EQ(got, count); break;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, ReducerOpSweep,
    ::testing::Values(modules::ReduceOp::Sum, modules::ReduceOp::Min,
                      modules::ReduceOp::Max, modules::ReduceOp::Count));

/**
 * Randomized join property: the hardware joiner over sorted keyed items
 * agrees with a reference merge-join, for every join mode.
 */
class JoinModeSweep : public ::testing::TestWithParam<modules::JoinMode>
{
};

TEST_P(JoinModeSweep, AgreesWithReferenceMergeJoin)
{
    Rng rng(7);
    for (int trial = 0; trial < 20; ++trial) {
        // Build two sorted key sets within one item.
        auto make_side = [&](std::vector<int64_t> &keys) {
            int64_t k = 0;
            int n = static_cast<int>(rng.below(12));
            for (int i = 0; i < n; ++i) {
                k += 1 + static_cast<int64_t>(rng.below(3));
                keys.push_back(k);
            }
        };
        std::vector<int64_t> lkeys, rkeys;
        make_side(lkeys);
        make_side(rkeys);

        std::vector<Flit> left, right;
        for (int64_t k : lkeys)
            left.push_back(makeFlit(k, k * 10));
        left.push_back(makeBoundary());
        for (int64_t k : rkeys)
            right.push_back(makeFlit(k, k * 100));
        right.push_back(makeBoundary());

        sim::Simulator simulator;
        auto *lq = simulator.makeQueue("l");
        auto *rq = simulator.makeQueue("r");
        auto *oq = simulator.makeQueue("o");
        simulator.make<test::VectorSource>("ls", lq, left);
        simulator.make<test::VectorSource>("rs", rq, right);
        modules::JoinerConfig cfg;
        cfg.mode = GetParam();
        simulator.make<modules::Joiner>("j", lq, rq, oq, cfg);
        auto *sink = simulator.make<test::VectorSink>("sink", oq);
        simulator.run();

        // Reference: set-based join.
        std::set<int64_t> lset(lkeys.begin(), lkeys.end());
        std::set<int64_t> rset(rkeys.begin(), rkeys.end());
        std::vector<int64_t> expected_keys;
        for (int64_t k : lkeys) {
            bool matched = rset.count(k) > 0;
            if (matched || GetParam() != modules::JoinMode::Inner)
                expected_keys.push_back(k);
        }
        if (GetParam() == modules::JoinMode::Outer) {
            for (int64_t k : rkeys) {
                if (!lset.count(k))
                    expected_keys.push_back(k);
            }
        }

        auto data = sink->dataFlits();
        ASSERT_EQ(data.size(), expected_keys.size())
            << "trial " << trial;
        std::multiset<int64_t> got_keys;
        for (const auto &f : data)
            got_keys.insert(f.key);
        std::multiset<int64_t> want_keys(expected_keys.begin(),
                                         expected_keys.end());
        EXPECT_EQ(got_keys, want_keys) << "trial " << trial;
        for (const auto &f : data) {
            if (lset.count(f.key) && rset.count(f.key)) {
                EXPECT_EQ(f.fieldAt(0), f.key * 10);
                EXPECT_EQ(f.fieldAt(1), f.key * 100);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllModes, JoinModeSweep,
                         ::testing::Values(modules::JoinMode::Inner,
                                           modules::JoinMode::Left,
                                           modules::JoinMode::Outer));

// --- Randomized cross-validation properties -------------------------------

class RandomizedRoundTrips : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(RandomizedRoundTrips, SamLinesSurviveRoundTrip)
{
    auto w = test::makeSmallWorkload(GetParam(), 80);
    gatk::setNmMdUqTags(w.reads.reads, w.genome);
    for (const auto &read : w.reads.reads) {
        auto parsed = genome::samLineToRead(genome::readToSamLine(read));
        EXPECT_EQ(parsed.chr, read.chr);
        EXPECT_EQ(parsed.pos, read.pos);
        EXPECT_EQ(parsed.cigar, read.cigar);
        EXPECT_EQ(parsed.seq, read.seq);
        EXPECT_EQ(parsed.qual, read.qual);
        EXPECT_EQ(parsed.nmTag, read.nmTag);
        EXPECT_EQ(parsed.mdTag, read.mdTag);
        EXPECT_EQ(parsed.uqTag, read.uqTag);
    }
}

TEST_P(RandomizedRoundTrips, MdGenModuleMatchesSoftwareTags)
{
    // Drive the MDGen hardware module directly with exploded reads and
    // compare against the software MD strings, read by read.
    auto w = test::makeSmallWorkload(GetParam(), 60, 30'000, 1);
    const auto &chrom = w.genome.chromosome(1);

    std::vector<Flit> joined;
    std::vector<std::string> expected;
    for (const auto &read : w.reads.reads) {
        expected.push_back(
            gatk::computeMetadata(read, w.genome).md);
        for (const auto &b : genome::explodeRead(
                 read.pos, read.cigar, read.seq, read.qual)) {
            Flit f;
            f.key = b.isInsertion() ? Flit::kIns : b.refPos;
            f.pushField(b.isDeletion() ? Flit::kDel : b.readBase);
            f.pushField(b.isDeletion() ? Flit::kDel : b.qual);
            f.pushField(0);
            f.pushField(b.isInsertion()
                        ? Flit::kNull
                        : chrom.seq[static_cast<size_t>(b.refPos)]);
            joined.push_back(f);
        }
        joined.push_back(makeBoundary());
    }

    sim::Simulator simulator;
    auto *in = simulator.makeQueue("in");
    auto *out = simulator.makeQueue("out");
    simulator.make<test::VectorSource>("src", in, joined);
    simulator.make<modules::MdGen>("md", in, out);
    auto *sink = simulator.make<test::VectorSink>("sink", out);
    simulator.run();

    std::vector<std::string> got;
    std::string current;
    for (const auto &f : sink->collected()) {
        if (sim::isBoundary(f)) {
            got.push_back(current);
            current.clear();
        } else {
            current.push_back(static_cast<char>(f.key));
        }
    }
    ASSERT_EQ(got.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(got[i], expected[i])
            << "read " << i << " (" << w.reads.reads[i].name << ")";
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedRoundTrips,
                         ::testing::Values(4u, 19u, 33u));

// --- Memory fairness -------------------------------------------------------

TEST(MemoryFairness, TwoPortsShareOneChannelEvenly)
{
    sim::MemoryConfig cfg;
    cfg.numChannels = 1;
    cfg.bytesPerCyclePerChannel = 16;
    cfg.latencyCycles = 4;
    sim::MemorySystem mem(cfg);
    auto *a = mem.makePort(0);
    auto *b = mem.makePort(1);

    uint64_t done_a = 0, done_b = 0;
    uint64_t issued_a = 0, issued_b = 0;
    for (int cycle = 0; cycle < 4000; ++cycle) {
        while (issued_a < 1'000'000 && a->canIssue()) {
            a->issue(issued_a, 64, false);
            issued_a += 64;
        }
        while (issued_b < 1'000'000 && b->canIssue()) {
            b->issue(issued_b + 64, 64, false);
            issued_b += 64;
        }
        mem.tick();
        done_a += a->takeCompletedReadBytes();
        done_b += b->takeCompletedReadBytes();
    }
    ASSERT_GT(done_a, 0u);
    ASSERT_GT(done_b, 0u);
    double ratio = static_cast<double>(done_a) /
        static_cast<double>(done_b);
    EXPECT_NEAR(ratio, 1.0, 0.1);
}

} // namespace
} // namespace genesis

/**
 * @file
 * Plan-equivalence differential battery for the query optimizer and
 * the vectorized executor.
 *
 * A seeded generator produces 2-4-table join queries with mixed
 * predicates over a genomic star schema; every query runs through the
 * four executor configurations {optimizer off/on} x {vectorized
 * off/on} and the result tables must be bit-identical (schema, row
 * order, every cell) across a size x seed grid, like
 * differential_test.cpp does for the accelerator pipelines. Any rewrite
 * that reorders or corrupts rows fails here with the offending query
 * text attached.
 */

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "base/logging.h"
#include "base/rng.h"
#include "engine/executor.h"
#include "table/table.h"

namespace genesis::engine {
namespace {

using table::DataType;
using table::Schema;
using table::Table;
using table::Value;

/** (base table rows, seed) — the grid axes. */
using DiffParam = std::tuple<int64_t, uint64_t>;

/** READS -> SAMPLES -> COHORTS star plus a POS-keyed VARIANTS side. */
Catalog
makeGenomicCatalog(int64_t rows, uint64_t seed)
{
    Rng rng(seed);
    const int64_t samples = std::max<int64_t>(4, rows / 16);
    const int64_t cohorts = 8;
    const int64_t span = 4 * rows;

    Catalog cat;
    {
        Schema s;
        s.addField("ID", DataType::Int64);
        s.addField("SAMPLE_ID", DataType::Int64);
        s.addField("POS", DataType::Int64);
        s.addField("MAPQ", DataType::Int64);
        s.addField("FLAGS", DataType::Int64);
        Table t("READS", s);
        for (int64_t i = 0; i < rows; ++i) {
            // ~5% NULL MAPQ rows exercise NULL join/filter semantics.
            Value mapq = rng.below(20) == 0
                ? Value()
                : Value(static_cast<int64_t>(rng.below(60)));
            t.appendRow({Value(i),
                         Value(static_cast<int64_t>(rng.below(
                             static_cast<uint64_t>(samples)))),
                         Value(static_cast<int64_t>(rng.below(
                             static_cast<uint64_t>(span)))),
                         mapq,
                         Value(static_cast<int64_t>(rng.below(4)))});
        }
        cat.put("READS", std::move(t));
    }
    {
        Schema s;
        s.addField("SAMPLE_ID", DataType::Int64);
        s.addField("COHORT_ID", DataType::Int64);
        s.addField("QUALITY", DataType::Int64);
        Table t("SAMPLES", s);
        for (int64_t i = 0; i < samples; ++i) {
            t.appendRow({Value(i),
                         Value(static_cast<int64_t>(rng.below(
                             static_cast<uint64_t>(cohorts)))),
                         Value(static_cast<int64_t>(rng.below(100)))});
        }
        cat.put("SAMPLES", std::move(t));
    }
    {
        Schema s;
        s.addField("COHORT_ID", DataType::Int64);
        s.addField("REGION", DataType::Int64);
        s.addField("WEIGHT", DataType::Int64);
        Table t("COHORTS", s);
        for (int64_t i = 0; i < cohorts; ++i) {
            t.appendRow({Value(i),
                         Value(static_cast<int64_t>(rng.below(10))),
                         Value(static_cast<int64_t>(rng.below(1000)))});
        }
        cat.put("COHORTS", std::move(t));
    }
    {
        Schema s;
        s.addField("POS", DataType::Int64);
        s.addField("DEPTH", DataType::Int64);
        s.addField("IS_SNP", DataType::Int64);
        Table t("VARIANTS", s);
        for (int64_t i = 0; i < rows / 4 + 1; ++i) {
            t.appendRow({Value(static_cast<int64_t>(rng.below(
                             static_cast<uint64_t>(span)))),
                         Value(static_cast<int64_t>(rng.below(500))),
                         Value(static_cast<int64_t>(rng.below(2)))});
        }
        cat.put("VARIANTS", std::move(t));
    }
    return cat;
}

/** Seeded generator of 2-4-table join queries with mixed predicates. */
class JoinQueryGen
{
  public:
    explicit JoinQueryGen(uint64_t seed) : rng_(seed) {}

    std::string
    query()
    {
        // Join chain off READS: SAMPLES (-> COHORTS) and/or VARIANTS.
        bool with_samples = rng_.below(4) != 0;
        bool with_cohorts = with_samples && rng_.below(2) == 0;
        bool with_variants = !with_samples || rng_.below(3) == 0;

        std::string from = "READS r";
        if (with_samples) {
            from += joinKind() +
                " SAMPLES s ON r.SAMPLE_ID = s.SAMPLE_ID";
        }
        if (with_cohorts)
            from += joinKind() + " COHORTS c ON s.COHORT_ID = c.COHORT_ID";
        if (with_variants)
            from += joinKind() + " VARIANTS v ON r.POS = v.POS";

        std::vector<std::string> preds;
        preds.push_back(readPred());
        if (with_samples && rng_.below(2))
            preds.push_back("s.QUALITY >= " + num(100));
        if (with_cohorts && rng_.below(2))
            preds.push_back("c.REGION == " + num(10));
        if (with_variants && rng_.below(2))
            preds.push_back("v.IS_SNP == 1");
        std::string where;
        size_t npred = 1 + rng_.below(preds.size());
        for (size_t i = 0; i < npred; ++i) {
            if (i)
                where += rng_.below(4) == 0 ? " OR " : " AND ";
            where += preds[i];
        }

        std::string select;
        switch (rng_.below(3u)) {
          case 0: {
            select = "SELECT COUNT(*) AS n, SUM(r.MAPQ) AS m, "
                     "MIN(r.POS) AS p FROM ";
            break;
          }
          case 1:
            select = "SELECT r.ID AS id, r.POS AS pos, r.MAPQ AS q "
                     "FROM ";
            break;
          default:
            select = "SELECT * FROM ";
            break;
        }
        std::string sql = select + from + " WHERE " + where;
        if (sql.compare(0, 12, "SELECT COUNT") == 0) {
            if (with_samples && rng_.below(2))
                sql += " GROUP BY s.COHORT_ID";
            else
                sql += " GROUP BY r.FLAGS";
        }
        if (rng_.below(4) == 0)
            sql += " LIMIT " + num(40);
        return sql;
    }

  private:
    std::string
    joinKind()
    {
        return rng_.below(4) == 0 ? " LEFT JOIN " : " INNER JOIN ";
    }

    std::string
    num(uint64_t bound)
    {
        return std::to_string(rng_.below(bound));
    }

    std::string
    readPred()
    {
        switch (rng_.below(5u)) {
          case 0:
            return "r.MAPQ >= " + num(60);
          case 1:
            return "r.POS < " + num(2000);
          case 2:
            return "r.FLAGS != 0";
          case 3:
            return "r.MAPQ + r.FLAGS < " + num(64);
          default:
            return "NOT r.FLAGS == " + num(4);
        }
    }

    Rng rng_;
};

class OptimizerDifferential : public ::testing::TestWithParam<DiffParam>
{
  protected:
    void
    SetUp() override
    {
        rows_ = std::get<0>(GetParam());
        seed_ = std::get<1>(GetParam());
        catalog_ = makeGenomicCatalog(rows_, seed_);
    }

    Table
    runWith(const std::string &sql, bool optimize, bool vectorize)
    {
        ExecConfig cfg;
        cfg.optimize = optimize;
        cfg.vectorize = vectorize;
        Executor exec(catalog_, cfg);
        try {
            auto result = exec.run(sql);
            EXPECT_TRUE(result.has_value()) << sql;
            return result ? std::move(*result) : Table("empty", {});
        } catch (const FatalError &e) {
            ADD_FAILURE() << "query fataled (optimize=" << optimize
                          << " vectorize=" << vectorize
                          << "): " << e.what() << "\n" << sql;
            return Table("empty", {});
        }
    }

    int64_t rows_ = 0;
    uint64_t seed_ = 0;
    Catalog catalog_;
};

TEST_P(OptimizerDifferential, AllConfigsBitIdentical)
{
    JoinQueryGen gen(seed_ * 7919 + static_cast<uint64_t>(rows_));
    for (int trial = 0; trial < 30; ++trial) {
        std::string sql = gen.query();
        Table naive = runWith(sql, false, false);
        Table optimized = runWith(sql, true, false);
        Table vec = runWith(sql, false, true);
        Table opt_vec = runWith(sql, true, true);
        EXPECT_TRUE(naive.contentEquals(optimized))
            << "optimizer changed results (rows=" << rows_
            << " seed=" << seed_ << "):\n" << sql << "\nnaive:\n"
            << naive.str(20) << "optimized:\n" << optimized.str(20);
        EXPECT_TRUE(naive.contentEquals(vec))
            << "vectorized row engine diverged (rows=" << rows_
            << " seed=" << seed_ << "):\n" << sql << "\nnaive:\n"
            << naive.str(20) << "vectorized:\n" << vec.str(20);
        EXPECT_TRUE(naive.contentEquals(opt_vec))
            << "optimized+vectorized diverged (rows=" << rows_
            << " seed=" << seed_ << "):\n" << sql << "\nnaive:\n"
            << naive.str(20) << "opt+vec:\n" << opt_vec.str(20);
    }
}

/** Every individual rule disabled must also keep results identical. */
TEST_P(OptimizerDifferential, EachRuleDisabledBitIdentical)
{
    JoinQueryGen gen(seed_ * 104729 + static_cast<uint64_t>(rows_));
    static constexpr uint32_t kRules[] = {
        sql::kRuleSplit,     sql::kRulePushdown, sql::kRuleTransfer,
        sql::kRuleJoinReorder, sql::kRuleHashJoin, sql::kRuleMerge,
        sql::kRuleFilterOrder,
    };
    for (int trial = 0; trial < 8; ++trial) {
        std::string sql = gen.query();
        Table naive = runWith(sql, false, false);
        for (uint32_t rule : kRules) {
            ExecConfig cfg;
            cfg.optimize = true;
            cfg.vectorize = true;
            cfg.ruleMask = sql::kAllRules & ~rule;
            Executor exec(catalog_, cfg);
            auto result = exec.run(sql);
            ASSERT_TRUE(result.has_value()) << sql;
            EXPECT_TRUE(naive.contentEquals(*result))
                << "disabling rule '" << sql::ruleName(rule)
                << "' changed results:\n" << sql;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    SizeSeedGrid, OptimizerDifferential,
    ::testing::Combine(::testing::Values<int64_t>(60, 300, 700),
                       ::testing::Values<uint64_t>(5u, 17u)));

} // namespace
} // namespace genesis::engine

/**
 * @file
 * Unit battery for the rebuilt DRAM timing model: interleave-boundary
 * request splitting, per-channel byte distribution, MSHR-style burst
 * coalescing, bank/open-row timing, retire ordering, the busy/idle stat
 * invariant, and fast-forward parity on unaligned gather-shaped traffic.
 *
 * These tests drive MemorySystem directly (no pipeline modules) so that
 * every timing claim is attributable to the memory model alone.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "base/logging.h"
#include "sim/memory.h"
#include "sim/scheduler.h"
#include "sim_test_utils.h"

namespace genesis::sim {
namespace {

/** Tick until the port drains (or the cycle budget runs out). */
uint64_t
drain(MemorySystem &mem, uint64_t max_cycles = 1'000'000)
{
    uint64_t start = mem.cycle();
    while (!mem.idle() && mem.cycle() - start < max_cycles)
        mem.tick();
    EXPECT_TRUE(mem.idle()) << "memory did not drain";
    return mem.cycle() - start;
}

/** Total completed read bytes across a full drain of one port. */
uint64_t
drainReads(MemorySystem &mem, MemoryPort *port)
{
    uint64_t total = port->takeCompletedReadBytes();
    uint64_t start = mem.cycle();
    while (!mem.idle() && mem.cycle() - start < 1'000'000) {
        mem.tick();
        total += port->takeCompletedReadBytes();
    }
    EXPECT_TRUE(mem.idle()) << "memory did not drain";
    return total;
}

// --- request splitting across channels -------------------------------------

TEST(MemModelSplit, CrossingRequestsDistributeAcrossAllChannels)
{
    // Every request starts on a granule that maps to channel 0 but spans
    // one full interleave period. The old model timed each request on
    // channelOf(start address) alone, provably pinning all traffic to
    // channel 0; splitting must spread the bytes evenly over all four.
    MemoryConfig cfg;
    cfg.numChannels = 4;
    cfg.accessGranularity = 64;
    MemorySystem mem(cfg);
    MemoryPort *port = mem.makePort(0);

    const int kRequests = 16;
    uint64_t issued = 0;
    int sent = 0;
    while (sent < kRequests) {
        while (sent < kRequests && port->canIssue()) {
            port->issue(static_cast<uint64_t>(sent) * 256, 256, false);
            issued += 256;
            ++sent;
        }
        mem.tick();
    }
    uint64_t completed = port->takeCompletedReadBytes() +
        drainReads(mem, port);

    EXPECT_EQ(completed, issued);
    for (int ch = 0; ch < 4; ++ch) {
        EXPECT_EQ(mem.channelBytes(ch), issued / 4)
            << "channel " << ch << " did not get its interleave share";
    }
    EXPECT_EQ(mem.stats().get("read_bytes"), issued);
}

TEST(MemModelSplit, UnalignedRequestSplitsAtInterleaveBoundary)
{
    MemoryConfig cfg;
    cfg.numChannels = 4;
    cfg.accessGranularity = 64;
    MemorySystem mem(cfg);
    MemoryPort *port = mem.makePort(0);

    // [32, 96) straddles the granule boundary at 64: 32 bytes belong to
    // channel 0 and 32 bytes to channel 1.
    port->issue(32, 64, false);
    EXPECT_EQ(port->outstanding(), 2u);
    uint64_t completed = drainReads(mem, port);
    EXPECT_EQ(completed, 64u);
    EXPECT_EQ(mem.channelBytes(0), 32u);
    EXPECT_EQ(mem.channelBytes(1), 32u);
    EXPECT_EQ(mem.channelBytes(2), 0u);
    EXPECT_EQ(mem.stats().get("sub_requests"), 2u);
    EXPECT_EQ(mem.stats().get("requests"), 1u);
}

TEST(MemModelSplit, ByteTotalsSurviveSplittingExactly)
{
    // Ragged unaligned request stream: the sum of completed bytes must
    // equal the sum of issued bytes no matter how slices are cut/merged.
    MemoryConfig cfg;
    cfg.numChannels = 3; // non-power-of-two channel count
    MemorySystem mem(cfg);
    MemoryPort *port = mem.makePort(0);

    uint64_t issued = 0;
    uint64_t addr = 5;
    for (int i = 0; i < 40; ++i) {
        while (!port->canIssue())
            mem.tick();
        uint32_t bytes = 1 + static_cast<uint32_t>((i * 37) % 150);
        port->issue(addr, bytes, false);
        addr += bytes + (i % 3); // occasional gaps break contiguity
        issued += bytes;
        mem.tick();
    }
    uint64_t completed = port->takeCompletedReadBytes() +
        drainReads(mem, port);
    EXPECT_EQ(completed, issued);
    EXPECT_EQ(mem.stats().get("read_bytes"), issued);
    uint64_t per_channel = 0;
    for (int ch = 0; ch < cfg.numChannels; ++ch)
        per_channel += mem.channelBytes(ch);
    EXPECT_EQ(per_channel, issued);
}

// --- MSHR-style coalescing --------------------------------------------------

TEST(MemModelCoalesce, TailAndHeadSlicesShareOneGranuleAccess)
{
    // An unaligned 64 B stream: request k covers [13+64k, 77+64k), so
    // the tail slice of request k and the head slice of request k+1
    // both live in granule k+1 and must merge into one access instead
    // of paying for the granule twice.
    MemoryConfig cfg;
    cfg.numChannels = 4;
    MemorySystem mem(cfg);
    MemoryPort *port = mem.makePort(0);

    uint64_t issued = 0;
    for (int i = 0; i < 16; ++i) {
        while (!port->canIssue())
            mem.tick();
        port->issue(13 + static_cast<uint64_t>(i) * 64, 64, false);
        issued += 64;
    }
    uint64_t completed = port->takeCompletedReadBytes() +
        drainReads(mem, port);
    EXPECT_EQ(completed, issued);
    EXPECT_GT(mem.stats().get("coalesced_sub_requests"), 0u);
    // 16 crossing requests naively make 32 slices; merging must claw a
    // slice back for every tail/head pair that met in the queue.
    EXPECT_EQ(mem.stats().get("sub_requests") +
                  mem.stats().get("coalesced_sub_requests"),
              32u);
    EXPECT_LT(mem.stats().get("sub_requests"), 32u);
}

TEST(MemModelCoalesce, ContiguousStreamMergesUpToBurstCap)
{
    // On one channel every consecutive granule is local, so an aligned
    // 64 B stream issued back-to-back coalesces into maxBurstBytes
    // bursts and nothing larger.
    MemoryConfig cfg;
    cfg.numChannels = 1;
    cfg.accessGranularity = 64;
    cfg.maxBurstBytes = 256;
    MemorySystem mem(cfg);
    MemoryPort *port = mem.makePort(0);

    for (int i = 0; i < 16; ++i)
        port->issue(static_cast<uint64_t>(i) * 64, 64, false);
    EXPECT_EQ(port->outstanding(), 4u); // 16 x 64 B in 4 x 256 B bursts
    uint64_t completed = drainReads(mem, port);
    EXPECT_EQ(completed, 16u * 64u);
    EXPECT_EQ(mem.stats().get("sub_requests"), 4u);
    EXPECT_EQ(mem.stats().get("coalesced_sub_requests"), 12u);
}

// --- banks and open rows ----------------------------------------------------

TEST(MemModelBank, SameBankTrafficSerializesAcrossPorts)
{
    // Two ports streaming row-missing requests: when both map to the
    // same bank the access phases serialize (and bank conflicts are
    // counted); on different banks they overlap.
    auto run_case = [](bool same_bank) {
        MemoryConfig cfg;
        cfg.numChannels = 1;
        cfg.banksPerChannel = 2;
        cfg.rowBytes = 64; // one row per granule: every access misses
        cfg.maxBurstBytes = 64; // no merging: isolate bank timing
        cfg.latencyCycles = 40;
        cfg.rowHitLatencyCycles = 40;
        MemorySystem mem(cfg);
        MemoryPort *a = mem.makePort(0);
        MemoryPort *b = mem.makePort(1);
        // Rows interleave over banks, so even rows are bank 0 and odd
        // rows bank 1. Port a walks even rows; port b walks even rows
        // too (same bank) or odd rows (other bank).
        const int kEach = 8;
        int sent_a = 0, sent_b = 0;
        while (sent_a < kEach || sent_b < kEach || !mem.idle()) {
            if (sent_a < kEach && a->canIssue()) {
                a->issue(static_cast<uint64_t>(sent_a) * 128, 64, false);
                ++sent_a;
            }
            if (sent_b < kEach && b->canIssue()) {
                uint64_t addr = 4096 +
                    static_cast<uint64_t>(sent_b) * 128 +
                    (same_bank ? 0 : 64);
                b->issue(addr, 64, false);
                ++sent_b;
            }
            mem.tick();
            if (mem.cycle() > 100'000)
                break;
        }
        EXPECT_TRUE(mem.idle());
        return std::pair<uint64_t, uint64_t>(
            mem.cycle(), mem.stats().get("bank_conflict_cycles"));
    };
    auto [same_cycles, same_conflicts] = run_case(true);
    auto [diff_cycles, diff_conflicts] = run_case(false);
    EXPECT_GT(same_cycles, diff_cycles);
    EXPECT_GT(same_conflicts, 0u);
    EXPECT_GT(same_conflicts, diff_conflicts);
}

TEST(MemModelBank, OpenRowHitsBeatRowThrashing)
{
    // Same byte volume, same bank: a sequential stream keeps the row
    // open (one miss then hits at the short latency) while a
    // row-granular stride re-opens a row per access.
    auto run_case = [](uint64_t stride) {
        MemoryConfig cfg;
        cfg.numChannels = 1;
        cfg.banksPerChannel = 1;
        cfg.rowBytes = 4096;
        cfg.latencyCycles = 40;  // miss
        cfg.rowHitLatencyCycles = 5;
        cfg.maxBurstBytes = 64; // no merging: isolate row timing
        cfg.bytesPerCyclePerChannel = 64;
        MemorySystem cfg_mem(cfg);
        MemoryPort *port = cfg_mem.makePort(0);
        const int kRequests = 16;
        int sent = 0;
        while (sent < kRequests || !cfg_mem.idle()) {
            if (sent < kRequests && port->canIssue()) {
                port->issue(static_cast<uint64_t>(sent) * stride, 64,
                            false);
                ++sent;
            }
            cfg_mem.tick();
            if (cfg_mem.cycle() > 100'000)
                break;
        }
        EXPECT_TRUE(cfg_mem.idle());
        return std::tuple<uint64_t, uint64_t, uint64_t>(
            cfg_mem.cycle(), cfg_mem.stats().get("row_hits"),
            cfg_mem.stats().get("row_misses"));
    };
    auto [seq_cycles, seq_hits, seq_misses] = run_case(64);
    auto [thrash_cycles, thrash_hits, thrash_misses] = run_case(4096);
    EXPECT_EQ(seq_misses, 1u);   // only the cold first access
    EXPECT_EQ(seq_hits, 15u);
    EXPECT_EQ(thrash_hits, 0u);  // every access opens a new row
    EXPECT_EQ(thrash_misses, 16u);
    EXPECT_LT(seq_cycles, thrash_cycles);
}

// --- retire ordering --------------------------------------------------------

TEST(MemModelRetire, CompletionsRetireInIssueOrderPerPort)
{
    // A long transfer issued before a short one: the short one's bytes
    // must not surface first, even though it targets a free channel.
    MemoryConfig cfg;
    cfg.numChannels = 2;
    cfg.bytesPerCyclePerChannel = 1; // 64 B take 64 transfer cycles
    cfg.latencyCycles = 4;
    MemorySystem mem(cfg);
    MemoryPort *port = mem.makePort(0);

    port->issue(0, 64, false);  // channel 0, slow
    port->issue(64, 8, false);  // channel 1, fast
    uint64_t first_batch = 0;
    while (first_batch == 0 && mem.cycle() < 10'000) {
        mem.tick();
        first_batch = port->takeCompletedReadBytes();
    }
    // The head request's 64 bytes arrive first (possibly together with
    // the second request's 8, never the 8 alone).
    EXPECT_GE(first_batch, 64u);
    uint64_t rest = drainReads(mem, port);
    EXPECT_EQ(first_batch + rest, 72u);
}

// --- stat invariant ---------------------------------------------------------

TEST(MemModelStats, BusyPlusIdleEqualsChannelsTimesCycles)
{
    MemoryConfig cfg;
    cfg.numChannels = 3;
    MemorySystem mem(cfg);
    MemoryPort *port = mem.makePort(0);

    uint64_t addr = 7;
    for (int burst = 0; burst < 20; ++burst) {
        if (port->canIssue()) {
            port->issue(addr, 100, burst % 2 == 0);
            addr += 517;
        }
        for (int i = 0; i < 10; ++i) {
            mem.tick();
            ASSERT_EQ(mem.stats().get("channel_busy_cycles") +
                          mem.stats().get("channel_idle_cycles"),
                      3u * mem.cycle());
        }
    }
    drain(mem);
    mem.assertStatInvariant();
}

TEST(MemModelStats, InvariantHoldsThroughFastForwardedRuns)
{
    // A long-latency design that the simulator fast-forwards: the bulk
    // crediting must keep busy+idle == channels x cycles exactly.
    MemoryConfig cfg;
    cfg.latencyCycles = 500;
    cfg.rowHitLatencyCycles = 500; // uniform: keep every wait ~500 cycles
    Simulator sim(cfg);
    auto *q = sim.makeQueue("q", 2);
    auto *out = sim.makeQueue("out", 2);
    auto *port = sim.memory().makePort(0);
    std::vector<Flit> flits;
    for (int i = 0; i < 10; ++i)
        flits.push_back(makeFlit(i));
    sim.make<test::VectorSource>("src", q, flits);

    class Echo final : public Module
    {
      public:
        Echo(std::string name, MemoryPort *port, HardwareQueue *in,
             HardwareQueue *out)
            : Module(std::move(name)), port_(port), in_(in), out_(out)
        {
        }
        void
        tick() override
        {
            if (closed_)
                return;
            if (waiting_) {
                if (port_->takeCompletedReadBytes() == 0) {
                    countStall(stallMemory_);
                    return;
                }
                noteProgress();
                waiting_ = false;
            }
            if (held_) {
                if (!out_->canPush())
                    return;
                out_->push(*held_);
                held_.reset();
                countFlit();
                return;
            }
            if (!in_->canPop()) {
                if (in_->drained()) {
                    out_->close();
                    closed_ = true;
                }
                return;
            }
            held_ = in_->pop();
            port_->issue(static_cast<uint64_t>(held_->key) * 4096 + 9,
                        48, false);
            waiting_ = true;
        }
        bool done() const override { return closed_; }

      private:
        StatHandle stallMemory_ = stallCounter("memory");
        MemoryPort *port_;
        HardwareQueue *in_;
        HardwareQueue *out_;
        std::optional<Flit> held_;
        bool waiting_ = false;
        bool closed_ = false;
    };
    sim.make<Echo>("echo", port, q, out);
    sim.make<test::VectorSink>("sink", out);
    uint64_t cycles = sim.run();
    EXPECT_GT(cycles, 10u * 500u); // genuinely fast-forward territory
    sim.memory().assertStatInvariant();
    EXPECT_EQ(sim.memory().stats().get("channel_busy_cycles") +
                  sim.memory().stats().get("channel_idle_cycles"),
              static_cast<uint64_t>(
                  sim.memory().config().numChannels) * cycles);
}

TEST(MemModelStats, DeadlockDumpPassesInvariantCheck)
{
    setQuiet(true);
    // The deadlock dumpState path runs assertStatInvariant; a wedged
    // design must still produce the deadlock panic, not a stat panic.
    Simulator sim;
    auto *q = sim.makeQueue("q");
    sim.make<test::VectorSink>("sink", q);
    try {
        sim.run();
        FAIL() << "expected a deadlock panic";
    } catch (const PanicError &e) {
        EXPECT_NE(std::string(e.what()).find("deadlock: no progress"),
                  std::string::npos)
            << "unexpected panic: " << e.what();
    }
    setQuiet(false);
}

// --- gather-shaped traffic and effective bandwidth --------------------------

TEST(MemModelGather, ScatteredSmallReadsTouchEveryChannel)
{
    MemoryConfig cfg;
    MemorySystem mem(cfg);
    MemoryPort *port = mem.makePort(0);

    // BQSR/markdup-gather-shaped: small unaligned reads at scattered
    // addresses (deterministic LCG walk over a 1 MiB footprint).
    uint64_t state = 12345;
    uint64_t issued = 0;
    for (int i = 0; i < 200; ++i) {
        while (!port->canIssue())
            mem.tick();
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        uint64_t addr = (state >> 16) % (1u << 20);
        port->issue(addr, 10, false);
        issued += 10;
        mem.tick();
    }
    uint64_t completed = port->takeCompletedReadBytes() +
        drainReads(mem, port);
    EXPECT_EQ(completed, issued);
    for (int ch = 0; ch < cfg.numChannels; ++ch)
        EXPECT_GT(mem.channelBytes(ch), 0u) << "channel " << ch;
    // Scattered rows: misses dominate hits.
    EXPECT_GT(mem.stats().get("row_misses"),
              mem.stats().get("row_hits"));
}

TEST(MemModelBandwidth, StreamingSustainsAtLeastGatherBandwidth)
{
    // Equal byte volumes: sequential streaming (row hits, full-granule
    // bursts) must achieve at least the effective bandwidth of a
    // scattered small-read gather (row misses, partial granules).
    const uint64_t kBytes = 64 * 1024;
    auto cycles_for = [&](bool streaming) {
        MemoryConfig cfg;
        MemorySystem mem(cfg);
        MemoryPort *port = mem.makePort(0);
        uint64_t issued = 0;
        uint64_t state = 99;
        while (issued < kBytes || !mem.idle()) {
            while (issued < kBytes && port->canIssue()) {
                if (streaming) {
                    port->issue(issued, 64, false);
                    issued += 64;
                } else {
                    state = state * 6364136223846793005ull +
                        1442695040888963407ull;
                    uint64_t addr = (state >> 16) % (8u << 20);
                    uint32_t bytes = static_cast<uint32_t>(
                        std::min<uint64_t>(16, kBytes - issued));
                    port->issue(addr, bytes, false);
                    issued += bytes;
                }
            }
            mem.tick();
            port->takeCompletedReadBytes();
            if (mem.cycle() > 10'000'000)
                break;
        }
        EXPECT_TRUE(mem.idle());
        return mem.cycle();
    };
    uint64_t streaming_cycles = cycles_for(true);
    uint64_t gather_cycles = cycles_for(false);
    EXPECT_LE(streaming_cycles, gather_cycles);
}

// --- fast-forward parity on unaligned traffic -------------------------------

TEST(MemModelParity, FastForwardBitIdenticalOnGatherTraffic)
{
    // Unaligned, split-and-coalesce-heavy traffic, fast-forward on vs
    // off: cycle counts and every aggregated statistic must match.
    auto run_once = [] {
        MemoryConfig cfg;
        cfg.latencyCycles = 250;
        Simulator sim(cfg);
        auto *a = sim.makeQueue("a", 2);
        auto *b = sim.makeQueue("b", 2);
        auto *port = sim.memory().makePort(0);
        std::vector<Flit> flits;
        for (int i = 0; i < 15; ++i)
            flits.push_back(makeFlit(i));
        sim.make<test::VectorSource>("src", a, flits);

        class UnalignedEcho final : public Module
        {
          public:
            UnalignedEcho(std::string name, MemoryPort *port,
                          HardwareQueue *in, HardwareQueue *out)
                : Module(std::move(name)), port_(port), in_(in),
                  out_(out)
            {
            }
            void
            tick() override
            {
                if (closed_)
                    return;
                if (expect_ > 0) {
                    got_ += port_->takeCompletedReadBytes();
                    if (got_ < expect_) {
                        countStall(stallMemory_);
                        return;
                    }
                    noteProgress();
                    expect_ = 0;
                    got_ = 0;
                }
                if (held_) {
                    if (!out_->canPush()) {
                        countStall(stallBackpressure_);
                        return;
                    }
                    out_->push(*held_);
                    held_.reset();
                    countFlit();
                    return;
                }
                if (!in_->canPop()) {
                    if (in_->drained()) {
                        out_->close();
                        closed_ = true;
                    }
                    return;
                }
                held_ = in_->pop();
                uint64_t key = static_cast<uint64_t>(held_->key);
                uint32_t bytes =
                    40 + static_cast<uint32_t>(key % 5) * 31;
                port_->issue(key * 113 + 7, bytes, false);
                expect_ = bytes;
            }
            bool done() const override { return closed_; }

          private:
            StatHandle stallMemory_ = stallCounter("memory");
            StatHandle stallBackpressure_ =
                stallCounter("backpressure");
            MemoryPort *port_;
            HardwareQueue *in_;
            HardwareQueue *out_;
            std::optional<Flit> held_;
            uint64_t expect_ = 0;
            uint64_t got_ = 0;
            bool closed_ = false;
        };
        sim.make<UnalignedEcho>("echo", port, a, b);
        sim.make<test::VectorSink>("sink", b);
        sim.run();
        return sim.collectStats().counters();
    };
    auto fast = run_once();
    ::setenv("GENESIS_SIM_NO_FASTFORWARD", "1", 1);
    auto slow = run_once();
    ::unsetenv("GENESIS_SIM_NO_FASTFORWARD");
    EXPECT_EQ(fast, slow);
}

// --- configuration validation -----------------------------------------------

TEST(MemModelConfig, RejectsInvalidGeometry)
{
    setQuiet(true);
    {
        MemoryConfig cfg;
        cfg.accessGranularity = 0;
        EXPECT_THROW(MemorySystem{cfg}, FatalError);
    }
    {
        MemoryConfig cfg;
        cfg.accessGranularity = 48; // not a power of two
        EXPECT_THROW(MemorySystem{cfg}, FatalError);
    }
    {
        MemoryConfig cfg;
        cfg.banksPerChannel = 0;
        EXPECT_THROW(MemorySystem{cfg}, FatalError);
    }
    {
        MemoryConfig cfg;
        cfg.rowBytes = 96; // not a granularity multiple
        EXPECT_THROW(MemorySystem{cfg}, FatalError);
    }
    {
        MemoryConfig cfg;
        cfg.maxBurstBytes = 32; // below the granularity
        EXPECT_THROW(MemorySystem{cfg}, FatalError);
    }
    setQuiet(false);
}

TEST(MemModelConfig, RowHitLatencyDefaultsToHalfMiss)
{
    MemoryConfig cfg;
    cfg.latencyCycles = 30;
    MemorySystem mem(cfg);
    EXPECT_EQ(mem.config().rowHitLatencyCycles, 15u);

    MemoryConfig explicit_cfg;
    explicit_cfg.latencyCycles = 30;
    explicit_cfg.rowHitLatencyCycles = 7;
    MemorySystem mem2(explicit_cfg);
    EXPECT_EQ(mem2.config().rowHitLatencyCycles, 7u);
}

TEST(MemoryValidate, DefaultConfigIsValid)
{
    EXPECT_TRUE(validate(MemoryConfig()).empty());
}

TEST(MemoryValidate, EveryBadFieldIsNamed)
{
    MemoryConfig cfg;
    cfg.numChannels = 0;
    cfg.banksPerChannel = 0;
    cfg.bytesPerCyclePerChannel = 0;
    cfg.accessGranularity = 48; // not a power of two
    cfg.portQueueDepth = 0;
    std::vector<std::string> errors = validate(cfg);
    auto contains = [&errors](const char *field) {
        for (const auto &e : errors) {
            if (e.rfind(field, 0) == 0)
                return true;
        }
        return false;
    };
    EXPECT_TRUE(contains("numChannels:"));
    EXPECT_TRUE(contains("banksPerChannel:"));
    EXPECT_TRUE(contains("bytesPerCyclePerChannel:"));
    EXPECT_TRUE(contains("accessGranularity:"));
    EXPECT_TRUE(contains("portQueueDepth:"));
}

TEST(MemoryValidate, RowAndBurstCheckedAgainstGranularity)
{
    MemoryConfig cfg;
    cfg.accessGranularity = 64;
    cfg.rowBytes = 96; // not a multiple of 64
    std::vector<std::string> errors = validate(cfg);
    ASSERT_EQ(errors.size(), 1u);
    EXPECT_EQ(errors[0].rfind("rowBytes:", 0), 0u) << errors[0];

    cfg.rowBytes = 1024;
    cfg.maxBurstBytes = 32; // below the granularity
    errors = validate(cfg);
    ASSERT_EQ(errors.size(), 1u);
    EXPECT_EQ(errors[0].rfind("maxBurstBytes:", 0), 0u) << errors[0];

    // With a broken granularity, the relative checks stay quiet rather
    // than emitting nonsense comparisons against it.
    cfg.accessGranularity = 0;
    errors = validate(cfg);
    for (const auto &e : errors) {
        EXPECT_EQ(e.find("rowBytes"), std::string::npos) << e;
        EXPECT_EQ(e.find("maxBurstBytes"), std::string::npos) << e;
    }
}

TEST(MemoryValidate, ConstructorFatalsWithTheFieldName)
{
    MemoryConfig cfg;
    cfg.numChannels = 0;
    try {
        MemorySystem mem(cfg);
        FAIL() << "constructor accepted zero channels";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("numChannels"),
                  std::string::npos);
    }
}

// --- event horizon and the event-jump driver (DESIGN.md §4f) -----------

/** Everything an event-driven run must reproduce bit-for-bit. */
struct DriveResult {
    uint64_t cycles = 0;
    std::map<std::string, uint64_t> stats;
    std::vector<uint64_t> channelBytes;
};

/**
 * Drive a four-port gather+stream mix to completion. With `event_jump`,
 * skip spans nextEventCycle() proves quiet via tickQuiet() — the
 * bench/sim_membw driver shape. `check_channel_min` additionally
 * asserts, every iteration, that the global nextEventCycle() equals the
 * minimum of the per-channel restrictions.
 */
DriveResult
driveMixed(bool event_jump, int mem_threads, bool check_channel_min)
{
    MemoryConfig cfg;
    MemorySystem mem(cfg);
    mem.setMemThreads(mem_threads);
    const int kPorts = 4;
    std::vector<MemoryPort *> ports;
    for (int p = 0; p < kPorts; ++p)
        ports.push_back(mem.makePort(p));

    uint64_t lcg = 12345;
    std::vector<int> remaining(kPorts, 64);
    bool done = false;
    while (!done || !mem.idle()) {
        done = true;
        for (int p = 0; p < kPorts; ++p) {
            while (remaining[static_cast<size_t>(p)] > 0 &&
                   ports[static_cast<size_t>(p)]->canIssue()) {
                lcg = lcg * 6364136223846793005ull +
                    1442695040888963407ull;
                // Ports 0-1 stream rows; ports 2-3 gather scattered
                // granules, so bank conflicts and row misses both occur.
                uint64_t addr = p < 2
                    ? (static_cast<uint64_t>(p) << 24) +
                        static_cast<uint64_t>(
                            64 - remaining[static_cast<size_t>(p)]) * 64
                    : (lcg >> 16) & ((1ull << 22) - 1);
                ports[static_cast<size_t>(p)]->issue(addr, 64, p % 2);
                --remaining[static_cast<size_t>(p)];
            }
            if (remaining[static_cast<size_t>(p)] > 0)
                done = false;
        }
        mem.tick();
        for (auto *port : ports)
            port->takeCompletedReadBytes();
        if (check_channel_min) {
            uint64_t global = mem.nextEventCycle();
            uint64_t channel_min = MemorySystem::kNoEvent;
            for (int ch = 0; ch < cfg.numChannels; ++ch)
                channel_min =
                    std::min(channel_min, mem.nextEventCycle(ch));
            EXPECT_EQ(channel_min, global)
                << "at cycle " << mem.cycle();
        }
        if (event_jump) {
            uint64_t next = mem.nextEventCycle();
            if (next != MemorySystem::kNoEvent &&
                next > mem.cycle() + 1)
                mem.tickQuiet(next - mem.cycle() - 1);
        }
    }
    mem.assertStatInvariant();
    DriveResult r;
    r.cycles = mem.cycle();
    r.stats = mem.stats().counters();
    for (int ch = 0; ch < cfg.numChannels; ++ch)
        r.channelBytes.push_back(mem.channelBytes(ch));
    return r;
}

TEST(MemModelEvents, PerChannelNextEventMinimumEqualsGlobal)
{
    // The per-channel restriction must tile the global event horizon:
    // checked at every tick of a mixed stream+gather run.
    driveMixed(false, 1, true);
}

TEST(MemModelEvents, EventJumpDriverBitIdenticalToPerCycle)
{
    // tickQuiet over spans nextEventCycle() proved quiet must leave
    // cycles, every stat and the per-channel byte distribution exactly
    // as a tick-by-tick run (the bench/sim_membw driver contract).
    DriveResult per_cycle = driveMixed(false, 1, false);
    DriveResult jump = driveMixed(true, 1, false);
    EXPECT_EQ(jump.cycles, per_cycle.cycles);
    EXPECT_EQ(jump.stats, per_cycle.stats);
    EXPECT_EQ(jump.channelBytes, per_cycle.channelBytes);
}

TEST(MemModelMemThreads, ChannelParallelTickBitIdentical)
{
    // The channel-parallel scan phase (DESIGN.md §4f) is a pure
    // reorganisation of the eligibility scan: any worker count must
    // reproduce the sequential tick bit-for-bit.
    DriveResult sequential = driveMixed(false, 1, false);
    for (int n : {2, 4}) {
        DriveResult parallel = driveMixed(false, n, false);
        EXPECT_EQ(parallel.cycles, sequential.cycles) << "threads " << n;
        EXPECT_EQ(parallel.stats, sequential.stats) << "threads " << n;
        EXPECT_EQ(parallel.channelBytes, sequential.channelBytes)
            << "threads " << n;
    }
}

TEST(MemModelGuards, CrossChannelBankTouchDuringScanPanics)
{
    // While a channel-parallel scan job owns channel `c`, any bank
    // lookup outside `c` is a cross-thread read racing another job's
    // channel: the bankAt guard must panic deterministically.
    setQuiet(true);
    MemoryConfig cfg;
    MemorySystem mem(cfg);
    MemoryPort *port = mem.makePort(0);
    port->issue(0, 64, false); // unscheduled head on channel 0
    {
        MemorySystem::ChannelScanGuard guard(1);
        try {
            // The grantable bound consults the head's bank on channel 0.
            mem.nextEventCycle(0);
            FAIL() << "expected a cross-channel panic";
        } catch (const PanicError &e) {
            EXPECT_NE(std::string(e.what()).find("channel"),
                      std::string::npos)
                << e.what();
        }
    }
    // Guard released: the same lookup is legal again.
    EXPECT_GE(mem.nextEventCycle(0), mem.cycle() + 1);
    setQuiet(false);
}

TEST(MemModelGuards, IssueDuringScanPhasePanics)
{
    // Scan jobs only read; an issue() while any scan guard is live
    // mutates a pending queue mid-scan and must panic.
    setQuiet(true);
    MemoryConfig cfg;
    MemorySystem mem(cfg);
    MemoryPort *port = mem.makePort(0);
    {
        MemorySystem::ChannelScanGuard guard(0);
        try {
            port->issue(0, 64, false);
            FAIL() << "expected an issue-during-scan panic";
        } catch (const PanicError &e) {
            EXPECT_NE(std::string(e.what()).find("scan"),
                      std::string::npos)
                << e.what();
        }
    }
    port->issue(0, 64, false);
    drain(mem);
    setQuiet(false);
}

} // namespace
} // namespace genesis::sim
